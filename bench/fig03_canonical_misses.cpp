// Figure 3: log10 of the cache-miss ratio of the canonical algorithms to the
// best algorithm, sizes 2^1 .. 2^maxn, simulated L1 in the paper machine's
// geometry (64 KB, 2-way, 64 B lines).
//
// Paper shape: all plans tie (compulsory misses only) while the transform
// fits in L1; past the boundary the left recursive plan's misses explode
// (its unit-stride chain is on the wrong side, leaving large-stride leaf
// work), the right recursive plan misses least, the iterative plan sits in
// between.
#include <cstdio>

#include <cmath>

#include "cachesim/trace_runner.hpp"
#include "common/harness.hpp"
#include "util/table.hpp"

namespace {

using namespace whtlab;

int run(const bench::HarnessOptions& options) {
  bench::print_banner("Figure 3",
                      "log10 cache-miss ratio: canonical algorithms vs DP best");

  const auto l1 = cachesim::CacheConfig::opteron_l1();
  util::TextTable table({"n", "misses(best)", "log10(iter/best)",
                         "log10(right/best)", "log10(left/best)"});
  std::vector<double> ns;
  std::vector<double> log_iter;
  std::vector<double> log_right;
  std::vector<double> log_left;

  for (int n = 1; n <= options.max_n; ++n) {
    const core::Plan best = bench::best_plan_by_runtime(n);
    const auto canon = bench::canonical_suite(n);
    const auto misses = [&l1](const core::Plan& plan) {
      return static_cast<double>(cachesim::simulate_plan(plan, l1).l1_misses);
    };
    const double best_misses = misses(best);
    ns.push_back(n);
    log_iter.push_back(std::log10(misses(canon.iterative) / best_misses));
    log_right.push_back(std::log10(misses(canon.right_recursive) / best_misses));
    log_left.push_back(std::log10(misses(canon.left_recursive) / best_misses));
    table.add_row({util::TextTable::fmt(n),
                   util::TextTable::fmt(best_misses, 6),
                   util::TextTable::fmt(log_iter.back(), 4),
                   util::TextTable::fmt(log_right.back(), 4),
                   util::TextTable::fmt(log_left.back(), 4)});
  }
  table.print();

  std::printf("\nexpect zeros while 2^n fits in L1 (everyone pays compulsory\n"
              "misses only), then left recursive worst by an order of magnitude.\n");
  bench::write_csv(options, "fig03_canonical_misses",
                   {"n", "log10_iter", "log10_right", "log10_left"},
                   {ns, log_iter, log_right, log_left});
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = whtlab::bench::HarnessOptions::parse(argc, argv);
  if (!options) return 0;
  return run(*options);
}
