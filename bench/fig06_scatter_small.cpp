// Figure 6: instructions vs cycles scatter for the WHT(2^9) sample.
// Paper headline: correlation coefficient rho = 0.96 on their Opteron.
#include <cstdio>

#include "common/harness.hpp"
#include "common/scatter.hpp"
#include "model/instruction_model.hpp"
#include "perf/measure.hpp"
#include "stats/descriptive.hpp"

namespace {

using namespace whtlab;

int run(const bench::HarnessOptions& options) {
  bench::print_banner("Figure 6",
                      "instructions vs cycles, WHT(2^9) (paper: rho = 0.96)");

  auto pop = bench::build_population(9, options.samples_small, options.seed);
  const auto kept = bench::fence_filter(pop.cycles);
  bench::ScatterSeries series;
  series.x_label = "instructions";
  series.x = stats::select(pop.instructions, kept);
  series.cycles = stats::select(pop.cycles, kept);

  perf::MeasureOptions measure;
  measure.repetitions = 7;
  const auto canon = bench::canonical_suite(9);
  const core::Plan best = bench::best_plan_by_runtime(9);
  std::vector<bench::Marker> markers;
  for (const auto& [name, plan] :
       {std::pair<const char*, const core::Plan*>{"best", &best},
        {"iterative", &canon.iterative},
        {"right", &canon.right_recursive},
        {"left", &canon.left_recursive}}) {
    markers.push_back({name, model::instruction_count(*plan),
                       bench::fixed_transform(*plan).measure(measure).cycles()});
  }
  bench::report_scatter(options, "fig06_scatter_small", series, markers);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = whtlab::bench::HarnessOptions::parse(argc, argv);
  if (!options) return 0;
  return run(*options);
}
