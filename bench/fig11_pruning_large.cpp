// Figure 11: cumulative percentage of WHT(2^18) algorithms with cycle counts
// outside the pth percentile, as a function of the combined model
// alpha*Instructions + beta*Misses (p = 1, 5, 10), with (alpha, beta) chosen
// by the Figure 9 grid search.
#include <cstdio>

#include "common/harness.hpp"
#include "stats/descriptive.hpp"
#include "stats/grid_opt.hpp"
#include "stats/pruning.hpp"
#include "util/table.hpp"

namespace {

using namespace whtlab;

int run(const bench::HarnessOptions& options) {
  bench::print_banner(
      "Figure 11",
      "pruning curves vs alpha*I + beta*M, WHT(2^18)");

  auto pop = bench::build_population(18, options.samples_large, options.seed);
  const auto kept = bench::fence_filter(pop.cycles);
  const auto cycles = stats::select(pop.cycles, kept);
  const auto instructions = stats::select(pop.instructions, kept);
  const auto misses = stats::select(pop.misses, kept);

  // Combine with the correlation-maximizing coefficients (Figure 9 step).
  const auto grid = stats::correlation_grid(instructions, misses, cycles, 0.05);
  std::printf("using alpha = %.2f, beta = %.2f (max rho = %.4f)\n",
              grid.best_alpha, grid.best_beta, grid.best_rho);
  std::vector<double> combined(instructions.size());
  for (std::size_t i = 0; i < combined.size(); ++i) {
    combined[i] = grid.best_alpha * instructions[i] + grid.best_beta * misses[i];
  }

  const std::vector<double> percentiles{0.01, 0.05, 0.10};
  std::vector<stats::PruningCurve> curves;
  for (double p : percentiles) {
    curves.push_back(stats::pruning_curve(combined, cycles, p, 40));
  }

  util::TextTable table({"aI+bM threshold", "P(outside top 1%)",
                         "P(outside top 5%)", "P(outside top 10%)"});
  for (std::size_t i = 0; i < curves[0].thresholds.size(); ++i) {
    table.add_row({util::TextTable::fmt(curves[0].thresholds[i], 6),
                   util::TextTable::fmt(curves[0].outside_fraction[i], 4),
                   util::TextTable::fmt(curves[1].outside_fraction[i], 4),
                   util::TextTable::fmt(curves[2].outside_fraction[i], 4)});
  }
  table.print();

  for (std::size_t c = 0; c < percentiles.size(); ++c) {
    std::printf(
        "top-%g%% plans retained by pruning at combined model >= %.5g\n",
        percentiles[c] * 100,
        stats::min_safe_threshold(combined, cycles, percentiles[c]));
  }
  std::printf("(expect each curve to approach 1-p at the right edge.)\n");

  bench::write_csv(options, "fig11_pruning_large",
                   {"threshold", "outside_p01", "outside_p05", "outside_p10"},
                   {curves[0].thresholds, curves[0].outside_fraction,
                    curves[1].outside_fraction, curves[2].outside_fraction});
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = whtlab::bench::HarnessOptions::parse(argc, argv);
  if (!options) return 0;
  return run(*options);
}
