// Figure 9: Pearson correlation of cycles with alpha*Instructions +
// beta*Misses over the (alpha, beta) grid [0,1]^2 in steps of 0.05, for the
// WHT(2^18) sample.
//
// Paper headline: the maximum rho = 0.92 occurs at alpha = 1.00, beta = 0.05
// — the combined model recovers nearly the in-cache correlation.  (Only the
// ratio beta/alpha matters; the surface is constant along rays.)
#include <cstdio>

#include "common/harness.hpp"
#include "stats/correlation.hpp"
#include "stats/descriptive.hpp"
#include "stats/grid_opt.hpp"

namespace {

using namespace whtlab;

int run(const bench::HarnessOptions& options) {
  bench::print_banner(
      "Figure 9",
      "rho(alpha,beta) for alpha*I + beta*M vs cycles, WHT(2^18)");

  auto pop = bench::build_population(18, options.samples_large, options.seed);
  const auto kept = bench::fence_filter(pop.cycles);
  const auto cycles = stats::select(pop.cycles, kept);
  const auto instructions = stats::select(pop.instructions, kept);
  const auto misses = stats::select(pop.misses, kept);

  const auto grid = stats::correlation_grid(instructions, misses, cycles, 0.05);

  // Print every 4th grid line to keep the table readable; full surface in CSV.
  std::printf("\nrho surface (rows: alpha, cols: beta; every 4th value):\n");
  std::printf("alpha\\beta");
  for (std::size_t j = 0; j < grid.betas.size(); j += 4) {
    std::printf("  %5.2f", grid.betas[j]);
  }
  std::printf("\n");
  for (std::size_t i = 0; i < grid.alphas.size(); i += 4) {
    std::printf("   %5.2f  ", grid.alphas[i]);
    for (std::size_t j = 0; j < grid.betas.size(); j += 4) {
      std::printf("  %5.2f", grid.rho[i][j]);
    }
    std::printf("\n");
  }

  const double rho_i = stats::pearson(instructions, cycles);
  const double rho_m = stats::pearson(misses, cycles);
  std::printf("\nrho(instructions alone) = %.4f   [paper: 0.77]\n", rho_i);
  std::printf("rho(misses alone)       = %.4f   [paper: 0.66]\n", rho_m);
  std::printf("max rho = %.4f at alpha = %.2f, beta = %.2f   [paper: 0.92 at (1.00, 0.05)]\n",
              grid.best_rho, grid.best_alpha, grid.best_beta);
  std::printf("optimal mixing ratio beta/alpha = %.4f\n",
              grid.best_alpha > 0 ? grid.best_beta / grid.best_alpha : 0.0);

  // CSV: long format alpha,beta,rho.
  std::vector<double> alphas;
  std::vector<double> betas;
  std::vector<double> rhos;
  for (std::size_t i = 0; i < grid.alphas.size(); ++i) {
    for (std::size_t j = 0; j < grid.betas.size(); ++j) {
      alphas.push_back(grid.alphas[i]);
      betas.push_back(grid.betas[j]);
      rhos.push_back(grid.rho[i][j]);
    }
  }
  bench::write_csv(options, "fig09_alphabeta_grid", {"alpha", "beta", "rho"},
                   {alphas, betas, rhos});
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = whtlab::bench::HarnessOptions::parse(argc, argv);
  if (!options) return 0;
  return run(*options);
}
