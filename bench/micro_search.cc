// Search-strategy ablation: model-based DP vs runtime-based DP vs pruned and
// plain random search — the engineering trade the paper's conclusion points
// at ("restrict a random or exhaustive search to this subspace").
#include <benchmark/benchmark.h>

#include "model/combined_model.hpp"
#include "model/instruction_model.hpp"
#include "perf/measure.hpp"
#include "search/dp_search.hpp"
#include "search/pruned_search.hpp"
#include "util/rng.hpp"

namespace {

using namespace whtlab;

void BM_DpSearchModelCost(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto result = search::dp_search(
        n, [](const core::Plan& p) { return model::instruction_count(p); });
    benchmark::DoNotOptimize(result.cost);
  }
}
BENCHMARK(BM_DpSearchModelCost)->Arg(10)->Arg(14)->Arg(18)
    ->Unit(benchmark::kMillisecond);

void BM_DpSearchCombinedModelCost(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  model::CombinedModel combined;
  search::DpOptions options;
  options.max_parts = 3;
  for (auto _ : state) {
    auto result = search::dp_search(
        n, [&combined](const core::Plan& p) { return combined(p); }, options);
    benchmark::DoNotOptimize(result.cost);
  }
}
BENCHMARK(BM_DpSearchCombinedModelCost)->Arg(10)->Arg(12)
    ->Unit(benchmark::kMillisecond);

void BM_PrunedRandomSearch(benchmark::State& state) {
  const int n = 10;
  util::Rng rng(5);
  search::PrunedSearchOptions options;
  options.candidates = static_cast<int>(state.range(0));
  options.keep_fraction = 0.1;
  options.measure.repetitions = 3;
  options.measure.warmup = 1;
  for (auto _ : state) {
    auto result = search::model_pruned_search(
        n, [](const core::Plan& p) { return model::instruction_count(p); },
        rng, options);
    benchmark::DoNotOptimize(result.best_cycles);
  }
}
BENCHMARK(BM_PrunedRandomSearch)->Arg(50)->Arg(100)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
