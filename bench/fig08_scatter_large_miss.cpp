// Figure 8: cache misses vs cycles scatter for the WHT(2^18) sample.
// Paper headline: rho = 0.66 — misses alone correlate worse than
// instructions alone; the combination (Figure 9) beats both.
#include <cstdio>

#include "cachesim/trace_runner.hpp"
#include "common/harness.hpp"
#include "common/scatter.hpp"
#include "perf/measure.hpp"
#include "stats/descriptive.hpp"

namespace {

using namespace whtlab;

int run(const bench::HarnessOptions& options) {
  bench::print_banner("Figure 8",
                      "cache misses vs cycles, WHT(2^18) (paper: rho = 0.66)");

  auto pop = bench::build_population(18, options.samples_large, options.seed);
  const auto kept = bench::fence_filter(pop.cycles);
  bench::ScatterSeries series;
  series.x_label = "l1_misses";
  series.x = stats::select(pop.misses, kept);
  series.cycles = stats::select(pop.cycles, kept);

  perf::MeasureOptions measure;
  measure.repetitions = 5;
  const auto l1 = cachesim::CacheConfig::host_l1();
  const auto canon = bench::canonical_suite(18);
  const core::Plan best = bench::best_plan_by_runtime(18);
  std::vector<bench::Marker> markers;
  for (const auto& [name, plan] :
       {std::pair<const char*, const core::Plan*>{"best", &best},
        {"iterative", &canon.iterative},
        {"right", &canon.right_recursive},
        {"left", &canon.left_recursive}}) {
    markers.push_back(
        {name,
         static_cast<double>(cachesim::simulate_plan(*plan, l1).l1_misses),
         bench::fixed_transform(*plan).measure(measure).cycles()});
  }
  bench::report_scatter(options, "fig08_scatter_large_miss", series, markers);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = whtlab::bench::HarnessOptions::parse(argc, argv);
  if (!options) return 0;
  return run(*options);
}
