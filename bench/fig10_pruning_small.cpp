// Figure 10: cumulative percentage of WHT(2^9) algorithms with performance
// outside the pth percentile, as a function of instruction count
// (p = 1, 5, 10).
//
// Paper payoff: "for size n = 9, to find an algorithm whose performance is
// within 5% of the best we may discard all algorithms with more than 7x10^4
// instructions" — the curves stay near 0 up to a modest threshold and
// approach 1 - p at the maximum.
#include <cstdio>

#include "common/harness.hpp"
#include "stats/descriptive.hpp"
#include "stats/pruning.hpp"
#include "util/table.hpp"

namespace {

using namespace whtlab;

int run(const bench::HarnessOptions& options) {
  bench::print_banner("Figure 10",
                      "pruning curves vs instruction count, WHT(2^9)");

  auto pop = bench::build_population(9, options.samples_small, options.seed);
  const auto kept = bench::fence_filter(pop.cycles);
  const auto cycles = stats::select(pop.cycles, kept);
  const auto instructions = stats::select(pop.instructions, kept);

  const std::vector<double> percentiles{0.01, 0.05, 0.10};
  std::vector<stats::PruningCurve> curves;
  for (double p : percentiles) {
    curves.push_back(stats::pruning_curve(instructions, cycles, p, 40));
  }

  util::TextTable table({"instr threshold", "P(outside top 1%)",
                         "P(outside top 5%)", "P(outside top 10%)"});
  for (std::size_t i = 0; i < curves[0].thresholds.size(); ++i) {
    table.add_row({util::TextTable::fmt(curves[0].thresholds[i], 6),
                   util::TextTable::fmt(curves[0].outside_fraction[i], 4),
                   util::TextTable::fmt(curves[1].outside_fraction[i], 4),
                   util::TextTable::fmt(curves[2].outside_fraction[i], 4)});
  }
  table.print();

  for (std::size_t c = 0; c < percentiles.size(); ++c) {
    const double threshold = stats::min_safe_threshold(
        instructions, cycles, percentiles[c]);
    std::printf(
        "top-%g%% plans are retained by pruning at instruction count >= %.5g\n",
        percentiles[c] * 100, threshold);
  }
  std::printf("(expect each curve to approach 1-p at the right edge.)\n");

  bench::write_csv(options, "fig10_pruning_small",
                   {"threshold", "outside_p01", "outside_p05", "outside_p10"},
                   {curves[0].thresholds, curves[0].outside_fraction,
                    curves[1].outside_fraction, curves[2].outside_fraction});
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = whtlab::bench::HarnessOptions::parse(argc, argv);
  if (!options) return 0;
  return run(*options);
}
