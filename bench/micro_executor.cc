// Executor throughput across plan shapes and sizes, plus the parallel
// executor ablation.
//
// The canonical-plan cases are the raw material of Figure 1; the
// MFLOP-style items/sec counter (butterfly outputs per second) makes sizes
// comparable.
#include <benchmark/benchmark.h>

#include "api/wht.hpp"
#include "core/executor.hpp"
#include "core/parallel_executor.hpp"
#include "core/plan.hpp"
#include "util/aligned_buffer.hpp"
#include "util/rng.hpp"

namespace {

using namespace whtlab;

void run_plan(benchmark::State& state, const core::Plan& plan) {
  util::AlignedBuffer x(plan.size());
  util::Rng rng(3);
  for (auto& v : x) v = rng.uniform(-1, 1);
  for (auto _ : state) {
    core::execute(plan, x.data());
    benchmark::DoNotOptimize(x.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(plan.size()) * plan.log2_size());
}

void BM_Iterative(benchmark::State& state) {
  run_plan(state, core::Plan::iterative(static_cast<int>(state.range(0))));
}
void BM_RightRecursive(benchmark::State& state) {
  run_plan(state, core::Plan::right_recursive(static_cast<int>(state.range(0))));
}
void BM_LeftRecursive(benchmark::State& state) {
  run_plan(state, core::Plan::left_recursive(static_cast<int>(state.range(0))));
}
void BM_BalancedRadix4(benchmark::State& state) {
  run_plan(state,
           core::Plan::balanced_binary(static_cast<int>(state.range(0)), 4));
}
void BM_IterativeRadix8(benchmark::State& state) {
  run_plan(state,
           core::Plan::iterative_radix(static_cast<int>(state.range(0)), 8));
}

BENCHMARK(BM_Iterative)->DenseRange(8, 20, 4);
BENCHMARK(BM_RightRecursive)->DenseRange(8, 20, 4);
BENCHMARK(BM_LeftRecursive)->DenseRange(8, 20, 4);
BENCHMARK(BM_BalancedRadix4)->DenseRange(8, 20, 4);
BENCHMARK(BM_IterativeRadix8)->DenseRange(8, 20, 4);

void BM_ParallelExecutor(benchmark::State& state) {
  const core::Plan plan = core::Plan::balanced_binary(18, 6);
  const int threads = static_cast<int>(state.range(0));
  util::AlignedBuffer x(plan.size());
  x.fill(1.0);
  for (auto _ : state) {
    core::execute_parallel(plan, x.data(), threads);
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(plan.size()) * plan.log2_size());
}

BENCHMARK(BM_ParallelExecutor)->Arg(1)->Arg(2)->Arg(4);

// Façade overhead ablation: the same plan driven through a registry-created
// backend (virtual dispatch per execute) vs core::execute above.
void BM_TransformFacade(benchmark::State& state) {
  auto transform =
      wht::Planner()
          .fixed(core::Plan::balanced_binary(static_cast<int>(state.range(0)), 6))
          .plan();
  util::AlignedBuffer x(transform.size());
  util::Rng rng(3);
  for (auto& v : x) v = rng.uniform(-1, 1);
  for (auto _ : state) {
    transform.execute(x.data());
    benchmark::DoNotOptimize(x.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(transform.size()) * transform.log2_size());
}

BENCHMARK(BM_TransformFacade)->DenseRange(8, 20, 4);

}  // namespace

BENCHMARK_MAIN();
