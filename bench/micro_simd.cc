// Scalar vs SIMD executor ablation: single-transform throughput by size and
// level, the batch-interleaved execute_many against a per-vector scalar
// loop, and the cache-blocked fused engine against the tree walk.
// Items/sec counts butterfly outputs (size * log2size per transform) so
// sizes and shapes are comparable; a forced-scalar series isolates what
// vectorization buys over the identical tree walk.
//
// Noise convention (1-vCPU hosts): run with --benchmark_repetitions=N and
// --benchmark_report_aggregates_only=true and read the *_median lines —
// google-benchmark (1.7.1 here: --benchmark_min_time takes a bare double)
// aggregates mean/median/stddev across repetitions.  See README's bench
// section.
#include <benchmark/benchmark.h>

#include "api/wht.hpp"
#include "core/executor.hpp"
#include "core/plan.hpp"
#include "core/schedule.hpp"
#include "simd/cpu_features.hpp"
#include "simd/fused_executor.hpp"
#include "simd/simd_executor.hpp"
#include "util/aligned_buffer.hpp"
#include "util/rng.hpp"

namespace {

using namespace whtlab;

core::Plan bench_plan(int n) { return core::Plan::balanced_binary(n, 6); }

void BM_ScalarExecute(benchmark::State& state) {
  const core::Plan plan = bench_plan(static_cast<int>(state.range(0)));
  util::AlignedBuffer x(plan.size());
  util::Rng rng(3);
  for (auto& v : x) v = rng.uniform(-1, 1);
  for (auto _ : state) {
    core::execute(plan, x.data());
    benchmark::DoNotOptimize(x.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(plan.size()) *
                          plan.log2_size());
}

void BM_SimdExecute(benchmark::State& state) {
  const core::Plan plan = bench_plan(static_cast<int>(state.range(0)));
  util::AlignedBuffer x(plan.size());
  util::Rng rng(3);
  for (auto& v : x) v = rng.uniform(-1, 1);
  state.SetLabel(simd::to_string(simd::active_level()));
  for (auto _ : state) {
    simd::execute(plan, x.data());
    benchmark::DoNotOptimize(x.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(plan.size()) *
                          plan.log2_size());
}

void BM_FusedExecute(benchmark::State& state) {
  const core::Plan plan = bench_plan(static_cast<int>(state.range(0)));
  const core::Schedule schedule =
      core::lower_plan(plan, simd::detect_blocking());
  util::AlignedBuffer x(plan.size());
  util::Rng rng(3);
  for (auto& v : x) v = rng.uniform(-1, 1);
  state.SetLabel(simd::to_string(simd::active_level()));
  for (auto _ : state) {
    simd::execute_fused(schedule, x.data());
    benchmark::DoNotOptimize(x.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(plan.size()) *
                          plan.log2_size());
}

BENCHMARK(BM_ScalarExecute)->DenseRange(8, 20, 2);
BENCHMARK(BM_SimdExecute)->DenseRange(8, 20, 2);
BENCHMARK(BM_FusedExecute)->DenseRange(8, 20, 2);

constexpr std::size_t kBatch = 32;

void BM_ScalarExecuteMany(benchmark::State& state) {
  const core::Plan plan = bench_plan(static_cast<int>(state.range(0)));
  util::AlignedBuffer batch(kBatch * plan.size());
  util::Rng rng(5);
  for (auto& v : batch) v = rng.uniform(-1, 1);
  for (auto _ : state) {
    for (std::size_t v = 0; v < kBatch; ++v) {
      core::execute(plan, batch.data() + v * plan.size());
    }
    benchmark::DoNotOptimize(batch.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kBatch) *
                          static_cast<std::int64_t>(plan.size()) *
                          plan.log2_size());
}

void BM_SimdExecuteMany(benchmark::State& state) {
  const core::Plan plan = bench_plan(static_cast<int>(state.range(0)));
  util::AlignedBuffer batch(kBatch * plan.size());
  util::Rng rng(5);
  for (auto& v : batch) v = rng.uniform(-1, 1);
  state.SetLabel(simd::to_string(simd::active_level()));
  for (auto _ : state) {
    simd::execute_many(plan, batch.data(), kBatch,
                       static_cast<std::ptrdiff_t>(plan.size()));
    benchmark::DoNotOptimize(batch.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kBatch) *
                          static_cast<std::int64_t>(plan.size()) *
                          plan.log2_size());
}

BENCHMARK(BM_ScalarExecuteMany)->DenseRange(8, 16, 2);
BENCHMARK(BM_SimdExecuteMany)->DenseRange(8, 16, 2);

// The façade path users actually hit: Transform::execute_many through the
// registry-created "simd" backend (virtual dispatch + interleave).
void BM_TransformSimdExecuteMany(benchmark::State& state) {
  auto transform = wht::Planner()
                       .fixed(bench_plan(static_cast<int>(state.range(0))))
                       .backend("simd")
                       .plan();
  util::AlignedBuffer batch(kBatch * transform.size());
  util::Rng rng(7);
  for (auto& v : batch) v = rng.uniform(-1, 1);
  for (auto _ : state) {
    transform.execute_many(batch.data(), kBatch);
    benchmark::DoNotOptimize(batch.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kBatch) *
                          static_cast<std::int64_t>(transform.size()) *
                          transform.log2_size());
}

BENCHMARK(BM_TransformSimdExecuteMany)->DenseRange(8, 16, 4);

}  // namespace

BENCHMARK_MAIN();
