// Figure 2: ratio of instruction counts of the canonical algorithms to the
// best algorithm, sizes 2^1 .. 2^maxn.
//
// Paper shape: the iterative algorithm has the lowest instruction count of
// the canonical plans at every size (1.5-2x best); the recursive plans sit
// higher (right below left).
#include <cstdio>

#include "common/harness.hpp"
#include "model/instruction_model.hpp"
#include "util/table.hpp"

namespace {

using namespace whtlab;

int run(const bench::HarnessOptions& options) {
  bench::print_banner("Figure 2",
                      "instruction-count ratio: canonical algorithms vs DP best");

  util::TextTable table({"n", "instr(best)", "iter/best", "right/best",
                         "left/best"});
  std::vector<double> ns;
  std::vector<double> ratio_iter;
  std::vector<double> ratio_right;
  std::vector<double> ratio_left;

  for (int n = 1; n <= options.max_n; ++n) {
    const core::Plan best = bench::best_plan_by_runtime(n);
    const auto canon = bench::canonical_suite(n);
    const double best_instr = model::instruction_count(best);
    ns.push_back(n);
    ratio_iter.push_back(model::instruction_count(canon.iterative) / best_instr);
    ratio_right.push_back(
        model::instruction_count(canon.right_recursive) / best_instr);
    ratio_left.push_back(
        model::instruction_count(canon.left_recursive) / best_instr);
    table.add_row({util::TextTable::fmt(n),
                   util::TextTable::fmt(best_instr, 5),
                   util::TextTable::fmt(ratio_iter.back(), 4),
                   util::TextTable::fmt(ratio_right.back(), 4),
                   util::TextTable::fmt(ratio_left.back(), 4)});
  }
  table.print();

  std::printf("\nexpect: iterative lowest among canonical at every size, and\n"
              "right recursive below left recursive.\n");
  bench::write_csv(options, "fig02_canonical_instructions",
                   {"n", "iter_over_best", "right_over_best", "left_over_best"},
                   {ns, ratio_iter, ratio_right, ratio_left});
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = whtlab::bench::HarnessOptions::parse(argc, argv);
  if (!options) return 0;
  return run(*options);
}
