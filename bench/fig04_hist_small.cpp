// Figure 4: histograms (50 bins) of cycle counts and instruction counts for
// a random sample of WHT(2^9) algorithms, outer-fence outlier filtered.
//
// Paper shape: the two histograms have very similar shape at this in-cache
// size — the visual prelude to the rho = 0.96 correlation of Figure 6.
#include <cstdio>

#include "common/harness.hpp"
#include "stats/descriptive.hpp"
#include "stats/histogram.hpp"
#include "stats/regression.hpp"

namespace {

using namespace whtlab;

void print_histogram(const char* title, const std::vector<double>& xs) {
  const stats::Histogram hist(xs, 50);
  std::printf("\n%s (%llu samples, 50 bins)\n", title,
              static_cast<unsigned long long>(hist.total()));
  std::printf("%s", hist.render(60).c_str());
  std::printf("mean=%.4g sd=%.4g skew=%.3f excess-kurtosis=%.3f JB=%.1f\n",
              stats::mean(xs), stats::stddev(xs), stats::skewness(xs),
              stats::excess_kurtosis(xs), stats::jarque_bera(xs));
}

int run(const bench::HarnessOptions& options) {
  bench::print_banner(
      "Figure 4", "cycle & instruction histograms, WHT(2^9) random sample");

  auto pop = bench::build_population(9, options.samples_small, options.seed);

  // Paper: filter extreme outliers beyond the outer fences (on cycles; the
  // instruction counts are deterministic and have no outliers to shed).
  const auto kept = bench::fence_filter(pop.cycles);
  std::printf("outer-fence filter kept %zu / %zu samples\n", kept.size(),
              pop.cycles.size());
  const auto cycles = stats::select(pop.cycles, kept);
  const auto instructions = stats::select(pop.instructions, kept);

  print_histogram("Cycle counts", cycles);
  print_histogram("Instruction counts", instructions);

  std::vector<double> cycle_centers;
  std::vector<double> cycle_counts;
  const stats::Histogram hc(cycles, 50);
  for (int b = 0; b < hc.bins(); ++b) {
    cycle_centers.push_back(hc.bin_center(b));
    cycle_counts.push_back(static_cast<double>(hc.count(b)));
  }
  std::vector<double> instr_centers;
  std::vector<double> instr_counts;
  const stats::Histogram hi(instructions, 50);
  for (int b = 0; b < hi.bins(); ++b) {
    instr_centers.push_back(hi.bin_center(b));
    instr_counts.push_back(static_cast<double>(hi.count(b)));
  }
  bench::write_csv(options, "fig04_hist_small_cycles",
                   {"bin_center", "count"}, {cycle_centers, cycle_counts});
  bench::write_csv(options, "fig04_hist_small_instructions",
                   {"bin_center", "count"}, {instr_centers, instr_counts});
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = whtlab::bench::HarnessOptions::parse(argc, argv);
  if (!options) return 0;
  return run(*options);
}
