// bench_serve — concurrent serving throughput driver (writes BENCH_serve.json).
//
// Hammer one shared wht::Engine from T client threads and count transforms
// served per second — the production shape the concurrent-serving redesign
// targets: immutable shared plans, re-entrant backends, serve-time backend
// arbitration, and the submit() coalescer.  Four sections:
//
//   decisions  the arbiter's backend choice (and every candidate's priced
//              cost) per request shape — single vectors across the n range
//              and tiny-n batches; the committed JSON documents the shape
//              sensitivity ("fused" big singles, "simd" tiny batches)
//   single     homogeneous single-vector serving at --gate-n: requests/sec
//              vs client threads (the CI scaling gate's shape)
//   mixed      singles + batches across n in [--nmin, --nmax] per the
//              ISSUE's mixed serving workload
//   coalesce   submit() pipelines (coalescing batcher) vs the same load as
//              synchronous singles
//
// Noise convention (README): every cell is the best of --reps runs (we
// measure capacity, so the max is the statistic — interference only ever
// subtracts).  --assert-scaling R exits nonzero unless single-shape
// throughput at --assert-threads clients is >= R x the 1-client value:
// meaningless on single-core hosts, so the CI job (multi-core runners)
// owns the gate.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/wht.hpp"
#include "simd/cpu_features.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

namespace {

using namespace whtlab;

std::vector<int> parse_int_list(const std::string& text) {
  std::vector<int> out;
  std::string current;
  for (const char c : text + ",") {
    if (c == ',') {
      if (!current.empty()) out.push_back(std::stoi(current));
      current.clear();
    } else {
      current += c;
    }
  }
  return out;
}

using util::random_vector;

/// Runs `clients` threads against `work` for ~`seconds`; returns vectors/s.
/// `work(tid)` serves one unit and returns the vectors it served.
template <typename WorkFn>
double throughput(int clients, double seconds, const WorkFn& work) {
  std::atomic<bool> go{false};
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> served{0};
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(clients));
  for (int t = 0; t < clients; ++t) {
    pool.emplace_back([&, t]() {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      std::uint64_t local = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        local += work(t);
      }
      served.fetch_add(local);
    });
  }
  const auto start = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  stop.store(true, std::memory_order_relaxed);
  for (auto& thread : pool) thread.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return static_cast<double>(served.load()) / elapsed;
}

template <typename WorkFn>
double best_throughput(int clients, double seconds, int reps,
                       const WorkFn& work) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    best = std::max(best, throughput(clients, seconds, work));
  }
  return best;
}

struct ShapeDecision {
  int n = 0;
  std::size_t count = 0;
  wht::Engine::Decision decision;
};

/// --telemetry-overhead cell: the same single-vector workload through two
/// fresh engines, telemetry on vs off.
struct TelemetryOverhead {
  bool measured = false;
  int n = 0;
  double on_rps = 0.0;   ///< best round, telemetry on
  double off_rps = 0.0;  ///< best round, telemetry off
  /// Per-round paired overheads, percent (on and off windows back-to-back).
  std::vector<double> round_pcts;
  /// Median of the paired per-round ratios: each round's on/off windows run
  /// back-to-back and share the host's noise, so their ratio cancels drift
  /// that a best-of-on vs best-of-off comparison re-introduces.  Positive =
  /// recording costs throughput; sub-noise values go negative.
  double overhead_pct() const {
    if (round_pcts.empty()) {
      return off_rps > 0.0 ? (off_rps - on_rps) / off_rps * 100.0 : 0.0;
    }
    std::vector<double> sorted = round_pcts;
    std::sort(sorted.begin(), sorted.end());
    const std::size_t mid = sorted.size() / 2;
    return sorted.size() % 2 == 1
               ? sorted[mid]
               : 0.5 * (sorted[mid - 1] + sorted[mid]);
  }
};

void print_json(std::FILE* out, const std::vector<ShapeDecision>& decisions,
                const std::vector<int>& threads, int gate_n,
                const std::vector<double>& single_rps,
                const std::vector<double>& mixed_rps, int coalesce_n,
                const std::vector<double>& coalesce_rps,
                const std::vector<double>& sync_rps,
                const TelemetryOverhead& overhead,
                const wht::Engine::Stats& stats) {
  std::fprintf(out, "{\n  \"bench\": \"serve\",\n");
  std::fprintf(out, "  \"host_cores\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(out, "  \"simd_level\": \"%s\",\n",
               simd::to_string(simd::active_level()));
  std::fprintf(out, "  \"decisions\": [\n");
  for (std::size_t i = 0; i < decisions.size(); ++i) {
    const auto& shape = decisions[i];
    std::fprintf(out,
                 "    {\"n\": %d, \"count\": %zu, \"backend\": \"%s\", "
                 "\"candidates\": [",
                 shape.n, shape.count, shape.decision.backend.c_str());
    for (std::size_t c = 0; c < shape.decision.candidates.size(); ++c) {
      const auto& candidate = shape.decision.candidates[c];
      std::fprintf(out, "%s{\"backend\": \"%s\", \"cost\": %.6g}",
                   c ? ", " : "", candidate.backend.c_str(), candidate.cost);
    }
    std::fprintf(out, "]}%s\n", i + 1 < decisions.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");

  const auto print_series = [out](const char* name,
                                  const std::vector<double>& values) {
    std::fprintf(out, "\"%s\": [", name);
    for (std::size_t i = 0; i < values.size(); ++i) {
      std::fprintf(out, "%s%.1f", i ? ", " : "", values[i]);
    }
    std::fprintf(out, "]");
  };
  std::fprintf(out, "  \"threads\": [");
  for (std::size_t i = 0; i < threads.size(); ++i) {
    std::fprintf(out, "%s%d", i ? ", " : "", threads[i]);
  }
  std::fprintf(out, "],\n");
  std::fprintf(out, "  \"single\": {\"n\": %d, ", gate_n);
  print_series("rps", single_rps);
  std::fprintf(out, "},\n  \"mixed\": {");
  print_series("rps", mixed_rps);
  std::fprintf(out, "},\n  \"coalesce\": {\"n\": %d, ", coalesce_n);
  print_series("submit_rps", coalesce_rps);
  std::fprintf(out, ", ");
  print_series("sync_rps", sync_rps);
  if (overhead.measured) {
    std::fprintf(out,
                 "},\n  \"telemetry_overhead\": {\"n\": %d, \"on_rps\": %.1f, "
                 "\"off_rps\": %.1f, \"overhead_pct\": %.2f",
                 overhead.n, overhead.on_rps, overhead.off_rps,
                 overhead.overhead_pct());
  }
  std::fprintf(out,
               "},\n  \"engine_stats\": {\"vectors\": %llu, \"batches\": %llu, "
               "\"coalesced\": %llu}\n}\n",
               static_cast<unsigned long long>(stats.vectors),
               static_cast<unsigned long long>(stats.batches),
               static_cast<unsigned long long>(stats.coalesced));
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli;
  cli.add_flag("threads", "client thread counts, comma-separated", "1,2,4,8");
  cli.add_flag("nmin", "smallest mixed-workload transform (log2)", "10");
  cli.add_flag("nmax", "largest mixed-workload transform (log2)", "22");
  cli.add_flag("gate-n", "single-shape section size (log2)", "10");
  cli.add_flag("coalesce-n", "coalescing section size (log2)", "8");
  cli.add_flag("batch", "vectors per batched mixed request", "16");
  cli.add_flag("pipeline", "in-flight submits per client", "8");
  cli.add_flag("seconds", "measurement seconds per cell", "0.25");
  cli.add_flag("reps", "repetitions per cell (best-of)", "3");
  cli.add_flag("strategy", "planning strategy (estimate/anneal/...)",
               "estimate");
  cli.add_flag("wisdom", "wisdom file for first-touch plans", "");
  cli.add_flag("out", "output JSON path", "BENCH_serve.json");
  cli.add_flag("assert-scaling", "min rps ratio at --assert-threads vs 1", "0");
  cli.add_flag("assert-threads", "client count the scaling gate checks", "4");
  cli.add_bool("telemetry-overhead",
               "measure single-shape rps with telemetry on vs off");
  cli.add_flag("overhead-n",
               "transform size for the telemetry-overhead cell", "12");
  cli.add_flag("assert-overhead-pct",
               "fail when telemetry overhead exceeds this percent (0 = off)",
               "0");
  if (!cli.parse(argc, argv)) return 2;

  const std::vector<int> threads = parse_int_list(cli.get("threads"));
  const int nmin = static_cast<int>(cli.get_int("nmin", 10));
  const int nmax = static_cast<int>(cli.get_int("nmax", 22));
  const int gate_n = static_cast<int>(cli.get_int("gate-n", 10));
  const int coalesce_n = static_cast<int>(cli.get_int("coalesce-n", 8));
  const std::size_t batch = static_cast<std::size_t>(cli.get_int("batch", 16));
  const int pipeline = static_cast<int>(cli.get_int("pipeline", 8));
  const double seconds = cli.get_double("seconds", 0.25);
  const int reps = static_cast<int>(cli.get_int("reps", 3));

  wht::EngineOptions options;
  options.strategy = wht::strategy_from_string(cli.get("strategy"));
  options.wisdom_file = cli.get("wisdom");
  // Coalescer tuned to the offered load: a batch fills from one client's
  // pipeline without waiting out the window (the window only pads tails).
  options.max_batch = static_cast<std::size_t>(pipeline);
  options.batch_window_us = 100;
  wht::Engine engine(options);

  // --- decisions: price the request shapes (also pays planning + anchors
  // up front so the timed sections serve from warm caches) -----------------
  std::vector<ShapeDecision> decisions;
  for (int n = nmin; n <= nmax; n += 4) {
    decisions.push_back({n, 1, engine.arbitrate(n, 1)});
  }
  for (const int n : {coalesce_n - 2, coalesce_n, coalesce_n + 2}) {
    if (n < 2) continue;
    decisions.push_back({n, batch, engine.arbitrate(n, batch)});
  }
  decisions.push_back({gate_n, 1, engine.arbitrate(gate_n, 1)});
  std::printf("%6s %6s %12s   candidates\n", "n", "count", "backend");
  for (const auto& shape : decisions) {
    std::printf("%6d %6zu %12s  ", shape.n, shape.count,
                shape.decision.backend.c_str());
    for (const auto& candidate : shape.decision.candidates) {
      std::printf(" %s=%.3g", candidate.backend.c_str(), candidate.cost);
    }
    std::printf("\n");
  }

  // --- single: the scaling-gate shape -------------------------------------
  const std::uint64_t gate_size = std::uint64_t{1} << gate_n;
  std::vector<double> single_rps;
  for (const int t : threads) {
    std::vector<std::vector<double>> buffers;
    for (int i = 0; i < t; ++i) {
      buffers.push_back(random_vector(gate_size, 10 + i));
    }
    single_rps.push_back(best_throughput(
        t, seconds, reps, [&engine, &buffers, gate_n](int tid) {
          engine.execute(gate_n, buffers[static_cast<std::size_t>(tid)].data());
          return std::uint64_t{1};
        }));
    std::printf("single  n=%-3d clients=%-2d  %10.0f req/s\n", gate_n, t,
                single_rps.back());
  }

  // --- mixed: singles + batches across the n range ------------------------
  std::vector<int> mixed_sizes;
  for (int n = nmin; n <= nmax; n += 4) mixed_sizes.push_back(n);
  std::vector<double> mixed_rps;
  for (const int t : threads) {
    struct ClientState {
      std::vector<std::vector<double>> singles;
      std::vector<double> batch;
      std::size_t next = 0;
    };
    std::vector<ClientState> states(static_cast<std::size_t>(t));
    for (int i = 0; i < t; ++i) {
      auto& state = states[static_cast<std::size_t>(i)];
      for (const int n : mixed_sizes) {
        state.singles.push_back(random_vector(std::uint64_t{1} << n, 20 + i));
      }
      state.batch =
          random_vector((std::uint64_t{1} << coalesce_n) * batch, 30 + i);
    }
    mixed_rps.push_back(best_throughput(
        t, seconds, reps,
        [&engine, &states, &mixed_sizes, coalesce_n, batch](int tid) {
          auto& state = states[static_cast<std::size_t>(tid)];
          const std::size_t shape = state.next++ % (mixed_sizes.size() + 1);
          if (shape < mixed_sizes.size()) {
            engine.execute(mixed_sizes[shape], state.singles[shape].data());
            return std::uint64_t{1};
          }
          engine.execute_many(coalesce_n, state.batch.data(), batch);
          return static_cast<std::uint64_t>(batch);
        }));
    std::printf("mixed   n=[%d..%d] clients=%-2d  %10.0f req/s\n", nmin, nmax,
                t, mixed_rps.back());
  }

  // --- coalesce: submit() pipelines vs synchronous singles ----------------
  const std::uint64_t coalesce_size = std::uint64_t{1} << coalesce_n;
  std::vector<double> coalesce_rps;
  std::vector<double> sync_rps;
  for (const int t : threads) {
    std::vector<std::vector<std::vector<double>>> buffers(
        static_cast<std::size_t>(t));
    for (int i = 0; i < t; ++i) {
      for (int p = 0; p < pipeline; ++p) {
        buffers[static_cast<std::size_t>(i)].push_back(
            random_vector(coalesce_size, 40 + i * pipeline + p));
      }
    }
    coalesce_rps.push_back(best_throughput(
        t, seconds, reps, [&engine, &buffers, coalesce_n, pipeline](int tid) {
          auto& mine = buffers[static_cast<std::size_t>(tid)];
          std::vector<std::future<void>> inflight;
          inflight.reserve(static_cast<std::size_t>(pipeline));
          for (int p = 0; p < pipeline; ++p) {
            inflight.push_back(
                engine.submit(coalesce_n,
                              mine[static_cast<std::size_t>(p)].data()));
          }
          for (auto& f : inflight) f.get();
          return static_cast<std::uint64_t>(pipeline);
        }));
    sync_rps.push_back(best_throughput(
        t, seconds, reps, [&engine, &buffers, coalesce_n](int tid) {
          engine.execute(coalesce_n,
                         buffers[static_cast<std::size_t>(tid)][0].data());
          return std::uint64_t{1};
        }));
    std::printf("coalesce n=%-3d clients=%-2d  submit %9.0f req/s   sync %9.0f req/s\n",
                coalesce_n, t, coalesce_rps.back(), sync_rps.back());
  }

  // --- telemetry overhead: recording cost on the hot path -----------------
  // Two fresh engines serve the identical single-vector workload from one
  // client; the delta is the per-request price of the two timestamps plus
  // the relaxed-atomic recording.  The backend is pinned to the main
  // engine's pick so both variants run the exact same kernel — with
  // measure_costs left on, independent anchor re-measurement can flip the
  // arbiter between near-tied backends and swamp the nanosecond-scale
  // effect under test.  One client keeps the comparison clean — under
  // contention the recording cost hides in coherence noise, which would
  // only flatter the result.
  TelemetryOverhead overhead;
  if (cli.has("telemetry-overhead")) {
    const int overhead_n = static_cast<int>(cli.get_int("overhead-n", 12));
    const std::uint64_t overhead_size = std::uint64_t{1} << overhead_n;
    const std::string pinned = engine.arbitrate(overhead_n, 1).backend;
    const auto make_probe = [&](bool telemetry) {
      wht::EngineOptions variant = options;
      variant.telemetry = telemetry;
      variant.backends = {pinned};
      variant.measure_costs = false;  // one candidate; anchors can't reroute
      return std::make_unique<wht::Engine>(variant);
    };
    const auto probe_on = make_probe(true);
    const auto probe_off = make_probe(false);
    std::vector<double> buffer = random_vector(overhead_size, 7);
    // Short windows, many paired rounds: on this class of (virtualized)
    // host the noise is bursty steal time, so a 0.1 s on/off pair usually
    // lands inside one noise regime and the median over many pairs is far
    // tighter than a few long windows.
    const double window = std::min(seconds, 0.1);
    const int rounds = std::max(reps * 8, 24);
    const auto time_probe = [&](wht::Engine& probe) {
      return throughput(1, window, [&probe, &buffer, overhead_n](int) {
        probe.execute(overhead_n, buffer.data());
        return std::uint64_t{1};
      });
    };
    // Pay planning, then warm caches and clocks before timing.
    for (int i = 0; i < 512; ++i) {
      probe_on->execute(overhead_n, buffer.data());
      probe_off->execute(overhead_n, buffer.data());
    }
    // The effect under test is ~100 ns/request, so this cell takes more
    // rounds than the throughput cells to let the median converge.
    overhead.measured = true;
    overhead.n = overhead_n;
    for (int r = 0; r < rounds; ++r) {
      const double on = time_probe(*probe_on);
      const double off = time_probe(*probe_off);
      overhead.on_rps = std::max(overhead.on_rps, on);
      overhead.off_rps = std::max(overhead.off_rps, off);
      if (off > 0.0) overhead.round_pcts.push_back((off - on) / off * 100.0);
    }
    std::printf(
        "telemetry n=%-3d backend=%-10s  on %9.0f req/s   off %9.0f req/s   "
        "overhead %.2f%%\n",
        overhead_n, pinned.c_str(), overhead.on_rps, overhead.off_rps,
        overhead.overhead_pct());
  }

  const auto stats = engine.stats();
  const std::string out_path = cli.get("out");
  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "bench_serve: cannot write %s\n", out_path.c_str());
    return 1;
  }
  print_json(out, decisions, threads, gate_n, single_rps, mixed_rps,
             coalesce_n, coalesce_rps, sync_rps, overhead, stats);
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());

  const double gate = cli.get_double("assert-scaling", 0.0);
  if (gate > 0.0) {
    const int gate_clients = static_cast<int>(cli.get_int("assert-threads", 4));
    double base = 0.0, scaled = 0.0;
    for (std::size_t i = 0; i < threads.size(); ++i) {
      if (threads[i] == 1) base = single_rps[i];
      if (threads[i] == gate_clients) scaled = single_rps[i];
    }
    if (base <= 0.0 || scaled <= 0.0) {
      std::fprintf(stderr,
                   "bench_serve: --assert-scaling needs 1 and %d in --threads\n",
                   gate_clients);
      return 1;
    }
    const double ratio = scaled / base;
    std::printf("scaling gate: %d clients = %.2fx of 1 client (need >= %.2f)\n",
                gate_clients, ratio, gate);
    if (ratio < gate) {
      std::fprintf(stderr,
                   "bench_serve: FAIL concurrent throughput %.2fx < %.2fx\n",
                   ratio, gate);
      return 1;
    }
  }

  const double overhead_gate = cli.get_double("assert-overhead-pct", 0.0);
  if (overhead_gate > 0.0) {
    if (!overhead.measured) {
      std::fprintf(stderr,
                   "bench_serve: --assert-overhead-pct needs "
                   "--telemetry-overhead\n");
      return 1;
    }
    if (overhead.overhead_pct() > overhead_gate) {
      std::fprintf(stderr,
                   "bench_serve: FAIL telemetry overhead %.2f%% > %.2f%%\n",
                   overhead.overhead_pct(), overhead_gate);
      return 1;
    }
  }
  return 0;
}
