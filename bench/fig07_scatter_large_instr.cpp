// Figure 7: instructions vs cycles scatter for the WHT(2^18) sample.
// Paper headline: the in-cache correlation (0.96) drops to rho = 0.77 once
// the transform no longer fits in L1; the left recursive algorithm falls
// outside the plotted range (cache-bound cycles).
#include <cstdio>

#include "common/harness.hpp"
#include "common/scatter.hpp"
#include "model/instruction_model.hpp"
#include "perf/measure.hpp"
#include "stats/descriptive.hpp"

namespace {

using namespace whtlab;

int run(const bench::HarnessOptions& options) {
  bench::print_banner("Figure 7",
                      "instructions vs cycles, WHT(2^18) (paper: rho = 0.77)");

  auto pop = bench::build_population(18, options.samples_large, options.seed);
  const auto kept = bench::fence_filter(pop.cycles);
  bench::ScatterSeries series;
  series.x_label = "instructions";
  series.x = stats::select(pop.instructions, kept);
  series.cycles = stats::select(pop.cycles, kept);

  perf::MeasureOptions measure;
  measure.repetitions = 5;
  const auto canon = bench::canonical_suite(18);
  const core::Plan best = bench::best_plan_by_runtime(18);
  std::vector<bench::Marker> markers;
  for (const auto& [name, plan] :
       {std::pair<const char*, const core::Plan*>{"best", &best},
        {"iterative", &canon.iterative},
        {"right", &canon.right_recursive},
        {"left", &canon.left_recursive}}) {
    markers.push_back({name, model::instruction_count(*plan),
                       bench::fixed_transform(*plan).measure(measure).cycles()});
  }
  bench::report_scatter(options, "fig07_scatter_large_instr", series, markers);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = whtlab::bench::HarnessOptions::parse(argc, argv);
  if (!options) return 0;
  return run(*options);
}
