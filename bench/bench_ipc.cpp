// bench_ipc — cross-process serving driver (writes BENCH_ipc.json).
//
// Measures the whtd shared-memory path end to end: a forked daemon process
// owns the Engine, C forked client processes connect through the shm
// protocol and hammer it with blocking round trips.  Reported per cell:
// requests/s, vectors/s, and p50/p99 round-trip latency from merged
// per-client log2 histograms.  Shapes:
//
//   single  one 2^n vector per request (round-trip latency shape; these
//           route through the daemon's coalescing submit() path, so
//           concurrent clients at the same n merge into batched runs)
//   batch   --batch vectors per request (the bandwidth shape; direct
//           arbitrated execute_many)
//   mixed   singles at n-2/n/n+2 interleaved with batches
//
// An in-process Engine baseline (same shapes, one thread) is recorded
// alongside so the JSON answers "what does crossing the process boundary
// cost" directly.  Fork discipline: the daemon child is forked FIRST and
// clients are forked from a parent that never starts a thread; the
// in-process baseline runs last, after all forking is done.
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "api/wht.hpp"
#include "ipc/client.hpp"
#include "ipc/daemon.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

namespace {

using namespace whtlab;

constexpr int kBuckets = 64;

/// What one client child reports back over its result pipe.
struct ClientReport {
  std::uint64_t requests = 0;
  std::uint64_t vectors = 0;
  std::uint64_t errors = 0;
  std::uint64_t latency_ns[kBuckets] = {};  // log2 round-trip histogram
};

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void record_latency(ClientReport& report, std::uint64_t ns) {
  const int bucket =
      std::min(kBuckets - 1, static_cast<int>(std::bit_width(ns | 1)) - 1);
  ++report.latency_ns[bucket];
}

/// Percentile (0..1) from a merged log2 histogram, as the bucket's upper
/// bound in microseconds — a <= bound, honest about bucket resolution.
double percentile_us(const std::uint64_t (&buckets)[kBuckets], double q) {
  std::uint64_t total = 0;
  for (const std::uint64_t b : buckets) total += b;
  if (total == 0) return 0.0;
  const auto target = static_cast<std::uint64_t>(q * static_cast<double>(total));
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets[i];
    if (seen > target) {
      return static_cast<double>(std::uint64_t{1} << (i + 1)) / 1000.0;
    }
  }
  return 18446744073709551616.0 / 1000.0;  // 2^64 ns — "off the histogram"
}

struct Shape {
  std::string name;  // "single" | "batch" | "mixed"
  int n = 0;
  std::size_t batch = 1;
};

/// One client child's serving loop: connect, stage once, round-trip until
/// the deadline, report.  Runs in a forked process; only _exit leaves it.
ClientReport run_client(const std::string& endpoint, const Shape& shape,
                        double seconds) {
  ClientReport report;
  auto client = ipc::Client::connect({.endpoint = endpoint});
  struct Staged {
    int n;
    std::size_t count;
    double* data;
  };
  std::vector<Staged> staged;
  if (shape.name == "single") {
    staged.push_back({shape.n, 1, client.stage(shape.n)});
  } else if (shape.name == "batch") {
    staged.push_back({shape.n, shape.batch, client.stage(shape.n, shape.batch)});
  } else {  // mixed
    for (const int n : {shape.n - 2, shape.n, shape.n + 2}) {
      staged.push_back({n, 1, client.stage(n)});
    }
    staged.push_back({shape.n, shape.batch, client.stage(shape.n, shape.batch)});
  }
  for (const Staged& s : staged) {
    const auto data = util::random_vector(s.count << s.n, 7 + s.n);
    std::memcpy(s.data, data.data(), data.size() * sizeof(double));
  }
  const std::uint64_t deadline =
      now_ns() + static_cast<std::uint64_t>(seconds * 1e9);
  std::size_t next = 0;
  while (now_ns() < deadline) {
    const Staged& s = staged[next++ % staged.size()];
    const std::uint64_t t0 = now_ns();
    const ipc::Status status = client.transform(s.n, s.data, s.count);
    if (status != ipc::Status::kOk) {
      ++report.errors;
      continue;
    }
    record_latency(report, now_ns() - t0);
    ++report.requests;
    report.vectors += s.count;
  }
  return report;
}

struct Cell {
  int clients = 0;
  double rps = 0.0;
  double vps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  std::uint64_t errors = 0;
};

/// Forks `clients` children against the daemon and merges their reports.
/// The parent must be single-threaded when this is called.
Cell run_cell(const std::string& endpoint, const Shape& shape, int clients,
              double seconds) {
  std::vector<pid_t> pids;
  std::vector<int> result_fds;
  int start_pipe[2];
  if (pipe(start_pipe) != 0) throw std::runtime_error("bench_ipc: pipe");
  for (int c = 0; c < clients; ++c) {
    int result_pipe[2];
    if (pipe(result_pipe) != 0) throw std::runtime_error("bench_ipc: pipe");
    const pid_t pid = fork();
    if (pid == 0) {
      close(start_pipe[1]);
      close(result_pipe[0]);
      char go;
      while (read(start_pipe[0], &go, 1) < 0 && errno == EINTR) {
      }
      ClientReport report;
      try {
        report = run_client(endpoint, shape, seconds);
      } catch (...) {
        report.errors = ~std::uint64_t{0};
      }
      ssize_t written = write(result_pipe[1], &report, sizeof(report));
      (void)written;
      _exit(0);
    }
    close(result_pipe[1]);
    pids.push_back(pid);
    result_fds.push_back(result_pipe[0]);
  }
  close(start_pipe[0]);
  const std::uint64_t t0 = now_ns();
  close(start_pipe[1]);  // EOF = the start gun for every child at once

  Cell cell;
  cell.clients = clients;
  std::uint64_t merged[kBuckets] = {};
  std::uint64_t requests = 0, vectors = 0;
  for (std::size_t c = 0; c < pids.size(); ++c) {
    ClientReport report;
    std::size_t got = 0;
    while (got < sizeof(report)) {
      const ssize_t r = read(result_fds[c],
                             reinterpret_cast<char*>(&report) + got,
                             sizeof(report) - got);
      if (r <= 0) break;
      got += static_cast<std::size_t>(r);
    }
    close(result_fds[c]);
    int status = 0;
    waitpid(pids[c], &status, 0);
    if (got != sizeof(report)) {
      ++cell.errors;
      continue;
    }
    requests += report.requests;
    vectors += report.vectors;
    cell.errors += report.errors;
    for (int i = 0; i < kBuckets; ++i) merged[i] += report.latency_ns[i];
  }
  const double elapsed = static_cast<double>(now_ns() - t0) / 1e9;
  cell.rps = static_cast<double>(requests) / elapsed;
  cell.vps = static_cast<double>(vectors) / elapsed;
  cell.p50_us = percentile_us(merged, 0.50);
  cell.p99_us = percentile_us(merged, 0.99);
  return cell;
}

/// In-process Engine baseline for the same shape, one thread.
Cell run_baseline(wht::Engine& engine, const Shape& shape, double seconds) {
  struct Buffer {
    int n;
    std::size_t count;
    std::vector<double> data;
  };
  std::vector<Buffer> buffers;
  if (shape.name == "single") {
    buffers.push_back({shape.n, 1, util::random_vector(std::uint64_t{1} << shape.n, 3)});
  } else if (shape.name == "batch") {
    buffers.push_back(
        {shape.n, shape.batch,
         util::random_vector(static_cast<std::uint64_t>(shape.batch) << shape.n, 3)});
  } else {
    for (const int n : {shape.n - 2, shape.n, shape.n + 2}) {
      buffers.push_back({n, 1, util::random_vector(std::uint64_t{1} << n, 3)});
    }
    buffers.push_back(
        {shape.n, shape.batch,
         util::random_vector(static_cast<std::uint64_t>(shape.batch) << shape.n, 3)});
  }
  Cell cell;
  cell.clients = 0;
  std::uint64_t merged[kBuckets] = {};
  ClientReport report;
  const std::uint64_t deadline =
      now_ns() + static_cast<std::uint64_t>(seconds * 1e9);
  std::size_t next = 0;
  std::uint64_t requests = 0, vectors = 0;
  const std::uint64_t t0 = now_ns();
  while (now_ns() < deadline) {
    Buffer& b = buffers[next++ % buffers.size()];
    const std::uint64_t r0 = now_ns();
    if (b.count == 1) {
      engine.execute(b.n, b.data.data());
    } else {
      engine.execute_many(b.n, b.data.data(), b.count);
    }
    record_latency(report, now_ns() - r0);
    ++requests;
    vectors += b.count;
  }
  const double elapsed = static_cast<double>(now_ns() - t0) / 1e9;
  for (int i = 0; i < kBuckets; ++i) merged[i] = report.latency_ns[i];
  cell.rps = static_cast<double>(requests) / elapsed;
  cell.vps = static_cast<double>(vectors) / elapsed;
  cell.p50_us = percentile_us(merged, 0.50);
  cell.p99_us = percentile_us(merged, 0.99);
  return cell;
}

std::vector<int> parse_int_list(const std::string& text) {
  std::vector<int> out;
  std::string current;
  for (const char c : text + ",") {
    if (c == ',') {
      if (!current.empty()) out.push_back(std::stoi(current));
      current.clear();
    } else {
      current += c;
    }
  }
  return out;
}

void print_cells(std::FILE* out, const char* name,
                 const std::vector<Cell>& cells, const Cell& baseline,
                 bool last) {
  std::fprintf(out, "  \"%s\": {\n    \"cells\": [\n", name);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    std::fprintf(out,
                 "      {\"clients\": %d, \"rps\": %.1f, \"vps\": %.1f, "
                 "\"p50_us\": %.3f, \"p99_us\": %.3f, \"errors\": %llu}%s\n",
                 c.clients, c.rps, c.vps, c.p50_us, c.p99_us,
                 static_cast<unsigned long long>(c.errors),
                 i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(out,
               "    ],\n    \"in_process\": {\"rps\": %.1f, \"vps\": %.1f, "
               "\"p50_us\": %.3f, \"p99_us\": %.3f}\n  }%s\n",
               baseline.rps, baseline.vps, baseline.p50_us, baseline.p99_us,
               last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli;
  cli.add_flag("endpoint", "shm endpoint (unique per run by default)", "");
  cli.add_flag("clients", "client process counts, comma-separated", "1,2,4,8");
  cli.add_flag("n", "single-vector request size (log2)", "10");
  cli.add_flag("batch-n", "batched request size (log2)", "8");
  cli.add_flag("batch", "vectors per batched request", "16");
  cli.add_flag("seconds", "measurement seconds per cell", "0.5");
  cli.add_flag("out", "output JSON path", "BENCH_ipc.json");
  if (!cli.parse(argc, argv)) return 2;

  std::string endpoint = cli.get("endpoint");
  if (endpoint.empty()) {
    endpoint = "bench-ipc-" + std::to_string(static_cast<long>(getpid()));
  }
  const std::vector<int> clients = parse_int_list(cli.get("clients"));
  const int single_n = static_cast<int>(cli.get_int("n", 10));
  const int batch_n = static_cast<int>(cli.get_int("batch-n", 8));
  const auto batch = static_cast<std::size_t>(cli.get_int("batch", 16));
  const double seconds = cli.get_double("seconds", 0.5);

  const Shape shapes[] = {
      {"single", single_n, 1},
      {"batch", batch_n, batch},
      {"mixed", single_n, batch},
  };

  // Daemon child first: the parent stays single-threaded for every later
  // client fork.  The life pipe's EOF (parent exit included) stops it.
  int life_pipe[2];
  if (pipe(life_pipe) != 0) {
    std::fprintf(stderr, "bench_ipc: pipe failed\n");
    return 1;
  }
  const pid_t daemon_pid = fork();
  if (daemon_pid == 0) {
    close(life_pipe[1]);
    try {
      ipc::DaemonOptions options;
      options.endpoint = endpoint;
      options.slots = static_cast<std::uint32_t>(
          *std::max_element(clients.begin(), clients.end()) + 2);
      ipc::Daemon daemon(options);
      daemon.start();
      char byte;
      while (read(life_pipe[0], &byte, 1) < 0 && errno == EINTR) {
      }
      daemon.stop();
    } catch (...) {
      _exit(1);
    }
    _exit(0);
  }
  close(life_pipe[0]);
  if (!ipc::Client::wait_for_daemon(endpoint, 10000)) {
    std::fprintf(stderr, "bench_ipc: daemon did not come up\n");
    return 1;
  }

  std::vector<std::vector<Cell>> results;
  for (const Shape& shape : shapes) {
    std::vector<Cell> cells;
    for (const int c : clients) {
      Cell cell = run_cell(endpoint, shape, c, seconds);
      std::printf(
          "%-6s clients=%-2d  %9.0f req/s  %9.0f vec/s  p50 %8.1f us  "
          "p99 %8.1f us%s\n",
          shape.name.c_str(), c, cell.rps, cell.vps, cell.p50_us, cell.p99_us,
          cell.errors ? "  (errors!)" : "");
      cells.push_back(cell);
    }
    results.push_back(std::move(cells));
  }

  // All forking is done — stop the daemon, then thread freely.
  close(life_pipe[1]);
  int status = 0;
  waitpid(daemon_pid, &status, 0);
  if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
    std::fprintf(stderr, "bench_ipc: daemon exited abnormally\n");
    return 1;
  }

  wht::Engine engine;
  std::vector<Cell> baselines;
  for (const Shape& shape : shapes) {
    Cell cell = run_baseline(engine, shape, seconds);
    std::printf("%-6s in-process   %9.0f req/s  %9.0f vec/s  p50 %8.1f us\n",
                shape.name.c_str(), cell.rps, cell.vps, cell.p50_us);
    baselines.push_back(cell);
  }

  const std::string out_path = cli.get("out");
  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "bench_ipc: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"ipc\",\n  \"host_cores\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(out, "  \"single_n\": %d, \"batch_n\": %d, \"batch\": %zu,\n",
               single_n, batch_n, batch);
  for (std::size_t s = 0; s < results.size(); ++s) {
    print_cells(out, shapes[s].name.c_str(), results[s], baselines[s],
                s + 1 == results.size());
  }
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
