// bench_ipc — cross-process serving driver (writes BENCH_ipc.json).
//
// Measures the whtd shared-memory path end to end: a forked daemon process
// owns the Engine, C forked client processes connect through the shm
// protocol and hammer it with blocking round trips.  Reported per cell:
// requests/s, vectors/s, and p50/p99 round-trip latency from merged
// per-client log2 histograms.  Shapes:
//
//   single  one 2^n vector per request (round-trip latency shape; these
//           route through the daemon's coalescing submit() path, so
//           concurrent clients at the same n merge into batched runs)
//   batch   --batch vectors per request (the bandwidth shape; direct
//           arbitrated execute_many)
//   mixed   singles at n-2/n/n+2 interleaved with batches
//
// An in-process Engine baseline (same shapes, one thread) is recorded
// alongside so the JSON answers "what does crossing the process boundary
// cost" directly.  Fork discipline: the daemon child is forked FIRST and
// clients are forked from a parent that never starts a thread; the
// in-process baseline runs last, after all forking is done.
#include <csignal>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "api/wht.hpp"
#include "ipc/client.hpp"
#include "ipc/daemon.hpp"
#include "ipc/shm.hpp"
#include "ipc/supervisor.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

namespace {

using namespace whtlab;

constexpr int kBuckets = 64;

/// What one client child reports back over its result pipe.
struct ClientReport {
  std::uint64_t requests = 0;
  std::uint64_t vectors = 0;
  std::uint64_t errors = 0;
  std::uint64_t max_ns = 0;        // worst single round trip (exact)
  std::uint64_t reconnects = 0;    // re-handshakes (handoff mode)
  std::uint64_t latency_ns[kBuckets] = {};  // log2 round-trip histogram
};

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void record_latency(ClientReport& report, std::uint64_t ns) {
  const int bucket =
      std::min(kBuckets - 1, static_cast<int>(std::bit_width(ns | 1)) - 1);
  ++report.latency_ns[bucket];
  if (ns > report.max_ns) report.max_ns = ns;
}

/// Percentile (0..1) from a merged log2 histogram, as the bucket's upper
/// bound in microseconds — a <= bound, honest about bucket resolution.
double percentile_us(const std::uint64_t (&buckets)[kBuckets], double q) {
  std::uint64_t total = 0;
  for (const std::uint64_t b : buckets) total += b;
  if (total == 0) return 0.0;
  const auto target = static_cast<std::uint64_t>(q * static_cast<double>(total));
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets[i];
    if (seen > target) {
      return static_cast<double>(std::uint64_t{1} << (i + 1)) / 1000.0;
    }
  }
  return 18446744073709551616.0 / 1000.0;  // 2^64 ns — "off the histogram"
}

struct Shape {
  std::string name;  // "single" | "batch" | "mixed"
  int n = 0;
  std::size_t batch = 1;
};

/// One client child's serving loop: connect, stage once, round-trip until
/// the deadline, report.  Runs in a forked process; only _exit leaves it.
ClientReport run_client(const std::string& endpoint, const Shape& shape,
                        double seconds) {
  ClientReport report;
  auto client = ipc::Client::connect({.endpoint = endpoint});
  struct Staged {
    int n;
    std::size_t count;
    double* data;
  };
  std::vector<Staged> staged;
  if (shape.name == "single") {
    staged.push_back({shape.n, 1, client.stage(shape.n)});
  } else if (shape.name == "batch") {
    staged.push_back({shape.n, shape.batch, client.stage(shape.n, shape.batch)});
  } else {  // mixed
    for (const int n : {shape.n - 2, shape.n, shape.n + 2}) {
      staged.push_back({n, 1, client.stage(n)});
    }
    staged.push_back({shape.n, shape.batch, client.stage(shape.n, shape.batch)});
  }
  for (const Staged& s : staged) {
    const auto data = util::random_vector(s.count << s.n, 7 + s.n);
    std::memcpy(s.data, data.data(), data.size() * sizeof(double));
  }
  const std::uint64_t deadline =
      now_ns() + static_cast<std::uint64_t>(seconds * 1e9);
  std::size_t next = 0;
  while (now_ns() < deadline) {
    const Staged& s = staged[next++ % staged.size()];
    const std::uint64_t t0 = now_ns();
    const ipc::Status status = client.transform(s.n, s.data, s.count);
    if (status != ipc::Status::kOk) {
      ++report.errors;
      continue;
    }
    record_latency(report, now_ns() - t0);
    ++report.requests;
    report.vectors += s.count;
  }
  return report;
}

struct Cell {
  int clients = 0;
  double rps = 0.0;
  double vps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double max_us = 0.0;
  std::uint64_t errors = 0;
  std::uint64_t reconnects = 0;
};

/// Handoff-mode client: a reconnect-enabled verified stream for a fixed
/// duration — the restart blip shows up as the tail of this histogram.
ClientReport run_handoff_client(const std::string& endpoint, int n,
                                double seconds) {
  ClientReport report;
  ipc::Client::Options options;
  options.endpoint = endpoint;
  options.timeout_ms = 5000;
  options.reconnect = true;
  options.reconnect_window_ms = 10000;
  options.backoff_initial_ms = 2;
  options.backoff_max_ms = 100;
  auto client = ipc::Client::connect(options);
  double* x = client.stage(n);
  const auto data = util::random_vector(std::size_t{1} << n, 7 + n);
  std::memcpy(x, data.data(), data.size() * sizeof(double));
  const std::uint64_t deadline =
      now_ns() + static_cast<std::uint64_t>(seconds * 1e9);
  while (now_ns() < deadline) {
    const std::uint64_t t0 = now_ns();
    const ipc::Status status = client.transform(n, x);
    if (status != ipc::Status::kOk) {
      ++report.errors;
      continue;
    }
    record_latency(report, now_ns() - t0);
    ++report.requests;
    ++report.vectors;
  }
  report.reconnects = client.reconnects();
  return report;
}

/// Merges one child's report into a cell (histogram merged separately).
void merge_report(Cell& cell, const ClientReport& report,
                  std::uint64_t (&merged)[kBuckets], std::uint64_t& requests,
                  std::uint64_t& vectors) {
  requests += report.requests;
  vectors += report.vectors;
  cell.errors += report.errors;
  cell.reconnects += report.reconnects;
  cell.max_us = std::max(cell.max_us,
                         static_cast<double>(report.max_ns) / 1000.0);
  for (int i = 0; i < kBuckets; ++i) merged[i] += report.latency_ns[i];
}

/// Forks `clients` children against the daemon and merges their reports.
/// The parent must be single-threaded when this is called.
Cell run_cell(const std::string& endpoint, const Shape& shape, int clients,
              double seconds) {
  std::vector<pid_t> pids;
  std::vector<int> result_fds;
  int start_pipe[2];
  if (pipe(start_pipe) != 0) throw std::runtime_error("bench_ipc: pipe");
  for (int c = 0; c < clients; ++c) {
    int result_pipe[2];
    if (pipe(result_pipe) != 0) throw std::runtime_error("bench_ipc: pipe");
    const pid_t pid = fork();
    if (pid == 0) {
      close(start_pipe[1]);
      close(result_pipe[0]);
      char go;
      while (read(start_pipe[0], &go, 1) < 0 && errno == EINTR) {
      }
      ClientReport report;
      try {
        report = run_client(endpoint, shape, seconds);
      } catch (...) {
        report.errors = ~std::uint64_t{0};
      }
      ssize_t written = write(result_pipe[1], &report, sizeof(report));
      (void)written;
      _exit(0);
    }
    close(result_pipe[1]);
    pids.push_back(pid);
    result_fds.push_back(result_pipe[0]);
  }
  close(start_pipe[0]);
  const std::uint64_t t0 = now_ns();
  close(start_pipe[1]);  // EOF = the start gun for every child at once

  Cell cell;
  cell.clients = clients;
  std::uint64_t merged[kBuckets] = {};
  std::uint64_t requests = 0, vectors = 0;
  for (std::size_t c = 0; c < pids.size(); ++c) {
    ClientReport report;
    std::size_t got = 0;
    while (got < sizeof(report)) {
      const ssize_t r = read(result_fds[c],
                             reinterpret_cast<char*>(&report) + got,
                             sizeof(report) - got);
      if (r <= 0) break;
      got += static_cast<std::size_t>(r);
    }
    close(result_fds[c]);
    int status = 0;
    waitpid(pids[c], &status, 0);
    if (got != sizeof(report)) {
      ++cell.errors;
      continue;
    }
    merge_report(cell, report, merged, requests, vectors);
  }
  const double elapsed = static_cast<double>(now_ns() - t0) / 1e9;
  cell.rps = static_cast<double>(requests) / elapsed;
  cell.vps = static_cast<double>(vectors) / elapsed;
  cell.p50_us = percentile_us(merged, 0.50);
  cell.p99_us = percentile_us(merged, 0.99);
  return cell;
}

/// Handoff-mode cell: forks reconnect-enabled streaming clients, then runs
/// `driver` (the parent's SIGHUP loop — or nothing, for the steady-state
/// control) while they stream, and merges the reports.  The restart blip
/// lives in the p99/max delta between the two cells.
Cell run_handoff_cell(const std::string& endpoint, int n, int clients,
                      double seconds, const std::function<void()>& driver) {
  std::vector<pid_t> pids;
  std::vector<int> result_fds;
  int start_pipe[2];
  if (pipe(start_pipe) != 0) throw std::runtime_error("bench_ipc: pipe");
  for (int c = 0; c < clients; ++c) {
    int result_pipe[2];
    if (pipe(result_pipe) != 0) throw std::runtime_error("bench_ipc: pipe");
    const pid_t pid = fork();
    if (pid == 0) {
      close(start_pipe[1]);
      close(result_pipe[0]);
      char go;
      while (read(start_pipe[0], &go, 1) < 0 && errno == EINTR) {
      }
      ClientReport report;
      try {
        report = run_handoff_client(endpoint, n, seconds);
      } catch (...) {
        report.errors = ~std::uint64_t{0};
      }
      ssize_t written = write(result_pipe[1], &report, sizeof(report));
      (void)written;
      _exit(0);
    }
    close(result_pipe[1]);
    pids.push_back(pid);
    result_fds.push_back(result_pipe[0]);
  }
  close(start_pipe[0]);
  const std::uint64_t t0 = now_ns();
  close(start_pipe[1]);  // start gun
  if (driver) driver();

  Cell cell;
  cell.clients = clients;
  std::uint64_t merged[kBuckets] = {};
  std::uint64_t requests = 0, vectors = 0;
  for (std::size_t c = 0; c < pids.size(); ++c) {
    ClientReport report;
    std::size_t got = 0;
    while (got < sizeof(report)) {
      const ssize_t r = read(result_fds[c],
                             reinterpret_cast<char*>(&report) + got,
                             sizeof(report) - got);
      if (r <= 0) break;
      got += static_cast<std::size_t>(r);
    }
    close(result_fds[c]);
    int status = 0;
    waitpid(pids[c], &status, 0);
    if (got != sizeof(report)) {
      ++cell.errors;
      continue;
    }
    merge_report(cell, report, merged, requests, vectors);
  }
  const double elapsed = static_cast<double>(now_ns() - t0) / 1e9;
  cell.rps = static_cast<double>(requests) / elapsed;
  cell.vps = static_cast<double>(vectors) / elapsed;
  cell.p50_us = percentile_us(merged, 0.50);
  cell.p99_us = percentile_us(merged, 0.99);
  return cell;
}

/// The canonical segment's takeover epoch, or 0 when unreadable — how the
/// parent detects that a SIGHUP handoff completed.
std::uint64_t probe_epoch(const std::string& endpoint) {
  try {
    const ipc::Shm probe =
        ipc::Shm::open_readonly(ipc::shm_name_for(endpoint));
    if (probe.size() < sizeof(ipc::ControlHeader)) return 0;
    const auto* header =
        static_cast<const ipc::ControlHeader*>(probe.data());
    if (header->magic != ipc::kMagic) return 0;
    return header->epoch.load(std::memory_order_acquire);
  } catch (const std::exception&) {
    return 0;  // mid-swap (name briefly absent) or not yet created
  }
}

void print_handoff_cell(const char* name, const Cell& cell) {
  std::printf(
      "%-7s clients=%-2d  %9.0f req/s  p50 %8.1f us  p99 %8.1f us  "
      "max %9.1f us  reconnects=%llu%s\n",
      name, cell.clients, cell.rps, cell.p50_us, cell.p99_us, cell.max_us,
      static_cast<unsigned long long>(cell.reconnects),
      cell.errors ? "  (errors!)" : "");
}

/// The rolling-restart blip benchmark: a supervised daemon under streaming
/// reconnect clients, N SIGHUP handoffs vs a steady-state control of the
/// same duration.  Returns the process exit code.
int run_handoff_bench(const std::string& endpoint, int n, int clients,
                      int cycles, double seconds, const std::string& wisdom,
                      const std::string& out_path) {
  const double duration = std::max(seconds * 6.0, 3.0);

  // Supervisor child first — the exact `whtd --supervise` code path.
  const pid_t supervisor = fork();
  if (supervisor == 0) {
    try {
      ipc::SupervisorOptions options;
      options.daemon.endpoint = endpoint;
      options.daemon.slots = static_cast<std::uint32_t>(clients + 2);
      options.daemon.sweep_ms = 20;
      options.daemon.drain_ms = 2000;
      options.daemon.engine.wisdom_file = wisdom;
      options.child.prewarm = !wisdom.empty();
      options.wedge_ms = 20000;
      _exit(ipc::run_supervisor(options));
    } catch (...) {
      _exit(1);
    }
  }
  if (!ipc::Client::wait_for_daemon(endpoint, 15000)) {
    std::fprintf(stderr, "bench_ipc: supervised daemon did not come up\n");
    kill(supervisor, SIGKILL);
    waitpid(supervisor, nullptr, 0);
    return 1;
  }

  const Cell steady =
      run_handoff_cell(endpoint, n, clients, duration, nullptr);
  print_handoff_cell("steady", steady);

  const auto driver = [&] {
    // Spaced so every handoff lands inside the measurement window, with
    // stream time on both sides of each.
    const auto spacing = static_cast<std::uint64_t>(
        duration * 1000.0 / static_cast<double>(cycles + 1));
    for (int cycle = 0; cycle < cycles; ++cycle) {
      std::this_thread::sleep_for(std::chrono::milliseconds(spacing));
      const std::uint64_t before = probe_epoch(endpoint);
      kill(supervisor, SIGHUP);
      const std::uint64_t give_up = now_ns() + 15000000000ULL;
      while (probe_epoch(endpoint) <= before && now_ns() < give_up) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
      if (probe_epoch(endpoint) <= before) {
        std::fprintf(stderr, "bench_ipc: handoff %d never completed\n",
                     cycle);
      }
    }
  };
  const Cell restart =
      run_handoff_cell(endpoint, n, clients, duration, driver);
  print_handoff_cell("restart", restart);
  std::printf("restart blip: p99 %+.1f us, max %+.1f us over %d handoffs\n",
              restart.p99_us - steady.p99_us, restart.max_us - steady.max_us,
              cycles);

  kill(supervisor, SIGTERM);
  int status = 0;
  waitpid(supervisor, &status, 0);
  if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
    std::fprintf(stderr, "bench_ipc: supervisor exited abnormally\n");
    return 1;
  }

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "bench_ipc: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"ipc_handoff\",\n");
  std::fprintf(out,
               "  \"n\": %d, \"clients\": %d, \"cycles\": %d, "
               "\"seconds\": %.2f,\n",
               n, clients, cycles, duration);
  const auto cell_json = [out](const char* name, const Cell& c, bool last) {
    std::fprintf(out,
                 "  \"%s\": {\"rps\": %.1f, \"p50_us\": %.3f, "
                 "\"p99_us\": %.3f, \"max_us\": %.3f, \"errors\": %llu, "
                 "\"reconnects\": %llu},\n",
                 name, c.rps, c.p50_us, c.p99_us, c.max_us,
                 static_cast<unsigned long long>(c.errors),
                 static_cast<unsigned long long>(c.reconnects));
    (void)last;
  };
  cell_json("steady", steady, false);
  cell_json("restart", restart, false);
  std::fprintf(out, "  \"blip_p99_us\": %.3f, \"blip_max_us\": %.3f\n}\n",
               restart.p99_us - steady.p99_us,
               restart.max_us - steady.max_us);
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

/// In-process Engine baseline for the same shape, one thread.
Cell run_baseline(wht::Engine& engine, const Shape& shape, double seconds) {
  struct Buffer {
    int n;
    std::size_t count;
    std::vector<double> data;
  };
  std::vector<Buffer> buffers;
  if (shape.name == "single") {
    buffers.push_back({shape.n, 1, util::random_vector(std::uint64_t{1} << shape.n, 3)});
  } else if (shape.name == "batch") {
    buffers.push_back(
        {shape.n, shape.batch,
         util::random_vector(static_cast<std::uint64_t>(shape.batch) << shape.n, 3)});
  } else {
    for (const int n : {shape.n - 2, shape.n, shape.n + 2}) {
      buffers.push_back({n, 1, util::random_vector(std::uint64_t{1} << n, 3)});
    }
    buffers.push_back(
        {shape.n, shape.batch,
         util::random_vector(static_cast<std::uint64_t>(shape.batch) << shape.n, 3)});
  }
  Cell cell;
  cell.clients = 0;
  std::uint64_t merged[kBuckets] = {};
  ClientReport report;
  const std::uint64_t deadline =
      now_ns() + static_cast<std::uint64_t>(seconds * 1e9);
  std::size_t next = 0;
  std::uint64_t requests = 0, vectors = 0;
  const std::uint64_t t0 = now_ns();
  while (now_ns() < deadline) {
    Buffer& b = buffers[next++ % buffers.size()];
    const std::uint64_t r0 = now_ns();
    if (b.count == 1) {
      engine.execute(b.n, b.data.data());
    } else {
      engine.execute_many(b.n, b.data.data(), b.count);
    }
    record_latency(report, now_ns() - r0);
    ++requests;
    vectors += b.count;
  }
  const double elapsed = static_cast<double>(now_ns() - t0) / 1e9;
  for (int i = 0; i < kBuckets; ++i) merged[i] = report.latency_ns[i];
  cell.rps = static_cast<double>(requests) / elapsed;
  cell.vps = static_cast<double>(vectors) / elapsed;
  cell.p50_us = percentile_us(merged, 0.50);
  cell.p99_us = percentile_us(merged, 0.99);
  return cell;
}

std::vector<int> parse_int_list(const std::string& text) {
  std::vector<int> out;
  std::string current;
  for (const char c : text + ",") {
    if (c == ',') {
      if (!current.empty()) out.push_back(std::stoi(current));
      current.clear();
    } else {
      current += c;
    }
  }
  return out;
}

void print_cells(std::FILE* out, const char* name,
                 const std::vector<Cell>& cells, const Cell& baseline,
                 bool last) {
  std::fprintf(out, "  \"%s\": {\n    \"cells\": [\n", name);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    std::fprintf(out,
                 "      {\"clients\": %d, \"rps\": %.1f, \"vps\": %.1f, "
                 "\"p50_us\": %.3f, \"p99_us\": %.3f, \"errors\": %llu}%s\n",
                 c.clients, c.rps, c.vps, c.p50_us, c.p99_us,
                 static_cast<unsigned long long>(c.errors),
                 i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(out,
               "    ],\n    \"in_process\": {\"rps\": %.1f, \"vps\": %.1f, "
               "\"p50_us\": %.3f, \"p99_us\": %.3f}\n  }%s\n",
               baseline.rps, baseline.vps, baseline.p50_us, baseline.p99_us,
               last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli;
  cli.add_flag("endpoint", "shm endpoint (unique per run by default)", "");
  cli.add_flag("clients", "client process counts, comma-separated", "1,2,4,8");
  cli.add_flag("n", "single-vector request size (log2)", "10");
  cli.add_flag("batch-n", "batched request size (log2)", "8");
  cli.add_flag("batch", "vectors per batched request", "16");
  cli.add_flag("seconds", "measurement seconds per cell", "0.5");
  cli.add_flag("out", "output JSON path", "BENCH_ipc.json");
  cli.add_flag("handoff",
               "rolling-restart blip mode: this many SIGHUP handoffs under "
               "streaming load, vs a steady control (0 = off)",
               "0");
  cli.add_flag("coalesce-windows",
               "daemon coalesce-window sweep, comma-separated us values "
               "(single shape, max client count; empty = skip)",
               "0,200");
  cli.add_flag("wisdom", "wisdom file for successor prewarm (handoff mode)",
               "");
  if (!cli.parse(argc, argv)) return 2;

  std::string endpoint = cli.get("endpoint");
  if (endpoint.empty()) {
    endpoint = "bench-ipc-" + std::to_string(static_cast<long>(getpid()));
  }
  const std::vector<int> clients = parse_int_list(cli.get("clients"));
  const int single_n = static_cast<int>(cli.get_int("n", 10));
  const int batch_n = static_cast<int>(cli.get_int("batch-n", 8));
  const auto batch = static_cast<std::size_t>(cli.get_int("batch", 16));
  const double seconds = cli.get_double("seconds", 0.5);

  const int handoffs = static_cast<int>(cli.get_int("handoff", 0));
  if (handoffs > 0) {
    // Dedicated mode: measures what a planned rolling restart costs a
    // streaming client (the p99/max blip), not steady-state throughput.
    return run_handoff_bench(endpoint, single_n, clients.front(), handoffs,
                             seconds, cli.get("wisdom"),
                             cli.get("out", "BENCH_ipc_handoff.json"));
  }

  const Shape shapes[] = {
      {"single", single_n, 1},
      {"batch", batch_n, batch},
      {"mixed", single_n, batch},
  };

  // Daemon child first: the parent stays single-threaded for every later
  // client fork.  The life pipe's EOF (parent exit included) stops it.
  int life_pipe[2];
  if (pipe(life_pipe) != 0) {
    std::fprintf(stderr, "bench_ipc: pipe failed\n");
    return 1;
  }
  const pid_t daemon_pid = fork();
  if (daemon_pid == 0) {
    close(life_pipe[1]);
    try {
      ipc::DaemonOptions options;
      options.endpoint = endpoint;
      options.slots = static_cast<std::uint32_t>(
          *std::max_element(clients.begin(), clients.end()) + 2);
      ipc::Daemon daemon(options);
      daemon.start();
      char byte;
      while (read(life_pipe[0], &byte, 1) < 0 && errno == EINTR) {
      }
      daemon.stop();
    } catch (...) {
      _exit(1);
    }
    _exit(0);
  }
  close(life_pipe[0]);
  if (!ipc::Client::wait_for_daemon(endpoint, 10000)) {
    std::fprintf(stderr, "bench_ipc: daemon did not come up\n");
    return 1;
  }

  std::vector<std::vector<Cell>> results;
  for (const Shape& shape : shapes) {
    std::vector<Cell> cells;
    for (const int c : clients) {
      Cell cell = run_cell(endpoint, shape, c, seconds);
      std::printf(
          "%-6s clients=%-2d  %9.0f req/s  %9.0f vec/s  p50 %8.1f us  "
          "p99 %8.1f us%s\n",
          shape.name.c_str(), c, cell.rps, cell.vps, cell.p50_us, cell.p99_us,
          cell.errors ? "  (errors!)" : "");
      cells.push_back(cell);
    }
    results.push_back(std::move(cells));
  }

  // Stop the main daemon before the window sweep reuses the host.
  close(life_pipe[1]);
  int status = 0;
  waitpid(daemon_pid, &status, 0);
  if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
    std::fprintf(stderr, "bench_ipc: daemon exited abnormally\n");
    return 1;
  }

  // --- coalesce-window sweep: the Engine's submit() batching window is the
  // daemon's latency/throughput dial for concurrent singles (0 = dispatch
  // immediately, larger = wait for co-arriving requests to share a batch).
  // One fresh daemon per window value, single shape at the max client
  // count, so the before/after cells differ in exactly one knob.  The
  // parent is still single-threaded here — required for the client forks.
  const std::vector<int> window_values =
      parse_int_list(cli.get("coalesce-windows"));
  std::vector<Cell> window_cells;
  const int window_clients =
      *std::max_element(clients.begin(), clients.end());
  for (const int window_us : window_values) {
    const std::string window_endpoint =
        endpoint + "-w" + std::to_string(window_us);
    int window_pipe[2];
    if (pipe(window_pipe) != 0) {
      std::fprintf(stderr, "bench_ipc: pipe failed\n");
      return 1;
    }
    const pid_t window_pid = fork();
    if (window_pid == 0) {
      close(window_pipe[1]);
      try {
        ipc::DaemonOptions options;
        options.endpoint = window_endpoint;
        options.slots = static_cast<std::uint32_t>(window_clients + 2);
        options.engine.batch_window_us = window_us;
        ipc::Daemon daemon(options);
        daemon.start();
        char byte;
        while (read(window_pipe[0], &byte, 1) < 0 && errno == EINTR) {
        }
        daemon.stop();
      } catch (...) {
        _exit(1);
      }
      _exit(0);
    }
    close(window_pipe[0]);
    if (!ipc::Client::wait_for_daemon(window_endpoint, 10000)) {
      std::fprintf(stderr, "bench_ipc: window daemon did not come up\n");
      return 1;
    }
    Cell cell = run_cell(window_endpoint, shapes[0], window_clients, seconds);
    std::printf(
        "window %3d us clients=%-2d  %9.0f req/s  p50 %8.1f us  p99 %8.1f us\n",
        window_us, window_clients, cell.rps, cell.p50_us, cell.p99_us);
    window_cells.push_back(cell);
    close(window_pipe[1]);
    waitpid(window_pid, &status, 0);
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      std::fprintf(stderr, "bench_ipc: window daemon exited abnormally\n");
      return 1;
    }
  }

  wht::Engine engine;
  std::vector<Cell> baselines;
  for (const Shape& shape : shapes) {
    Cell cell = run_baseline(engine, shape, seconds);
    std::printf("%-6s in-process   %9.0f req/s  %9.0f vec/s  p50 %8.1f us\n",
                shape.name.c_str(), cell.rps, cell.vps, cell.p50_us);
    baselines.push_back(cell);
  }

  const std::string out_path = cli.get("out");
  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "bench_ipc: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"ipc\",\n  \"host_cores\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(out, "  \"single_n\": %d, \"batch_n\": %d, \"batch\": %zu,\n",
               single_n, batch_n, batch);
  for (std::size_t s = 0; s < results.size(); ++s) {
    print_cells(out, shapes[s].name.c_str(), results[s], baselines[s],
                s + 1 == results.size() && window_cells.empty());
  }
  if (!window_cells.empty()) {
    std::fprintf(out, "  \"coalesce_window\": {\"clients\": %d, \"cells\": [\n",
                 window_clients);
    for (std::size_t i = 0; i < window_cells.size(); ++i) {
      const Cell& c = window_cells[i];
      std::fprintf(out,
                   "    {\"window_us\": %d, \"rps\": %.1f, \"p50_us\": %.3f, "
                   "\"p99_us\": %.3f, \"errors\": %llu}%s\n",
                   window_values[i], c.rps, c.p50_us, c.p99_us,
                   static_cast<unsigned long long>(c.errors),
                   i + 1 < window_cells.size() ? "," : "");
    }
    std::fprintf(out, "  ]}\n");
  }
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
