// Figure 5: histograms (50 bins) of cycle counts, instruction counts, and L1
// cache-miss counts for a random sample of WHT(2^18) algorithms.
//
// Paper shape: at this out-of-cache size the cycle histogram picks up a
// skew that the instruction histogram does not have — the miss histogram
// accounts for it (the visual prelude to Figures 7-9).
#include <cstdio>

#include "common/harness.hpp"
#include "stats/descriptive.hpp"
#include "stats/histogram.hpp"
#include "stats/regression.hpp"

namespace {

using namespace whtlab;

void print_histogram(const char* title, const std::vector<double>& xs) {
  const stats::Histogram hist(xs, 50);
  std::printf("\n%s (%llu samples, 50 bins)\n", title,
              static_cast<unsigned long long>(hist.total()));
  std::printf("%s", hist.render(60).c_str());
  std::printf("mean=%.4g sd=%.4g skew=%.3f excess-kurtosis=%.3f JB=%.1f\n",
              stats::mean(xs), stats::stddev(xs), stats::skewness(xs),
              stats::excess_kurtosis(xs), stats::jarque_bera(xs));
}

int run(const bench::HarnessOptions& options) {
  bench::print_banner(
      "Figure 5",
      "cycle, instruction & cache-miss histograms, WHT(2^18) random sample");

  auto pop = bench::build_population(18, options.samples_large, options.seed);
  const auto kept = bench::fence_filter(pop.cycles);
  std::printf("outer-fence filter kept %zu / %zu samples\n", kept.size(),
              pop.cycles.size());
  const auto cycles = stats::select(pop.cycles, kept);
  const auto instructions = stats::select(pop.instructions, kept);
  const auto misses = stats::select(pop.misses, kept);

  print_histogram("Cycle counts", cycles);
  print_histogram("Instruction counts", instructions);
  print_histogram("L1 cache-miss counts (simulated, Opteron geometry)", misses);

  const auto dump = [&](const char* name, const std::vector<double>& xs) {
    const stats::Histogram hist(xs, 50);
    std::vector<double> centers;
    std::vector<double> counts;
    for (int b = 0; b < hist.bins(); ++b) {
      centers.push_back(hist.bin_center(b));
      counts.push_back(static_cast<double>(hist.count(b)));
    }
    bench::write_csv(options, name, {"bin_center", "count"}, {centers, counts});
  };
  dump("fig05_hist_large_cycles", cycles);
  dump("fig05_hist_large_instructions", instructions);
  dump("fig05_hist_large_misses", misses);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = whtlab::bench::HarnessOptions::parse(argc, argv);
  if (!options) return 0;
  return run(*options);
}
