// bench_simd_compare — scalar-vs-SIMD perf trajectory (BENCH_simd.json).
//
// For each size n in [nmin, nmax], plans once with the measurement-free
// kEstimate strategy and times the SAME plan on the "generated" (scalar)
// and "simd" backends, single-shot and batched (execute_many over `batch`
// packed vectors — the high-throughput serving shape).  Emits an aligned
// table on stdout and a JSON trajectory:
//
//   { "bench": "simd_compare", "level": "avx512", "vector_width": 8, ...,
//     "results": [ { "n": 10, "single_scalar_cycles": ...,
//                    "single_simd_cycles": ..., "single_speedup": ...,
//                    "batch_scalar_cycles_per_vec": ...,
//                    "batch_simd_cycles_per_vec": ...,
//                    "batch_speedup": ... }, ... ] }
//
// Run:  ./bench_simd_compare [--out FILE] [--nmin N] [--nmax N]
//                            [--batch N] [--reps N] [--level scalar|avx2|avx512]
//       (util::Cli parsing: --name value and --name=value both work;
//        --benchmark_repetitions is an alias for --reps, the same
//        repetitions-then-median convention as the google-benchmark micros;
//        every reported cycle count is the median over reps.)
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "api/wht.hpp"
#include "perf/measure.hpp"
#include "simd/cpu_features.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace whtlab;

  util::Cli cli;
  cli.add_flag("out", "output JSON path", "BENCH_simd.json");
  cli.add_flag("nmin", "smallest size log2", "10");
  cli.add_flag("nmax", "largest size log2", "20");
  cli.add_flag("batch", "vectors per execute_many batch", "32");
  cli.add_flag("reps", "timed repetitions per cell (median reported)", "7");
  cli.add_flag("benchmark_repetitions", "alias for --reps");
  cli.add_flag("level", "cap the SIMD level: scalar|avx2|avx512");
  if (!cli.parse(argc, argv)) return 2;

  const std::string out = cli.get("out");
  const int nmin = static_cast<int>(cli.get_int("nmin", 10));
  const int nmax = static_cast<int>(cli.get_int("nmax", 20));
  const std::size_t batch =
      static_cast<std::size_t>(cli.get_int("batch", 32));
  const int reps = static_cast<int>(cli.has("benchmark_repetitions")
                                        ? cli.get_int("benchmark_repetitions", 7)
                                        : cli.get_int("reps", 7));
  if (cli.has("level")) simd::force_level(simd::parse_level(cli.get("level")));

  const simd::SimdLevel level = simd::active_level();
  std::printf("simd level: %s (width %d), batch %zu, reps %d\n",
              simd::to_string(level), simd::vector_width(level), batch, reps);
  std::printf("%4s %16s %16s %8s %16s %16s %8s\n", "n", "scalar cyc",
              "simd cyc", "speedup", "scalar cyc/vec", "simd cyc/vec",
              "speedup");

  perf::MeasureOptions options;
  options.repetitions = reps;

  struct Row {
    int n;
    double single_scalar, single_simd, batch_scalar, batch_simd;
  };
  std::vector<Row> rows;

  auto scalar_backend = wht::BackendRegistry::global().create("generated");
  auto simd_backend = wht::BackendRegistry::global().create("simd");

  for (int n = nmin; n <= nmax; ++n) {
    const core::Plan plan = wht::Planner().plan(n).plan();
    const std::ptrdiff_t dist = static_cast<std::ptrdiff_t>(plan.size());

    Row row{};
    row.n = n;
    row.single_scalar =
        wht::measure_with_backend(*scalar_backend, plan, options).cycles();
    row.single_simd =
        wht::measure_with_backend(*simd_backend, plan, options).cycles();

    const std::uint64_t total = plan.size() * batch;
    row.batch_scalar =
        perf::measure_run(
            [&](double* x) { scalar_backend->run_many(plan, x, batch, dist); },
            total, options)
            .cycles() /
        static_cast<double>(batch);
    row.batch_simd =
        perf::measure_run(
            [&](double* x) { simd_backend->run_many(plan, x, batch, dist); },
            total, options)
            .cycles() /
        static_cast<double>(batch);
    rows.push_back(row);

    std::printf("%4d %16.0f %16.0f %7.2fx %16.0f %16.0f %7.2fx\n", n,
                row.single_scalar, row.single_simd,
                row.single_scalar / row.single_simd, row.batch_scalar,
                row.batch_simd, row.batch_scalar / row.batch_simd);
  }

  std::FILE* f = std::fopen(out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"simd_compare\",\n  \"level\": \"%s\",\n"
               "  \"vector_width\": %d,\n  \"batch\": %zu,\n"
               "  \"repetitions\": %d,\n  \"results\": [\n",
               simd::to_string(level), simd::vector_width(level), batch, reps);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    {\"n\": %d, \"single_scalar_cycles\": %.1f, "
                 "\"single_simd_cycles\": %.1f, \"single_speedup\": %.3f, "
                 "\"batch_scalar_cycles_per_vec\": %.1f, "
                 "\"batch_simd_cycles_per_vec\": %.1f, "
                 "\"batch_speedup\": %.3f}%s\n",
                 r.n, r.single_scalar, r.single_simd,
                 r.single_scalar / r.single_simd, r.batch_scalar, r.batch_simd,
                 r.batch_scalar / r.batch_simd,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out.c_str());
  return 0;
}
