// Figure 1: ratio of cycle counts of the canonical algorithms (iterative,
// left recursive, right recursive) to the best algorithm found by dynamic
// programming, for sizes 2^1 .. 2^maxn.
//
// Paper shape: iterative is closest to best at small sizes; the recursive
// algorithms win past the cache boundary; right recursive beats left
// recursive everywhere it matters.
#include <cstdio>

#include "common/harness.hpp"
#include "core/verify.hpp"
#include "util/table.hpp"

namespace {

using namespace whtlab;

int run(const bench::HarnessOptions& options) {
  bench::print_banner("Figure 1",
                      "cycle-count ratio: canonical algorithms vs DP best");

  perf::MeasureOptions measure;
  measure.repetitions = 7;
  measure.warmup = 2;

  util::TextTable table({"n", "best plan", "cycles(best)", "iter/best",
                         "right/best", "left/best"});
  std::vector<double> ns;
  std::vector<double> ratio_iter;
  std::vector<double> ratio_right;
  std::vector<double> ratio_left;

  for (int n = 1; n <= options.max_n; ++n) {
    const core::Plan best = bench::best_plan_by_runtime(n);
    const auto canon = bench::canonical_suite(n);
    const double best_cycles =
        bench::fixed_transform(best).measure(measure).cycles();
    const double iter =
        bench::fixed_transform(canon.iterative).measure(measure).cycles();
    const double right =
        bench::fixed_transform(canon.right_recursive).measure(measure).cycles();
    const double left =
        bench::fixed_transform(canon.left_recursive).measure(measure).cycles();

    ns.push_back(n);
    ratio_iter.push_back(iter / best_cycles);
    ratio_right.push_back(right / best_cycles);
    ratio_left.push_back(left / best_cycles);

    std::string plan_text = best.to_string();
    if (plan_text.size() > 40) plan_text = plan_text.substr(0, 37) + "...";
    table.add_row({util::TextTable::fmt(n), plan_text,
                   util::TextTable::fmt(best_cycles, 5),
                   util::TextTable::fmt(ratio_iter.back(), 4),
                   util::TextTable::fmt(ratio_right.back(), 4),
                   util::TextTable::fmt(ratio_left.back(), 4)});
  }
  table.print();

  std::printf("\nlower ratio is better; expect recursive plans to overtake the\n"
              "iterative plan once 2^n doubles no longer fit in cache.\n");
  bench::write_csv(options, "fig01_canonical_runtime",
                   {"n", "iter_over_best", "right_over_best", "left_over_best"},
                   {ns, ratio_iter, ratio_right, ratio_left});
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = whtlab::bench::HarnessOptions::parse(argc, argv);
  if (!options) return 0;
  return run(*options);
}
