// bench_fused_compare — tree-walk SIMD vs cache-blocked fused engine
// (BENCH_fused.json), the memory-bound big-n trajectory.
//
// For each size n in [nmin, nmax], plans with the measurement-free
// kEstimate strategy *per backend* (each backend prices candidates with its
// own model: "simd" with the SIMD instruction model, "fused" with the
// memory-pass model) and times single transforms through each backend with
// the perf protocol (warmup, repetitions, median — the noise convention for
// 1-vCPU hosts; see README's bench section).  A scalar "generated" column
// anchors the absolute speedups, and every fused run is checked bit-exact
// against the scalar interpreter before timing.  Emits an aligned table and
// a JSON trajectory including the geomean fused-vs-simd speedup over
// n >= 18 (the beyond-L2 regime the fused engine exists for).
//
// Run:  ./bench_fused_compare [--out FILE] [--nmin N] [--nmax N] [--reps N]
//                             [--level scalar|avx2|avx512] [--no-baseline]
//                             [--wisdom FILE]
//       (util::Cli parsing: --name value and --name=value both work;
//        --benchmark_repetitions is an alias for --reps;
//        --no-baseline skips the slow scalar column for quick ablations —
//        its JSON fields become null;
//        --wisdom caches the kEstimate winners so repeat runs skip even
//        the sub-second analytic planning pass — see bench_plan_time for
//        the planning-cost trajectory itself.)
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "api/wht.hpp"
#include "core/executor.hpp"
#include "core/schedule.hpp"
#include "perf/measure.hpp"
#include "simd/cpu_features.hpp"
#include "simd/fused_executor.hpp"
#include "util/aligned_buffer.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace whtlab;

  util::Cli cli;
  cli.add_flag("out", "output JSON path", "BENCH_fused.json");
  cli.add_flag("nmin", "smallest size log2", "14");
  cli.add_flag("nmax", "largest size log2", "22");
  cli.add_flag("reps", "timed repetitions per cell (median reported)", "9");
  cli.add_flag("benchmark_repetitions", "alias for --reps");
  cli.add_flag("level", "cap the SIMD level: scalar|avx2|avx512");
  cli.add_bool("no-baseline", "skip the slow scalar generated column");
  cli.add_flag("wisdom", "plan-cache file (skips re-planning on repeat runs)");
  if (!cli.parse(argc, argv)) return 2;

  const std::string out = cli.get("out");
  const std::string wisdom = cli.get("wisdom");
  const int nmin = static_cast<int>(cli.get_int("nmin", 14));
  const int nmax = static_cast<int>(cli.get_int("nmax", 22));
  const int reps = static_cast<int>(cli.has("benchmark_repetitions")
                                        ? cli.get_int("benchmark_repetitions", 9)
                                        : cli.get_int("reps", 9));
  const bool baseline = !cli.has("no-baseline");
  if (cli.has("level")) simd::force_level(simd::parse_level(cli.get("level")));

  const simd::SimdLevel level = simd::active_level();
  const core::BlockingConfig blocking = simd::detect_blocking();
  std::printf(
      "simd level: %s (width %d), blocks 2^%d / 2^%d doubles, reps %d "
      "(median per cell)\n",
      simd::to_string(level), simd::vector_width(level),
      blocking.l1_block_log2, blocking.l2_block_log2, reps);
  std::printf("%4s %6s %16s %16s %16s %10s %10s\n", "n", "sweeps",
              "generated cyc", "simd cyc", "fused cyc", "vs simd", "vs scalar");

  perf::MeasureOptions options;
  options.repetitions = reps;

  struct Row {
    int n;
    int sweeps;
    double generated, simd_cycles, fused;
  };
  std::vector<Row> rows;

  auto scalar_backend = wht::BackendRegistry::global().create("generated");
  auto simd_backend = wht::BackendRegistry::global().create("simd");
  auto fused_backend = wht::BackendRegistry::global().create("fused");

  for (int n = nmin; n <= nmax; ++n) {
    // Each backend gets its own kEstimate winner — candidates priced by the
    // model of the engine that will run them.
    wht::Planner simd_planner;
    simd_planner.backend("simd");
    wht::Planner fused_planner;
    fused_planner.backend("fused");
    if (!wisdom.empty()) {
      simd_planner.wisdom_file(wisdom);
      fused_planner.wisdom_file(wisdom);
    }
    const core::Plan simd_plan = simd_planner.plan(n).plan();
    const core::Plan fused_plan = fused_planner.plan(n).plan();

    // Bit-exactness gate before timing anything.
    {
      const std::uint64_t size = std::uint64_t{1} << n;
      util::AlignedBuffer x(size);
      util::AlignedBuffer reference(size);
      util::Rng rng(static_cast<std::uint64_t>(n) * 71 + 13);
      for (std::uint64_t i = 0; i < size; ++i) {
        x[i] = reference[i] = rng.uniform(-1, 1);
      }
      fused_backend->run(fused_plan, x.data(), 1);
      core::execute(fused_plan, reference.data());
      for (std::uint64_t i = 0; i < size; ++i) {
        if (x[i] != reference[i]) {
          std::fprintf(stderr, "parity FAILED at n=%d i=%llu\n", n,
                       static_cast<unsigned long long>(i));
          return 1;
        }
      }
    }

    Row row{};
    row.n = n;
    row.sweeps = core::sweep_count(core::lower_size(n, blocking));
    row.generated =
        baseline
            ? wht::measure_with_backend(*scalar_backend, simd_plan, options)
                  .cycles()
            : 0.0;
    row.simd_cycles =
        wht::measure_with_backend(*simd_backend, simd_plan, options).cycles();
    row.fused =
        wht::measure_with_backend(*fused_backend, fused_plan, options).cycles();
    rows.push_back(row);

    if (baseline) {
      std::printf("%4d %6d %16.0f %16.0f %16.0f %9.2fx %9.2fx\n", n,
                  row.sweeps, row.generated, row.simd_cycles, row.fused,
                  row.simd_cycles / row.fused, row.generated / row.fused);
    } else {
      std::printf("%4d %6d %16s %16.0f %16.0f %9.2fx %10s\n", n, row.sweeps,
                  "-", row.simd_cycles, row.fused,
                  row.simd_cycles / row.fused, "-");
    }
  }

  // Geomean of the fused-vs-simd speedup over the beyond-L2 sizes.
  double log_sum = 0.0;
  int log_count = 0;
  for (const Row& r : rows) {
    if (r.n >= 18) {
      log_sum += std::log(r.simd_cycles / r.fused);
      ++log_count;
    }
  }
  const double geomean = log_count > 0 ? std::exp(log_sum / log_count) : 0.0;
  if (log_count > 0) {
    std::printf("geomean fused-vs-simd speedup, n in [18, %d]: %.3fx\n",
                rows.back().n, geomean);
  }

  std::FILE* f = std::fopen(out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"fused_compare\",\n  \"level\": \"%s\",\n"
               "  \"vector_width\": %d,\n  \"l1_block_log2\": %d,\n"
               "  \"l2_block_log2\": %d,\n  \"repetitions\": %d,\n"
               "  \"aggregation\": \"median per cell, geomean across sizes\",\n"
               "  \"parity\": \"bit-identical vs generated\",\n"
               "  \"geomean_fused_vs_simd_n18plus\": %.3f,\n"
               "  \"results\": [\n",
               simd::to_string(level), simd::vector_width(level),
               blocking.l1_block_log2, blocking.l2_block_log2, reps, geomean);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::string scalar_fields = "null, \"fused_vs_scalar\": null";
    if (baseline) {
      char buffer[96];
      std::snprintf(buffer, sizeof(buffer), "%.1f, \"fused_vs_scalar\": %.3f",
                    r.generated, r.generated / r.fused);
      scalar_fields = buffer;
    }
    std::fprintf(f,
                 "    {\"n\": %d, \"sweeps\": %d, "
                 "\"generated_cycles\": %s, \"simd_cycles\": %.1f, "
                 "\"fused_cycles\": %.1f, \"fused_vs_simd\": %.3f}%s\n",
                 r.n, r.sweeps, scalar_fields.c_str(), r.simd_cycles, r.fused,
                 r.simd_cycles / r.fused, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out.c_str());
  return 0;
}
