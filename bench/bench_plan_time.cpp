// bench_plan_time — planning wall-time per (strategy, n, backend), the
// before/after trajectory of the analytic cache model (BENCH_plan.json).
//
// "After" cells time wht::Planner end to end (search + model, the product
// path) with the analytic miss engine — the default.  With --oracle, each
// cell is also timed with WHTLAB_MODEL_ORACLE=1, which routes the combined
// model's miss term through the trace-replay walk the analytic recursion
// replaced: that is the pre-PR cost of model-driven planning, and the
// ratio between the two is the speedup this PR exists for.  Backends that
// price with their own model ("fused" prices lowered schedules, no cache
// model inside) are oracle-invariant by construction; the interesting
// before/after rows are the CombinedModel-priced backends ("generated",
// "simd").
//
// Noise convention (README bench section): every reported cell is a median
// over --reps timed repetitions.  Oracle cells drop to 3 repetitions, and
// to 1 at n >= 20 — a single oracle kEstimate at n = 22 walks ~10^9
// simulated accesses over minutes, and a deterministic CPU-bound model walk
// does not need nine samples to witness a two-orders-of-magnitude gap (the
// per-cell "reps"/"oracle_reps" fields record what each number is a median
// of).
//
// Run:  ./bench_plan_time [--out FILE] [--nmin N] [--nmax N] [--step N]
//                         [--reps N] [--backends a,b,..] [--strategies a,b]
//                         [--oracle] [--oracle-backends a,b] [--oracle-nmax N]
//                         [--max-seconds S]
//       --max-seconds S exits nonzero when any analytic kEstimate median
//       exceeds S — the CI plan-time regression gate.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

#include "api/wht.hpp"
#include "simd/cpu_features.hpp"
#include "util/cli.hpp"

namespace {

using namespace whtlab;

std::vector<std::string> split_list(const std::string& text) {
  std::vector<std::string> out;
  std::string current;
  for (const char c : text) {
    if (c == ',') {
      if (!current.empty()) out.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  if (!current.empty()) out.push_back(current);
  return out;
}

wht::Strategy parse_strategy(const std::string& name) {
  // The shared façade parser does the name mapping; this driver only times
  // the measurement-free strategies, so everything else stays rejected.
  try {
    const wht::Strategy strategy = wht::strategy_from_string(name);
    if (strategy == wht::Strategy::kEstimate ||
        strategy == wht::Strategy::kAnneal) {
      return strategy;
    }
  } catch (const std::invalid_argument&) {
  }
  std::fprintf(stderr, "bench_plan_time: unknown strategy '%s' "
               "(model-driven only: estimate, anneal)\n", name.c_str());
  std::exit(2);
}

double median(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  const std::size_t mid = samples.size() / 2;
  if (samples.size() % 2 == 1) return samples[mid];
  return 0.5 * (samples[mid - 1] + samples[mid]);
}

/// One full Planner().strategy(s).backend(b).plan(n), wall-clock seconds.
double time_plan_once(wht::Strategy strategy, const std::string& backend,
                      int n) {
  wht::Planner planner;
  planner.strategy(strategy).backend(backend);
  const auto start = std::chrono::steady_clock::now();
  auto transform = planner.plan(n);
  const auto stop = std::chrono::steady_clock::now();
  (void)transform;
  return std::chrono::duration<double>(stop - start).count();
}

double time_plan_median(wht::Strategy strategy, const std::string& backend,
                        int n, int reps) {
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    samples.push_back(time_plan_once(strategy, backend, n));
  }
  return median(samples);
}

struct Cell {
  std::string strategy;
  std::string backend;
  int n = 0;
  double seconds = 0.0;       ///< analytic engine (the default path)
  int reps = 0;
  double oracle_seconds = -1.0;  ///< trace engine; < 0 = not measured
  int oracle_reps = 0;
};

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli;
  cli.add_flag("out", "output JSON path", "BENCH_plan.json");
  cli.add_flag("nmin", "smallest size log2", "14");
  cli.add_flag("nmax", "largest size log2", "22");
  cli.add_flag("step", "size stride", "2");
  cli.add_flag("reps", "timed repetitions per analytic cell (median)", "9");
  cli.add_flag("backends", "comma list of backends", "generated,simd,fused");
  cli.add_flag("strategies", "comma list of strategies", "estimate,anneal");
  cli.add_bool("oracle", "also time WHTLAB_MODEL_ORACLE=1 (the pre-PR walk)");
  cli.add_flag("oracle-backends", "backends for the oracle columns", "simd");
  cli.add_flag("oracle-nmax", "largest oracle size log2", "22");
  cli.add_flag("max-seconds",
               "fail (exit 1) when an analytic estimate median exceeds this",
               "0");
  if (!cli.parse(argc, argv)) return 2;

  const std::string out = cli.get("out");
  const int nmin = static_cast<int>(cli.get_int("nmin", 14));
  const int nmax = static_cast<int>(cli.get_int("nmax", 22));
  const int step = static_cast<int>(cli.get_int("step", 2));
  const int reps = static_cast<int>(cli.get_int("reps", 9));
  if (reps < 1 || step < 1) {
    std::fprintf(stderr, "bench_plan_time: --reps and --step must be >= 1\n");
    return 2;
  }
  const bool oracle = cli.has("oracle");
  const int oracle_nmax = static_cast<int>(cli.get_int("oracle-nmax", 22));
  const double max_seconds = cli.get_double("max-seconds", 0.0);
  const auto backends = split_list(cli.get("backends"));
  const auto strategies = split_list(cli.get("strategies"));
  const auto oracle_backends = split_list(cli.get("oracle-backends"));

  std::printf("simd level: %s; analytic reps %d (median per cell)%s\n",
              simd::to_string(simd::active_level()), reps,
              oracle ? "; oracle columns on" : "");
  std::printf("%10s %10s %4s %14s %6s %14s %6s %10s\n", "strategy", "backend",
              "n", "plan sec", "reps", "oracle sec", "reps", "speedup");

  std::vector<Cell> cells;
  bool gate_failed = false;
  for (const auto& strategy_name : strategies) {
    const wht::Strategy strategy = parse_strategy(strategy_name);
    for (const auto& backend : backends) {
      for (int n = nmin; n <= nmax; n += step) {
        Cell cell;
        cell.strategy = strategy_name;
        cell.backend = backend;
        cell.n = n;
        cell.reps = reps;
        cell.seconds = time_plan_median(strategy, backend, n, reps);

        const bool want_oracle =
            oracle && n <= oracle_nmax &&
            std::find(oracle_backends.begin(), oracle_backends.end(),
                      backend) != oracle_backends.end();
        if (want_oracle) {
          cell.oracle_reps = n >= 20 ? 1 : std::min(3, reps);
          ::setenv("WHTLAB_MODEL_ORACLE", "1", 1);
          cell.oracle_seconds =
              time_plan_median(strategy, backend, n, cell.oracle_reps);
          ::unsetenv("WHTLAB_MODEL_ORACLE");
        }

        if (max_seconds > 0 && strategy == wht::Strategy::kEstimate &&
            cell.seconds > max_seconds) {
          std::fprintf(stderr,
                       "plan-time gate FAILED: %s/%s n=%d took %.3f s "
                       "(budget %.3f s)\n",
                       strategy_name.c_str(), backend.c_str(), n, cell.seconds,
                       max_seconds);
          gate_failed = true;
        }

        if (cell.oracle_seconds >= 0) {
          std::printf("%10s %10s %4d %14.4f %6d %14.3f %6d %9.1fx\n",
                      strategy_name.c_str(), backend.c_str(), n, cell.seconds,
                      cell.reps, cell.oracle_seconds, cell.oracle_reps,
                      cell.oracle_seconds / cell.seconds);
        } else {
          std::printf("%10s %10s %4d %14.4f %6d %14s %6s %10s\n",
                      strategy_name.c_str(), backend.c_str(), n, cell.seconds,
                      cell.reps, "-", "-", "-");
        }
        std::fflush(stdout);
        cells.push_back(cell);
      }
    }
  }

  std::FILE* json = std::fopen(out.c_str(), "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  std::fprintf(json, "{\n  \"bench\": \"plan_time\",\n");
  std::fprintf(json, "  \"level\": \"%s\",\n",
               simd::to_string(simd::active_level()));
  std::fprintf(json,
               "  \"aggregation\": \"median wall seconds per cell; oracle = "
               "WHTLAB_MODEL_ORACLE=1 trace walk (pre-PR engine)\",\n");
  std::fprintf(json, "  \"results\": [\n");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& cell = cells[i];
    std::fprintf(json,
                 "    {\"strategy\": \"%s\", \"backend\": \"%s\", \"n\": %d, "
                 "\"plan_seconds\": %.6f, \"reps\": %d",
                 cell.strategy.c_str(), cell.backend.c_str(), cell.n,
                 cell.seconds, cell.reps);
    if (cell.oracle_seconds >= 0) {
      std::fprintf(json,
                   ", \"oracle_seconds\": %.6f, \"oracle_reps\": %d, "
                   "\"speedup\": %.1f",
                   cell.oracle_seconds, cell.oracle_reps,
                   cell.oracle_seconds / cell.seconds);
    } else {
      std::fprintf(json, ", \"oracle_seconds\": null");
    }
    std::fprintf(json, "}%s\n", i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("wrote %s\n", out.c_str());
  return gate_failed ? 1 : 0;
}
