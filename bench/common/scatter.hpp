// Shared scatter-figure logic for Figures 6-8: correlation + regression of a
// model quantity against measured cycles over a sampled population, with the
// canonical and best algorithms marked.
#pragma once

#include <string>
#include <vector>

#include "common/harness.hpp"

namespace whtlab::bench {

struct ScatterSeries {
  std::string x_label;
  std::vector<double> x;       ///< model values (fence-filtered)
  std::vector<double> cycles;  ///< measured cycles (same filter)
};

struct Marker {
  std::string name;
  double x = 0.0;
  double cycles = 0.0;
};

/// Prints rho (the figure's headline number), the least-squares line, an
/// ASCII scatter, and the markers; writes CSV when enabled.
void report_scatter(const HarnessOptions& options, const std::string& csv_name,
                    const ScatterSeries& series,
                    const std::vector<Marker>& markers);

}  // namespace whtlab::bench
