#include "common/harness.hpp"

#include <cstdio>

#include "search/sampler.hpp"
#include "stats/descriptive.hpp"
#include "util/csv.hpp"
#include "util/env.hpp"
#include "util/rng.hpp"

namespace whtlab::bench {

std::optional<HarnessOptions> HarnessOptions::parse(int argc, char** argv) {
  HarnessOptions options;
  options.samples_small =
      static_cast<int>(util::env_int("WHTLAB_SAMPLES", options.samples_small));
  options.samples_large = static_cast<int>(
      util::env_int("WHTLAB_SAMPLES_LARGE", options.samples_large));
  options.max_n =
      static_cast<int>(util::env_int("WHTLAB_MAXN", options.max_n));
  options.seed = static_cast<std::uint64_t>(
      util::env_int("WHTLAB_SEED", static_cast<std::int64_t>(options.seed)));

  util::Cli cli;
  cli.add_flag("samples", "population size for the in-cache experiment (n=9)");
  cli.add_flag("samples-large", "population size for the out-of-cache experiment (n=18)");
  cli.add_flag("maxn", "largest transform log2-size in sweeps");
  cli.add_flag("seed", "RNG seed");
  cli.add_flag("csv", "directory for CSV output");
  if (!cli.parse(argc, argv)) return std::nullopt;

  options.samples_small = static_cast<int>(
      cli.get_int("samples", options.samples_small));
  options.samples_large = static_cast<int>(
      cli.get_int("samples-large", options.samples_large));
  options.max_n = static_cast<int>(cli.get_int("maxn", options.max_n));
  options.seed = static_cast<std::uint64_t>(
      cli.get_int("seed", static_cast<std::int64_t>(options.seed)));
  options.csv_dir = cli.get("csv");
  return options;
}

Population build_population(int n, int samples, std::uint64_t seed,
                            const PopulationConfig& config) {
  Population pop;
  pop.n = n;
  pop.plans.reserve(static_cast<std::size_t>(samples));
  pop.cycles.reserve(static_cast<std::size_t>(samples));
  pop.instructions.reserve(static_cast<std::size_t>(samples));
  pop.misses.reserve(static_cast<std::size_t>(samples));

  util::Rng rng(seed);
  search::RecursiveSplitSampler sampler(core::kMaxUnrolled);
  perf::MeasureOptions measure;
  measure.repetitions = config.repetitions;
  measure.warmup = config.warmup;
  // Instruction/miss channels stay on the shared event facade; only the
  // cycles channel moves to the api::Transform so populations are timed on
  // the code path users execute.
  perf::EventConfig events;
  events.collect_cycles = false;
  events.collect_misses = config.collect_misses;
  events.l1 = config.l1;
  events.l2 = config.l2;

  for (int i = 0; i < samples; ++i) {
    core::Plan plan = sampler.sample(n, rng);
    // Minimum of the repetitions = least-interfered run, see perf/events.hpp.
    pop.cycles.push_back(fixed_transform(plan).measure(measure).min_cycles);
    const auto counts = perf::collect_events(plan, events);
    pop.instructions.push_back(counts.instructions);
    pop.misses.push_back(static_cast<double>(counts.l1_misses));
    pop.plans.push_back(std::move(plan));
    if ((i + 1) % 500 == 0 || i + 1 == samples) {
      std::fprintf(stderr, "  population n=%d: %d/%d\r", n, i + 1, samples);
    }
  }
  std::fprintf(stderr, "\n");
  return pop;
}

std::vector<std::size_t> fence_filter(const std::vector<double>& primary) {
  return stats::inside_fences(primary, 3.0);
}

CanonicalSuite canonical_suite(int n) {
  return {core::Plan::iterative(n), core::Plan::right_recursive(n),
          core::Plan::left_recursive(n)};
}

core::Plan best_plan_by_runtime(int n, int repetitions) {
  perf::MeasureOptions measure;
  measure.repetitions = repetitions;
  measure.warmup = 1;
  // kMeasure = DP over measured cycles, ternary splits while candidates are
  // microsecond-scale and binary beyond (the package's practice).
  return api::Planner()
      .strategy(api::Strategy::kMeasure)
      .measure_options(measure)
      .plan(n)
      .plan();
}

api::Transform fixed_transform(const core::Plan& plan) {
  return api::Planner().fixed(plan).plan();
}

void write_csv(const HarnessOptions& options, const std::string& name,
               const std::vector<std::string>& header,
               const std::vector<std::vector<double>>& columns) {
  if (options.csv_dir.empty()) return;
  util::CsvWriter csv(options.csv_dir + "/" + name + ".csv");
  csv.header(header);
  if (columns.empty()) return;
  const std::size_t rows = columns.front().size();
  for (std::size_t r = 0; r < rows; ++r) {
    std::vector<std::string> cells;
    cells.reserve(columns.size());
    for (const auto& column : columns) {
      cells.push_back(util::CsvWriter::num(column.at(r)));
    }
    csv.row(cells);
  }
  std::printf("[csv] wrote %s/%s.csv\n", options.csv_dir.c_str(), name.c_str());
}

void print_banner(const std::string& figure, const std::string& description) {
  std::printf("================================================================\n");
  std::printf("%s — %s\n", figure.c_str(), description.c_str());
  std::printf("  (Andrews & Johnson, \"Performance Analysis of a Family of WHT\n");
  std::printf("   Algorithms\", IPPS 2007; see EXPERIMENTS.md for shape checks)\n");
  std::printf("================================================================\n");
}

}  // namespace whtlab::bench
