#include "common/scatter.hpp"

#include <algorithm>
#include <cstdio>

#include "stats/correlation.hpp"
#include "stats/descriptive.hpp"
#include "stats/regression.hpp"

namespace whtlab::bench {

namespace {

/// 61x21 character-cell scatter plot.
void ascii_scatter(const ScatterSeries& series) {
  constexpr int kWidth = 61;
  constexpr int kHeight = 21;
  const double x_lo = stats::min_value(series.x);
  const double x_hi = stats::max_value(series.x);
  const double y_lo = stats::min_value(series.cycles);
  const double y_hi = stats::max_value(series.cycles);
  if (x_hi == x_lo || y_hi == y_lo) return;
  std::vector<std::string> grid(kHeight, std::string(kWidth, ' '));
  for (std::size_t i = 0; i < series.x.size(); ++i) {
    const int cx = static_cast<int>((series.x[i] - x_lo) / (x_hi - x_lo) *
                                    (kWidth - 1));
    const int cy = static_cast<int>((series.cycles[i] - y_lo) /
                                    (y_hi - y_lo) * (kHeight - 1));
    char& cell = grid[static_cast<std::size_t>(kHeight - 1 - cy)]
                     [static_cast<std::size_t>(cx)];
    cell = cell == ' ' ? '.' : (cell == '.' ? 'o' : '#');
  }
  std::printf("\ncycles (vertical, %.3g..%.3g) vs %s (horizontal, %.3g..%.3g)\n",
              y_lo, y_hi, series.x_label.c_str(), x_lo, x_hi);
  for (const auto& row : grid) std::printf("|%s|\n", row.c_str());
}

}  // namespace

void report_scatter(const HarnessOptions& options, const std::string& csv_name,
                    const ScatterSeries& series,
                    const std::vector<Marker>& markers) {
  const double rho = stats::pearson(series.x, series.cycles);
  const double rank_rho = stats::spearman(series.x, series.cycles);
  const auto fit = stats::linear_regression(series.x, series.cycles);
  std::printf("\nPearson rho = %.4f   (Spearman rank rho = %.4f)\n", rho,
              rank_rho);
  std::printf("least squares: cycles ~ %.4g + %.4g * %s  (R^2 = %.3f)\n",
              fit.intercept, fit.slope, series.x_label.c_str(), fit.r_squared);

  ascii_scatter(series);

  std::printf("\nmarkers:\n");
  for (const auto& marker : markers) {
    std::printf("  %-10s %s=%.5g  cycles=%.5g\n", marker.name.c_str(),
                series.x_label.c_str(), marker.x, marker.cycles);
  }

  write_csv(options, csv_name, {series.x_label, "cycles"},
            {series.x, series.cycles});
}

}  // namespace whtlab::bench
