// Shared experiment harness for the figure benches.
//
// Every figure binary:
//   * reads the same knobs (flags override env, env overrides defaults):
//       --samples / WHTLAB_SAMPLES          population size at n = 9   (10000)
//       --samples-large / WHTLAB_SAMPLES_LARGE   population at n = 18  (500)
//       --maxn / WHTLAB_MAXN                largest size in sweeps     (20)
//       --seed / WHTLAB_SEED                RNG seed                   (1)
//       --csv DIR                           also write series as CSV
//   * prints its series as an aligned text table (the figure's data), and
//   * documents which paper figure it regenerates.
//
// The n = 18 defaults are scaled down from the paper's 10,000 samples so the
// full bench sweep finishes in minutes; set WHTLAB_SAMPLES_LARGE=10000 for
// the full-size run (see EXPERIMENTS.md).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "api/wht.hpp"
#include "core/plan.hpp"
#include "perf/events.hpp"
#include "util/cli.hpp"

namespace whtlab::bench {

struct HarnessOptions {
  int samples_small = 10000;
  int samples_large = 500;
  int max_n = 20;
  std::uint64_t seed = 1;
  std::string csv_dir;  ///< empty = no CSV output

  /// Parses flags/env.  Returns nullopt if the binary should exit (e.g.
  /// --help was requested).
  static std::optional<HarnessOptions> parse(int argc, char** argv);
};

/// A sampled population of WHT algorithms with their measured events
/// (paper Section 3: 10,000 random plans via recursive split uniform).
struct Population {
  int n = 0;
  std::vector<core::Plan> plans;
  std::vector<double> cycles;        ///< median measured cycles
  std::vector<double> instructions;  ///< interpreter op count (weighted)
  std::vector<double> misses;        ///< simulated L1 misses (Opteron geometry)
};

struct PopulationConfig {
  bool collect_misses = true;
  int repetitions = 5;
  int warmup = 1;
  // PAPI counted misses on the machine whose cycles it measured, so the
  // population's miss channel defaults to the *host* cache geometry; the
  // pure-model figures (e.g. fig03) use the Opteron geometry explicitly.
  cachesim::CacheConfig l1 = cachesim::CacheConfig::host_l1();
  cachesim::CacheConfig l2 = cachesim::CacheConfig::host_l2();
};

/// Draws `samples` plans of size 2^n and measures the event triple for each.
/// Progress goes to stderr (population builds take minutes at n = 18).
Population build_population(int n, int samples, std::uint64_t seed,
                            const PopulationConfig& config = {});

/// Applies the paper's outer-fence outlier rule to `primary` and returns the
/// indices kept (Section 3: discard beyond Q1 - 3*IQR / Q3 + 3*IQR).
std::vector<std::size_t> fence_filter(const std::vector<double>& primary);

/// The three canonical algorithms of Section 2, in presentation order.
struct CanonicalSuite {
  core::Plan iterative;
  core::Plan right_recursive;
  core::Plan left_recursive;
};
CanonicalSuite canonical_suite(int n);

/// "Best" plan a la the WHT package: wht::Planner with Strategy::kMeasure
/// (dynamic programming over measured runtime, binary/ternary splits; see
/// DESIGN.md).  Deterministic given the machine; a few seconds at n = 18+.
core::Plan best_plan_by_runtime(int n, int repetitions = 3);

/// Wraps a fixed plan in the façade (generated backend) so figure drivers
/// measure through the same code path users execute.
api::Transform fixed_transform(const core::Plan& plan);

/// Writes columns as CSV into options.csv_dir/<name>.csv (no-op when csv_dir
/// is empty).  All columns must have equal length.
void write_csv(const HarnessOptions& options, const std::string& name,
               const std::vector<std::string>& header,
               const std::vector<std::vector<double>>& columns);

/// Standard figure banner.
void print_banner(const std::string& figure, const std::string& description);

}  // namespace whtlab::bench
