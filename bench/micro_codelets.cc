// Ablation: template-unrolled vs generated straight-line codelets.
//
// DESIGN.md calls out the codelet backend as a design choice; this bench
// quantifies it per codelet size.  Expect near-identical times at -O2 (the
// compiler fully unrolls the template version), which is the justification
// for treating the two backends as interchangeable.
#include <benchmark/benchmark.h>

#include "core/codelet.hpp"
#include "util/aligned_buffer.hpp"
#include "util/rng.hpp"

namespace {

using namespace whtlab;

void bench_codelet(benchmark::State& state, core::CodeletBackend backend) {
  const int k = static_cast<int>(state.range(0));
  const std::uint64_t m = std::uint64_t{1} << k;
  util::AlignedBuffer x(m);
  util::Rng rng(7);
  for (auto& v : x) v = rng.uniform(-1, 1);
  const auto fn = core::codelet(k, backend);
  for (auto _ : state) {
    fn(x.data(), 1);
    benchmark::DoNotOptimize(x.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(k * m));  // butterflies
}

void BM_TemplateCodelet(benchmark::State& state) {
  bench_codelet(state, core::CodeletBackend::kTemplate);
}

void BM_GeneratedCodelet(benchmark::State& state) {
  bench_codelet(state, core::CodeletBackend::kGenerated);
}

BENCHMARK(BM_TemplateCodelet)->DenseRange(1, core::kMaxUnrolled);
BENCHMARK(BM_GeneratedCodelet)->DenseRange(1, core::kMaxUnrolled);

// Strided access cost: the same codelet at unit vs large stride.
void BM_CodeletStride(benchmark::State& state) {
  const int k = 4;
  const auto stride = static_cast<std::ptrdiff_t>(state.range(0));
  util::AlignedBuffer x(static_cast<std::size_t>((16 - 1) * stride + 1));
  x.fill(1.0);
  const auto fn = core::codelet(k, core::CodeletBackend::kGenerated);
  for (auto _ : state) {
    fn(x.data(), stride);
    benchmark::DoNotOptimize(x.data());
  }
}

BENCHMARK(BM_CodeletStride)->RangeMultiplier(8)->Range(1, 4096);

}  // namespace

BENCHMARK_MAIN();
