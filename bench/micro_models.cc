// Throughput of the measurement substrate itself: plan sampling, the
// instruction model, the analytic cache model, and the trace-driven
// simulator.  These bound how large a population the figure benches can
// process per second — the practical cost of "computable from the high-level
// description" vs simulation.
#include <benchmark/benchmark.h>

#include "cachesim/trace_runner.hpp"
#include "model/cache_model.hpp"
#include "model/instruction_model.hpp"
#include "search/sampler.hpp"
#include "util/rng.hpp"

namespace {

using namespace whtlab;

void BM_RecursiveSplitSampler(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  search::RecursiveSplitSampler sampler(core::kMaxUnrolled);
  util::Rng rng(1);
  for (auto _ : state) {
    auto plan = sampler.sample(n, rng);
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_RecursiveSplitSampler)->Arg(9)->Arg(18)->Arg(26);

void BM_InstructionModel(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  search::RecursiveSplitSampler sampler(core::kMaxUnrolled);
  util::Rng rng(2);
  const auto plan = sampler.sample(n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model::instruction_count(plan));
  }
}
BENCHMARK(BM_InstructionModel)->Arg(9)->Arg(18)->Arg(26);

void BM_CacheModelDirectMapped(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  search::RecursiveSplitSampler sampler(core::kMaxUnrolled);
  util::Rng rng(3);
  const auto plan = sampler.sample(n, rng);
  const auto config = model::CacheModelConfig::opteron_l1();
  for (auto _ : state) {
    benchmark::DoNotOptimize(model::direct_mapped_misses(plan, config));
  }
}
BENCHMARK(BM_CacheModelDirectMapped)->Arg(9)->Arg(14)->Arg(18);

void BM_TraceSimulatorTwoWay(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  search::RecursiveSplitSampler sampler(core::kMaxUnrolled);
  util::Rng rng(4);
  const auto plan = sampler.sample(n, rng);
  const auto config = cachesim::CacheConfig::opteron_l1();
  std::uint64_t accesses = 0;
  for (auto _ : state) {
    const auto result = cachesim::simulate_plan(plan, config);
    accesses = result.accesses;
    benchmark::DoNotOptimize(result.l1_misses);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(accesses));
}
BENCHMARK(BM_TraceSimulatorTwoWay)->Arg(9)->Arg(14)->Arg(18);

}  // namespace

BENCHMARK_MAIN();
