// whtd_stat — read-only observer for a live whtd's telemetry stats page.
//
// The serving daemon periodically publishes an Engine telemetry snapshot
// into a separate shm segment ("/whtlab.<endpoint>.stats", see
// ipc/protocol.hpp) guarded by a seqlock.  This tool maps that segment
// read-only (it provably cannot perturb the daemon it is observing), takes
// a consistent copy with stats_read(), and renders it:
//
//   whtd_stat                         # one-shot text dump, endpoint "whtlab"
//   whtd_stat --endpoint lab --json   # machine-readable snapshot
//   whtd_stat --watch 500             # re-render every 500 ms until ^C
//
// Exit status: 0 after at least one successful render; 1 when the stats
// segment is missing / malformed / unreadable (one-shot mode), 2 on usage
// errors.  --watch keeps trying across daemon restarts — the segment is
// remapped on every tick, so a rolling restart (new epoch, new pid) is
// picked up rather than leaving the observer staring at a dead mapping.
#include <cinttypes>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <exception>
#include <string>
#include <thread>

#include "ipc/protocol.hpp"
#include "ipc/shm.hpp"
#include "util/cli.hpp"

namespace {

using whtlab::ipc::StatsPage;
using whtlab::ipc::StatsSeries;

volatile std::sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = 1; }

/// Maps the endpoint's stats segment and copies a consistent snapshot into
/// `out`.  Returns false with a diagnostic in `error` on any failure: no
/// segment, short segment, bad magic/version, or a publish storm that
/// defeats the seqlock retry budget.
bool snapshot(const std::string& endpoint, StatsPage& out, std::string& error) {
  const std::string name = whtlab::ipc::stats_shm_name_for(endpoint);
  whtlab::ipc::Shm shm;
  try {
    shm = whtlab::ipc::Shm::open_readonly(name);
  } catch (const std::exception& e) {
    error = e.what();
    return false;
  }
  if (shm.size() < sizeof(StatsPage)) {
    error = name + ": segment too small (" + std::to_string(shm.size()) +
            " bytes) — not a stats page";
    return false;
  }
  const auto* page = static_cast<const StatsPage*>(shm.data());
  if (page->header.magic != whtlab::ipc::kStatsMagic) {
    error = name + ": bad magic — not a stats page";
    return false;
  }
  if (page->header.version != whtlab::ipc::kStatsVersion) {
    error = name + ": stats page version " +
            std::to_string(page->header.version) + ", this tool speaks " +
            std::to_string(whtlab::ipc::kStatsVersion);
    return false;
  }
  if (!whtlab::ipc::stats_read(*page, out)) {
    error = name + ": no consistent snapshot (publish storm) — try again";
    return false;
  }
  return true;
}

void print_text(const StatsPage& page) {
  const auto& h = page.header;
  const std::uint64_t now = whtlab::ipc::monotonic_ns();
  const double age_ms = h.published_ns != 0 && now > h.published_ns
                            ? static_cast<double>(now - h.published_ns) / 1e6
                            : 0.0;
  std::printf(
      "whtd pid=%" PRIu32 " epoch=%" PRIu64 " published %.0f ms ago\n",
      h.pid, h.epoch, age_ms);
  std::printf("totals: requests=%" PRIu64 " vectors=%" PRIu64
              " batches=%" PRIu64 " failures=%" PRIu64 " fallbacks=%" PRIu64
              "\n",
              h.totals.requests, h.totals.vectors, h.totals.batches,
              h.totals.failures, h.totals.fallbacks);
  if (h.series_count == 0) {
    std::printf("(no telemetry series yet)\n");
    return;
  }
  std::printf("%4s  %-12s %-7s %10s %12s %12s %12s %12s\n", "n", "backend",
              "shape", "count", "mean", "p50", "p99", "max");
  for (std::uint32_t i = 0; i < h.series_count; ++i) {
    const StatsSeries& s = page.series[i];
    std::printf("%4d  %-12s %-7s %10" PRIu64 " %12.0f %12.0f %12.0f %12" PRIu64
                "\n",
                s.n, s.backend, s.batch ? "batch" : "single", s.count, s.mean,
                s.p50, s.p99, s.max);
  }
}

/// Backend names come from BackendRegistry identifiers ([a-z_]+ in this
/// repo), so plain %s inside quotes is safe JSON; guard anyway by dropping
/// quotes and backslashes if a hostile daemon wrote them.
void print_json_string(const char* s) {
  std::putchar('"');
  for (; *s; ++s) {
    if (*s != '"' && *s != '\\' && static_cast<unsigned char>(*s) >= 0x20) {
      std::putchar(*s);
    }
  }
  std::putchar('"');
}

void print_json(const StatsPage& page) {
  const auto& h = page.header;
  std::printf("{\"pid\":%" PRIu32 ",\"epoch\":%" PRIu64
              ",\"published_ns\":%" PRIu64 ",",
              h.pid, h.epoch, h.published_ns);
  std::printf("\"totals\":{\"requests\":%" PRIu64 ",\"vectors\":%" PRIu64
              ",\"batches\":%" PRIu64 ",\"failures\":%" PRIu64
              ",\"fallbacks\":%" PRIu64 "},",
              h.totals.requests, h.totals.vectors, h.totals.batches,
              h.totals.failures, h.totals.fallbacks);
  std::printf("\"series\":[");
  for (std::uint32_t i = 0; i < h.series_count; ++i) {
    const StatsSeries& s = page.series[i];
    if (i != 0) std::putchar(',');
    std::printf("{\"n\":%d,\"backend\":", s.n);
    print_json_string(s.backend);
    std::printf(",\"shape\":\"%s\",\"count\":%" PRIu64 ",\"min\":%" PRIu64
                ",\"max\":%" PRIu64 ",\"mean\":%.1f,\"p50\":%.1f,\"p99\":%.1f}",
                s.batch ? "batch" : "single", s.count, s.min, s.max, s.mean,
                s.p50, s.p99);
  }
  std::printf("]}\n");
}

}  // namespace

int main(int argc, char** argv) {
  whtlab::util::Cli cli;
  cli.add_flag("endpoint", "serving endpoint to observe (default whtlab)");
  cli.add_flag("watch", "re-render every N ms until interrupted");
  cli.add_bool("json", "emit one JSON object per snapshot instead of text");
  if (!cli.parse(argc, argv)) return 2;

  const std::string endpoint = cli.get("endpoint", "whtlab");
  const bool json = cli.has("json");
  const std::int64_t watch_ms = cli.get_int("watch", 0);
  if (cli.has("watch") && watch_ms < 1) {
    std::fprintf(stderr, "whtd_stat: --watch must be >= 1 ms\n");
    return 2;
  }

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  static StatsPage page;  // ~18 KiB — keep it off the stack
  std::string error;
  if (watch_ms == 0) {
    if (!snapshot(endpoint, page, error)) {
      std::fprintf(stderr, "whtd_stat: %s\n", error.c_str());
      return 1;
    }
    json ? print_json(page) : print_text(page);
    return 0;
  }

  // Watch mode: remap every tick so daemon restarts/handoffs (which unlink
  // and recreate the segment) are followed; transient misses are reported
  // once per state change rather than spamming every tick.
  bool was_ok = true;
  while (!g_stop) {
    if (snapshot(endpoint, page, error)) {
      json ? print_json(page) : print_text(page);
      if (!json) std::printf("\n");
      std::fflush(stdout);
      was_ok = true;
    } else if (was_ok) {
      std::fprintf(stderr, "whtd_stat: %s (still watching)\n", error.c_str());
      was_ok = false;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(watch_ms));
  }
  return 0;
}
