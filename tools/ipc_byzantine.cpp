// ipc_byzantine — seeded hostile-client fuzzer for the whtd trust boundary.
//
// Connects to a live whtd endpoint the way an attacker would (raw segment
// mapping, no client library) and scribbles seeded corruption over every
// client-writable field of its own slot: ring cursors, ring payloads,
// state/pid/generation words, the staging arena, the doorbell, plus a
// stream of malformed requests (src/ipc/fuzz.hpp).  The daemon must never
// crash, wedge, or corrupt honest neighbours; this tool is the attacker
// half of that proof — pair it with honest `ipc_client --verify` processes
// on the same endpoint (the CI byzantine-fuzz smoke does exactly that):
//
//   whtd --endpoint fuzz --strikes 3 &
//   ipc_client --endpoint fuzz --verify --requests 200 &
//   ipc_byzantine --endpoint fuzz --seed 7 --ops 2000
//
// The whole op stream derives from --seed: any finding replays exactly.
// Exit 0 = the op budget was spent (the daemon's health is the *callers'*
// assertion: honest clients bit-exact, daemon alive); exit 1 = the harness
// itself could not run (no daemon, no free slot).
#include <cstdio>
#include <exception>

#include "ipc/fuzz.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  whtlab::util::Cli cli;
  cli.add_flag("endpoint", "whtd endpoint to attack");
  cli.add_flag("seed", "op-stream seed (same seed = same attack, replayable)");
  cli.add_flag("ops", "hostile mutations to apply");
  cli.add_flag("op-delay-us", "pacing between ops (0 = full speed)");
  cli.add_flag("wait-ms", "how long to wait for a live daemon");
  if (!cli.parse(argc, argv)) return 2;

  whtlab::ipc::FuzzOptions options;
  options.endpoint = cli.get("endpoint", options.endpoint);
  options.seed = static_cast<std::uint64_t>(
      cli.get_int("seed", static_cast<std::int64_t>(options.seed)));
  options.ops = static_cast<std::uint64_t>(
      cli.get_int("ops", static_cast<std::int64_t>(options.ops)));
  options.op_delay_us = static_cast<std::uint64_t>(cli.get_int(
      "op-delay-us", static_cast<std::int64_t>(options.op_delay_us)));
  options.wait_ms = static_cast<std::uint64_t>(
      cli.get_int("wait-ms", static_cast<std::int64_t>(options.wait_ms)));

  try {
    const whtlab::ipc::FuzzReport report =
        whtlab::ipc::run_byzantine_client(options);
    std::printf(
        "ipc_byzantine: seed=%llu slot=%d ops=%llu pushed=%llu "
        "responses=%llu reclaims=%llu\n",
        static_cast<unsigned long long>(options.seed), report.slot,
        static_cast<unsigned long long>(report.ops_applied),
        static_cast<unsigned long long>(report.requests_pushed),
        static_cast<unsigned long long>(report.responses_seen),
        static_cast<unsigned long long>(report.reclaims_survived));
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ipc_byzantine: %s\n", e.what());
    return 1;
  }
}
