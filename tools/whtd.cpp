// whtd — the whtlab shared-memory serving daemon (src/ipc/daemon.hpp).
//
// Owns one process-wide wht::Engine and serves every connected client
// process through zero-copy shm rings:
//
//   whtd &                          # serve endpoint "whtlab"
//   whtd --endpoint lab --slots 8 --rate-limit 5000
//   whtd --stats                    # periodic shared-counter lines
//   whtd --supervise --pid-file d.pid   # watchdog + rolling restarts
//
// Defaults come from DaemonOptions::from_env() (the WHTLAB_IPC_* knobs);
// flags override the environment.  Signals:
//
//   SIGTERM  graceful drain (--drain-ms budget): stop admitting — new
//            submissions answer the typed kDraining — finish in-flight
//            work, wait for clients to consume their answers, flush
//            wisdom, then exit.
//   SIGINT   immediate stop: in-flight work is answered, waiters resolve
//            to kDaemonGone, the segment is unlinked.
//   SIGHUP   (supervisor only) zero-downtime rolling restart: fork a warm
//            standby successor, drain the incumbent, hand the endpoint
//            over — reconnect-enabled clients cross it with zero failures.
//
// --supervise runs the serving daemon in a forked child and restarts it
// (capped backoff, budget that resets after --stable-ms of healthy
// serving) whenever it crashes, is SIGKILLed, or wedges — a wedge being a
// live pid whose segment heartbeat (ControlHeader::heartbeat_ns) has not
// advanced within --wedge-ms.  --pid-file always records the *serving*
// pid (atomically, tmp+rename), tracking the current child across
// restarts and handoffs, so kill scripts hit the daemon and never the
// watchdog.  The heavy lifting lives in src/ipc/supervisor.hpp.
#include <cstdio>
#include <exception>
#include <string>

#include "ipc/daemon.hpp"
#include "ipc/supervisor.hpp"
#include "util/cli.hpp"

namespace {

/// Environment first, flags on top — run again by every supervised child
/// (through SupervisorOptions::reload), so a rolling restart picks up
/// WHTLAB_IPC_* changes made since the supervisor booted.
whtlab::ipc::DaemonOptions options_from(const whtlab::util::Cli& cli) {
  whtlab::ipc::DaemonOptions options = whtlab::ipc::DaemonOptions::from_env();
  options.endpoint = cli.get("endpoint", options.endpoint);
  options.slots =
      static_cast<std::uint32_t>(cli.get_int("slots", options.slots));
  options.arena_doubles = static_cast<std::uint64_t>(cli.get_int(
      "arena-doubles", static_cast<std::int64_t>(options.arena_doubles)));
  options.rate_limit = static_cast<std::uint64_t>(cli.get_int(
      "rate-limit", static_cast<std::int64_t>(options.rate_limit)));
  options.credit_limit = static_cast<std::uint64_t>(cli.get_int(
      "credits", static_cast<std::int64_t>(options.credit_limit)));
  options.credit_window_ns =
      static_cast<std::uint64_t>(cli.get_int(
          "credit-window-ms",
          static_cast<std::int64_t>(options.credit_window_ns / 1000000ULL))) *
      1000000ULL;
  options.shed_expired = cli.get_int("shed", options.shed_expired ? 1 : 0) != 0;
  options.strike_limit = static_cast<std::uint32_t>(
      cli.get_int("strikes", static_cast<std::int64_t>(options.strike_limit)));
  options.timeout_ms = static_cast<std::uint64_t>(cli.get_int(
      "timeout-ms", static_cast<std::int64_t>(options.timeout_ms)));
  options.sweep_ms = static_cast<std::uint64_t>(
      cli.get_int("sweep-ms", static_cast<std::int64_t>(options.sweep_ms)));
  options.drain_ms = static_cast<std::uint64_t>(
      cli.get_int("drain-ms", static_cast<std::int64_t>(options.drain_ms)));
  options.engine.wisdom_file = cli.get("wisdom", options.engine.wisdom_file);
  options.engine.batch_window_us = static_cast<long>(cli.get_int(
      "coalesce-window-us",
      static_cast<std::int64_t>(options.engine.batch_window_us)));
  return options;
}

}  // namespace

int main(int argc, char** argv) {
  whtlab::util::Cli cli;
  cli.add_flag("endpoint", "serving endpoint (segment /dev/shm/whtlab.<name>)");
  cli.add_flag("slots", "client slots (admission-control bound)");
  cli.add_flag("arena-doubles", "per-slot staging arena, in doubles");
  cli.add_flag("rate-limit", "admitted requests/client/window (0 = off)");
  cli.add_flag("credits", "per-client work credits (vectors) per window (0 = off)");
  cli.add_flag("credit-window-ms", "credit bucket full-refill period, ms");
  cli.add_flag("shed", "deadline load shedding: 1 = drop expired requests (default), 0 = off");
  cli.add_flag("strikes", "protocol strikes before slot eviction (0 = never evict)");
  cli.add_flag("timeout-ms", "published client wait deadline, ms");
  cli.add_flag("sweep-ms", "dead-client liveness sweep period, ms");
  cli.add_flag("drain-ms", "graceful-drain budget for SIGTERM/handoffs, ms");
  cli.add_flag("wisdom", "wisdom file for first-touch planning");
  cli.add_flag("coalesce-window-us",
               "engine batch-coalescing window, microseconds (0 = off)");
  cli.add_flag("pid-file", "write the serving pid here (current child under --supervise)");
  cli.add_flag("wedge-ms", "supervisor: heartbeat staleness that counts as wedged");
  cli.add_flag("max-restarts", "supervisor: give up after this many unstable restarts (0 = never)");
  cli.add_flag("stable-ms", "supervisor: healthy uptime that resets the restart budget");
  cli.add_flag("handoff-ready-ms", "supervisor: successor prewarm bound for SIGHUP handoffs");
  cli.add_flag("stats-interval-ms", "period of the --stats counter line (default 1000)");
  cli.add_bool("stats", "print shared counters periodically (see --stats-interval-ms)");
  cli.add_bool("prewarm", "rebuild wisdom-recorded transforms before serving");
  cli.add_bool("once-ready", "print READY on stdout once serving (for scripts)");
  cli.add_bool("supervise", "watchdogged child: restart on crash/wedge, SIGHUP rolling restart");
  if (!cli.parse(argc, argv)) return 2;

  whtlab::ipc::DaemonOptions options;
  try {
    options = options_from(cli);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "whtd: %s\n", e.what());
    return 2;
  }

  const std::int64_t stats_interval_ms = cli.get_int("stats-interval-ms", 1000);
  if (stats_interval_ms < 1) {
    std::fprintf(stderr, "whtd: --stats-interval-ms must be >= 1\n");
    return 2;
  }
  whtlab::ipc::ServeOptions serve_options;
  // Asking for an interval implies asking for the stats line.
  serve_options.stats = cli.has("stats") || cli.has("stats-interval-ms");
  serve_options.stats_interval_ms = stats_interval_ms;
  serve_options.prewarm = cli.has("prewarm");
  serve_options.once_ready = cli.has("once-ready");

  if (cli.has("supervise")) {
    whtlab::ipc::SupervisorOptions supervisor;
    supervisor.daemon = options;
    supervisor.child = serve_options;
    // Config/env re-read per spawned child: flags pin what they name, the
    // environment underneath may move between handoffs.
    supervisor.reload = [cli] { return options_from(cli); };
    supervisor.pid_file = cli.get("pid-file", "");
    supervisor.wedge_ms = cli.get_int("wedge-ms", 10000);
    supervisor.max_restarts = cli.get_int("max-restarts", 0);
    supervisor.stable_ms = static_cast<std::uint64_t>(
        cli.get_int("stable-ms", 60000));
    supervisor.handoff_ready_ms = static_cast<std::uint64_t>(
        cli.get_int("handoff-ready-ms", 30000));
    if (supervisor.wedge_ms < 1) {
      std::fprintf(stderr, "whtd: --wedge-ms must be >= 1\n");
      return 2;
    }
    return whtlab::ipc::run_supervisor(supervisor);
  }
  serve_options.pid_file = cli.get("pid-file", "");
  return whtlab::ipc::serve(options, serve_options);
}
