// whtd — the whtlab shared-memory serving daemon (src/ipc/daemon.hpp).
//
// Owns one process-wide wht::Engine and serves every connected client
// process through zero-copy shm rings:
//
//   whtd &                          # serve endpoint "whtlab"
//   whtd --endpoint lab --slots 8 --rate-limit 5000
//   whtd --stats                    # periodic shared-counter lines
//   whtd --supervise --pid-file d.pid   # fork-based watchdog (below)
//
// Defaults come from DaemonOptions::from_env() (the WHTLAB_IPC_* knobs);
// flags override the environment.  SIGINT/SIGTERM trigger a clean stop():
// in-flight work drains, blocked clients resolve to kDaemonGone, the
// segment is unlinked.
//
// --supervise turns whtd into a watchdog: the serving daemon runs in a
// forked child, and the parent restarts it (with capped backoff) whenever
// it crashes, is SIGKILLed, or wedges — a wedge being a live pid whose
// segment heartbeat (ControlHeader::heartbeat_ns) has not advanced within
// --wedge-ms.  Reconnect-enabled clients ride the restart transparently.
// --pid-file always records the *serving* pid (the child under
// --supervise), so kill scripts hit the daemon and not the watchdog.
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <exception>
#include <string>
#include <thread>

#include "api/engine.hpp"
#include "ipc/daemon.hpp"
#include "ipc/protocol.hpp"
#include "ipc/shm.hpp"
#include "util/cli.hpp"

namespace {

std::atomic<int> g_signal{0};

void on_signal(int sig) { g_signal.store(sig, std::memory_order_relaxed); }

void print_stats(const whtlab::ipc::Daemon& daemon) {
  std::printf("whtd: %s\n",
              whtlab::ipc::to_string(daemon.stats()).c_str());
  std::fflush(stdout);
}

void write_pid_file(const std::string& path, pid_t pid) {
  if (path.empty()) return;
  if (std::FILE* f = std::fopen(path.c_str(), "w")) {
    std::fprintf(f, "%d\n", static_cast<int>(pid));
    std::fclose(f);
  } else {
    std::fprintf(stderr, "whtd: cannot write pid file %s\n", path.c_str());
  }
}

/// The serving process proper: construct, serve until signalled, stop.
int run_daemon(const whtlab::ipc::DaemonOptions& options, bool stats,
               std::int64_t stats_interval_ms, bool prewarm, bool once_ready,
               const std::string& pid_file) {
  try {
    whtlab::ipc::Daemon daemon(options);
    if (prewarm) {
      // Pay the first-touch planning stalls before taking traffic — runs in
      // every supervised restart too (run_daemon is the child body), so a
      // bounced daemon comes back warm from the same wisdom.
      const std::size_t built = daemon.engine().prewarm();
      std::fprintf(stderr, "whtd: prewarmed %zu transform(s) from %s\n",
                   built, options.engine.wisdom_file.empty()
                              ? "(no wisdom file)"
                              : options.engine.wisdom_file.c_str());
    }
    daemon.start();

    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);
    write_pid_file(pid_file, ::getpid());

    std::fprintf(stderr, "whtd: serving %s (slots=%u arena=%llu doubles)\n",
                 daemon.shm_name().c_str(), options.slots,
                 static_cast<unsigned long long>(options.arena_doubles));
    if (once_ready) {
      std::printf("READY\n");
      std::fflush(stdout);
    }

    auto last_stats = std::chrono::steady_clock::now();
    while (g_signal.load(std::memory_order_relaxed) == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      if (stats) {
        const auto now = std::chrono::steady_clock::now();
        if (now - last_stats >=
            std::chrono::milliseconds(stats_interval_ms)) {
          print_stats(daemon);
          last_stats = now;
        }
      }
    }

    std::fprintf(stderr, "whtd: signal %d, stopping\n",
                 g_signal.load(std::memory_order_relaxed));
    daemon.stop();
    print_stats(daemon);
    std::fprintf(stderr, "whtd: engine %s\n",
                 whtlab::api::to_string(daemon.engine().stats()).c_str());
  } catch (const whtlab::ipc::Error& e) {
    std::fprintf(stderr, "whtd: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "whtd: %s\n", e.what());
    return 1;
  }
  return 0;
}

/// Heartbeat staleness in ms for the endpoint's segment, or -1 when the
/// segment is missing/unreadable (daemon still booting — not a wedge).
std::int64_t heartbeat_age_ms(const std::string& endpoint) {
  try {
    // Read-only mapping: the watchdog is a pure observer — it must not be
    // *able* to perturb the protocol state it judges.
    const whtlab::ipc::Shm probe = whtlab::ipc::Shm::open_readonly(
        whtlab::ipc::shm_name_for(endpoint));
    if (probe.size() < sizeof(whtlab::ipc::ControlHeader)) return -1;
    const auto* hdr =
        static_cast<const whtlab::ipc::ControlHeader*>(probe.data());
    if (hdr->magic != whtlab::ipc::kMagic) return -1;
    const std::uint64_t hb =
        hdr->heartbeat_ns.load(std::memory_order_relaxed);
    if (hb == 0) return -1;  // service loop not entered yet
    const std::uint64_t now = whtlab::ipc::monotonic_ns();
    return now <= hb ? 0
                     : static_cast<std::int64_t>((now - hb) / 1000000ULL);
  } catch (const std::exception&) {
    return -1;
  }
}

/// Fork-based watchdog: serve in a child, restart it on crash or wedge.
int supervise(const whtlab::ipc::DaemonOptions& options, bool stats,
              std::int64_t stats_interval_ms, bool prewarm, bool once_ready,
              const std::string& pid_file, std::int64_t wedge_ms,
              std::int64_t max_restarts) {
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  std::int64_t restarts = 0;
  for (;;) {
    const pid_t child = ::fork();
    if (child < 0) {
      std::perror("whtd: fork");
      return 1;
    }
    if (child == 0) {
      // IMPORTANT: the parent is still single-threaded here; all threads
      // (Engine dispatcher, service loop) are born inside this child.
      ::_exit(run_daemon(options, stats, stats_interval_ms, prewarm,
                         once_ready, pid_file));
    }
    std::fprintf(stderr, "whtd[supervisor]: daemon pid %d (restart %lld)\n",
                 static_cast<int>(child),
                 static_cast<long long>(restarts));
    const std::uint64_t spawn_ns = whtlab::ipc::monotonic_ns();
    bool respawn = false;
    int wait_status = 0;
    for (;;) {
      const int sig = g_signal.load(std::memory_order_relaxed);
      if (sig != 0) {
        // Forward the shutdown request, give the child a grace period to
        // drain, then make sure of it.
        ::kill(child, SIGTERM);
        for (int i = 0; i < 100; ++i) {
          if (::waitpid(child, &wait_status, WNOHANG) == child) {
            return WIFEXITED(wait_status) ? WEXITSTATUS(wait_status) : 0;
          }
          std::this_thread::sleep_for(std::chrono::milliseconds(50));
        }
        ::kill(child, SIGKILL);
        ::waitpid(child, &wait_status, 0);
        return 0;
      }
      const pid_t done = ::waitpid(child, &wait_status, WNOHANG);
      if (done == child) {
        if (WIFEXITED(wait_status) && WEXITSTATUS(wait_status) == 0) {
          return 0;  // clean voluntary exit: nothing to supervise
        }
        std::fprintf(stderr,
                     "whtd[supervisor]: daemon died (%s %d), restarting\n",
                     WIFSIGNALED(wait_status) ? "signal" : "status",
                     WIFSIGNALED(wait_status) ? WTERMSIG(wait_status)
                                              : WEXITSTATUS(wait_status));
        respawn = true;
        break;
      }
      // Wedge detection: a live child whose heartbeat went stale is as
      // gone as a dead one — replace it.  The boot grace period covers
      // segment creation + Engine construction + first loop entry.
      const std::int64_t age = heartbeat_age_ms(options.endpoint);
      const std::uint64_t up_ms =
          (whtlab::ipc::monotonic_ns() - spawn_ns) / 1000000ULL;
      const bool booted = age >= 0;
      const bool wedged =
          (booted && age > wedge_ms) ||
          (!booted && up_ms > static_cast<std::uint64_t>(wedge_ms) + 10000);
      if (wedged) {
        std::fprintf(stderr,
                     "whtd[supervisor]: daemon wedged (heartbeat %lld ms "
                     "stale), killing pid %d\n",
                     static_cast<long long>(age), static_cast<int>(child));
        ::kill(child, SIGKILL);
        ::waitpid(child, &wait_status, 0);
        respawn = true;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    if (!respawn) return 0;
    restarts += 1;
    if (max_restarts > 0 && restarts > max_restarts) {
      std::fprintf(stderr, "whtd[supervisor]: %lld restarts exhausted\n",
                   static_cast<long long>(max_restarts));
      return 1;
    }
    // Capped restart backoff so a daemon that dies on boot cannot spin the
    // supervisor hot.
    const std::int64_t backoff_ms =
        std::min<std::int64_t>(100 << std::min<std::int64_t>(restarts, 5),
                               2000);
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
  }
}

}  // namespace

int main(int argc, char** argv) {
  whtlab::util::Cli cli;
  cli.add_flag("endpoint", "serving endpoint (segment /dev/shm/whtlab.<name>)");
  cli.add_flag("slots", "client slots (admission-control bound)");
  cli.add_flag("arena-doubles", "per-slot staging arena, in doubles");
  cli.add_flag("rate-limit", "admitted requests/client/window (0 = off)");
  cli.add_flag("credits", "per-client work credits (vectors) per window (0 = off)");
  cli.add_flag("credit-window-ms", "credit bucket full-refill period, ms");
  cli.add_flag("shed", "deadline load shedding: 1 = drop expired requests (default), 0 = off");
  cli.add_flag("strikes", "protocol strikes before slot eviction (0 = never evict)");
  cli.add_flag("timeout-ms", "published client wait deadline, ms");
  cli.add_flag("sweep-ms", "dead-client liveness sweep period, ms");
  cli.add_flag("wisdom", "wisdom file for first-touch planning");
  cli.add_flag("pid-file", "write the serving pid here (child pid under --supervise)");
  cli.add_flag("wedge-ms", "supervisor: heartbeat staleness that counts as wedged");
  cli.add_flag("max-restarts", "supervisor: give up after this many restarts (0 = never)");
  cli.add_flag("stats-interval-ms", "period of the --stats counter line (default 1000)");
  cli.add_bool("stats", "print shared counters periodically (see --stats-interval-ms)");
  cli.add_bool("prewarm", "rebuild wisdom-recorded transforms before serving");
  cli.add_bool("once-ready", "print READY on stdout once serving (for scripts)");
  cli.add_bool("supervise", "run the daemon in a watchdogged child, restart on crash/wedge");
  if (!cli.parse(argc, argv)) return 2;

  whtlab::ipc::DaemonOptions options;
  try {
    options = whtlab::ipc::DaemonOptions::from_env();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "whtd: %s\n", e.what());
    return 2;
  }
  options.endpoint = cli.get("endpoint", options.endpoint);
  options.slots =
      static_cast<std::uint32_t>(cli.get_int("slots", options.slots));
  options.arena_doubles = static_cast<std::uint64_t>(cli.get_int(
      "arena-doubles", static_cast<std::int64_t>(options.arena_doubles)));
  options.rate_limit = static_cast<std::uint64_t>(cli.get_int(
      "rate-limit", static_cast<std::int64_t>(options.rate_limit)));
  options.credit_limit = static_cast<std::uint64_t>(cli.get_int(
      "credits", static_cast<std::int64_t>(options.credit_limit)));
  options.credit_window_ns =
      static_cast<std::uint64_t>(cli.get_int(
          "credit-window-ms",
          static_cast<std::int64_t>(options.credit_window_ns / 1000000ULL))) *
      1000000ULL;
  options.shed_expired =
      cli.get_int("shed", options.shed_expired ? 1 : 0) != 0;
  options.strike_limit = static_cast<std::uint32_t>(
      cli.get_int("strikes", static_cast<std::int64_t>(options.strike_limit)));
  options.timeout_ms = static_cast<std::uint64_t>(cli.get_int(
      "timeout-ms", static_cast<std::int64_t>(options.timeout_ms)));
  options.sweep_ms = static_cast<std::uint64_t>(
      cli.get_int("sweep-ms", static_cast<std::int64_t>(options.sweep_ms)));
  options.engine.wisdom_file = cli.get("wisdom", options.engine.wisdom_file);

  const std::int64_t stats_interval_ms = cli.get_int("stats-interval-ms", 1000);
  if (stats_interval_ms < 1) {
    std::fprintf(stderr, "whtd: --stats-interval-ms must be >= 1\n");
    return 2;
  }
  // Asking for an interval implies asking for the stats line.
  const bool stats = cli.has("stats") || cli.has("stats-interval-ms");
  const bool prewarm = cli.has("prewarm");
  const bool once_ready = cli.has("once-ready");
  const std::string pid_file = cli.get("pid-file", "");
  if (cli.has("supervise")) {
    const std::int64_t wedge_ms = cli.get_int("wedge-ms", 10000);
    const std::int64_t max_restarts = cli.get_int("max-restarts", 0);
    if (wedge_ms < 1) {
      std::fprintf(stderr, "whtd: --wedge-ms must be >= 1\n");
      return 2;
    }
    return supervise(options, stats, stats_interval_ms, prewarm, once_ready,
                     pid_file, wedge_ms, max_restarts);
  }
  return run_daemon(options, stats, stats_interval_ms, prewarm, once_ready,
                    pid_file);
}
