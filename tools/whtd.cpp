// whtd — the whtlab shared-memory serving daemon (src/ipc/daemon.hpp).
//
// Owns one process-wide wht::Engine and serves every connected client
// process through zero-copy shm rings:
//
//   whtd &                          # serve endpoint "whtlab"
//   whtd --endpoint lab --slots 8 --rate-limit 5000
//   whtd --stats                    # periodic shared-counter lines
//
// Defaults come from DaemonOptions::from_env() (the WHTLAB_IPC_* knobs);
// flags override the environment.  SIGINT/SIGTERM trigger a clean stop():
// in-flight work drains, blocked clients resolve to kDaemonGone, the
// segment is unlinked.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <exception>
#include <string>
#include <thread>

#include "api/engine.hpp"
#include "ipc/daemon.hpp"
#include "util/cli.hpp"

namespace {

std::atomic<int> g_signal{0};

void on_signal(int sig) { g_signal.store(sig, std::memory_order_relaxed); }

void print_stats(const whtlab::ipc::Daemon& daemon) {
  const whtlab::ipc::Daemon::Stats s = daemon.stats();
  std::printf(
      "whtd: requests=%llu vectors=%llu throttled=%llu bad_request=%llu "
      "exec_errors=%llu reclaimed=%llu dropped=%llu\n",
      static_cast<unsigned long long>(s.requests),
      static_cast<unsigned long long>(s.vectors),
      static_cast<unsigned long long>(s.throttled),
      static_cast<unsigned long long>(s.bad_request),
      static_cast<unsigned long long>(s.exec_errors),
      static_cast<unsigned long long>(s.reclaimed),
      static_cast<unsigned long long>(s.dropped));
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  whtlab::util::Cli cli;
  cli.add_flag("endpoint", "serving endpoint (segment /dev/shm/whtlab.<name>)");
  cli.add_flag("slots", "client slots (admission-control bound)");
  cli.add_flag("arena-doubles", "per-slot staging arena, in doubles");
  cli.add_flag("rate-limit", "admitted requests/client/window (0 = off)");
  cli.add_flag("timeout-ms", "published client wait deadline, ms");
  cli.add_flag("sweep-ms", "dead-client liveness sweep period, ms");
  cli.add_flag("wisdom", "wisdom file for first-touch planning");
  cli.add_bool("stats", "print shared counters once a second");
  cli.add_bool("once-ready", "print READY on stdout once serving (for scripts)");
  if (!cli.parse(argc, argv)) return 2;

  whtlab::ipc::DaemonOptions options = whtlab::ipc::DaemonOptions::from_env();
  options.endpoint = cli.get("endpoint", options.endpoint);
  options.slots =
      static_cast<std::uint32_t>(cli.get_int("slots", options.slots));
  options.arena_doubles = static_cast<std::uint64_t>(cli.get_int(
      "arena-doubles", static_cast<std::int64_t>(options.arena_doubles)));
  options.rate_limit = static_cast<std::uint64_t>(cli.get_int(
      "rate-limit", static_cast<std::int64_t>(options.rate_limit)));
  options.timeout_ms = static_cast<std::uint64_t>(cli.get_int(
      "timeout-ms", static_cast<std::int64_t>(options.timeout_ms)));
  options.sweep_ms = static_cast<std::uint64_t>(
      cli.get_int("sweep-ms", static_cast<std::int64_t>(options.sweep_ms)));
  options.engine.wisdom_file = cli.get("wisdom", options.engine.wisdom_file);

  try {
    whtlab::ipc::Daemon daemon(options);
    daemon.start();

    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);

    std::fprintf(stderr, "whtd: serving %s (slots=%u arena=%llu doubles)\n",
                 daemon.shm_name().c_str(), options.slots,
                 static_cast<unsigned long long>(options.arena_doubles));
    if (cli.has("once-ready")) {
      std::printf("READY\n");
      std::fflush(stdout);
    }

    const bool stats = cli.has("stats");
    auto last_stats = std::chrono::steady_clock::now();
    while (g_signal.load(std::memory_order_relaxed) == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      if (stats) {
        const auto now = std::chrono::steady_clock::now();
        if (now - last_stats >= std::chrono::seconds(1)) {
          print_stats(daemon);
          last_stats = now;
        }
      }
    }

    std::fprintf(stderr, "whtd: signal %d, stopping\n",
                 g_signal.load(std::memory_order_relaxed));
    daemon.stop();
    print_stats(daemon);
    std::fprintf(stderr, "whtd: engine %s\n",
                 whtlab::api::to_string(daemon.engine().stats()).c_str());
  } catch (const whtlab::ipc::Error& e) {
    std::fprintf(stderr, "whtd: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "whtd: %s\n", e.what());
    return 1;
  }
  return 0;
}
