// Counting the WHT algorithm space.
//
// Section 2 of the paper: "there are approximately O(7^n) different
// algorithms" (precise results in Hitczenko–Johnson–Huang, TCS 352).  With
// a(m) = number of plans for WHT(2^m) and leaves admissible up to max_leaf,
//
//   a(m) = [m <= max_leaf] + sum over compositions m = n1+...+nt, t >= 2,
//                            of a(n1) * ... * a(nt).
//
// Enumerating compositions costs 2^(m-1) per size; instead we use the
// sequence transform s(m) = sum over compositions with t >= 1 parts of the
// product, which satisfies s(m) = sum_{k=1..m} a(k) s(m-k) with s(0) = 1,
// giving the O(n^2) recurrences
//
//   a(m) = leaf(m) + sum_{k=1..m-1} a(k) s(m-k),      s(m) = 2 a(m) - leaf(m).
//
// Counts are exact (BigInt); the growth ratio a(n+1)/a(n) approaching ~7
// reproduces the paper's O(7^n) remark and is asserted in tests.
#pragma once

#include <vector>

#include "core/plan.hpp"
#include "util/bigint.hpp"

namespace whtlab::search {

class PlanSpace {
 public:
  /// Plan space for transforms up to size 2^max_n with codelets up to
  /// 2^max_leaf.
  explicit PlanSpace(int max_n, int max_leaf = core::kMaxUnrolled);

  int max_n() const { return max_n_; }
  int max_leaf() const { return max_leaf_; }

  /// Exact number of plans of size 2^n.
  const util::BigInt& count(int n) const;

  /// Number of sequences (t >= 1 compositions weighted by plan counts) —
  /// exposed for the exactly-uniform sampler.
  const util::BigInt& sequence_count(int n) const;

  /// a(n+1)/a(n) as a double — approaches the space's growth constant.
  double growth_ratio(int n) const;

 private:
  int max_n_;
  int max_leaf_;
  std::vector<util::BigInt> a_;  // a_[m] = plan count
  std::vector<util::BigInt> s_;  // s_[m] = sequence count, s_[0] = 1
};

}  // namespace whtlab::search
