// Dynamic-programming autotuner — the WHT package's "best plan" search.
//
// The original package (Johnson & Püschel, ICASSP 2000) finds fast plans by
// dynamic programming over transform sizes: the best plan of size 2^m is
// assembled from the already-found best subplans of its composition parts,
// and the candidates are compared by an arbitrary cost — measured runtime in
// the package and in Figure 1; a performance model here as well (which makes
// the search measurement-free, the paper's concluding suggestion).
//
// As the paper notes, DP is a heuristic: it assumes the best subplan is
// best in every calling context (stride/cache context breaks this in
// general), which is exactly why Figure 1's "best" is a lower envelope
// found by search, not a proven optimum.
//
// The number of compositions of m is 2^(m-1); with runtime costs this is
// prohibitive for large m, so candidates can be capped by `max_parts`
// (the package's practice — binary and ternary splits carry nearly all of
// the benefit since deeper splits are reachable through recursion).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/plan.hpp"
#include "model/cost_cache.hpp"

namespace whtlab::search {

using CostFn = std::function<double(const core::Plan&)>;

struct DpOptions {
  int max_leaf = core::kMaxUnrolled;
  /// Cap on composition parts per split; 0 = all 2^(m-1) compositions.
  int max_parts = 0;
  /// Restrict DP to sizes >= this as split parts (always 1).
  int min_part = 1;
  /// Whole-candidate memo.  Within one dp_search every candidate tree is
  /// distinct (each composition assembles different children), so this only
  /// pays when the caller shares one cache across searches — repeated
  /// plan() calls over overlapping sizes re-surface the same winners-by-
  /// size candidates.  DP's *within-search* speedup comes from the subtree
  /// memo the same cache feeds inside model::CombinedModel.  The caller
  /// must pair one cache with one cost function.
  model::CostCache* cost_cache = nullptr;
};

struct DpResult {
  core::Plan plan;              ///< best plan found for size 2^n
  double cost = 0.0;            ///< its cost
  std::vector<core::Plan> best_by_size;   ///< index m = best plan of size 2^m
  std::vector<double> cost_by_size;       ///< index m = its cost
  std::uint64_t evaluations = 0;          ///< cost-function invocations
};

/// Runs the DP search for WHT(2^n) with the given cost function.
DpResult dp_search(int n, const CostFn& cost, const DpOptions& options = {});

}  // namespace whtlab::search
