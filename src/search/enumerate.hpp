// Exhaustive plan enumeration (small sizes).
//
// Materializes every plan of size 2^n — a(n) of them, growing like ~7^n —
// for exhaustive search and for validating the counting recurrence and the
// samplers.  Practical for n up to ~8.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/plan.hpp"

namespace whtlab::search {

/// All plans of size 2^n with leaves up to 2^max_leaf, in a deterministic
/// order (leaf first, then compositions in mask order, children in
/// lexicographic product order).
std::vector<core::Plan> enumerate_plans(int n,
                                        int max_leaf = core::kMaxUnrolled);

/// Streaming enumeration; stops early when fn returns false.  Returns the
/// number of plans visited.
std::uint64_t for_each_plan(int n, int max_leaf,
                            const std::function<bool(const core::Plan&)>& fn);

}  // namespace whtlab::search
