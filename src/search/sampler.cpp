#include "search/sampler.hpp"

#include <stdexcept>

#include "util/compositions.hpp"

namespace whtlab::search {

RecursiveSplitSampler::RecursiveSplitSampler(int max_leaf)
    : max_leaf_(max_leaf) {
  if (max_leaf < 1 || max_leaf > core::kMaxUnrolled) {
    throw std::invalid_argument("RecursiveSplitSampler: bad max_leaf");
  }
}

core::Plan RecursiveSplitSampler::sample(int n, util::Rng& rng) const {
  if (n < 1 || n > 40) {
    throw std::invalid_argument("RecursiveSplitSampler: bad n");
  }
  if (n == 1) return core::Plan::small(1);

  const bool leaf_ok = n <= max_leaf_;
  // Options: [leaf?] + compositions with t >= 2 (masks 1 .. 2^(n-1)-1).
  const std::uint64_t split_options = (std::uint64_t{1} << (n - 1)) - 1;
  const std::uint64_t total = split_options + (leaf_ok ? 1 : 0);
  std::uint64_t pick = rng.below(total);
  if (leaf_ok) {
    if (pick == 0) return core::Plan::small(n);
    --pick;
  }
  // pick in [0, split_options): mask pick+1 is a composition with >= 2 parts.
  const auto parts = util::composition_from_mask(n, pick + 1);
  std::vector<core::Plan> children;
  children.reserve(parts.size());
  for (int part : parts) children.push_back(sample(part, rng));
  return core::Plan::split(std::move(children));
}

UniformPlanSampler::UniformPlanSampler(const PlanSpace& space)
    : space_(space) {}

void UniformPlanSampler::sample_sequence(int m, util::Rng& rng,
                                         std::vector<int>& parts) const {
  // Sequences (t >= 1) of total m, weighted by the product of completion
  // counts: s(m) = a(m) + sum_{k<m} a(k) * s(m-k).  Selecting each segment
  // with probability proportional to its weight yields a product-weighted
  // sequence exactly.
  while (true) {
    util::BigInt r = util::BigInt::random_below(space_.sequence_count(m), rng);
    // Terminal single part m, weight a(m).
    if (r < space_.count(m)) {
      parts.push_back(m);
      return;
    }
    r -= space_.count(m);
    bool advanced = false;
    for (int k = 1; k < m; ++k) {
      const util::BigInt weight =
          space_.count(k) * space_.sequence_count(m - k);
      if (r < weight) {
        parts.push_back(k);
        m -= k;
        advanced = true;
        break;
      }
      r -= weight;
    }
    if (!advanced) {
      throw std::logic_error("UniformPlanSampler: weight bookkeeping broke");
    }
  }
}

core::Plan UniformPlanSampler::sample(int n, util::Rng& rng) const {
  if (n < 1 || n > space_.max_n()) {
    throw std::invalid_argument("UniformPlanSampler: bad n");
  }
  const bool leaf_ok = n <= space_.max_leaf();
  util::BigInt r = util::BigInt::random_below(space_.count(n), rng);
  if (leaf_ok) {
    if (r < util::BigInt(1)) return core::Plan::small(n);
    r -= util::BigInt(1);
  }
  // Remaining mass: compositions with t >= 2 parts, weight prod a(ni).
  // First part k has weight a(k) * s(n-k); the rest is a weighted sequence.
  std::vector<int> parts;
  for (int k = 1; k < n; ++k) {
    const util::BigInt weight = space_.count(k) * space_.sequence_count(n - k);
    if (r < weight) {
      parts.push_back(k);
      sample_sequence(n - k, rng, parts);
      break;
    }
    r -= weight;
  }
  if (parts.empty()) {
    throw std::logic_error("UniformPlanSampler: weight bookkeeping broke");
  }
  std::vector<core::Plan> children;
  children.reserve(parts.size());
  for (int part : parts) children.push_back(sample(part, rng));
  return core::Plan::split(std::move(children));
}

}  // namespace whtlab::search
