// Random plan generation.
//
// Two sampling models over the WHT algorithm space:
//
// * RecursiveSplitSampler — the paper's model (Section 3: "each time
//   Equation 1 is applied we assume every composition n = n1+...+nt is
//   equally likely to occur", after TCS 352).  At a node of size m every
//   admissible way of proceeding is equally likely: the leaf (when
//   m <= max_leaf) and each of the 2^(m-1) - 1 compositions with t >= 2
//   parts.  Children recurse independently.  Figures 4-11 use this sampler.
//
// * UniformPlanSampler — exactly uniform over the *whole* plan space
//   (every complete plan has probability 1/a(n)).  The recursive-split model
//   is not plan-uniform (shallow plans are over-weighted relative to their
//   count); the uniform sampler weights every choice by the exact BigInt
//   count of completions, giving the complementary population.  Provided as
//   an extension and chi-square tested against enumeration.
#pragma once

#include "core/plan.hpp"
#include "search/space.hpp"
#include "util/rng.hpp"

namespace whtlab::search {

class RecursiveSplitSampler {
 public:
  explicit RecursiveSplitSampler(int max_leaf = core::kMaxUnrolled);

  /// Draws one plan for WHT(2^n); n <= 40.
  core::Plan sample(int n, util::Rng& rng) const;

 private:
  int max_leaf_;
};

class UniformPlanSampler {
 public:
  /// `space` must cover the sizes that will be sampled.
  explicit UniformPlanSampler(const PlanSpace& space);

  /// Draws one plan uniformly among all space.count(n) plans.
  core::Plan sample(int n, util::Rng& rng) const;

 private:
  /// Appends the parts of a random weighted sequence (t >= 1) summing to m.
  void sample_sequence(int m, util::Rng& rng, std::vector<int>& parts) const;

  const PlanSpace& space_;
};

}  // namespace whtlab::search
