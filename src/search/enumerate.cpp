#include "search/enumerate.hpp"

#include <stdexcept>

#include "util/compositions.hpp"

namespace whtlab::search {

namespace {

const std::vector<core::Plan>& build(
    int n, int max_leaf, std::vector<std::vector<core::Plan>>& memo) {
  auto& cached = memo[static_cast<std::size_t>(n)];
  if (!cached.empty() || n == 0) return cached;
  std::vector<core::Plan> out;
  if (n <= max_leaf) out.push_back(core::Plan::small(n));
  if (n >= 2) {
    util::for_each_composition(n, 2, [&](const std::vector<int>& parts) {
      // Cartesian product of children alternatives, odometer-style.
      std::vector<const std::vector<core::Plan>*> pools;
      pools.reserve(parts.size());
      for (int part : parts) pools.push_back(&build(part, max_leaf, memo));
      std::vector<std::size_t> index(parts.size(), 0);
      for (;;) {
        std::vector<core::Plan> children;
        children.reserve(parts.size());
        for (std::size_t i = 0; i < parts.size(); ++i) {
          children.push_back((*pools[i])[index[i]]);
        }
        out.push_back(core::Plan::split(std::move(children)));
        std::size_t pos = parts.size();
        while (pos > 0) {
          --pos;
          if (++index[pos] < pools[pos]->size()) break;
          index[pos] = 0;
          if (pos == 0) goto next_composition;
        }
      }
    next_composition:;
    });
  }
  cached = std::move(out);
  return cached;
}

}  // namespace

std::vector<core::Plan> enumerate_plans(int n, int max_leaf) {
  if (n < 1 || n > 12) throw std::invalid_argument("enumerate_plans: bad n");
  if (max_leaf < 1 || max_leaf > core::kMaxUnrolled) {
    throw std::invalid_argument("enumerate_plans: bad max_leaf");
  }
  std::vector<std::vector<core::Plan>> memo(static_cast<std::size_t>(n) + 1);
  return build(n, max_leaf, memo);
}

std::uint64_t for_each_plan(int n, int max_leaf,
                            const std::function<bool(const core::Plan&)>& fn) {
  const auto all = enumerate_plans(n, max_leaf);
  std::uint64_t visited = 0;
  for (const auto& plan : all) {
    ++visited;
    if (!fn(plan)) break;
  }
  return visited;
}

}  // namespace whtlab::search
