#include "search/dp_search.hpp"

#include <stdexcept>

#include "util/compositions.hpp"

namespace whtlab::search {

DpResult dp_search(int n, const CostFn& cost, const DpOptions& options) {
  if (n < 1 || n > 40) throw std::invalid_argument("dp_search: bad n");
  if (options.max_leaf < 1 || options.max_leaf > core::kMaxUnrolled) {
    throw std::invalid_argument("dp_search: bad max_leaf");
  }
  if (!cost) throw std::invalid_argument("dp_search: null cost function");

  DpResult result;
  result.best_by_size.resize(static_cast<std::size_t>(n) + 1);
  result.cost_by_size.assign(static_cast<std::size_t>(n) + 1, 0.0);

  for (int m = 1; m <= n; ++m) {
    bool have = false;
    core::Plan best_plan;
    double best_cost = 0.0;
    auto consider = [&](core::Plan candidate) {
      double c;
      if (options.cost_cache != nullptr) {
        const std::string key = candidate.to_string();
        if (const auto hit = options.cost_cache->lookup_plan(key)) {
          c = *hit;
        } else {
          c = cost(candidate);
          ++result.evaluations;
          options.cost_cache->store_plan(key, c);
        }
      } else {
        c = cost(candidate);
        ++result.evaluations;
      }
      if (!have || c < best_cost) {
        best_cost = c;
        best_plan = std::move(candidate);
        have = true;
      }
    };
    if (m <= options.max_leaf) consider(core::Plan::small(m));
    if (m >= 2) {
      util::for_each_composition(m, 2, [&](const std::vector<int>& parts) {
        if (options.max_parts > 0 &&
            static_cast<int>(parts.size()) > options.max_parts) {
          return;
        }
        for (int part : parts) {
          if (part < options.min_part) return;
        }
        std::vector<core::Plan> children;
        children.reserve(parts.size());
        for (int part : parts) {
          children.push_back(result.best_by_size[static_cast<std::size_t>(part)]);
        }
        consider(core::Plan::split(std::move(children)));
      });
    }
    if (!have) throw std::logic_error("dp_search: no candidate at size " +
                                      std::to_string(m));
    result.best_by_size[static_cast<std::size_t>(m)] = best_plan;
    result.cost_by_size[static_cast<std::size_t>(m)] = best_cost;
  }
  result.plan = result.best_by_size[static_cast<std::size_t>(n)];
  result.cost = result.cost_by_size[static_cast<std::size_t>(n)];
  return result;
}

}  // namespace whtlab::search
