// Exhaustive search over the full plan space (small sizes).
//
// Ground truth for validating the DP heuristic: DP assumes the best subplan
// is best in every context, which holds for decomposable model costs but
// not for measured runtime.  Exhaustive search makes the gap measurable
// (see tests and the micro_search ablation).  Practical to ~n = 8
// (a(8) ~ 40k plans with all leaf sizes admissible).
#pragma once

#include <cstdint>
#include <functional>

#include "core/plan.hpp"

namespace whtlab::search {

struct ExhaustiveResult {
  core::Plan best;
  double best_cost = 0.0;
  core::Plan worst;
  double worst_cost = 0.0;
  std::uint64_t evaluated = 0;
};

/// Evaluates every plan of size 2^n; returns the extremes.
ExhaustiveResult exhaustive_search(
    int n, const std::function<double(const core::Plan&)>& cost,
    int max_leaf = core::kMaxUnrolled);

}  // namespace whtlab::search
