#include "search/local_search.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "search/sampler.hpp"
#include "util/compositions.hpp"

namespace whtlab::search {

namespace {

enum class Mutation { kResample, kCollapse, kExpand };

/// Preorder indices of nodes eligible for each mutation kind.
struct Candidates {
  std::vector<int> resample;  ///< any node with size >= 2
  std::vector<int> collapse;  ///< split nodes with size <= max_leaf
  std::vector<int> expand;    ///< leaves with size >= 2
};

void collect(const core::PlanNode& node, int& counter, int max_leaf,
             Candidates& out) {
  const int index = counter++;
  if (node.log2_size >= 2) {
    out.resample.push_back(index);
    if (node.kind == core::NodeKind::kSplit && node.log2_size <= max_leaf) {
      out.collapse.push_back(index);
    }
    if (node.kind == core::NodeKind::kSmall) {
      out.expand.push_back(index);
    }
  }
  for (const auto& child : node.children) {
    collect(*child, counter, max_leaf, out);
  }
}

/// Random composition of n with t >= 2 parts (mask 1 .. 2^(n-1)-1).
std::vector<int> random_split_parts(int n, util::Rng& rng) {
  const std::uint64_t mask =
      1 + rng.below((std::uint64_t{1} << (n - 1)) - 1);
  return util::composition_from_mask(n, mask);
}

/// Rebuilds `node`, replacing the subtree at preorder index `target` with
/// the mutated version.
core::Plan rebuild(const core::PlanNode& node, int& counter, int target,
                   Mutation mutation, const RecursiveSplitSampler& sampler,
                   util::Rng& rng) {
  const int index = counter++;
  if (index == target) {
    // (Indices after the target no longer matter: target was consumed and
    // counter only grows, so no later node can match it.)
    switch (mutation) {
      case Mutation::kResample:
        return sampler.sample(node.log2_size, rng);
      case Mutation::kCollapse:
        return core::Plan::small(node.log2_size);
      case Mutation::kExpand: {
        std::vector<core::Plan> children;
        for (int part : random_split_parts(node.log2_size, rng)) {
          children.push_back(sampler.sample(part, rng));
        }
        return core::Plan::split(std::move(children));
      }
    }
    throw std::logic_error("mutate_plan: unknown mutation");
  }
  if (node.kind == core::NodeKind::kSmall) {
    return core::Plan::small(node.log2_size);
  }
  std::vector<core::Plan> children;
  children.reserve(node.children.size());
  for (const auto& child : node.children) {
    children.push_back(rebuild(*child, counter, target, mutation, sampler, rng));
  }
  return core::Plan::split(std::move(children));
}

}  // namespace

core::Plan mutate_plan(const core::Plan& plan, int max_leaf, util::Rng& rng) {
  if (!plan.valid()) throw std::invalid_argument("mutate_plan: invalid plan");
  const RecursiveSplitSampler sampler(max_leaf);

  Candidates candidates;
  int counter = 0;
  collect(plan.root(), counter, max_leaf, candidates);
  if (candidates.resample.empty()) {
    // Only unit nodes (n == 1): the plan is small[1]; nothing to vary.
    return plan;
  }

  // Choose uniformly among the applicable mutation kinds.
  std::vector<std::pair<Mutation, const std::vector<int>*>> kinds;
  kinds.emplace_back(Mutation::kResample, &candidates.resample);
  if (!candidates.collapse.empty()) {
    kinds.emplace_back(Mutation::kCollapse, &candidates.collapse);
  }
  if (!candidates.expand.empty()) {
    kinds.emplace_back(Mutation::kExpand, &candidates.expand);
  }
  const auto& [mutation, pool] = kinds[static_cast<std::size_t>(
      rng.below(static_cast<std::uint64_t>(kinds.size())))];
  const int target = (*pool)[static_cast<std::size_t>(
      rng.below(static_cast<std::uint64_t>(pool->size())))];

  counter = 0;
  return rebuild(plan.root(), counter, target, mutation, sampler, rng);
}

AnnealResult anneal_search(int n,
                           const std::function<double(const core::Plan&)>& cost,
                           util::Rng& rng, const AnnealOptions& options) {
  if (!cost) throw std::invalid_argument("anneal_search: null cost");
  if (options.iterations < 1) {
    throw std::invalid_argument("anneal_search: iterations >= 1 required");
  }
  if (options.max_leaf < 1 || options.max_leaf > core::kMaxUnrolled) {
    throw std::invalid_argument("anneal_search: bad max_leaf");
  }
  if (options.accept_cost && options.accept_filter_slack < 1.0) {
    throw std::invalid_argument(
        "anneal_search: accept_filter_slack must be >= 1");
  }

  const RecursiveSplitSampler sampler(options.max_leaf);

  AnnealResult result;
  const auto priced = [&cost, &options, &result](const core::Plan& plan) {
    if (options.cost_cache != nullptr) {
      const std::string key = plan.to_string();
      if (const auto hit = options.cost_cache->lookup_plan(key)) return *hit;
      const double value = cost(plan);
      ++result.evaluations;
      options.cost_cache->store_plan(key, value);
      return value;
    }
    ++result.evaluations;
    return cost(plan);
  };

  // Measured-acceptance mode: the model cost (`priced`) screens proposals,
  // accept_cost (measured cycles) decides.  Without accept_cost both
  // metrics are the same value and the loop is the classic model-only walk.
  const bool measured_mode = static_cast<bool>(options.accept_cost);
  const auto accept_priced = [&options, &result](const core::Plan& plan,
                                                 double model_cost) {
    if (!options.accept_cost) return model_cost;
    ++result.measured;
    return options.accept_cost(plan);
  };

  core::Plan current = sampler.sample(n, rng);
  double current_model = priced(current);
  double current_cost = accept_priced(current, current_model);
  result.best = current;
  result.best_cost = current_cost;

  double temperature = options.initial_temperature;
  for (int step = 0; step < options.iterations; ++step) {
    core::Plan candidate = mutate_plan(current, options.max_leaf, rng);
    const double candidate_model = priced(candidate);
    if (measured_mode && current_model > 0.0 &&
        candidate_model > options.accept_filter_slack * current_model) {
      // The model is confident this proposal is a regression: skip the
      // expensive measurement entirely (Section 4's pruning idea).
      ++result.filtered;
      temperature *= options.cooling;
      continue;
    }
    const double candidate_cost = accept_priced(candidate, candidate_model);

    bool accept = candidate_cost < current_cost;
    if (!accept && temperature > 0.0 && current_cost > 0.0) {
      const double relative_regression =
          (candidate_cost - current_cost) / current_cost;
      accept = rng.uniform() < std::exp(-relative_regression / temperature);
    }
    if (accept) {
      current = std::move(candidate);
      current_model = candidate_model;
      current_cost = candidate_cost;
      ++result.accepted;
      if (current_cost < result.best_cost) {
        result.best = current;
        result.best_cost = current_cost;
      }
    }
    temperature *= options.cooling;
  }
  return result;
}

}  // namespace whtlab::search
