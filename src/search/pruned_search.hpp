// Model-pruned random search — the paper's payoff.
//
// Section 4 / Conclusion: because the models correlate with runtime, a
// search can *discard* candidates with large model values before ever
// measuring them.  This module implements the experiment: draw N random
// plans, rank them by a model computable from the description alone, measure
// only the best `keep_fraction`, and report how close the result comes to
// measuring everything — along with the measurement budget saved.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/plan.hpp"
#include "model/cost_cache.hpp"
#include "perf/measure.hpp"
#include "util/rng.hpp"

namespace whtlab::search {

using ModelFn = std::function<double(const core::Plan&)>;

struct PrunedSearchOptions {
  int candidates = 200;        ///< random plans drawn
  double keep_fraction = 0.1;  ///< fraction (by model rank) actually measured
  int max_leaf = core::kMaxUnrolled;
  perf::MeasureOptions measure{};
  /// Whole-candidate memo for the *model* ranking pass (random sampling
  /// draws duplicate shapes; measurements are never cached).  The caller
  /// must pair one cache with one model function.
  model::CostCache* cost_cache = nullptr;
  /// Optional override for candidate timing; unset = measure_plan(p, measure)
  /// .cycles().  Lets callers time through another execution engine (the
  /// api::Planner times candidates on the backend the Transform will own).
  std::function<double(const core::Plan&)> measure_fn;
};

struct PrunedSearchResult {
  core::Plan best_plan;          ///< best among the measured subset
  double best_cycles = 0.0;
  std::uint64_t measured = 0;    ///< plans actually timed
  std::uint64_t pruned = 0;      ///< plans discarded by the model
  double model_threshold = 0.0;  ///< largest model value that was kept

  /// Filled only when `audit` is set: best over the *whole* candidate set,
  /// for quantifying what pruning may have lost.
  double audit_best_cycles = 0.0;
  bool audited = false;
};

/// Runs the pruned search for WHT(2^n).  With audit=true every candidate is
/// measured as ground truth (expensive; for experiments/tests).
PrunedSearchResult model_pruned_search(int n, const ModelFn& model,
                                       util::Rng& rng,
                                       const PrunedSearchOptions& options = {},
                                       bool audit = false);

}  // namespace whtlab::search
