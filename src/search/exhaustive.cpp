#include "search/exhaustive.hpp"

#include <stdexcept>

#include "search/enumerate.hpp"

namespace whtlab::search {

ExhaustiveResult exhaustive_search(
    int n, const std::function<double(const core::Plan&)>& cost,
    int max_leaf) {
  if (!cost) throw std::invalid_argument("exhaustive_search: null cost");
  ExhaustiveResult result;
  for_each_plan(n, max_leaf, [&result, &cost](const core::Plan& plan) {
    const double c = cost(plan);
    if (result.evaluated == 0 || c < result.best_cost) {
      result.best_cost = c;
      result.best = plan;
    }
    if (result.evaluated == 0 || c > result.worst_cost) {
      result.worst_cost = c;
      result.worst = plan;
    }
    ++result.evaluated;
    return true;
  });
  return result;
}

}  // namespace whtlab::search
