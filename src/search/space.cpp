#include "search/space.hpp"

#include <stdexcept>

namespace whtlab::search {

PlanSpace::PlanSpace(int max_n, int max_leaf)
    : max_n_(max_n), max_leaf_(max_leaf) {
  if (max_n < 1 || max_n > 512) throw std::invalid_argument("PlanSpace: bad max_n");
  if (max_leaf < 1 || max_leaf > core::kMaxUnrolled) {
    throw std::invalid_argument("PlanSpace: bad max_leaf");
  }
  a_.resize(static_cast<std::size_t>(max_n) + 1);
  s_.resize(static_cast<std::size_t>(max_n) + 1);
  s_[0] = util::BigInt(1);
  for (int m = 1; m <= max_n; ++m) {
    const auto mi = static_cast<std::size_t>(m);
    util::BigInt leaf(m <= max_leaf ? 1 : 0);
    util::BigInt total = leaf;
    for (int k = 1; k < m; ++k) {
      total += a_[static_cast<std::size_t>(k)] *
               s_[static_cast<std::size_t>(m - k)];
    }
    a_[mi] = total;
    // s(m) counts sequences with t >= 1: the single-part sequence (a(m))
    // plus all with >= 2 parts (a(m) - leaf(m)).
    s_[mi] = a_[mi] + a_[mi] - leaf;
  }
}

const util::BigInt& PlanSpace::count(int n) const {
  if (n < 1 || n > max_n_) throw std::out_of_range("PlanSpace::count");
  return a_[static_cast<std::size_t>(n)];
}

const util::BigInt& PlanSpace::sequence_count(int n) const {
  if (n < 0 || n > max_n_) throw std::out_of_range("PlanSpace::sequence_count");
  return s_[static_cast<std::size_t>(n)];
}

double PlanSpace::growth_ratio(int n) const {
  if (n < 1 || n + 1 > max_n_) throw std::out_of_range("PlanSpace::growth_ratio");
  return count(n + 1).to_double() / count(n).to_double();
}

}  // namespace whtlab::search
