// Local search over the plan space (extension).
//
// DP assumes context-free optimal substructure; the paper notes that is
// only a heuristic.  Local search attacks the same space from the other
// side: mutate complete plans in place and keep improvements.  Three
// mutation kinds, chosen uniformly among those applicable:
//
//   * resample — replace a random subtree (size >= 2) with a fresh
//     recursive-split-uniform sample of the same size (ergodic: the root
//     can be resampled, so any plan is reachable);
//   * collapse — replace a random split of size <= max_leaf with the
//     unrolled codelet (the move toward the big-base-case optima the
//     autotuner favours);
//   * expand — split a random non-unit leaf into a random composition.
//
// Useful with either a model cost (free evaluations, the paper's pruning
// theme) or measured runtime (expensive; combine with model pre-screening).
#pragma once

#include <cstdint>
#include <functional>

#include "core/plan.hpp"
#include "model/cost_cache.hpp"
#include "util/rng.hpp"

namespace whtlab::search {

/// Applies one random mutation (resample / collapse / expand, as above).
/// The result is always a valid plan of the same total size.
core::Plan mutate_plan(const core::Plan& plan, int max_leaf, util::Rng& rng);

struct AnnealOptions {
  int iterations = 300;
  double initial_temperature = 0.10;  ///< relative-cost units (see accept rule)
  double cooling = 0.99;              ///< temperature *= cooling per step
  int max_leaf = core::kMaxUnrolled;
  /// Whole-candidate memo: annealing's mutate/reject cycles revisit plans
  /// constantly (a rejected move is often re-proposed a few steps later);
  /// when set, repeats are priced from the cache instead of re-evaluated.
  /// The caller must pair one cache with one cost function.
  model::CostCache* cost_cache = nullptr;

  /// Measured-acceptance mode (the paper's model-vs-measure split applied
  /// inside one search): when set, THIS cost — typically live measured
  /// cycles — drives the Metropolis accept/reject and the best-plan
  /// tracking, while the cheap model cost passed to anneal_search demotes
  /// to a proposal filter: a candidate whose model cost exceeds
  /// accept_filter_slack x the current plan's model cost is rejected
  /// without ever being measured (AnnealResult::filtered counts these).
  /// Unset (default): the model cost is the acceptance metric, exactly the
  /// measurement-free behavior.
  std::function<double(const core::Plan&)> accept_cost;

  /// Model-cost headroom a proposal may have over the current plan and
  /// still earn a measurement (>= 1; only meaningful with accept_cost).
  double accept_filter_slack = 1.5;
};

struct AnnealResult {
  core::Plan best;
  double best_cost = 0.0;  ///< in accept_cost units when that mode is on
  std::uint64_t evaluations = 0;
  std::uint64_t accepted = 0;  ///< accepted moves (including improvements)
  std::uint64_t measured = 0;  ///< accept_cost evaluations (measured mode)
  std::uint64_t filtered = 0;  ///< proposals the model filter rejected unmeasured
};

/// Simulated annealing from a random start.  `cost` must be positive.
/// Accept rule: always accept improvements; accept a regression with
/// probability exp(-(new-cur)/(T*cur)) — relative cost, so the schedule is
/// unit-free.
AnnealResult anneal_search(int n, const std::function<double(const core::Plan&)>& cost,
                           util::Rng& rng, const AnnealOptions& options = {});

}  // namespace whtlab::search
