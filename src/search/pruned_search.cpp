#include "search/pruned_search.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "search/sampler.hpp"

namespace whtlab::search {

PrunedSearchResult model_pruned_search(int n, const ModelFn& model,
                                       util::Rng& rng,
                                       const PrunedSearchOptions& options,
                                       bool audit) {
  if (options.candidates < 1) {
    throw std::invalid_argument("pruned search: need candidates");
  }
  if (options.keep_fraction <= 0.0 || options.keep_fraction > 1.0) {
    throw std::invalid_argument("pruned search: keep_fraction in (0,1]");
  }
  if (!model) throw std::invalid_argument("pruned search: null model");

  std::function<double(const core::Plan&)> timed_cycles = options.measure_fn;
  if (!timed_cycles) {
    timed_cycles = [&options](const core::Plan& plan) {
      return perf::measure_plan(plan, options.measure).cycles();
    };
  }

  RecursiveSplitSampler sampler(options.max_leaf);
  std::vector<core::Plan> plans;
  std::vector<double> scores;
  plans.reserve(static_cast<std::size_t>(options.candidates));
  scores.reserve(static_cast<std::size_t>(options.candidates));
  for (int i = 0; i < options.candidates; ++i) {
    plans.push_back(sampler.sample(n, rng));
    if (options.cost_cache != nullptr) {
      const std::string key = plans.back().to_string();
      if (const auto hit = options.cost_cache->lookup_plan(key)) {
        scores.push_back(*hit);
      } else {
        scores.push_back(model(plans.back()));
        options.cost_cache->store_plan(key, scores.back());
      }
    } else {
      scores.push_back(model(plans.back()));
    }
  }

  std::vector<std::size_t> order(plans.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return scores[a] < scores[b];
  });

  const auto keep = std::max<std::size_t>(
      1, static_cast<std::size_t>(static_cast<double>(plans.size()) *
                                  options.keep_fraction));

  PrunedSearchResult result;
  result.measured = keep;
  result.pruned = plans.size() - keep;
  result.model_threshold = scores[order[keep - 1]];

  bool have = false;
  for (std::size_t rank = 0; rank < keep; ++rank) {
    const auto& plan = plans[order[rank]];
    const double cycles = timed_cycles(plan);
    if (!have || cycles < result.best_cycles) {
      result.best_cycles = cycles;
      result.best_plan = plan;
      have = true;
    }
  }

  if (audit) {
    result.audited = true;
    result.audit_best_cycles = result.best_cycles;
    for (std::size_t rank = keep; rank < plans.size(); ++rank) {
      const auto& plan = plans[order[rank]];
      const double cycles = timed_cycles(plan);
      result.audit_best_cycles = std::min(result.audit_best_cycles, cycles);
    }
  }
  return result;
}

}  // namespace whtlab::search
