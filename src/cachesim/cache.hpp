// Set-associative LRU cache model.
//
// The paper measured L1 data-cache misses with PAPI on an Opteron (64 KB
// 2-way L1, 1 MB 16-way L2, 64-byte lines).  whtlab substitutes a
// trace-driven simulator: the executor's exact reference stream (see
// core/instrumented.hpp) is replayed through this model, which is the
// idealized version of what the hardware counter reports (no OS noise, no
// prefetcher).  Configurable size / line size / associativity; associativity
// 1 gives the direct-mapped cache assumed by the analytic model of
// Furis–Hitczenko–Johnson (AofA'05), enabling an exact cross-check
// (model/cache_model.hpp).
//
// Replacement is true LRU per set.  Writes allocate (write-allocate,
// write-back) — matching the Opteron's L1 behaviour; a store to an absent
// line counts as a miss.
#pragma once

#include <cstdint>
#include <vector>

namespace whtlab::cachesim {

struct CacheConfig {
  std::uint64_t size_bytes = 64 * 1024;
  std::uint32_t line_bytes = 64;
  std::uint32_t associativity = 2;

  std::uint64_t num_lines() const { return size_bytes / line_bytes; }
  std::uint64_t num_sets() const { return num_lines() / associativity; }

  /// Throws std::invalid_argument unless the geometry is indexable: the
  /// line size and the number of sets must be powers of two (bit-selection
  /// set mapping), the size an exact multiple of line * associativity.
  /// Associativity itself may be any positive count — modern L1s are often
  /// 12-way (48 KB), which is not a power of two.
  void validate() const;

  /// Opteron Model 224 L1D: 64 KB, 2-way, 64 B lines (the paper's machine).
  static CacheConfig opteron_l1() { return {64 * 1024, 64, 2}; }
  /// Opteron Model 224 L2: 1 MB, 16-way, 64 B lines.
  static CacheConfig opteron_l2() { return {1024 * 1024, 64, 16}; }
  /// This build machine's L1D geometry (48 KB, 12-way, 64 B — see
  /// DESIGN.md; used as the PAPI stand-in when cycles are measured here).
  static CacheConfig host_l1() { return {48 * 1024, 64, 12}; }
  /// This build machine's L2 (2 MB, 16-way, 64 B).
  static CacheConfig host_l2() { return {2 * 1024 * 1024, 64, 16}; }
  /// Direct-mapped cache of `lines` lines of `line_bytes` bytes — the
  /// geometry assumed by the analytic cache-miss model.
  static CacheConfig direct_mapped(std::uint64_t lines,
                                   std::uint32_t line_bytes) {
    return {lines * line_bytes, line_bytes, 1};
  }
};

struct CacheStats {
  std::uint64_t accesses = 0;
  std::uint64_t misses = 0;

  std::uint64_t hits() const { return accesses - misses; }
  double miss_rate() const {
    return accesses == 0 ? 0.0 : static_cast<double>(misses) /
                                     static_cast<double>(accesses);
  }
};

class Cache {
 public:
  explicit Cache(const CacheConfig& config);

  /// One access to byte address `addr`; returns true on hit and updates LRU
  /// state and statistics.
  bool access(std::uint64_t addr);

  /// Invalidate all lines; statistics are kept.
  void flush();

  /// Reset statistics; contents are kept.
  void reset_stats() { stats_ = {}; }

  const CacheStats& stats() const { return stats_; }
  const CacheConfig& config() const { return config_; }

  /// True if the line containing addr is currently resident (no side effects).
  bool contains(std::uint64_t addr) const;

 private:
  CacheConfig config_;
  std::uint64_t set_mask_;
  std::uint32_t line_shift_;
  std::uint32_t assoc_;
  // ways_[set*assoc + i] = line number, i ordered most- to least-recent.
  std::vector<std::uint64_t> ways_;
  CacheStats stats_;

  static constexpr std::uint64_t kInvalid = ~std::uint64_t{0};
};

}  // namespace whtlab::cachesim
