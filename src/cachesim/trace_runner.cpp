#include "cachesim/trace_runner.hpp"

namespace whtlab::cachesim {

namespace {
constexpr std::uint64_t kElementBytes = sizeof(double);
}  // namespace

TraceResult simulate_plan(const core::Plan& plan, const CacheConfig& config) {
  Cache cache(config);
  auto sink = [&cache](std::uint64_t index, bool /*is_store*/) {
    cache.access(index * kElementBytes);
  };
  core::reference_stream(plan, sink);
  return {cache.stats().accesses, cache.stats().misses, 0};
}

TraceResult simulate_plan(const core::Plan& plan, const CacheConfig& l1,
                          const CacheConfig& l2) {
  Hierarchy hierarchy(l1, l2);
  auto sink = [&hierarchy](std::uint64_t index, bool /*is_store*/) {
    hierarchy.access(index * kElementBytes);
  };
  core::reference_stream(plan, sink);
  return {hierarchy.l1_stats().accesses, hierarchy.l1_stats().misses,
          hierarchy.l2_stats().misses};
}

TraceResult simulate_plan_warm(const core::Plan& plan, Cache& cache) {
  const std::uint64_t accesses_before = cache.stats().accesses;
  const std::uint64_t misses_before = cache.stats().misses;
  auto sink = [&cache](std::uint64_t index, bool /*is_store*/) {
    cache.access(index * kElementBytes);
  };
  core::reference_stream(plan, sink);
  return {cache.stats().accesses - accesses_before,
          cache.stats().misses - misses_before, 0};
}

}  // namespace whtlab::cachesim
