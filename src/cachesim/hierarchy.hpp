// Two-level cache hierarchy (L1 + L2), inclusive, LRU at both levels.
//
// L2 is consulted only on an L1 miss, mirroring how PAPI's L2 miss counter
// behaved on the paper's Opteron.  The hierarchy reports per-level stats so
// the experiment harness can tabulate both L1 and L2 misses.
#pragma once

#include "cachesim/cache.hpp"

namespace whtlab::cachesim {

class Hierarchy {
 public:
  Hierarchy(const CacheConfig& l1, const CacheConfig& l2)
      : l1_(l1), l2_(l2) {}

  /// Opteron Model 224: 64 KB 2-way L1, 1 MB 16-way L2.
  static Hierarchy opteron() {
    return {CacheConfig::opteron_l1(), CacheConfig::opteron_l2()};
  }

  /// Returns the level that served the access: 1 (L1 hit), 2 (L2 hit) or
  /// 3 (memory).
  int access(std::uint64_t addr) {
    if (l1_.access(addr)) return 1;
    if (l2_.access(addr)) return 2;
    return 3;
  }

  const CacheStats& l1_stats() const { return l1_.stats(); }
  const CacheStats& l2_stats() const { return l2_.stats(); }

  void flush() {
    l1_.flush();
    l2_.flush();
  }
  void reset_stats() {
    l1_.reset_stats();
    l2_.reset_stats();
  }

 private:
  Cache l1_;
  Cache l2_;
};

}  // namespace whtlab::cachesim
