// Replaying plan executions through the cache model.
//
// Bridges core::reference_stream (element-granularity load/store sequence of
// the plan interpreter) and the byte-addressed cache model.  The data vector
// is assumed to start at a line-aligned base address — which the measurement
// harness guarantees via util::AlignedBuffer — so element i lives at byte
// 8*i.
#pragma once

#include <cstdint>

#include "cachesim/cache.hpp"
#include "cachesim/hierarchy.hpp"
#include "core/instrumented.hpp"
#include "core/plan.hpp"

namespace whtlab::cachesim {

struct TraceResult {
  std::uint64_t accesses = 0;
  std::uint64_t l1_misses = 0;
  std::uint64_t l2_misses = 0;  ///< 0 when simulating a single level
};

/// Replays one cold-cache execution of `plan` through a single cache level.
TraceResult simulate_plan(const core::Plan& plan, const CacheConfig& config);

/// Replays one cold-cache execution through an L1+L2 hierarchy.
TraceResult simulate_plan(const core::Plan& plan, const CacheConfig& l1,
                          const CacheConfig& l2);

/// Replays `plan` through an existing cache without flushing it first —
/// used to study warm-cache behaviour across repeated transforms.
TraceResult simulate_plan_warm(const core::Plan& plan, Cache& cache);

}  // namespace whtlab::cachesim
