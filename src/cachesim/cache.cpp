#include "cachesim/cache.hpp"

#include <bit>
#include <stdexcept>

namespace whtlab::cachesim {

void CacheConfig::validate() const {
  const auto pow2 = [](std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; };
  if (!pow2(line_bytes)) {
    throw std::invalid_argument("cache line size must be a power of two");
  }
  if (line_bytes > size_bytes) {
    throw std::invalid_argument("line larger than cache");
  }
  if (associativity == 0 || associativity > num_lines()) {
    throw std::invalid_argument("bad associativity");
  }
  if (size_bytes % (static_cast<std::uint64_t>(line_bytes) * associativity) != 0) {
    throw std::invalid_argument("size not a multiple of line * associativity");
  }
  if (!pow2(num_sets())) {
    throw std::invalid_argument("number of sets must be a power of two");
  }
}

Cache::Cache(const CacheConfig& config) : config_(config) {
  config_.validate();
  const std::uint64_t sets = config_.num_sets();
  set_mask_ = sets - 1;
  line_shift_ = static_cast<std::uint32_t>(std::countr_zero(
      static_cast<std::uint64_t>(config_.line_bytes)));
  assoc_ = config_.associativity;
  ways_.assign(sets * assoc_, kInvalid);
}

bool Cache::access(std::uint64_t addr) {
  ++stats_.accesses;
  const std::uint64_t line = addr >> line_shift_;
  const std::uint64_t set = line & set_mask_;
  std::uint64_t* base = ways_.data() + set * assoc_;

  // Hit: rotate the matching way to the MRU slot.
  for (std::uint32_t i = 0; i < assoc_; ++i) {
    if (base[i] == line) {
      for (std::uint32_t j = i; j > 0; --j) base[j] = base[j - 1];
      base[0] = line;
      return true;
    }
  }
  // Miss: evict LRU (last way), shift, insert as MRU.
  ++stats_.misses;
  for (std::uint32_t j = assoc_ - 1; j > 0; --j) base[j] = base[j - 1];
  base[0] = line;
  return false;
}

bool Cache::contains(std::uint64_t addr) const {
  const std::uint64_t line = addr >> line_shift_;
  const std::uint64_t set = line & set_mask_;
  const std::uint64_t* base = ways_.data() + set * assoc_;
  for (std::uint32_t i = 0; i < assoc_; ++i) {
    if (base[i] == line) return true;
  }
  return false;
}

void Cache::flush() {
  for (auto& way : ways_) way = kInvalid;
}

}  // namespace whtlab::cachesim
