// Analytic direct-mapped miss counts — the closed-form replacement for the
// trace walk (after Furis–Hitczenko–Johnson, AofA 2005).
//
// model/cache_model.hpp used to obtain the miss count of a plan by replaying
// the interpreter's full O(n·2^n) access sequence against a tag-per-set
// table.  That is exact but priced autotuning out of the large sizes the
// paper targets: one kEstimate search at n = 22 walks ~10^8 simulated
// accesses per candidate.  This module computes the same number in O(tree)
// from the loop-nest description alone, exploiting the regularity of
// Equation 1's nest in a power-of-two direct-mapped cache:
//
//   * An invocation of a subtree of size 2^m at accumulated stride 2^t
//     touches the lattice {base + i·2^t : i < 2^m}, whose span is 2^{m+t}.
//     When the span fits the cache (m + t <= c), every touched line maps to
//     a distinct set: the invocation is conflict-free, missing exactly once
//     per line it enters without — compulsory behaviour.
//
//   * When the span exceeds the cache, a split node's children execute as
//     full passes over the region.  Each pass re-walks the region from its
//     start; because the region is larger than the cache, the pass evicts
//     its own head before reaching its tail, and what the *previous* pass
//     left resident is exactly the lines of the region's final cache-sized
//     suffix — lines the next pass only reaches after wrapping the set
//     space.  Hence every child invocation enters effectively cold, except
//     consecutive invocations whose offsets agree above the line bit, which
//     touch the *identical* line set and hit it while it is still resident.
//     Counting those sharing groups is pure bit arithmetic on (size, stride,
//     geometry); everything else is a recursion over the children.
//
//   * A leaf whose span exceeds the cache maps 2^{k+t-c} >= 2 lines to every
//     set it touches, so its load pass misses once per line and its store
//     pass, re-walking the same cycle, misses once per line again: 2·D.
//
// The result is bit-for-bit identical to the trace walk (a tested invariant
// for every enumerated plan at small n and sampled plans through n = 14,
// across geometries); the walker itself stays available as a validation
// oracle behind WHTLAB_MODEL_ORACLE=1 (see cache_model.hpp).
#pragma once

#include <cstdint>

#include "core/plan.hpp"
#include "model/cost_cache.hpp"

namespace whtlab::model {

struct CacheModelConfig;

/// Closed-form miss count of one cold-start execution of `plan` in a
/// direct-mapped cache — the same number direct_mapped_misses() used to
/// obtain by trace replay, in O(tree) time.
std::uint64_t analytic_direct_mapped_misses(const core::Plan& plan,
                                            const CacheModelConfig& config);

/// Same, memoizing per-(subtree, stride) results in `cache` so searches
/// that re-price shared subtrees (DP's best_by_size children, anneal's
/// mutation neighbourhoods) skip the recursion below any subtree already
/// priced at that stride class.  `cache` may be nullptr (no memoization).
std::uint64_t analytic_direct_mapped_misses(const core::Plan& plan,
                                            const CacheModelConfig& config,
                                            CostCache* cache);

}  // namespace whtlab::model
