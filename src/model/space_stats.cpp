#include "model/space_stats.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "model/instruction_model.hpp"
#include "util/compositions.hpp"

namespace whtlab::model {

namespace {

void check_args(int n, const SpaceOptions& options) {
  if (n < 1 || n > 40) throw std::invalid_argument("space stats: bad n");
  if (options.max_leaf < 1 || options.max_leaf > core::kMaxUnrolled) {
    throw std::invalid_argument("space stats: bad max_leaf");
  }
}

/// DP for an extreme (minimize = true/false) of the modeled instruction
/// count, with witness plans.
ExtremeResult extreme(int n, const SpaceOptions& options, bool minimize) {
  check_args(n, options);
  std::vector<double> best(static_cast<std::size_t>(n) + 1, 0.0);
  std::vector<core::Plan> witness(static_cast<std::size_t>(n) + 1);
  for (int m = 1; m <= n; ++m) {
    bool have = false;
    double best_value = 0.0;
    core::Plan best_plan;
    if (m <= options.max_leaf) {
      best_value = leaf_cost(m, options.weights);
      best_plan = core::Plan::small(m);
      have = true;
    }
    if (m >= 2) {
      util::for_each_composition(m, 2, [&](const std::vector<int>& parts) {
        double value = split_overhead(m, parts, options.weights);
        for (int part : parts) {
          value += child_multiplicity(m, part) *
                   best[static_cast<std::size_t>(part)];
        }
        const bool better =
            !have || (minimize ? value < best_value : value > best_value);
        if (better) {
          std::vector<core::Plan> children;
          children.reserve(parts.size());
          for (int part : parts) {
            children.push_back(witness[static_cast<std::size_t>(part)]);
          }
          best_value = value;
          best_plan = core::Plan::split(std::move(children));
          have = true;
        }
      });
    }
    // The extreme of a subtree cost composes because child costs enter the
    // parent cost with positive multipliers (N/Ni > 0): substituting a
    // child-optimal subtree can only improve the parent.
    best[static_cast<std::size_t>(m)] = best_value;
    witness[static_cast<std::size_t>(m)] = std::move(best_plan);
  }
  return {best[static_cast<std::size_t>(n)],
          witness[static_cast<std::size_t>(n)]};
}

}  // namespace

ExtremeResult min_instruction_count(int n, const SpaceOptions& options) {
  return extreme(n, options, /*minimize=*/true);
}

ExtremeResult max_instruction_count(int n, const SpaceOptions& options) {
  return extreme(n, options, /*minimize=*/false);
}

MomentsResult instruction_moments(int n, const SpaceOptions& options) {
  check_args(n, options);
  const std::size_t size = static_cast<std::size_t>(n) + 1;
  std::vector<double> mean(size, 0.0);
  std::vector<double> var(size, 0.0);
  std::vector<double> kappa3(size, 0.0);  // third central moment

  for (int m = 1; m <= n; ++m) {
    double count = 0.0;   // number of options
    double sum_e = 0.0;   // sum of E[X | option]
    double sum_e2 = 0.0;  // sum of E[X^2 | option]
    double sum_e3 = 0.0;  // sum of E[X^3 | option]
    auto add_option = [&](double e, double v, double k3) {
      count += 1.0;
      sum_e += e;
      sum_e2 += v + e * e;
      // E[Y^3] = kappa3 + 3*mu*sigma^2 + mu^3 for any random variable Y.
      sum_e3 += k3 + 3.0 * e * v + e * e * e;
    };
    if (m <= options.max_leaf) {
      add_option(leaf_cost(m, options.weights), 0.0, 0.0);
    }
    if (m >= 2) {
      util::for_each_composition(m, 2, [&](const std::vector<int>& parts) {
        // Conditional on this composition, X = overhead + sum_i w_i * X_i
        // with independent subtrees, so central moments are additive in
        // w_i^p * kappa_p(X_i).
        double e = split_overhead(m, parts, options.weights);
        double v = 0.0;
        double k3 = 0.0;
        for (int part : parts) {
          const double w = child_multiplicity(m, part);
          const auto p = static_cast<std::size_t>(part);
          e += w * mean[p];
          v += w * w * var[p];
          k3 += w * w * w * kappa3[p];
        }
        add_option(e, v, k3);
      });
    }
    const auto mi = static_cast<std::size_t>(m);
    const double m1 = sum_e / count;
    const double m2 = sum_e2 / count;
    const double m3 = sum_e3 / count;
    mean[mi] = m1;
    var[mi] = m2 - m1 * m1;
    kappa3[mi] = m3 - 3.0 * m1 * m2 + 2.0 * m1 * m1 * m1;
  }

  MomentsResult out;
  const auto ni = static_cast<std::size_t>(n);
  out.mean = mean[ni];
  out.variance = var[ni];
  out.skewness =
      var[ni] > 0.0 ? kappa3[ni] / std::pow(var[ni], 1.5) : 0.0;
  return out;
}

namespace {

using Pmf = std::map<std::int64_t, double>;

/// out += weight * (a shifted by `shift` and scaled in value by `scale`).
void accumulate_scaled(Pmf& out, const Pmf& a, double scale, double shift,
                       double weight) {
  for (const auto& [value, prob] : a) {
    const auto key = static_cast<std::int64_t>(
        std::llround(static_cast<double>(value) * scale + shift));
    out[key] += prob * weight;
  }
}

/// Convolution of scaled child PMFs: result value = sum_i w_i * X_i.
Pmf convolve_children(const std::vector<const Pmf*>& children,
                      const std::vector<double>& scales) {
  Pmf acc;
  acc[0] = 1.0;
  for (std::size_t i = 0; i < children.size(); ++i) {
    Pmf next;
    for (const auto& [base, prob] : acc) {
      for (const auto& [value, child_prob] : *children[i]) {
        const auto key = base + static_cast<std::int64_t>(std::llround(
                                    static_cast<double>(value) * scales[i]));
        next[key] += prob * child_prob;
      }
    }
    acc = std::move(next);
  }
  return acc;
}

void coarsen(Pmf& pmf, std::size_t max_support) {
  while (pmf.size() > max_support) {
    // Merge each pair of adjacent entries into their probability-weighted
    // midpoint; halves the support per pass.
    Pmf merged;
    auto it = pmf.begin();
    while (it != pmf.end()) {
      auto first = it++;
      if (it == pmf.end()) {
        merged[first->first] += first->second;
        break;
      }
      auto second = it++;
      const double p = first->second + second->second;
      const double value =
          (static_cast<double>(first->first) * first->second +
           static_cast<double>(second->first) * second->second) /
          p;
      merged[static_cast<std::int64_t>(std::llround(value))] += p;
    }
    pmf = std::move(merged);
  }
}

}  // namespace

std::map<std::int64_t, double> instruction_distribution(
    int n, const SpaceOptions& options, std::size_t max_support) {
  check_args(n, options);
  if (max_support < 2) throw std::invalid_argument("max_support too small");
  std::vector<Pmf> dist(static_cast<std::size_t>(n) + 1);

  for (int m = 1; m <= n; ++m) {
    double option_count = m <= options.max_leaf ? 1.0 : 0.0;
    if (m >= 2) {
      option_count += static_cast<double>(util::composition_count(m, 2));
    }
    const double option_weight = 1.0 / option_count;
    Pmf pmf;
    if (m <= options.max_leaf) {
      const auto key = static_cast<std::int64_t>(
          std::llround(leaf_cost(m, options.weights)));
      pmf[key] += option_weight;
    }
    if (m >= 2) {
      util::for_each_composition(m, 2, [&](const std::vector<int>& parts) {
        std::vector<const Pmf*> children;
        std::vector<double> scales;
        children.reserve(parts.size());
        scales.reserve(parts.size());
        for (int part : parts) {
          children.push_back(&dist[static_cast<std::size_t>(part)]);
          scales.push_back(child_multiplicity(m, part));
        }
        Pmf conv = convolve_children(children, scales);
        accumulate_scaled(pmf, conv, 1.0,
                          split_overhead(m, parts, options.weights),
                          option_weight);
      });
    }
    coarsen(pmf, max_support);
    dist[static_cast<std::size_t>(m)] = std::move(pmf);
  }
  return dist[static_cast<std::size_t>(n)];
}

}  // namespace whtlab::model
