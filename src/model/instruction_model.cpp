#include "model/instruction_model.hpp"

#include <stdexcept>

namespace whtlab::model {

double leaf_cost(int k, const core::InstructionWeights& weights) {
  if (k < 1 || k > core::kMaxUnrolled) {
    throw std::invalid_argument("leaf_cost: bad codelet size");
  }
  const double m = static_cast<double>(std::uint64_t{1} << k);
  return weights.call + m * (weights.load + weights.store) +
         static_cast<double>(k) * m * weights.flop +
         2.0 * m * weights.index_op;
}

double split_overhead(int n, const std::vector<int>& parts,
                      const core::InstructionWeights& weights) {
  const double total = static_cast<double>(std::uint64_t{1} << n);
  double overhead = weights.call;
  // Factors are applied last-to-first (see core/executor.cpp); s is the
  // running product of the sizes of the already-applied (later) children.
  double s = 1.0;
  for (std::size_t i = parts.size(); i-- > 0;) {
    const double ni = static_cast<double>(std::uint64_t{1} << parts[i]);
    const double multiplicity = total / ni;  // inner (j,k) iterations
    const double r = multiplicity / s;       // mid (j) iterations
    overhead += weights.loop_outer + r * weights.loop_mid +
                multiplicity * (weights.loop_inner + weights.index_op);
    s *= ni;
  }
  return overhead;
}

double node_instruction_count(const core::PlanNode& node,
                              const core::InstructionWeights& weights) {
  if (node.kind == core::NodeKind::kSmall) {
    return leaf_cost(node.log2_size, weights);
  }
  std::vector<int> parts;
  parts.reserve(node.children.size());
  for (const auto& child : node.children) parts.push_back(child->log2_size);
  double total = split_overhead(node.log2_size, parts, weights);
  for (const auto& child : node.children) {
    total += child_multiplicity(node.log2_size, child->log2_size) *
             node_instruction_count(*child, weights);
  }
  return total;
}

double instruction_count(const core::Plan& plan,
                         const core::InstructionWeights& weights) {
  return node_instruction_count(plan.root(), weights);
}

}  // namespace whtlab::model
