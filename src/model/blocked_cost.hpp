// Memory-pass cost model for the fused-schedule execution engine.
//
// The instruction-count models (instruction_model.hpp, simd_cost.hpp) price
// the butterfly work; that is the right currency while the working set fits
// in cache.  The fused engine targets the other regime: beyond L2 every
// full-array sweep is a round trip to memory, and runtime is proportional
// to *pass count*, not butterfly count.  blocked_cost() therefore prices a
// plan by lowering it (core/schedule.hpp) and charging
//
//   butterfly term:  N·n adds, divided by the backend's vector width
//   memory term:     per top-level round, N doubles moved, weighted by the
//                    slowest level the sweep's blocks stream through
//                    (L1-resident ≈ free, L2-resident cheap, beyond-L2 the
//                    dominant term)
//
// Because lowering re-blocks freely, two plans of equal size price
// identically — the model says, correctly, that under this engine the
// machine's cache geometry decides the schedule, not the tree shape.  The
// value of kEstimate pricing with this model is the *pass-count* term: it
// is what a future cross-backend arbiter compares against the tree-walk
// models to decide when to switch engines.
//
// The default sweep weights are a priori ratios.  calibrate_blocked_weights
// fits them to this host instead: it measures a probe plan per size through
// the caller's engine (the model/calibrate.hpp measure-callback protocol)
// and least-squares fits cycles against the model's feature rows
// (butterflies retired, doubles swept per cache level).  The api::Planner
// persists the fit through a wisdom property so the measurement is one-shot
// per host (see api/wisdom.hpp).
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/plan.hpp"
#include "core/schedule.hpp"

namespace whtlab::model {

struct BlockedCostConfig {
  core::BlockingConfig blocking{};  ///< geometry being priced
  int vector_width = 1;             ///< doubles retired per arithmetic op
  double butterfly_weight = 1.0;    ///< cost per scalar butterfly output
  /// Cost per double moved by one full-array sweep, by the cache level the
  /// sweep streams through.  Defaults follow the combined model's spirit
  /// (weights are ratios, not cycles): L1 sweeps are loop overhead only,
  /// beyond-L2 sweeps cost an order of magnitude more than in-cache work.
  double l1_sweep_weight = 0.25;
  double l2_sweep_weight = 1.0;
  double mem_sweep_weight = 8.0;
};

/// The model's feature row for one schedule: what each weight multiplies.
/// schedule_cost() is exactly the dot product of this row with
/// (butterfly_weight, l1_sweep_weight, l2_sweep_weight, mem_sweep_weight).
struct BlockedFeatures {
  double butterflies = 0.0;  ///< N·n / vector_width
  double l1_doubles = 0.0;   ///< sweeps·N when the array streams from L1
  double l2_doubles = 0.0;   ///< sweeps·N when it streams from L2
  double mem_doubles = 0.0;  ///< sweeps·N when it streams from memory
};

BlockedFeatures schedule_features(const core::Schedule& schedule,
                                  const BlockedCostConfig& config);

/// Features of the schedule WHT(2^n) lowers to under config.blocking.
BlockedFeatures blocked_features(int n, const BlockedCostConfig& config);

/// Model value of one fused execution of `schedule` under `config`.
double schedule_cost(const core::Schedule& schedule,
                     const BlockedCostConfig& config);

/// Lowers `plan` with config.blocking and prices the resulting schedule.
double blocked_cost(const core::Plan& plan, const BlockedCostConfig& config);

/// A host-measured fit of the four blocked-model weights.
struct BlockedCalibration {
  double butterfly_weight = 1.0;
  double l1_sweep_weight = 0.25;
  double l2_sweep_weight = 1.0;
  double mem_sweep_weight = 8.0;

  void apply(BlockedCostConfig& config) const;

  /// Space-separated round-trip for wisdom-property persistence.
  std::string serialize() const;
  static std::optional<BlockedCalibration> parse(const std::string& text);
};

/// One-shot on-host calibration: measures one probe plan per size in
/// `sizes` through `measure` (cycles; typically a lambda over
/// api::measure_with_backend so the fit prices the engine that will run)
/// and fits the weights to the observed cycles by least squares.  Sizes
/// should straddle the blocking geometry so every regime contributes a row;
/// a regime no size exercises keeps its prior from `base`.  Requires >= 4
/// sizes; throws std::invalid_argument otherwise.
BlockedCalibration calibrate_blocked_weights(
    const std::vector<int>& sizes,
    const std::function<double(const core::Plan&)>& measure,
    const BlockedCostConfig& base);

}  // namespace whtlab::model
