// Memory-pass cost model for the fused-schedule execution engine.
//
// The instruction-count models (instruction_model.hpp, simd_cost.hpp) price
// the butterfly work; that is the right currency while the working set fits
// in cache.  The fused engine targets the other regime: beyond L2 every
// full-array sweep is a round trip to memory, and runtime is proportional
// to *pass count*, not butterfly count.  blocked_cost() therefore prices a
// plan by lowering it (core/schedule.hpp) and charging
//
//   butterfly term:  N·n adds, divided by the backend's vector width
//   memory term:     per top-level round, N doubles moved, weighted by the
//                    slowest level the sweep's blocks stream through
//                    (L1-resident ≈ free, L2-resident cheap, beyond-L2 the
//                    dominant term)
//
// Because lowering re-blocks freely, two plans of equal size price
// identically — the model says, correctly, that under this engine the
// machine's cache geometry decides the schedule, not the tree shape.  The
// value of kEstimate pricing with this model is the *pass-count* term: it
// is what a future cross-backend arbiter compares against the tree-walk
// models to decide when to switch engines.
#pragma once

#include "core/plan.hpp"
#include "core/schedule.hpp"

namespace whtlab::model {

struct BlockedCostConfig {
  core::BlockingConfig blocking{};  ///< geometry being priced
  int vector_width = 1;             ///< doubles retired per arithmetic op
  double butterfly_weight = 1.0;    ///< cost per scalar butterfly output
  /// Cost per double moved by one full-array sweep, by the cache level the
  /// sweep streams through.  Defaults follow the combined model's spirit
  /// (weights are ratios, not cycles): L1 sweeps are loop overhead only,
  /// beyond-L2 sweeps cost an order of magnitude more than in-cache work.
  double l1_sweep_weight = 0.25;
  double l2_sweep_weight = 1.0;
  double mem_sweep_weight = 8.0;
};

/// Model value of one fused execution of `schedule` under `config`.
double schedule_cost(const core::Schedule& schedule,
                     const BlockedCostConfig& config);

/// Lowers `plan` with config.blocking and prices the resulting schedule.
double blocked_cost(const core::Plan& plan, const BlockedCostConfig& config);

}  // namespace whtlab::model
