// Instruction-count performance model (Hitczenko–Johnson–Huang, TCS 352).
//
// For a plan W the model assigns
//
//   I(small[k]) = A_k                        (unrolled codelet cost)
//   I(split[c1..ct] at size N)
//     = C_call + sum_i [ C_outer + R_i*C_mid + (N/Ni)*(C_inner + C_index)
//                        + (N/Ni) * I(ci) ]
//
// where R_i = N / (N1...Ni) and N/Ni is child i's call multiplicity.  This is
// computable from the high-level plan description alone, in O(tree) — the
// property the paper exploits to prune search without running anything.
//
// The default constants are chosen so that the model *exactly equals* the
// instrumented interpreter's weighted op count (core/instrumented.hpp); that
// equality is a tested invariant, standing in for the close model-vs-PAPI
// agreement reported in TCS'06.
#pragma once

#include "core/instrumented.hpp"
#include "core/plan.hpp"

namespace whtlab::model {

/// Scalar instruction count of one execution of `plan`.
double instruction_count(const core::Plan& plan,
                         const core::InstructionWeights& weights = {});

/// Instruction count of one invocation of a subtree (exposed for the space
/// statistics DP which composes subtree costs).
double node_instruction_count(const core::PlanNode& node,
                              const core::InstructionWeights& weights);

/// Cost of an unrolled codelet small[k] under `weights` (the model's A_k).
double leaf_cost(int k, const core::InstructionWeights& weights);

/// Loop/call overhead contributed by one split node of size 2^n with child
/// sizes `parts` (excluding the children's own costs).  Exposed for the
/// space-statistics recurrences, which aggregate over compositions.
double split_overhead(int n, const std::vector<int>& parts,
                      const core::InstructionWeights& weights);

/// Call multiplicity of child with log2-size k under a parent of log2-size n:
/// N/Ni = 2^(n-k).
inline double child_multiplicity(int n, int k) {
  return static_cast<double>(std::uint64_t{1} << (n - k));
}

}  // namespace whtlab::model
