#include "model/cache_model.hpp"

#include <stdexcept>
#include <vector>

#include "core/instrumented.hpp"
#include "model/analytic_misses.hpp"
#include "util/env.hpp"

namespace whtlab::model {

namespace {

/// WHTLAB_MODEL_ORACLE=1 routes direct_mapped_misses() through the trace
/// walk.  Read per call (one getenv per plan evaluation — noise next to
/// either engine) so a validation harness can flip engines mid-process;
/// bench_plan_time measures the before/after trajectory exactly this way.
bool oracle_mode() {
  return util::env_int("WHTLAB_MODEL_ORACLE", 0) != 0;
}

}  // namespace

void CacheModelConfig::validate() const {
  const auto pow2 = [](std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; };
  if (!pow2(cache_elements) || !pow2(line_elements)) {
    throw std::invalid_argument("cache model parameters must be powers of two");
  }
  if (line_elements > cache_elements) {
    throw std::invalid_argument("line larger than cache");
  }
}

std::uint64_t compulsory_misses(const core::Plan& plan,
                                const CacheModelConfig& config) {
  config.validate();
  const std::uint64_t n = plan.size();
  // The transform touches elements 0..N-1 exactly; they occupy ceil(N/L)
  // contiguous lines.
  return (n + config.line_elements - 1) / config.line_elements;
}

std::uint64_t access_count(const core::Plan& plan) {
  return core::count_ops(plan).accesses();
}

std::uint64_t trace_direct_mapped_misses(const core::Plan& plan,
                                         const CacheModelConfig& config) {
  config.validate();
  const std::uint64_t n = plan.size();

  // Closed form: transform fits in the cache.  The N/L distinct lines map to
  // distinct sets (contiguous data, direct mapped), so after its compulsory
  // miss every line stays resident for the whole execution.
  if (n <= config.cache_elements) return compulsory_misses(plan, config);

  // General case: deterministic evaluation of the loop nest against a
  // tag-per-set table.  Element index -> line = idx/L -> set = line mod
  // (C/L).  All quantities are powers of two, so shifts/masks.
  const std::uint64_t num_sets = config.cache_elements / config.line_elements;
  std::uint32_t line_shift = 0;
  while ((std::uint64_t{1} << line_shift) < config.line_elements) ++line_shift;
  const std::uint64_t set_mask = num_sets - 1;

  constexpr std::uint64_t kInvalid = ~std::uint64_t{0};
  std::vector<std::uint64_t> tags(num_sets, kInvalid);
  std::uint64_t misses = 0;
  auto sink = [&](std::uint64_t index, bool /*is_store*/) {
    const std::uint64_t line = index >> line_shift;
    const std::uint64_t set = line & set_mask;
    if (tags[set] != line) {
      tags[set] = line;
      ++misses;
    }
  };
  core::reference_stream(plan, sink);
  return misses;
}

std::uint64_t direct_mapped_misses(const core::Plan& plan,
                                   const CacheModelConfig& config) {
  if (oracle_mode()) return trace_direct_mapped_misses(plan, config);
  return analytic_direct_mapped_misses(plan, config);
}

std::uint64_t direct_mapped_misses(const core::Plan& plan,
                                   const CacheModelConfig& config,
                                   CostCache* cache) {
  if (oracle_mode()) return trace_direct_mapped_misses(plan, config);
  return analytic_direct_mapped_misses(plan, config, cache);
}

}  // namespace whtlab::model
