#include "model/simd_cost.hpp"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "model/instruction_model.hpp"

namespace whtlab::model {

namespace {

/// Execution context of a subtree under the SIMD executor's dispatch rules
/// (mirrors simd/simd_executor.cpp's walk / walk_lockstep).
enum class Mode {
  kScalar,    ///< strided invocation: scalar codelets throughout
  kUnit,      ///< unit-stride invocation: vectorizes where the rules allow
  kLockstep,  ///< W transforms per vector op: every cost divided by W
};

double node_cost(const core::PlanNode& node, Mode mode, int width,
                 const core::InstructionWeights& weights) {
  const double w = static_cast<double>(width);
  if (node.kind == core::NodeKind::kSmall) {
    const double scalar = leaf_cost(node.log2_size, weights);
    if (mode == Mode::kLockstep) return scalar / w;
    if (mode == Mode::kUnit &&
        node.size() >= static_cast<std::uint64_t>(width)) {
      return scalar / w;  // in-register stride-1 codelet
    }
    return scalar;
  }

  std::vector<int> parts;
  parts.reserve(node.children.size());
  for (const auto& child : node.children) parts.push_back(child->log2_size);
  double total = split_overhead(node.log2_size, parts, weights);
  if (mode == Mode::kLockstep) total /= w;

  // Children last-to-first, tracking the accumulated stride S exactly like
  // the executor: child i runs N/Ni times, in lockstep once S >= W (unit
  // context), at unit stride only while S == 1.
  std::uint64_t s = 1;
  for (std::size_t i = node.children.size(); i-- > 0;) {
    const core::PlanNode& child = *node.children[i];
    Mode child_mode = Mode::kScalar;
    if (mode == Mode::kLockstep) {
      child_mode = Mode::kLockstep;
    } else if (mode == Mode::kUnit) {
      if (s >= static_cast<std::uint64_t>(width)) {
        child_mode = Mode::kLockstep;
      } else if (s == 1) {
        child_mode = Mode::kUnit;
      }
    }
    const double multiplicity =
        child_multiplicity(node.log2_size, child.log2_size);
    total += multiplicity * node_cost(child, child_mode, width, weights);
    s *= child.size();
  }
  return total;
}

}  // namespace

double simd_instruction_count(const core::Plan& plan,
                              const core::InstructionWeights& weights,
                              int width) {
  if (width <= 1) return instruction_count(plan, weights);
  return node_cost(plan.root(), Mode::kUnit, width, weights);
}

double interleave_amortization(const core::Plan& plan, int width) {
  if (width <= 1) return 1.0;
  const core::InstructionWeights weights;
  const double per_vector = simd_instruction_count(plan, weights, width);
  const double lockstep =
      instruction_count(plan, weights) / static_cast<double>(width);
  if (!(per_vector > 0.0) || !(lockstep > 0.0)) return 1.0;
  // The lockstep stream can only be cheaper (it is the walk's ideal); the
  // floor guards pathological weight choices from zeroing a serve cost.
  return std::clamp(lockstep / per_vector, 0.05, 1.0);
}

}  // namespace whtlab::model
