#include "model/analytic_misses.hpp"

#include <algorithm>
#include <string>

#include "model/cache_model.hpp"

namespace whtlab::model {

namespace {

int log2_exact(std::uint64_t v) {
  int e = 0;
  while ((std::uint64_t{1} << e) < v) ++e;
  return e;
}

/// Geometry exponents plus the optional per-subtree memo.
struct Analysis {
  int c = 0;  ///< log2 cache capacity in elements
  int l = 0;  ///< log2 line size in elements
  CostCache* cache = nullptr;
};

/// Distinct cache lines of the lattice {base + i·2^t : i < 2^m}: the lattice
/// varies index bits [t, m+t), of which only those at or above the line bit
/// produce distinct lines.
std::uint64_t lattice_lines(int m, int t, int l) {
  const int line_bits = m + t - std::max(l, t);
  return std::uint64_t{1} << std::max(0, line_bits);
}

std::uint64_t misses_cold(const core::PlanNode& node, int t, const Analysis& a);

/// Grammar-string key for the memo; built only when a cache is attached.
void append_node_key(const core::PlanNode& node, std::string& out) {
  if (node.kind == core::NodeKind::kSmall) {
    out += 's';
    out += std::to_string(node.log2_size);
    return;
  }
  out += '[';
  for (const auto& child : node.children) append_node_key(*child, out);
  out += ']';
}

std::uint64_t misses_cold_memo(const core::PlanNode& node, int t,
                               const Analysis& a) {
  if (a.cache == nullptr) return misses_cold(node, t, a);
  std::string key;
  key.reserve(16);
  append_node_key(node, key);
  key += '@';
  key += std::to_string(t);
  if (const auto hit = a.cache->lookup_subtree(key)) return *hit;
  const std::uint64_t value = misses_cold(node, t, a);
  a.cache->store_subtree(key, value);
  return value;
}

/// Misses of one invocation of `node` at accumulated stride 2^t entering
/// with none of its footprint lines resident.  See analytic_misses.hpp for
/// the regime derivation; the structure below mirrors it case by case.
std::uint64_t misses_cold(const core::PlanNode& node, int t, const Analysis& a) {
  const int m = node.log2_size;

  // Span fits the cache: every touched line maps to its own set, so the
  // invocation is conflict-free and misses exactly its compulsory count.
  if (m + t <= a.c) return lattice_lines(m, t, a.l);

  if (node.kind == core::NodeKind::kSmall) {
    // Span exceeds the cache: 2^{m+t-c} >= 2 of the leaf's lines share each
    // touched set.  The load pass walks each line once (per-set order is a
    // strictly advancing cycle, so every line's first touch finds another
    // tag) and the store pass re-walks the same cycle one line behind —
    // both pass lengths are exactly the distinct-line count.
    return 2 * lattice_lines(m, t, a.l);
  }

  // Split whose span exceeds the cache: the children run as full passes
  // over the region, last child first (the executor's order).  Every pass
  // wraps the set space, so a child invocation enters cold unless it is in
  // the same line-sharing group as its predecessor: consecutive invocations
  // whose offsets agree on every bit at or above the line bit touch the
  // identical line set.  Offsets advance as o = j·2^{m_i+sigma} + k·1 in
  // units of 2^t (k the inner 2^sigma coset loop, j the outer block loop),
  // so the group size is the run of offset increments below line distance:
  // the k bits below l-t, plus — when the whole child span is sub-line —
  // the low j bits as well.
  std::uint64_t total = 0;
  int sigma = 0;  // log2 of the accumulated child stride multiplier s
  for (std::size_t i = node.children.size(); i-- > 0;) {
    const core::PlanNode& child = *node.children[i];
    const int mi = child.log2_size;
    const int child_t = t + sigma;
    const int invocations_log2 = m - mi;  // r·s invocations of this child

    const int line_gap = std::max(0, a.l - t);  // offset bits below a line
    int group_log2 = std::min(sigma, line_gap) +
                     std::max(0, std::min(line_gap, m) - sigma - mi);
    group_log2 = std::min(group_log2, invocations_log2);

    const std::uint64_t invocations = std::uint64_t{1} << invocations_log2;
    const std::uint64_t firsts = invocations >> group_log2;
    const std::uint64_t cold = misses_cold_memo(child, child_t, a);
    // A follower re-touches the exact line set its group's first invocation
    // loaded: free while the child fits the cache (the lines are still
    // resident, conflict-free), but a full re-walk — cold again — when the
    // child itself overflows the cache and evicted its own head.
    const std::uint64_t follow = (mi + sigma + t <= a.c) ? 0 : cold;
    total += firsts * cold + (invocations - firsts) * follow;
    sigma += mi;
  }
  return total;
}

}  // namespace

std::uint64_t analytic_direct_mapped_misses(const core::Plan& plan,
                                            const CacheModelConfig& config,
                                            CostCache* cache) {
  config.validate();
  Analysis a;
  a.c = log2_exact(config.cache_elements);
  a.l = log2_exact(config.line_elements);
  a.cache = cache;
  return misses_cold_memo(plan.root(), 0, a);
}

std::uint64_t analytic_direct_mapped_misses(const core::Plan& plan,
                                            const CacheModelConfig& config) {
  return analytic_direct_mapped_misses(plan, config, nullptr);
}

}  // namespace whtlab::model
