// Statistics of the instruction-count model over the whole plan space.
//
// TCS 352 (Hitczenko–Johnson–Huang) analyzes the distribution of instruction
// counts over the family of WHT algorithms: minimum, maximum, mean, variance,
// and a limit theorem (the distribution approaches a normal law as n grows).
// This module reproduces those quantities computationally:
//
//   * min/max by dynamic programming over subtree sizes (with witness plans);
//   * mean/variance/skewness under the *recursive split uniform* model — at
//     every node each way of applying Equation 1 (leaf, if admissible, or any
//     composition with t >= 2 parts) is equally likely — via exact moment
//     recurrences (independent subtrees make central moments additive);
//   * the exact distribution for small n by polynomial convolution.
//
// The skewness trend toward 0 is the computational echo of the TCS limit
// theorem, and the sampled histograms of Figures 4–5 are validated against
// these exact moments in the test suite.
#pragma once

#include <cstdint>
#include <map>

#include "core/instrumented.hpp"
#include "core/plan.hpp"

namespace whtlab::model {

struct SpaceOptions {
  int max_leaf = core::kMaxUnrolled;  ///< largest admissible codelet
  core::InstructionWeights weights{};
};

struct ExtremeResult {
  double value = 0.0;
  core::Plan plan;  ///< witness achieving the extreme
};

/// Plan with the fewest modeled instructions among all plans of size 2^n.
ExtremeResult min_instruction_count(int n, const SpaceOptions& options = {});

/// Plan with the most modeled instructions.
ExtremeResult max_instruction_count(int n, const SpaceOptions& options = {});

struct MomentsResult {
  double mean = 0.0;
  double variance = 0.0;
  double skewness = 0.0;  ///< third standardized central moment
};

/// Exact moments of the instruction count under the recursive-split-uniform
/// distribution over plans of size 2^n.
MomentsResult instruction_moments(int n, const SpaceOptions& options = {});

/// Exact probability mass function of the instruction count (value -> prob)
/// under the recursive-split-uniform distribution.  Instruction values are
/// rounded to integers (exact when the weights are integral, as the defaults
/// are).  If the support would exceed `max_support` points the result is
/// coarsened by merging adjacent values; intended for n <= ~10.
std::map<std::int64_t, double> instruction_distribution(
    int n, const SpaceOptions& options = {}, std::size_t max_support = 200000);

}  // namespace whtlab::model
