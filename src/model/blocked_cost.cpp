#include "model/blocked_cost.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "stats/linear_solve.hpp"

namespace whtlab::model {

BlockedFeatures schedule_features(const core::Schedule& schedule,
                                  const BlockedCostConfig& config) {
  BlockedFeatures features;
  const double n = static_cast<double>(std::uint64_t{1} << schedule.log2_size);
  const double width = config.vector_width > 1 ? config.vector_width : 1.0;

  // Butterfly term: n stages of N outputs each, retired `width` at a time.
  features.butterflies = n * static_cast<double>(schedule.log2_size) / width;

  // Memory term: each top-level round streams the full array once; the
  // whole-array working set (not the round's block size) decides which
  // level it streams from, because consecutive blocks evict each other
  // once N exceeds the level.
  const double swept = static_cast<double>(sweep_count(schedule)) * n;
  if (schedule.log2_size > config.blocking.l2_block_log2) {
    features.mem_doubles = swept;
  } else if (schedule.log2_size > config.blocking.l1_block_log2) {
    features.l2_doubles = swept;
  } else {
    features.l1_doubles = swept;
  }
  return features;
}

BlockedFeatures blocked_features(int n, const BlockedCostConfig& config) {
  return schedule_features(core::lower_size(n, config.blocking), config);
}

double schedule_cost(const core::Schedule& schedule,
                     const BlockedCostConfig& config) {
  const BlockedFeatures f = schedule_features(schedule, config);
  return config.butterfly_weight * f.butterflies +
         config.l1_sweep_weight * f.l1_doubles +
         config.l2_sweep_weight * f.l2_doubles +
         config.mem_sweep_weight * f.mem_doubles;
}

double blocked_cost(const core::Plan& plan, const BlockedCostConfig& config) {
  return schedule_cost(core::lower_plan(plan, config.blocking), config);
}

void BlockedCalibration::apply(BlockedCostConfig& config) const {
  config.butterfly_weight = butterfly_weight;
  config.l1_sweep_weight = l1_sweep_weight;
  config.l2_sweep_weight = l2_sweep_weight;
  config.mem_sweep_weight = mem_sweep_weight;
}

std::string BlockedCalibration::serialize() const {
  std::ostringstream out;
  out.precision(17);
  out << butterfly_weight << ' ' << l1_sweep_weight << ' ' << l2_sweep_weight
      << ' ' << mem_sweep_weight;
  return out.str();
}

std::optional<BlockedCalibration> BlockedCalibration::parse(
    const std::string& text) {
  std::istringstream in(text);
  BlockedCalibration calibration;
  if (!(in >> calibration.butterfly_weight >> calibration.l1_sweep_weight >>
        calibration.l2_sweep_weight >> calibration.mem_sweep_weight)) {
    return std::nullopt;
  }
  return calibration;
}

BlockedCalibration calibrate_blocked_weights(
    const std::vector<int>& sizes,
    const std::function<double(const core::Plan&)>& measure,
    const BlockedCostConfig& base) {
  if (sizes.size() < 4) {
    throw std::invalid_argument("calibrate_blocked_weights: need >= 4 sizes");
  }
  if (!measure) {
    throw std::invalid_argument("calibrate_blocked_weights: null measure");
  }

  // One probe plan per size.  The fused engine re-blocks every plan of a
  // size identically, so the tree shape is immaterial; iterative_radix
  // keeps the probe cheap to construct at any n.
  std::vector<std::vector<double>> rows;
  std::vector<double> cycles;
  bool saw[3] = {false, false, false};  // l1 / l2 / mem rows observed
  for (const int n : sizes) {
    if (n < 1) throw std::invalid_argument("calibrate_blocked_weights: bad n");
    const BlockedFeatures f = blocked_features(n, base);
    rows.push_back({f.butterflies, f.l1_doubles, f.l2_doubles, f.mem_doubles});
    if (f.l1_doubles > 0) saw[0] = true;
    if (f.l2_doubles > 0) saw[1] = true;
    if (f.mem_doubles > 0) saw[2] = true;
    cycles.push_back(
        measure(core::Plan::iterative_radix(n, core::kMaxUnrolled)));
  }

  // Column scaling before the normal equations: the features span many
  // orders of magnitude (butterflies at n = 20 vs swept doubles at n = 8),
  // and unscaled columns lose most of the fit's precision to conditioning.
  double scale[4] = {0, 0, 0, 0};
  for (const auto& row : rows) {
    for (int j = 0; j < 4; ++j) scale[j] = std::max(scale[j], row[j]);
  }
  std::vector<std::vector<double>> scaled = rows;
  for (auto& row : scaled) {
    for (int j = 0; j < 4; ++j) {
      if (scale[j] > 0) row[j] /= scale[j];
    }
  }
  auto w = stats::least_squares(scaled, cycles, 1e-9);
  for (int j = 0; j < 4; ++j) {
    if (scale[j] > 0) w[j] /= scale[j];
  }

  // Noise can drive a weakly-constrained weight to ~0 or below; weights are
  // ratios on a model whose only job is ordering plans, so a non-positive
  // or unobserved fit falls back to the prior rather than inverting the
  // level hierarchy.
  BlockedCalibration calibration;
  calibration.butterfly_weight =
      w[0] > 0 ? w[0] : base.butterfly_weight;
  calibration.l1_sweep_weight =
      (saw[0] && w[1] > 0) ? w[1] : base.l1_sweep_weight;
  calibration.l2_sweep_weight =
      (saw[1] && w[2] > 0) ? w[2] : base.l2_sweep_weight;
  calibration.mem_sweep_weight =
      (saw[2] && w[3] > 0) ? w[3] : base.mem_sweep_weight;
  return calibration;
}

}  // namespace whtlab::model
