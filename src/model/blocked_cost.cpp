#include "model/blocked_cost.hpp"

namespace whtlab::model {

double schedule_cost(const core::Schedule& schedule,
                     const BlockedCostConfig& config) {
  const double n = static_cast<double>(std::uint64_t{1} << schedule.log2_size);
  const double width = config.vector_width > 1 ? config.vector_width : 1.0;

  // Butterfly term: n stages of N outputs each, retired `width` at a time.
  double cost = config.butterfly_weight * n *
                static_cast<double>(schedule.log2_size) / width;

  // Memory term: each top-level round streams the full array once; the
  // whole-array working set (not the round's block size) decides which
  // level it streams from, because consecutive blocks evict each other
  // once N exceeds the level.
  const int l1 = config.blocking.l1_block_log2;
  const int l2 = config.blocking.l2_block_log2;
  double sweep_weight = config.l1_sweep_weight;
  if (schedule.log2_size > l1) sweep_weight = config.l2_sweep_weight;
  if (schedule.log2_size > l2) sweep_weight = config.mem_sweep_weight;
  cost += static_cast<double>(sweep_count(schedule)) * n * sweep_weight;
  return cost;
}

double blocked_cost(const core::Plan& plan, const BlockedCostConfig& config) {
  return schedule_cost(core::lower_plan(plan, config.blocking), config);
}

}  // namespace whtlab::model
