// Per-planner memoization of model evaluations across a search.
//
// Every search strategy prices many candidate plans, and those candidates
// overlap heavily: DP assembles each size-2^m candidate from the
// already-found best subplans of its parts, annealing mutates one subtree
// per step and re-prices the whole tree, and the sampler draws duplicate
// shapes.  Before this cache existed every candidate re-walked its full
// tree from scratch.  A CostCache remembers two granularities:
//
//   * whole-plan model values, keyed by the plan's grammar string plus a
//     caller-chosen tag (geometry / backend width — anything that changes
//     the answer), consulted by the searches (search/dp_search.hpp,
//     search/local_search.hpp, search/pruned_search.hpp) before invoking
//     the cost function;
//   * per-subtree miss counts, keyed by (subtree grammar, stride class),
//     consulted by the analytic cache model's recursion
//     (model/analytic_misses.hpp) so a subtree shared by many candidates
//     is priced once per stride it appears at.
//
// A cache instance is only coherent for one pricing configuration; the
// api::Planner creates a fresh one per plan() call and threads it through
// both the model and the search options.  Not thread-safe (searches are
// single-threaded); keys are exact strings, so hits can never alias.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>

namespace whtlab::model {

class CostCache {
 public:
  struct Stats {
    std::uint64_t plan_hits = 0;
    std::uint64_t plan_misses = 0;
    std::uint64_t subtree_hits = 0;
    std::uint64_t subtree_misses = 0;
  };

  /// Whole-plan model value for `key` (grammar + configuration tag).
  std::optional<double> lookup_plan(const std::string& key) {
    const auto it = plan_values_.find(key);
    if (it == plan_values_.end()) {
      ++stats_.plan_misses;
      return std::nullopt;
    }
    ++stats_.plan_hits;
    return it->second;
  }
  void store_plan(const std::string& key, double value) {
    plan_values_.emplace(key, value);
  }

  /// Per-subtree miss count for `key` (subtree grammar + stride class).
  std::optional<std::uint64_t> lookup_subtree(const std::string& key) {
    const auto it = subtree_values_.find(key);
    if (it == subtree_values_.end()) {
      ++stats_.subtree_misses;
      return std::nullopt;
    }
    ++stats_.subtree_hits;
    return it->second;
  }
  void store_subtree(const std::string& key, std::uint64_t value) {
    subtree_values_.emplace(key, value);
  }

  const Stats& stats() const { return stats_; }
  std::size_t size() const {
    return plan_values_.size() + subtree_values_.size();
  }
  void clear() {
    plan_values_.clear();
    subtree_values_.clear();
    stats_ = Stats{};
  }

 private:
  std::unordered_map<std::string, double> plan_values_;
  std::unordered_map<std::string, std::uint64_t> subtree_values_;
  Stats stats_;
};

}  // namespace whtlab::model
