// Combined performance model: alpha * Instructions + beta * Misses.
//
// Section 4 of the paper: for transforms that do not fit in L1, neither
// instruction count nor cache misses alone correlate strongly with cycles,
// but the linear combination alpha*I + beta*M does (rho = 0.92 at
// alpha = 1.00, beta = 0.05 on their Opteron; note only the ratio beta/alpha
// matters for Pearson correlation — the grid search in stats/grid_opt.hpp
// reproduces their Figure 9 sweep).
#pragma once

#include "core/plan.hpp"
#include "model/cache_model.hpp"
#include "model/cost_cache.hpp"
#include "model/instruction_model.hpp"
#include "model/simd_cost.hpp"

namespace whtlab::model {

struct CombinedModel {
  double alpha = 1.0;
  double beta = 0.05;
  core::InstructionWeights weights{};
  CacheModelConfig cache = CacheModelConfig::opteron_l1();
  /// > 1 prices the instruction term for the SIMD executor at that vector
  /// width (model/simd_cost.hpp); the miss term is unchanged (the SIMD walk
  /// touches the same cache lines in the same order).
  int vector_width = 1;
  /// Optional per-search memo (model/cost_cache.hpp): the miss term's
  /// recursion stores per-(subtree, stride) results so candidates sharing
  /// subtrees — DP's composed winners, anneal's mutation neighbours — are
  /// priced incrementally.  The caller owns the cache and must not share it
  /// across differently-configured models.
  CostCache* cost_cache = nullptr;

  /// Model value for a plan, computed from its description alone.
  double operator()(const core::Plan& plan) const {
    const double instructions =
        vector_width > 1 ? simd_instruction_count(plan, weights, vector_width)
                         : instruction_count(plan, weights);
    return alpha * instructions +
           beta * static_cast<double>(
                      direct_mapped_misses(plan, cache, cost_cache));
  }

  /// Combine pre-computed components (used when I and M are already known,
  /// e.g. over a sampled population).
  double combine(double instructions, double misses) const {
    return alpha * instructions + beta * misses;
  }
};

}  // namespace whtlab::model
