// Instruction-weight calibration against measured cycles (extension).
//
// The paper's default model weights are fixed a priori; Yotov et al. (the
// paper's reference [13]) showed that fitting model parameters to micro
// measurements can close much of the model-measurement gap.  This module
// fits the per-op costs of the instruction model to a measured population:
//
//   cycles_i ~ w . features(plan_i) + e_i     (least squares)
//
// with features = the interpreter's op tallies.  On WHT plans loads ==
// stores and index_ops are collinear with other counts, so the fit groups
// ops into independent features: memory ops, flops, loop iterations, calls.
// The calibrated model is still computable from the plan description alone;
// tests assert it never correlates worse than the default weights on the
// population it was fit to.
#pragma once

#include <functional>
#include <vector>

#include "core/instrumented.hpp"
#include "core/plan.hpp"

namespace whtlab::model {

struct CalibrationResult {
  /// Fitted cost per: memory access, flop, loop iteration, node call.
  double cost_memory = 0.0;
  double cost_flop = 0.0;
  double cost_loop = 0.0;
  double cost_call = 0.0;

  /// Predicted cycles for a plan under the fitted costs.
  double predict(const core::OpCounts& ops) const;
  double predict(const core::Plan& plan) const;
};

/// Fits the grouped cost model to (plan, cycles) pairs.  Requires at least
/// 4 samples; throws std::invalid_argument otherwise.
CalibrationResult calibrate_weights(const std::vector<core::Plan>& plans,
                                    const std::vector<double>& cycles);

/// Same fit from pre-computed op tallies.
CalibrationResult calibrate_weights(const std::vector<core::OpCounts>& ops,
                                    const std::vector<double>& cycles);

/// Calibration against an arbitrary execution engine: measures every plan
/// through `measure` (e.g. a lambda over api::measure_with_backend, so the
/// fit prices the "simd" or "parallel" code path rather than the scalar
/// interpreter) and fits the grouped costs to the observed cycles.
CalibrationResult calibrate_weights(
    const std::vector<core::Plan>& plans,
    const std::function<double(const core::Plan&)>& measure);

}  // namespace whtlab::model
