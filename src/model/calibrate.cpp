#include "model/calibrate.hpp"

#include <stdexcept>

#include "stats/linear_solve.hpp"

namespace whtlab::model {

namespace {

std::vector<double> features(const core::OpCounts& ops) {
  return {
      static_cast<double>(ops.loads + ops.stores),
      static_cast<double>(ops.flops),
      static_cast<double>(ops.loop_outer + ops.loop_mid + ops.loop_inner),
      static_cast<double>(ops.calls),
  };
}

}  // namespace

double CalibrationResult::predict(const core::OpCounts& ops) const {
  const auto f = features(ops);
  return cost_memory * f[0] + cost_flop * f[1] + cost_loop * f[2] +
         cost_call * f[3];
}

double CalibrationResult::predict(const core::Plan& plan) const {
  return predict(core::count_ops(plan));
}

CalibrationResult calibrate_weights(const std::vector<core::OpCounts>& ops,
                                    const std::vector<double>& cycles) {
  if (ops.size() != cycles.size() || ops.size() < 4) {
    throw std::invalid_argument("calibrate_weights: need >= 4 paired samples");
  }
  std::vector<std::vector<double>> x;
  x.reserve(ops.size());
  for (const auto& o : ops) x.push_back(features(o));
  const auto w = stats::least_squares(x, cycles, 1e-6);
  CalibrationResult result;
  result.cost_memory = w[0];
  result.cost_flop = w[1];
  result.cost_loop = w[2];
  result.cost_call = w[3];
  return result;
}

CalibrationResult calibrate_weights(const std::vector<core::Plan>& plans,
                                    const std::vector<double>& cycles) {
  std::vector<core::OpCounts> ops;
  ops.reserve(plans.size());
  for (const auto& plan : plans) ops.push_back(core::count_ops(plan));
  return calibrate_weights(ops, cycles);
}

CalibrationResult calibrate_weights(
    const std::vector<core::Plan>& plans,
    const std::function<double(const core::Plan&)>& measure) {
  std::vector<double> cycles;
  cycles.reserve(plans.size());
  for (const auto& plan : plans) cycles.push_back(measure(plan));
  return calibrate_weights(plans, cycles);
}

}  // namespace whtlab::model
