// Cache-miss performance model (after Furis–Hitczenko–Johnson, AofA 2005).
//
// The AofA'05 analysis counts, for each WHT plan, the misses incurred in a
// *direct-mapped* cache — the constraint under which the distribution results
// of that paper were obtained.  whtlab computes the count two ways:
//
//   * analytically (model/analytic_misses.hpp) — a closed-form O(tree)
//     recursion over the plan's loop nest, the default and the engine that
//     makes model-driven planning (kEstimate / kAnneal) sub-second at every
//     supported size;
//   * by trace replay (trace_direct_mapped_misses below) — the original
//     tag-per-set walk over the interpreter's full O(n·2^n) access
//     sequence, kept as the validation oracle.  Setting the
//     WHTLAB_MODEL_ORACLE=1 environment variable routes
//     direct_mapped_misses() through it for a whole process (slow; for
//     cross-checking the analytic model, never for planning).
//
// The two agree exactly — a tested invariant over every enumerated plan at
// small sizes and sampled plans through n = 14, across cache geometries.
// Closed forms short-circuit the provable regimes either way:
//
//   * N <= C (transform fits): every line is missed exactly once (compulsory
//     misses only), M = N/L;
//   * any plan's misses are bounded below by N/L and above by the total
//     access count (both exposed for tests and pruning bounds).
//
// The experiments use the trace-driven simulator (src/cachesim/) in the
// Opteron's 2-way geometry as the PAPI stand-in while this model supplies
// the "from-the-description" predictor the paper's pruning relies on.
#pragma once

#include <cstdint>

#include "core/plan.hpp"

namespace whtlab::model {

class CostCache;

struct CacheModelConfig {
  std::uint64_t cache_elements = 8192;  ///< capacity C in doubles
  std::uint32_t line_elements = 8;      ///< line size L in doubles (64 B)

  /// Paper-machine geometry: 64 KB / 8 B per element, 64 B lines.
  static CacheModelConfig opteron_l1() { return {8192, 8}; }

  void validate() const;
};

/// Exact miss count of one cold-start execution of `plan` in a direct-mapped
/// cache with the given geometry.  Computed from the plan description alone:
/// analytically in O(tree) by default, by trace replay when the
/// WHTLAB_MODEL_ORACLE environment variable is set to a nonzero value.
std::uint64_t direct_mapped_misses(const core::Plan& plan,
                                   const CacheModelConfig& config);

/// Memoizing variant: per-(subtree, stride) results land in `cache`
/// (model/cost_cache.hpp) so searches stop re-pricing shared subtrees.
/// nullptr degrades to the plain call; oracle mode ignores the cache (the
/// trace walk is the baseline being validated, not a production path).
std::uint64_t direct_mapped_misses(const core::Plan& plan,
                                   const CacheModelConfig& config,
                                   CostCache* cache);

/// The trace-replay oracle: walks the interpreter's full access sequence
/// against a tag-per-set table.  O(n·2^n) — exact by construction, and what
/// the analytic model is tested against.
std::uint64_t trace_direct_mapped_misses(const core::Plan& plan,
                                         const CacheModelConfig& config);

/// Compulsory misses: number of distinct lines the transform touches.
std::uint64_t compulsory_misses(const core::Plan& plan,
                                const CacheModelConfig& config);

/// Total memory accesses (upper bound on misses).
std::uint64_t access_count(const core::Plan& plan);

}  // namespace whtlab::model
