// Cache-miss performance model (after Furis–Hitczenko–Johnson, AofA 2005).
//
// The AofA'05 analysis counts, for each WHT plan, the misses incurred in a
// *direct-mapped* cache — the constraint under which the distribution results
// of that paper were obtained.  whtlab reproduces the model as an exact
// combinatorial evaluation over the plan's loop structure:
//
//   * the full access sequence of the interpreter is determined by the plan
//     (bases and strides are all powers of two), and
//   * in a direct-mapped cache, residency is a deterministic function of
//     that sequence,
//
// so the model walks the loop nest maintaining a tag-per-set table — no data
// is touched and nothing is executed.  Closed forms short-circuit the
// regimes where the answer is provable directly:
//
//   * N <= C (transform fits): every line is missed exactly once (compulsory
//     misses only), M = N/L;
//   * any plan's misses are bounded below by N/L and above by the total
//     access count (both exposed for tests and pruning bounds).
//
// Agreement with the trace-driven simulator in direct-mapped mode is a tested
// invariant; the experiments then use the simulator in the Opteron's 2-way
// geometry as the PAPI stand-in while this model supplies the
// "from-the-description" predictor the paper's pruning relies on.
#pragma once

#include <cstdint>

#include "core/plan.hpp"

namespace whtlab::model {

struct CacheModelConfig {
  std::uint64_t cache_elements = 8192;  ///< capacity C in doubles
  std::uint32_t line_elements = 8;      ///< line size L in doubles (64 B)

  /// Paper-machine geometry: 64 KB / 8 B per element, 64 B lines.
  static CacheModelConfig opteron_l1() { return {8192, 8}; }

  void validate() const;
};

/// Exact miss count of one cold-start execution of `plan` in a direct-mapped
/// cache with the given geometry.  Computed from the plan description alone.
std::uint64_t direct_mapped_misses(const core::Plan& plan,
                                   const CacheModelConfig& config);

/// Compulsory misses: number of distinct lines the transform touches.
std::uint64_t compulsory_misses(const core::Plan& plan,
                                const CacheModelConfig& config);

/// Total memory accesses (upper bound on misses).
std::uint64_t access_count(const core::Plan& plan);

}  // namespace whtlab::model
