// Instruction-count model for the SIMD backend (pricing hook).
//
// The TCS'06 instruction model (instruction_model.hpp) prices a plan for the
// scalar interpreter.  The SIMD executor (src/simd/) retires the same
// butterflies W at a time wherever its dispatch rules apply, so a planner
// pricing the "simd" backend with scalar counts would systematically favour
// the wrong plans (vectorizability varies across the plan space: big
// unit-stride leaves and large accumulated strides vectorize; the k < W
// prefix does not).
//
// simd_instruction_count() walks the plan with exactly the executor's
// dispatch rules — unit-stride leaf of >= W elements -> in-register codelet,
// inner loop at accumulated stride S >= W -> W-wide lockstep subtree,
// everything else scalar — and divides the vectorized portions' costs by W.
// Loop/call overhead is charged scalar except inside lockstep subtrees,
// where one tree walk drives W transforms.  Like the scalar model it is
// computable from the plan description alone in O(tree); kEstimate planning
// for the "simd" backend runs on it via CombinedModel::vector_width.
#pragma once

#include "core/instrumented.hpp"
#include "core/plan.hpp"

namespace whtlab::model {

/// Per-transform instruction count of one SIMD execution of `plan` with
/// vector width `width` (1 reproduces instruction_count exactly).
double simd_instruction_count(const core::Plan& plan,
                              const core::InstructionWeights& weights,
                              int width);

/// Predicted per-vector cost ratio of running `width` transforms
/// batch-interleaved (whole-tree lockstep: every butterfly full-width, one
/// tree walk drives W transforms — the ideal 1/W of the scalar stream)
/// versus the per-vector vectorized walk simd_instruction_count prices
/// (which pays scalar prefixes wherever its dispatch rules fall through).
/// Always in (0, 1]; width <= 1 returns 1.  The serve-time arbiter's
/// interleave term (ExecutorBackend::batch_factor for "simd").
double interleave_amortization(const core::Plan& plan, int width);

}  // namespace whtlab::model
