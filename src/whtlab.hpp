// Umbrella header: the whole whtlab public API.
//
// Fine-grained headers remain the primary interface (include what you use);
// this exists for quick experiments and the examples.
#pragma once

#include "api/engine.hpp"                // IWYU pragma: export
#include "api/exec_context.hpp"          // IWYU pragma: export
#include "api/executor_backend.hpp"      // IWYU pragma: export
#include "api/planner.hpp"               // IWYU pragma: export
#include "api/transform.hpp"             // IWYU pragma: export
#include "api/wht.hpp"                   // IWYU pragma: export
#include "api/wisdom.hpp"                // IWYU pragma: export
#include "cachesim/cache.hpp"            // IWYU pragma: export
#include "cachesim/hierarchy.hpp"        // IWYU pragma: export
#include "cachesim/trace_runner.hpp"     // IWYU pragma: export
#include "core/codelet.hpp"              // IWYU pragma: export
#include "core/executor.hpp"             // IWYU pragma: export
#include "core/instrumented.hpp"         // IWYU pragma: export
#include "core/parallel_executor.hpp"    // IWYU pragma: export
#include "core/plan.hpp"                 // IWYU pragma: export
#include "core/plan_io.hpp"              // IWYU pragma: export
#include "core/plan_stats.hpp"           // IWYU pragma: export
#include "core/schedule.hpp"             // IWYU pragma: export
#include "core/sequency.hpp"             // IWYU pragma: export
#include "core/verify.hpp"               // IWYU pragma: export
#include "model/analytic_misses.hpp"     // IWYU pragma: export
#include "model/blocked_cost.hpp"        // IWYU pragma: export
#include "model/cache_model.hpp"         // IWYU pragma: export
#include "model/calibrate.hpp"           // IWYU pragma: export
#include "model/combined_model.hpp"      // IWYU pragma: export
#include "model/cost_cache.hpp"          // IWYU pragma: export
#include "model/instruction_model.hpp"   // IWYU pragma: export
#include "model/simd_cost.hpp"           // IWYU pragma: export
#include "model/space_stats.hpp"         // IWYU pragma: export
#include "perf/cycle_timer.hpp"          // IWYU pragma: export
#include "perf/events.hpp"               // IWYU pragma: export
#include "perf/measure.hpp"              // IWYU pragma: export
#include "search/dp_search.hpp"          // IWYU pragma: export
#include "search/enumerate.hpp"          // IWYU pragma: export
#include "search/exhaustive.hpp"         // IWYU pragma: export
#include "search/local_search.hpp"       // IWYU pragma: export
#include "search/pruned_search.hpp"      // IWYU pragma: export
#include "search/sampler.hpp"            // IWYU pragma: export
#include "search/space.hpp"              // IWYU pragma: export
#include "simd/cpu_features.hpp"         // IWYU pragma: export
#include "simd/fused_executor.hpp"       // IWYU pragma: export
#include "simd/simd_executor.hpp"        // IWYU pragma: export
#include "stats/correlation.hpp"         // IWYU pragma: export
#include "stats/descriptive.hpp"         // IWYU pragma: export
#include "stats/grid_opt.hpp"            // IWYU pragma: export
#include "stats/histogram.hpp"           // IWYU pragma: export
#include "stats/linear_solve.hpp"        // IWYU pragma: export
#include "stats/pruning.hpp"             // IWYU pragma: export
#include "stats/regression.hpp"          // IWYU pragma: export
#include "util/aligned_buffer.hpp"       // IWYU pragma: export
#include "util/bigint.hpp"               // IWYU pragma: export
#include "util/compositions.hpp"         // IWYU pragma: export
#include "util/rng.hpp"                  // IWYU pragma: export
