// Cross-process wakeups for the shared-memory serving layer.
//
// The shm rings (spsc_ring.hpp) signal progress by bumping a 32-bit atomic
// word that lives in the shared segment; the waiting side parks on that word
// until it changes.  On Linux the park is a real futex (FUTEX_WAIT on the
// *shared* word — deliberately not FUTEX_PRIVATE, the waiter and the waker
// are different processes), so an idle daemon or a blocked client costs
// nothing until the other side rings.  Elsewhere the same API degrades to a
// sleep-poll loop — slower wakeups, identical semantics.
//
// All waits are spin-then-sleep: a short user-space spin first, because the
// common serving case is a response that is microseconds away and a syscall
// round-trip would dominate small-n transforms.
#pragma once

#include <atomic>
#include <cstdint>

namespace whtlab::ipc {

/// Blocks until `word != expected` or `timeout_ns` elapses (timeout_ns < 0 =
/// no timeout).  Returns word's current value — callers loop on it, because
/// futex wakeups are allowed to be spurious.  The word must live in memory
/// shared by waiter and waker (an mmap'd segment or ordinary process memory).
std::uint32_t futex_wait_changed(const std::atomic<std::uint32_t>& word,
                                 std::uint32_t expected,
                                 std::int64_t timeout_ns);

/// Wakes every futex_wait_changed parked on `word`.  Cheap when nobody
/// waits (one syscall on Linux, nothing at all elsewhere).
void futex_wake_all(const std::atomic<std::uint32_t>& word);

/// Spin-then-sleep wait: ~`spins` pause-loop iterations watching for the
/// word to change, then the futex park.  Returns the current value.
std::uint32_t spin_then_wait(const std::atomic<std::uint32_t>& word,
                             std::uint32_t expected, int spins,
                             std::int64_t timeout_ns);

}  // namespace whtlab::ipc
