// Deterministic byzantine-client fuzzer for the whtd trust boundary.
//
// run_byzantine_client() connects to a live endpoint the way a *hostile*
// process would — raw segment mapping, manual slot claim, no client
// library — and then spends `ops` seeded mutations scribbling every field
// the protocol lets a client write: its own ring cursor words, ring payload
// slots, slot header words (state/pid/generation/credits), its own staging
// arena, the doorbell, and the request stream itself (malformed n, count,
// offset, generation, seq, deadline combinations, including the shift-UB
// shapes n >= 64).  The whole op stream derives from FuzzOptions::seed via
// util::Rng, so every run is replayable from its seed — a crash is a repro,
// not an anecdote.
//
// The fuzzer's writes are confined to resources the protocol assigns to its
// own slot (plus the shared doorbell, which is wake-only), so honest
// clients running alongside on *other* slots of the same endpoint must stay
// bit-exact — exactly what the byzantine test and the CI smoke assert.  The
// daemon, for its part, must never crash, wedge, or leak: every hostile op
// lands on the validate.hpp boundary and costs at most this one slot.
//
// Exits without releasing the slot: sweeping the corpse is part of what the
// harness exercises.
#pragma once

#include <cstdint>
#include <string>

namespace whtlab::ipc {

struct FuzzOptions {
  std::string endpoint = "whtlab";
  std::uint64_t seed = 1;   ///< the whole op stream derives from this
  std::uint64_t ops = 500;  ///< hostile mutations to apply
  std::uint64_t op_delay_us = 0;  ///< pacing between ops (0 = full speed)
  /// How long to wait for a live daemon before giving up (connect phase).
  std::uint64_t wait_ms = 5000;
};

struct FuzzReport {
  std::uint64_t ops_applied = 0;      ///< hostile mutations performed
  std::uint64_t requests_pushed = 0;  ///< malformed requests enqueued
  std::uint64_t responses_seen = 0;   ///< responses drained (any status)
  std::uint64_t reclaims_survived = 0;  ///< times our slot was taken back
  int slot = -1;                        ///< first claimed slot index
};

/// Runs the seeded corruption stream against `options.endpoint`.  Returns
/// the op tally; throws std::runtime_error only when no daemon ever
/// answered the endpoint (a harness failure, not a finding).
FuzzReport run_byzantine_client(const FuzzOptions& options);

}  // namespace whtlab::ipc
