// whtd — the shared-memory multi-process serving daemon.
//
// One Daemon owns one process-wide wht::Engine and one shm segment
// (protocol.hpp) and serves every connected client process through them:
//
//   ipc::Daemon daemon;        // creates /dev/shm/whtlab.<endpoint>
//   daemon.start();            // service thread: rings -> Engine -> rings
//   ...
//   daemon.stop();             // drain, publish shutdown, unlink segment
//
// The service loop pops requests from every active slot's ring, admits them
// through a per-client trailing-window RateLimiter, validates their shape,
// and routes them into the Engine: single-vector requests go through the
// coalescing submit() path — concurrent requests from *different client
// processes* for the same size merge into one batched run, the designed
// payoff of the PR 5 execution contract — while client-side batches run
// directly through the arbitrated execute_many.  All execution is in place
// in the client's shm arena: no vector bytes are ever copied across the
// process boundary.
//
// Robustness is part of the contract:
//   * Admission control — a bounded slot table; a client that finds no free
//     slot gets a typed kServerFull at connect (client.hpp).
//   * Rate limiting — per-slot RateLimiter (rate_limiter.hpp); over-budget
//     requests answer kThrottled immediately, without execution, so one
//     greedy client cannot queue out the others.
//   * Dead-client reclamation — a pid-liveness sweep every sweep_ms frees
//     slots whose owner died (SIGKILL included), resets their rings, and
//     drops their in-flight completions by generation check.  One crashed
//     client never wedges the daemon.
//   * Clean shutdown — stop() drains in-flight work, answers what it can,
//     publishes the shutdown flag, wakes every parked waiter, and unlinks
//     the segment; blocked clients resolve to kDaemonGone instead of
//     hanging.
//   * Graceful drain (protocol v4) — drain() moves the lifecycle word to
//     kDraining: the daemon stops admitting (new submissions answer the
//     typed kDraining with a retry hint), finishes every in-flight request,
//     waits for clients to consume their answers, flushes wisdom, and only
//     then stops — all inside the drain_ms deadline (a wedged consumer
//     aborts the drain typed, never hangs it).  SIGTERM on whtd maps here.
//   * Warm-standby handoff — a Daemon built with options.standby binds a
//     *staging* segment (endpoint + ".next") so its Engine can prewarm from
//     wisdom without disturbing the incumbent; promote() then atomically
//     takes the canonical endpoint over (epoch bump) once the predecessor
//     is provably dead, shut down, or draining ("live-but-draining
//     predecessor cedes").  `whtd --supervise` drives this on SIGHUP for
//     zero-downtime rolling restarts (supervisor.hpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "api/engine.hpp"
#include "ipc/protocol.hpp"
#include "ipc/shm.hpp"

namespace whtlab::ipc {

struct DaemonOptions {
  /// Serving endpoint name; the segment is /dev/shm/whtlab.<endpoint>.
  std::string endpoint = "whtlab";

  /// Client slots — the admission-control bound.  [WHTLAB_IPC_SLOTS]
  std::uint32_t slots = 16;

  /// Per-slot staging arena in doubles; bounds the largest servable request
  /// (count << n <= arena_doubles).  [WHTLAB_IPC_ARENA_BYTES / 8]
  std::uint64_t arena_doubles = std::uint64_t{1} << 19;  // 4 MiB

  /// Admitted requests per client per trailing window; 0 disables.
  /// [WHTLAB_IPC_RATE_LIMIT]
  std::uint64_t rate_limit = 0;
  std::uint64_t rate_window_ns = 1000000000ULL;

  /// Suggested client wait deadline, published in the header; clients may
  /// override locally.  [WHTLAB_IPC_TIMEOUT_MS]
  std::uint64_t timeout_ms = 5000;

  /// Liveness sweep period — the reclamation latency bound for a SIGKILLed
  /// client's slot.  [WHTLAB_IPC_SWEEP_MS]
  std::uint64_t sweep_ms = 50;

  /// Credit-based flow control: per-client work budget in *vectors* (one
  /// credit buys one staged vector), refilled continuously at credit_limit
  /// per credit_window_ns.  A request whose cost exceeds the balance gets a
  /// typed kThrottled without execution.  0 disables.  Complements
  /// rate_limit, which counts requests regardless of size.
  /// [WHTLAB_IPC_CREDITS / WHTLAB_IPC_CREDIT_WINDOW_MS]
  std::uint64_t credit_limit = 0;
  std::uint64_t credit_window_ns = 1000000000ULL;

  /// Deadline-aware load shedding: drop requests whose stamped deadline_ns
  /// already passed when the daemon would execute them, answering a typed
  /// kTimeout instead of burning Engine time on an answer nobody waits
  /// for.  On by default — a request without a deadline is never shed.
  /// [WHTLAB_IPC_SHED]
  bool shed_expired = true;

  /// Trust-boundary strikes before a slot is evicted (generation bump +
  /// reclaim).  Violations the shipped client library can never produce —
  /// corrupt ring cursors, out-of-arena shapes, seq replays — each count
  /// one strike; at the limit the offender loses its slot.  0 = count but
  /// never evict.  [WHTLAB_IPC_STRIKES]
  std::uint32_t strike_limit = 3;

  /// Replace a leftover segment whose recorded daemon pid is dead (crashed
  /// predecessor).  A segment with a *live* daemon is never taken over —
  /// except by promote(), where a live-but-*draining* predecessor cedes.
  bool takeover_stale = true;

  /// Graceful-drain budget: drain() finishes in-flight work and waits for
  /// clients to consume their answers for at most this long before aborting
  /// the drain (typed, counted — never hung).  [WHTLAB_IPC_DRAIN_MS]
  std::uint64_t drain_ms = 5000;

  /// Telemetry stats-page publish period: the service loop republishes the
  /// Engine's telemetry snapshot into the observer-only
  /// /dev/shm/whtlab.<endpoint>.stats segment (protocol.hpp, StatsPage) at
  /// most this often.  Observers (`whtd_stat`) map it read-only and read
  /// under the seqlock, so publishing never blocks serving.  0 disables
  /// publishing (the page still exists, frozen at zero).
  /// [WHTLAB_IPC_STATS_PUBLISH_MS]
  std::uint64_t stats_publish_ms = 250;

  /// Warm-standby mode: bind the *staging* segment (endpoint + ".next")
  /// instead of the canonical one, so this daemon can construct and prewarm
  /// while the incumbent still serves.  promote() later takes the canonical
  /// endpoint over.  The staging segment never takes over a live staging
  /// predecessor either — two concurrent standbys is a configuration error.
  bool standby = false;

  /// The serving Engine's configuration (candidate backends, strategy,
  /// wisdom file, coalescing window, ...).
  api::EngineOptions engine;

  /// Defaults with every WHTLAB_IPC_* environment knob applied.
  static DaemonOptions from_env();
};

class Daemon {
 public:
  /// Creates and initializes the segment and the Engine.  Throws
  /// ipc::Error(kServerFull) when a live daemon already owns the endpoint,
  /// std::runtime_error on shm failures.
  explicit Daemon(DaemonOptions options = {});
  ~Daemon();  ///< stop() if still running

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  void start();  ///< spawns the service thread (idempotent)

  /// Drains in-flight work, publishes shutdown, wakes all waiters, joins
  /// the service thread, and unlinks the segment.  Idempotent.  After a
  /// handoff the canonical name may already belong to the successor; stop()
  /// then skips the unlink (never removes a segment it no longer owns).
  void stop();

  /// Begins a graceful drain: the lifecycle word moves to kDraining (new
  /// submissions answer typed kDraining with a retry hint), in-flight work
  /// completes, clients consume their answers, wisdom is flushed — then the
  /// service loop parks in kStopped awaiting stop().  `deadline_ms` caps
  /// the whole drain (0 = options().drain_ms); a wedged consumer aborts the
  /// drain at the deadline (drain_aborted) instead of hanging it.
  /// Async-signal-unsafe parts live here, not in signal handlers — whtd's
  /// SIGTERM handler only sets a flag and its main loop calls drain().
  /// Idempotent; safe from any thread.
  void drain(std::uint64_t deadline_ms = 0);

  /// Blocks until the drain (or a plain stop) has run to completion — the
  /// lifecycle word reached kStopped — or `timeout_ms` passed.  Returns
  /// true when drained.
  bool wait_drained(std::uint64_t timeout_ms);

  /// Prewarms the Engine from wisdom (Engine::prewarm) and publishes the
  /// count in the header's `prewarmed` word, so supervisors and tests can
  /// verify a successor serves warm *before* takeover.  Returns the count.
  std::size_t prewarm();

  /// Warm-standby takeover: atomically moves this daemon from the staging
  /// segment (endpoint + ".next") to the canonical endpoint.  Waits up to
  /// `wait_ms` for the predecessor to cede — dead, shut down, reached
  /// kStopped, or (the drain-completion handoff) released the canonical
  /// name itself; a live serving-or-draining predecessor is never
  /// displaced — then binds a fresh segment under the canonical name
  /// with epoch = predecessor epoch + 1, and republishes the header (the
  /// prewarmed count carries over).  Clients attached to the predecessor
  /// keep their mappings (an unlinked segment lives until unmapped) and
  /// re-handshake onto the new segment by name.  Must be called before
  /// start(), on a Daemon built with options.standby.  Throws
  /// ipc::Error(kServerFull) when the predecessor never cedes.
  void promote(std::uint64_t wait_ms = 10000);

  /// The published lifecycle word (kBooting until construction completes).
  Lifecycle lifecycle() const;
  /// The published takeover epoch (bumped by promote; 0 on staging).
  std::uint64_t epoch() const;

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Snapshot of the shared counters (also readable by any process that
  /// maps the segment — Client::daemon_stats, `whtd --stats`).
  struct Stats {
    std::uint64_t requests = 0;
    std::uint64_t vectors = 0;
    std::uint64_t throttled = 0;
    std::uint64_t bad_request = 0;
    std::uint64_t exec_errors = 0;
    std::uint64_t reclaimed = 0;
    std::uint64_t dropped = 0;
    std::uint64_t protocol_errors = 0;
    std::uint64_t evictions = 0;
    std::uint64_t shed_expired = 0;
    std::uint64_t credit_stalls = 0;
    std::uint64_t drained = 0;
    std::uint64_t drain_aborted = 0;
    std::uint64_t drain_refused = 0;
  };
  Stats stats() const;

  api::Engine& engine() { return *engine_; }
  const DaemonOptions& options() const { return options_; }
  const std::string& shm_name() const { return shm_.name(); }

 private:
  struct SlotLocal;  // daemon-private per-slot state (limiter, strikes, ...)
  struct PendingExec;

  void service_loop();
  bool poll_requests(std::vector<PendingExec>& pending);
  void handle_request(std::uint32_t index, SlotShared* slot,
                      std::uint64_t gen, const Request& request,
                      std::vector<PendingExec>& pending);
  bool drain_completions(std::vector<PendingExec>& pending, bool block_one);
  void complete(std::uint32_t index, std::uint64_t gen, std::uint64_t seq,
                Status status);
  void respond(std::uint32_t index, SlotShared* slot, std::uint64_t seq,
               Status status, std::int32_t hint_ms = 0);
  /// Drain progress: true when no live client still holds unconsumed
  /// entries in either of its rings (everything submitted was answered AND
  /// every answer was picked up).  Dead owners don't count — their slots
  /// are the sweep's problem, not the drain's.
  bool rings_flushed() const;
  void set_lifecycle(Lifecycle lifecycle);
  /// Binds the shm segment named `shm_name`, taking over a stale
  /// predecessor per `cede_draining` (false: ctor rule — dead or shut down
  /// only; true: promote rule — a live-but-draining predecessor cedes too,
  /// waiting up to `wait_ms` for it to start draining), and publishes a
  /// fully initialized header — everything but daemon_pid, which the
  /// caller stores last.  Staging segments publish epoch 0; canonical ones
  /// publish (largest predecessor epoch observed) + 1.  Also resets
  /// slot_local_ for the fresh segment.
  Shm bind_segment(const std::string& shm_name, bool cede_draining,
                   bool staging, std::uint64_t wait_ms);
  /// Records one trust-boundary violation against the slot; evicts the
  /// tenant when the strike limit is crossed.
  void strike(std::uint32_t index, SlotShared* slot);
  /// Forcibly un-claims a slot whose tenant proved byzantine: generation
  /// bump (outstanding seqs and late completions die on the generation
  /// check), ring reset, state back to kFree.  The evicted process's next
  /// wait observes the generation change and resolves typed.
  void evict(std::uint32_t index, SlotShared* slot);
  void sweep();
  void reclaim(std::uint32_t index, SlotShared* slot);
  /// Unlinks the segment name only when it still maps to *this* daemon's
  /// segment — after a handoff it is the successor's, and stays.
  void unlink_if_owned();
  /// Drain-completion half of a handoff: unlink the canonical name while
  /// still kDraining and remember it (name_released_) so no later path
  /// unlinks again — the successor owns the name from here on.
  void release_name();
  /// Creates (taking over a stale predecessor's) the observer-only stats
  /// page "<shm name>.stats" and stamps its immutable header fields.
  void bind_stats_page();
  /// Publishes the Engine's telemetry snapshot + serving totals into the
  /// stats page under the seqlock.  Service-thread only.
  void publish_stats_page();
  /// Unlinks and unmaps the stats page.  Ordered before the kStopped /
  /// shutdown publication on every exit path, so a successor that waits
  /// for those words can never lose its own freshly bound page to a late
  /// unlink from this process.
  void release_stats_page();

  ControlHeader* header() const { return layout_.header(shm_.data()); }
  SlotShared* slot(std::uint32_t index) const {
    return layout_.slot(shm_.data(), index);
  }
  double* arena(std::uint32_t index) const {
    return layout_.arena(shm_.data(), index);
  }

  DaemonOptions options_;
  Layout layout_;
  Shm shm_;
  Shm stats_shm_;  ///< observer-only telemetry page ("<shm name>.stats")
  std::unique_ptr<api::Engine> engine_;
  api::ExecContext ctx_;  ///< service-thread scratch for direct batch runs
  /// Daemon-private per-slot trust/budget state (limiter, credit bucket,
  /// strike ledger, last seq counter).  Lives here — never in the shared
  /// segment — so clients cannot rewrite their own budgets or rap sheets.
  /// Touched only by the service thread (and stats(), read-only, counters
  /// aside).  SlotLocal is incomplete here; ctor/dtor live in daemon.cpp.
  std::vector<SlotLocal> slot_local_;

  std::thread service_;
  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};
  std::atomic<std::uint64_t> drain_deadline_ns_{0};
  std::mutex drain_mutex_;  ///< serializes drain() callers (cold path)
  std::uint64_t epoch_base_ = 0;  ///< canonical epoch seen at standby ctor
  bool name_released_ = false;    ///< drain ceded the name to a successor
  bool stopped_ = false;  ///< stop() ran to completion (segment unlinked)
};

/// One-line counter rendering for log lines (`whtd --stats`,
/// --stats-interval-ms): "requests=N vectors=N ... credit_stalls=N".
std::string to_string(const Daemon::Stats& stats);

}  // namespace whtlab::ipc
