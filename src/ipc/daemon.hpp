// whtd — the shared-memory multi-process serving daemon.
//
// One Daemon owns one process-wide wht::Engine and one shm segment
// (protocol.hpp) and serves every connected client process through them:
//
//   ipc::Daemon daemon;        // creates /dev/shm/whtlab.<endpoint>
//   daemon.start();            // service thread: rings -> Engine -> rings
//   ...
//   daemon.stop();             // drain, publish shutdown, unlink segment
//
// The service loop pops requests from every active slot's ring, admits them
// through a per-client trailing-window RateLimiter, validates their shape,
// and routes them into the Engine: single-vector requests go through the
// coalescing submit() path — concurrent requests from *different client
// processes* for the same size merge into one batched run, the designed
// payoff of the PR 5 execution contract — while client-side batches run
// directly through the arbitrated execute_many.  All execution is in place
// in the client's shm arena: no vector bytes are ever copied across the
// process boundary.
//
// Robustness is part of the contract:
//   * Admission control — a bounded slot table; a client that finds no free
//     slot gets a typed kServerFull at connect (client.hpp).
//   * Rate limiting — per-slot RateLimiter (rate_limiter.hpp); over-budget
//     requests answer kThrottled immediately, without execution, so one
//     greedy client cannot queue out the others.
//   * Dead-client reclamation — a pid-liveness sweep every sweep_ms frees
//     slots whose owner died (SIGKILL included), resets their rings, and
//     drops their in-flight completions by generation check.  One crashed
//     client never wedges the daemon.
//   * Clean shutdown — stop() drains in-flight work, answers what it can,
//     publishes the shutdown flag, wakes every parked waiter, and unlinks
//     the segment; blocked clients resolve to kDaemonGone instead of
//     hanging.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/engine.hpp"
#include "ipc/protocol.hpp"
#include "ipc/shm.hpp"

namespace whtlab::ipc {

struct DaemonOptions {
  /// Serving endpoint name; the segment is /dev/shm/whtlab.<endpoint>.
  std::string endpoint = "whtlab";

  /// Client slots — the admission-control bound.  [WHTLAB_IPC_SLOTS]
  std::uint32_t slots = 16;

  /// Per-slot staging arena in doubles; bounds the largest servable request
  /// (count << n <= arena_doubles).  [WHTLAB_IPC_ARENA_BYTES / 8]
  std::uint64_t arena_doubles = std::uint64_t{1} << 19;  // 4 MiB

  /// Admitted requests per client per trailing window; 0 disables.
  /// [WHTLAB_IPC_RATE_LIMIT]
  std::uint64_t rate_limit = 0;
  std::uint64_t rate_window_ns = 1000000000ULL;

  /// Suggested client wait deadline, published in the header; clients may
  /// override locally.  [WHTLAB_IPC_TIMEOUT_MS]
  std::uint64_t timeout_ms = 5000;

  /// Liveness sweep period — the reclamation latency bound for a SIGKILLed
  /// client's slot.  [WHTLAB_IPC_SWEEP_MS]
  std::uint64_t sweep_ms = 50;

  /// Credit-based flow control: per-client work budget in *vectors* (one
  /// credit buys one staged vector), refilled continuously at credit_limit
  /// per credit_window_ns.  A request whose cost exceeds the balance gets a
  /// typed kThrottled without execution.  0 disables.  Complements
  /// rate_limit, which counts requests regardless of size.
  /// [WHTLAB_IPC_CREDITS / WHTLAB_IPC_CREDIT_WINDOW_MS]
  std::uint64_t credit_limit = 0;
  std::uint64_t credit_window_ns = 1000000000ULL;

  /// Deadline-aware load shedding: drop requests whose stamped deadline_ns
  /// already passed when the daemon would execute them, answering a typed
  /// kTimeout instead of burning Engine time on an answer nobody waits
  /// for.  On by default — a request without a deadline is never shed.
  /// [WHTLAB_IPC_SHED]
  bool shed_expired = true;

  /// Trust-boundary strikes before a slot is evicted (generation bump +
  /// reclaim).  Violations the shipped client library can never produce —
  /// corrupt ring cursors, out-of-arena shapes, seq replays — each count
  /// one strike; at the limit the offender loses its slot.  0 = count but
  /// never evict.  [WHTLAB_IPC_STRIKES]
  std::uint32_t strike_limit = 3;

  /// Replace a leftover segment whose recorded daemon pid is dead (crashed
  /// predecessor).  A segment with a *live* daemon is never taken over.
  bool takeover_stale = true;

  /// The serving Engine's configuration (candidate backends, strategy,
  /// wisdom file, coalescing window, ...).
  api::EngineOptions engine;

  /// Defaults with every WHTLAB_IPC_* environment knob applied.
  static DaemonOptions from_env();
};

class Daemon {
 public:
  /// Creates and initializes the segment and the Engine.  Throws
  /// ipc::Error(kServerFull) when a live daemon already owns the endpoint,
  /// std::runtime_error on shm failures.
  explicit Daemon(DaemonOptions options = {});
  ~Daemon();  ///< stop() if still running

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  void start();  ///< spawns the service thread (idempotent)

  /// Drains in-flight work, publishes shutdown, wakes all waiters, joins
  /// the service thread, and unlinks the segment.  Idempotent.
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Snapshot of the shared counters (also readable by any process that
  /// maps the segment — Client::daemon_stats, `whtd --stats`).
  struct Stats {
    std::uint64_t requests = 0;
    std::uint64_t vectors = 0;
    std::uint64_t throttled = 0;
    std::uint64_t bad_request = 0;
    std::uint64_t exec_errors = 0;
    std::uint64_t reclaimed = 0;
    std::uint64_t dropped = 0;
    std::uint64_t protocol_errors = 0;
    std::uint64_t evictions = 0;
    std::uint64_t shed_expired = 0;
    std::uint64_t credit_stalls = 0;
  };
  Stats stats() const;

  api::Engine& engine() { return *engine_; }
  const DaemonOptions& options() const { return options_; }
  const std::string& shm_name() const { return shm_.name(); }

 private:
  struct SlotLocal;  // daemon-private per-slot state (limiter, strikes, ...)
  struct PendingExec;

  void service_loop();
  bool poll_requests(std::vector<PendingExec>& pending);
  void handle_request(std::uint32_t index, SlotShared* slot,
                      std::uint64_t gen, const Request& request,
                      std::vector<PendingExec>& pending);
  bool drain_completions(std::vector<PendingExec>& pending, bool block_one);
  void complete(std::uint32_t index, std::uint64_t gen, std::uint64_t seq,
                Status status);
  void respond(std::uint32_t index, SlotShared* slot, std::uint64_t seq,
               Status status);
  /// Records one trust-boundary violation against the slot; evicts the
  /// tenant when the strike limit is crossed.
  void strike(std::uint32_t index, SlotShared* slot);
  /// Forcibly un-claims a slot whose tenant proved byzantine: generation
  /// bump (outstanding seqs and late completions die on the generation
  /// check), ring reset, state back to kFree.  The evicted process's next
  /// wait observes the generation change and resolves typed.
  void evict(std::uint32_t index, SlotShared* slot);
  void sweep();
  void reclaim(std::uint32_t index, SlotShared* slot);

  ControlHeader* header() const { return layout_.header(shm_.data()); }
  SlotShared* slot(std::uint32_t index) const {
    return layout_.slot(shm_.data(), index);
  }
  double* arena(std::uint32_t index) const {
    return layout_.arena(shm_.data(), index);
  }

  DaemonOptions options_;
  Layout layout_;
  Shm shm_;
  std::unique_ptr<api::Engine> engine_;
  api::ExecContext ctx_;  ///< service-thread scratch for direct batch runs
  /// Daemon-private per-slot trust/budget state (limiter, credit bucket,
  /// strike ledger, last seq counter).  Lives here — never in the shared
  /// segment — so clients cannot rewrite their own budgets or rap sheets.
  /// Touched only by the service thread (and stats(), read-only, counters
  /// aside).  SlotLocal is incomplete here; ctor/dtor live in daemon.cpp.
  std::vector<SlotLocal> slot_local_;

  std::thread service_;
  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> running_{false};
  bool stopped_ = false;  ///< stop() ran to completion (segment unlinked)
};

/// One-line counter rendering for log lines (`whtd --stats`,
/// --stats-interval-ms): "requests=N vectors=N ... credit_stalls=N".
std::string to_string(const Daemon::Stats& stats);

}  // namespace whtlab::ipc
