// Trailing-window rate limiter over a circular timestamp buffer.
//
// Admission decision for "at most `limit` events in any trailing `window`":
// keep the timestamps of the last `limit` admitted events in a ring; a new
// event at time `now` is admitted iff the event `limit` admissions ago —
// the oldest retained stamp, which the new event would evict — happened
// before `now - window`.  That is the exact sliding-window answer (not a
// bucketed approximation): admitting the event makes it the limit-th event
// of the trailing window only if the evicted one has aged out.
//
// O(1) per decision, O(limit) memory, no background bookkeeping — cheap
// enough for the whtd daemon to keep one per client slot and consult on
// every request (daemon.cpp), and standalone enough to reuse anywhere a
// per-key budget is needed.  Not thread-safe: one limiter belongs to one
// decision stream (whtd's are all consulted from the single service
// thread).  Timestamps are caller-supplied nanoseconds, so tests drive it
// with a fake clock.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace whtlab::ipc {

class RateLimiter {
 public:
  /// `limit` admissions per trailing `window_ns` nanoseconds.  limit == 0
  /// disables the limiter (everything admits) — the daemon's "no rate
  /// limit configured" representation.
  explicit RateLimiter(std::size_t limit = 0,
                       std::uint64_t window_ns = 1000000000ULL)
      : limit_(limit), window_ns_(window_ns), stamps_(limit, 0) {}

  /// Admits (and records) the event at `now_ns`, or rejects it.  Rejected
  /// events are NOT recorded: a client hammering past its budget does not
  /// push its own window forward and starve itself once it slows down.
  bool try_acquire(std::uint64_t now_ns) {
    if (limit_ == 0) return true;
    const std::uint64_t oldest = stamps_[next_];
    // Age via subtraction, not `now < oldest + window`: the addition can
    // wrap near the top of the clock's range and admit a full window's
    // worth of extra events at the rollover boundary.  Modular subtraction
    // gives the true elapsed time for any monotonic now >= oldest.
    if (admitted_ >= limit_ && now_ns - oldest < window_ns_) return false;
    stamps_[next_] = now_ns;
    next_ = (next_ + 1) % limit_;
    if (admitted_ < limit_) ++admitted_;
    return true;
  }

  /// Forgets all history (slot reclaimed / handed to a new client).
  void reset() {
    next_ = 0;
    admitted_ = 0;
    stamps_.assign(stamps_.size(), 0);
  }

  std::size_t limit() const { return limit_; }
  std::uint64_t window_ns() const { return window_ns_; }

 private:
  std::size_t limit_;
  std::uint64_t window_ns_;
  std::vector<std::uint64_t> stamps_;  ///< circular: next_ = oldest retained
  std::size_t next_ = 0;
  std::size_t admitted_ = 0;  ///< saturates at limit_
};

/// Token-bucket credit account for cost-aware flow control.
///
/// Where RateLimiter answers "how many *requests* recently?", CreditBucket
/// answers "how much *work* is this client allowed to buy?": every admission
/// spends `cost` credits (whtd charges one credit per staged vector, so a
/// 64-vector batch costs 64× a single transform), and the balance refills
/// continuously at capacity-per-window — a client that stays under its
/// sustained work rate never stalls, while a burst larger than the bucket
/// gets a typed kThrottled until the refill catches up.  Distinct from and
/// composable with the request-count limiter; the daemon consults both.
///
/// Same contracts as RateLimiter: capacity 0 disables (everything admits),
/// caller-supplied nanosecond clock, not thread-safe (one bucket per
/// decision stream — whtd keeps one per slot on the service thread), and
/// rejected spends are not recorded.
class CreditBucket {
 public:
  explicit CreditBucket(std::uint64_t capacity = 0,
                        std::uint64_t window_ns = 1000000000ULL)
      : capacity_(capacity),
        window_ns_(window_ns ? window_ns : 1),
        tokens_(capacity) {}

  /// Spends `cost` credits at `now_ns` if the (refilled) balance covers it.
  bool try_spend(std::uint64_t cost, std::uint64_t now_ns) {
    if (capacity_ == 0) return true;
    refill(now_ns);
    if (cost > tokens_) return false;
    tokens_ -= cost;
    return true;
  }

  /// The balance a spend at `now_ns` would see (advisory — published to the
  /// slot's shared `credits` word so clients can pace themselves).
  std::uint64_t available(std::uint64_t now_ns) {
    if (capacity_ == 0) return ~std::uint64_t{0};
    refill(now_ns);
    return tokens_;
  }

  /// Back to a full bucket with no history (slot handed to a new tenant).
  void reset() {
    tokens_ = capacity_;
    last_ns_ = 0;
  }

  std::uint64_t capacity() const { return capacity_; }
  std::uint64_t window_ns() const { return window_ns_; }

 private:
  void refill(std::uint64_t now_ns) {
    const std::uint64_t elapsed = now_ns - last_ns_;  // monotonic clock
    if (elapsed >= window_ns_) {
      tokens_ = capacity_;
      last_ns_ = now_ns;
      return;
    }
    // Proportional refill in 128-bit: elapsed * capacity can exceed 2^64
    // for large windows/capacities, and truncating here would leak credits.
    const auto earned = static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(elapsed) * capacity_) / window_ns_);
    if (earned == 0) return;  // keep last_ns_ so sub-quantum time accrues
    tokens_ = std::min(capacity_, tokens_ + earned);
    last_ns_ = now_ns;
  }

  std::uint64_t capacity_;
  std::uint64_t window_ns_;
  std::uint64_t tokens_;  ///< starts full; a fresh bucket owes nothing
  std::uint64_t last_ns_ = 0;
};

}  // namespace whtlab::ipc
