// Trailing-window rate limiter over a circular timestamp buffer.
//
// Admission decision for "at most `limit` events in any trailing `window`":
// keep the timestamps of the last `limit` admitted events in a ring; a new
// event at time `now` is admitted iff the event `limit` admissions ago —
// the oldest retained stamp, which the new event would evict — happened
// before `now - window`.  That is the exact sliding-window answer (not a
// bucketed approximation): admitting the event makes it the limit-th event
// of the trailing window only if the evicted one has aged out.
//
// O(1) per decision, O(limit) memory, no background bookkeeping — cheap
// enough for the whtd daemon to keep one per client slot and consult on
// every request (daemon.cpp), and standalone enough to reuse anywhere a
// per-key budget is needed.  Not thread-safe: one limiter belongs to one
// decision stream (whtd's are all consulted from the single service
// thread).  Timestamps are caller-supplied nanoseconds, so tests drive it
// with a fake clock.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace whtlab::ipc {

class RateLimiter {
 public:
  /// `limit` admissions per trailing `window_ns` nanoseconds.  limit == 0
  /// disables the limiter (everything admits) — the daemon's "no rate
  /// limit configured" representation.
  explicit RateLimiter(std::size_t limit = 0,
                       std::uint64_t window_ns = 1000000000ULL)
      : limit_(limit), window_ns_(window_ns), stamps_(limit, 0) {}

  /// Admits (and records) the event at `now_ns`, or rejects it.  Rejected
  /// events are NOT recorded: a client hammering past its budget does not
  /// push its own window forward and starve itself once it slows down.
  bool try_acquire(std::uint64_t now_ns) {
    if (limit_ == 0) return true;
    const std::uint64_t oldest = stamps_[next_];
    // Age via subtraction, not `now < oldest + window`: the addition can
    // wrap near the top of the clock's range and admit a full window's
    // worth of extra events at the rollover boundary.  Modular subtraction
    // gives the true elapsed time for any monotonic now >= oldest.
    if (admitted_ >= limit_ && now_ns - oldest < window_ns_) return false;
    stamps_[next_] = now_ns;
    next_ = (next_ + 1) % limit_;
    if (admitted_ < limit_) ++admitted_;
    return true;
  }

  /// Forgets all history (slot reclaimed / handed to a new client).
  void reset() {
    next_ = 0;
    admitted_ = 0;
    stamps_.assign(stamps_.size(), 0);
  }

  std::size_t limit() const { return limit_; }
  std::uint64_t window_ns() const { return window_ns_; }

 private:
  std::size_t limit_;
  std::uint64_t window_ns_;
  std::vector<std::uint64_t> stamps_;  ///< circular: next_ = oldest retained
  std::size_t next_ = 0;
  std::size_t admitted_ = 0;  ///< saturates at limit_
};

}  // namespace whtlab::ipc
