#include "ipc/fuzz.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <thread>

#include "ipc/client.hpp"
#include "ipc/futex.hpp"
#include "ipc/protocol.hpp"
#include "ipc/shm.hpp"
#include "util/rng.hpp"

namespace whtlab::ipc {

namespace {

/// The fuzzer's view of one claimed slot: the cell, its arena, and the
/// generation + counter it would need to speak the protocol honestly (so it
/// can interleave well-formed requests between the hostile ones — a real
/// byzantine peer is at its worst when it almost behaves).
struct Tenancy {
  SlotShared* cell = nullptr;
  double* arena = nullptr;
  std::uint64_t generation = 0;
  std::uint32_t counter = 0;
  int index = -1;
};

/// Protocol-legal claim of any free slot (the same CAS dance the client
/// library does).  Returns false when every slot is taken.
bool claim_slot(void* base, const Layout& layout, Tenancy& t) {
  for (std::uint32_t s = 0; s < layout.slot_count; ++s) {
    SlotShared* cell = layout.slot(base, s);
    std::uint32_t expected = kFree;
    if (!cell->state.compare_exchange_strong(expected, kClaimed,
                                             std::memory_order_acq_rel)) {
      continue;
    }
    t.cell = cell;
    t.arena = layout.arena(base, s);
    t.generation =
        cell->generation.fetch_add(1, std::memory_order_acq_rel) + 1;
    t.counter = 0;
    t.index = static_cast<int>(s);
    cell->pid.store(static_cast<std::uint32_t>(::getpid()),
                    std::memory_order_release);
    cell->requests.reset();
    cell->responses.reset();
    cell->state.store(kActive, std::memory_order_release);
    return true;
  }
  return false;
}

void ring_doorbell(ControlHeader* hdr) {
  hdr->doorbell.fetch_add(1, std::memory_order_release);
  futex_wake_all(hdr->doorbell);
}

}  // namespace

FuzzReport run_byzantine_client(const FuzzOptions& options) {
  if (!Client::wait_for_daemon(options.endpoint, options.wait_ms)) {
    throw std::runtime_error("ipc::fuzz: no daemon at '" + options.endpoint +
                             "' within wait_ms");
  }
  Shm shm = Shm::open(shm_name_for(options.endpoint));
  if (shm.size() < sizeof(ControlHeader)) {
    throw std::runtime_error("ipc::fuzz: runt segment");
  }
  ControlHeader* hdr = static_cast<ControlHeader*>(shm.data());
  Layout layout;
  layout.slot_count = hdr->slot_count;
  layout.arena_doubles = hdr->arena_doubles;
  if (shm.size() < layout.total_bytes()) {
    throw std::runtime_error("ipc::fuzz: truncated segment");
  }

  FuzzReport report;
  util::Rng rng(options.seed);
  Tenancy t;
  // The first claim may race honest clients booting alongside; retry
  // briefly rather than failing the harness.
  const std::uint64_t claim_deadline = monotonic_ns() + 2000000000ULL;
  while (!claim_slot(shm.data(), layout, t)) {
    if (monotonic_ns() >= claim_deadline) {
      throw std::runtime_error("ipc::fuzz: no free slot to claim");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  report.slot = t.index;

  const auto hostile_u64 = [&]() -> std::uint64_t {
    switch (rng.below(4)) {
      case 0: return 0;
      case 1: return rng.next();  // full-range garbage
      case 2: return std::numeric_limits<std::uint64_t>::max() -
                     rng.below(1024);
      default: return rng.below(1u << 20);
    }
  };

  // A request the daemon should accept — the "almost behaves" baseline the
  // hostile shapes mutate away from.
  const auto sane_request = [&]() {
    Request r;
    r.seq = (t.generation << 32) | std::uint64_t{++t.counter};
    r.n = 1 + static_cast<std::uint32_t>(rng.below(6));  // tiny: fast serve
    r.count = 1;
    r.offset = 0;
    r.deadline_ns = 0;
    return r;
  };

  for (std::uint64_t op = 0;
       op < options.ops &&
       hdr->shutdown.load(std::memory_order_acquire) == 0;
       ++op) {
    ++report.ops_applied;
    switch (rng.below(13)) {
      case 0: {  // malformed shape: n beyond the cap, incl. shift-UB range
        Request r = sane_request();
        const std::uint32_t picks[] = {0u, 31u, 63u, 64u, 65u, 127u,
                                       static_cast<std::uint32_t>(rng.next())};
        r.n = picks[rng.below(7)];
        if (t.cell->requests.try_push(r)) ++report.requests_pushed;
        ring_doorbell(hdr);
        break;
      }
      case 1: {  // malformed count / offset: outside or overflowing the arena
        Request r = sane_request();
        r.count = static_cast<std::uint32_t>(hostile_u64());
        r.offset = hostile_u64();
        if (t.cell->requests.try_push(r)) ++report.requests_pushed;
        ring_doorbell(hdr);
        break;
      }
      case 2: {  // seq games: wrong generation, replayed or rewound counter
        Request r = sane_request();
        switch (rng.below(3)) {
          case 0: r.seq = rng.next(); break;                    // random gen
          case 1: r.seq = (t.generation << 32) | t.counter; break;  // replay
          default:
            r.seq = (t.generation << 32) |
                    (t.counter > 2 ? t.counter - 2 : 0);  // rewind
        }
        if (t.cell->requests.try_push(r)) ++report.requests_pushed;
        ring_doorbell(hdr);
        break;
      }
      case 3: {  // expired deadline: valid shape, dead on arrival
        Request r = sane_request();
        r.deadline_ns = 1 + rng.below(1000);  // epoch of the monotonic clock
        if (t.cell->requests.try_push(r)) ++report.requests_pushed;
        ring_doorbell(hdr);
        break;
      }
      case 4:  // scribble own request-ring cursors (tail = producer word)
        t.cell->requests.tail.store(static_cast<std::uint32_t>(rng.next()),
                                    std::memory_order_release);
        ring_doorbell(hdr);
        break;
      case 5:
        t.cell->requests.head.store(static_cast<std::uint32_t>(rng.next()),
                                    std::memory_order_release);
        break;
      case 6:  // scribble own response-ring cursors
        t.cell->responses.head.store(static_cast<std::uint32_t>(rng.next()),
                                     std::memory_order_release);
        t.cell->responses.tail.store(static_cast<std::uint32_t>(rng.next()),
                                     std::memory_order_release);
        break;
      case 7: {  // scribble raw ring payload slots
        Request garbage;
        garbage.seq = rng.next();
        garbage.n = static_cast<std::uint32_t>(rng.next());
        garbage.count = static_cast<std::uint32_t>(rng.next());
        garbage.offset = rng.next();
        garbage.deadline_ns = rng.next();
        t.cell->requests.slots[rng.below(kRingDepth)] = garbage;
        break;
      }
      case 8:  // scribble own slot header words: state / pid / generation
        switch (rng.below(3)) {
          case 0:
            t.cell->state.store(static_cast<std::uint32_t>(rng.below(8)),
                                std::memory_order_release);
            break;
          case 1:
            t.cell->pid.store(rng.below(2) == 0
                                  ? 0u
                                  : static_cast<std::uint32_t>(rng.next()),
                              std::memory_order_release);
            break;
          default:
            t.cell->generation.store(rng.next(), std::memory_order_release);
        }
        break;
      case 9:  // scribble the advisory credits word (daemon must not care)
        t.cell->credits.store(rng.next(), std::memory_order_relaxed);
        break;
      case 10: {  // poison own arena: NaN/Inf/garbage where inputs live
        const std::uint64_t start = rng.below(layout.arena_doubles);
        const std::uint64_t len =
            std::min<std::uint64_t>(1 + rng.below(256),
                                    layout.arena_doubles - start);
        for (std::uint64_t i = 0; i < len; ++i) {
          switch (rng.below(3)) {
            case 0: t.arena[start + i] = std::nan(""); break;
            case 1:
              t.arena[start + i] =
                  std::numeric_limits<double>::infinity();
              break;
            default:
              t.arena[start + i] = rng.uniform(-1e300, 1e300);
          }
        }
        break;
      }
      case 11:  // spurious doorbell storm (wake with nothing to serve)
        ring_doorbell(hdr);
        break;
      default: {  // drain responses; recover tenancy if we were evicted
        // Bounded drain: the fuzzer may have scribbled its own response
        // cursors, and an unchecked pop loop on a corrupt ring "contains"
        // up to 2^32 garbage elements — the harness would spin for minutes
        // draining its own lie.  Depth pops per op is all a sane ring holds.
        Response response;
        for (std::uint32_t i = 0; i < kRingDepth; ++i) {
          if (!t.cell->responses.try_pop(response)) break;
          ++report.responses_seen;
        }
        if (t.cell->state.load(std::memory_order_acquire) != kActive ||
            t.cell->generation.load(std::memory_order_acquire) !=
                t.generation) {
          // The daemon struck us out (or swept our scribbled pid).  A real
          // attacker would just reconnect — so does the fuzzer, legally.
          if (claim_slot(shm.data(), layout, t)) ++report.reclaims_survived;
        }
        break;
      }
    }
    if (options.op_delay_us != 0) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(options.op_delay_us));
    }
  }
  // Exit WITHOUT releasing the slot: the corpse (scribbled pid and all) is
  // the sweep's problem, and sweeping it is part of what the fuzz proves.
  return report;
}

}  // namespace whtlab::ipc
