// The daemon-side trust boundary for client-controlled protocol state.
//
// Every field a whtd client writes — ring cursors, request n/count/offset,
// seq stamps, slot header words — lives in a shm segment that any connected
// process can scribble at will, so the daemon must treat all of it as
// hostile input.  The discipline is copy-then-validate: the service loop
// snapshots each client-writable value into daemon-local memory exactly
// once (the checked ring pop copies the whole Request by value), validates
// the SNAPSHOT against the slot's Layout-derived bounds, and never re-reads
// the shared field after the verdict — there is no window for the client to
// swap a validated value for a hostile one (TOCTOU).
//
// Verdict policy (daemon.cpp):
//   * kStaleGeneration — a previous tenant's late push racing the reclaim;
//     expected during normal slot churn, dropped silently (not hostile).
//   * kBadShape / kSeqOrder — states the shipped client library can never
//     produce, i.e. proof of a buggy or byzantine peer: answered with the
//     typed kProtocolError, counted, and struck; repeat offenders are
//     evicted (generation bump + slot reclaim) so one bad process cannot
//     keep the daemon busy refuting garbage.
//
// As with network ingress validation, the boundary's job is blast-radius
// control: one bad peer costs one slot, never the shared daemon.
#pragma once

#include <cstdint>

#include "ipc/protocol.hpp"

namespace whtlab::ipc {

/// Daemon-local bounds a request snapshot is checked against.  Derived from
/// DaemonOptions/Layout at startup — never from the shared segment, which
/// clients can rewrite.
struct SlotBounds {
  std::uint64_t arena_doubles = 0;  ///< the slot's staging arena span
  std::uint32_t max_n = 30;         ///< plannable size cap (kMaxRequestN)
};

/// The boundary's verdict for one popped request snapshot.
enum class Verdict : std::uint8_t {
  kAccept = 0,
  kStaleGeneration,  ///< seq's generation is not the slot's — drop silently
  kBadShape,         ///< n/count/offset outside the arena span → kProtocolError
  kSeqOrder,         ///< seq counter not strictly increasing → kProtocolError
};

const char* to_string(Verdict verdict);

/// Validates a daemon-local Request snapshot against `bounds` for the slot
/// currently at `generation`, with `last_counter` the highest seq counter
/// already consumed this generation (0 = none yet).
///
/// Checks, in order (each on the snapshot only):
///   * generation: seq's high half must equal the slot generation's low 32,
///   * n in [1, max_n] — checked BEFORE any 1<<n is computed, so a hostile
///     n >= 64 can never reach undefined-behavior shift territory,
///   * count >= 1 and count * 2^n <= arena_doubles (division form: no
///     overflow for any hostile count),
///   * offset <= arena_doubles - count * 2^n (the staged extent lies fully
///     inside this slot's arena — the daemon will execute in place there),
///   * seq counter strictly greater than last_counter (replay/rewind proof).
Verdict validate_request(const Request& snapshot, std::uint64_t generation,
                         std::uint32_t last_counter, const SlotBounds& bounds);

/// True when the snapshot carries a deadline that already passed: the
/// shed-before-execute predicate.  A zero deadline means "none".  Any
/// hostile garbage value either sheds (typed kTimeout) or executes — both
/// are safe answers.
inline bool request_expired(const Request& snapshot, std::uint64_t now_ns) {
  return snapshot.deadline_ns != 0 && now_ns > snapshot.deadline_ns;
}

/// Per-slot strike ledger: counts trust-boundary violations and answers
/// whether the offender has earned eviction.  limit == 0 means "count but
/// never evict".  Reset whenever the slot changes tenant.
class StrikeCounter {
 public:
  explicit StrikeCounter(std::uint32_t limit = 0) : limit_(limit) {}

  /// Records one violation; true when the strike crosses the eviction
  /// threshold (exactly once per threshold crossing — the caller evicts,
  /// which resets the ledger via the generation change).
  bool strike() {
    ++strikes_;
    return limit_ != 0 && strikes_ >= limit_;
  }

  void reset() { strikes_ = 0; }
  std::uint64_t strikes() const { return strikes_; }
  std::uint32_t limit() const { return limit_; }

 private:
  std::uint32_t limit_;
  std::uint64_t strikes_ = 0;
};

}  // namespace whtlab::ipc
