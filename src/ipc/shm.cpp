#include "ipc/shm.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace whtlab::ipc {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error("ipc: " + what + ": " + std::strerror(errno));
}

}  // namespace

Shm::Shm(Shm&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      name_(std::move(other.name_)) {}

Shm& Shm::operator=(Shm&& other) noexcept {
  if (this != &other) {
    this->~Shm();
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
    name_ = std::move(other.name_);
  }
  return *this;
}

Shm::~Shm() {
  if (data_ != nullptr) ::munmap(data_, size_);
  data_ = nullptr;
}

Shm Shm::create(const std::string& name, std::size_t bytes) {
  const int fd = ::shm_open(name.c_str(), O_CREAT | O_EXCL | O_RDWR, 0666);
  if (fd < 0) throw_errno("shm_open(create " + name + ")");
  if (::ftruncate(fd, static_cast<off_t>(bytes)) != 0) {
    ::close(fd);
    ::shm_unlink(name.c_str());
    throw_errno("ftruncate " + name);
  }
  void* map =
      ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);  // the mapping keeps the segment alive; the fd is not needed
  if (map == MAP_FAILED) {
    ::shm_unlink(name.c_str());
    throw_errno("mmap " + name);
  }
  Shm shm;
  shm.data_ = map;
  shm.size_ = bytes;
  shm.name_ = name;
  return shm;
}

Shm Shm::open(const std::string& name) {
  const int fd = ::shm_open(name.c_str(), O_RDWR, 0);
  if (fd < 0) throw_errno("shm_open(" + name + ")");
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    throw_errno("fstat " + name);
  }
  const auto bytes = static_cast<std::size_t>(st.st_size);
  void* map =
      ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);
  if (map == MAP_FAILED) throw_errno("mmap " + name);
  Shm shm;
  shm.data_ = map;
  shm.size_ = bytes;
  shm.name_ = name;
  return shm;
}

bool Shm::exists(const std::string& name) {
  const int fd = ::shm_open(name.c_str(), O_RDONLY, 0);
  if (fd < 0) return false;
  ::close(fd);
  return true;
}

bool Shm::unlink(const std::string& name) {
  return ::shm_unlink(name.c_str()) == 0;
}

std::string shm_name_for(const std::string& endpoint) {
  if (endpoint.empty() || endpoint.find('/') != std::string::npos) {
    throw std::invalid_argument("ipc: endpoint name must be non-empty and "
                                "slash-free: '" + endpoint + "'");
  }
  return "/whtlab." + endpoint;
}

}  // namespace whtlab::ipc
