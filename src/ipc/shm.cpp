#include "ipc/shm.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "util/fault.hpp"

namespace whtlab::ipc {

namespace {

namespace fault = util::fault;

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error("ipc: " + what + ": " + std::strerror(errno));
}

}  // namespace

Shm::Shm(Shm&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      name_(std::move(other.name_)) {}

Shm& Shm::operator=(Shm&& other) noexcept {
  // Swap, don't destroy-in-place: `other`'s destructor unmaps our previous
  // mapping.  (The old explicit ~Shm() call ended `name_`'s lifetime and
  // then assigned into the dead string — a double free the first time a
  // long-named mapping was replaced, e.g. on client reconnect.)
  if (this != &other) {
    std::swap(data_, other.data_);
    std::swap(size_, other.size_);
    std::swap(name_, other.name_);
  }
  return *this;
}

Shm::~Shm() {
  // The unmap fault simulates a leaked mapping (a crashed unmapper) without
  // UB: the pages stay mapped for the process lifetime.  Never armed outside
  // leak-handling tests.
  if (data_ != nullptr &&
      !(fault::enabled() && fault::point("ipc.shm.unmap"))) {
    ::munmap(data_, size_);
  }
  data_ = nullptr;
}

Shm Shm::create(const std::string& name, std::size_t bytes) {
  if (fault::enabled() && fault::point("ipc.shm.create")) {
    errno = ENOSPC;
    throw_errno("shm_open(create " + name + ") [fault injected]");
  }
  const int fd = ::shm_open(name.c_str(), O_CREAT | O_EXCL | O_RDWR, 0666);
  if (fd < 0) throw_errno("shm_open(create " + name + ")");
  if (::ftruncate(fd, static_cast<off_t>(bytes)) != 0) {
    ::close(fd);
    ::shm_unlink(name.c_str());
    throw_errno("ftruncate " + name);
  }
  void* map =
      ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);  // the mapping keeps the segment alive; the fd is not needed
  if (map == MAP_FAILED) {
    ::shm_unlink(name.c_str());
    throw_errno("mmap " + name);
  }
  Shm shm;
  shm.data_ = map;
  shm.size_ = bytes;
  shm.name_ = name;
  return shm;
}

Shm Shm::open(const std::string& name) {
  if (fault::enabled() && fault::point("ipc.shm.map")) {
    errno = ENOMEM;
    throw_errno("mmap " + name + " [fault injected]");
  }
  const int fd = ::shm_open(name.c_str(), O_RDWR, 0);
  if (fd < 0) throw_errno("shm_open(" + name + ")");
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    throw_errno("fstat " + name);
  }
  const auto bytes = static_cast<std::size_t>(st.st_size);
  void* map =
      ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);
  if (map == MAP_FAILED) throw_errno("mmap " + name);
  Shm shm;
  shm.data_ = map;
  shm.size_ = bytes;
  shm.name_ = name;
  return shm;
}

Shm Shm::open_readonly(const std::string& name) {
  const int fd = ::shm_open(name.c_str(), O_RDONLY, 0);
  if (fd < 0) throw_errno("shm_open(ro " + name + ")");
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    throw_errno("fstat " + name);
  }
  const auto bytes = static_cast<std::size_t>(st.st_size);
  void* map = ::mmap(nullptr, bytes, PROT_READ, MAP_SHARED, fd, 0);
  ::close(fd);
  if (map == MAP_FAILED) throw_errno("mmap(ro) " + name);
  Shm shm;
  shm.data_ = map;
  shm.size_ = bytes;
  shm.name_ = name;
  return shm;
}

bool Shm::exists(const std::string& name) {
  const int fd = ::shm_open(name.c_str(), O_RDONLY, 0);
  if (fd < 0) return false;
  ::close(fd);
  return true;
}

bool Shm::unlink(const std::string& name) {
  return ::shm_unlink(name.c_str()) == 0;
}

std::string shm_name_for(const std::string& endpoint) {
  if (endpoint.empty() || endpoint.find('/') != std::string::npos) {
    throw std::invalid_argument("ipc: endpoint name must be non-empty and "
                                "slash-free: '" + endpoint + "'");
  }
  return "/whtlab." + endpoint;
}

}  // namespace whtlab::ipc
