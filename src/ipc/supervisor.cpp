#include "ipc/supervisor.hpp"

#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <exception>
#include <thread>

#include "api/engine.hpp"
#include "ipc/shm.hpp"

namespace whtlab::ipc {

namespace {

/// serve()'s shutdown request: the signal number, 0 while serving.
std::atomic<int> g_serve_signal{0};
void on_serve_signal(int sig) {
  g_serve_signal.store(sig, std::memory_order_relaxed);
}

/// run_supervisor()'s pending signals.
std::atomic<int> g_super_term{0};
std::atomic<int> g_super_hup{0};
void on_super_term(int sig) {
  g_super_term.store(sig, std::memory_order_relaxed);
}
void on_super_hup(int) { g_super_hup.store(1, std::memory_order_relaxed); }

void print_stats(Daemon& daemon) {
  std::printf("whtd: %s\n", to_string(daemon.stats()).c_str());
  // The same snapshot the shm stats page exports (whtd_stat renders it out
  // of process): one line per live (n, backend, shape) series.
  for (const auto& s : daemon.engine().telemetry_snapshot()) {
    if (s.stats.count == 0) continue;
    std::printf("whtd: telemetry n=%d backend=%s shape=%s count=%llu "
                "mean=%.0f p50=%.0f p99=%.0f\n",
                s.n, s.backend.c_str(), s.batch ? "batch" : "single",
                static_cast<unsigned long long>(s.stats.count),
                s.stats.mean(), s.stats.percentile(0.50),
                s.stats.percentile(0.99));
  }
  std::fflush(stdout);
}

bool write_byte(int fd, char byte) {
  ssize_t wrote;
  do {
    wrote = ::write(fd, &byte, 1);
  } while (wrote < 0 && errno == EINTR);
  return wrote == 1;
}

/// Reads the single handshake byte, riding out EINTR.  0 on EOF/error.
char read_byte(int fd) {
  char byte = 0;
  ssize_t got;
  do {
    got = ::read(fd, &byte, 1);
  } while (got < 0 && errno == EINTR);
  return got == 1 ? byte : 0;
}

}  // namespace

void write_pid_file(const std::string& path, pid_t pid) {
  if (path.empty()) return;
  // tmp + rename: a kill script that reads mid-update sees either the old
  // complete pid or the new complete pid, never a torn or empty file.
  const std::string temp = path + ".tmp." + std::to_string(::getpid());
  std::FILE* f = std::fopen(temp.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "whtd: cannot write pid file %s\n", temp.c_str());
    return;
  }
  std::fprintf(f, "%d\n", static_cast<int>(pid));
  std::fclose(f);
  if (std::rename(temp.c_str(), path.c_str()) != 0) {
    std::remove(temp.c_str());
    std::fprintf(stderr, "whtd: cannot rename pid file onto %s\n",
                 path.c_str());
  }
}

void remove_pid_file(const std::string& path) {
  if (!path.empty()) std::remove(path.c_str());
}

std::int64_t heartbeat_age_ms(const std::string& endpoint) {
  try {
    // Read-only mapping: the watchdog is a pure observer — it must not be
    // *able* to perturb the protocol state it judges.
    const Shm probe = Shm::open_readonly(shm_name_for(endpoint));
    if (probe.size() < sizeof(ControlHeader)) return -1;
    const auto* hdr = static_cast<const ControlHeader*>(probe.data());
    if (hdr->magic != kMagic) return -1;
    const std::uint64_t hb = hdr->heartbeat_ns.load(std::memory_order_relaxed);
    if (hb == 0) return -1;  // service loop not entered yet
    const std::uint64_t now = monotonic_ns();
    return now <= hb ? 0 : static_cast<std::int64_t>((now - hb) / 1000000ULL);
  } catch (const std::exception&) {
    return -1;
  }
}

int serve(const DaemonOptions& options, const ServeOptions& serve_options,
          int ready_fd, int go_fd) {
  g_serve_signal.store(0, std::memory_order_relaxed);
  std::signal(SIGINT, on_serve_signal);
  std::signal(SIGTERM, on_serve_signal);
  std::signal(SIGHUP, SIG_IGN);  // rolling restarts are the supervisor's job
  try {
    Daemon daemon(options);
    if (serve_options.prewarm) {
      // Pay the first-touch planning stalls before taking traffic — and
      // before reporting readiness: the supervisor only drains the
      // incumbent once this successor can serve warm.
      const std::size_t built = daemon.prewarm();
      std::fprintf(stderr, "whtd: prewarmed %zu transform(s) from %s\n",
                   built, options.engine.wisdom_file.empty()
                              ? "(no wisdom file)"
                              : options.engine.wisdom_file.c_str());
    }
    if (ready_fd >= 0) {
      write_byte(ready_fd, 'R');
      ::close(ready_fd);
    }
    if (options.standby) {
      // Wait for the go byte: the supervisor sends it after SIGTERMing the
      // incumbent, whose kDraining publication satisfies promote()'s cede
      // condition.  EOF means the handoff was cancelled — bow out quietly.
      if (go_fd < 0 || read_byte(go_fd) != 'G') {
        if (go_fd >= 0) ::close(go_fd);
        std::fprintf(stderr, "whtd: handoff cancelled before takeover\n");
        return 3;
      }
      ::close(go_fd);
      daemon.promote(serve_options.promote_wait_ms);
      std::fprintf(stderr, "whtd: promoted onto %s (epoch %llu)\n",
                   daemon.shm_name().c_str(),
                   static_cast<unsigned long long>(daemon.epoch()));
    }
    daemon.start();
    write_pid_file(serve_options.pid_file, ::getpid());

    std::fprintf(stderr, "whtd: serving %s (slots=%u arena=%llu doubles)\n",
                 daemon.shm_name().c_str(), options.slots,
                 static_cast<unsigned long long>(options.arena_doubles));
    if (serve_options.once_ready) {
      std::printf("READY\n");
      std::fflush(stdout);
    }

    auto last_stats = std::chrono::steady_clock::now();
    while (g_serve_signal.load(std::memory_order_relaxed) == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      if (serve_options.stats) {
        const auto now = std::chrono::steady_clock::now();
        if (now - last_stats >=
            std::chrono::milliseconds(serve_options.stats_interval_ms)) {
          print_stats(daemon);
          last_stats = now;
        }
      }
    }

    const int sig = g_serve_signal.load(std::memory_order_relaxed);
    if (sig == SIGTERM) {
      // The planned-restart path: stop admitting (typed kDraining answers),
      // finish in-flight work, wait for clients to consume their answers,
      // flush wisdom — all inside the drain budget — then exit.  SIGINT
      // below skips straight to stop() for the impatient.
      std::fprintf(stderr, "whtd: SIGTERM, draining (budget %llu ms)\n",
                   static_cast<unsigned long long>(options.drain_ms));
      daemon.drain();
      daemon.wait_drained(options.drain_ms + 2000);
    } else {
      std::fprintf(stderr, "whtd: signal %d, stopping\n", sig);
    }
    daemon.stop();
    print_stats(daemon);
    std::fprintf(stderr, "whtd: engine %s\n",
                 api::to_string(daemon.engine().stats()).c_str());
    remove_pid_file(serve_options.pid_file);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "whtd: %s\n", e.what());
    return 1;
  }
  return 0;
}

namespace {

/// Forks one serving child.  `standby` children get the handoff pipes and
/// bind the staging segment.  reload() runs INSIDE the child, so a rolling
/// restart picks up environment/config changes.
pid_t spawn_child(const SupervisorOptions& options, bool standby,
                  int ready_fd, int go_fd) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  // Child: single-threaded by construction (the supervisor never starts
  // threads); every thread is born inside serve().  Leave via _exit so a
  // failure cannot unwind into the supervisor's stack twice.
  std::signal(SIGHUP, SIG_DFL);
  int code = 1;
  try {
    DaemonOptions daemon_options =
        options.reload ? options.reload() : options.daemon;
    daemon_options.standby = standby;
    ServeOptions serve_options = options.child;
    serve_options.pid_file.clear();  // the supervisor owns the pid file
    code = serve(daemon_options, serve_options, ready_fd, go_fd);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "whtd: %s\n", e.what());
  }
  ::_exit(code);
}

/// Waits for the successor's readiness byte, watching for its early death.
bool await_ready(int ready_fd, pid_t successor, std::uint64_t wait_ms) {
  const std::uint64_t deadline = monotonic_ns() + wait_ms * 1000000ULL;
  for (;;) {
    struct pollfd pfd {};
    pfd.fd = ready_fd;
    pfd.events = POLLIN;
    const int rc = ::poll(&pfd, 1, 50);
    if (rc > 0) return read_byte(ready_fd) == 'R';
    int status = 0;
    if (::waitpid(successor, &status, WNOHANG) == successor) {
      std::fprintf(stderr,
                   "whtd[supervisor]: successor died before readiness\n");
      return false;
    }
    if (monotonic_ns() >= deadline) return false;
  }
}

std::uint64_t drain_grace_ms(const SupervisorOptions& options) {
  return options.drain_grace_ms != 0 ? options.drain_grace_ms
                                     : options.daemon.drain_ms + 2000;
}

/// SIGTERM, wait out the drain grace, SIGKILL if it overstays.  Returns
/// the child's exit status (0 for the SIGKILL fallback).
int stop_child(pid_t child, std::uint64_t grace_ms) {
  ::kill(child, SIGTERM);
  const std::uint64_t deadline = monotonic_ns() + grace_ms * 1000000ULL;
  int status = 0;
  while (monotonic_ns() < deadline) {
    if (::waitpid(child, &status, WNOHANG) == child) {
      return WIFEXITED(status) ? WEXITSTATUS(status) : 0;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ::kill(child, SIGKILL);
  ::waitpid(child, &status, 0);
  return 0;
}

}  // namespace

int run_supervisor(const SupervisorOptions& options) {
  g_super_term.store(0, std::memory_order_relaxed);
  g_super_hup.store(0, std::memory_order_relaxed);
  std::signal(SIGINT, on_super_term);
  std::signal(SIGTERM, on_super_term);
  std::signal(SIGHUP, on_super_hup);

  std::int64_t restarts = 0;
  pid_t child = spawn_child(options, /*standby=*/false, -1, -1);
  if (child < 0) {
    std::perror("whtd: fork");
    return 1;
  }
  std::fprintf(stderr, "whtd[supervisor]: daemon pid %d\n",
               static_cast<int>(child));
  write_pid_file(options.pid_file, child);
  std::uint64_t spawn_ns = monotonic_ns();

  for (;;) {
    if (g_super_term.load(std::memory_order_relaxed) != 0) {
      // Shutdown: the child gets the SIGTERM (graceful drain) and the
      // drain grace before the SIGKILL insurance.
      const int code = stop_child(child, drain_grace_ms(options));
      remove_pid_file(options.pid_file);
      return code;
    }

    if (g_super_hup.exchange(0, std::memory_order_relaxed) != 0) {
      // Rolling restart: successor BEFORE incumbent teardown.
      std::fprintf(stderr, "whtd[supervisor]: SIGHUP, rolling restart\n");
      int ready_pipe[2] = {-1, -1};
      int go_pipe[2] = {-1, -1};
      if (::pipe(ready_pipe) != 0 || ::pipe(go_pipe) != 0) {
        std::perror("whtd: pipe");
        if (ready_pipe[0] >= 0) {
          ::close(ready_pipe[0]);
          ::close(ready_pipe[1]);
        }
        continue;  // incumbent keeps serving
      }
      const pid_t next =
          spawn_child(options, /*standby=*/true, ready_pipe[1], go_pipe[0]);
      ::close(ready_pipe[1]);
      ::close(go_pipe[0]);
      if (next < 0) {
        std::perror("whtd: fork");
        ::close(ready_pipe[0]);
        ::close(go_pipe[1]);
        continue;
      }
      if (!await_ready(ready_pipe[0], next, options.handoff_ready_ms)) {
        // Not warm in time (or dead): abandon the handoff, keep the
        // incumbent.  Closing the go pipe tells a live successor to leave.
        std::fprintf(stderr,
                     "whtd[supervisor]: handoff aborted, keeping pid %d\n",
                     static_cast<int>(child));
        ::close(go_pipe[1]);
        ::close(ready_pipe[0]);
        ::kill(next, SIGKILL);
        ::waitpid(next, nullptr, 0);
        continue;
      }
      ::close(ready_pipe[0]);
      // Drain the incumbent FIRST: its kDraining publication both fast-
      // tracks client re-handshakes and satisfies the successor's cede
      // condition.  Then the go byte: the successor promotes onto the
      // canonical endpoint and serves while the predecessor finishes its
      // in-flight work on the old segment.
      ::kill(child, SIGTERM);
      write_byte(go_pipe[1], 'G');
      ::close(go_pipe[1]);
      write_pid_file(options.pid_file, next);
      const std::uint64_t grace = drain_grace_ms(options);
      const std::uint64_t reap_deadline = monotonic_ns() + grace * 1000000ULL;
      int status = 0;
      bool reaped = false;
      while (monotonic_ns() < reap_deadline) {
        if (::waitpid(child, &status, WNOHANG) == child) {
          reaped = true;
          break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
      if (!reaped) {
        std::fprintf(stderr,
                     "whtd[supervisor]: predecessor %d overstayed its "
                     "drain, killing\n",
                     static_cast<int>(child));
        ::kill(child, SIGKILL);
        ::waitpid(child, &status, 0);
      }
      child = next;
      spawn_ns = monotonic_ns();
      std::fprintf(stderr, "whtd[supervisor]: handoff complete, serving "
                           "pid %d\n",
                   static_cast<int>(child));
      continue;
    }

    int wait_status = 0;
    bool respawn = false;
    const pid_t done = ::waitpid(child, &wait_status, WNOHANG);
    if (done == child) {
      if (WIFEXITED(wait_status) && WEXITSTATUS(wait_status) == 0) {
        remove_pid_file(options.pid_file);
        return 0;  // clean voluntary exit: nothing to supervise
      }
      std::fprintf(stderr,
                   "whtd[supervisor]: daemon died (%s %d), restarting\n",
                   WIFSIGNALED(wait_status) ? "signal" : "status",
                   WIFSIGNALED(wait_status) ? WTERMSIG(wait_status)
                                            : WEXITSTATUS(wait_status));
      respawn = true;
    } else {
      // Wedge detection: a live child whose heartbeat went stale is as
      // gone as a dead one — replace it.  The boot grace period covers
      // segment creation + Engine construction + first loop entry.
      const std::int64_t age = heartbeat_age_ms(options.daemon.endpoint);
      const std::uint64_t up_ms = (monotonic_ns() - spawn_ns) / 1000000ULL;
      const bool booted = age >= 0;
      const bool wedged =
          (booted && age > options.wedge_ms) ||
          (!booted &&
           up_ms > static_cast<std::uint64_t>(options.wedge_ms) + 10000);
      if (wedged) {
        std::fprintf(stderr,
                     "whtd[supervisor]: daemon wedged (heartbeat %lld ms "
                     "stale), killing pid %d\n",
                     static_cast<long long>(age), static_cast<int>(child));
        ::kill(child, SIGKILL);
        ::waitpid(child, &wait_status, 0);
        respawn = true;
      }
    }
    if (!respawn) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      continue;
    }

    const std::uint64_t up_ms = (monotonic_ns() - spawn_ns) / 1000000ULL;
    if (up_ms >= options.stable_ms && restarts != 0) {
      // The dead child had proved itself: it served out the stability
      // window.  Its crash opens a fresh incident — budget and backoff
      // start over instead of compounding toward give-up forever.
      std::fprintf(stderr,
                   "whtd[supervisor]: %llu ms stable uptime, restart "
                   "budget reset\n",
                   static_cast<unsigned long long>(up_ms));
      restarts = 0;
    }
    restarts += 1;
    if (options.max_restarts > 0 && restarts > options.max_restarts) {
      std::fprintf(stderr, "whtd[supervisor]: %lld restarts exhausted\n",
                   static_cast<long long>(options.max_restarts));
      remove_pid_file(options.pid_file);
      return 1;
    }
    // Capped restart backoff so a daemon that dies on boot cannot spin the
    // supervisor hot.
    const std::int64_t backoff_ms = std::min<std::int64_t>(
        100 << std::min<std::int64_t>(restarts, 5), 2000);
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
    child = spawn_child(options, /*standby=*/false, -1, -1);
    if (child < 0) {
      std::perror("whtd: fork");
      remove_pid_file(options.pid_file);
      return 1;
    }
    std::fprintf(stderr, "whtd[supervisor]: daemon pid %d (restart %lld)\n",
                 static_cast<int>(child), static_cast<long long>(restarts));
    write_pid_file(options.pid_file, child);
    spawn_ns = monotonic_ns();
  }
}

}  // namespace whtlab::ipc
