#include "ipc/futex.hpp"

#include <chrono>
#include <thread>

#include "util/fault.hpp"

#if defined(__linux__)
#include <linux/futex.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <ctime>
#endif

namespace whtlab::ipc {

namespace {

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::this_thread::yield();
#endif
}

}  // namespace

#if defined(__linux__)

std::uint32_t futex_wait_changed(const std::atomic<std::uint32_t>& word,
                                 std::uint32_t expected,
                                 std::int64_t timeout_ns) {
  // The kernel re-checks *addr == expected under its own lock, so the load/
  // wait race is closed; EAGAIN means the word already changed.
  auto* addr = reinterpret_cast<const std::uint32_t*>(&word);
  struct timespec ts;
  struct timespec* tsp = nullptr;
  if (timeout_ns >= 0) {
    ts.tv_sec = static_cast<time_t>(timeout_ns / 1000000000LL);
    ts.tv_nsec = static_cast<long>(timeout_ns % 1000000000LL);
    tsp = &ts;
  }
  ::syscall(SYS_futex, addr, FUTEX_WAIT, expected, tsp, nullptr, 0);
  return word.load(std::memory_order_acquire);
}

void futex_wake_all(const std::atomic<std::uint32_t>& word) {
  auto* addr = reinterpret_cast<const std::uint32_t*>(&word);
  ::syscall(SYS_futex, addr, FUTEX_WAKE, INT32_MAX, nullptr, nullptr, 0);
}

#else  // sleep-poll fallback: same semantics, wakeup latency ~ the poll tick

std::uint32_t futex_wait_changed(const std::atomic<std::uint32_t>& word,
                                 std::uint32_t expected,
                                 std::int64_t timeout_ns) {
  const auto deadline =
      timeout_ns < 0 ? std::chrono::steady_clock::time_point::max()
                     : std::chrono::steady_clock::now() +
                           std::chrono::nanoseconds(timeout_ns);
  std::uint32_t value = word.load(std::memory_order_acquire);
  while (value == expected && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    value = word.load(std::memory_order_acquire);
  }
  return value;
}

void futex_wake_all(const std::atomic<std::uint32_t>&) {}

#endif

std::uint32_t spin_then_wait(const std::atomic<std::uint32_t>& word,
                             std::uint32_t expected, int spins,
                             std::int64_t timeout_ns) {
  // Injected spurious wakeup/timeout: the wait returns immediately with the
  // word unchanged — exactly what FUTEX_WAIT is allowed to do — so every
  // waiter's retry loop can be exercised on demand.
  if (util::fault::enabled() && util::fault::point("ipc.futex.wait")) {
    return word.load(std::memory_order_acquire);
  }
  for (int i = 0; i < spins; ++i) {
    const std::uint32_t value = word.load(std::memory_order_acquire);
    if (value != expected) return value;
    cpu_relax();
  }
  return futex_wait_changed(word, expected, timeout_ns);
}

}  // namespace whtlab::ipc
