#include "ipc/validate.hpp"

namespace whtlab::ipc {

const char* to_string(Verdict verdict) {
  switch (verdict) {
    case Verdict::kAccept: return "accept";
    case Verdict::kStaleGeneration: return "stale-generation";
    case Verdict::kBadShape: return "bad-shape";
    case Verdict::kSeqOrder: return "seq-order";
  }
  return "unknown";
}

Verdict validate_request(const Request& snapshot, std::uint64_t generation,
                         std::uint32_t last_counter, const SlotBounds& bounds) {
  if ((snapshot.seq >> 32) != (generation & 0xffffffffULL)) {
    return Verdict::kStaleGeneration;
  }
  // Shape: n gates everything else — 2^n is only ever computed after n is
  // known to be a sane shift amount.
  if (snapshot.n < 1 || snapshot.n > bounds.max_n) return Verdict::kBadShape;
  const std::uint64_t size = std::uint64_t{1} << snapshot.n;
  if (snapshot.count < 1 ||
      snapshot.count > bounds.arena_doubles / size) {
    return Verdict::kBadShape;
  }
  // count * size <= arena_doubles holds by the division check above, so the
  // subtraction cannot underflow and the multiply cannot wrap.
  if (snapshot.offset > bounds.arena_doubles - snapshot.count * size) {
    return Verdict::kBadShape;
  }
  // Seq counters advance monotonically within a generation (the client
  // library's make_seq), but they are 32-bit and a long-lived connection
  // legitimately wraps them — so "monotonic" is serial-number arithmetic
  // (RFC 1982 style): the new counter must be strictly AHEAD of the last
  // consumed one in modular space.  A rewind or replay (delta 0 or a
  // backwards half-space jump) is a protocol violation; skipping forward
  // only wastes the client's own numbering.
  const auto counter = static_cast<std::uint32_t>(snapshot.seq & 0xffffffffULL);
  const std::uint32_t ahead = counter - last_counter;
  if (ahead == 0 || ahead >= 0x80000000u) return Verdict::kSeqOrder;
  return Verdict::kAccept;
}

}  // namespace whtlab::ipc
