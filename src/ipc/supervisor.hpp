// whtd's process-lifecycle layer: supervised serving, graceful drain, and
// zero-downtime rolling restarts.
//
// Library, not binary, so the chaos tests drive the exact code `whtd
// --supervise` ships (fork a child, call run_supervisor) instead of a
// reimplementation.  Two entry points:
//
//   serve()           — one serving process: Daemon + prewarm + signal
//                       handling.  SIGTERM begins a graceful drain
//                       (daemon.hpp); SIGINT stops immediately.  Standby
//                       children additionally speak the handoff pipe
//                       protocol below before they start serving.
//
//   run_supervisor()  — the watchdog: serves in a forked child and
//                       * restarts it (capped backoff, restart budget)
//                         when it crashes, is SIGKILLed, or wedges —
//                         a budget that RESETS once a child has served
//                         stable_ms, so a long-healthy daemon's crash is
//                         a fresh incident, not part of a crash loop;
//                       * on SIGHUP executes a warm-standby handoff: fork
//                         the successor FIRST (standby segment, config and
//                         environment re-read in the child, Engine
//                         prewarmed from wisdom), wait for its readiness
//                         byte, only then SIGTERM the incumbent (drain)
//                         and send the successor its go byte — it promotes
//                         onto the canonical endpoint (the live predecessor
//                         finishes its in-flight work, then cedes by
//                         releasing the name at drain completion; epoch
//                         bump) and serves, warm.  Reconnect-enabled
//                         clients cross the restart with zero failures;
//                       * keeps --pid-file pointing at the *currently
//                         serving* child across every restart and handoff
//                         (atomic tmp+rename writes, unlinked on clean
//                         stop).
//
// Handoff pipe protocol (one byte each way): successor writes 'R' on the
// ready pipe after prewarm; supervisor writes 'G' on the go pipe after
// SIGTERMing the incumbent.  A closed pipe in either direction cancels the
// handoff — the incumbent keeps serving.
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <functional>
#include <string>

#include "ipc/daemon.hpp"

namespace whtlab::ipc {

/// Per-serving-process configuration (everything beyond DaemonOptions).
struct ServeOptions {
  bool prewarm = false;  ///< rebuild wisdom-recorded transforms before serving
  bool stats = false;    ///< print the shared-counter line periodically
  std::int64_t stats_interval_ms = 1000;
  bool once_ready = false;  ///< print READY on stdout once serving
  /// Pid file (atomic tmp+rename; unlinked on clean exit).  Leave empty
  /// under a supervisor — the supervisor owns the pid file and points it
  /// at whichever child currently serves.
  std::string pid_file;
  /// promote() bound for standby children: how long the successor waits
  /// for the predecessor to cede the canonical endpoint.
  std::uint64_t promote_wait_ms = 10000;
};

/// One serving process: construct the Daemon, prewarm, (standby: handshake
/// the handoff pipes, promote,) serve until signalled, drain/stop.  Runs
/// the calling process's lifetime — intended for main() or a forked child.
/// `ready_fd` / `go_fd` are the handoff pipes (-1 outside a handoff).
int serve(const DaemonOptions& options, const ServeOptions& serve_options,
          int ready_fd = -1, int go_fd = -1);

struct SupervisorOptions {
  DaemonOptions daemon;
  ServeOptions child;  ///< pid_file ignored — the supervisor owns it
  /// Re-reads configuration for every (re)spawned child, *inside* the
  /// child after fork — a rolling restart picks up environment and config
  /// changes.  Defaults to reusing `daemon` verbatim.
  std::function<DaemonOptions()> reload;
  std::string pid_file;  ///< tracks the currently serving child
  /// Heartbeat staleness that counts as wedged (live pid, dead loop).
  std::int64_t wedge_ms = 10000;
  /// Give up after this many *unstable* restarts (0 = never).  The count
  /// resets once a child has served stable_ms.
  std::int64_t max_restarts = 0;
  /// Serving uptime that proves a child stable: crossing it resets the
  /// restart budget and backoff.
  std::uint64_t stable_ms = 60000;
  /// How long a SIGHUP handoff waits for the successor's readiness byte
  /// (its construct + prewarm) before aborting the handoff and keeping the
  /// incumbent.
  std::uint64_t handoff_ready_ms = 30000;
  /// Grace for a SIGTERMed child to finish draining before SIGKILL;
  /// 0 = daemon.drain_ms + 2000.
  std::uint64_t drain_grace_ms = 0;
};

/// The watchdog loop (see file comment).  Returns the final child's exit
/// status on clean shutdown, 1 when the restart budget is exhausted.
/// Installs SIGINT/SIGTERM/SIGHUP handlers; call from a single-threaded
/// process (it forks).
int run_supervisor(const SupervisorOptions& options);

/// Atomic pid-file write: tmp + rename, so readers never see a torn or
/// empty file even mid-update.  Empty path = no-op.
void write_pid_file(const std::string& path, pid_t pid);
/// Removes the pid file (clean-stop path).  Empty path = no-op.
void remove_pid_file(const std::string& path);

/// Heartbeat staleness in ms for the endpoint's segment, or -1 when the
/// segment is missing/unreadable (daemon still booting — not a wedge).
std::int64_t heartbeat_age_ms(const std::string& endpoint);

}  // namespace whtlab::ipc
