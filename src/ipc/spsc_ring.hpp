// Single-producer / single-consumer ring for shared-memory message passing.
//
// The whtd protocol (protocol.hpp) gives every client slot two of these: a
// request ring the client produces into and the daemon consumes, and a
// response ring the other way around.  With exactly one writer and one
// reader per ring there is nothing to lock: `tail` is written only by the
// producer, `head` only by the consumer, and a release/acquire pair on each
// publishes the slot contents.  Both indices advance monotonically and are
// masked on use, so full/empty are distinguishable without a wasted slot.
//
// The struct is placed *inside* an mmap'd segment by the daemon (zeroed
// memory is a valid empty ring — no placement-new handshake needed) and
// reinterpreted by clients, so it must stay standard-layout and free of
// pointers.  `tail` doubles as the consumer's futex word: a consumer that
// saw tail == t parks on it (futex.hpp) and the producer wakes the word
// after publishing.
#pragma once

#include <atomic>
#include <cstdint>
#include <type_traits>

namespace whtlab::ipc {

template <typename T, std::uint32_t Depth>
struct SpscRing {
  static_assert(Depth > 0 && (Depth & (Depth - 1)) == 0,
                "ring depth must be a power of two");
  static_assert(std::is_trivially_copyable_v<T>,
                "ring payloads cross process boundaries raw");

  /// Producer cursor (and the consumer-side futex word).  Padded onto its
  /// own cache line so producer and consumer do not false-share.
  alignas(64) std::atomic<std::uint32_t> tail;
  /// Consumer cursor.
  alignas(64) std::atomic<std::uint32_t> head;
  alignas(64) T slots[Depth];

  static constexpr std::uint32_t depth() { return Depth; }

  /// Producer side.  False when the ring is full (consumer lagging Depth
  /// items); the item is not enqueued.
  bool try_push(const T& item) {
    const std::uint32_t t = tail.load(std::memory_order_relaxed);
    const std::uint32_t h = head.load(std::memory_order_acquire);
    if (t - h >= Depth) return false;
    slots[t & (Depth - 1)] = item;
    tail.store(t + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side.  False when empty.
  bool try_pop(T& out) {
    const std::uint32_t h = head.load(std::memory_order_relaxed);
    const std::uint32_t t = tail.load(std::memory_order_acquire);
    if (t == h) return false;
    out = slots[h & (Depth - 1)];
    head.store(h + 1, std::memory_order_release);
    return true;
  }

  std::uint32_t size() const {
    return tail.load(std::memory_order_acquire) -
           head.load(std::memory_order_acquire);
  }
  bool empty() const { return size() == 0; }

  /// Resets to empty.  Only valid while neither side is touching the ring —
  /// the slot-claim and dead-client-reclaim paths, where the claimant is
  /// provably the only toucher (protocol.hpp's slot state machine).
  void reset() {
    head.store(0, std::memory_order_relaxed);
    tail.store(0, std::memory_order_release);
  }
};

}  // namespace whtlab::ipc
