// Single-producer / single-consumer ring for shared-memory message passing.
//
// The whtd protocol (protocol.hpp) gives every client slot two of these: a
// request ring the client produces into and the daemon consumes, and a
// response ring the other way around.  With exactly one writer and one
// reader per ring there is nothing to lock: `tail` is written only by the
// producer, `head` only by the consumer, and a release/acquire pair on each
// publishes the slot contents.  Both indices advance monotonically and are
// masked on use, so full/empty are distinguishable without a wasted slot.
//
// The struct is placed *inside* an mmap'd segment by the daemon (zeroed
// memory is a valid empty ring — no placement-new handshake needed) and
// reinterpreted by clients, so it must stay standard-layout and free of
// pointers.  `tail` doubles as the consumer's futex word: a consumer that
// saw tail == t parks on it (futex.hpp) and the producer wakes the word
// after publishing.
#pragma once

#include <atomic>
#include <cstdint>
#include <type_traits>

namespace whtlab::ipc {

/// Outcome of the *checked* ring operations the daemon uses on rings whose
/// other side is an untrusted process.  The plain try_push/try_pop trust the
/// head/tail subtraction; a hostile or buggy peer that scribbles a cursor
/// word can make that delta exceed the ring capacity — an impossible state
/// under the protocol, and proof of corruption rather than of fullness or
/// emptiness.  The checked ops clamp the delta and report it as a typed
/// signal so the consumer can strike/evict the peer instead of spinning,
/// over-reading, or trusting garbage occupancy.
enum class RingOp : std::uint8_t {
  kOk = 0,
  kEmpty,    ///< pop: nothing published
  kFull,     ///< push: consumer lagging exactly Depth items (legal)
  kCorrupt,  ///< cursor delta exceeds the ring capacity — protocol violation
};

template <typename T, std::uint32_t Depth>
struct SpscRing {
  static_assert(Depth > 0 && (Depth & (Depth - 1)) == 0,
                "ring depth must be a power of two");
  static_assert(std::is_trivially_copyable_v<T>,
                "ring payloads cross process boundaries raw");

  /// Producer cursor (and the consumer-side futex word).  Padded onto its
  /// own cache line so producer and consumer do not false-share.
  alignas(64) std::atomic<std::uint32_t> tail;
  /// Consumer cursor.
  alignas(64) std::atomic<std::uint32_t> head;
  alignas(64) T slots[Depth];

  static constexpr std::uint32_t depth() { return Depth; }

  /// Producer side.  False when the ring is full (consumer lagging Depth
  /// items); the item is not enqueued.
  bool try_push(const T& item) {
    const std::uint32_t t = tail.load(std::memory_order_relaxed);
    const std::uint32_t h = head.load(std::memory_order_acquire);
    if (t - h >= Depth) return false;
    slots[t & (Depth - 1)] = item;
    tail.store(t + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side.  False when empty.
  bool try_pop(T& out) {
    const std::uint32_t h = head.load(std::memory_order_relaxed);
    const std::uint32_t t = tail.load(std::memory_order_acquire);
    if (t == h) return false;
    out = slots[h & (Depth - 1)];
    head.store(h + 1, std::memory_order_release);
    return true;
  }

  /// Checked producer: like try_push, but a cursor delta beyond Depth —
  /// impossible while both cursors are honestly maintained — is reported as
  /// kCorrupt instead of being treated as a full ring.  For producers whose
  /// consumer cursor lives in memory an untrusted process can scribble (the
  /// daemon publishing responses).
  RingOp try_push_checked(const T& item) {
    const std::uint32_t t = tail.load(std::memory_order_relaxed);
    const std::uint32_t h = head.load(std::memory_order_acquire);
    const std::uint32_t delta = t - h;
    if (delta > Depth) return RingOp::kCorrupt;
    if (delta == Depth) return RingOp::kFull;
    slots[t & (Depth - 1)] = item;
    tail.store(t + 1, std::memory_order_release);
    return RingOp::kOk;
  }

  /// Checked consumer: clamps the occupancy delta instead of trusting the
  /// subtraction.  `out` is a daemon-local COPY of the slot (copy first,
  /// then validate — the peer can keep scribbling the shared slot after the
  /// pop returns, but never the copy).
  RingOp try_pop_checked(T& out) {
    const std::uint32_t h = head.load(std::memory_order_relaxed);
    const std::uint32_t t = tail.load(std::memory_order_acquire);
    const std::uint32_t delta = t - h;
    if (delta > Depth) return RingOp::kCorrupt;
    if (delta == 0) return RingOp::kEmpty;
    out = slots[h & (Depth - 1)];
    head.store(h + 1, std::memory_order_release);
    return RingOp::kOk;
  }

  std::uint32_t size() const {
    return tail.load(std::memory_order_acquire) -
           head.load(std::memory_order_acquire);
  }
  bool empty() const { return size() == 0; }

  /// Resets to empty.  Only valid while neither side is touching the ring —
  /// the slot-claim and dead-client-reclaim paths, where the claimant is
  /// provably the only toucher (protocol.hpp's slot state machine).
  void reset() {
    head.store(0, std::memory_order_relaxed);
    tail.store(0, std::memory_order_release);
  }
};

}  // namespace whtlab::ipc
