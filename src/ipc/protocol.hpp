// The whtd shared-memory serving protocol: segment layout + message types.
//
// One named shm segment per serving endpoint holds everything daemon and
// clients exchange:
//
//   [ ControlHeader | Slot 0 | Slot 1 | ... | arena 0 | arena 1 | ... ]
//
// Each client slot is a SlotShared — claim state, a single-writer request
// ring (client -> daemon) and a single-writer response ring (daemon ->
// client) — plus a fixed per-slot staging arena of doubles at the back of
// the segment.  Requests never carry vector data: the client writes its
// vectors straight into its own arena and sends (offset, n, count); the
// daemon executes *in place* there and the client reads the spectrum back
// from the same memory.  Zero copies cross the process boundary.
//
// Slot lifecycle (the admission-control and crash-reclaim state machine):
//
//   kFree --CAS by client--> kClaimed --client wrote pid, reset rings-->
//   kActive --client release / daemon reclaim--> kFree
//
// The daemon only ever touches rings of kActive slots, so the claimant is
// provably alone while it resets them.  A pid-liveness sweep in the daemon
// frees slots whose owner died (kill(pid, 0) == ESRCH), resets their rings,
// and drops their in-flight requests — one crashed client can never wedge
// the daemon or leak its slot.  Slot generations disambiguate reuse: every
// claim bumps `generation`, request seq numbers embed it, and the daemon
// drops completions whose generation no longer matches (a response for a
// dead client must not leak into its successor's ring).
//
// Every struct here lives in shared memory: standard-layout, pointer-free,
// lock-free atomics only, and zero-initialized-is-valid (a fresh segment is
// kernel-zeroed).  `kVersion`/`kAbiTag` gate mismatched binaries at connect.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "ipc/spsc_ring.hpp"

namespace whtlab::ipc {

// --- typed serving errors ---------------------------------------------------

enum class Status : std::int32_t {
  kOk = 0,
  kServerFull,   ///< admission control: every client slot is claimed
  kThrottled,    ///< rate/credit budget exhausted — typed backpressure
  kTimeout,      ///< no response within the deadline (daemon overloaded?),
                 ///< or the request expired before execution (load shedding)
  kDaemonGone,   ///< daemon shut down, or its pid is no longer alive
  kBadRequest,   ///< client-side argument rejection (n/count/offset)
  kTooLarge,     ///< request does not fit the slot arena
  kExecError,    ///< execution threw inside the daemon
  kProtocolError,  ///< wire-level violation caught at the daemon's trust
                   ///< boundary (validate.hpp) — an honest client library
                   ///< never elicits this; repeat offenders are evicted
  kDraining,     ///< daemon is gracefully draining (planned restart): the
                 ///< request was not executed; re-handshake against the
                 ///< endpoint — a warm successor is taking over.  The typed
                 ///< answer carries a retry hint (Response::hint_ms).
};

const char* to_string(Status status);

// --- daemon lifecycle -------------------------------------------------------

/// The daemon lifecycle state machine, published in the control header so
/// clients, the supervisor, and ops tooling all see the same word:
///
///   kBooting --segment+Engine built--> kWarming --start()--> kServing
///     kServing --drain()/SIGTERM--> kDraining --in-flight done--> kStopped
///
/// A fresh (kernel-zeroed) segment reads kBooting.  kWarming covers wisdom
/// prewarming — a warm-standby successor sits here, against a staging
/// segment, until the supervisor promotes it.  kDraining means "alive,
/// finishing in-flight work, admitting nothing new": new submissions answer
/// the typed kDraining status and resilient clients re-handshake instead of
/// backing off.  kStopped is terminal (the shutdown flag follows shortly).
enum Lifecycle : std::uint32_t {
  kBooting = 0,
  kWarming = 1,
  kServing = 2,
  kDraining = 3,
  kStopped = 4,
};

const char* to_string(Lifecycle lifecycle);

/// Exception face of Status for the paths where failing is exceptional
/// (connect/handshake, staging).  The serving hot path (transform/wait)
/// returns Status instead — a throttled request is an answer, not a crash.
class Error : public std::runtime_error {
 public:
  Error(Status status, const std::string& what)
      : std::runtime_error(what), status_(status) {}
  Status status() const { return status_; }

 private:
  Status status_;
};

// --- wire messages ----------------------------------------------------------

struct Request {
  std::uint64_t seq = 0;     ///< (generation << 32) | client-local counter
  std::uint32_t n = 0;       ///< transform size log2
  std::uint32_t count = 0;   ///< vectors, packed contiguously
  std::uint64_t offset = 0;  ///< first double, relative to this slot's arena
  /// Absolute monotonic_ns() expiry for this request; 0 = no deadline.
  /// CLOCK_MONOTONIC is machine-wide, so daemon and clients share the
  /// timeline.  A request already past its deadline when the daemon would
  /// execute it is shed with kTimeout instead of burning cycles on an
  /// answer nobody is waiting for (overload degradation, daemon.hpp).
  std::uint64_t deadline_ns = 0;
};

struct Response {
  std::uint64_t seq = 0;
  std::int32_t status = 0;   ///< Status
  /// Retry hint in milliseconds, meaningful with kDraining: how soon the
  /// client should expect the successor daemon to own the endpoint (derived
  /// from the drain deadline).  0 = none.
  std::int32_t hint_ms = 0;
};

inline constexpr std::uint32_t kRingDepth = 64;

using RequestRing = SpscRing<Request, kRingDepth>;
using ResponseRing = SpscRing<Response, kRingDepth>;

// --- slot table -------------------------------------------------------------

enum SlotState : std::uint32_t {
  kFree = 0,
  kClaimed = 1,  ///< CAS won; pid/rings not yet published
  kActive = 2,   ///< serving
};

struct SlotShared {
  std::atomic<std::uint32_t> state;  ///< SlotState
  std::atomic<std::uint32_t> pid;    ///< owner, for the liveness sweep
  std::atomic<std::uint64_t> generation;  ///< bumped by every claim/eviction
  /// Advisory credit balance, published (daemon-written) after every
  /// admission decision when credit flow control is armed.  Clients may
  /// read it to pace themselves before hitting kThrottled; the *binding*
  /// balance lives in daemon-local memory (a client scribbling this word
  /// changes nothing about what the daemon admits).
  std::atomic<std::uint64_t> credits;
  RequestRing requests;    ///< client produces, daemon consumes
  ResponseRing responses;  ///< daemon produces, client consumes
};

// --- daemon stats, exported through the segment -----------------------------

/// Live serving counters the daemon maintains in the control header, so any
/// process that can map the segment (clients, `whtd --stats`, ops tooling)
/// reads a consistent-enough snapshot without a request round-trip.
struct SharedStats {
  std::atomic<std::uint64_t> requests;     ///< popped from request rings
  std::atomic<std::uint64_t> vectors;      ///< transforms executed
  std::atomic<std::uint64_t> throttled;    ///< rejected by the rate limiter
  std::atomic<std::uint64_t> bad_request;  ///< rejected by validation
  std::atomic<std::uint64_t> exec_errors;  ///< execution threw
  std::atomic<std::uint64_t> reclaimed;    ///< slots freed by the sweep
  std::atomic<std::uint64_t> dropped;      ///< completions with stale generation
  /// Trust-boundary + overload counters (PR 8).
  std::atomic<std::uint64_t> protocol_errors;  ///< wire violations (validate.hpp)
  std::atomic<std::uint64_t> evictions;    ///< slots evicted for repeat offense
  std::atomic<std::uint64_t> shed_expired;  ///< past-deadline requests shed
  std::atomic<std::uint64_t> credit_stalls;  ///< requests refused for credits
  /// Lifecycle counters (protocol v4).
  std::atomic<std::uint64_t> drained;        ///< graceful drains completed
  std::atomic<std::uint64_t> drain_aborted;  ///< drains cut off at the deadline
  std::atomic<std::uint64_t> drain_refused;  ///< requests answered kDraining
};

// --- control header ---------------------------------------------------------

inline constexpr std::uint64_t kMagic = 0x7768746c61622d69ULL;  // "whtlab-i"
inline constexpr std::uint32_t kVersion = 4;  // v4: lifecycle/handoff ABI rev

struct ControlHeader {
  std::uint64_t magic;
  std::uint32_t version;
  std::uint32_t abi;
  std::uint32_t slot_count;
  std::uint32_t ring_depth;
  std::uint64_t arena_doubles;   ///< per-slot staging capacity
  std::uint64_t rate_limit;      ///< admitted requests per window per client (0 = off)
  std::uint64_t rate_window_ns;  ///< the trailing window
  std::uint64_t timeout_ms;      ///< suggested client wait deadline
  /// Overload-control config, published for observability (the binding
  /// copies live in the daemon's DaemonOptions):
  std::uint64_t credit_limit;      ///< per-slot credit capacity (0 = off)
  std::uint64_t credit_window_ns;  ///< full-refill period of the bucket
  std::uint32_t shed_expired;      ///< 1 = deadline shedding armed
  std::uint32_t strike_limit;      ///< protocol strikes before eviction (0 = never)
  /// Drain budget published for observability (the binding copy lives in
  /// DaemonOptions): how long a SIGTERM'd daemon finishes in-flight work
  /// before aborting the drain.
  std::uint64_t drain_ms;
  std::atomic<std::uint32_t> daemon_pid;  ///< liveness anchor for clients
  std::atomic<std::uint32_t> shutdown;    ///< 1 = daemon is gone / going
  /// Daemon lifecycle word (Lifecycle).  Clients read it on attach (a
  /// draining daemon refuses new tenants with the typed kDraining) and on
  /// their liveness probes (drain short-circuits reconnect backoff).
  std::atomic<std::uint32_t> lifecycle;
  /// Endpoint generation: bumped every time a successor daemon takes the
  /// canonical endpoint over from a predecessor (warm-standby handoff or
  /// stale-segment takeover).  A fresh endpoint starts at 1.  Lets tests
  /// and ops tooling count handoffs without parsing logs.
  std::atomic<std::uint64_t> epoch;
  /// Transforms rebuilt from wisdom before this daemon started serving
  /// (Daemon::prewarm) — the "successor took over warm" proof.
  std::atomic<std::uint32_t> prewarmed;
  /// Doorbell the daemon parks on: clients bump-and-wake after every request
  /// push, so one futex word covers all slots (the daemon rescans rings on
  /// every wake — cheap, slot_count is small).
  std::atomic<std::uint32_t> doorbell;
  std::uint32_t reserved;
  /// Supervision heartbeat: the service loop stamps monotonic_ns() at least
  /// once per sweep period, so a watchdog (`whtd --supervise`) that maps the
  /// segment can tell a *wedged* daemon (live pid, stale heartbeat) from a
  /// busy one and restart it.  0 until the service loop first runs.
  std::atomic<std::uint64_t> heartbeat_ns;
  SharedStats stats;
};

/// Compile-time ABI fingerprint: both sides must agree on the shared struct
/// sizes or the mapping is garbage.  Checked against the header at connect.
inline constexpr std::uint32_t abi_tag() {
  return static_cast<std::uint32_t>(sizeof(SlotShared)) ^
         (static_cast<std::uint32_t>(sizeof(Request)) << 16) ^
         (static_cast<std::uint32_t>(sizeof(Response)) << 24) ^
         (static_cast<std::uint32_t>(sizeof(ControlHeader)) << 4);
}

static_assert(std::is_standard_layout_v<ControlHeader>);
static_assert(std::is_standard_layout_v<SlotShared>);
static_assert(std::atomic<std::uint32_t>::is_always_lock_free,
              "shm atomics must be address-free to work across processes");
static_assert(std::atomic<std::uint64_t>::is_always_lock_free,
              "shm atomics must be address-free to work across processes");

// --- segment layout ---------------------------------------------------------

/// Byte offsets of every region, derived from (slot_count, arena_doubles).
/// Both sides compute it from the header, so it is never serialized.
struct Layout {
  std::uint32_t slot_count = 0;
  std::uint64_t arena_doubles = 0;

  static constexpr std::size_t align64(std::size_t bytes) {
    return (bytes + 63) & ~std::size_t{63};
  }

  std::size_t slots_offset() const { return align64(sizeof(ControlHeader)); }
  std::size_t slot_offset(std::uint32_t slot) const {
    return slots_offset() + slot * align64(sizeof(SlotShared));
  }
  std::size_t arenas_offset() const { return slot_offset(slot_count); }
  std::size_t arena_offset(std::uint32_t slot) const {
    return arenas_offset() + slot * arena_doubles * sizeof(double);
  }
  std::size_t total_bytes() const { return arena_offset(slot_count); }

  ControlHeader* header(void* base) const {
    return static_cast<ControlHeader*>(base);
  }
  SlotShared* slot(void* base, std::uint32_t index) const {
    return reinterpret_cast<SlotShared*>(static_cast<char*>(base) +
                                         slot_offset(index));
  }
  double* arena(void* base, std::uint32_t index) const {
    return reinterpret_cast<double*>(static_cast<char*>(base) +
                                     arena_offset(index));
  }
};

// --- telemetry stats page ---------------------------------------------------
//
// A second, tiny, *observer-only* segment per endpoint
// ("/whtlab.<endpoint>.stats") into which the daemon periodically publishes
// the Engine's telemetry snapshot.  Deliberately separate from the serving
// segment: the request-path ABI is untouched, observers map it read-only
// (Shm::open_readonly), and a scraper crash can never perturb serving
// state.  Consistency is a seqlock — the single writer (the service loop)
// never blocks on readers, and a reader detects a torn copy by the sequence
// word and retries.  Monitoring-grade: a reader that loses every retry
// reports staleness, nothing worse.

inline constexpr std::uint64_t kStatsMagic = 0x7768746c61622d73ULL;  // "whtlab-s"
inline constexpr std::uint32_t kStatsVersion = 1;
/// Series slots in the page.  (n <= 30) x (a handful of backends) x
/// (single|batch) stays far under this; overflow drops the tail (the
/// registry's stable ordering makes the drop deterministic).
inline constexpr std::uint32_t kStatsSeriesCapacity = 256;

/// One exported telemetry series — plain data, written only between the
/// seqlock edges.  Distribution values are cycles (ticks) per served vector.
struct StatsSeries {
  std::int32_t n;
  std::uint32_t batch;  ///< 0 = single-vector path, 1 = batched path
  char backend[24];     ///< NUL-terminated, truncated if longer
  std::uint64_t count;  ///< observations (record() calls)
  std::uint64_t min;
  std::uint64_t max;
  double mean;
  double p50;
  double p99;
};

/// Engine-level serving totals published alongside the series table.
struct StatsTotals {
  std::uint64_t requests;  ///< singles + submits since Engine construction
  std::uint64_t vectors;
  std::uint64_t batches;
  std::uint64_t failures;
  std::uint64_t fallbacks;
};

struct StatsPageHeader {
  std::uint64_t magic;    ///< kStatsMagic (written once at bind)
  std::uint32_t version;  ///< kStatsVersion
  std::uint32_t pid;      ///< publishing daemon
  std::uint64_t epoch;    ///< daemon takeover epoch at bind
  /// Seqlock word: odd while a publish is in progress.  Readers take a
  /// consistent copy with stats_read(); the writer never waits.
  std::atomic<std::uint64_t> seq;
  std::uint64_t published_ns;  ///< monotonic_ns() of the last publish
  std::uint32_t series_count;  ///< valid StatsSeries entries
  std::uint32_t reserved;
  StatsTotals totals;
};

struct StatsPage {
  StatsPageHeader header;
  StatsSeries series[kStatsSeriesCapacity];
};

static_assert(std::is_standard_layout_v<StatsPage>);

/// Seqlock write edges for the single publisher.  The acquire RMW keeps the
/// body writes from hoisting above "seq goes odd"; the release RMW keeps
/// them from sinking below "seq goes even".
inline void stats_write_begin(StatsPageHeader& header) {
  header.seq.fetch_add(1, std::memory_order_acquire);
}
inline void stats_write_end(StatsPageHeader& header) {
  header.seq.fetch_add(1, std::memory_order_release);
}

/// Seqlock-consistent copy of the page: retries while the writer is mid-
/// publish or the sequence moved under the copy.  Returns false when no
/// consistent snapshot could be taken within `retries` attempts (a publish
/// storm — report staleness and try again later).
bool stats_read(const StatsPage& shared, StatsPage& out, int retries = 64);

/// The stats-page shm name for an endpoint: shm_name_for(endpoint) +
/// ".stats".
std::string stats_shm_name_for(const std::string& endpoint);

/// Monotonic nanoseconds (CLOCK_MONOTONIC) — the protocol's only clock:
/// rate-limiter stamps, wait deadlines, sweep periods.
std::uint64_t monotonic_ns();

}  // namespace whtlab::ipc
