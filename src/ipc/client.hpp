// wht::ipc::Client — the client side of the whtd shared-memory protocol.
//
// The two-call happy path stages vectors straight into shared memory (zero
// copies cross the process boundary) and serves them in place:
//
//   auto client = whtlab::ipc::Client::connect({.endpoint = "whtlab"});
//   double* x = client.stage(n);          // shm arena pointer — write here
//   ... fill x[0 .. 2^n) ...
//   auto status = client.transform(n, x); // blocks; result is in x
//
// Batches stage `count` packed vectors (`stage(n, count)`), pipelining uses
// submit()/wait() tickets.  The serving calls return a typed Status instead
// of throwing — kThrottled, kTimeout, kDaemonGone are answers a serving
// client must branch on, not crashes — while connect() and stage() throw
// ipc::Error (kServerFull, kDaemonGone, kTooLarge), because failing there
// is exceptional.
//
// Lifecycle: connect() claims a client slot by CAS in the control segment
// (admission control — no free slot is a typed kServerFull), publishes the
// pid for the daemon's liveness sweep, and bumps the slot generation; the
// destructor drains in-flight requests (bounded) and frees the slot.  If
// the daemon dies, every blocked or future call resolves to kDaemonGone —
// detected via the shutdown flag (clean exit) or a pid liveness probe
// (SIGKILL) — rather than hanging.
//
// A Client is NOT thread-safe (one slot = one request stream); concurrency
// comes from connecting more clients, which is the point of the daemon.
//
// Resilience (opt-in, Options::reconnect): when any call answers
// kDaemonGone, the client re-handshakes against the endpoint with capped
// exponential backoff until reconnect_window_ms elapses, re-stages every
// unacknowledged request from a pristine input snapshot into the fresh
// arena, and resubmits it under the new slot generation.  Results of
// replayed requests are copied back to the caller's original staged
// pointers (the old mapping is kept alive for exactly this), so tickets
// and pointers taken before the crash stay valid across it.  A request is
// never silently dropped: it completes bit-exactly or resolves to a typed
// Status once the window closes.
//
// Handoffs (protocol v4): a draining daemon (planned restart, whtd
// --supervise) answers new submissions with the typed kDraining and
// publishes kDraining in the header's lifecycle word.  A resilient client
// treats either signal as "re-handshake now": the capped backoff is
// short-circuited to a ~1 ms poll — the warm successor takes the endpoint
// over mid-drain — and the refused requests replay there under the new
// generation.  A stream of verified transforms crosses a planned restart
// with zero failed requests; non-resilient clients get kDraining as a
// typed answer and decide for themselves.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "ipc/protocol.hpp"
#include "ipc/shm.hpp"
#include "util/scratch_arena.hpp"

namespace whtlab::ipc {

class Client {
 public:
  struct Options {
    std::string endpoint = "whtlab";
    /// Per-wait deadline; 0 = the daemon's published timeout_ms.
    std::uint64_t timeout_ms = 0;
    /// Transparent auto-reconnect on kDaemonGone (see the class comment).
    /// Off by default: a non-resilient client pays zero snapshot copies.
    bool reconnect = false;
    /// Total time budget for one outage: handshake attempts (with backoff)
    /// stop and kDaemonGone becomes the final answer once this elapses.
    std::uint64_t reconnect_window_ms = 10000;
    /// First retry delay; doubles per failed attempt up to backoff_max_ms,
    /// each with uniform jitter in [0, delay/2] to avoid reconnect stampedes.
    std::uint64_t backoff_initial_ms = 5;
    std::uint64_t backoff_max_ms = 500;
    /// Destructor drain bound: how long ~Client waits for in-flight
    /// requests before abandoning them and freeing the slot.
    std::uint64_t drain_ms = 500;
    /// Per-request execution deadline stamped into every wire request
    /// (Request::deadline_ns = submit time + this).  A daemon with load
    /// shedding armed drops a request still queued past its deadline with
    /// a typed kTimeout instead of executing it — the client's way of
    /// saying "after this long, the answer is worthless, don't burn cycles
    /// on it".  The stamp survives replay unchanged: the deadline bounds
    /// total latency, outages included.  0 = no deadline (never shed).
    std::uint64_t request_deadline_ms = 0;
  };

  /// In-flight request handle.  `data` is the staged region the result
  /// lands in; valid until the arena wraps (see stage()).
  struct Ticket {
    std::uint64_t seq = 0;
    double* data = nullptr;
    std::uint32_t n = 0;
    std::uint32_t count = 0;
  };

  /// Maps the endpoint's segment and claims a slot.  Throws ipc::Error:
  /// kDaemonGone (no segment / daemon dead / shutting down), kServerFull
  /// (admission control), kBadRequest (version/ABI mismatch).
  static Client connect(const Options& options);
  static Client connect() { return connect(Options{}); }

  /// Polls until a live daemon serves `endpoint` or `wait_ms` elapses —
  /// the "daemon is still booting" helper for tests and scripts.
  static bool wait_for_daemon(const std::string& endpoint,
                              std::uint64_t wait_ms);

  Client(Client&&) noexcept = default;
  Client& operator=(Client&&) noexcept = default;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();  ///< drains in-flight (bounded), releases the slot

  /// A staging region for `count` packed vectors of 2^n doubles, inside
  /// this client's shm arena — write inputs here, read results here.
  /// Sequential stage() calls pack the arena; when a request does not fit
  /// next to the live ones, stage() first waits for all in-flight requests
  /// and recycles the arena — which invalidates *earlier* staged results.
  /// Read (or copy out) results before staging past the arena size.
  /// Throws ipc::Error(kTooLarge) when the request can never fit, and
  /// kTimeout/kDaemonGone if draining the arena fails.
  double* stage(int n, std::size_t count = 1);

  /// Blocking round-trip: submits the staged region and waits.  On kOk the
  /// transform happened in place at `staged`.
  Status transform(int n, double* staged, std::size_t count = 1);

  /// Pipelined submission; pair each with wait().  At most ring-depth - 1
  /// requests may be in flight — beyond that submit() blocks on the oldest
  /// response (backpressure, not an error).
  Status submit(int n, double* staged, std::size_t count, Ticket& ticket);
  Status wait(const Ticket& ticket);

  /// Convenience for callers with vectors outside the arena: stages a
  /// copy, transforms, copies the spectrum back into `data`.  Costs the
  /// two copies the zero-copy path exists to avoid.
  Status transform_copy(int n, double* data, std::size_t count = 1);

  /// Capacity of this client's staging arena, in doubles.
  std::size_t arena_capacity() const { return arena_.capacity(); }
  std::size_t inflight() const { return outstanding_.size(); }
  int slot_index() const { return static_cast<int>(slot_index_); }
  /// Successful re-handshakes since connect() (0 without Options::reconnect).
  std::uint64_t reconnects() const { return reconnects_; }
  /// Typed kDraining answers observed (planned-restart refusals that were
  /// replayed — or, without reconnect, returned to the caller).
  std::uint64_t drain_notices() const { return drain_notices_; }
  /// The retry hint carried by the most recent kDraining answer.
  std::int32_t last_drain_hint_ms() const { return last_drain_hint_ms_; }
  /// The daemon's published lifecycle word (kStopped when detached).
  Lifecycle daemon_lifecycle() const;

  /// The daemon's live shared counters (read straight from the segment —
  /// the stats-export path; no request round-trip).
  struct DaemonStats {
    std::uint64_t requests = 0;
    std::uint64_t vectors = 0;
    std::uint64_t throttled = 0;
    std::uint64_t bad_request = 0;
    std::uint64_t exec_errors = 0;
    std::uint64_t reclaimed = 0;
    std::uint64_t dropped = 0;
    std::uint64_t protocol_errors = 0;
    std::uint64_t evictions = 0;
    std::uint64_t shed_expired = 0;
    std::uint64_t credit_stalls = 0;
    std::uint64_t drained = 0;
    std::uint64_t drain_aborted = 0;
    std::uint64_t drain_refused = 0;
  };
  DaemonStats stats() const;

  /// The daemon-published advisory credit balance for this slot (pacing
  /// hint; the binding balance is daemon-local).  Meaningful only when the
  /// daemon runs with credit flow control armed — otherwise it stays at the
  /// published credit_limit of 0.
  std::uint64_t credits() const;

 private:
  Client() = default;

  ControlHeader* header() const { return layout_.header(shm_.data()); }
  SlotShared* slot() const { return layout_.slot(shm_.data(), slot_index_); }

  bool daemon_alive() const;
  void ring_doorbell();
  void drain_responses();
  Status wait_seq(std::uint64_t seq, double* data_hint);
  Status wait_any_response(std::uint64_t deadline_ns);
  std::uint64_t make_seq();
  std::uint64_t deadline_from_now() const;

  /// One handshake against endpoint_: open + validate the segment, claim a
  /// slot, attach the arena.  Throws ipc::Error.  Shared by connect() and
  /// the reconnect path.
  void attach_endpoint();
  /// The reconnect engine: retires the dead mapping, re-handshakes with
  /// capped exponential backoff inside reconnect_window_ms_, replays every
  /// unacknowledged request.  False when disabled or the window closes.
  bool try_reconnect();
  /// Pushes one wire request for a (possibly replayed) in-flight entry.
  Status push_request(std::uint64_t ticket_seq, std::uint64_t deadline_ns);

  /// Everything needed to replay (and route the answer of) one request.
  struct Inflight {
    std::uint32_t n = 0;
    std::uint32_t count = 0;
    double* data = nullptr;     ///< caller's staged region (original arena)
    double* current = nullptr;  ///< live location in the *current* arena
    std::uint64_t wire_seq = 0;
    /// Absolute shed deadline stamped at first submit; replays carry it
    /// unchanged (a deadline bounds total latency, outages included).
    std::uint64_t deadline_ns = 0;
    std::vector<double> snapshot;  ///< pristine input (reconnect mode only)
  };

  Shm shm_;
  Layout layout_;
  std::uint32_t slot_index_ = 0;
  std::uint64_t generation_ = 0;
  std::uint64_t timeout_ms_ = 5000;
  std::uint32_t next_counter_ = 1;
  util::BumpArena arena_;
  std::set<std::uint64_t> outstanding_;        ///< ticket seqs, not yet answered
  std::map<std::uint64_t, Status> completed_;  ///< answered, not yet wait()ed
  std::map<std::uint64_t, Inflight> inflight_;         ///< ticket seq → replay state
  std::map<std::uint64_t, std::uint64_t> wire_to_ticket_;
  std::vector<Shm> retired_;  ///< pre-crash mappings kept so old pointers stay valid
  std::string endpoint_;
  bool reconnect_ = false;
  std::uint64_t reconnect_window_ms_ = 10000;
  std::uint64_t backoff_initial_ms_ = 5;
  std::uint64_t backoff_max_ms_ = 500;
  std::uint64_t drain_ms_ = 500;
  std::uint64_t option_timeout_ms_ = 0;
  std::uint64_t request_deadline_ms_ = 0;
  std::uint64_t reconnects_ = 0;
  std::uint64_t drain_notices_ = 0;
  std::int32_t last_drain_hint_ms_ = 0;
  /// A kDraining answer arrived for a still-outstanding ticket: the next
  /// wait turns it into an immediate re-handshake (reconnect mode only).
  bool drain_notice_ = false;
  bool attached_ = false;
};

}  // namespace whtlab::ipc
