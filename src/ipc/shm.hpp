// POSIX shared-memory segment RAII for the whtd serving layer.
//
// One named segment (shm_open under /dev/shm on Linux) carries the whole
// daemon/client contact surface: control header, slot table, rings, and the
// per-slot staging arenas (protocol.hpp describes the layout).  This wrapper
// owns exactly the mapping lifetime: create() makes-and-maps a zeroed
// segment, open() maps an existing one, the destructor unmaps — and nothing
// else.  *Unlinking* is a separate, deliberate act (Shm::unlink), because
// who removes the name is protocol, not plumbing: the daemon unlinks on
// clean shutdown, and a starting daemon may unlink a stale segment whose
// recorded owner pid is dead.
#pragma once

#include <cstddef>
#include <string>

namespace whtlab::ipc {

class Shm {
 public:
  Shm() = default;
  Shm(Shm&& other) noexcept;
  Shm& operator=(Shm&& other) noexcept;
  Shm(const Shm&) = delete;
  Shm& operator=(const Shm&) = delete;
  ~Shm();  ///< unmaps; never unlinks

  /// Creates the named segment exclusively (throws std::runtime_error with
  /// errno text if it already exists — callers decide takeover policy),
  /// sizes it to `bytes`, and maps it read-write.  Fresh segments are
  /// zero-filled by the kernel, which the protocol relies on (a zeroed ring
  /// is a valid empty ring).
  static Shm create(const std::string& name, std::size_t bytes);

  /// Maps an existing segment read-write at its current size.  Throws
  /// std::runtime_error when it does not exist or cannot be mapped.
  static Shm open(const std::string& name);

  /// Maps an existing segment read-only (O_RDONLY + PROT_READ) — for pure
  /// observers: the watchdog's heartbeat probe, stats reporting.  An
  /// observer holding a read-only mapping provably cannot perturb the
  /// protocol state it is judging, and a bug in it cannot corrupt the
  /// segment.  Atomic loads are fine; any store faults.
  static Shm open_readonly(const std::string& name);

  static bool exists(const std::string& name);

  /// Removes the name (segment memory lives on until the last unmap).
  /// Returns false when no such segment existed.
  static bool unlink(const std::string& name);

  bool valid() const { return data_ != nullptr; }
  void* data() const { return data_; }
  std::size_t size() const { return size_; }
  const std::string& name() const { return name_; }

 private:
  void* data_ = nullptr;
  std::size_t size_ = 0;
  std::string name_;
};

/// The shm name for a serving endpoint: "/whtlab.<endpoint>".  shm_open
/// requires exactly one leading slash and no others, so the endpoint may not
/// contain '/' (throws std::invalid_argument).
std::string shm_name_for(const std::string& endpoint);

}  // namespace whtlab::ipc
