#include "ipc/protocol.hpp"

#include <ctime>

namespace whtlab::ipc {

const char* to_string(Status status) {
  switch (status) {
    case Status::kOk: return "ok";
    case Status::kServerFull: return "server-full";
    case Status::kThrottled: return "throttled";
    case Status::kTimeout: return "timeout";
    case Status::kDaemonGone: return "daemon-gone";
    case Status::kBadRequest: return "bad-request";
    case Status::kTooLarge: return "too-large";
    case Status::kExecError: return "exec-error";
    case Status::kProtocolError: return "protocol-error";
    case Status::kDraining: return "draining";
  }
  return "unknown";
}

const char* to_string(Lifecycle lifecycle) {
  switch (lifecycle) {
    case kBooting: return "booting";
    case kWarming: return "warming";
    case kServing: return "serving";
    case kDraining: return "draining";
    case kStopped: return "stopped";
  }
  return "unknown";
}

std::uint64_t monotonic_ns() {
  struct timespec ts {};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ULL +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

}  // namespace whtlab::ipc
