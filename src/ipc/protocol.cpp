#include "ipc/protocol.hpp"

#include <cstring>
#include <ctime>

#include "ipc/shm.hpp"

namespace whtlab::ipc {

const char* to_string(Status status) {
  switch (status) {
    case Status::kOk: return "ok";
    case Status::kServerFull: return "server-full";
    case Status::kThrottled: return "throttled";
    case Status::kTimeout: return "timeout";
    case Status::kDaemonGone: return "daemon-gone";
    case Status::kBadRequest: return "bad-request";
    case Status::kTooLarge: return "too-large";
    case Status::kExecError: return "exec-error";
    case Status::kProtocolError: return "protocol-error";
    case Status::kDraining: return "draining";
  }
  return "unknown";
}

const char* to_string(Lifecycle lifecycle) {
  switch (lifecycle) {
    case kBooting: return "booting";
    case kWarming: return "warming";
    case kServing: return "serving";
    case kDraining: return "draining";
    case kStopped: return "stopped";
  }
  return "unknown";
}

bool stats_read(const StatsPage& shared, StatsPage& out, int retries) {
  for (int attempt = 0; attempt < retries; ++attempt) {
    const std::uint64_t before =
        shared.header.seq.load(std::memory_order_acquire);
    if (before & 1) continue;  // publish in progress
    std::memcpy(&out, &shared, sizeof(StatsPage));
    std::atomic_thread_fence(std::memory_order_acquire);
    const std::uint64_t after =
        shared.header.seq.load(std::memory_order_relaxed);
    if (before == after) return true;
  }
  return false;
}

std::string stats_shm_name_for(const std::string& endpoint) {
  return shm_name_for(endpoint) + ".stats";
}

std::uint64_t monotonic_ns() {
  struct timespec ts {};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ULL +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

}  // namespace whtlab::ipc
