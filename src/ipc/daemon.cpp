#include "ipc/daemon.hpp"

#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <future>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "ipc/futex.hpp"
#include "ipc/rate_limiter.hpp"
#include "ipc/validate.hpp"
#include "util/env.hpp"
#include "util/fault.hpp"

namespace whtlab::ipc {

namespace {

namespace fault = util::fault;

/// pid liveness via the null signal.  EPERM still means "exists".
bool pid_alive(std::uint32_t pid) {
  if (pid == 0) return false;
  return ::kill(static_cast<pid_t>(pid), 0) == 0 || errno != ESRCH;
}

/// Hard cap on request n: beyond this even one vector cannot be staged in
/// any plausible arena, and plan trees this deep are a config error.
constexpr std::uint32_t kMaxRequestN = 30;

/// Validated env knob: reject (never clamp) zero/negative/overflow values —
/// a daemon started with a typo must fail loudly, not serve misconfigured.
std::uint64_t env_u64(const char* name, std::uint64_t fallback,
                      std::uint64_t min, std::uint64_t max) {
  std::int64_t value = 0;
  try {
    value = util::env_int(name, static_cast<std::int64_t>(fallback));
  } catch (const std::exception&) {
    throw std::invalid_argument(std::string("ipc: ") + name +
                                " is not an integer");
  }
  if (value < 0 || static_cast<std::uint64_t>(value) < min ||
      static_cast<std::uint64_t>(value) > max) {
    throw std::invalid_argument(
        std::string("ipc: ") + name + "=" + std::to_string(value) +
        " out of range [" + std::to_string(min) + ", " + std::to_string(max) +
        "]");
  }
  return static_cast<std::uint64_t>(value);
}

}  // namespace

struct Daemon::SlotLocal {
  RateLimiter limiter;
  CreditBucket credits;
  StrikeCounter strikes;
  std::uint64_t seen_generation = 0;
  /// Highest seq counter consumed this generation (serial-number order).
  std::uint32_t last_counter = 0;
  int claim_strikes = 0;  ///< sweeps spent claimed/ownerless without a live pid

  /// A new tenant (or an eviction) starts every budget and ledger fresh.
  void new_tenant(std::uint64_t generation) {
    seen_generation = generation;
    limiter.reset();
    credits.reset();
    strikes.reset();
    last_counter = 0;
    claim_strikes = 0;
  }
};

struct Daemon::PendingExec {
  std::uint32_t index = 0;
  std::uint64_t generation = 0;
  std::uint64_t seq = 0;
  std::uint64_t count = 0;
  std::future<void> future;
};

DaemonOptions DaemonOptions::from_env() {
  DaemonOptions options;
  if (const auto name = util::env_string("WHTLAB_IPC_NAME")) {
    options.endpoint = *name;  // shm_name_for rejects empty / slashed names
  }
  options.slots = static_cast<std::uint32_t>(
      env_u64("WHTLAB_IPC_SLOTS", options.slots, 1, 1024));
  // Arena: at least 64 doubles (512 bytes), at most 1 TiB per slot — the
  // per-slot __int128 total check in the constructor still applies on top.
  options.arena_doubles =
      env_u64("WHTLAB_IPC_ARENA_BYTES", options.arena_doubles * sizeof(double),
              64 * sizeof(double), std::uint64_t{1} << 40) /
      sizeof(double);
  options.rate_limit = env_u64("WHTLAB_IPC_RATE_LIMIT", options.rate_limit, 0,
                               std::uint64_t{1} << 32);
  options.rate_window_ns =
      env_u64("WHTLAB_IPC_RATE_WINDOW_MS",
              options.rate_window_ns / 1000000ULL, 1, 3600000) *
      1000000ULL;
  options.timeout_ms =
      env_u64("WHTLAB_IPC_TIMEOUT_MS", options.timeout_ms, 1, 86400000);
  options.sweep_ms =
      env_u64("WHTLAB_IPC_SWEEP_MS", options.sweep_ms, 1, 60000);
  options.credit_limit = env_u64("WHTLAB_IPC_CREDITS", options.credit_limit,
                                 0, std::uint64_t{1} << 32);
  options.credit_window_ns =
      env_u64("WHTLAB_IPC_CREDIT_WINDOW_MS",
              options.credit_window_ns / 1000000ULL, 1, 3600000) *
      1000000ULL;
  options.shed_expired =
      env_u64("WHTLAB_IPC_SHED", options.shed_expired ? 1 : 0, 0, 1) != 0;
  options.strike_limit = static_cast<std::uint32_t>(
      env_u64("WHTLAB_IPC_STRIKES", options.strike_limit, 0, 1000000));
  // The daemon arms the Engine circuit breaker by default: a serving
  // process must degrade to the reference backend, not crash or corrupt.
  options.engine.quarantine_strikes = static_cast<int>(
      env_u64("WHTLAB_IPC_QUARANTINE", 3, 0, 1000000));
  options.engine.probation_ms =
      env_u64("WHTLAB_IPC_PROBATION_MS", 2000, 1, 86400000);
  options.engine.verify_finite =
      env_u64("WHTLAB_IPC_VERIFY", 1, 0, 1) != 0;
  return options;
}

Daemon::Daemon(DaemonOptions options) : options_(std::move(options)) {
  // Serving entry point: a WHTLAB_FAULTS spec set on the daemon process
  // arms its fault points here (no-op when unset).
  fault::arm_from_env();
  if (options_.slots < 1 || options_.slots > 1024) {
    throw std::invalid_argument("ipc::Daemon: slots must be in [1, 1024]");
  }
  if (options_.arena_doubles < 64) {
    throw std::invalid_argument("ipc::Daemon: arena must hold >= 64 doubles");
  }
  if (options_.sweep_ms < 1) {
    throw std::invalid_argument("ipc::Daemon: sweep_ms must be >= 1");
  }
  if (options_.timeout_ms < 1) {
    throw std::invalid_argument("ipc::Daemon: timeout_ms must be >= 1");
  }
  if (options_.rate_window_ns < 1) {
    throw std::invalid_argument("ipc::Daemon: rate_window_ns must be >= 1");
  }
  if (options_.credit_window_ns < 1) {
    throw std::invalid_argument("ipc::Daemon: credit_window_ns must be >= 1");
  }
  layout_.slot_count = options_.slots;
  layout_.arena_doubles = options_.arena_doubles;
  // Overflow-check the segment size in 128-bit before Layout's 64-bit
  // arithmetic can wrap: slots * (slot struct + arena bytes) + header.
  const auto total =
      static_cast<unsigned __int128>(options_.slots) *
          (static_cast<unsigned __int128>(options_.arena_doubles) *
               sizeof(double) +
           sizeof(SlotShared)) +
      sizeof(ControlHeader);
  if (total > (static_cast<unsigned __int128>(1) << 47)) {
    throw std::invalid_argument(
        "ipc::Daemon: slots * arena would need an implausible segment "
        "(> 128 TiB); lower WHTLAB_IPC_SLOTS or WHTLAB_IPC_ARENA_BYTES");
  }

  const std::string name = shm_name_for(options_.endpoint);
  try {
    shm_ = Shm::create(name, layout_.total_bytes());
  } catch (const std::runtime_error&) {
    // A segment already carries this name.  Take it over only if its
    // recorded daemon is provably gone (crashed predecessor that never
    // unlinked); a live daemon keeps the endpoint.
    bool stale = false;
    if (options_.takeover_stale) {
      try {
        const Shm existing = Shm::open(name);
        if (existing.size() < sizeof(ControlHeader)) {
          stale = true;
        } else {
          const auto* hdr = static_cast<const ControlHeader*>(existing.data());
          stale = hdr->magic != kMagic ||
                  hdr->shutdown.load(std::memory_order_acquire) != 0 ||
                  !pid_alive(hdr->daemon_pid.load(std::memory_order_acquire));
        }
      } catch (const std::runtime_error&) {
        stale = true;  // vanished between create and open; retry below
      }
    }
    if (!stale) {
      throw Error(Status::kServerFull,
                  "ipc::Daemon: endpoint '" + options_.endpoint +
                      "' already served by a live daemon");
    }
    Shm::unlink(name);
    shm_ = Shm::create(name, layout_.total_bytes());
  }

  // The segment is kernel-zeroed: every ring empty, every slot kFree, all
  // stats zero.  Publish config, then the pid last — a client that sees a
  // live daemon_pid may rely on everything before it.
  ControlHeader* hdr = header();
  hdr->version = kVersion;
  hdr->abi = abi_tag();
  hdr->slot_count = options_.slots;
  hdr->ring_depth = kRingDepth;
  hdr->arena_doubles = options_.arena_doubles;
  hdr->rate_limit = options_.rate_limit;
  hdr->rate_window_ns = options_.rate_window_ns;
  hdr->timeout_ms = options_.timeout_ms;
  hdr->credit_limit = options_.credit_limit;
  hdr->credit_window_ns = options_.credit_window_ns;
  hdr->shed_expired = options_.shed_expired ? 1 : 0;
  hdr->strike_limit = options_.strike_limit;
  hdr->magic = kMagic;
  // Per-slot trust/budget state stays daemon-local: the shared segment gets
  // only the advisory balance word.
  slot_local_.resize(options_.slots);
  for (std::uint32_t s = 0; s < options_.slots; ++s) {
    slot_local_[s].limiter =
        RateLimiter(options_.rate_limit, options_.rate_window_ns);
    slot_local_[s].credits =
        CreditBucket(options_.credit_limit, options_.credit_window_ns);
    slot_local_[s].strikes = StrikeCounter(options_.strike_limit);
    slot(s)->credits.store(options_.credit_limit, std::memory_order_relaxed);
  }
  engine_ = std::make_unique<api::Engine>(options_.engine);
  hdr->daemon_pid.store(static_cast<std::uint32_t>(::getpid()),
                        std::memory_order_release);
}

Daemon::~Daemon() {
  try {
    stop();
  } catch (...) {
    // Destructors stay noexcept; the segment unlink below still runs.
  }
  if (!stopped_ && shm_.valid()) Shm::unlink(shm_.name());
}

void Daemon::start() {
  if (running_.load(std::memory_order_acquire) || stopped_) return;
  stop_requested_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  service_ = std::thread([this] { service_loop(); });
}

void Daemon::stop() {
  if (stopped_) return;
  stop_requested_.store(true, std::memory_order_release);
  if (shm_.valid()) futex_wake_all(header()->doorbell);
  if (service_.joinable()) service_.join();
  running_.store(false, std::memory_order_release);
  if (shm_.valid()) {
    // Publish the end of the endpoint, wake every parked client so it can
    // observe it, and remove the name.  Mapped clients keep their (now
    // shutdown-flagged) segment until they unmap; new connects fail fast.
    ControlHeader* hdr = header();
    hdr->shutdown.store(1, std::memory_order_release);
    hdr->daemon_pid.store(0, std::memory_order_release);
    futex_wake_all(hdr->doorbell);
    for (std::uint32_t s = 0; s < options_.slots; ++s) {
      futex_wake_all(slot(s)->responses.tail);
    }
    Shm::unlink(shm_.name());
  }
  stopped_ = true;
}

Daemon::Stats Daemon::stats() const {
  Stats out;
  if (!shm_.valid()) return out;
  const SharedStats& s = header()->stats;
  out.requests = s.requests.load(std::memory_order_relaxed);
  out.vectors = s.vectors.load(std::memory_order_relaxed);
  out.throttled = s.throttled.load(std::memory_order_relaxed);
  out.bad_request = s.bad_request.load(std::memory_order_relaxed);
  out.exec_errors = s.exec_errors.load(std::memory_order_relaxed);
  out.reclaimed = s.reclaimed.load(std::memory_order_relaxed);
  out.dropped = s.dropped.load(std::memory_order_relaxed);
  out.protocol_errors = s.protocol_errors.load(std::memory_order_relaxed);
  out.evictions = s.evictions.load(std::memory_order_relaxed);
  out.shed_expired = s.shed_expired.load(std::memory_order_relaxed);
  out.credit_stalls = s.credit_stalls.load(std::memory_order_relaxed);
  return out;
}

std::string to_string(const Daemon::Stats& stats) {
  return "requests=" + std::to_string(stats.requests) +
         " vectors=" + std::to_string(stats.vectors) +
         " throttled=" + std::to_string(stats.throttled) +
         " bad_request=" + std::to_string(stats.bad_request) +
         " exec_errors=" + std::to_string(stats.exec_errors) +
         " reclaimed=" + std::to_string(stats.reclaimed) +
         " dropped=" + std::to_string(stats.dropped) +
         " protocol_errors=" + std::to_string(stats.protocol_errors) +
         " evictions=" + std::to_string(stats.evictions) +
         " shed_expired=" + std::to_string(stats.shed_expired) +
         " credit_stalls=" + std::to_string(stats.credit_stalls);
}

void Daemon::service_loop() {
  std::vector<PendingExec> pending;
  const std::uint64_t sweep_ns = options_.sweep_ms * 1000000ULL;
  std::uint64_t last_sweep = monotonic_ns();

  while (!stop_requested_.load(std::memory_order_acquire)) {
    // Supervision heartbeat: stamped at least once per iteration, and the
    // idle park below is bounded by the sweep period, so a healthy loop
    // never lets the stamp age beyond ~sweep_ms + one serve.  (First-touch
    // planning on this thread can stall it for seconds — the supervisor's
    // wedge threshold must stay generous.)
    header()->heartbeat_ns.store(monotonic_ns(), std::memory_order_relaxed);
    if (fault::enabled()) {
      if (fault::point("ipc.daemon.service")) {
        // An unhandled serving-loop error: the exception leaves the thread
        // and std::terminate brings the whole process down — precisely the
        // crash the supervisor (whtd --supervise) exists to absorb.
        throw std::runtime_error("ipc::Daemon: service loop fault injected");
      }
      if (fault::point("ipc.daemon.wedge")) {
        // A wedged (not dead) daemon: alive pid, stale heartbeat.  Spin
        // here without stamping until stopped or killed from outside.
        while (!stop_requested_.load(std::memory_order_acquire)) {
          std::this_thread::sleep_for(std::chrono::milliseconds(20));
        }
        break;
      }
    }
    const std::uint32_t seen =
        header()->doorbell.load(std::memory_order_acquire);
    bool progress = poll_requests(pending);
    progress |= drain_completions(pending, /*block_one=*/false);

    const std::uint64_t now = monotonic_ns();
    if (now - last_sweep >= sweep_ns) {
      sweep();
      last_sweep = now;
    }
    if (progress) continue;

    if (!pending.empty()) {
      // Engine work is in flight; completions, not doorbells, are the next
      // event.  A short blocking poll keeps response latency tight without
      // busy-spinning the service thread.
      drain_completions(pending, /*block_one=*/true);
      continue;
    }
    // Idle: park on the doorbell until a client rings or the sweep is due.
    const std::uint64_t since_sweep = monotonic_ns() - last_sweep;
    const std::int64_t budget =
        since_sweep >= sweep_ns
            ? 0
            : static_cast<std::int64_t>(sweep_ns - since_sweep);
    if (budget > 0) {
      spin_then_wait(header()->doorbell, seen, /*spins=*/4000, budget);
    }
  }

  // Shutdown: answer everything already inside the Engine, then let stop()
  // publish the flag and wake the world.
  for (PendingExec& p : pending) {
    Status status = Status::kOk;
    try {
      p.future.get();
    } catch (...) {
      status = Status::kExecError;
      header()->stats.exec_errors.fetch_add(1, std::memory_order_relaxed);
    }
    if (status == Status::kOk) {
      header()->stats.vectors.fetch_add(p.count, std::memory_order_relaxed);
    }
    complete(p.index, p.generation, p.seq, status);
  }
}

bool Daemon::poll_requests(std::vector<PendingExec>& pending) {
  bool any = false;
  for (std::uint32_t s = 0; s < options_.slots; ++s) {
    SlotShared* cell = slot(s);
    if (cell->state.load(std::memory_order_acquire) != kActive) continue;
    const std::uint64_t gen =
        cell->generation.load(std::memory_order_acquire);
    if (gen != slot_local_[s].seen_generation) {
      // A new client took this slot: budgets and rap sheet start fresh.
      slot_local_[s].new_tenant(gen);
      cell->credits.store(options_.credit_limit, std::memory_order_relaxed);
    }
    // Bounded drain: at most one ring's worth per slot per round.  A
    // byzantine producer that keeps bumping its tail cursor could otherwise
    // pin the loop on one slot and starve its neighbours (and the
    // heartbeat) — with the bound it buys at most kRingDepth pops before
    // the round moves on.
    Request request;
    for (std::uint32_t budget = kRingDepth; budget != 0; --budget) {
      const RingOp op = cell->requests.try_pop_checked(request);
      if (op == RingOp::kEmpty) break;
      any = true;
      if (op == RingOp::kCorrupt) {
        // Scribbled cursor words: an impossible occupancy, not a full ring.
        // Typed signal + strike; never trust the delta enough to read.
        header()->stats.protocol_errors.fetch_add(1,
                                                  std::memory_order_relaxed);
        strike(s, cell);
        break;
      }
      handle_request(s, cell, gen, request, pending);
      if (cell->state.load(std::memory_order_acquire) != kActive ||
          cell->generation.load(std::memory_order_acquire) != gen) {
        break;  // the tenant was evicted mid-drain; its queue died with it
      }
    }
  }
  return any;
}

void Daemon::handle_request(std::uint32_t index, SlotShared* cell,
                            std::uint64_t gen, const Request& request,
                            std::vector<PendingExec>& pending) {
  SharedStats& stats = header()->stats;
  stats.requests.fetch_add(1, std::memory_order_relaxed);
  SlotLocal& local = slot_local_[index];

  // Trust boundary (validate.hpp): `request` is already a daemon-local
  // snapshot — the checked pop copied it out of the shared ring — and every
  // verdict below is about that snapshot only.  The bounds come from
  // options_/layout_, never from the (client-writable) header.
  const SlotBounds bounds{options_.arena_doubles, kMaxRequestN};
  const Verdict verdict =
      validate_request(request, gen, local.last_counter, bounds);
  if (verdict == Verdict::kStaleGeneration) {
    // A previous slot owner's late push racing the reclaim — expected
    // churn, not hostility; must not be answered into the current owner's
    // ring.
    stats.dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (verdict != Verdict::kAccept) {
    // A state the shipped client library can never produce: answer typed,
    // book a strike, evict on repeat offense.
    stats.protocol_errors.fetch_add(1, std::memory_order_relaxed);
    respond(index, cell, request.seq, Status::kProtocolError);
    strike(index, cell);
    return;
  }
  local.last_counter = static_cast<std::uint32_t>(request.seq & 0xffffffffULL);

  const std::uint64_t now = monotonic_ns();
  // Overload degradation, cheapest checks first.  Shedding precedes the
  // budgets: an expired request must not charge credits or rate quota for
  // work that will not happen.
  if (options_.shed_expired && request_expired(request, now)) {
    stats.shed_expired.fetch_add(1, std::memory_order_relaxed);
    respond(index, cell, request.seq, Status::kTimeout);
    return;
  }
  if (!local.credits.try_spend(request.count, now)) {
    stats.credit_stalls.fetch_add(1, std::memory_order_relaxed);
    cell->credits.store(local.credits.available(now),
                        std::memory_order_relaxed);
    respond(index, cell, request.seq, Status::kThrottled);
    return;
  }
  cell->credits.store(local.credits.available(now),
                      std::memory_order_relaxed);
  if (!local.limiter.try_acquire(now)) {
    stats.throttled.fetch_add(1, std::memory_order_relaxed);
    respond(index, cell, request.seq, Status::kThrottled);
    return;
  }

  const std::uint64_t size = std::uint64_t{1} << request.n;
  double* data = arena(index) + request.offset;
  if (request.count == 1) {
    // Single vectors ride the Engine's coalescing submit() path: requests
    // from different client processes for the same n merge into one batched
    // run on the arbitrated backend.
    try {
      PendingExec exec;
      exec.index = index;
      exec.generation = gen;
      exec.seq = request.seq;
      exec.count = 1;
      exec.future = engine_->submit(static_cast<int>(request.n), data);
      pending.push_back(std::move(exec));
    } catch (...) {
      stats.exec_errors.fetch_add(1, std::memory_order_relaxed);
      respond(index, cell, request.seq, Status::kExecError);
    }
    return;
  }
  // Client-side batches are already shaped for the batch path — run them
  // directly on the arbitrated backend with the service thread's context.
  try {
    engine_->execute_many(static_cast<int>(request.n), data, request.count,
                          static_cast<std::ptrdiff_t>(size), ctx_);
    stats.vectors.fetch_add(request.count, std::memory_order_relaxed);
    respond(index, cell, request.seq, Status::kOk);
  } catch (...) {
    stats.exec_errors.fetch_add(1, std::memory_order_relaxed);
    respond(index, cell, request.seq, Status::kExecError);
  }
}

bool Daemon::drain_completions(std::vector<PendingExec>& pending,
                               bool block_one) {
  bool any = false;
  for (auto it = pending.begin(); it != pending.end();) {
    const bool ready =
        block_one
            ? it->future.wait_for(std::chrono::microseconds(200)) ==
                  std::future_status::ready
            : it->future.wait_for(std::chrono::seconds(0)) ==
                  std::future_status::ready;
    block_one = false;  // only the first entry gets the blocking poll
    if (!ready) {
      ++it;
      continue;
    }
    Status status = Status::kOk;
    try {
      it->future.get();
    } catch (...) {
      status = Status::kExecError;
      header()->stats.exec_errors.fetch_add(1, std::memory_order_relaxed);
    }
    if (status == Status::kOk) {
      header()->stats.vectors.fetch_add(it->count, std::memory_order_relaxed);
    }
    complete(it->index, it->generation, it->seq, status);
    it = pending.erase(it);
    any = true;
  }
  return any;
}

void Daemon::complete(std::uint32_t index, std::uint64_t gen,
                      std::uint64_t seq, Status status) {
  SlotShared* cell = slot(index);
  if (cell->state.load(std::memory_order_acquire) != kActive ||
      cell->generation.load(std::memory_order_acquire) != gen) {
    // The requester is gone (reclaimed, released, or evicted); its
    // successor must not see a stranger's completion.
    header()->stats.dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  respond(index, cell, seq, status);
}

void Daemon::respond(std::uint32_t index, SlotShared* cell, std::uint64_t seq,
                     Status status) {
  Response response;
  response.seq = seq;
  response.status = static_cast<std::int32_t>(status);
  // The client-side inflight cap (client.cpp) keeps outstanding responses
  // below the ring depth, so a full ring means a protocol-violating client;
  // a brief retry covers consumption races, then the response is dropped
  // (the client will time out — its own doing).  A *corrupt* consumer
  // cursor is different: no amount of waiting un-scribbles it, so the push
  // is abandoned immediately and the offense is struck.
  for (int attempt = 0; attempt < 1000; ++attempt) {
    // The injected fault makes this push attempt behave as a full ring,
    // exercising the retry-then-drop path on demand.
    const bool ring_full =
        fault::enabled() && fault::point("ipc.ring.publish");
    const RingOp op =
        ring_full ? RingOp::kFull : cell->responses.try_push_checked(response);
    if (op == RingOp::kOk) {
      futex_wake_all(cell->responses.tail);
      return;
    }
    if (op == RingOp::kCorrupt) {
      header()->stats.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      strike(index, cell);
      return;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(10));
  }
  header()->stats.dropped.fetch_add(1, std::memory_order_relaxed);
}

void Daemon::strike(std::uint32_t index, SlotShared* cell) {
  if (slot_local_[index].strikes.strike()) evict(index, cell);
}

void Daemon::evict(std::uint32_t index, SlotShared* cell) {
  // Generation bump FIRST: from this store on, every outstanding seq of
  // the evicted tenant is stale — in-flight Engine completions die on the
  // generation check in complete(), late ring pushes die in
  // validate_request.  Then free the slot exactly like a dead-client
  // reclaim.  The evicted process keeps its (read-only-to-us) mapping; its
  // next wait notices the generation change and resolves typed instead of
  // hanging (client.cpp's eviction probe).
  cell->generation.fetch_add(1, std::memory_order_acq_rel);
  cell->pid.store(0, std::memory_order_release);
  cell->requests.reset();
  cell->responses.reset();
  cell->state.store(kFree, std::memory_order_release);
  futex_wake_all(cell->responses.tail);
  slot_local_[index].new_tenant(
      cell->generation.load(std::memory_order_acquire));
  header()->stats.evictions.fetch_add(1, std::memory_order_relaxed);
}

void Daemon::sweep() {
  for (std::uint32_t s = 0; s < options_.slots; ++s) {
    SlotShared* cell = slot(s);
    const std::uint32_t state = cell->state.load(std::memory_order_acquire);
    if (state == kFree) {
      slot_local_[s].claim_strikes = 0;
      continue;
    }
    const std::uint32_t pid = cell->pid.load(std::memory_order_acquire);
    if (pid != 0) {
      slot_local_[s].claim_strikes = 0;
      if (!pid_alive(pid)) reclaim(s, cell);
    } else {
      // Non-free but ownerless: a kClaimed handshake in progress
      // (microseconds), a client that died mid-claim, or a byzantine
      // tenant that scribbled its own pid/state words (kActive with pid 0
      // is unreachable through the client library).  Three sweep periods
      // of grace separates a live handshake from a zombie either way.
      if (++slot_local_[s].claim_strikes >= 3) reclaim(s, cell);
    }
  }
}

void Daemon::reclaim(std::uint32_t index, SlotShared* cell) {
  // The owner is dead, so the daemon is the only toucher: reset both rings
  // (dropping anything the corpse left queued), clear the pid, and free the
  // slot.  In-flight Engine work for this slot still completes — its
  // completion is dropped by the generation/state check in complete(), and
  // the arena memory stays mapped for as long as the daemon runs.
  cell->pid.store(0, std::memory_order_release);
  cell->requests.reset();
  cell->responses.reset();
  cell->state.store(kFree, std::memory_order_release);
  slot_local_[index].limiter.reset();
  slot_local_[index].claim_strikes = 0;
  header()->stats.reclaimed.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace whtlab::ipc
