#include "ipc/daemon.hpp"

#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <future>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "ipc/futex.hpp"
#include "ipc/rate_limiter.hpp"
#include "ipc/validate.hpp"
#include "util/env.hpp"
#include "util/fault.hpp"

namespace whtlab::ipc {

namespace {

namespace fault = util::fault;

/// pid liveness via the null signal.  EPERM still means "exists".
bool pid_alive(std::uint32_t pid) {
  if (pid == 0) return false;
  return ::kill(static_cast<pid_t>(pid), 0) == 0 || errno != ESRCH;
}

/// Hard cap on request n: beyond this even one vector cannot be staged in
/// any plausible arena, and plan trees this deep are a config error.
constexpr std::uint32_t kMaxRequestN = 30;

/// Validated env knob: reject (never clamp) zero/negative/overflow values —
/// a daemon started with a typo must fail loudly, not serve misconfigured.
std::uint64_t env_u64(const char* name, std::uint64_t fallback,
                      std::uint64_t min, std::uint64_t max) {
  std::int64_t value = 0;
  try {
    value = util::env_int(name, static_cast<std::int64_t>(fallback));
  } catch (const std::exception&) {
    throw std::invalid_argument(std::string("ipc: ") + name +
                                " is not an integer");
  }
  if (value < 0 || static_cast<std::uint64_t>(value) < min ||
      static_cast<std::uint64_t>(value) > max) {
    throw std::invalid_argument(
        std::string("ipc: ") + name + "=" + std::to_string(value) +
        " out of range [" + std::to_string(min) + ", " + std::to_string(max) +
        "]");
  }
  return static_cast<std::uint64_t>(value);
}

}  // namespace

struct Daemon::SlotLocal {
  RateLimiter limiter;
  CreditBucket credits;
  StrikeCounter strikes;
  std::uint64_t seen_generation = 0;
  /// Highest seq counter consumed this generation (serial-number order).
  std::uint32_t last_counter = 0;
  int claim_strikes = 0;  ///< sweeps spent claimed/ownerless without a live pid

  /// A new tenant (or an eviction) starts every budget and ledger fresh.
  void new_tenant(std::uint64_t generation) {
    seen_generation = generation;
    limiter.reset();
    credits.reset();
    strikes.reset();
    last_counter = 0;
    claim_strikes = 0;
  }
};

struct Daemon::PendingExec {
  std::uint32_t index = 0;
  std::uint64_t generation = 0;
  std::uint64_t seq = 0;
  std::uint64_t count = 0;
  std::future<void> future;
};

DaemonOptions DaemonOptions::from_env() {
  DaemonOptions options;
  if (const auto name = util::env_string("WHTLAB_IPC_NAME")) {
    options.endpoint = *name;  // shm_name_for rejects empty / slashed names
  }
  options.slots = static_cast<std::uint32_t>(
      env_u64("WHTLAB_IPC_SLOTS", options.slots, 1, 1024));
  // Arena: at least 64 doubles (512 bytes), at most 1 TiB per slot — the
  // per-slot __int128 total check in the constructor still applies on top.
  options.arena_doubles =
      env_u64("WHTLAB_IPC_ARENA_BYTES", options.arena_doubles * sizeof(double),
              64 * sizeof(double), std::uint64_t{1} << 40) /
      sizeof(double);
  options.rate_limit = env_u64("WHTLAB_IPC_RATE_LIMIT", options.rate_limit, 0,
                               std::uint64_t{1} << 32);
  options.rate_window_ns =
      env_u64("WHTLAB_IPC_RATE_WINDOW_MS",
              options.rate_window_ns / 1000000ULL, 1, 3600000) *
      1000000ULL;
  options.timeout_ms =
      env_u64("WHTLAB_IPC_TIMEOUT_MS", options.timeout_ms, 1, 86400000);
  options.sweep_ms =
      env_u64("WHTLAB_IPC_SWEEP_MS", options.sweep_ms, 1, 60000);
  options.credit_limit = env_u64("WHTLAB_IPC_CREDITS", options.credit_limit,
                                 0, std::uint64_t{1} << 32);
  options.credit_window_ns =
      env_u64("WHTLAB_IPC_CREDIT_WINDOW_MS",
              options.credit_window_ns / 1000000ULL, 1, 3600000) *
      1000000ULL;
  options.shed_expired =
      env_u64("WHTLAB_IPC_SHED", options.shed_expired ? 1 : 0, 0, 1) != 0;
  options.strike_limit = static_cast<std::uint32_t>(
      env_u64("WHTLAB_IPC_STRIKES", options.strike_limit, 0, 1000000));
  options.drain_ms =
      env_u64("WHTLAB_IPC_DRAIN_MS", options.drain_ms, 1, 86400000);
  options.stats_publish_ms = env_u64("WHTLAB_IPC_STATS_PUBLISH_MS",
                                     options.stats_publish_ms, 0, 3600000);
  // The daemon arms the Engine circuit breaker by default: a serving
  // process must degrade to the reference backend, not crash or corrupt.
  options.engine.quarantine_strikes = static_cast<int>(
      env_u64("WHTLAB_IPC_QUARANTINE", 3, 0, 1000000));
  options.engine.probation_ms =
      env_u64("WHTLAB_IPC_PROBATION_MS", 2000, 1, 86400000);
  options.engine.verify_finite =
      env_u64("WHTLAB_IPC_VERIFY", 1, 0, 1) != 0;
  // Daemon-path latency knob: single-vector round trips pay the Engine
  // coalescer's full batch window, so the daemon exposes it directly
  // (0 = dispatch immediately; trade batch formation for p50).
  options.engine.batch_window_us = static_cast<long>(
      env_u64("WHTLAB_IPC_COALESCE_WINDOW_US",
              static_cast<std::uint64_t>(options.engine.batch_window_us), 0,
              1000000));
  // Live re-anchoring knobs (engine.hpp): conservative defaults — recording
  // on, re-anchoring and drift demotion off until explicitly armed.
  // (WHTLAB_TELEMETRY=0 itself is read by the Engine constructor.)
  options.engine.telemetry_decay_window =
      env_u64("WHTLAB_TELEMETRY_DECAY",
              options.engine.telemetry_decay_window, 0, std::uint64_t{1} << 32);
  options.engine.reanchor_min_samples =
      env_u64("WHTLAB_TELEMETRY_REANCHOR",
              options.engine.reanchor_min_samples, 0, std::uint64_t{1} << 32);
  options.engine.reanchor_blend =
      static_cast<double>(env_u64(
          "WHTLAB_TELEMETRY_BLEND_PCT",
          static_cast<std::uint64_t>(options.engine.reanchor_blend * 100.0),
          0, 100)) /
      100.0;
  options.engine.drift_demote_factor = static_cast<double>(
      env_u64("WHTLAB_TELEMETRY_DRIFT",
              static_cast<std::uint64_t>(options.engine.drift_demote_factor),
              0, 1000000));
  return options;
}

Daemon::Daemon(DaemonOptions options) : options_(std::move(options)) {
  // Serving entry point: a WHTLAB_FAULTS spec set on the daemon process
  // arms its fault points here (no-op when unset).
  fault::arm_from_env();
  if (options_.slots < 1 || options_.slots > 1024) {
    throw std::invalid_argument("ipc::Daemon: slots must be in [1, 1024]");
  }
  if (options_.arena_doubles < 64) {
    throw std::invalid_argument("ipc::Daemon: arena must hold >= 64 doubles");
  }
  if (options_.sweep_ms < 1) {
    throw std::invalid_argument("ipc::Daemon: sweep_ms must be >= 1");
  }
  if (options_.timeout_ms < 1) {
    throw std::invalid_argument("ipc::Daemon: timeout_ms must be >= 1");
  }
  if (options_.rate_window_ns < 1) {
    throw std::invalid_argument("ipc::Daemon: rate_window_ns must be >= 1");
  }
  if (options_.credit_window_ns < 1) {
    throw std::invalid_argument("ipc::Daemon: credit_window_ns must be >= 1");
  }
  if (options_.drain_ms < 1) {
    throw std::invalid_argument("ipc::Daemon: drain_ms must be >= 1");
  }
  layout_.slot_count = options_.slots;
  layout_.arena_doubles = options_.arena_doubles;
  // Overflow-check the segment size in 128-bit before Layout's 64-bit
  // arithmetic can wrap: slots * (slot struct + arena bytes) + header.
  const auto total =
      static_cast<unsigned __int128>(options_.slots) *
          (static_cast<unsigned __int128>(options_.arena_doubles) *
               sizeof(double) +
           sizeof(SlotShared)) +
      sizeof(ControlHeader);
  if (total > (static_cast<unsigned __int128>(1) << 47)) {
    throw std::invalid_argument(
        "ipc::Daemon: slots * arena would need an implausible segment "
        "(> 128 TiB); lower WHTLAB_IPC_SLOTS or WHTLAB_IPC_ARENA_BYTES");
  }

  slot_local_.resize(options_.slots);
  const std::string canonical = shm_name_for(options_.endpoint);
  if (options_.standby) {
    // A standby binds the staging name; peek the incumbent's canonical
    // segment so promote() can continue its epoch chain even if the
    // incumbent finishes draining (and unlinks) before promote() runs.
    try {
      const Shm existing = Shm::open(canonical);
      if (existing.size() >= sizeof(ControlHeader)) {
        const auto* hdr = static_cast<const ControlHeader*>(existing.data());
        if (hdr->magic == kMagic) {
          epoch_base_ = hdr->epoch.load(std::memory_order_acquire);
        }
      }
    } catch (const std::runtime_error&) {
      // No incumbent: the epoch chain starts at 1 either way.
    }
  }
  const std::string name =
      options_.standby ? shm_name_for(options_.endpoint + ".next") : canonical;
  shm_ = bind_segment(name, /*cede_draining=*/false,
                      /*staging=*/options_.standby, /*wait_ms=*/0);
  engine_ = std::make_unique<api::Engine>(options_.engine);
  header()->daemon_pid.store(static_cast<std::uint32_t>(::getpid()),
                             std::memory_order_release);
  bind_stats_page();
  // Construction complete, Engine cold: kWarming until start() (a standby
  // stays here through prewarm() and promote()).  Clients may attach from
  // now on — attach admits kBooting/kWarming/kServing alike.
  set_lifecycle(Lifecycle::kWarming);
}

void Daemon::bind_stats_page() {
  // We own the serving segment by now, so any page under this name is a
  // crashed predecessor's leftover; replace it (observers re-map by name).
  const std::string name = shm_.name() + ".stats";
  Shm::unlink(name);
  stats_shm_ = Shm::create(name, sizeof(StatsPage));
  auto* page = static_cast<StatsPage*>(stats_shm_.data());
  page->header.magic = kStatsMagic;
  page->header.version = kStatsVersion;
  page->header.pid = static_cast<std::uint32_t>(::getpid());
  page->header.epoch = header()->epoch.load(std::memory_order_acquire);
}

void Daemon::publish_stats_page() {
  if (!stats_shm_.valid()) return;
  auto* page = static_cast<StatsPage*>(stats_shm_.data());
  const telemetry::Snapshot series = engine_->telemetry_snapshot();
  const api::Engine::Stats totals = engine_->stats();
  stats_write_begin(page->header);
  page->header.published_ns = monotonic_ns();
  page->header.totals.requests = totals.singles + totals.submitted;
  page->header.totals.vectors = totals.vectors;
  page->header.totals.batches = totals.batches;
  page->header.totals.failures = totals.failures;
  page->header.totals.fallbacks = totals.fallbacks;
  const std::uint32_t count = static_cast<std::uint32_t>(
      std::min<std::size_t>(series.size(), kStatsSeriesCapacity));
  page->header.series_count = count;
  for (std::uint32_t i = 0; i < count; ++i) {
    const telemetry::SeriesSnapshot& in = series[i];
    StatsSeries& out = page->series[i];
    out.n = in.n;
    out.batch = in.batch ? 1 : 0;
    std::snprintf(out.backend, sizeof(out.backend), "%s",
                  in.backend.c_str());
    out.count = in.stats.count;
    out.min = in.stats.count == 0 ? 0 : in.stats.min;
    out.max = in.stats.max;
    out.mean = in.stats.mean();
    out.p50 = in.stats.percentile(0.50);
    out.p99 = in.stats.percentile(0.99);
  }
  stats_write_end(page->header);
}

void Daemon::release_stats_page() {
  if (!stats_shm_.valid()) return;
  Shm::unlink(stats_shm_.name());
  stats_shm_ = Shm();  // unmap; later publish calls become no-ops
}

Shm Daemon::bind_segment(const std::string& shm_name, bool cede_draining,
                         bool staging, std::uint64_t wait_ms) {
  const std::uint64_t give_up = monotonic_ns() + wait_ms * 1000000ULL;
  Shm shm;
  for (;;) {
    try {
      shm = Shm::create(shm_name, layout_.total_bytes());
      break;
    } catch (const std::runtime_error&) {
      // A segment already carries this name.  Take it over only if its
      // recorded daemon is provably gone (crashed predecessor that never
      // unlinked) — or, on the promote() path, live but *ceding*: a
      // draining or stopped predecessor has given up the endpoint even
      // though its process still runs out its drain.
      bool stale = false;
      try {
        const Shm existing = Shm::open(shm_name);
        if (existing.size() < sizeof(ControlHeader)) {
          stale = true;
        } else {
          const auto* hdr = static_cast<const ControlHeader*>(existing.data());
          if (hdr->magic == kMagic) {
            const std::uint64_t seen =
                hdr->epoch.load(std::memory_order_acquire);
            if (seen > epoch_base_) epoch_base_ = seen;
          }
          stale = hdr->magic != kMagic ||
                  hdr->shutdown.load(std::memory_order_acquire) != 0 ||
                  !pid_alive(hdr->daemon_pid.load(std::memory_order_acquire));
          if (!stale && cede_draining) {
            // The promote() path: a live predecessor cedes by RELEASING
            // the name at drain completion (observed below as ENOENT) or
            // by reaching kStopped.  kDraining alone is not a cede — the
            // predecessor still owns the unlink half of the transition,
            // and displacing it mid-drain would race its release.
            const auto lc = static_cast<Lifecycle>(
                hdr->lifecycle.load(std::memory_order_acquire));
            stale = lc == Lifecycle::kStopped;
          }
        }
      } catch (const std::runtime_error&) {
        stale = true;  // vanished between create and open; retry below
      }
      // With takeover disabled only promote()'s cede rule may displace a
      // predecessor, however stale it looks.
      if (!options_.takeover_stale && !cede_draining) stale = false;
      if (!stale) {
        if (cede_draining && monotonic_ns() < give_up) {
          // The predecessor serves on; absorb the SIGTERM -> kDraining
          // publication race by polling briefly.
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
          continue;
        }
        throw Error(Status::kServerFull,
                    "ipc::Daemon: endpoint '" + options_.endpoint +
                        "' already served by a live daemon");
      }
      Shm::unlink(shm_name);
      // Loop: recreate under the freed name (another claimant may race the
      // create; whoever loses sees the winner's live header and throws).
    }
  }

  // The segment is kernel-zeroed: every ring empty, every slot kFree, all
  // stats zero, lifecycle kBooting.  Publish config, then magic; the caller
  // stores daemon_pid last — a client that sees a live daemon_pid may rely
  // on everything before it.
  auto* hdr = layout_.header(shm.data());
  hdr->version = kVersion;
  hdr->abi = abi_tag();
  hdr->slot_count = options_.slots;
  hdr->ring_depth = kRingDepth;
  hdr->arena_doubles = options_.arena_doubles;
  hdr->rate_limit = options_.rate_limit;
  hdr->rate_window_ns = options_.rate_window_ns;
  hdr->timeout_ms = options_.timeout_ms;
  hdr->credit_limit = options_.credit_limit;
  hdr->credit_window_ns = options_.credit_window_ns;
  hdr->shed_expired = options_.shed_expired ? 1 : 0;
  hdr->strike_limit = options_.strike_limit;
  hdr->drain_ms = options_.drain_ms;
  hdr->epoch.store(staging ? 0 : (epoch_base_ + 1),
                   std::memory_order_release);
  hdr->magic = kMagic;
  // Per-slot trust/budget state stays daemon-local: the shared segment gets
  // only the advisory balance word.  A fresh segment means fresh tenants.
  for (std::uint32_t s = 0; s < options_.slots; ++s) {
    slot_local_[s].limiter =
        RateLimiter(options_.rate_limit, options_.rate_window_ns);
    slot_local_[s].credits =
        CreditBucket(options_.credit_limit, options_.credit_window_ns);
    slot_local_[s].strikes = StrikeCounter(options_.strike_limit);
    slot_local_[s].new_tenant(0);
    layout_.slot(shm.data(), s)
        ->credits.store(options_.credit_limit, std::memory_order_relaxed);
  }
  return shm;
}

Daemon::~Daemon() {
  try {
    stop();
  } catch (...) {
    // Destructors stay noexcept; the segment unlink below still runs.
  }
  if (!stopped_ && shm_.valid()) unlink_if_owned();
}

void Daemon::start() {
  if (running_.load(std::memory_order_acquire) || stopped_) return;
  stop_requested_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  set_lifecycle(Lifecycle::kServing);
  service_ = std::thread([this] { service_loop(); });
}

void Daemon::stop() {
  if (stopped_) return;
  stop_requested_.store(true, std::memory_order_release);
  if (shm_.valid()) futex_wake_all(header()->doorbell);
  if (service_.joinable()) service_.join();
  running_.store(false, std::memory_order_release);
  // Stats page first, serving words second: a successor waits for the
  // shutdown/kStopped publication below before binding its own page, so
  // this unlink can never hit the successor's.
  release_stats_page();
  if (shm_.valid()) {
    // Publish the end of the endpoint, wake every parked client so it can
    // observe it, and remove the name.  Mapped clients keep their (now
    // shutdown-flagged) segment until they unmap; new connects fail fast.
    ControlHeader* hdr = header();
    hdr->shutdown.store(1, std::memory_order_release);
    hdr->daemon_pid.store(0, std::memory_order_release);
    hdr->lifecycle.store(Lifecycle::kStopped, std::memory_order_release);
    futex_wake_all(hdr->doorbell);
    for (std::uint32_t s = 0; s < options_.slots; ++s) {
      futex_wake_all(slot(s)->responses.tail);
    }
    unlink_if_owned();
  }
  stopped_ = true;
}

void Daemon::release_name() {
  // The drain-completion half of a handoff: give the canonical name up
  // while still kDraining.  Everything after this point must never unlink
  // by name again — the successor recreates the name the instant it sees
  // the release, and a late unlink from this process would tear the
  // successor's endpoint down (the classic probe-then-unlink TOCTOU this
  // ordering exists to close).
  if (name_released_ || !shm_.valid()) return;
  name_released_ = true;
  release_stats_page();  // before the name: same single-owner transition
  Shm::unlink(shm_.name());
}

void Daemon::unlink_if_owned() {
  if (name_released_) return;  // the name belongs to a successor now
  // After a handoff the canonical name belongs to the successor — its
  // header carries a bumped epoch and a live pid that is not ours (ours
  // was zeroed through our own mapping of the *old* segment).  Unlinking
  // then would tear the successor's endpoint down; probe by name first.
  // Epochs are compared as well as pids: two Daemons can share one process
  // (in-process handoff tests), where the pid alone cannot tell the
  // predecessor's mapping from the successor's.
  const std::uint64_t my_epoch =
      header()->epoch.load(std::memory_order_acquire);
  bool ours = true;
  try {
    const Shm current = Shm::open(shm_.name());
    if (current.size() >= sizeof(ControlHeader)) {
      const auto* h = static_cast<const ControlHeader*>(current.data());
      const std::uint32_t pid = h->daemon_pid.load(std::memory_order_acquire);
      if (h->magic == kMagic &&
          h->epoch.load(std::memory_order_acquire) != my_epoch) {
        ours = false;  // a successor generation took the name over
      } else {
        ours = h->magic != kMagic || pid == 0 ||
               pid == static_cast<std::uint32_t>(::getpid()) ||
               h->shutdown.load(std::memory_order_acquire) != 0 ||
               !pid_alive(pid);
      }
    }
  } catch (const std::runtime_error&) {
    ours = false;  // the name is already gone: nothing to unlink
  }
  if (ours) Shm::unlink(shm_.name());
}

Lifecycle Daemon::lifecycle() const {
  if (!shm_.valid()) return Lifecycle::kStopped;
  return static_cast<Lifecycle>(
      header()->lifecycle.load(std::memory_order_acquire));
}

std::uint64_t Daemon::epoch() const {
  if (!shm_.valid()) return 0;
  return header()->epoch.load(std::memory_order_acquire);
}

void Daemon::set_lifecycle(Lifecycle lifecycle) {
  if (shm_.valid()) {
    header()->lifecycle.store(lifecycle, std::memory_order_release);
  }
}

std::size_t Daemon::prewarm() {
  const std::size_t built = engine_->prewarm();
  if (shm_.valid()) {
    // Published so supervisors and tests can verify the successor serves
    // warm *before* it takes the endpoint over.
    header()->prewarmed.store(static_cast<std::uint32_t>(built),
                              std::memory_order_release);
  }
  return built;
}

void Daemon::drain(std::uint64_t deadline_ms) {
  const std::lock_guard<std::mutex> lock(drain_mutex_);
  if (stopped_ || draining_.load(std::memory_order_acquire)) return;
  const std::uint64_t budget_ms =
      deadline_ms != 0 ? deadline_ms : options_.drain_ms;
  // Deadline before flag: the service loop reads them in the opposite
  // order, so it never sees the drain without its budget.
  drain_deadline_ns_.store(monotonic_ns() + budget_ms * 1000000ULL,
                           std::memory_order_release);
  draining_.store(true, std::memory_order_release);
  if (!running_.load(std::memory_order_acquire)) {
    // Never started (or already joined): nothing can be in flight.  Flush
    // and park directly — the lifecycle edge still publishes, and the name
    // release still precedes it (same ordering as the service-loop tail).
    if (engine_) engine_->flush_wisdom();
    release_name();
    set_lifecycle(Lifecycle::kStopped);
    return;
  }
  // Publish immediately: clients probing the lifecycle word switch to the
  // fast re-handshake path without waiting for a service-loop iteration.
  set_lifecycle(Lifecycle::kDraining);
  if (shm_.valid()) futex_wake_all(header()->doorbell);
}

bool Daemon::wait_drained(std::uint64_t timeout_ms) {
  const std::uint64_t deadline = monotonic_ns() + timeout_ms * 1000000ULL;
  while (lifecycle() != Lifecycle::kStopped) {
    if (monotonic_ns() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

void Daemon::promote(std::uint64_t wait_ms) {
  if (!options_.standby) {
    throw std::logic_error("ipc::Daemon: promote() requires a standby daemon");
  }
  if (stopped_ || running_.load(std::memory_order_acquire)) {
    throw std::logic_error(
        "ipc::Daemon: promote() must run before start() / after no stop()");
  }
  const std::string staging = shm_.name();
  const std::uint32_t prewarmed =
      header()->prewarmed.load(std::memory_order_acquire);
  // Waits for the predecessor to cede (dead, shut down, draining, or
  // stopped), then binds a fresh canonical segment with its epoch + 1.
  Shm canonical = bind_segment(shm_name_for(options_.endpoint),
                               /*cede_draining=*/true, /*staging=*/false,
                               wait_ms);
  // The staging name has served its purpose; drop it before the old
  // mapping goes away so a crash in between cannot leave it lingering.
  release_stats_page();  // the staging page goes with the staging segment
  Shm::unlink(staging);
  shm_ = std::move(canonical);  // unmaps the staging segment
  ControlHeader* hdr = header();
  hdr->prewarmed.store(prewarmed, std::memory_order_release);
  hdr->daemon_pid.store(static_cast<std::uint32_t>(::getpid()),
                        std::memory_order_release);
  bind_stats_page();  // now under the canonical name
  options_.standby = false;
  set_lifecycle(Lifecycle::kWarming);  // kServing once start() runs
}

Daemon::Stats Daemon::stats() const {
  Stats out;
  if (!shm_.valid()) return out;
  const SharedStats& s = header()->stats;
  out.requests = s.requests.load(std::memory_order_relaxed);
  out.vectors = s.vectors.load(std::memory_order_relaxed);
  out.throttled = s.throttled.load(std::memory_order_relaxed);
  out.bad_request = s.bad_request.load(std::memory_order_relaxed);
  out.exec_errors = s.exec_errors.load(std::memory_order_relaxed);
  out.reclaimed = s.reclaimed.load(std::memory_order_relaxed);
  out.dropped = s.dropped.load(std::memory_order_relaxed);
  out.protocol_errors = s.protocol_errors.load(std::memory_order_relaxed);
  out.evictions = s.evictions.load(std::memory_order_relaxed);
  out.shed_expired = s.shed_expired.load(std::memory_order_relaxed);
  out.credit_stalls = s.credit_stalls.load(std::memory_order_relaxed);
  out.drained = s.drained.load(std::memory_order_relaxed);
  out.drain_aborted = s.drain_aborted.load(std::memory_order_relaxed);
  out.drain_refused = s.drain_refused.load(std::memory_order_relaxed);
  return out;
}

std::string to_string(const Daemon::Stats& stats) {
  return "requests=" + std::to_string(stats.requests) +
         " vectors=" + std::to_string(stats.vectors) +
         " throttled=" + std::to_string(stats.throttled) +
         " bad_request=" + std::to_string(stats.bad_request) +
         " exec_errors=" + std::to_string(stats.exec_errors) +
         " reclaimed=" + std::to_string(stats.reclaimed) +
         " dropped=" + std::to_string(stats.dropped) +
         " protocol_errors=" + std::to_string(stats.protocol_errors) +
         " evictions=" + std::to_string(stats.evictions) +
         " shed_expired=" + std::to_string(stats.shed_expired) +
         " credit_stalls=" + std::to_string(stats.credit_stalls) +
         " drained=" + std::to_string(stats.drained) +
         " drain_aborted=" + std::to_string(stats.drain_aborted) +
         " drain_refused=" + std::to_string(stats.drain_refused);
}

void Daemon::service_loop() {
  std::vector<PendingExec> pending;
  const std::uint64_t sweep_ns = options_.sweep_ms * 1000000ULL;
  std::uint64_t last_sweep = monotonic_ns();
  const std::uint64_t publish_ns = options_.stats_publish_ms * 1000000ULL;
  std::uint64_t last_publish = 0;  // 0: publish on the first iteration

  while (!stop_requested_.load(std::memory_order_acquire)) {
    // Supervision heartbeat: stamped at least once per iteration, and the
    // idle park below is bounded by the sweep period, so a healthy loop
    // never lets the stamp age beyond ~sweep_ms + one serve.  (First-touch
    // planning on this thread can stall it for seconds — the supervisor's
    // wedge threshold must stay generous.)
    header()->heartbeat_ns.store(monotonic_ns(), std::memory_order_relaxed);
    if (fault::enabled()) {
      if (fault::point("ipc.daemon.service")) {
        // An unhandled serving-loop error: the exception leaves the thread
        // and std::terminate brings the whole process down — precisely the
        // crash the supervisor (whtd --supervise) exists to absorb.
        throw std::runtime_error("ipc::Daemon: service loop fault injected");
      }
      if (fault::point("ipc.daemon.wedge")) {
        // A wedged (not dead) daemon: alive pid, stale heartbeat.  Spin
        // here without stamping until stopped or killed from outside.
        while (!stop_requested_.load(std::memory_order_acquire)) {
          std::this_thread::sleep_for(std::chrono::milliseconds(20));
        }
        break;
      }
    }
    const std::uint32_t seen =
        header()->doorbell.load(std::memory_order_acquire);
    bool progress = poll_requests(pending);
    progress |= drain_completions(pending, /*block_one=*/false);

    const std::uint64_t now = monotonic_ns();
    if (now - last_sweep >= sweep_ns) {
      sweep();
      last_sweep = now;
    }
    if (publish_ns != 0 && now - last_publish >= publish_ns) {
      publish_stats_page();
      last_publish = now;
    }

    if (draining_.load(std::memory_order_acquire)) {
      // Graceful drain: no parking from here on.  Done when nothing is
      // pending inside the Engine AND every live client's rings are empty —
      // all submitted work answered, every answer consumed.  A consumer
      // that never drains its ring (SIGSTOPped under load) hits the
      // deadline instead: the drain aborts typed and counted, never hangs.
      if (pending.empty() && rings_flushed()) {
        header()->stats.drained.fetch_add(1, std::memory_order_relaxed);
        break;
      }
      if (monotonic_ns() >= drain_deadline_ns_.load(std::memory_order_acquire)) {
        header()->stats.drain_aborted.fetch_add(1, std::memory_order_relaxed);
        break;
      }
      if (!pending.empty()) {
        drain_completions(pending, /*block_one=*/true);
      } else if (!progress) {
        // Only consumers are left to act; poll their cursors gently.
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      continue;
    }
    if (progress) continue;

    if (!pending.empty()) {
      // Engine work is in flight; completions, not doorbells, are the next
      // event.  A short blocking poll keeps response latency tight without
      // busy-spinning the service thread.
      drain_completions(pending, /*block_one=*/true);
      continue;
    }
    // Idle: park on the doorbell until a client rings or the sweep is due.
    const std::uint64_t since_sweep = monotonic_ns() - last_sweep;
    const std::int64_t budget =
        since_sweep >= sweep_ns
            ? 0
            : static_cast<std::int64_t>(sweep_ns - since_sweep);
    if (budget > 0) {
      spin_then_wait(header()->doorbell, seen, /*spins=*/4000, budget);
    }
  }

  // Shutdown: answer everything already inside the Engine, then let stop()
  // publish the flag and wake the world.
  for (PendingExec& p : pending) {
    Status status = Status::kOk;
    try {
      p.future.get();
    } catch (...) {
      status = Status::kExecError;
      header()->stats.exec_errors.fetch_add(1, std::memory_order_relaxed);
    }
    if (status == Status::kOk) {
      header()->stats.vectors.fetch_add(p.count, std::memory_order_relaxed);
    }
    complete(p.index, p.generation, p.seq, status);
  }

  if (draining_.load(std::memory_order_acquire)) {
    // Durability barrier before the lifecycle edge: winners recorded this
    // run provably survive into the successor's prewarm.  The name is
    // released BEFORE kStopped — the successor only recreates the
    // canonical name after observing the release (ENOENT) or kStopped, and
    // this daemon never unlinks again (name_released_), so exactly one
    // process ever owns the unlink→create transition.  kStopped is what
    // wait_drained() and the supervisor's handoff sequence poll for.
    engine_->flush_wisdom();
    release_name();
    set_lifecycle(Lifecycle::kStopped);
  }
}

bool Daemon::rings_flushed() const {
  for (std::uint32_t s = 0; s < options_.slots; ++s) {
    SlotShared* cell = slot(s);
    if (cell->state.load(std::memory_order_acquire) != kActive) continue;
    const std::uint32_t pid = cell->pid.load(std::memory_order_acquire);
    if (!pid_alive(pid)) continue;  // a corpse is the sweep's problem
    const std::uint32_t requests = cell->requests.size();
    const std::uint32_t responses = cell->responses.size();
    // Scribbled cursor words report impossible occupancy (> ring depth);
    // nothing deliverable lives there, so they cannot hold the drain open.
    if (requests != 0 && requests <= kRingDepth) return false;
    if (responses != 0 && responses <= kRingDepth) return false;
  }
  return true;
}

bool Daemon::poll_requests(std::vector<PendingExec>& pending) {
  bool any = false;
  for (std::uint32_t s = 0; s < options_.slots; ++s) {
    SlotShared* cell = slot(s);
    if (cell->state.load(std::memory_order_acquire) != kActive) continue;
    const std::uint64_t gen =
        cell->generation.load(std::memory_order_acquire);
    if (gen != slot_local_[s].seen_generation) {
      // A new client took this slot: budgets and rap sheet start fresh.
      slot_local_[s].new_tenant(gen);
      cell->credits.store(options_.credit_limit, std::memory_order_relaxed);
    }
    // Bounded drain: at most one ring's worth per slot per round.  A
    // byzantine producer that keeps bumping its tail cursor could otherwise
    // pin the loop on one slot and starve its neighbours (and the
    // heartbeat) — with the bound it buys at most kRingDepth pops before
    // the round moves on.
    Request request;
    for (std::uint32_t budget = kRingDepth; budget != 0; --budget) {
      const RingOp op = cell->requests.try_pop_checked(request);
      if (op == RingOp::kEmpty) break;
      any = true;
      if (op == RingOp::kCorrupt) {
        // Scribbled cursor words: an impossible occupancy, not a full ring.
        // Typed signal + strike; never trust the delta enough to read.
        header()->stats.protocol_errors.fetch_add(1,
                                                  std::memory_order_relaxed);
        strike(s, cell);
        break;
      }
      handle_request(s, cell, gen, request, pending);
      if (cell->state.load(std::memory_order_acquire) != kActive ||
          cell->generation.load(std::memory_order_acquire) != gen) {
        break;  // the tenant was evicted mid-drain; its queue died with it
      }
    }
  }
  return any;
}

void Daemon::handle_request(std::uint32_t index, SlotShared* cell,
                            std::uint64_t gen, const Request& request,
                            std::vector<PendingExec>& pending) {
  SharedStats& stats = header()->stats;
  stats.requests.fetch_add(1, std::memory_order_relaxed);
  SlotLocal& local = slot_local_[index];

  // Trust boundary (validate.hpp): `request` is already a daemon-local
  // snapshot — the checked pop copied it out of the shared ring — and every
  // verdict below is about that snapshot only.  The bounds come from
  // options_/layout_, never from the (client-writable) header.
  const SlotBounds bounds{options_.arena_doubles, kMaxRequestN};
  const Verdict verdict =
      validate_request(request, gen, local.last_counter, bounds);
  if (verdict == Verdict::kStaleGeneration) {
    // A previous slot owner's late push racing the reclaim — expected
    // churn, not hostility; must not be answered into the current owner's
    // ring.
    stats.dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (verdict != Verdict::kAccept) {
    // A state the shipped client library can never produce: answer typed,
    // book a strike, evict on repeat offense.
    stats.protocol_errors.fetch_add(1, std::memory_order_relaxed);
    respond(index, cell, request.seq, Status::kProtocolError);
    strike(index, cell);
    return;
  }
  local.last_counter = static_cast<std::uint32_t>(request.seq & 0xffffffffULL);

  if (draining_.load(std::memory_order_acquire)) {
    // Planned restart: admission is closed.  Refuse typed with a retry
    // hint — the remaining drain budget bounds how soon the successor owns
    // the endpoint, so a handoff-aware client re-handshakes immediately
    // instead of backing off.
    stats.drain_refused.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t deadline =
        drain_deadline_ns_.load(std::memory_order_acquire);
    const std::uint64_t at = monotonic_ns();
    const std::int32_t hint_ms =
        deadline > at ? static_cast<std::int32_t>((deadline - at) / 1000000ULL)
                      : 0;
    respond(index, cell, request.seq, Status::kDraining, hint_ms);
    return;
  }

  const std::uint64_t now = monotonic_ns();
  // Overload degradation, cheapest checks first.  Shedding precedes the
  // budgets: an expired request must not charge credits or rate quota for
  // work that will not happen.
  if (options_.shed_expired && request_expired(request, now)) {
    stats.shed_expired.fetch_add(1, std::memory_order_relaxed);
    respond(index, cell, request.seq, Status::kTimeout);
    return;
  }
  if (!local.credits.try_spend(request.count, now)) {
    stats.credit_stalls.fetch_add(1, std::memory_order_relaxed);
    cell->credits.store(local.credits.available(now),
                        std::memory_order_relaxed);
    respond(index, cell, request.seq, Status::kThrottled);
    return;
  }
  cell->credits.store(local.credits.available(now),
                      std::memory_order_relaxed);
  if (!local.limiter.try_acquire(now)) {
    stats.throttled.fetch_add(1, std::memory_order_relaxed);
    respond(index, cell, request.seq, Status::kThrottled);
    return;
  }

  const std::uint64_t size = std::uint64_t{1} << request.n;
  double* data = arena(index) + request.offset;
  if (request.count == 1) {
    // Single vectors ride the Engine's coalescing submit() path: requests
    // from different client processes for the same n merge into one batched
    // run on the arbitrated backend.
    try {
      PendingExec exec;
      exec.index = index;
      exec.generation = gen;
      exec.seq = request.seq;
      exec.count = 1;
      exec.future = engine_->submit(static_cast<int>(request.n), data);
      pending.push_back(std::move(exec));
    } catch (...) {
      stats.exec_errors.fetch_add(1, std::memory_order_relaxed);
      respond(index, cell, request.seq, Status::kExecError);
    }
    return;
  }
  // Client-side batches are already shaped for the batch path — run them
  // directly on the arbitrated backend with the service thread's context.
  try {
    engine_->execute_many(static_cast<int>(request.n), data, request.count,
                          static_cast<std::ptrdiff_t>(size), ctx_);
    stats.vectors.fetch_add(request.count, std::memory_order_relaxed);
    respond(index, cell, request.seq, Status::kOk);
  } catch (...) {
    stats.exec_errors.fetch_add(1, std::memory_order_relaxed);
    respond(index, cell, request.seq, Status::kExecError);
  }
}

bool Daemon::drain_completions(std::vector<PendingExec>& pending,
                               bool block_one) {
  bool any = false;
  for (auto it = pending.begin(); it != pending.end();) {
    const bool ready =
        block_one
            ? it->future.wait_for(std::chrono::microseconds(200)) ==
                  std::future_status::ready
            : it->future.wait_for(std::chrono::seconds(0)) ==
                  std::future_status::ready;
    block_one = false;  // only the first entry gets the blocking poll
    if (!ready) {
      ++it;
      continue;
    }
    Status status = Status::kOk;
    try {
      it->future.get();
    } catch (...) {
      status = Status::kExecError;
      header()->stats.exec_errors.fetch_add(1, std::memory_order_relaxed);
    }
    if (status == Status::kOk) {
      header()->stats.vectors.fetch_add(it->count, std::memory_order_relaxed);
    }
    complete(it->index, it->generation, it->seq, status);
    it = pending.erase(it);
    any = true;
  }
  return any;
}

void Daemon::complete(std::uint32_t index, std::uint64_t gen,
                      std::uint64_t seq, Status status) {
  SlotShared* cell = slot(index);
  if (cell->state.load(std::memory_order_acquire) != kActive ||
      cell->generation.load(std::memory_order_acquire) != gen) {
    // The requester is gone (reclaimed, released, or evicted); its
    // successor must not see a stranger's completion.
    header()->stats.dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  respond(index, cell, seq, status);
}

void Daemon::respond(std::uint32_t index, SlotShared* cell, std::uint64_t seq,
                     Status status, std::int32_t hint_ms) {
  Response response;
  response.seq = seq;
  response.status = static_cast<std::int32_t>(status);
  response.hint_ms = hint_ms;
  // The client-side inflight cap (client.cpp) keeps outstanding responses
  // below the ring depth, so a full ring means a protocol-violating client;
  // a brief retry covers consumption races, then the response is dropped
  // (the client will time out — its own doing).  A *corrupt* consumer
  // cursor is different: no amount of waiting un-scribbles it, so the push
  // is abandoned immediately and the offense is struck.
  for (int attempt = 0; attempt < 1000; ++attempt) {
    // The injected fault makes this push attempt behave as a full ring,
    // exercising the retry-then-drop path on demand.
    const bool ring_full =
        fault::enabled() && fault::point("ipc.ring.publish");
    const RingOp op =
        ring_full ? RingOp::kFull : cell->responses.try_push_checked(response);
    if (op == RingOp::kOk) {
      futex_wake_all(cell->responses.tail);
      return;
    }
    if (op == RingOp::kCorrupt) {
      header()->stats.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      strike(index, cell);
      return;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(10));
  }
  header()->stats.dropped.fetch_add(1, std::memory_order_relaxed);
}

void Daemon::strike(std::uint32_t index, SlotShared* cell) {
  if (slot_local_[index].strikes.strike()) evict(index, cell);
}

void Daemon::evict(std::uint32_t index, SlotShared* cell) {
  // Generation bump FIRST: from this store on, every outstanding seq of
  // the evicted tenant is stale — in-flight Engine completions die on the
  // generation check in complete(), late ring pushes die in
  // validate_request.  Then free the slot exactly like a dead-client
  // reclaim.  The evicted process keeps its (read-only-to-us) mapping; its
  // next wait notices the generation change and resolves typed instead of
  // hanging (client.cpp's eviction probe).
  cell->generation.fetch_add(1, std::memory_order_acq_rel);
  cell->pid.store(0, std::memory_order_release);
  cell->requests.reset();
  cell->responses.reset();
  cell->state.store(kFree, std::memory_order_release);
  futex_wake_all(cell->responses.tail);
  slot_local_[index].new_tenant(
      cell->generation.load(std::memory_order_acquire));
  header()->stats.evictions.fetch_add(1, std::memory_order_relaxed);
}

void Daemon::sweep() {
  for (std::uint32_t s = 0; s < options_.slots; ++s) {
    SlotShared* cell = slot(s);
    const std::uint32_t state = cell->state.load(std::memory_order_acquire);
    if (state == kFree) {
      slot_local_[s].claim_strikes = 0;
      continue;
    }
    const std::uint32_t pid = cell->pid.load(std::memory_order_acquire);
    if (pid != 0) {
      slot_local_[s].claim_strikes = 0;
      if (!pid_alive(pid)) reclaim(s, cell);
    } else {
      // Non-free but ownerless: a kClaimed handshake in progress
      // (microseconds), a client that died mid-claim, or a byzantine
      // tenant that scribbled its own pid/state words (kActive with pid 0
      // is unreachable through the client library).  Three sweep periods
      // of grace separates a live handshake from a zombie either way.
      if (++slot_local_[s].claim_strikes >= 3) reclaim(s, cell);
    }
  }
}

void Daemon::reclaim(std::uint32_t index, SlotShared* cell) {
  // The owner is dead, so the daemon is the only toucher: reset both rings
  // (dropping anything the corpse left queued), clear the pid, and free the
  // slot.  In-flight Engine work for this slot still completes — its
  // completion is dropped by the generation/state check in complete(), and
  // the arena memory stays mapped for as long as the daemon runs.
  cell->pid.store(0, std::memory_order_release);
  cell->requests.reset();
  cell->responses.reset();
  cell->state.store(kFree, std::memory_order_release);
  slot_local_[index].limiter.reset();
  slot_local_[index].claim_strikes = 0;
  header()->stats.reclaimed.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace whtlab::ipc
