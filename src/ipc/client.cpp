#include "ipc/client.hpp"

#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "ipc/futex.hpp"

namespace whtlab::ipc {

namespace {

bool pid_alive(std::uint32_t pid) {
  if (pid == 0) return false;
  return ::kill(static_cast<pid_t>(pid), 0) == 0 || errno != ESRCH;
}

/// Liveness probes are syscalls; amortize them across wait slices.
constexpr std::uint64_t kLivenessProbeNs = 200000000ULL;  // 200 ms
constexpr std::int64_t kWaitSliceNs = 20000000LL;         // 20 ms

}  // namespace

Client Client::connect(const Options& options) {
  Client client;
  const std::string name = shm_name_for(options.endpoint);
  try {
    client.shm_ = Shm::open(name);
  } catch (const std::runtime_error& error) {
    throw Error(Status::kDaemonGone,
                "ipc::Client: no daemon at '" + options.endpoint +
                    "' (" + error.what() + ")");
  }
  if (client.shm_.size() < sizeof(ControlHeader)) {
    throw Error(Status::kBadRequest, "ipc::Client: runt control segment");
  }
  ControlHeader* hdr = static_cast<ControlHeader*>(client.shm_.data());
  if (hdr->magic != kMagic || hdr->version != kVersion) {
    throw Error(Status::kBadRequest,
                "ipc::Client: segment version mismatch (daemon built from "
                "a different protocol revision?)");
  }
  if (hdr->abi != abi_tag() || hdr->ring_depth != kRingDepth) {
    throw Error(Status::kBadRequest,
                "ipc::Client: segment ABI mismatch — rebuild client or "
                "daemon");
  }
  if (hdr->shutdown.load(std::memory_order_acquire) != 0 ||
      !pid_alive(hdr->daemon_pid.load(std::memory_order_acquire))) {
    throw Error(Status::kDaemonGone,
                "ipc::Client: daemon for '" + options.endpoint +
                    "' is shut down or dead");
  }
  client.layout_.slot_count = hdr->slot_count;
  client.layout_.arena_doubles = hdr->arena_doubles;
  if (client.shm_.size() < client.layout_.total_bytes()) {
    throw Error(Status::kBadRequest, "ipc::Client: truncated segment");
  }
  client.timeout_ms_ =
      options.timeout_ms != 0 ? options.timeout_ms : hdr->timeout_ms;

  // Admission control: claim the first free slot by CAS.  Losing every CAS
  // and finding no kFree cell is the typed "server full" answer.
  for (std::uint32_t s = 0; s < hdr->slot_count; ++s) {
    SlotShared* cell = client.layout_.slot(client.shm_.data(), s);
    std::uint32_t expected = kFree;
    if (!cell->state.compare_exchange_strong(expected, kClaimed,
                                             std::memory_order_acq_rel)) {
      continue;
    }
    // Ours alone now: the daemon ignores non-kActive slots, other clients
    // lost the CAS.  Publish identity, reset the rings from any previous
    // tenancy, then go active.
    client.slot_index_ = s;
    client.generation_ = cell->generation.fetch_add(1, std::memory_order_acq_rel) + 1;
    cell->pid.store(static_cast<std::uint32_t>(::getpid()),
                    std::memory_order_release);
    cell->requests.reset();
    cell->responses.reset();
    cell->state.store(kActive, std::memory_order_release);
    client.arena_.attach(
        client.layout_.arena(client.shm_.data(), s),
        static_cast<std::size_t>(hdr->arena_doubles));
    client.attached_ = true;
    return client;
  }
  throw Error(Status::kServerFull,
              "ipc::Client: all " + std::to_string(hdr->slot_count) +
                  " client slots of '" + options.endpoint +
                  "' are claimed (admission control)");
}

bool Client::wait_for_daemon(const std::string& endpoint,
                             std::uint64_t wait_ms) {
  const std::string name = shm_name_for(endpoint);
  const std::uint64_t deadline = monotonic_ns() + wait_ms * 1000000ULL;
  do {
    if (Shm::exists(name)) {
      try {
        const Shm probe = Shm::open(name);
        if (probe.size() >= sizeof(ControlHeader)) {
          const auto* hdr = static_cast<const ControlHeader*>(probe.data());
          if (hdr->magic == kMagic &&
              hdr->shutdown.load(std::memory_order_acquire) == 0 &&
              pid_alive(hdr->daemon_pid.load(std::memory_order_acquire))) {
            return true;
          }
        }
      } catch (const std::runtime_error&) {
        // Unlinked between exists and open; keep polling.
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  } while (monotonic_ns() < deadline);
  return false;
}

Client::~Client() {
  if (!attached_ || !shm_.valid()) return;
  // Drain what is in flight so the daemon is not mid-conversation with a
  // freed slot; bounded — a dead daemon must not hang our destructor.
  const std::uint64_t deadline =
      monotonic_ns() + std::min<std::uint64_t>(timeout_ms_, 500) * 1000000ULL;
  while (!outstanding_.empty() && daemon_alive() &&
         monotonic_ns() < deadline) {
    if (wait_any_response(deadline) != Status::kOk) break;
  }
  SlotShared* cell = slot();
  std::uint32_t expected = kActive;
  cell->pid.store(0, std::memory_order_release);
  cell->state.compare_exchange_strong(expected, kFree,
                                      std::memory_order_acq_rel);
}

bool Client::daemon_alive() const {
  const ControlHeader* hdr = header();
  if (hdr->shutdown.load(std::memory_order_acquire) != 0) return false;
  return pid_alive(hdr->daemon_pid.load(std::memory_order_acquire));
}

void Client::ring_doorbell() {
  header()->doorbell.fetch_add(1, std::memory_order_release);
  futex_wake_all(header()->doorbell);
}

std::uint64_t Client::make_seq() {
  return (generation_ << 32) | std::uint64_t{next_counter_++};
}

std::uint64_t Client::deadline_from_now() const {
  return monotonic_ns() + timeout_ms_ * 1000000ULL;
}

double* Client::stage(int n, std::size_t count) {
  if (n < 1 || n > 30 || count < 1) {
    throw Error(Status::kBadRequest, "ipc::Client::stage: bad shape");
  }
  const std::uint64_t need = (std::uint64_t{1} << n) * count;
  if (need > arena_.max_allocation()) {
    throw Error(Status::kTooLarge,
                "ipc::Client::stage: " + std::to_string(need) +
                    " doubles exceed the slot arena (" +
                    std::to_string(arena_.capacity()) +
                    "); raise WHTLAB_IPC_ARENA_BYTES on the daemon");
  }
  double* p = arena_.allocate(static_cast<std::size_t>(need));
  if (p != nullptr) return p;
  // The arena is packed with earlier requests.  Wait out everything in
  // flight, then recycle it whole (documented: invalidates earlier staged
  // results).
  const std::uint64_t deadline = deadline_from_now();
  while (!outstanding_.empty()) {
    const Status status = wait_any_response(deadline);
    if (status != Status::kOk) {
      throw Error(status, "ipc::Client::stage: draining in-flight requests "
                          "failed while recycling the arena");
    }
  }
  arena_.reset();
  p = arena_.allocate(static_cast<std::size_t>(need));
  return p;  // cannot fail: need <= max_allocation and the arena is empty
}

Status Client::submit(int n, double* staged, std::size_t count,
                      Ticket& ticket) {
  if (!attached_) return Status::kDaemonGone;
  if (n < 1 || n > 30 || count < 1) return Status::kBadRequest;
  if (!daemon_alive()) return Status::kDaemonGone;
  // Backpressure: keep outstanding responses below the ring depth so the
  // daemon's response push can never meet a full ring.
  const std::uint64_t deadline = deadline_from_now();
  while (outstanding_.size() >= kRingDepth - 1) {
    const Status status = wait_any_response(deadline);
    if (status != Status::kOk) return status;
  }
  Request request;
  request.seq = make_seq();
  request.n = static_cast<std::uint32_t>(n);
  request.count = static_cast<std::uint32_t>(count);
  request.offset = arena_.offset_of(staged);
  while (!slot()->requests.try_push(request)) {
    // Request ring full: the daemon is behind; give it room.
    if (!daemon_alive()) return Status::kDaemonGone;
    if (monotonic_ns() >= deadline) return Status::kTimeout;
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  outstanding_.insert(request.seq);
  ring_doorbell();
  ticket.seq = request.seq;
  ticket.data = staged;
  ticket.n = request.n;
  ticket.count = request.count;
  return Status::kOk;
}

void Client::drain_responses() {
  Response response;
  while (slot()->responses.try_pop(response)) {
    if ((response.seq >> 32) != (generation_ & 0xffffffffULL)) {
      continue;  // a previous tenant's stale answer
    }
    outstanding_.erase(response.seq);
    completed_[response.seq] = static_cast<Status>(response.status);
  }
  // Abandoned (timed-out, never wait()ed) completions must not accumulate
  // forever on a long-lived client.
  if (completed_.size() > 4 * kRingDepth) {
    completed_.erase(completed_.begin(),
                     std::prev(completed_.end(), 2 * kRingDepth));
  }
}

Status Client::wait_any_response(std::uint64_t deadline_ns) {
  const std::size_t before = completed_.size();
  std::uint64_t next_probe = 0;
  for (;;) {
    drain_responses();
    if (completed_.size() > before || outstanding_.empty()) return Status::kOk;
    const std::uint64_t now = monotonic_ns();
    if (now >= deadline_ns) return Status::kTimeout;
    if (now >= next_probe) {
      if (!daemon_alive()) return Status::kDaemonGone;
      next_probe = now + kLivenessProbeNs;
    }
    const auto& word = slot()->responses.tail;
    const std::uint32_t seen = word.load(std::memory_order_acquire);
    drain_responses();
    if (completed_.size() > before || outstanding_.empty()) return Status::kOk;
    spin_then_wait(
        word, seen, /*spins=*/2000,
        std::min<std::int64_t>(kWaitSliceNs,
                               static_cast<std::int64_t>(deadline_ns - now)));
  }
}

Status Client::wait_seq(std::uint64_t seq, double*) {
  const std::uint64_t deadline = deadline_from_now();
  for (;;) {
    drain_responses();
    const auto it = completed_.find(seq);
    if (it != completed_.end()) {
      const Status status = it->second;
      completed_.erase(it);
      return status;
    }
    if (outstanding_.count(seq) == 0) {
      // Neither pending nor completed: waited twice, or the completion was
      // evicted from the abandoned-response cache.
      return Status::kBadRequest;
    }
    const Status status = wait_any_response(deadline);
    if (status != Status::kOk) return status;
  }
}

Status Client::wait(const Ticket& ticket) {
  if (!attached_) return Status::kDaemonGone;
  return wait_seq(ticket.seq, ticket.data);
}

Status Client::transform(int n, double* staged, std::size_t count) {
  Ticket ticket;
  const Status submitted = submit(n, staged, count, ticket);
  if (submitted != Status::kOk) return submitted;
  return wait(ticket);
}

Status Client::transform_copy(int n, double* data, std::size_t count) {
  double* staged = nullptr;
  try {
    staged = stage(n, count);
  } catch (const Error& error) {
    return error.status();
  }
  const std::uint64_t bytes =
      (std::uint64_t{1} << n) * count * sizeof(double);
  std::memcpy(staged, data, bytes);
  const Status status = transform(n, staged, count);
  if (status == Status::kOk) std::memcpy(data, staged, bytes);
  return status;
}

Client::DaemonStats Client::stats() const {
  DaemonStats out;
  const SharedStats& s = header()->stats;
  out.requests = s.requests.load(std::memory_order_relaxed);
  out.vectors = s.vectors.load(std::memory_order_relaxed);
  out.throttled = s.throttled.load(std::memory_order_relaxed);
  out.bad_request = s.bad_request.load(std::memory_order_relaxed);
  out.exec_errors = s.exec_errors.load(std::memory_order_relaxed);
  out.reclaimed = s.reclaimed.load(std::memory_order_relaxed);
  out.dropped = s.dropped.load(std::memory_order_relaxed);
  return out;
}

}  // namespace whtlab::ipc
