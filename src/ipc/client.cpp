#include "ipc/client.hpp"

#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "ipc/futex.hpp"
#include "util/fault.hpp"
#include "util/rng.hpp"

namespace whtlab::ipc {

namespace {

namespace fault = util::fault;

bool pid_alive(std::uint32_t pid) {
  if (pid == 0) return false;
  return ::kill(static_cast<pid_t>(pid), 0) == 0 || errno != ESRCH;
}

/// Liveness probes are syscalls; amortize them across wait slices.
constexpr std::uint64_t kLivenessProbeNs = 200000000ULL;  // 200 ms
constexpr std::int64_t kWaitSliceNs = 20000000LL;         // 20 ms

}  // namespace

Client Client::connect(const Options& options) {
  // Serving entry point: a WHTLAB_FAULTS spec set on the client process
  // arms its fault points here (no-op when unset).
  fault::arm_from_env();
  if (options.reconnect) {
    // Typed rejection, not silent clamping: a zero window or an inverted
    // backoff range is a configuration bug the caller must see.
    if (options.reconnect_window_ms < 1) {
      throw Error(Status::kBadRequest,
                  "ipc::Client: reconnect_window_ms must be >= 1");
    }
    if (options.backoff_initial_ms < 1) {
      throw Error(Status::kBadRequest,
                  "ipc::Client: backoff_initial_ms must be >= 1");
    }
    if (options.backoff_max_ms < options.backoff_initial_ms) {
      throw Error(Status::kBadRequest,
                  "ipc::Client: backoff_max_ms must be >= backoff_initial_ms");
    }
  }
  if (options.request_deadline_ms > 86400000) {
    throw Error(Status::kBadRequest,
                "ipc::Client: request_deadline_ms must be <= 86400000");
  }
  Client client;
  client.endpoint_ = options.endpoint;
  client.option_timeout_ms_ = options.timeout_ms;
  client.reconnect_ = options.reconnect;
  client.reconnect_window_ms_ = options.reconnect_window_ms;
  client.backoff_initial_ms_ = options.backoff_initial_ms;
  client.backoff_max_ms_ = options.backoff_max_ms;
  client.drain_ms_ = options.drain_ms;
  client.request_deadline_ms_ = options.request_deadline_ms;
  client.attach_endpoint();
  return client;
}

void Client::attach_endpoint() {
  const std::string name = shm_name_for(endpoint_);
  try {
    shm_ = Shm::open(name);
  } catch (const std::runtime_error& error) {
    throw Error(Status::kDaemonGone,
                "ipc::Client: no daemon at '" + endpoint_ +
                    "' (" + error.what() + ")");
  }
  if (shm_.size() < sizeof(ControlHeader)) {
    throw Error(Status::kBadRequest, "ipc::Client: runt control segment");
  }
  ControlHeader* hdr = static_cast<ControlHeader*>(shm_.data());
  if (hdr->magic != kMagic || hdr->version != kVersion) {
    throw Error(Status::kBadRequest,
                "ipc::Client: segment version mismatch (daemon built from "
                "a different protocol revision?)");
  }
  if (hdr->abi != abi_tag() || hdr->ring_depth != kRingDepth) {
    throw Error(Status::kBadRequest,
                "ipc::Client: segment ABI mismatch — rebuild client or "
                "daemon");
  }
  if (hdr->shutdown.load(std::memory_order_acquire) != 0 ||
      !pid_alive(hdr->daemon_pid.load(std::memory_order_acquire))) {
    throw Error(Status::kDaemonGone,
                "ipc::Client: daemon for '" + endpoint_ +
                    "' is shut down or dead");
  }
  const auto lifecycle = static_cast<Lifecycle>(
      hdr->lifecycle.load(std::memory_order_acquire));
  if (lifecycle == Lifecycle::kDraining || lifecycle == Lifecycle::kStopped) {
    // Planned restart in progress: the predecessor still holds the name
    // while it drains, but admits nothing.  Typed so the reconnect engine
    // can fast-poll for the successor instead of backing off.
    throw Error(Status::kDraining,
                "ipc::Client: daemon for '" + endpoint_ +
                    "' is draining (planned restart); retry — a warm "
                    "successor is taking the endpoint over");
  }
  layout_.slot_count = hdr->slot_count;
  layout_.arena_doubles = hdr->arena_doubles;
  if (shm_.size() < layout_.total_bytes()) {
    throw Error(Status::kBadRequest, "ipc::Client: truncated segment");
  }
  timeout_ms_ = option_timeout_ms_ != 0 ? option_timeout_ms_ : hdr->timeout_ms;

  // Admission control: claim the first free slot by CAS.  Losing every CAS
  // and finding no kFree cell is the typed "server full" answer.
  for (std::uint32_t s = 0; s < hdr->slot_count; ++s) {
    SlotShared* cell = layout_.slot(shm_.data(), s);
    std::uint32_t expected = kFree;
    if (!cell->state.compare_exchange_strong(expected, kClaimed,
                                             std::memory_order_acq_rel)) {
      continue;
    }
    // Ours alone now: the daemon ignores non-kActive slots, other clients
    // lost the CAS.  Publish identity, reset the rings from any previous
    // tenancy, then go active.
    slot_index_ = s;
    generation_ = cell->generation.fetch_add(1, std::memory_order_acq_rel) + 1;
    cell->pid.store(static_cast<std::uint32_t>(::getpid()),
                    std::memory_order_release);
    cell->requests.reset();
    cell->responses.reset();
    cell->state.store(kActive, std::memory_order_release);
    arena_.attach(layout_.arena(shm_.data(), s),
                  static_cast<std::size_t>(hdr->arena_doubles));
    attached_ = true;
    return;
  }
  throw Error(Status::kServerFull,
              "ipc::Client: all " + std::to_string(hdr->slot_count) +
                  " client slots of '" + endpoint_ +
                  "' are claimed (admission control)");
}

bool Client::wait_for_daemon(const std::string& endpoint,
                             std::uint64_t wait_ms) {
  const std::string name = shm_name_for(endpoint);
  const std::uint64_t deadline = monotonic_ns() + wait_ms * 1000000ULL;
  do {
    if (Shm::exists(name)) {
      try {
        const Shm probe = Shm::open(name);
        if (probe.size() >= sizeof(ControlHeader)) {
          const auto* hdr = static_cast<const ControlHeader*>(probe.data());
          if (hdr->magic == kMagic &&
              hdr->shutdown.load(std::memory_order_acquire) == 0 &&
              pid_alive(hdr->daemon_pid.load(std::memory_order_acquire)) &&
              hdr->lifecycle.load(std::memory_order_acquire) <=
                  Lifecycle::kServing) {
            return true;  // booting/warming/serving; never a draining corpse
          }
        }
      } catch (const std::runtime_error&) {
        // Unlinked between exists and open; keep polling.
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  } while (monotonic_ns() < deadline);
  return false;
}

Client::~Client() {
  if (!attached_ || !shm_.valid()) return;
  // Drain what is in flight so the daemon is not mid-conversation with a
  // freed slot; bounded by drain_ms — a dead (or wedged) daemon must not
  // hang our destructor.
  const std::uint64_t deadline = monotonic_ns() + drain_ms_ * 1000000ULL;
  while (!outstanding_.empty() && daemon_alive() &&
         monotonic_ns() < deadline) {
    if (wait_any_response(deadline) != Status::kOk) break;
  }
  SlotShared* cell = slot();
  std::uint32_t expected = kActive;
  cell->pid.store(0, std::memory_order_release);
  cell->state.compare_exchange_strong(expected, kFree,
                                      std::memory_order_acq_rel);
}

bool Client::daemon_alive() const {
  const ControlHeader* hdr = header();
  if (hdr->shutdown.load(std::memory_order_acquire) != 0) return false;
  return pid_alive(hdr->daemon_pid.load(std::memory_order_acquire));
}

void Client::ring_doorbell() {
  header()->doorbell.fetch_add(1, std::memory_order_release);
  futex_wake_all(header()->doorbell);
}

std::uint64_t Client::make_seq() {
  return (generation_ << 32) | std::uint64_t{next_counter_++};
}

std::uint64_t Client::deadline_from_now() const {
  // A resilient client's per-request deadline covers one full outage: the
  // serve timeout plus the whole reconnect window.
  const std::uint64_t budget_ms =
      timeout_ms_ + (reconnect_ ? reconnect_window_ms_ : 0);
  return monotonic_ns() + budget_ms * 1000000ULL;
}

bool Client::try_reconnect() {
  if (!reconnect_) return false;
  if (attached_ && shm_.valid()) {
    // Release the old slot before walking away: a draining daemon's
    // handoff completes only once every live slot's rings are consumed,
    // and the answers still queued here (typed kDraining refusals
    // included) will never be read — they replay on the successor
    // instead.  Without this, every abandoned slot holds the predecessor's
    // drain open until its deadline aborts it.
    SlotShared* cell = slot();
    cell->pid.store(0, std::memory_order_release);
    std::uint32_t expected = kActive;
    cell->state.compare_exchange_strong(expected, kFree,
                                        std::memory_order_acq_rel);
    // Keep the dead mapping alive for the Client's lifetime: the caller
    // holds stage() pointers (and awaits results) inside its arena.
    retired_.push_back(std::move(shm_));
  }
  attached_ = false;
  // Wire seqs of the dead connection can never be answered; replay below
  // assigns fresh ones under the new generation.
  wire_to_ticket_.clear();

  util::Rng jitter;
  jitter.reseed(monotonic_ns() ^
                (static_cast<std::uint64_t>(::getpid()) << 32));
  const std::uint64_t deadline =
      monotonic_ns() + reconnect_window_ms_ * 1000000ULL;
  std::uint64_t delay_ms = backoff_initial_ms_;
  for (;;) {
    bool draining = false;
    try {
      attach_endpoint();
      break;
    } catch (const Error& error) {
      // kDaemonGone (not back yet), kServerFull (slots still claimed by
      // other reconnecting clients) — retry with backoff.  kDraining is the
      // planned-restart signal: the predecessor still holds the name while
      // it drains and a warm successor takes over any instant now.
      draining = error.status() == Status::kDraining;
    } catch (const std::exception&) {
      // runtime_error — retry.
    }
    const std::uint64_t now = monotonic_ns();
    if (now >= deadline) return false;
    if (draining) {
      // Short-circuit the backoff: poll fast and do not grow the delay —
      // this is a coordinated handoff, not an outage or a stampede.
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      continue;
    }
    // Capped exponential backoff with uniform jitter in [0, delay/2]:
    // a daemon restart must not be met by a synchronized client stampede.
    std::uint64_t sleep_ms = delay_ms + jitter.next() % (delay_ms / 2 + 1);
    sleep_ms = std::min<std::uint64_t>(sleep_ms,
                                       (deadline - now) / 1000000ULL + 1);
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
    delay_ms = std::min(delay_ms * 2, backoff_max_ms_);
  }
  reconnects_ += 1;

  // Replay every unacknowledged request, oldest ticket first: re-stage its
  // pristine snapshot into the fresh arena and resubmit under the new
  // generation.  A replay that cannot be placed resolves to a typed Status
  // instead of vanishing.
  const std::uint64_t push_deadline =
      monotonic_ns() + timeout_ms_ * 1000000ULL;
  const std::vector<std::uint64_t> seqs(outstanding_.begin(),
                                        outstanding_.end());
  for (const std::uint64_t seq : seqs) {
    Inflight& fl = inflight_.at(seq);
    const std::size_t need =
        static_cast<std::size_t>(std::uint64_t{1} << fl.n) * fl.count;
    Status status = Status::kOk;
    double* p =
        need <= arena_.max_allocation() ? arena_.allocate(need) : nullptr;
    if (p == nullptr) {
      status = Status::kTooLarge;  // the new daemon's arena is smaller
    } else {
      std::memcpy(p, fl.snapshot.data(), need * sizeof(double));
      fl.current = p;
      status = push_request(seq, push_deadline);
    }
    if (status != Status::kOk) {
      outstanding_.erase(seq);
      inflight_.erase(seq);
      completed_[seq] = status;
    }
  }
  return true;
}

Status Client::push_request(std::uint64_t ticket_seq,
                            std::uint64_t deadline_ns) {
  Inflight& fl = inflight_.at(ticket_seq);
  // First submission rides the ticket seq itself; a replay needs a fresh
  // wire seq because the slot generation changed underneath the ticket.
  const std::uint64_t wire =
      (ticket_seq >> 32) == (generation_ & 0xffffffffULL) ? ticket_seq
                                                          : make_seq();
  Request request;
  request.seq = wire;
  request.n = fl.n;
  request.count = fl.count;
  request.offset = arena_.offset_of(fl.current);
  request.deadline_ns = fl.deadline_ns;
  const auto push = [&] {
    // Injected full ring: exercises the retry path below on demand.
    if (fault::enabled() && fault::point("ipc.ring.publish")) return false;
    return slot()->requests.try_push(request);
  };
  while (!push()) {
    // Request ring full: the daemon is behind; give it room.
    if (!daemon_alive()) return Status::kDaemonGone;
    if (monotonic_ns() >= deadline_ns) return Status::kTimeout;
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  wire_to_ticket_.erase(fl.wire_seq);
  fl.wire_seq = wire;
  wire_to_ticket_[wire] = ticket_seq;
  ring_doorbell();
  return Status::kOk;
}

double* Client::stage(int n, std::size_t count) {
  if (n < 1 || n > 30 || count < 1) {
    throw Error(Status::kBadRequest, "ipc::Client::stage: bad shape");
  }
  if (!attached_ && !try_reconnect()) {
    throw Error(Status::kDaemonGone, "ipc::Client::stage: not connected");
  }
  const std::uint64_t need = (std::uint64_t{1} << n) * count;
  if (need > arena_.max_allocation()) {
    throw Error(Status::kTooLarge,
                "ipc::Client::stage: " + std::to_string(need) +
                    " doubles exceed the slot arena (" +
                    std::to_string(arena_.capacity()) +
                    "); raise WHTLAB_IPC_ARENA_BYTES on the daemon");
  }
  double* p = arena_.allocate(static_cast<std::size_t>(need));
  if (p != nullptr) return p;
  // The arena is packed with earlier requests.  Wait out everything in
  // flight, then recycle it whole (documented: invalidates earlier staged
  // results).
  const std::uint64_t deadline = deadline_from_now();
  while (!outstanding_.empty()) {
    const Status status = wait_any_response(deadline);
    if (status == Status::kDaemonGone && try_reconnect()) continue;
    if (status != Status::kOk) {
      throw Error(status, "ipc::Client::stage: draining in-flight requests "
                          "failed while recycling the arena");
    }
  }
  arena_.reset();
  p = arena_.allocate(static_cast<std::size_t>(need));
  return p;  // cannot fail: need <= max_allocation and the arena is empty
}

Status Client::submit(int n, double* staged, std::size_t count,
                      Ticket& ticket) {
  if (n < 1 || n > 30 || count < 1) return Status::kBadRequest;
  if (!attached_ && !try_reconnect()) return Status::kDaemonGone;
  if (!daemon_alive() && !try_reconnect()) return Status::kDaemonGone;
  // Backpressure: keep outstanding responses below the ring depth so the
  // daemon's response push can never meet a full ring.
  const std::uint64_t deadline = deadline_from_now();
  while (outstanding_.size() >= kRingDepth - 1) {
    const Status status = wait_any_response(deadline);
    if (status == Status::kDaemonGone && try_reconnect()) continue;
    if (status != Status::kOk) return status;
  }
  const std::size_t need =
      static_cast<std::size_t>(std::uint64_t{1} << n) * count;
  double* current = staged;
  if (!arena_.contains(staged)) {
    // Staged before a reconnect: the pointer names retired memory the new
    // daemon cannot see.  Re-home the bytes into the live arena (the
    // retired mapping keeps them readable).
    if (!reconnect_) return Status::kBadRequest;
    if (need > arena_.max_allocation()) return Status::kTooLarge;
    current = arena_.allocate(need);
    if (current == nullptr) {
      const std::uint64_t drain_deadline = deadline_from_now();
      while (!outstanding_.empty()) {
        const Status status = wait_any_response(drain_deadline);
        if (status == Status::kDaemonGone && try_reconnect()) continue;
        if (status != Status::kOk) return status;
      }
      arena_.reset();
      current = arena_.allocate(need);
    }
    std::memcpy(current, staged, need * sizeof(double));
  }
  const std::uint64_t seq = make_seq();
  Inflight fl;
  fl.n = static_cast<std::uint32_t>(n);
  fl.count = static_cast<std::uint32_t>(count);
  fl.data = staged;
  fl.current = current;
  if (request_deadline_ms_ != 0) {
    fl.deadline_ns = monotonic_ns() + request_deadline_ms_ * 1000000ULL;
  }
  if (reconnect_) fl.snapshot.assign(current, current + need);
  inflight_[seq] = std::move(fl);
  outstanding_.insert(seq);
  Status pushed = push_request(seq, deadline);
  if (pushed == Status::kDaemonGone && try_reconnect()) {
    // The replay inside try_reconnect resubmitted (or typed-failed) it.
    pushed = Status::kOk;
  }
  if (pushed != Status::kOk) {
    outstanding_.erase(seq);
    inflight_.erase(seq);
    return pushed;
  }
  ticket.seq = seq;
  ticket.data = staged;
  ticket.n = static_cast<std::uint32_t>(n);
  ticket.count = static_cast<std::uint32_t>(count);
  return Status::kOk;
}

void Client::drain_responses() {
  Response response;
  while (slot()->responses.try_pop(response)) {
    if ((response.seq >> 32) != (generation_ & 0xffffffffULL)) {
      continue;  // a previous tenant's stale answer
    }
    const auto w = wire_to_ticket_.find(response.seq);
    if (w == wire_to_ticket_.end()) continue;  // duplicate or pre-replay echo
    const std::uint64_t ticket_seq = w->second;
    const Status status = static_cast<Status>(response.status);
    if (status == Status::kDraining) {
      drain_notices_ += 1;
      last_drain_hint_ms_ = response.hint_ms;
      if (reconnect_) {
        // Planned restart: the request was refused, not executed.  Keep the
        // ticket outstanding (its snapshot and wire mapping die, its replay
        // state lives) and flag the drain — the next wait re-handshakes
        // against the successor immediately and replays it there.
        wire_to_ticket_.erase(w);
        drain_notice_ = true;
        continue;
      }
    }
    wire_to_ticket_.erase(w);
    outstanding_.erase(ticket_seq);
    const auto fl = inflight_.find(ticket_seq);
    if (fl != inflight_.end()) {
      if (status == Status::kOk && fl->second.current != fl->second.data) {
        // A replayed request ran in the fresh arena; land the result where
        // the caller's (retired-arena) pointer says it is.
        const std::size_t doubles =
            static_cast<std::size_t>(std::uint64_t{1} << fl->second.n) *
            fl->second.count;
        std::memcpy(fl->second.data, fl->second.current,
                    doubles * sizeof(double));
      }
      inflight_.erase(fl);
    }
    completed_[ticket_seq] = status;
  }
  // Abandoned (timed-out, never wait()ed) completions must not accumulate
  // forever on a long-lived client.
  if (completed_.size() > 4 * kRingDepth) {
    completed_.erase(completed_.begin(),
                     std::prev(completed_.end(), 2 * kRingDepth));
  }
}

Status Client::wait_any_response(std::uint64_t deadline_ns) {
  const std::size_t before = completed_.size();
  std::uint64_t next_probe = 0;
  for (;;) {
    drain_responses();
    if (drain_notice_) {
      // A planned-restart refusal for a still-outstanding ticket: resolve
      // like a daemon loss so every caller's existing reconnect branch
      // re-handshakes (fast-polled, see try_reconnect) and replays it.
      drain_notice_ = false;
      return Status::kDaemonGone;
    }
    if (completed_.size() > before || outstanding_.empty()) return Status::kOk;
    const std::uint64_t now = monotonic_ns();
    if (now >= deadline_ns) return Status::kTimeout;
    if (now >= next_probe) {
      if (!daemon_alive()) return Status::kDaemonGone;
      if (reconnect_ &&
          header()->lifecycle.load(std::memory_order_acquire) >=
              Lifecycle::kDraining) {
        // The daemon entered its drain while we wait.  It would still
        // deliver our in-flight answers, but the successor is already (or
        // imminently) serving — migrate now and replay there rather than
        // ride out the predecessor's drain window.
        return Status::kDaemonGone;
      }
      // Eviction probe: a daemon that struck us out bumped the generation
      // and freed the slot — our outstanding seqs can never be answered.
      // Resolve like a daemon loss (a resilient client re-handshakes and
      // replays; a plain one gets the typed answer) instead of waiting out
      // the full timeout on a ring nobody will fill.
      SlotShared* cell = slot();
      if (cell->state.load(std::memory_order_acquire) != kActive ||
          cell->generation.load(std::memory_order_acquire) != generation_) {
        return Status::kDaemonGone;
      }
      next_probe = now + kLivenessProbeNs;
    }
    const auto& word = slot()->responses.tail;
    const std::uint32_t seen = word.load(std::memory_order_acquire);
    drain_responses();
    if (completed_.size() > before || outstanding_.empty()) return Status::kOk;
    spin_then_wait(
        word, seen, /*spins=*/2000,
        std::min<std::int64_t>(kWaitSliceNs,
                               static_cast<std::int64_t>(deadline_ns - now)));
  }
}

Status Client::wait_seq(std::uint64_t seq, double*) {
  const std::uint64_t deadline = deadline_from_now();
  for (;;) {
    const auto it = completed_.find(seq);
    if (it != completed_.end()) {
      const Status status = it->second;
      completed_.erase(it);
      return status;
    }
    if (outstanding_.count(seq) == 0) {
      // Neither pending nor completed: waited twice, or the completion was
      // evicted from the abandoned-response cache.
      return Status::kBadRequest;
    }
    if (!attached_) {
      if (!try_reconnect()) return Status::kDaemonGone;
      continue;
    }
    const Status status = wait_any_response(deadline);
    if (status == Status::kDaemonGone && try_reconnect()) continue;
    if (status != Status::kOk) return status;
  }
}

Status Client::wait(const Ticket& ticket) {
  if (!attached_ && !reconnect_) return Status::kDaemonGone;
  return wait_seq(ticket.seq, ticket.data);
}

Status Client::transform(int n, double* staged, std::size_t count) {
  Ticket ticket;
  const Status submitted = submit(n, staged, count, ticket);
  if (submitted != Status::kOk) return submitted;
  return wait(ticket);
}

Status Client::transform_copy(int n, double* data, std::size_t count) {
  double* staged = nullptr;
  try {
    staged = stage(n, count);
  } catch (const Error& error) {
    return error.status();
  }
  const std::uint64_t bytes =
      (std::uint64_t{1} << n) * count * sizeof(double);
  std::memcpy(staged, data, bytes);
  const Status status = transform(n, staged, count);
  if (status == Status::kOk) std::memcpy(data, staged, bytes);
  return status;
}

Client::DaemonStats Client::stats() const {
  DaemonStats out;
  if (!attached_ || !shm_.valid()) return out;
  const SharedStats& s = header()->stats;
  out.requests = s.requests.load(std::memory_order_relaxed);
  out.vectors = s.vectors.load(std::memory_order_relaxed);
  out.throttled = s.throttled.load(std::memory_order_relaxed);
  out.bad_request = s.bad_request.load(std::memory_order_relaxed);
  out.exec_errors = s.exec_errors.load(std::memory_order_relaxed);
  out.reclaimed = s.reclaimed.load(std::memory_order_relaxed);
  out.dropped = s.dropped.load(std::memory_order_relaxed);
  out.protocol_errors = s.protocol_errors.load(std::memory_order_relaxed);
  out.evictions = s.evictions.load(std::memory_order_relaxed);
  out.shed_expired = s.shed_expired.load(std::memory_order_relaxed);
  out.credit_stalls = s.credit_stalls.load(std::memory_order_relaxed);
  out.drained = s.drained.load(std::memory_order_relaxed);
  out.drain_aborted = s.drain_aborted.load(std::memory_order_relaxed);
  out.drain_refused = s.drain_refused.load(std::memory_order_relaxed);
  return out;
}

Lifecycle Client::daemon_lifecycle() const {
  if (!attached_ || !shm_.valid()) return Lifecycle::kStopped;
  return static_cast<Lifecycle>(
      header()->lifecycle.load(std::memory_order_acquire));
}

std::uint64_t Client::credits() const {
  if (!attached_ || !shm_.valid()) return 0;
  return slot()->credits.load(std::memory_order_relaxed);
}

}  // namespace whtlab::ipc
