// Runtime measurement protocol.
//
// Measuring µs-scale transforms reliably requires warmup (instruction cache,
// branch predictors, page faults), repetition, and a robust summary.  The
// protocol here:
//
//   1. allocate a line-aligned buffer and a pseudo-random master copy;
//   2. warmup executions (not timed);
//   3. `repetitions` timed executions; before each, the working buffer is
//      restored from the master by memcpy (the WHT is data-oblivious, so the
//      copy only serves to keep values bounded; the copy is outside the
//      timed region but *warms the cache identically before every rep*,
//      making reps comparable);
//   4. report minimum, median, and mean cycles.
//
// Experiments use the median (robust to timer interrupts); the paper's
// single-shot PAPI readings correspond most closely to the minimum.
//
// For very small transforms a single execution is below timer resolution, so
// the timed unit is a batch of `inner_loop` back-to-back executions and the
// reported value is the per-execution average.  auto_inner_loop() picks a
// batch size targeting ~50 µs per timed unit.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/codelet.hpp"
#include "core/plan.hpp"

namespace whtlab::perf {

struct MeasureOptions {
  int warmup = 2;            ///< untimed executions before measuring
  int repetitions = 7;       ///< timed samples
  int inner_loop = 0;        ///< executions per timed sample; 0 = auto
  core::CodeletBackend backend = core::CodeletBackend::kGenerated;
  std::uint64_t seed = 0xC0FFEE;  ///< master-buffer fill
};

struct MeasureResult {
  double min_cycles = 0.0;
  double median_cycles = 0.0;
  double mean_cycles = 0.0;
  int inner_loop = 1;  ///< batch size actually used

  /// The experiment harness's "cycle count" — the median.
  double cycles() const { return median_cycles; }
};

/// One in-place execution over a buffer of doubles — whatever engine the
/// caller wants timed (core::execute, an api::ExecutorBackend, a SIMD
/// batch, ...).  The protocol owns the buffer; `run` must transform
/// x[0 .. size) in place.
using RunFn = std::function<void(double* x)>;

/// Picks a batch size so one timed unit of `run` over `size` doubles takes
/// >= ~50 us (one probe execution on a random buffer).
int auto_inner_loop(const RunFn& run, std::uint64_t size);

/// Same heuristic for a plan under core::execute with `backend` codelets.
int auto_inner_loop(const core::Plan& plan, core::CodeletBackend backend);

/// The measurement protocol itself, engine-agnostic: times `run` on a
/// master-restored aligned buffer of `size` doubles per the steps above.
/// MeasureOptions::backend is ignored (the engine is `run`).  Throws
/// std::invalid_argument on repetitions < 1 or warmup < 0.  Every other
/// measurement entry point (measure_plan, api::measure_with_backend) is a
/// thin wrapper over this, so the protocol exists exactly once.
MeasureResult measure_run(const RunFn& run, std::uint64_t size,
                          const MeasureOptions& options = {});

/// Measures `plan` per the protocol above via core::execute with
/// options.backend's codelets.
MeasureResult measure_plan(const core::Plan& plan,
                           const MeasureOptions& options = {});

}  // namespace whtlab::perf
