// Runtime measurement protocol.
//
// Measuring µs-scale transforms reliably requires warmup (instruction cache,
// branch predictors, page faults), repetition, and a robust summary.  The
// protocol here:
//
//   1. allocate a line-aligned buffer and a pseudo-random master copy;
//   2. warmup executions (not timed);
//   3. `repetitions` timed executions; before each, the working buffer is
//      restored from the master by memcpy (the WHT is data-oblivious, so the
//      copy only serves to keep values bounded; the copy is outside the
//      timed region but *warms the cache identically before every rep*,
//      making reps comparable);
//   4. report minimum, median, and mean cycles.
//
// Experiments use the median (robust to timer interrupts); the paper's
// single-shot PAPI readings correspond most closely to the minimum.
//
// For very small transforms a single execution is below timer resolution, so
// the timed unit is a batch of `inner_loop` back-to-back executions and the
// reported value is the per-execution average.  auto_inner_loop() picks a
// batch size targeting ~50 µs per timed unit.
#pragma once

#include <cstdint>
#include <vector>

#include "core/codelet.hpp"
#include "core/plan.hpp"

namespace whtlab::perf {

struct MeasureOptions {
  int warmup = 2;            ///< untimed executions before measuring
  int repetitions = 7;       ///< timed samples
  int inner_loop = 0;        ///< executions per timed sample; 0 = auto
  core::CodeletBackend backend = core::CodeletBackend::kGenerated;
  std::uint64_t seed = 0xC0FFEE;  ///< master-buffer fill
};

struct MeasureResult {
  double min_cycles = 0.0;
  double median_cycles = 0.0;
  double mean_cycles = 0.0;
  int inner_loop = 1;  ///< batch size actually used

  /// The experiment harness's "cycle count" — the median.
  double cycles() const { return median_cycles; }
};

/// Picks a batch size so one timed unit of `plan` takes >= ~50 us.
int auto_inner_loop(const core::Plan& plan, core::CodeletBackend backend);

/// Measures `plan` per the protocol above.
MeasureResult measure_plan(const core::Plan& plan,
                           const MeasureOptions& options = {});

}  // namespace whtlab::perf
