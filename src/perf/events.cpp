#include "perf/events.hpp"

#include "cachesim/trace_runner.hpp"

namespace whtlab::perf {

EventCounts collect_events(const core::Plan& plan, const EventConfig& config) {
  EventCounts out;
  out.ops = core::count_ops(plan);
  out.instructions = config.weights.instructions(out.ops);
  if (config.collect_cycles) {
    const auto measured = measure_plan(plan, config.measure);
    out.cycles =
        config.use_min_cycles ? measured.min_cycles : measured.cycles();
  }
  if (config.collect_misses) {
    const auto trace = cachesim::simulate_plan(plan, config.l1, config.l2);
    out.l1_misses = trace.l1_misses;
    out.l2_misses = trace.l2_misses;
  }
  return out;
}

}  // namespace whtlab::perf
