// Cycle-accurate timing — the PAPI_TOT_CYC stand-in.
//
// On x86-64 the timer reads the invariant TSC with lfence serialization on
// both sides (the standard rdtsc measurement idiom: earlier instructions
// retire before the read, the read completes before later work starts).
// Elsewhere it falls back to std::chrono::steady_clock nanoseconds.
//
// TSC ticks are a constant-rate clock, not core clock cycles, but the paper
// only ever uses cycle counts comparatively (ratios, correlations,
// percentiles), for which any fixed-rate tick is equivalent.
#pragma once

#include <cstdint>

namespace whtlab::perf {

/// Reads the timestamp counter (serialized).  Monotonic, constant rate.
std::uint64_t read_cycles();

/// Measured tick rate in Hz (memoized; first call takes ~10 ms to calibrate
/// against steady_clock).
double cycles_per_second();

/// Converts a tick delta to nanoseconds using the calibrated rate.
double cycles_to_ns(std::uint64_t cycles);

}  // namespace whtlab::perf
