// Pseudo-PAPI event collection.
//
// The paper records, per algorithm, {cycles, retired instructions, L1 data
// cache misses} via PAPI 1.3.2.  whtlab bundles its stand-ins behind one
// facade so every experiment gathers the same triple the same way:
//
//   cycles        -> perf::measure_plan (real execution, serialized TSC)
//   instructions  -> weighted op count of the plan interpreter
//                    (core::count_ops; equals the instrumented execution)
//   l1/l2 misses  -> trace-driven cache simulation (cachesim::simulate_plan)
//                    in the Opteron geometry by default
//
// See DESIGN.md "Substitutions" for why each stand-in preserves the paper's
// measurement semantics.
#pragma once

#include "cachesim/cache.hpp"
#include "core/instrumented.hpp"
#include "core/plan.hpp"
#include "perf/measure.hpp"

namespace whtlab::perf {

struct EventConfig {
  MeasureOptions measure{};
  core::InstructionWeights weights{};
  cachesim::CacheConfig l1 = cachesim::CacheConfig::opteron_l1();
  cachesim::CacheConfig l2 = cachesim::CacheConfig::opteron_l2();
  bool collect_cycles = true;
  bool collect_misses = true;
  /// Report the minimum of the repetitions instead of the median.  The
  /// minimum of a deterministic workload is the least-interfered run and is
  /// markedly more stable on shared machines (used for the large sampled
  /// populations, where per-plan time budgets are tight).
  bool use_min_cycles = false;
};

struct EventCounts {
  double cycles = 0.0;        ///< median cycles of one execution
  double instructions = 0.0;  ///< weighted abstract op count
  core::OpCounts ops{};       ///< raw op tallies
  std::uint64_t l1_misses = 0;
  std::uint64_t l2_misses = 0;
};

/// Gathers the full event triple for one plan.
EventCounts collect_events(const core::Plan& plan,
                           const EventConfig& config = {});

}  // namespace whtlab::perf
