#include "perf/measure.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "core/executor.hpp"
#include "perf/cycle_timer.hpp"
#include "util/aligned_buffer.hpp"
#include "util/rng.hpp"

namespace whtlab::perf {

namespace {

void fill_random(util::AlignedBuffer& buffer, std::uint64_t seed) {
  util::Rng rng(seed);
  for (auto& v : buffer) v = rng.uniform(-1.0, 1.0);
}

}  // namespace

int auto_inner_loop(const RunFn& run, std::uint64_t size) {
  util::AlignedBuffer x(size);
  fill_random(x, 1);
  // One probe execution to estimate the per-run cost.
  const std::uint64_t begin = read_cycles();
  run(x.data());
  const std::uint64_t end = read_cycles();
  const double run_ns = cycles_to_ns(end - begin);
  constexpr double target_ns = 50'000.0;
  if (run_ns >= target_ns) return 1;
  const double batches = target_ns / std::max(run_ns, 1.0);
  return static_cast<int>(std::min(batches, 65536.0)) + 1;
}

int auto_inner_loop(const core::Plan& plan, core::CodeletBackend backend) {
  return auto_inner_loop(
      [&plan, backend](double* x) { core::execute(plan, x, backend); },
      plan.size());
}

MeasureResult measure_run(const RunFn& run, std::uint64_t size,
                          const MeasureOptions& options) {
  if (options.repetitions < 1) {
    throw std::invalid_argument("measure_run: repetitions must be >= 1");
  }
  if (options.warmup < 0) {
    throw std::invalid_argument("measure_run: warmup must be >= 0");
  }
  util::AlignedBuffer master(size);
  util::AlignedBuffer work(size);
  fill_random(master, options.seed);

  const int inner =
      options.inner_loop > 0 ? options.inner_loop : auto_inner_loop(run, size);

  for (int i = 0; i < options.warmup; ++i) {
    std::memcpy(work.data(), master.data(), size * sizeof(double));
    run(work.data());
  }

  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(options.repetitions));
  for (int rep = 0; rep < options.repetitions; ++rep) {
    std::memcpy(work.data(), master.data(), size * sizeof(double));
    const std::uint64_t begin = read_cycles();
    for (int i = 0; i < inner; ++i) run(work.data());
    const std::uint64_t end = read_cycles();
    samples.push_back(static_cast<double>(end - begin) /
                      static_cast<double>(inner));
  }

  std::sort(samples.begin(), samples.end());
  MeasureResult result;
  result.inner_loop = inner;
  result.min_cycles = samples.front();
  result.median_cycles = samples[samples.size() / 2];
  double total = 0.0;
  for (double s : samples) total += s;
  result.mean_cycles = total / static_cast<double>(samples.size());
  return result;
}

MeasureResult measure_plan(const core::Plan& plan,
                           const MeasureOptions& options) {
  const core::CodeletBackend backend = options.backend;
  return measure_run(
      [&plan, backend](double* x) { core::execute(plan, x, backend); },
      plan.size(), options);
}

}  // namespace whtlab::perf
