#include "perf/measure.hpp"

#include <algorithm>
#include <cstring>

#include "core/executor.hpp"
#include "perf/cycle_timer.hpp"
#include "util/aligned_buffer.hpp"
#include "util/rng.hpp"

namespace whtlab::perf {

namespace {

void fill_random(util::AlignedBuffer& buffer, std::uint64_t seed) {
  util::Rng rng(seed);
  for (auto& v : buffer) v = rng.uniform(-1.0, 1.0);
}

}  // namespace

int auto_inner_loop(const core::Plan& plan, core::CodeletBackend backend) {
  const std::uint64_t size = plan.size();
  util::AlignedBuffer x(size);
  fill_random(x, 1);
  // One probe execution to estimate the per-run cost.
  const std::uint64_t begin = read_cycles();
  core::execute(plan, x.data(), backend);
  const std::uint64_t end = read_cycles();
  const double run_ns = cycles_to_ns(end - begin);
  constexpr double target_ns = 50'000.0;
  if (run_ns >= target_ns) return 1;
  const double batches = target_ns / std::max(run_ns, 1.0);
  return static_cast<int>(std::min(batches, 65536.0)) + 1;
}

MeasureResult measure_plan(const core::Plan& plan,
                           const MeasureOptions& options) {
  const std::uint64_t size = plan.size();
  util::AlignedBuffer master(size);
  util::AlignedBuffer work(size);
  fill_random(master, options.seed);

  const int inner = options.inner_loop > 0
                        ? options.inner_loop
                        : auto_inner_loop(plan, options.backend);

  for (int i = 0; i < options.warmup; ++i) {
    std::memcpy(work.data(), master.data(), size * sizeof(double));
    core::execute(plan, work.data(), options.backend);
  }

  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(options.repetitions));
  for (int rep = 0; rep < options.repetitions; ++rep) {
    std::memcpy(work.data(), master.data(), size * sizeof(double));
    const std::uint64_t begin = read_cycles();
    for (int i = 0; i < inner; ++i) {
      core::execute(plan, work.data(), options.backend);
    }
    const std::uint64_t end = read_cycles();
    samples.push_back(static_cast<double>(end - begin) /
                      static_cast<double>(inner));
  }

  std::sort(samples.begin(), samples.end());
  MeasureResult result;
  result.inner_loop = inner;
  result.min_cycles = samples.front();
  result.median_cycles = samples[samples.size() / 2];
  double total = 0.0;
  for (double s : samples) total += s;
  result.mean_cycles = total / static_cast<double>(samples.size());
  return result;
}

}  // namespace whtlab::perf
