#include "perf/cycle_timer.hpp"

#include <chrono>

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#define WHTLAB_HAVE_RDTSC 1
#endif

namespace whtlab::perf {

std::uint64_t read_cycles() {
#ifdef WHTLAB_HAVE_RDTSC
  _mm_lfence();
  const std::uint64_t t = __rdtsc();
  _mm_lfence();
  return t;
#else
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
#endif
}

namespace {

double calibrate() {
#ifdef WHTLAB_HAVE_RDTSC
  using Clock = std::chrono::steady_clock;
  const auto wall_begin = Clock::now();
  const std::uint64_t tsc_begin = read_cycles();
  // ~10 ms busy window is ample for 4 significant digits.
  for (;;) {
    const auto elapsed = Clock::now() - wall_begin;
    if (elapsed >= std::chrono::milliseconds(10)) break;
  }
  const std::uint64_t tsc_end = read_cycles();
  const auto wall_end = Clock::now();
  const double seconds =
      std::chrono::duration<double>(wall_end - wall_begin).count();
  return static_cast<double>(tsc_end - tsc_begin) / seconds;
#else
  return 1e9;  // fallback counts nanoseconds directly
#endif
}

}  // namespace

double cycles_per_second() {
  static const double rate = calibrate();
  return rate;
}

double cycles_to_ns(std::uint64_t cycles) {
  return static_cast<double>(cycles) / cycles_per_second() * 1e9;
}

}  // namespace whtlab::perf
