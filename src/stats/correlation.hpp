// Correlation coefficients.
//
// The paper's quantitative results are Pearson correlations between model
// values and measured cycles (Section 4: rho = 0.96 for instructions at
// n = 9; 0.77 / 0.66 / 0.92 at n = 18).  Spearman rank correlation is
// provided as a robustness check (extension): it is invariant under monotone
// transforms, so it asks only "does the model order plans correctly?" —
// which is all the pruning application needs.
#pragma once

#include <vector>

namespace whtlab::stats {

double covariance(const std::vector<double>& xs, const std::vector<double>& ys);

/// Pearson product-moment correlation.  Returns 0 for degenerate (zero
/// variance) inputs.  Throws std::invalid_argument on size mismatch or n < 2.
double pearson(const std::vector<double>& xs, const std::vector<double>& ys);

/// Spearman rank correlation (Pearson on mid-ranks; ties averaged).
double spearman(const std::vector<double>& xs, const std::vector<double>& ys);

/// Mid-ranks of xs (1-based, ties get the average rank).
std::vector<double> ranks(const std::vector<double>& xs);

}  // namespace whtlab::stats
