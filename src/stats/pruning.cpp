#include "stats/pruning.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "stats/descriptive.hpp"

namespace whtlab::stats {

PruningCurve pruning_curve(const std::vector<double>& model_values,
                           const std::vector<double>& runtimes,
                           double percentile, int points) {
  if (model_values.size() != runtimes.size() || model_values.empty()) {
    throw std::invalid_argument("pruning_curve: bad input");
  }
  if (percentile <= 0.0 || percentile >= 1.0) {
    throw std::invalid_argument("pruning_curve: percentile in (0,1) required");
  }
  if (points < 2) throw std::invalid_argument("pruning_curve: need >= 2 points");

  PruningCurve out;
  out.percentile = percentile;
  out.runtime_cutoff = quantile(runtimes, percentile);

  // Sort pairs by model value; then sweep thresholds keeping running counts.
  const std::size_t n = model_values.size();
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return model_values[a] < model_values[b];
  });

  const double lo = model_values[order.front()];
  const double hi = model_values[order.back()];
  out.thresholds.reserve(static_cast<std::size_t>(points));
  out.outside_fraction.reserve(static_cast<std::size_t>(points));

  std::size_t consumed = 0;   // plans with model value <= current threshold
  std::size_t outside = 0;    // of those, runtime worse than cutoff
  for (int pt = 0; pt < points; ++pt) {
    const double c =
        lo + (hi - lo) * static_cast<double>(pt) / static_cast<double>(points - 1);
    while (consumed < n && model_values[order[consumed]] <= c) {
      if (runtimes[order[consumed]] > out.runtime_cutoff) ++outside;
      ++consumed;
    }
    out.thresholds.push_back(c);
    out.outside_fraction.push_back(
        consumed == 0 ? 0.0
                      : static_cast<double>(outside) /
                            static_cast<double>(consumed));
  }
  return out;
}

double min_safe_threshold(const std::vector<double>& model_values,
                          const std::vector<double>& runtimes,
                          double percentile) {
  if (model_values.size() != runtimes.size() || model_values.empty()) {
    throw std::invalid_argument("min_safe_threshold: bad input");
  }
  const double cutoff = quantile(runtimes, percentile);
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < runtimes.size(); ++i) {
    if (runtimes[i] <= cutoff) best = std::min(best, model_values[i]);
  }
  return best;
}

}  // namespace whtlab::stats
