// Dense least-squares solver (normal equations, Gaussian elimination).
//
// Small systems only (the calibration fit has < 10 unknowns); a tiny ridge
// term keeps rank-deficient feature sets (e.g. loads == stores on every WHT
// plan) solvable instead of exploding.
#pragma once

#include <vector>

namespace whtlab::stats {

/// Solves A x = b for square A by Gaussian elimination with partial
/// pivoting.  A is row-major n x n.  Throws std::invalid_argument on
/// dimension mismatch and std::domain_error on a (numerically) singular
/// matrix.
std::vector<double> solve_linear(std::vector<double> a, std::vector<double> b);

/// Least squares min ||X w - y||^2 + ridge*||w||^2 via the normal equations.
/// X is row-major, rows x cols, rows >= cols.
std::vector<double> least_squares(const std::vector<std::vector<double>>& x,
                                  const std::vector<double>& y,
                                  double ridge = 1e-9);

}  // namespace whtlab::stats
