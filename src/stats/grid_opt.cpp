#include "stats/grid_opt.hpp"

#include <stdexcept>

#include "stats/correlation.hpp"

namespace whtlab::stats {

CorrelationGrid correlation_grid(const std::vector<double>& instructions,
                                 const std::vector<double>& misses,
                                 const std::vector<double>& cycles,
                                 double step) {
  if (instructions.size() != misses.size() ||
      instructions.size() != cycles.size() || instructions.size() < 2) {
    throw std::invalid_argument("correlation_grid: bad input");
  }
  if (step <= 0.0 || step > 1.0) {
    throw std::invalid_argument("correlation_grid: bad step");
  }

  CorrelationGrid out;
  for (double v = 0.0; v <= 1.0 + step / 2; v += step) {
    out.alphas.push_back(v);
    out.betas.push_back(v);
  }

  std::vector<double> combined(instructions.size());
  out.rho.assign(out.alphas.size(),
                 std::vector<double>(out.betas.size(), 0.0));
  for (std::size_t i = 0; i < out.alphas.size(); ++i) {
    for (std::size_t j = 0; j < out.betas.size(); ++j) {
      const double a = out.alphas[i];
      const double b = out.betas[j];
      if (a == 0.0 && b == 0.0) continue;  // degenerate; leave rho = 0
      for (std::size_t k = 0; k < combined.size(); ++k) {
        combined[k] = a * instructions[k] + b * misses[k];
      }
      const double r = pearson(combined, cycles);
      out.rho[i][j] = r;
      if (r > out.best_rho) {
        out.best_rho = r;
        out.best_alpha = a;
        out.best_beta = b;
      }
    }
  }
  return out;
}

}  // namespace whtlab::stats
