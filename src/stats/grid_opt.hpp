// Correlation-maximizing (alpha, beta) grid search (Figure 9 of the paper).
//
// Sweeps alpha, beta over [0,1] in fixed increments (the paper uses 0.05)
// and computes Pearson's rho between alpha*I + beta*M and measured cycles.
// Since rho is scale-invariant, the surface depends only on the ratio
// beta/alpha along rays from the origin — the paper's plateau shape — and
// the point (0,0) is degenerate (zero variance; reported as rho = 0).
#pragma once

#include <vector>

namespace whtlab::stats {

struct CorrelationGrid {
  std::vector<double> alphas;
  std::vector<double> betas;
  /// rho[i][j] for (alphas[i], betas[j]).
  std::vector<std::vector<double>> rho;
  double best_alpha = 0.0;
  double best_beta = 0.0;
  double best_rho = 0.0;
};

/// Computes the full grid; `step` divides 1 exactly in practice (0.05).
CorrelationGrid correlation_grid(const std::vector<double>& instructions,
                                 const std::vector<double>& misses,
                                 const std::vector<double>& cycles,
                                 double step = 0.05);

}  // namespace whtlab::stats
