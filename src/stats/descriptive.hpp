// Descriptive statistics used throughout the experiment harness.
//
// Includes the exact outlier rule from the paper (Section 3): samples are
// "filtered for extreme outliers beyond the outer fences", i.e. values kept
// satisfy  Q1 - 3*IQR < x < Q3 + 3*IQR.  Quantiles use the common linear-
// interpolation definition (type 7, the MATLAB/NumPy default, matching the
// paper's tooling).
#pragma once

#include <cstddef>
#include <vector>

namespace whtlab::stats {

double mean(const std::vector<double>& xs);
/// Population variance (divide by N).
double variance(const std::vector<double>& xs);
double stddev(const std::vector<double>& xs);
double min_value(const std::vector<double>& xs);
double max_value(const std::vector<double>& xs);

/// Sample skewness (third standardized central moment, population form).
double skewness(const std::vector<double>& xs);
/// Excess kurtosis (fourth standardized central moment minus 3).
double excess_kurtosis(const std::vector<double>& xs);

/// Linear-interpolation quantile, q in [0,1] (type 7).  xs need not be
/// sorted; an internal copy is sorted.
double quantile(const std::vector<double>& xs, double q);
double median(const std::vector<double>& xs);

struct Quartiles {
  double q1 = 0.0;
  double q2 = 0.0;
  double q3 = 0.0;
  double iqr() const { return q3 - q1; }
};
Quartiles quartiles(const std::vector<double>& xs);

/// Outer fences (Q1 - k*IQR, Q3 + k*IQR); the paper uses k = 3.
struct Fences {
  double lower = 0.0;
  double upper = 0.0;
};
Fences outer_fences(const std::vector<double>& xs, double k = 3.0);

/// Indices of xs lying strictly inside the outer fences of xs.
std::vector<std::size_t> inside_fences(const std::vector<double>& xs,
                                       double k = 3.0);

/// Selects xs[i] for i in indices.
std::vector<double> select(const std::vector<double>& xs,
                           const std::vector<std::size_t>& indices);

}  // namespace whtlab::stats
