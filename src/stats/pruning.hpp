// Search-space pruning curves (Figures 10 and 11 of the paper).
//
// For a population of algorithms with model values m_i (instruction count,
// or alpha*I + beta*M) and measured runtimes r_i, and a percentile p:
// let cutoff = p-quantile of runtimes ("top p% performance").  The curve
//
//   f(c) = P( r > cutoff | m <= c )
//
// is the probability that an algorithm picked among those with model value
// at most c performs *outside* the top p percent.  As c approaches the
// maximum model value, f(c) -> 1 - p; wherever the curve is already close to
// 1 - p, algorithms with larger model values can be discarded without losing
// the top performers — the paper's pruning argument.
#pragma once

#include <vector>

namespace whtlab::stats {

struct PruningCurve {
  double percentile = 0.0;       ///< p, e.g. 0.05
  double runtime_cutoff = 0.0;   ///< p-quantile of runtimes
  std::vector<double> thresholds;        ///< model-value thresholds c
  std::vector<double> outside_fraction;  ///< f(c)
};

/// Computes the curve on an even grid of `points` thresholds spanning
/// [min(model), max(model)].
PruningCurve pruning_curve(const std::vector<double>& model_values,
                           const std::vector<double>& runtimes,
                           double percentile, int points = 100);

/// Smallest model threshold whose kept set contains at least one top-p
/// algorithm (i.e. the min model value among the top-p performers).  Keeping
/// only plans below this threshold is the most aggressive safe pruning for
/// this population.
double min_safe_threshold(const std::vector<double>& model_values,
                          const std::vector<double>& runtimes,
                          double percentile);

}  // namespace whtlab::stats
