#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace whtlab::stats {

namespace {
void require_nonempty(const std::vector<double>& xs) {
  if (xs.empty()) throw std::invalid_argument("empty sample");
}
}  // namespace

double mean(const std::vector<double>& xs) {
  require_nonempty(xs);
  double total = 0.0;
  for (double x : xs) total += x;
  return total / static_cast<double>(xs.size());
}

double variance(const std::vector<double>& xs) {
  require_nonempty(xs);
  const double mu = mean(xs);
  double total = 0.0;
  for (double x : xs) total += (x - mu) * (x - mu);
  return total / static_cast<double>(xs.size());
}

double stddev(const std::vector<double>& xs) { return std::sqrt(variance(xs)); }

double min_value(const std::vector<double>& xs) {
  require_nonempty(xs);
  return *std::min_element(xs.begin(), xs.end());
}

double max_value(const std::vector<double>& xs) {
  require_nonempty(xs);
  return *std::max_element(xs.begin(), xs.end());
}

double skewness(const std::vector<double>& xs) {
  require_nonempty(xs);
  const double mu = mean(xs);
  double m2 = 0.0;
  double m3 = 0.0;
  for (double x : xs) {
    const double d = x - mu;
    m2 += d * d;
    m3 += d * d * d;
  }
  const double n = static_cast<double>(xs.size());
  m2 /= n;
  m3 /= n;
  return m2 > 0.0 ? m3 / std::pow(m2, 1.5) : 0.0;
}

double excess_kurtosis(const std::vector<double>& xs) {
  require_nonempty(xs);
  const double mu = mean(xs);
  double m2 = 0.0;
  double m4 = 0.0;
  for (double x : xs) {
    const double d = x - mu;
    m2 += d * d;
    m4 += d * d * d * d;
  }
  const double n = static_cast<double>(xs.size());
  m2 /= n;
  m4 /= n;
  return m2 > 0.0 ? m4 / (m2 * m2) - 3.0 : 0.0;
}

double quantile(const std::vector<double>& xs, double q) {
  require_nonempty(xs);
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile out of range");
  std::vector<double> sorted = xs;
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double median(const std::vector<double>& xs) { return quantile(xs, 0.5); }

Quartiles quartiles(const std::vector<double>& xs) {
  return {quantile(xs, 0.25), quantile(xs, 0.5), quantile(xs, 0.75)};
}

Fences outer_fences(const std::vector<double>& xs, double k) {
  const Quartiles q = quartiles(xs);
  return {q.q1 - k * q.iqr(), q.q3 + k * q.iqr()};
}

std::vector<std::size_t> inside_fences(const std::vector<double>& xs,
                                       double k) {
  const Fences f = outer_fences(xs, k);
  std::vector<std::size_t> kept;
  kept.reserve(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (xs[i] > f.lower && xs[i] < f.upper) kept.push_back(i);
  }
  return kept;
}

std::vector<double> select(const std::vector<double>& xs,
                           const std::vector<std::size_t>& indices) {
  std::vector<double> out;
  out.reserve(indices.size());
  for (std::size_t i : indices) out.push_back(xs.at(i));
  return out;
}

}  // namespace whtlab::stats
