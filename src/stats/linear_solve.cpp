#include "stats/linear_solve.hpp"

#include <cmath>
#include <cstddef>
#include <stdexcept>

namespace whtlab::stats {

std::vector<double> solve_linear(std::vector<double> a, std::vector<double> b) {
  const std::size_t n = b.size();
  if (a.size() != n * n) throw std::invalid_argument("solve_linear: shape");

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t pivot = col;
    for (std::size_t row = col + 1; row < n; ++row) {
      if (std::fabs(a[row * n + col]) > std::fabs(a[pivot * n + col])) {
        pivot = row;
      }
    }
    if (std::fabs(a[pivot * n + col]) < 1e-300) {
      throw std::domain_error("solve_linear: singular matrix");
    }
    if (pivot != col) {
      for (std::size_t k = 0; k < n; ++k) std::swap(a[col * n + k], a[pivot * n + k]);
      std::swap(b[col], b[pivot]);
    }
    // Eliminate below.
    for (std::size_t row = col + 1; row < n; ++row) {
      const double factor = a[row * n + col] / a[col * n + col];
      if (factor == 0.0) continue;
      for (std::size_t k = col; k < n; ++k) {
        a[row * n + k] -= factor * a[col * n + k];
      }
      b[row] -= factor * b[col];
    }
  }
  // Back substitution.
  std::vector<double> x(n, 0.0);
  for (std::size_t row = n; row-- > 0;) {
    double acc = b[row];
    for (std::size_t k = row + 1; k < n; ++k) acc -= a[row * n + k] * x[k];
    x[row] = acc / a[row * n + row];
  }
  return x;
}

std::vector<double> least_squares(const std::vector<std::vector<double>>& x,
                                  const std::vector<double>& y,
                                  double ridge) {
  if (x.empty() || x.size() != y.size()) {
    throw std::invalid_argument("least_squares: shape");
  }
  const std::size_t cols = x.front().size();
  if (x.size() < cols) throw std::invalid_argument("least_squares: underdetermined");

  // Normal equations: (X^T X + ridge I) w = X^T y.  Scale the ridge by the
  // mean diagonal magnitude so it is unit-independent.
  std::vector<double> xtx(cols * cols, 0.0);
  std::vector<double> xty(cols, 0.0);
  for (std::size_t r = 0; r < x.size(); ++r) {
    if (x[r].size() != cols) throw std::invalid_argument("least_squares: ragged");
    for (std::size_t i = 0; i < cols; ++i) {
      xty[i] += x[r][i] * y[r];
      for (std::size_t j = 0; j < cols; ++j) {
        xtx[i * cols + j] += x[r][i] * x[r][j];
      }
    }
  }
  double trace = 0.0;
  for (std::size_t i = 0; i < cols; ++i) trace += xtx[i * cols + i];
  const double scaled_ridge = ridge * (trace / static_cast<double>(cols) + 1.0);
  for (std::size_t i = 0; i < cols; ++i) xtx[i * cols + i] += scaled_ridge;
  return solve_linear(std::move(xtx), std::move(xty));
}

}  // namespace whtlab::stats
