// Equal-width histograms (Figures 4 and 5 of the paper: "collected into 50
// equally sized bins").
//
// Binning covers [min, max] of the data; the top edge is inclusive so the
// maximum lands in the last bin (MATLAB hist semantics, which the paper's
// plots follow).  Text rendering gives a quick visual in bench output.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace whtlab::stats {

class Histogram {
 public:
  /// Builds a histogram of xs with `bins` equal-width bins.  Degenerate
  /// inputs are defined, not errors: an empty sample yields a single empty
  /// bin [0, 0], and a constant sample yields a single zero-width bin
  /// [x, x] holding everything (bins() == 1 in both cases — the requested
  /// bin count partitions a range that does not exist).  Throws
  /// std::invalid_argument only for bins < 1.
  Histogram(const std::vector<double>& xs, int bins = 50);

  int bins() const { return static_cast<int>(counts_.size()); }
  std::uint64_t count(int bin) const { return counts_.at(static_cast<std::size_t>(bin)); }
  const std::vector<std::uint64_t>& counts() const { return counts_; }

  double bin_low(int bin) const;
  double bin_high(int bin) const;
  double bin_center(int bin) const;

  std::uint64_t total() const;
  /// Index of the fullest bin.
  int mode_bin() const;

  /// Multi-line ASCII rendering, `width` characters for the largest bar.
  std::string render(int width = 60) const;

 private:
  double low_ = 0.0;
  double high_ = 0.0;
  double bin_width_ = 0.0;
  std::vector<std::uint64_t> counts_;
};

}  // namespace whtlab::stats
