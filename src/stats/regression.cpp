#include "stats/regression.hpp"

#include <stdexcept>

#include "stats/correlation.hpp"
#include "stats/descriptive.hpp"

namespace whtlab::stats {

LinearFit linear_regression(const std::vector<double>& xs,
                            const std::vector<double>& ys) {
  if (xs.size() != ys.size() || xs.size() < 2) {
    throw std::invalid_argument("linear_regression: bad input");
  }
  const double vx = variance(xs);
  LinearFit fit;
  if (vx == 0.0) {
    fit.intercept = mean(ys);
    return fit;
  }
  fit.slope = covariance(xs, ys) / vx;
  fit.intercept = mean(ys) - fit.slope * mean(xs);
  const double rho = pearson(xs, ys);
  fit.r_squared = rho * rho;
  return fit;
}

double jarque_bera(const std::vector<double>& xs) {
  const double s = skewness(xs);
  const double k = excess_kurtosis(xs);
  const double n = static_cast<double>(xs.size());
  return n / 6.0 * (s * s + k * k / 4.0);
}

}  // namespace whtlab::stats
