#include "stats/histogram.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace whtlab::stats {

Histogram::Histogram(const std::vector<double>& xs, int bins) {
  if (bins < 1) throw std::invalid_argument("histogram: bad bin count");
  if (xs.empty()) {
    // Degenerate: no data.  A defined single empty bin [0, 0] instead of a
    // throw, so callers feeding measured samples (which may legitimately be
    // empty — a telemetry series with no observations yet) need no guard.
    counts_.assign(1, 0);
    return;
  }
  low_ = *std::min_element(xs.begin(), xs.end());
  high_ = *std::max_element(xs.begin(), xs.end());
  if (high_ == low_) {
    // Degenerate: constant data.  One zero-width bin [x, x] holding every
    // sample — the requested bin count is a partition of a range that does
    // not exist here.
    counts_.assign(1, xs.size());
    return;
  }
  counts_.assign(static_cast<std::size_t>(bins), 0);
  bin_width_ = (high_ - low_) / static_cast<double>(bins);
  for (double x : xs) {
    auto bin = static_cast<std::size_t>((x - low_) / bin_width_);
    if (bin >= counts_.size()) bin = counts_.size() - 1;  // top edge inclusive
    ++counts_[bin];
  }
}

double Histogram::bin_low(int bin) const {
  return low_ + bin_width_ * static_cast<double>(bin);
}

double Histogram::bin_high(int bin) const {
  return low_ + bin_width_ * static_cast<double>(bin + 1);
}

double Histogram::bin_center(int bin) const {
  return low_ + bin_width_ * (static_cast<double>(bin) + 0.5);
}

std::uint64_t Histogram::total() const {
  std::uint64_t sum = 0;
  for (auto c : counts_) sum += c;
  return sum;
}

int Histogram::mode_bin() const {
  return static_cast<int>(std::max_element(counts_.begin(), counts_.end()) -
                          counts_.begin());
}

std::string Histogram::render(int width) const {
  const std::uint64_t peak =
      *std::max_element(counts_.begin(), counts_.end());
  std::string out;
  char line[160];
  for (int b = 0; b < bins(); ++b) {
    const auto stars =
        peak == 0 ? 0
                  : static_cast<int>(static_cast<double>(count(b)) *
                                     static_cast<double>(width) /
                                     static_cast<double>(peak));
    std::snprintf(line, sizeof(line), "%12.4g..%-12.4g %8llu |", bin_low(b),
                  bin_high(b),
                  static_cast<unsigned long long>(count(b)));
    out += line;
    out.append(static_cast<std::size_t>(stars), '#');
    out += '\n';
  }
  return out;
}

}  // namespace whtlab::stats
