// Simple linear regression and a normality statistic.
//
// Regression supports the scatter analyses (Figures 6-8): alongside Pearson's
// rho the harness reports the least-squares line cycles ~ a + b*model.
// The Jarque-Bera statistic quantifies the histogram-shape observations of
// Section 3 (the cycle histogram at n = 18 is left-skewed where the
// instruction histogram is not).
#pragma once

#include <vector>

namespace whtlab::stats {

struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;
};

/// Least-squares fit y ~ intercept + slope * x.
LinearFit linear_regression(const std::vector<double>& xs,
                            const std::vector<double>& ys);

/// Jarque-Bera normality statistic: n/6 * (S^2 + K^2/4) with S = skewness,
/// K = excess kurtosis.  Asymptotically chi-squared(2) under normality;
/// values >> 5.99 reject normality at the 5% level.
double jarque_bera(const std::vector<double>& xs);

}  // namespace whtlab::stats
