#include "stats/correlation.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "stats/descriptive.hpp"

namespace whtlab::stats {

namespace {
void require_paired(const std::vector<double>& xs,
                    const std::vector<double>& ys) {
  if (xs.size() != ys.size()) {
    throw std::invalid_argument("correlation: size mismatch");
  }
  if (xs.size() < 2) {
    throw std::invalid_argument("correlation: need at least 2 points");
  }
}
}  // namespace

double covariance(const std::vector<double>& xs,
                  const std::vector<double>& ys) {
  require_paired(xs, ys);
  const double mx = mean(xs);
  const double my = mean(ys);
  double total = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    total += (xs[i] - mx) * (ys[i] - my);
  }
  return total / static_cast<double>(xs.size());
}

double pearson(const std::vector<double>& xs, const std::vector<double>& ys) {
  require_paired(xs, ys);
  const double sx = stddev(xs);
  const double sy = stddev(ys);
  if (sx == 0.0 || sy == 0.0) return 0.0;
  return covariance(xs, ys) / (sx * sy);
}

std::vector<double> ranks(const std::vector<double>& xs) {
  const std::size_t n = xs.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&xs](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });
  std::vector<double> out(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && xs[order[j + 1]] == xs[order[i]]) ++j;
    // Tie group [i, j]: everyone gets the average 1-based rank.
    const double rank = static_cast<double>(i + j) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) out[order[k]] = rank;
    i = j + 1;
  }
  return out;
}

double spearman(const std::vector<double>& xs, const std::vector<double>& ys) {
  require_paired(xs, ys);
  return pearson(ranks(xs), ranks(ys));
}

}  // namespace whtlab::stats
