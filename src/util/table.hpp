// Aligned plain-text tables for bench output.
//
// Bench binaries print the series behind each paper figure as a table that is
// readable in a terminal and diffable in CI logs.  Columns are sized to the
// widest cell; numeric cells are right-aligned.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace whtlab::util {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Render with column alignment; numeric-looking cells right-aligned.
  std::string render() const;

  /// Render and write to stdout.
  void print() const;

  static std::string fmt(double v, int precision = 4);
  static std::string fmt(std::uint64_t v) { return std::to_string(v); }
  static std::string fmt(int v) { return std::to_string(v); }

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace whtlab::util
