#include "util/bigint.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

namespace whtlab::util {

namespace {
using U128 = unsigned __int128;
}  // namespace

void BigInt::normalize() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

std::size_t BigInt::bit_length() const {
  if (limbs_.empty()) return 0;
  return 64 * (limbs_.size() - 1) +
         (64 - static_cast<std::size_t>(std::countl_zero(limbs_.back())));
}

bool BigInt::bit(std::size_t i) const {
  const std::size_t limb = i / 64;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 64)) & 1ULL;
}

BigInt& BigInt::operator+=(const BigInt& rhs) {
  const std::size_t n = std::max(limbs_.size(), rhs.limbs_.size());
  limbs_.resize(n, 0);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    U128 sum = static_cast<U128>(limbs_[i]) + carry;
    if (i < rhs.limbs_.size()) sum += rhs.limbs_[i];
    limbs_[i] = static_cast<std::uint64_t>(sum);
    carry = static_cast<std::uint64_t>(sum >> 64);
  }
  if (carry != 0) limbs_.push_back(carry);
  return *this;
}

BigInt& BigInt::operator-=(const BigInt& rhs) {
  if (compare(rhs) < 0) {
    throw std::underflow_error("BigInt subtraction would be negative");
  }
  std::uint64_t borrow = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    const std::uint64_t sub =
        (i < rhs.limbs_.size() ? rhs.limbs_[i] : 0ULL);
    const std::uint64_t before = limbs_[i];
    const std::uint64_t after = before - sub - borrow;
    // Borrow occurred iff we wrapped past zero.
    borrow = (before < sub || (before == sub && borrow)) ? 1 : 0;
    limbs_[i] = after;
  }
  normalize();
  return *this;
}

BigInt& BigInt::operator*=(const BigInt& rhs) {
  if (is_zero() || rhs.is_zero()) {
    limbs_.clear();
    return *this;
  }
  std::vector<std::uint64_t> out(limbs_.size() + rhs.limbs_.size(), 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < rhs.limbs_.size(); ++j) {
      U128 cur = static_cast<U128>(limbs_[i]) * rhs.limbs_[j] +
                 out[i + j] + carry;
      out[i + j] = static_cast<std::uint64_t>(cur);
      carry = static_cast<std::uint64_t>(cur >> 64);
    }
    out[i + rhs.limbs_.size()] = carry;
  }
  limbs_ = std::move(out);
  normalize();
  return *this;
}

int BigInt::compare(const BigInt& rhs) const {
  if (limbs_.size() != rhs.limbs_.size()) {
    return limbs_.size() < rhs.limbs_.size() ? -1 : 1;
  }
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    if (limbs_[i] != rhs.limbs_[i]) return limbs_[i] < rhs.limbs_[i] ? -1 : 1;
  }
  return 0;
}

std::uint64_t BigInt::div_small(std::uint64_t divisor) {
  if (divisor == 0) throw std::domain_error("BigInt division by zero");
  std::uint64_t rem = 0;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    U128 cur = (static_cast<U128>(rem) << 64) | limbs_[i];
    limbs_[i] = static_cast<std::uint64_t>(cur / divisor);
    rem = static_cast<std::uint64_t>(cur % divisor);
  }
  normalize();
  return rem;
}

std::string BigInt::to_string() const {
  if (is_zero()) return "0";
  BigInt tmp = *this;
  std::string digits;
  while (!tmp.is_zero()) {
    const std::uint64_t chunk = tmp.div_small(1000000000ULL);
    if (tmp.is_zero()) {
      digits.insert(0, std::to_string(chunk));
    } else {
      std::string part = std::to_string(chunk);
      digits.insert(0, std::string(9 - part.size(), '0') + part);
    }
  }
  return digits;
}

BigInt BigInt::from_decimal(const std::string& text) {
  BigInt out;
  const BigInt ten(10);
  for (char c : text) {
    if (c < '0' || c > '9') throw std::invalid_argument("BigInt: bad digit");
    out *= ten;
    out += BigInt(static_cast<std::uint64_t>(c - '0'));
  }
  return out;
}

double BigInt::to_double() const {
  double value = 0.0;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    value = value * 0x1.0p64 + static_cast<double>(limbs_[i]);
  }
  return value;
}

BigInt BigInt::random_below(const BigInt& bound, Rng& rng) {
  if (bound.is_zero()) throw std::domain_error("BigInt::random_below(0)");
  const std::size_t bits = bound.bit_length();
  const std::size_t limbs = (bits + 63) / 64;
  const unsigned top_bits = static_cast<unsigned>(bits - 64 * (limbs - 1));
  const std::uint64_t top_mask =
      top_bits == 64 ? ~0ULL : ((1ULL << top_bits) - 1);
  BigInt candidate;
  for (;;) {
    candidate.limbs_.assign(limbs, 0);
    for (std::size_t i = 0; i < limbs; ++i) candidate.limbs_[i] = rng.next();
    candidate.limbs_.back() &= top_mask;
    candidate.normalize();
    if (candidate < bound) return candidate;
  }
}

}  // namespace whtlab::util
