// Reusable aligned scratch for execution contexts and staging regions.
//
// The serving-oriented execution contract (api/exec_context.hpp) moves every
// per-call work buffer out of the backends and into caller-owned state.  A
// ScratchArena is that state's storage: a grow-only, cache-line-aligned
// double buffer that hands out capacity on demand and keeps it across calls,
// so a thread serving requests in a loop allocates on its first transform
// and never again.  Deliberately not thread-safe — one arena belongs to one
// thread (or one well-ordered call chain); concurrency comes from having
// many arenas, not from locking one.
//
// BumpArena is the fixed-capacity sibling for memory the arena does NOT own
// — above all the per-client staging regions of the whtd shared-memory
// segment (ipc/protocol.hpp), where "grow" is impossible and allocations
// must be describable as plain offsets so the other process can find them.
// Sequential bump allocation with explicit whole-arena reset matches the
// request lifecycle exactly: stage vectors, serve them in place, reset when
// nothing is in flight.
#pragma once

#include <cstddef>
#include <functional>

#include "util/aligned_buffer.hpp"

namespace whtlab::util {

class ScratchArena {
 public:
  ScratchArena() = default;
  ScratchArena(ScratchArena&&) noexcept = default;
  ScratchArena& operator=(ScratchArena&&) noexcept = default;
  ScratchArena(const ScratchArena&) = delete;
  ScratchArena& operator=(const ScratchArena&) = delete;

  /// A cache-line-aligned buffer of at least `count` doubles, valid until the
  /// next acquire() or the arena's destruction.  Contents are unspecified on
  /// entry (callers own initialization).  Growth is geometric so a ramp of
  /// request sizes settles after O(log max) reallocations.
  double* acquire(std::size_t count) {
    if (count > buffer_.size()) {
      std::size_t grown = buffer_.size() < 64 ? 64 : buffer_.size();
      while (grown < count) grown *= 2;
      buffer_ = AlignedBuffer(grown);
    }
    return buffer_.data();
  }

  std::size_t capacity() const { return buffer_.size(); }

 private:
  AlignedBuffer buffer_;
};

/// Bump allocator over caller-provided double storage (typically a region of
/// a shared-memory segment).  Allocations advance a cursor, rounded up to
/// cache-line multiples so every returned pointer stays 64-byte aligned as
/// long as the attached base is; reset() reclaims everything at once.  Not
/// thread-safe — one arena, one allocation stream (the whtd client's
/// staging discipline; ipc/client.hpp).
class BumpArena {
 public:
  BumpArena() = default;

  /// Points the arena at `capacity` doubles starting at `base` (not owned;
  /// must outlive the arena's use).  Resets the cursor.
  void attach(double* base, std::size_t capacity) {
    base_ = base;
    capacity_ = capacity;
    used_ = 0;
  }

  /// The next `count` doubles, or nullptr when they do not fit (the caller
  /// decides whether to reset, wait, or fail — this class cannot know
  /// whether earlier allocations are still live).
  double* allocate(std::size_t count) {
    const std::size_t need = round_up(count);
    if (need > capacity_ - used_) return nullptr;
    double* out = base_ + used_;
    used_ += need;
    return out;
  }

  /// Reclaims the whole arena.  Only valid when no earlier allocation is
  /// still in use (nothing in flight).
  void reset() { used_ = 0; }

  /// Offset of an allocation in doubles from the base — the cross-process
  /// name for the memory (ipc requests carry offsets, never pointers).
  std::size_t offset_of(const double* p) const {
    return static_cast<std::size_t>(p - base_);
  }
  double* at(std::size_t offset) const { return base_ + offset; }

  /// Whether `p` points into this arena's storage.  Reconnecting clients use
  /// it to spot pointers staged in a *previous* attachment (std::less makes
  /// the unrelated-pointer comparison well-defined).
  bool contains(const double* p) const {
    return base_ != nullptr && !std::less<const double*>{}(p, base_) &&
           std::less<const double*>{}(p, base_ + capacity_);
  }

  bool attached() const { return base_ != nullptr; }
  std::size_t capacity() const { return capacity_; }
  std::size_t used() const { return used_; }

  /// Largest single allocation this arena can ever satisfy.
  std::size_t max_allocation() const {
    return capacity_ & ~(kLineDoubles - 1);
  }

 private:
  static constexpr std::size_t kLineDoubles = 8;  // 64 bytes
  static std::size_t round_up(std::size_t count) {
    return (count + kLineDoubles - 1) & ~(kLineDoubles - 1);
  }

  double* base_ = nullptr;
  std::size_t capacity_ = 0;
  std::size_t used_ = 0;
};

}  // namespace whtlab::util
