// Reusable aligned scratch for execution contexts.
//
// The serving-oriented execution contract (api/exec_context.hpp) moves every
// per-call work buffer out of the backends and into caller-owned state.  A
// ScratchArena is that state's storage: a grow-only, cache-line-aligned
// double buffer that hands out capacity on demand and keeps it across calls,
// so a thread serving requests in a loop allocates on its first transform
// and never again.  Deliberately not thread-safe — one arena belongs to one
// thread (or one well-ordered call chain); concurrency comes from having
// many arenas, not from locking one.
#pragma once

#include <cstddef>

#include "util/aligned_buffer.hpp"

namespace whtlab::util {

class ScratchArena {
 public:
  ScratchArena() = default;
  ScratchArena(ScratchArena&&) noexcept = default;
  ScratchArena& operator=(ScratchArena&&) noexcept = default;
  ScratchArena(const ScratchArena&) = delete;
  ScratchArena& operator=(const ScratchArena&) = delete;

  /// A cache-line-aligned buffer of at least `count` doubles, valid until the
  /// next acquire() or the arena's destruction.  Contents are unspecified on
  /// entry (callers own initialization).  Growth is geometric so a ramp of
  /// request sizes settles after O(log max) reallocations.
  double* acquire(std::size_t count) {
    if (count > buffer_.size()) {
      std::size_t grown = buffer_.size() < 64 ? 64 : buffer_.size();
      while (grown < count) grown *= 2;
      buffer_ = AlignedBuffer(grown);
    }
    return buffer_.data();
  }

  std::size_t capacity() const { return buffer_.size(); }

 private:
  AlignedBuffer buffer_;
};

}  // namespace whtlab::util
