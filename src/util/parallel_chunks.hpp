// Fork-join over a contiguous index range.
//
// The batch execution paths (simd::execute_many groups, the parallel
// backend's across-vector run_many) all need the same shape: split
// [0, total) into one contiguous chunk per worker, run the chunks on
// std::threads, join.  Kept header-only and dependency-free so every
// executor layer can share one copy of the partition arithmetic.
#pragma once

#include <algorithm>
#include <cstdint>
#include <thread>
#include <vector>

namespace whtlab::util {

/// True when parallel_chunks(total, workers, ...) runs fn inline on the
/// calling thread (no worker threads spawned).  Exposed so callers deciding
/// whether caller-owned, single-thread resources (a ScratchArena) may be
/// handed to fn share ONE copy of the rule with the dispatch itself.
constexpr bool parallel_chunks_runs_inline(std::uint64_t total, int workers) {
  return workers <= 1 || total <= 1;
}

/// Invokes fn(begin, end) over a partition of [0, total) on up to `workers`
/// std::threads (contiguous, near-equal chunks; never more threads than
/// items).  parallel_chunks_runs_inline shapes run on the calling thread.
/// fn must be safe to call concurrently on disjoint ranges.
template <typename Fn>
void parallel_chunks(std::uint64_t total, int workers, const Fn& fn) {
  if (parallel_chunks_runs_inline(total, workers)) {
    fn(std::uint64_t{0}, total);
    return;
  }
  const std::uint64_t w =
      std::min<std::uint64_t>(static_cast<std::uint64_t>(workers), total);
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(w));
  for (std::uint64_t i = 0; i < w; ++i) {
    const std::uint64_t begin = total * i / w;
    const std::uint64_t end = total * (i + 1) / w;
    pool.emplace_back([&fn, begin, end] { fn(begin, end); });
  }
  for (auto& t : pool) t.join();
}

}  // namespace whtlab::util
