// Arbitrary-precision unsigned integers.
//
// The number of WHT algorithms of size 2^n grows like ~7^n (Hitczenko,
// Johnson & Huang, TCS 352), which overflows 64 bits around n = 23.  The
// plan-space counting code (search/space.hpp) and the exactly-uniform plan
// sampler need exact counts, so this module provides a small unsigned bigint:
// addition, subtraction, multiplication, comparison, decimal I/O, conversion
// to double, and unbiased uniform sampling below a bound.
//
// Limbs are 64-bit, little-endian (limb 0 = least significant); arithmetic
// uses unsigned __int128 for carries.  Values are always normalized (no
// trailing zero limbs; zero is an empty limb vector).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace whtlab::util {

class BigInt {
 public:
  BigInt() = default;
  BigInt(std::uint64_t v) {  // NOLINT(google-explicit-constructor): numeric literal ergonomics
    if (v != 0) limbs_.push_back(v);
  }

  static BigInt from_decimal(const std::string& text);

  bool is_zero() const { return limbs_.empty(); }

  /// Number of significant bits (0 for zero).
  std::size_t bit_length() const;

  /// Value of bit i (i < bit_length()).
  bool bit(std::size_t i) const;

  BigInt& operator+=(const BigInt& rhs);
  BigInt& operator-=(const BigInt& rhs);  ///< Requires *this >= rhs.
  BigInt& operator*=(const BigInt& rhs);

  friend BigInt operator+(BigInt lhs, const BigInt& rhs) { return lhs += rhs; }
  friend BigInt operator-(BigInt lhs, const BigInt& rhs) { return lhs -= rhs; }
  friend BigInt operator*(BigInt lhs, const BigInt& rhs) { return lhs *= rhs; }

  /// Three-way comparison: -1, 0, +1.
  int compare(const BigInt& rhs) const;

  friend bool operator==(const BigInt& a, const BigInt& b) { return a.compare(b) == 0; }
  friend bool operator!=(const BigInt& a, const BigInt& b) { return a.compare(b) != 0; }
  friend bool operator<(const BigInt& a, const BigInt& b) { return a.compare(b) < 0; }
  friend bool operator<=(const BigInt& a, const BigInt& b) { return a.compare(b) <= 0; }
  friend bool operator>(const BigInt& a, const BigInt& b) { return a.compare(b) > 0; }
  friend bool operator>=(const BigInt& a, const BigInt& b) { return a.compare(b) >= 0; }

  /// Divide in place by a small divisor; returns the remainder.
  std::uint64_t div_small(std::uint64_t divisor);

  /// Decimal representation.
  std::string to_string() const;

  /// Nearest double (inf if out of range).  Used for growth-rate estimates.
  double to_double() const;

  /// True if the value fits in 64 bits; then value64() is exact.
  bool fits_u64() const { return limbs_.size() <= 1; }
  std::uint64_t value64() const { return limbs_.empty() ? 0 : limbs_[0]; }

  /// Uniform random value in [0, bound), bound > 0.  Rejection sampling on
  /// the top limb keeps the draw unbiased.
  static BigInt random_below(const BigInt& bound, Rng& rng);

 private:
  void normalize();

  std::vector<std::uint64_t> limbs_;
};

}  // namespace whtlab::util
