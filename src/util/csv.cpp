#include "util/csv.hpp"

#include <cstdio>
#include <stdexcept>

namespace whtlab::util {

CsvWriter::CsvWriter(const std::string& path) : path_(path), out_(path) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
}

std::string CsvWriter::escape(const std::string& cell) {
  const bool needs_quotes =
      cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string CsvWriter::num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

}  // namespace whtlab::util
