#include "util/fault.hpp"

#include <map>
#include <mutex>
#include <stdexcept>

#include "util/env.hpp"
#include "util/rng.hpp"

namespace whtlab::util::fault {

namespace detail {
std::atomic<int> g_armed{0};
}

namespace {

enum class Trigger { kOnce, kAlways, kNth, kEvery, kProb };

struct Point {
  Trigger trigger = Trigger::kOnce;
  std::uint64_t k = 1;       ///< nth/every operand
  double p = 0.0;            ///< prob operand
  Rng rng{0};                ///< prob stream (seeded)
  std::uint64_t hits = 0;
  std::uint64_t fired = 0;
};

std::mutex g_mutex;
std::map<std::string, Point> g_points;

double parse_probability(const std::string& text, const std::string& entry) {
  std::size_t pos = 0;
  double p = 0.0;
  try {
    p = std::stod(text, &pos);
  } catch (const std::exception&) {
    pos = std::string::npos;
  }
  if (pos != text.size() || p < 0.0 || p > 1.0) {
    throw std::invalid_argument("fault spec '" + entry +
                                "': probability must be in [0, 1]");
  }
  return p;
}

std::uint64_t parse_count(const std::string& text, const std::string& entry) {
  std::size_t pos = 0;
  long long k = 0;
  try {
    k = std::stoll(text, &pos);
  } catch (const std::exception&) {
    pos = std::string::npos;
  }
  if (pos != text.size() || k < 1) {
    throw std::invalid_argument("fault spec '" + entry +
                                "': count must be a positive integer");
  }
  return static_cast<std::uint64_t>(k);
}

Point parse_trigger(const std::string& trigger, const std::string& entry) {
  Point point;
  if (trigger == "once") {
    point.trigger = Trigger::kOnce;
    return point;
  }
  if (trigger == "always") {
    point.trigger = Trigger::kAlways;
    return point;
  }
  if (trigger.rfind("nth:", 0) == 0) {
    point.trigger = Trigger::kNth;
    point.k = parse_count(trigger.substr(4), entry);
    return point;
  }
  if (trigger.rfind("every:", 0) == 0) {
    point.trigger = Trigger::kEvery;
    point.k = parse_count(trigger.substr(6), entry);
    return point;
  }
  if (trigger.rfind("prob:", 0) == 0) {
    point.trigger = Trigger::kProb;
    std::string rest = trigger.substr(5);
    std::uint64_t seed = 0x5eedULL;
    const std::size_t colon = rest.find(':');
    if (colon != std::string::npos) {
      seed = parse_count(rest.substr(colon + 1), entry);
      rest = rest.substr(0, colon);
    }
    point.p = parse_probability(rest, entry);
    point.rng.reseed(seed);
    return point;
  }
  throw std::invalid_argument(
      "fault spec '" + entry +
      "': unknown trigger (want once|always|nth:K|every:K|prob:P[:SEED])");
}

}  // namespace

void arm(const std::string& spec) {
  std::map<std::string, Point> points;
  std::size_t begin = 0;
  while (begin <= spec.size()) {
    std::size_t end = spec.find(',', begin);
    if (end == std::string::npos) end = spec.size();
    std::string entry = spec.substr(begin, end - begin);
    begin = end + 1;
    // Trim surrounding whitespace: env specs get written by hand.
    const std::size_t first = entry.find_first_not_of(" \t");
    if (first == std::string::npos) continue;  // tolerate ",," and trailing ','
    entry = entry.substr(first, entry.find_last_not_of(" \t") - first + 1);
    const std::size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= entry.size()) {
      throw std::invalid_argument("fault spec '" + entry +
                                  "': want name=trigger");
    }
    points[entry.substr(0, eq)] = parse_trigger(entry.substr(eq + 1), entry);
  }
  const std::lock_guard<std::mutex> lock(g_mutex);
  g_points = std::move(points);
  detail::g_armed.store(static_cast<int>(g_points.size()),
                        std::memory_order_relaxed);
}

void arm_from_env() {
  static std::once_flag once;
  std::call_once(once, [] {
    if (const auto spec = env_string("WHTLAB_FAULTS")) arm(*spec);
  });
}

void disarm() {
  const std::lock_guard<std::mutex> lock(g_mutex);
  g_points.clear();
  detail::g_armed.store(0, std::memory_order_relaxed);
}

bool point(const char* name) {
  if (!enabled()) return false;
  const std::lock_guard<std::mutex> lock(g_mutex);
  const auto it = g_points.find(name);
  if (it == g_points.end()) return false;
  Point& p = it->second;
  ++p.hits;
  bool fire = false;
  switch (p.trigger) {
    case Trigger::kOnce:
      fire = p.hits == 1;
      break;
    case Trigger::kAlways:
      fire = true;
      break;
    case Trigger::kNth:
      fire = p.hits == p.k;
      break;
    case Trigger::kEvery:
      fire = p.hits % p.k == 0;
      break;
    case Trigger::kProb:
      // 53-bit mantissa draw in [0, 1); p == 1.0 always fires, p == 0 never.
      fire = static_cast<double>(p.rng.next() >> 11) * 0x1.0p-53 < p.p;
      break;
  }
  if (fire) ++p.fired;
  return fire;
}

std::uint64_t hits(const std::string& name) {
  const std::lock_guard<std::mutex> lock(g_mutex);
  const auto it = g_points.find(name);
  return it == g_points.end() ? 0 : it->second.hits;
}

std::uint64_t fired(const std::string& name) {
  const std::lock_guard<std::mutex> lock(g_mutex);
  const auto it = g_points.find(name);
  return it == g_points.end() ? 0 : it->second.fired;
}

}  // namespace whtlab::util::fault
