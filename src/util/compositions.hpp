// Compositions (ordered partitions) of an integer.
//
// Applying Equation 1 to WHT(2^n) chooses a composition n = n1 + ... + nt;
// the plan space, its counting recurrences, the samplers, and the DP search
// all enumerate compositions.  A composition of n with t >= 1 parts
// corresponds to a subset of the n-1 possible "cut points": bit i of the mask
// set means a cut after position i+1.  There are 2^(n-1) compositions, and
// mask 0 is the trivial one-part composition.
#pragma once

#include <cstdint>
#include <vector>

namespace whtlab::util {

/// Number of compositions of n with at least `min_parts` parts.
/// n must be in [1, 63].
std::uint64_t composition_count(int n, int min_parts = 1);

/// Decodes cut-point mask (0 <= mask < 2^(n-1)) into parts.
std::vector<int> composition_from_mask(int n, std::uint64_t mask);

/// Encodes parts back into the cut-point mask (inverse of the above).
std::uint64_t composition_to_mask(const std::vector<int>& parts);

/// Calls fn(const std::vector<int>& parts) for every composition of n with at
/// least `min_parts` parts, in mask order.  The vector is reused between
/// calls; copy it if you keep it.
template <typename Fn>
void for_each_composition(int n, int min_parts, Fn&& fn) {
  const std::uint64_t total = std::uint64_t{1} << (n - 1);
  std::vector<int> parts;
  for (std::uint64_t mask = 0; mask < total; ++mask) {
    parts.clear();
    int run = 1;
    for (int i = 0; i < n - 1; ++i) {
      if ((mask >> i) & 1ULL) {
        parts.push_back(run);
        run = 1;
      } else {
        ++run;
      }
    }
    parts.push_back(run);
    if (static_cast<int>(parts.size()) >= min_parts) fn(parts);
  }
}

}  // namespace whtlab::util
