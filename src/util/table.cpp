#include "util/table.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace whtlab::util {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
  return buf;
}

namespace {
bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!(std::isdigit(static_cast<unsigned char>(c)) || c == '.' ||
          c == '-' || c == '+' || c == 'e' || c == 'E' || c == 'x' ||
          c == 'n' || c == 'a' || c == 'i' || c == 'f')) {
      return false;
    }
  }
  return std::isdigit(static_cast<unsigned char>(s[0])) || s[0] == '-' ||
         s[0] == '+' || s[0] == '.';
}

std::string pad(const std::string& s, std::size_t width, bool right) {
  if (s.size() >= width) return s;
  const std::string fill(width - s.size(), ' ');
  return right ? fill + s : s + fill;
}
}  // namespace

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::string out;
  for (std::size_t c = 0; c < header_.size(); ++c) {
    if (c) out += "  ";
    out += pad(header_[c], widths[c], /*right=*/false);
  }
  out += '\n';
  for (std::size_t c = 0; c < header_.size(); ++c) {
    if (c) out += "  ";
    out += std::string(widths[c], '-');
  }
  out += '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out += "  ";
      out += pad(row[c], widths[c], looks_numeric(row[c]));
    }
    out += '\n';
  }
  return out;
}

void TextTable::print() const { std::fputs(render().c_str(), stdout); }

}  // namespace whtlab::util
