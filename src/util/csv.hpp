// Minimal CSV writer for experiment output.
//
// Every bench binary can dump its series as CSV (one file per figure) so the
// paper's plots can be regenerated with any plotting tool.  Quoting follows
// RFC 4180: fields containing commas, quotes or newlines are quoted, embedded
// quotes doubled.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace whtlab::util {

class CsvWriter {
 public:
  /// Opens `path` for writing; throws std::runtime_error on failure.
  explicit CsvWriter(const std::string& path);

  /// Writes one row; each cell is escaped as needed.
  void row(const std::vector<std::string>& cells);

  /// Convenience: header row.
  void header(const std::vector<std::string>& names) { row(names); }

  const std::string& path() const { return path_; }

  static std::string escape(const std::string& cell);

  /// Formats a double with enough digits to round-trip.
  static std::string num(double v);
  static std::string num(std::uint64_t v) { return std::to_string(v); }
  static std::string num(std::int64_t v) { return std::to_string(v); }
  static std::string num(int v) { return std::to_string(v); }

 private:
  std::string path_;
  std::ofstream out_;
};

}  // namespace whtlab::util
