// rng.hpp is header-only; this translation unit exists so the header is
// compiled standalone at least once (catches missing includes early).
#include "util/rng.hpp"
