#include "util/rng.hpp"

namespace whtlab::util {

std::vector<double> random_vector(std::uint64_t count, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> out(count);
  for (auto& v : out) v = rng.uniform(-1, 1);
  return out;
}

}  // namespace whtlab::util
