#include "util/compositions.hpp"

#include <stdexcept>

namespace whtlab::util {

std::uint64_t composition_count(int n, int min_parts) {
  if (n < 1 || n > 63) throw std::invalid_argument("composition_count: bad n");
  const std::uint64_t total = std::uint64_t{1} << (n - 1);
  if (min_parts <= 1) return total;
  if (min_parts == 2) return total - 1;  // exclude the one-part composition
  // General case: subtract compositions with fewer than min_parts parts:
  // count with exactly t parts is C(n-1, t-1).
  std::uint64_t excluded = 0;
  std::uint64_t binom = 1;  // C(n-1, 0)
  for (int t = 1; t < min_parts; ++t) {
    excluded += binom;
    binom = binom * static_cast<std::uint64_t>(n - t) /
            static_cast<std::uint64_t>(t);
  }
  return total - excluded;
}

std::vector<int> composition_from_mask(int n, std::uint64_t mask) {
  if (n < 1 || n > 63) throw std::invalid_argument("composition: bad n");
  if (mask >> (n - 1)) throw std::invalid_argument("composition: bad mask");
  std::vector<int> parts;
  int run = 1;
  for (int i = 0; i < n - 1; ++i) {
    if ((mask >> i) & 1ULL) {
      parts.push_back(run);
      run = 1;
    } else {
      ++run;
    }
  }
  parts.push_back(run);
  return parts;
}

std::uint64_t composition_to_mask(const std::vector<int>& parts) {
  std::uint64_t mask = 0;
  int position = 0;
  for (std::size_t i = 0; i + 1 < parts.size(); ++i) {
    position += parts[i];
    mask |= std::uint64_t{1} << (position - 1);
  }
  return mask;
}

}  // namespace whtlab::util
