// Deterministic fault injection for the serving stack.
//
// Production failure paths — a full ring, a futex timeout, a backend that
// throws mid-request, a wisdom write that hits a full disk — are exactly the
// paths ordinary tests cannot reach on demand.  This module names each such
// path as a *fault point* and lets a spec arm it to fail deterministically:
//
//   // call site (client.cpp, daemon.cpp, engine.cpp, shm.cpp, ...):
//   if (fault::enabled() && fault::point("ipc.ring.publish")) {
//     /* behave exactly as if the real failure happened */
//   }
//
//   // armed from the environment (validated; garbage fails loudly):
//   WHTLAB_FAULTS="ipc.ring.publish=nth:3,engine.exec.simd=prob:0.1:42"
//
//   // or programmatically (tests):
//   util::fault::arm("ipc.futex.wait=always");
//
// Spec grammar (comma-separated `name=trigger` entries):
//
//   trigger := "once"            first hit fires, later hits pass
//            | "always"          every hit fires
//            | "nth:K"           exactly the K-th hit fires (1-based)
//            | "every:K"         every K-th hit fires (K, 2K, 3K, ...)
//            | "prob:P"          each hit fires with probability P in [0, 1]
//            | "prob:P:SEED"     ... from a seeded xoshiro stream, so a
//                                given (P, SEED) fires on a reproducible
//                                hit subsequence
//
// Disarmed cost is one relaxed atomic load (`enabled()` — the call sites
// gate on it before even materializing the point name), so the hooks stay in
// release builds: chaos tests and `WHTLAB_FAULTS` work against the exact
// binaries that serve.  Armed evaluation takes a mutex — fault runs are
// about determinism, not throughput.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace whtlab::util::fault {

namespace detail {
extern std::atomic<int> g_armed;
}

/// True when at least one fault point is armed.  The fast-path gate: call
/// sites check it before building point names or calling point().
inline bool enabled() {
  return detail::g_armed.load(std::memory_order_relaxed) > 0;
}

/// Records a hit of the named point and returns true when the armed trigger
/// says this hit fails.  Unarmed points (and everything while disarmed)
/// return false.  Thread-safe.
bool point(const char* name);
inline bool point(const std::string& name) { return point(name.c_str()); }

/// Parses and arms a spec (replacing whatever was armed).  Throws
/// std::invalid_argument on grammar errors — a typo in a fault spec must
/// fail the run loudly, not silently test nothing.
void arm(const std::string& spec);

/// Arms from WHTLAB_FAULTS once per process (later calls are no-ops, so
/// every serving entry point can call it).  Unset/empty = no-op.  Throws
/// std::invalid_argument when the variable is set but malformed.
void arm_from_env();

/// Disarms every point and resets all counters.
void disarm();

/// Hit / fire counters for one point since it was last armed (0 when the
/// point was never armed).  For test assertions.
std::uint64_t hits(const std::string& name);
std::uint64_t fired(const std::string& name);

}  // namespace whtlab::util::fault
