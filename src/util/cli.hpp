// Tiny command-line flag parser shared by the bench and example binaries.
//
// Supports `--name value`, `--name=value`, and boolean `--name`.  Unknown
// flags are an error: experiment binaries should fail fast rather than
// silently ignore a mistyped parameter.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace whtlab::util {

class Cli {
 public:
  /// Declares a value flag with a help string; call before parse().
  void add_flag(const std::string& name, const std::string& help,
                std::optional<std::string> default_value = std::nullopt);

  /// Declares a boolean flag: `--name` sets it to "true" and never consumes
  /// the following token (so `--verbose input.txt` keeps the positional).
  void add_bool(const std::string& name, const std::string& help);

  /// Parses argv; returns false (after printing usage) on error or --help.
  bool parse(int argc, char** argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& fallback = "") const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;

  /// Positional arguments, in order.
  const std::vector<std::string>& positional() const { return positional_; }

  std::string usage(const std::string& program) const;

 private:
  struct Flag {
    std::string help;
    std::optional<std::string> default_value;
    bool boolean = false;
  };
  std::map<std::string, Flag> flags_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace whtlab::util
