// Deterministic pseudo-random number generation.
//
// Experiments must be reproducible from a seed, so the library uses its own
// generator (xoshiro256**) instead of std::mt19937: the state is small, the
// stream is identical across platforms and standard-library versions, and it
// is fast enough to sit inside the plan sampler's inner loop.
#pragma once

#include <cstdint>
#include <vector>

namespace whtlab::util {

/// splitmix64 — used to expand a single 64-bit seed into generator state.
/// (Reference: Sebastiano Vigna, public domain.)
inline std::uint64_t splitmix64_next(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 — all-purpose 64-bit generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : s_) word = splitmix64_next(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  result_type operator()() { return next(); }

  /// Uniform integer in [0, bound).  Uses Lemire's multiply-shift rejection
  /// method; unbiased for every bound.
  std::uint64_t below(std::uint64_t bound) {
    if (bound <= 1) return 0;
    // Rejection threshold for unbiased mapping.
    const std::uint64_t threshold = (-bound) % bound;
    for (;;) {
      const std::uint64_t r = next();
      const unsigned __int128 m = static_cast<unsigned __int128>(r) * bound;
      if (static_cast<std::uint64_t>(m) >= threshold) {
        return static_cast<std::uint64_t>(m >> 64);
      }
    }
  }

  /// Uniform double in [0, 1) with 53 random bits.
  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

/// `count` doubles uniform in [-1, 1) from a fresh Rng(seed) — the standard
/// reproducible payload fill the tests and bench drivers share.
std::vector<double> random_vector(std::uint64_t count, std::uint64_t seed);

}  // namespace whtlab::util
