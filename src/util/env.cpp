#include "util/env.hpp"

#include <cstdlib>
#include <stdexcept>

namespace whtlab::util {

std::optional<std::string> env_string(const char* name) {
  const char* value = std::getenv(name);
  if (value == nullptr || value[0] == '\0') return std::nullopt;
  return std::string(value);
}

std::int64_t env_int(const char* name, std::int64_t fallback) {
  const auto text = env_string(name);
  if (!text) return fallback;
  std::size_t pos = 0;
  const std::int64_t value = std::stoll(*text, &pos);
  if (pos != text->size()) {
    throw std::invalid_argument(std::string(name) + ": not an integer: " + *text);
  }
  return value;
}

double env_double(const char* name, double fallback) {
  const auto text = env_string(name);
  if (!text) return fallback;
  std::size_t pos = 0;
  const double value = std::stod(*text, &pos);
  if (pos != text->size()) {
    throw std::invalid_argument(std::string(name) + ": not a number: " + *text);
  }
  return value;
}

}  // namespace whtlab::util
