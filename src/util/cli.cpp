#include "util/cli.hpp"

#include <cstdio>
#include <stdexcept>

namespace whtlab::util {

void Cli::add_flag(const std::string& name, const std::string& help,
                   std::optional<std::string> default_value) {
  flags_[name] = Flag{help, std::move(default_value), /*boolean=*/false};
}

void Cli::add_bool(const std::string& name, const std::string& help) {
  flags_[name] = Flag{help, std::nullopt, /*boolean=*/true};
}

std::string Cli::usage(const std::string& program) const {
  std::string out = "usage: " + program + " [flags]\n";
  for (const auto& [name, flag] : flags_) {
    out += "  --" + name;
    if (flag.default_value) out += " (default: " + *flag.default_value + ")";
    out += "\n      " + flag.help + "\n";
  }
  return out;
}

bool Cli::parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage(argv[0]).c_str(), stdout);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    std::string name;
    std::string value;
    bool have_value = false;
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
      have_value = true;
    } else {
      name = arg;
    }
    const auto it = flags_.find(name);
    if (it == flags_.end()) {
      std::fprintf(stderr, "unknown flag --%s\n%s", name.c_str(),
                   usage(argv[0]).c_str());
      return false;
    }
    if (!have_value && !it->second.boolean && i + 1 < argc &&
        argv[i + 1][0] != '-') {
      value = argv[++i];
      have_value = true;
    }
    values_[name] = have_value ? value : "true";
  }
  return true;
}

bool Cli::has(const std::string& name) const {
  if (values_.count(name)) return true;
  const auto it = flags_.find(name);
  return it != flags_.end() && it->second.default_value.has_value();
}

std::string Cli::get(const std::string& name, const std::string& fallback) const {
  const auto it = values_.find(name);
  if (it != values_.end()) return it->second;
  const auto decl = flags_.find(name);
  if (decl != flags_.end() && decl->second.default_value) {
    return *decl->second.default_value;
  }
  return fallback;
}

std::int64_t Cli::get_int(const std::string& name, std::int64_t fallback) const {
  const std::string text = get(name);
  if (text.empty()) return fallback;
  return std::stoll(text);
}

double Cli::get_double(const std::string& name, double fallback) const {
  const std::string text = get(name);
  if (text.empty()) return fallback;
  return std::stod(text);
}

}  // namespace whtlab::util
