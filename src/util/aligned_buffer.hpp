// Cache-line aligned data buffers for transform inputs.
//
// WHT plans operate in place on arrays of doubles.  Cache behaviour is part
// of what this library measures, so buffers are aligned to a cache-line (and
// optionally page) boundary: the cache simulator and the analytic cache model
// both assume the vector starts at the beginning of a line.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <new>
#include <utility>

namespace whtlab::util {

/// Default alignment: one x86 cache line.
inline constexpr std::size_t kCacheLineBytes = 64;

/// RAII buffer of doubles with guaranteed alignment.
///
/// Intentionally minimal: no resizing, no copying (measurement code must not
/// accidentally reallocate mid-experiment); movable so it can be returned
/// from factories.
class AlignedBuffer {
 public:
  AlignedBuffer() = default;

  explicit AlignedBuffer(std::size_t count, std::size_t alignment = kCacheLineBytes)
      : size_(count) {
    if (count == 0) return;
    // aligned_alloc requires the size to be a multiple of the alignment.
    std::size_t bytes = count * sizeof(double);
    bytes = (bytes + alignment - 1) / alignment * alignment;
    data_ = static_cast<double*>(std::aligned_alloc(alignment, bytes));
    if (data_ == nullptr) throw std::bad_alloc();
  }

  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  AlignedBuffer(AlignedBuffer&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)) {}

  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      std::free(data_);
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
    }
    return *this;
  }

  ~AlignedBuffer() { std::free(data_); }

  double* data() noexcept { return data_; }
  const double* data() const noexcept { return data_; }
  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  double& operator[](std::size_t i) noexcept { return data_[i]; }
  double operator[](std::size_t i) const noexcept { return data_[i]; }

  double* begin() noexcept { return data_; }
  double* end() noexcept { return data_ + size_; }
  const double* begin() const noexcept { return data_; }
  const double* end() const noexcept { return data_ + size_; }

  void fill(double v) noexcept {
    for (std::size_t i = 0; i < size_; ++i) data_[i] = v;
  }

 private:
  double* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace whtlab::util
