// Environment-variable configuration knobs.
//
// The experiment harness scales with `WHTLAB_SAMPLES`, `WHTLAB_MAXN`, and
// `WHTLAB_SEED` (see DESIGN.md).  These helpers parse them with defaults so
// every bench binary interprets the knobs identically.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace whtlab::util {

/// Raw lookup; nullopt when unset or empty.
std::optional<std::string> env_string(const char* name);

/// Integer lookup with default; throws std::invalid_argument on garbage so a
/// typo in an experiment invocation fails loudly instead of silently running
/// the wrong configuration.
std::int64_t env_int(const char* name, std::int64_t fallback);

double env_double(const char* name, double fallback);

}  // namespace whtlab::util
