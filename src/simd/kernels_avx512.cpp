// AVX-512F kernel table (8 doubles per register).  This TU is compiled with
// -mavx512f (see the WHTLAB_SIMD_AVX512_FLAGS logic in CMakeLists.txt) and
// is only entered after cpu_features.hpp has confirmed the host supports it.
#include "simd/kernels.hpp"
#include "simd/kernels_impl.hpp"

namespace whtlab::simd {

const KernelSet& avx512_kernels() {
  static constexpr KernelSet kernels = {
      /*width=*/8,
      /*leaf_unit=*/&detail::leaf_unit<8>,
      /*leaf_lockstep=*/&detail::leaf_lockstep<8>,
      /*interleave_in=*/&detail::interleave_in<8>,
      /*interleave_out=*/&detail::interleave_out<8>,
      /*fused_unit_pass=*/&detail::fused_unit_pass<8>,
      /*fused_lockstep_pass=*/&detail::fused_lockstep_pass<8>,
      /*leaf_strided=*/&detail::leaf_strided_avx512,
  };
  return kernels;
}

}  // namespace whtlab::simd
