// Vectorized interpreter for cache-blocked fused schedules.
//
// core/schedule.hpp lowers a plan into nested cache-blocked rounds of fused
// passes; this module executes such a schedule with the per-ISA fused
// kernels (simd/kernels.hpp): the unit pass is the in-register contiguous
// codelet swept across a block, and every strided pass is a flat streaming
// loop of radix-2/4/8 register tiles, W columns per step.  Dispatch follows
// the same runtime rules as the tree-walk executor (cpu_features.hpp);
// scalar level, strided invocations, and schedules a width cannot cover
// (transform or unit pass smaller than a vector) fall back to the scalar
// schedule interpreter — the parity reference.
//
// This is the execution engine behind the "fused" backend, and the layer
// future big-n backends (sharded/NUMA, GPU) lower through: they consume the
// same core::Schedule, swapping only the per-pass kernels.
#pragma once

#include <cstddef>

#include "core/schedule.hpp"
#include "simd/cpu_features.hpp"

namespace whtlab::simd {

/// Blocking geometry for this host: L1/L2 block sizes derived from the
/// probed cache_sizes() (half of each level, in doubles), defaults where a
/// level is unknown.  WHTLAB_FUSED_L1_LOG2 / WHTLAB_FUSED_L2_LOG2 /
/// WHTLAB_FUSED_STREAM_RADIX override the computed values (the ablation /
/// cross-machine knobs).
core::BlockingConfig detect_blocking();

/// Executes `schedule` in place on the 2^n elements x[0], x[stride], ...
/// at the given (or active) SIMD level.  Bit-identical to core::execute on
/// any plan of the same size.
void execute_fused(const core::Schedule& schedule, double* x,
                   std::ptrdiff_t stride, SimdLevel level);
void execute_fused(const core::Schedule& schedule, double* x,
                   std::ptrdiff_t stride = 1);

/// Batched fused execution: `count` vectors, vector v at x + v*dist, fanned
/// out over `threads` workers (each vector runs the whole schedule — the
/// schedule lowering is shared, which is what run_many batching buys here).
void execute_fused_many(const core::Schedule& schedule, double* x,
                        std::size_t count, std::ptrdiff_t dist, int threads);

}  // namespace whtlab::simd
