// SIMD plan executor — the vectorized twin of core::execute.
//
// Walks the same Equation-1 triple loop as the scalar interpreter but keeps
// the data path W doubles wide (W = 4 on AVX2, 8 on AVX-512F, chosen at
// runtime by simd/cpu_features.hpp):
//
//   * the inner k loop of a split runs W iterations per step once the
//     accumulated stride S reaches W — the W child vectors it would visit
//     one at a time are contiguous in memory, so the whole child subtree
//     executes in lockstep on W-wide loads (kernels.hpp, leaf_lockstep);
//   * stride-1 leaves (the last-child recursion chain) use in-register
//     butterfly codelets (leaf_unit: lane shuffles for the first log2 W
//     stages, full-width add/sub beyond);
//   * everything else — leaves smaller than W, the k < W prefix — falls
//     back to the scalar generated codelets, and on hosts with no usable
//     ISA the whole walk degenerates to core::execute_node.
//
// execute_many adds the batch-interleaved serving shape: groups of W
// independent vectors are transposed into SIMD lanes so W whole transforms
// proceed in lockstep (every butterfly full-width, tree-walk overhead
// amortized W-fold), optionally fanned out across std::thread workers per
// batch chunk.  Output is bit-identical to core::execute for every path —
// a tested invariant, not an aspiration.
#pragma once

#include <cstddef>

#include "core/plan.hpp"
#include "simd/cpu_features.hpp"
#include "util/scratch_arena.hpp"

namespace whtlab::simd {

/// In-place WHT of the plan.size() elements x[0], x[stride], ... at the
/// given SIMD level (default: the runtime-dispatched active_level()).
void execute(const core::Plan& plan, double* x, std::ptrdiff_t stride,
             SimdLevel level);
void execute(const core::Plan& plan, double* x, std::ptrdiff_t stride = 1);

/// Batched transform of `count` vectors, vector v starting at x + v*dist
/// (|dist| >= plan.size() so vectors do not overlap).  Full groups of W
/// vectors run batch-interleaved; the remainder runs through execute().
/// `threads` > 1 splits the groups across that many std::thread workers
/// (each with its own interleave scratch).  When the call runs on the
/// calling thread (threads <= 1), `scratch` — if non-null — supplies the
/// interleave buffer so a serving loop allocates nothing per request; the
/// function never stores state in it beyond the call.  Re-entrant: safe to
/// call concurrently on disjoint data with distinct arenas.
void execute_many(const core::Plan& plan, double* x, std::size_t count,
                  std::ptrdiff_t dist, int threads = 1,
                  util::ScratchArena* scratch = nullptr);

/// True when execute_many(plan, ..., count, ...) would take the
/// batch-interleaved path at the active dispatch level — the tiny-transform
/// serving shape whose W-fold overhead amortization the Engine's arbiter
/// prices (api/engine.hpp).
bool batch_interleaves(const core::Plan& plan, std::size_t count);

}  // namespace whtlab::simd
