// Runtime CPU dispatch for the SIMD execution backend.
//
// The SIMD codelets are compiled per ISA in dedicated translation units
// (kernels_avx2.cpp with -mavx2, kernels_avx512.cpp with -mavx512f) so one
// binary carries every flavour and picks at runtime: detected_level() asks
// CPUID (via __builtin_cpu_supports) which of the compiled-in levels the
// host can actually execute, and active_level() layers two overrides on top
// so a run is reproducible and testable:
//
//   * the WHTLAB_SIMD environment variable ("scalar", "avx2", "avx512",
//     "auto") caps the level for a whole process — the knob the CI scalar
//     job and cross-machine experiments use;
//   * force_level() caps it programmatically — the knob the dispatch unit
//     tests and the scalar-vs-SIMD comparison bench use.
//
// Overrides can only lower the level: requesting AVX-512 on a host without
// it still yields what the host supports, never an illegal-instruction trap.
#pragma once

#include <cstddef>
#include <string>

namespace whtlab::simd {

/// Instruction-set levels the backend can dispatch to, best last.
enum class SimdLevel {
  kScalar = 0,  ///< portable fallback: the scalar generated codelets
  kAvx2 = 1,    ///< 4 doubles per vector (ymm)
  kAvx512 = 2,  ///< 8 doubles per vector (zmm)
};

/// "scalar", "avx2", "avx512".
const char* to_string(SimdLevel level);

/// Doubles per SIMD lane group: 1, 4, or 8.
int vector_width(SimdLevel level);

/// Best level both compiled in and supported by this host's CPUID bits.
/// Computed once; never changes within a process.
SimdLevel detected_level();

/// The level the executor will actually use: detected_level() capped by the
/// WHTLAB_SIMD environment variable and by force_level(), whichever is lower.
SimdLevel active_level();

/// Caps active_level() at `level` until reset_forced_level() (testing /
/// ablation hook; not synchronized against concurrent executes).
void force_level(SimdLevel level);

/// Removes the force_level() cap.
void reset_forced_level();

/// Parses a WHTLAB_SIMD value.  Throws std::invalid_argument on anything
/// but "scalar" / "avx2" / "avx512" / "auto" (auto = detected_level()).
SimdLevel parse_level(const std::string& name);

/// Data-cache capacities the fused-schedule blocker sizes its blocks to.
/// A 0 entry means the level could not be determined (absent on the host,
/// or no sysfs).  Consumers apply their own fallbacks — see
/// simd::detect_blocking() in fused_executor.hpp.
struct CacheSizes {
  std::size_t l1d_bytes = 0;
  std::size_t l2_bytes = 0;
  std::size_t l3_bytes = 0;
};

/// Probed once per process from /sys/devices/system/cpu/cpu0/cache (Linux);
/// WHTLAB_L1_BYTES / WHTLAB_L2_BYTES environment variables override the
/// corresponding probed entries (the cross-machine reproducibility knob).
const CacheSizes& cache_sizes();

}  // namespace whtlab::simd
