#include "simd/simd_executor.hpp"

#include <cstdint>

#include "core/codelet.hpp"
#include "core/executor.hpp"
#include "simd/kernels.hpp"
#include "util/aligned_buffer.hpp"
#include "util/env.hpp"
#include "util/parallel_chunks.hpp"

namespace whtlab::simd {

namespace {

/// Interleaved execute_many caps its scratch at this many doubles (4 KiB —
/// a fraction of L1).  Interleaving wins exactly where per-transform
/// overhead dominates (tiny transforms, the high-rate serving shape);
/// beyond this the W-fold working-set blowup spills L1 and the per-vector
/// tree walk — itself vectorized — is faster (measured crossover ~2^6 at
/// width 8; see bench_simd_compare).
constexpr std::uint64_t kInterleaveMaxDoubles = 512;

struct WalkContext {
  const KernelSet* kernels;  // never null inside the vectorized walk
  const std::array<core::CodeletFn, core::kMaxUnrolled + 1>* scalar;
  bool use_gather = false;  // leaf_strided available and not env-disabled
};

/// WHTLAB_SIMD_GATHER=0 keeps strided leaves on the scalar codelets (the
/// ablation knob for the AVX-512 gather/scatter path); read once.
bool gather_env_enabled() {
  static const bool enabled = util::env_int("WHTLAB_SIMD_GATHER", 1) != 0;
  return enabled;
}

/// W transforms in lockstep: lane l's element j of `node`'s vector lives at
/// x[l + j*estride].  Split nodes are the scalar triple loop with element
/// stride `estride`; only leaves touch data, W-wide.
void walk_lockstep(const core::PlanNode& node, double* x, std::ptrdiff_t estride,
                   const WalkContext& ctx) {
  if (node.kind == core::NodeKind::kSmall) {
    ctx.kernels->leaf_lockstep(node.log2_size, x, estride);
    return;
  }
  std::uint64_t r = node.size();
  std::uint64_t s = 1;
  for (std::size_t i = node.children.size(); i-- > 0;) {
    const core::PlanNode& child = *node.children[i];
    const std::uint64_t ni = child.size();
    r /= ni;
    for (std::uint64_t j = 0; j < r; ++j) {
      for (std::uint64_t k = 0; k < s; ++k) {
        walk_lockstep(child,
                      x + static_cast<std::ptrdiff_t>(j * ni * s + k) * estride,
                      static_cast<std::ptrdiff_t>(s) * estride, ctx);
      }
    }
    s *= ni;
  }
}

/// Vectorized mirror of core::execute_node.  At unit stride the inner k
/// loop switches to lockstep W at a time as soon as S >= W (the W child
/// vectors it covers start at consecutive addresses); stride-1 leaves of at
/// least W elements take the in-register codelet; everything else is the
/// scalar path.
void walk(const core::PlanNode& node, double* x, std::ptrdiff_t stride,
          const WalkContext& ctx) {
  const std::uint64_t width = static_cast<std::uint64_t>(ctx.kernels->width);
  if (node.kind == core::NodeKind::kSmall) {
    if (stride == 1 && node.size() >= width) {
      ctx.kernels->leaf_unit(node.log2_size, x);
    } else if (ctx.use_gather && stride > 1 && node.size() >= width) {
      // Strided leaf on the gather/scatter path: 8 strided elements per
      // zmm, the whole butterfly body in registers (AVX-512 only; scalar
      // elsewhere).
      ctx.kernels->leaf_strided(node.log2_size, x, stride);
    } else {
      (*ctx.scalar)[static_cast<std::size_t>(node.log2_size)](x, stride);
    }
    return;
  }
  std::uint64_t r = node.size();
  std::uint64_t s = 1;
  for (std::size_t i = node.children.size(); i-- > 0;) {
    const core::PlanNode& child = *node.children[i];
    const std::uint64_t ni = child.size();
    r /= ni;
    for (std::uint64_t j = 0; j < r; ++j) {
      double* block = x + static_cast<std::ptrdiff_t>(j * ni * s) * stride;
      if (stride == 1 && s >= width) {
        for (std::uint64_t k = 0; k < s; k += width) {
          walk_lockstep(child, block + static_cast<std::ptrdiff_t>(k),
                        static_cast<std::ptrdiff_t>(s), ctx);
        }
      } else {
        for (std::uint64_t k = 0; k < s; ++k) {
          walk(child, block + static_cast<std::ptrdiff_t>(k) * stride,
               static_cast<std::ptrdiff_t>(s) * stride, ctx);
        }
      }
    }
    s *= ni;
  }
}

}  // namespace

const KernelSet* kernels_for(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return nullptr;
#if defined(WHTLAB_HAVE_AVX2)
    case SimdLevel::kAvx2:
      return &avx2_kernels();
#endif
#if defined(WHTLAB_HAVE_AVX512)
    case SimdLevel::kAvx512:
      return &avx512_kernels();
#endif
    default:
      return nullptr;  // level compiled out of this binary
  }
}

void execute(const core::Plan& plan, double* x, std::ptrdiff_t stride,
             SimdLevel level) {
  const auto& scalar = core::codelet_table(core::CodeletBackend::kGenerated);
  const KernelSet* kernels = kernels_for(level);
  if (kernels == nullptr) {
    core::execute_node(plan.root(), x, stride, scalar);
    return;
  }
  WalkContext ctx{kernels, &scalar};
  ctx.use_gather = kernels->leaf_strided != nullptr && gather_env_enabled();
  walk(plan.root(), x, stride, ctx);
}

void execute(const core::Plan& plan, double* x, std::ptrdiff_t stride) {
  execute(plan, x, stride, active_level());
}

namespace {

/// THE interleave rule — execute_many's dispatch and the arbiter-facing
/// batch_interleaves() predicate must never diverge, so both call this.
bool interleaves(const KernelSet* kernels, std::uint64_t size,
                 std::size_t count) {
  if (kernels == nullptr) return false;
  const std::uint64_t width = static_cast<std::uint64_t>(kernels->width);
  return count >= width && size * width <= kInterleaveMaxDoubles;
}

}  // namespace

bool batch_interleaves(const core::Plan& plan, std::size_t count) {
  return interleaves(kernels_for(active_level()), plan.size(), count);
}

void execute_many(const core::Plan& plan, double* x, std::size_t count,
                  std::ptrdiff_t dist, int threads,
                  util::ScratchArena* scratch) {
  const SimdLevel level = active_level();
  const KernelSet* kernels = kernels_for(level);
  const std::uint64_t n = plan.size();
  const std::uint64_t width =
      kernels ? static_cast<std::uint64_t>(kernels->width) : 1;

  if (!interleaves(kernels, n, count)) {
    util::parallel_chunks(count, threads, [&](std::uint64_t begin, std::uint64_t end) {
      for (std::uint64_t v = begin; v < end; ++v) {
        execute(plan, x + static_cast<std::ptrdiff_t>(v) * dist, 1, level);
      }
    });
    return;
  }

  const auto& scalar = core::codelet_table(core::CodeletBackend::kGenerated);
  const WalkContext ctx{kernels, &scalar};
  const std::uint64_t groups = static_cast<std::uint64_t>(count) / width;
  const core::PlanNode& root = plan.root();

  // The caller's arena is usable only when the sweep runs on the calling
  // thread (workers spawned on fresh threads must not share it — an arena
  // belongs to one thread); ask parallel_chunks' own rule.
  const bool inline_call = util::parallel_chunks_runs_inline(groups, threads);
  util::parallel_chunks(groups, threads, [&](std::uint64_t begin, std::uint64_t end) {
    if (begin == end) return;
    util::AlignedBuffer local;
    double* buffer;
    if (inline_call && scratch != nullptr) {
      buffer = scratch->acquire(n * width);
    } else {
      local = util::AlignedBuffer(n * width);
      buffer = local.data();
    }
    const std::ptrdiff_t w = static_cast<std::ptrdiff_t>(width);
    for (std::uint64_t g = begin; g < end; ++g) {
      double* base = x + static_cast<std::ptrdiff_t>(g * width) * dist;
      kernels->interleave_in(buffer, base, dist, n);
      walk_lockstep(root, buffer, w, ctx);
      kernels->interleave_out(base, buffer, dist, n);
    }
  });

  // Remainder vectors (< width of them) one at a time.
  for (std::uint64_t v = groups * width; v < count; ++v) {
    execute(plan, x + static_cast<std::ptrdiff_t>(v) * dist, 1, level);
  }
}

}  // namespace whtlab::simd
