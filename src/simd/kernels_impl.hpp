// Width-generic SIMD codelet bodies — include ONLY from a translation unit
// compiled with the matching -m flags (kernels_avx2.cpp, kernels_avx512.cpp).
//
// Written against GCC/Clang vector extensions rather than <immintrin.h> so
// one body serves every width: vector add/sub/multiply lower to the ISA the
// TU is compiled for, and __builtin_shufflevector lowers to the in-register
// permutes (vshufpd / vperm2f128 / vshuff64x2) the stride-1 butterflies
// need.  Which templates are instantiated where is kept disjoint per TU
// (W = 4 only in the AVX2 unit, W = 8 only in the AVX-512 unit) so no
// function body ever ends up compiled with the wrong target flags.
//
// Numerical contract: bit-identical to the scalar codelets.  Every butterfly
// is the same (a+b, a−b) pair in the same stage order as template_codelet /
// the generated straight-line code; the in-register stages compute a−b as
// a + (b XOR signbit), which is exact for IEEE doubles (sign-bit flip is
// exact negation, and a + (−b) ≡ a − b).  The XOR replaces the previous
// ±1.0 multiply: vxorpd has lower latency than vmulpd, runs on more ports,
// and cannot be FMA-contracted into the critical path.  The parity tests
// assert equality with EXPECT_EQ, not a tolerance.
#pragma once

#include <cstddef>
#include <cstdint>

#if defined(__AVX512F__)
// The gather/scatter leaf needs the vgatherqpd / vscatterqpd intrinsics,
// which have no vector-extension spelling.  Guarded so only the AVX-512 TU
// (compiled with -mavx512f) sees the include.
#include <immintrin.h>
#endif

#include "core/plan.hpp"

namespace whtlab::simd::detail {

typedef double v4df __attribute__((vector_size(32)));
typedef double v8df __attribute__((vector_size(64)));
typedef std::int64_t v4di __attribute__((vector_size(32)));
typedef std::int64_t v8di __attribute__((vector_size(64)));

template <int W>
struct VecOf;
template <>
struct VecOf<4> {
  using type = v4df;
  using itype = v4di;
};
template <>
struct VecOf<8> {
  using type = v8df;
  using itype = v8di;
};
template <int W>
using vec_t = typename VecOf<W>::type;
template <int W>
using ivec_t = typename VecOf<W>::itype;

/// IEEE-754 double sign bit, for XOR-based sign flips.
inline constexpr std::int64_t kSignBit = std::int64_t{1} << 63;

// memcpy-based loads/stores compile to single unaligned vector moves, which
// run at aligned speed on aligned addresses — and the executor's recursion
// keeps lockstep addresses W-aligned relative to the caller's base pointer.
template <int W>
inline vec_t<W> vload(const double* p) {
  vec_t<W> v;
  __builtin_memcpy(&v, p, sizeof(v));
  return v;
}

template <int W>
inline void vstore(double* p, vec_t<W> v) {
  __builtin_memcpy(p, &v, sizeof(v));
}

/// Flips the sign of the lanes whose mask entry is kSignBit (XOR on the
/// reinterpreted bits; C-style casts between same-size vector types are
/// bit-level reinterprets under the GCC/Clang vector extensions).
template <int W>
inline vec_t<W> flip_lanes(vec_t<W> v, ivec_t<W> mask) {
  return (vec_t<W>)((ivec_t<W>)v ^ mask);
}

/// One butterfly stage at lane distance D, entirely inside one register:
/// out[l] = v[l & ~D] + sign_l * v[l | D] with sign_l = (l & D) ? -1 : +1,
/// i.e. lane pairs (l, l+D) become (a+b, a-b).  The sign is applied by
/// XOR-ing the sign bit, not by multiplying.
template <int W, int D>
inline vec_t<W> lane_butterfly(vec_t<W> v) {
  constexpr std::int64_t kNeg = kSignBit;
  if constexpr (W == 4 && D == 1) {
    const v4df lo = __builtin_shufflevector(v, v, 0, 0, 2, 2);
    const v4df hi = __builtin_shufflevector(v, v, 1, 1, 3, 3);
    const v4di mask = {0, kNeg, 0, kNeg};
    return lo + flip_lanes<4>(hi, mask);
  } else if constexpr (W == 4 && D == 2) {
    const v4df lo = __builtin_shufflevector(v, v, 0, 1, 0, 1);
    const v4df hi = __builtin_shufflevector(v, v, 2, 3, 2, 3);
    const v4di mask = {0, 0, kNeg, kNeg};
    return lo + flip_lanes<4>(hi, mask);
  } else if constexpr (W == 8 && D == 1) {
    const v8df lo = __builtin_shufflevector(v, v, 0, 0, 2, 2, 4, 4, 6, 6);
    const v8df hi = __builtin_shufflevector(v, v, 1, 1, 3, 3, 5, 5, 7, 7);
    const v8di mask = {0, kNeg, 0, kNeg, 0, kNeg, 0, kNeg};
    return lo + flip_lanes<8>(hi, mask);
  } else if constexpr (W == 8 && D == 2) {
    const v8df lo = __builtin_shufflevector(v, v, 0, 1, 0, 1, 4, 5, 4, 5);
    const v8df hi = __builtin_shufflevector(v, v, 2, 3, 2, 3, 6, 7, 6, 7);
    const v8di mask = {0, 0, kNeg, kNeg, 0, 0, kNeg, kNeg};
    return lo + flip_lanes<8>(hi, mask);
  } else if constexpr (W == 8 && D == 4) {
    const v8df lo = __builtin_shufflevector(v, v, 0, 1, 2, 3, 0, 1, 2, 3);
    const v8df hi = __builtin_shufflevector(v, v, 4, 5, 6, 7, 4, 5, 6, 7);
    const v8di mask = {0, 0, 0, 0, kNeg, kNeg, kNeg, kNeg};
    return lo + flip_lanes<8>(hi, mask);
  } else {
    // Fail the build, not the lanes, when a new width forgets its shuffles.
    static_assert(W != W, "lane_butterfly: unsupported (W, D) combination");
  }
}

template <int W>
inline constexpr int kLog2Width = W == 4 ? 2 : 3;

/// The in-register WHT(2^k) stage body shared by leaf_unit and the
/// gather/scatter strided leaf: t[] holds 2^k logically consecutive
/// elements W per register.  Stages 0..log2(W)-1 run inside registers via
/// lane_butterfly; stages log2(W).. are full-width add/sub between
/// registers — the same stage order as the scalar codelets.
template <int W>
inline void register_stages(int k, vec_t<W>* t) {
  using vec = vec_t<W>;
  const int nv = (1 << k) / W;
  for (int i = 0; i < nv; ++i) {
    vec v = t[i];
    v = lane_butterfly<W, 1>(v);
    v = lane_butterfly<W, 2>(v);
    if constexpr (W == 8) v = lane_butterfly<W, 4>(v);
    t[i] = v;
  }
  for (int stage = kLog2Width<W>; stage < k; ++stage) {
    const int hw = 1 << (stage - kLog2Width<W>);  // butterfly span in vectors
    for (int base = 0; base < nv; base += 2 * hw) {
      for (int off = 0; off < hw; ++off) {
        const vec a = t[base + off];
        const vec b = t[base + off + hw];
        t[base + off] = a + b;
        t[base + off + hw] = a - b;
      }
    }
  }
}

/// WHT(2^k) on 2^k contiguous doubles, 2^k >= W.
template <int W>
void leaf_unit(int k, double* x) {
  using vec = vec_t<W>;
  const int m = 1 << k;
  const int nv = m / W;
  vec t[(1 << core::kMaxUnrolled) / W];
  for (int i = 0; i < nv; ++i) t[i] = vload<W>(x + i * W);
  register_stages<W>(k, t);
  for (int i = 0; i < nv; ++i) vstore<W>(x + i * W, t[i]);
}

#if defined(__AVX512F__)
/// WHT(2^k) on the 2^k strided doubles x[0], x[stride], ..., 2^k >= 8 —
/// the gather/scatter twin of leaf_unit for the leaves the tree walk would
/// otherwise run scalar (a strided execute() call, or the small-stride
/// recursion below the lockstep threshold).  vgatherqpd pulls 8 strided
/// elements per register so the whole butterfly body runs in zmm exactly as
/// in leaf_unit; vscatterqpd writes them back.  Same adds in the same
/// order, so the result stays bit-identical to the scalar codelet (the
/// parity suites gate this like every other kernel).  AVX-512 only: AVX2
/// has gathers but no scatters, and a gathered load that must be stored
/// back element-by-element loses the exercise.
inline void leaf_strided_avx512(int k, double* x, std::ptrdiff_t stride) {
  const int nv = (1 << k) / 8;
  v8df t[(1 << core::kMaxUnrolled) / 8];
  const long long s = static_cast<long long>(stride);
  const __m512i first =
      _mm512_setr_epi64(0, s, 2 * s, 3 * s, 4 * s, 5 * s, 6 * s, 7 * s);
  const __m512i step = _mm512_set1_epi64(8 * s);
  __m512i index = first;
  for (int i = 0; i < nv; ++i) {
    t[i] = (v8df)_mm512_i64gather_pd(index, x, 8);
    index = _mm512_add_epi64(index, step);
  }
  register_stages<8>(k, t);
  index = first;
  for (int i = 0; i < nv; ++i) {
    _mm512_i64scatter_pd(x, index, (__m512d)t[i], 8);
    index = _mm512_add_epi64(index, step);
  }
}
#endif  // __AVX512F__

/// In-register W x W transpose: r[i][j] <-> r[j][i].  log2(W) levels of
/// pairwise two-vector shuffles (its own inverse, so one routine serves
/// both interleave directions).
template <int W>
inline void transpose_registers(vec_t<W>* r) {
  if constexpr (W == 4) {
    const v4df s0 = __builtin_shufflevector(r[0], r[2], 0, 1, 4, 5);
    const v4df s1 = __builtin_shufflevector(r[1], r[3], 0, 1, 4, 5);
    const v4df s2 = __builtin_shufflevector(r[0], r[2], 2, 3, 6, 7);
    const v4df s3 = __builtin_shufflevector(r[1], r[3], 2, 3, 6, 7);
    r[0] = __builtin_shufflevector(s0, s1, 0, 4, 2, 6);
    r[1] = __builtin_shufflevector(s0, s1, 1, 5, 3, 7);
    r[2] = __builtin_shufflevector(s2, s3, 0, 4, 2, 6);
    r[3] = __builtin_shufflevector(s2, s3, 1, 5, 3, 7);
  } else if constexpr (W == 8) {
    v8df s[8];
    for (int i = 0; i < 4; ++i) {
      s[i] = __builtin_shufflevector(r[i], r[i + 4], 0, 1, 2, 3, 8, 9, 10, 11);
      s[i + 4] =
          __builtin_shufflevector(r[i], r[i + 4], 4, 5, 6, 7, 12, 13, 14, 15);
    }
    for (int g = 0; g < 8; g += 4) {
      const v8df t0 =
          __builtin_shufflevector(s[g], s[g + 2], 0, 1, 8, 9, 4, 5, 12, 13);
      const v8df t1 =
          __builtin_shufflevector(s[g + 1], s[g + 3], 0, 1, 8, 9, 4, 5, 12, 13);
      const v8df t2 =
          __builtin_shufflevector(s[g], s[g + 2], 2, 3, 10, 11, 6, 7, 14, 15);
      const v8df t3 = __builtin_shufflevector(s[g + 1], s[g + 3], 2, 3, 10, 11,
                                              6, 7, 14, 15);
      r[g] = __builtin_shufflevector(t0, t1, 0, 8, 2, 10, 4, 12, 6, 14);
      r[g + 1] = __builtin_shufflevector(t0, t1, 1, 9, 3, 11, 5, 13, 7, 15);
      r[g + 2] = __builtin_shufflevector(t2, t3, 0, 8, 2, 10, 4, 12, 6, 14);
      r[g + 3] = __builtin_shufflevector(t2, t3, 1, 9, 3, 11, 5, 13, 7, 15);
    }
  } else {
    static_assert(W != W, "transpose_registers: unsupported width");
  }
}

/// Gathers W batch vectors (lane l at base + l*dist) into the interleaved
/// scratch layout (element j of lane l at scratch[j*W + l]) one W x W
/// register block at a time.  n < W (tiny transforms) falls back to scalar
/// copies.
template <int W>
void interleave_in(double* scratch, const double* base, std::ptrdiff_t dist,
                   std::uint64_t n) {
  if (n < W) {
    for (std::uint64_t j = 0; j < n; ++j) {
      for (int l = 0; l < W; ++l) {
        scratch[j * W + static_cast<std::uint64_t>(l)] =
            base[static_cast<std::ptrdiff_t>(l) * dist +
                 static_cast<std::ptrdiff_t>(j)];
      }
    }
    return;
  }
  vec_t<W> r[W];
  for (std::uint64_t j = 0; j < n; j += W) {
    for (int l = 0; l < W; ++l) {
      r[l] = vload<W>(base + static_cast<std::ptrdiff_t>(l) * dist +
                      static_cast<std::ptrdiff_t>(j));
    }
    transpose_registers<W>(r);
    for (int c = 0; c < W; ++c) {
      vstore<W>(scratch + (j + static_cast<std::uint64_t>(c)) * W, r[c]);
    }
  }
}

/// Scatters the interleaved scratch back into the W batch vectors — the
/// exact inverse of interleave_in.
template <int W>
void interleave_out(double* base, const double* scratch, std::ptrdiff_t dist,
                    std::uint64_t n) {
  if (n < W) {
    for (std::uint64_t j = 0; j < n; ++j) {
      for (int l = 0; l < W; ++l) {
        base[static_cast<std::ptrdiff_t>(l) * dist +
             static_cast<std::ptrdiff_t>(j)] =
            scratch[j * W + static_cast<std::uint64_t>(l)];
      }
    }
    return;
  }
  vec_t<W> r[W];
  for (std::uint64_t j = 0; j < n; j += W) {
    for (int c = 0; c < W; ++c) {
      r[c] = vload<W>(scratch + (j + static_cast<std::uint64_t>(c)) * W);
    }
    transpose_registers<W>(r);
    for (int l = 0; l < W; ++l) {
      vstore<W>(base + static_cast<std::ptrdiff_t>(l) * dist +
                    static_cast<std::ptrdiff_t>(j),
                r[l]);
    }
  }
}

/// W transforms in lockstep: lane l's element j at x[l + j*stride],
/// stride >= W.  Structurally template_codelet with every scalar widened to
/// a vector — no shuffles anywhere.
template <int W>
void leaf_lockstep(int k, double* x, std::ptrdiff_t stride) {
  using vec = vec_t<W>;
  const int m = 1 << k;
  vec t[1 << core::kMaxUnrolled];
  for (int j = 0; j < m; ++j) t[j] = vload<W>(x + j * stride);
  for (int stage = 0; stage < k; ++stage) {
    const int half = 1 << stage;
    for (int base = 0; base < m; base += 2 * half) {
      for (int off = 0; off < half; ++off) {
        const vec a = t[base + off];
        const vec b = t[base + off + half];
        t[base + off] = a + b;
        t[base + off + half] = a - b;
      }
    }
  }
  for (int j = 0; j < m; ++j) vstore<W>(x + j * stride, t[j]);
}

// --- fused-schedule pass kernels (core/schedule.hpp lowering) --------------

/// Unit pass of a fused schedule: WHT(2^u) on each of `runs` contiguous
/// 2^u-double runs — the in-register codelet, flat-looped inside the TU so
/// one call covers a whole cache block.
template <int W>
void fused_unit_pass(int u, double* x, std::uint64_t runs) {
  const std::uint64_t m = std::uint64_t{1} << u;
  for (std::uint64_t r = 0; r < runs; ++r) {
    leaf_unit<W>(u, x + r * m);
  }
}

/// Radix-M fused tile on W adjacent columns: element i of column c at
/// x[c + i*s], log2(M) butterfly stages carried entirely in registers
/// (M vectors live — 16 zmm at the radix-8 / width-8 peak).  Constant trip
/// counts: fully unrolled, plain W-wide add/sub, no shuffles.
template <int W, int M>
inline void radix_cols(double* x, std::ptrdiff_t s) {
  using vec = vec_t<W>;
  vec t[M];
  for (int i = 0; i < M; ++i) t[i] = vload<W>(x + i * s);
  for (int half = 1; half < M; half *= 2) {
    for (int base = 0; base < M; base += 2 * half) {
      for (int off = 0; off < half; ++off) {
        const vec a = t[base + off];
        const vec b = t[base + off + half];
        t[base + off] = a + b;
        t[base + off + half] = a - b;
      }
    }
  }
  for (int i = 0; i < M; ++i) vstore<W>(x + i * s, t[i]);
}

template <int W, int M>
void lockstep_pass_radix(double* x, std::uint64_t s, std::uint64_t block) {
  // Prefetch distance in doubles (8 cache lines ahead on each of the M row
  // streams).  A radix-16/32 pass walks more concurrent strided streams
  // than the hardware prefetchers track, so the kernel asks for its own
  // read-ahead; the hint is ISA-neutral and harmless where HW prefetch
  // already covers the streams.
  constexpr std::uint64_t kPrefetchAhead = 64;
  const std::uint64_t span = s * M;
  for (std::uint64_t j = 0; j < block; j += span) {
    double* base = x + j;
    for (std::uint64_t t = 0; t < s; t += W) {
      if (t + kPrefetchAhead < s) {
        for (int i = 0; i < M; ++i) {
          __builtin_prefetch(base + t + kPrefetchAhead + i * s, 1);
        }
      }
      radix_cols<W, M>(base + t, static_cast<std::ptrdiff_t>(s));
    }
  }
}

/// Strided pass of a fused schedule over one contiguous block of `block`
/// doubles: stages [stage, stage+k) as radix-2^k tiles at stride 2^stage,
/// W columns per kernel call (requires 2^stage >= W; the column loop walks
/// contiguous addresses, so a pass is one streaming sweep of the block).
/// Radix-16/32 are the streaming shapes: 16/32 vectors live per tile (the
/// whole register file at radix-32 / width-8; narrower ISAs spill to
/// L1-resident stack, which is still far cheaper than the memory sweep the
/// wider radix saves).
template <int W>
void fused_lockstep_pass(int k, int stage, double* x, std::uint64_t block) {
  const std::uint64_t s = std::uint64_t{1} << stage;
  switch (k) {
    case 1:
      lockstep_pass_radix<W, 2>(x, s, block);
      return;
    case 2:
      lockstep_pass_radix<W, 4>(x, s, block);
      return;
    case 3:
      lockstep_pass_radix<W, 8>(x, s, block);
      return;
    case 4:
      lockstep_pass_radix<W, 16>(x, s, block);
      return;
    case 5:
      lockstep_pass_radix<W, 32>(x, s, block);
      return;
    default:
      // Beyond the widest unrolled tile: route through the generic
      // lockstep leaf (runtime trip counts, stack-array temporaries).
      for (std::uint64_t j = 0; j < block; j += s << k) {
        for (std::uint64_t t = 0; t < s; t += W) {
          leaf_lockstep<W>(k, x + j + t, static_cast<std::ptrdiff_t>(s));
        }
      }
      return;
  }
}

}  // namespace whtlab::simd::detail
