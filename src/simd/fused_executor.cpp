#include "simd/fused_executor.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>

#include "core/codelet.hpp"
#include "simd/kernels.hpp"
#include "util/env.hpp"
#include "util/parallel_chunks.hpp"

namespace whtlab::simd {

namespace {

int floor_log2(std::uint64_t v) {
  return static_cast<int>(std::bit_width(v)) - 1;
}

/// True when every pass of every round can run on the W-wide kernels: unit
/// passes need a full vector per run, strided passes a full vector per
/// column group, and radixes must not exceed the kernels' widest unrolled
/// tile.  The blocker's schedules satisfy this for any n >= log2(W) at the
/// default unit size; hand-built configs may not, and then the whole
/// schedule takes the scalar interpreter (per-pass mixing is not worth the
/// complexity — these are degenerate geometries, and the scalar path
/// validates them).
bool vectorizable(const core::ScheduleRound& round, std::uint64_t width) {
  for (const core::ScheduleRound& inner : round.inner) {
    if (inner.block_log2 > round.block_log2) return false;
    if (!vectorizable(inner, width)) return false;
  }
  for (const core::SchedulePass& pass : round.passes) {
    if (pass.stage < 0 || pass.radix_log2 < 1 ||
        pass.radix_log2 > core::kMaxUnrolled ||
        pass.stage + pass.radix_log2 > round.block_log2) {
      return false;  // malformed; the scalar interpreter throws on it
    }
    const std::uint64_t vector_span =
        pass.stage == 0 ? std::uint64_t{1} << pass.radix_log2
                        : std::uint64_t{1} << pass.stage;
    if (vector_span < width) return false;
  }
  return true;
}

bool vectorizable(const core::Schedule& schedule, std::uint64_t width) {
  for (const core::ScheduleRound& round : schedule.rounds) {
    if (!vectorizable(round, width)) return false;
  }
  return true;
}

void run_block(const core::ScheduleRound& round, double* x,
               const KernelSet& kernels) {
  for (const core::ScheduleRound& inner : round.inner) {
    const std::uint64_t sub = std::uint64_t{1} << inner.block_log2;
    const std::uint64_t count =
        (std::uint64_t{1} << round.block_log2) >> inner.block_log2;
    for (std::uint64_t b = 0; b < count; ++b) {
      run_block(inner, x + b * sub, kernels);
    }
  }
  const std::uint64_t block = std::uint64_t{1} << round.block_log2;
  for (const core::SchedulePass& pass : round.passes) {
    if (pass.stage == 0) {
      kernels.fused_unit_pass(pass.radix_log2, x, block >> pass.radix_log2);
    } else {
      kernels.fused_lockstep_pass(pass.radix_log2, pass.stage, x, block);
    }
  }
}

}  // namespace

core::BlockingConfig detect_blocking() {
  core::BlockingConfig config;
  const CacheSizes& caches = cache_sizes();
  // Blocks target half of each cache level: the other half absorbs the
  // strided pass tiles above the block and whatever else the process keeps
  // warm.  Unknown levels keep the generic defaults.
  if (caches.l1d_bytes > 0) {
    config.l1_block_log2 = floor_log2(caches.l1d_bytes / (2 * sizeof(double)));
  }
  if (caches.l2_bytes > 0) {
    config.l2_block_log2 = floor_log2(caches.l2_bytes / (2 * sizeof(double)));
  }
  config.l1_block_log2 = static_cast<int>(
      util::env_int("WHTLAB_FUSED_L1_LOG2", config.l1_block_log2));
  config.l2_block_log2 = static_cast<int>(
      util::env_int("WHTLAB_FUSED_L2_LOG2", config.l2_block_log2));
  config.stream_radix_log2 = static_cast<int>(
      util::env_int("WHTLAB_FUSED_STREAM_RADIX", config.stream_radix_log2));
  config.l1_block_log2 = std::max(config.l1_block_log2, config.unit_log2);
  config.l2_block_log2 = std::max(config.l2_block_log2, config.l1_block_log2);
  return config;
}

void execute_fused(const core::Schedule& schedule, double* x,
                   std::ptrdiff_t stride, SimdLevel level) {
  const auto& table = core::codelet_table(core::CodeletBackend::kGenerated);
  const KernelSet* kernels = kernels_for(level);
  if (kernels == nullptr || stride != 1 ||
      !vectorizable(schedule, static_cast<std::uint64_t>(kernels->width))) {
    core::execute_schedule(schedule, x, stride, table);
    return;
  }
  const std::uint64_t n = std::uint64_t{1} << schedule.log2_size;
  for (const core::ScheduleRound& round : schedule.rounds) {
    const std::uint64_t block = std::uint64_t{1} << round.block_log2;
    for (std::uint64_t b = 0; b < n >> round.block_log2; ++b) {
      run_block(round, x + b * block, *kernels);
    }
  }
}

void execute_fused(const core::Schedule& schedule, double* x,
                   std::ptrdiff_t stride) {
  execute_fused(schedule, x, stride, active_level());
}

void execute_fused_many(const core::Schedule& schedule, double* x,
                        std::size_t count, std::ptrdiff_t dist, int threads) {
  const SimdLevel level = active_level();
  util::parallel_chunks(
      count, threads, [&](std::uint64_t begin, std::uint64_t end) {
        for (std::uint64_t v = begin; v < end; ++v) {
          execute_fused(schedule, x + static_cast<std::ptrdiff_t>(v) * dist, 1,
                        level);
        }
      });
}

}  // namespace whtlab::simd
