#include "simd/cpu_features.hpp"

#include <atomic>
#include <cstdint>
#include <fstream>
#include <stdexcept>
#include <string>

#include "util/env.hpp"

namespace whtlab::simd {

namespace {

/// Sentinel for "no force_level() cap in effect".
constexpr int kNoForce = -1;

std::atomic<int> g_forced{kNoForce};

SimdLevel env_cap() {
  static const SimdLevel cap = [] {
    const auto value = util::env_string("WHTLAB_SIMD");
    if (!value) return SimdLevel::kAvx512;  // no cap
    return parse_level(*value);
  }();
  return cap;
}

}  // namespace

const char* to_string(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kAvx512:
      return "avx512";
  }
  return "unknown";
}

int vector_width(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return 1;
    case SimdLevel::kAvx2:
      return 4;
    case SimdLevel::kAvx512:
      return 8;
  }
  return 1;
}

SimdLevel parse_level(const std::string& name) {
  if (name == "scalar") return SimdLevel::kScalar;
  if (name == "avx2") return SimdLevel::kAvx2;
  if (name == "avx512") return SimdLevel::kAvx512;
  if (name == "auto") return detected_level();
  throw std::invalid_argument(
      "WHTLAB_SIMD: expected scalar|avx2|avx512|auto, got '" + name + "'");
}

SimdLevel detected_level() {
  static const SimdLevel level = [] {
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
#if defined(WHTLAB_HAVE_AVX512)
    if (__builtin_cpu_supports("avx512f")) return SimdLevel::kAvx512;
#endif
#if defined(WHTLAB_HAVE_AVX2)
    if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
#endif
#endif
    return SimdLevel::kScalar;
  }();
  return level;
}

SimdLevel active_level() {
  SimdLevel level = detected_level();
  if (env_cap() < level) level = env_cap();
  const int forced = g_forced.load(std::memory_order_relaxed);
  if (forced != kNoForce && static_cast<SimdLevel>(forced) < level) {
    level = static_cast<SimdLevel>(forced);
  }
  return level;
}

void force_level(SimdLevel level) {
  g_forced.store(static_cast<int>(level), std::memory_order_relaxed);
}

void reset_forced_level() { g_forced.store(kNoForce, std::memory_order_relaxed); }

namespace {

std::string read_sysfs_line(const std::string& path) {
  std::ifstream in(path);
  std::string line;
  if (in && std::getline(in, line)) return line;
  return {};
}

/// Parses sysfs cache sizes: "48K", "2048K", "8M" (decimal bytes otherwise).
std::size_t parse_cache_size(const std::string& text) {
  if (text.empty()) return 0;
  std::size_t value = 0;
  std::size_t i = 0;
  while (i < text.size() && text[i] >= '0' && text[i] <= '9') {
    value = value * 10 + static_cast<std::size_t>(text[i] - '0');
    ++i;
  }
  if (i < text.size()) {
    if (text[i] == 'K' || text[i] == 'k') value <<= 10;
    if (text[i] == 'M' || text[i] == 'm') value <<= 20;
    if (text[i] == 'G' || text[i] == 'g') value <<= 30;
  }
  return value;
}

CacheSizes probe_cache_sizes() {
  CacheSizes sizes;
  // cpu0's view is what a single-threaded transform sees; shared levels
  // report their full capacity, which is the right block-sizing bound.
  const std::string base = "/sys/devices/system/cpu/cpu0/cache/index";
  for (int index = 0; index < 8; ++index) {
    const std::string dir = base + std::to_string(index) + "/";
    const std::string level = read_sysfs_line(dir + "level");
    if (level.empty()) break;
    const std::string type = read_sysfs_line(dir + "type");
    const std::size_t bytes = parse_cache_size(read_sysfs_line(dir + "size"));
    if (bytes == 0 || type == "Instruction") continue;
    if (level == "1") sizes.l1d_bytes = bytes;
    if (level == "2") sizes.l2_bytes = bytes;
    if (level == "3") sizes.l3_bytes = bytes;
  }
  const std::int64_t l1 = util::env_int("WHTLAB_L1_BYTES", 0);
  const std::int64_t l2 = util::env_int("WHTLAB_L2_BYTES", 0);
  if (l1 > 0) sizes.l1d_bytes = static_cast<std::size_t>(l1);
  if (l2 > 0) sizes.l2_bytes = static_cast<std::size_t>(l2);
  return sizes;
}

}  // namespace

const CacheSizes& cache_sizes() {
  static const CacheSizes sizes = probe_cache_sizes();
  return sizes;
}

}  // namespace whtlab::simd
