#include "simd/cpu_features.hpp"

#include <atomic>
#include <stdexcept>

#include "util/env.hpp"

namespace whtlab::simd {

namespace {

/// Sentinel for "no force_level() cap in effect".
constexpr int kNoForce = -1;

std::atomic<int> g_forced{kNoForce};

SimdLevel env_cap() {
  static const SimdLevel cap = [] {
    const auto value = util::env_string("WHTLAB_SIMD");
    if (!value) return SimdLevel::kAvx512;  // no cap
    return parse_level(*value);
  }();
  return cap;
}

}  // namespace

const char* to_string(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kAvx512:
      return "avx512";
  }
  return "unknown";
}

int vector_width(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return 1;
    case SimdLevel::kAvx2:
      return 4;
    case SimdLevel::kAvx512:
      return 8;
  }
  return 1;
}

SimdLevel parse_level(const std::string& name) {
  if (name == "scalar") return SimdLevel::kScalar;
  if (name == "avx2") return SimdLevel::kAvx2;
  if (name == "avx512") return SimdLevel::kAvx512;
  if (name == "auto") return detected_level();
  throw std::invalid_argument(
      "WHTLAB_SIMD: expected scalar|avx2|avx512|auto, got '" + name + "'");
}

SimdLevel detected_level() {
  static const SimdLevel level = [] {
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
#if defined(WHTLAB_HAVE_AVX512)
    if (__builtin_cpu_supports("avx512f")) return SimdLevel::kAvx512;
#endif
#if defined(WHTLAB_HAVE_AVX2)
    if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
#endif
#endif
    return SimdLevel::kScalar;
  }();
  return level;
}

SimdLevel active_level() {
  SimdLevel level = detected_level();
  if (env_cap() < level) level = env_cap();
  const int forced = g_forced.load(std::memory_order_relaxed);
  if (forced != kNoForce && static_cast<SimdLevel>(forced) < level) {
    level = static_cast<SimdLevel>(forced);
  }
  return level;
}

void force_level(SimdLevel level) {
  g_forced.store(static_cast<int>(level), std::memory_order_relaxed);
}

void reset_forced_level() { g_forced.store(kNoForce, std::memory_order_relaxed); }

}  // namespace whtlab::simd
