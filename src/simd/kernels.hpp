// Vectorized leaf codelets behind a per-ISA kernel table.
//
// The SIMD tree walk (simd_executor.cpp) is ISA-agnostic: split nodes are
// pure index arithmetic, so only the two places data is touched need
// vector code, and those are packaged per instruction set as a KernelSet:
//
//   * leaf_unit — WHT(2^k) on 2^k contiguous doubles.  The first log2(W)
//     butterfly stages act within a vector register (lane shuffles + a
//     sign flip); the remaining stages are full-width add/sub between
//     registers.
//   * leaf_lockstep — WHT(2^k) on W interleaved transforms: element j of
//     lane l lives at x[l + j*stride].  Every butterfly is a plain W-wide
//     add/sub; no shuffles at all.  This is the shape the batched
//     execute_many and the strided inner loop of Equation 1 both reduce to.
//
// Kernel tables live in translation units compiled with the matching
// -m flags (kernels_avx2.cpp, kernels_avx512.cpp); whether each exists is a
// build-time fact (WHTLAB_HAVE_AVX2 / WHTLAB_HAVE_AVX512) and whether it is
// used is a runtime fact (simd/cpu_features.hpp).
#pragma once

#include <cstddef>
#include <cstdint>

namespace whtlab::simd {

struct KernelSet {
  int width = 1;  ///< doubles per vector register

  /// In-place WHT(2^k) on the contiguous x[0 .. 2^k).  Only called with
  /// 2^k >= width (smaller leaves stay scalar — nothing to vectorize).
  void (*leaf_unit)(int k, double* x) = nullptr;

  /// `width` transforms in lockstep: lane l's element j at x[l + j*stride].
  /// Requires stride >= width (lanes must not overlap the next element).
  void (*leaf_lockstep)(int k, double* x, std::ptrdiff_t stride) = nullptr;

  /// Batch transposes for execute_many: gather `width` vectors (lane l at
  /// base + l*dist, n doubles each) into / out of the interleaved scratch
  /// layout (element j of lane l at scratch[j*width + l]) via in-register
  /// W x W transposes.
  void (*interleave_in)(double* scratch, const double* base,
                        std::ptrdiff_t dist, std::uint64_t n) = nullptr;
  void (*interleave_out)(double* base, const double* scratch,
                         std::ptrdiff_t dist, std::uint64_t n) = nullptr;

  /// Fused-schedule passes (core/schedule.hpp; driven by
  /// simd/fused_executor.hpp).  fused_unit_pass runs WHT(2^u) on each of
  /// `runs` contiguous 2^u-double runs (requires 2^u >= width);
  /// fused_lockstep_pass retires stages [stage, stage+k) over one
  /// contiguous block as radix-2^k register tiles at stride 2^stage,
  /// `width` columns per step (requires 2^stage >= width).
  void (*fused_unit_pass)(int u, double* x, std::uint64_t runs) = nullptr;
  void (*fused_lockstep_pass)(int k, int stage, double* x,
                              std::uint64_t block) = nullptr;

  /// Gather/scatter strided leaf: WHT(2^k) on x[0], x[stride], ...,
  /// 2^k >= width, any stride > 1.  nullptr where the ISA cannot express it
  /// (AVX2 gathers but cannot scatter) — callers then keep the scalar
  /// fallback.  Gated at runtime by WHTLAB_SIMD_GATHER (see
  /// simd_executor.cpp).
  void (*leaf_strided)(int k, double* x, std::ptrdiff_t stride) = nullptr;
};

/// Kernel tables for the ISA-specific translation units.  Only declared
/// here; calling one on a host without the ISA is undefined (dispatch in
/// cpu_features.hpp exists to prevent exactly that).
#if defined(WHTLAB_HAVE_AVX2)
const KernelSet& avx2_kernels();
#endif
#if defined(WHTLAB_HAVE_AVX512)
const KernelSet& avx512_kernels();
#endif

enum class SimdLevel;

/// The kernel table for `level`, or nullptr when the level is scalar or was
/// not compiled into this binary (callers then take their scalar path).
/// Shared by the tree-walk (simd_executor.cpp) and fused-schedule
/// (fused_executor.cpp) executors.
const KernelSet* kernels_for(SimdLevel level);

}  // namespace whtlab::simd
