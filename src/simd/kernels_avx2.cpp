// AVX2 kernel table (4 doubles per register).  This TU is compiled with
// -mavx2 (see the WHTLAB_SIMD_AVX2_FLAGS logic in CMakeLists.txt) and is
// only entered after cpu_features.hpp has confirmed the host supports it.
#include "simd/kernels.hpp"
#include "simd/kernels_impl.hpp"

namespace whtlab::simd {

const KernelSet& avx2_kernels() {
  static constexpr KernelSet kernels = {
      /*width=*/4,
      /*leaf_unit=*/&detail::leaf_unit<4>,
      /*leaf_lockstep=*/&detail::leaf_lockstep<4>,
      /*interleave_in=*/&detail::interleave_in<4>,
      /*interleave_out=*/&detail::interleave_out<4>,
      /*fused_unit_pass=*/&detail::fused_unit_pass<4>,
      /*fused_lockstep_pass=*/&detail::fused_lockstep_pass<4>,
  };
  return kernels;
}

}  // namespace whtlab::simd
