#include "core/plan_io.hpp"

#include <cctype>
#include <stdexcept>

namespace whtlab::core {

namespace {

void format_node(const PlanNode& node, std::string& out) {
  if (node.kind == NodeKind::kSmall) {
    out += "small[";
    out += std::to_string(node.log2_size);
    out += ']';
    return;
  }
  out += "split[";
  for (std::size_t i = 0; i < node.children.size(); ++i) {
    if (i != 0) out += ',';
    format_node(*node.children[i], out);
  }
  out += ']';
}

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Plan parse() {
    auto root = parse_node();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return Plan::adopt(std::move(root));
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument("plan parse error at position " +
                                std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  void expect(char c) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_keyword(const std::string& word) {
    skip_ws();
    if (text_.compare(pos_, word.size(), word) == 0) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  int parse_int() {
    skip_ws();
    if (pos_ >= text_.size() ||
        !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      fail("expected integer");
    }
    int value = 0;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      value = value * 10 + (text_[pos_] - '0');
      if (value > 1'000'000) fail("integer too large");
      ++pos_;
    }
    return value;
  }

  std::unique_ptr<PlanNode> parse_node() {
    if (consume_keyword("small")) {
      expect('[');
      const int k = parse_int();
      expect(']');
      auto node = std::make_unique<PlanNode>();
      node->kind = NodeKind::kSmall;
      node->log2_size = k;
      return node;
    }
    if (consume_keyword("split")) {
      expect('[');
      auto node = std::make_unique<PlanNode>();
      node->kind = NodeKind::kSplit;
      node->log2_size = 0;
      for (;;) {
        auto child = parse_node();
        node->log2_size += child->log2_size;
        node->children.push_back(std::move(child));
        skip_ws();
        if (pos_ < text_.size() && text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        break;
      }
      expect(']');
      return node;
    }
    fail("expected 'small' or 'split'");
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string format_plan(const Plan& plan) {
  if (!plan.valid()) return "<invalid>";
  std::string out;
  format_node(plan.root(), out);
  return out;
}

Plan parse_plan(const std::string& text) { return Parser(text).parse(); }

}  // namespace whtlab::core
