// Unrolled base-case codelets: WHT(2^k) on a strided vector, in place.
//
// The WHT package computes small transforms with generated straight-line
// code ("codelets") to avoid loop and recursion overhead.  whtlab ships two
// interchangeable backends:
//
//   * kTemplate  — the generic implementation below with a compile-time size;
//     at -O2 the compiler fully unrolls the fixed-trip-count loops, which is
//     the moral equivalent of generated code and lives in-repo.
//   * kGenerated — straight-line single-assignment code emitted by
//     tools/codelet_gen at build time, mirroring exactly how the original
//     package produced its codelets (one load per element, k*2^(k-1)
//     butterflies on named temporaries, one store per element).
//
// Both backends perform, per call on WHT(2^k): 2^k loads, 2^k stores and
// k*2^k additions/subtractions — the counts assumed by the instruction-count
// model (model/instruction_model.hpp).  An ablation bench compares their
// runtime (bench/micro_codelets.cc).
#pragma once

#include <array>
#include <cstddef>

#include "core/plan.hpp"

namespace whtlab::core {

/// Signature shared by all codelets: x points at the first element, elements
/// are `stride` apart; the transform is in place.
using CodeletFn = void (*)(double* x, std::ptrdiff_t stride);

enum class CodeletBackend {
  kTemplate,   ///< generic compile-time-unrolled implementation
  kGenerated,  ///< build-time generated straight-line code
};

/// Generic codelet with compile-time size 2^K.  The temporaries array fits in
/// registers for small K; all loops have constant trip counts.
template <int K>
inline void template_codelet(double* x, std::ptrdiff_t stride) {
  static_assert(K >= 1 && K <= kMaxUnrolled);
  constexpr int m = 1 << K;
  double t[m];
  for (int j = 0; j < m; ++j) t[j] = x[j * stride];
  for (int stage = 0; stage < K; ++stage) {
    const int half = 1 << stage;
    for (int base = 0; base < m; base += 2 * half) {
      for (int off = 0; off < half; ++off) {
        const double a = t[base + off];
        const double b = t[base + off + half];
        t[base + off] = a + b;
        t[base + off + half] = a - b;
      }
    }
  }
  for (int j = 0; j < m; ++j) x[j * stride] = t[j];
}

/// Dispatch table indexed by k (entry 0 unused).  Throws std::out_of_range
/// for k outside [1, kMaxUnrolled].
const std::array<CodeletFn, kMaxUnrolled + 1>& codelet_table(CodeletBackend backend);

/// Single codelet lookup.
CodeletFn codelet(int k, CodeletBackend backend);

}  // namespace whtlab::core
