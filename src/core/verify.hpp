// Reference transforms and plan verification.
//
// Two independent references back every executor and codelet:
//   * dense_wht_apply    — literal O(N^2) matrix-vector product with the
//                          (+1/-1) Hadamard matrix, feasible for n <= ~13;
//   * fast_wht_reference — textbook in-place radix-2 butterfly, O(N log N),
//                          structurally unrelated to the plan interpreter.
//
// `verify_plan` runs a plan against the fast reference on random input and
// reports the max absolute error (exact arithmetic on small integers would
// be error-free; doubles accumulate rounding, so a tolerance scaled by N is
// used by callers).
#pragma once

#include <cstdint>

#include "core/codelet.hpp"
#include "core/plan.hpp"

namespace whtlab::core {

/// y = WHT(2^n) * x by direct summation: y[i] = sum_j (-1)^{popcount(i&j)} x[j].
/// O(N^2); intended for n <= 13.
void dense_wht_apply(int n, const double* x, double* y);

/// Textbook in-place fast WHT (natural/Hadamard order).
void fast_wht_reference(int n, double* x);

/// Max |a[i] - b[i]| over the first count elements.
double max_abs_diff(const double* a, const double* b, std::uint64_t count);

/// Executes `plan` and the fast reference on identical pseudo-random input
/// (seeded deterministically) and returns the max absolute error.
double verify_plan(const Plan& plan,
                   CodeletBackend backend = CodeletBackend::kGenerated,
                   std::uint64_t seed = 12345);

}  // namespace whtlab::core
