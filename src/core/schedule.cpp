#include "core/schedule.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace whtlab::core {

namespace {

void flatten_node(const PlanNode& node, int stage_base,
                  std::vector<SchedulePass>& out) {
  if (node.kind == NodeKind::kSmall) {
    out.push_back({stage_base, node.log2_size});
    return;
  }
  // Rightmost child first (Equation 1 applies the rightmost factor first),
  // so the last child covers the lowest stages — the same orientation as
  // the executors' accumulated stride.
  int stage = stage_base;
  for (std::size_t i = node.children.size(); i-- > 0;) {
    flatten_node(*node.children[i], stage, out);
    stage += node.children[i]->log2_size;
  }
}

/// Splits the stages [lo, hi) into ceil(r / max_radix) near-equal fused
/// passes (never a radix-1 tail when it can be avoided: 7 stages at radix 8
/// become 3+2+2, not 3+3+1).
std::vector<SchedulePass> radix_passes(int lo, int hi, int max_radix) {
  std::vector<SchedulePass> passes;
  const int r = hi - lo;
  if (r <= 0) return passes;
  const int count = (r + max_radix - 1) / max_radix;
  const int base = r / count;
  int extra = r % count;
  int stage = lo;
  for (int i = 0; i < count; ++i) {
    const int radix = base + (extra > 0 ? 1 : 0);
    if (extra > 0) --extra;
    passes.push_back({stage, radix});
    stage += radix;
  }
  return passes;
}

void validate_config(const BlockingConfig& config) {
  if (config.unit_log2 < 1 || config.unit_log2 > kMaxUnrolled) {
    throw std::invalid_argument("BlockingConfig: unit_log2 out of [1, " +
                                std::to_string(kMaxUnrolled) + "]");
  }
  // Radixes are capped by what the executors can actually run: the scalar
  // fallback indexes the codelet table (<= kMaxUnrolled) and the generic
  // lockstep leaf sizes its register array the same way.
  if (config.max_radix_log2 < 1 || config.max_radix_log2 > kMaxUnrolled) {
    throw std::invalid_argument("BlockingConfig: max_radix_log2 out of [1, " +
                                std::to_string(kMaxUnrolled) + "]");
  }
  if (config.stream_radix_log2 < 1 ||
      config.stream_radix_log2 > kMaxUnrolled) {
    throw std::invalid_argument("BlockingConfig: stream_radix_log2 out of [1, " +
                                std::to_string(kMaxUnrolled) + "]");
  }
}

}  // namespace

std::vector<SchedulePass> flatten_plan(const Plan& plan) {
  std::vector<SchedulePass> out;
  out.reserve(static_cast<std::size_t>(plan.leaf_count()));
  flatten_node(plan.root(), 0, out);
  return out;
}

Schedule lower_size(int n, const BlockingConfig& config) {
  if (n < 1) throw std::invalid_argument("lower_size: n must be >= 1");
  validate_config(config);

  const int unit = std::min(n, config.unit_log2);
  const int c0 = std::clamp(config.l1_block_log2, unit, n);
  const int c1 = std::clamp(config.l2_block_log2, c0, n);

  // L1 round: a 2^c0 block is carried from the contiguous unit pass through
  // every strided pass below c0 while L1-resident.
  ScheduleRound l1;
  l1.block_log2 = c0;
  l1.passes.push_back({0, unit});
  for (const SchedulePass& p : radix_passes(unit, c0, config.max_radix_log2)) {
    l1.passes.push_back(p);
  }

  Schedule schedule;
  schedule.log2_size = n;
  if (c1 > c0) {
    // L2 round: sweep L1 sub-blocks first, then the stages [c0, c1) while
    // the 2^c1 block is still L2-resident — one DRAM pass covers all of
    // [0, c1).
    ScheduleRound l2;
    l2.block_log2 = c1;
    l2.inner.push_back(std::move(l1));
    l2.passes = radix_passes(c0, c1, config.max_radix_log2);
    schedule.rounds.push_back(std::move(l2));
  } else {
    schedule.rounds.push_back(std::move(l1));
  }

  // Stages above the largest cache block: no reuse to exploit, so each
  // fused pass is its own full-array sweep (radix-2^k: one sweep retires k
  // stages — the memory-bound regime's only lever, hence the wider
  // streaming radix cap).
  for (const SchedulePass& p : radix_passes(c1, n, config.stream_radix_log2)) {
    schedule.rounds.push_back({p.stage + p.radix_log2, {}, {p}});
  }
  return schedule;
}

Schedule lower_plan(const Plan& plan, const BlockingConfig& config) {
  // The flattened partition validates the tree and pins down the semantics
  // (the stage set), but the blocker regroups it freely: every partition of
  // [0, n) executes the same butterflies, so the schedule depends only on
  // the size and the cache geometry.
  const std::vector<SchedulePass> flat = flatten_plan(plan);
  int covered = 0;
  for (const SchedulePass& p : flat) covered += p.radix_log2;
  if (covered != plan.log2_size()) {
    throw std::logic_error("lower_plan: leaf stages do not cover the size");
  }
  return lower_size(plan.log2_size(), config);
}

int sweep_count(const Schedule& schedule) {
  return static_cast<int>(schedule.rounds.size());
}

namespace {

// Strided fused tile kernels: WHT(2^k) on 2^k elements at stride s, the same
// butterflies in the same stage order as template_codelet / the generated
// codelets, fully inlined so a pass is one flat loop.

inline void radix2_tile(double* x, std::ptrdiff_t s) {
  const double a = x[0];
  const double b = x[s];
  x[0] = a + b;
  x[s] = a - b;
}

inline void radix4_tile(double* x, std::ptrdiff_t s) {
  const double a0 = x[0], a1 = x[s], a2 = x[2 * s], a3 = x[3 * s];
  const double b0 = a0 + a1, b1 = a0 - a1, b2 = a2 + a3, b3 = a2 - a3;
  x[0] = b0 + b2;
  x[s] = b1 + b3;
  x[2 * s] = b0 - b2;
  x[3 * s] = b1 - b3;
}

inline void radix8_tile(double* x, std::ptrdiff_t s) {
  double t[8];
  for (int i = 0; i < 8; ++i) t[i] = x[i * s];
  for (int half = 1; half < 8; half *= 2) {
    for (int base = 0; base < 8; base += 2 * half) {
      for (int off = 0; off < half; ++off) {
        const double a = t[base + off];
        const double b = t[base + off + half];
        t[base + off] = a + b;
        t[base + off + half] = a - b;
      }
    }
  }
  for (int i = 0; i < 8; ++i) x[i * s] = t[i];
}

void run_pass(const SchedulePass& pass, double* x, std::ptrdiff_t stride,
              int block_log2,
              const std::array<CodeletFn, kMaxUnrolled + 1>& table) {
  // The blocker only emits passes satisfying these, but execute_schedule is
  // public and accepts hand-built schedules: reject geometry that would
  // index past the codelet table or read outside the block.
  if (pass.stage < 0 || pass.radix_log2 < 1 ||
      pass.radix_log2 > kMaxUnrolled ||
      pass.stage + pass.radix_log2 > block_log2) {
    throw std::invalid_argument(
        "execute_schedule: pass (stage " + std::to_string(pass.stage) +
        ", radix_log2 " + std::to_string(pass.radix_log2) +
        ") does not fit its 2^" + std::to_string(block_log2) +
        " block or exceeds radix-2^" + std::to_string(kMaxUnrolled));
  }
  const std::uint64_t block = std::uint64_t{1} << block_log2;
  if (pass.stage == 0) {
    // Unit pass: contiguous runs of 2^k, the unrolled codelet per run.
    const std::uint64_t m = std::uint64_t{1} << pass.radix_log2;
    const CodeletFn fn = table[static_cast<std::size_t>(pass.radix_log2)];
    for (std::uint64_t r = 0; r < block; r += m) {
      fn(x + static_cast<std::ptrdiff_t>(r) * stride, stride);
    }
    return;
  }
  const std::uint64_t s = std::uint64_t{1} << pass.stage;
  const std::uint64_t span = s << pass.radix_log2;
  const std::ptrdiff_t ts = static_cast<std::ptrdiff_t>(s) * stride;
  const auto sweep = [&](auto&& tile) {
    for (std::uint64_t j = 0; j < block; j += span) {
      double* base = x + static_cast<std::ptrdiff_t>(j) * stride;
      for (std::uint64_t t = 0; t < s; ++t) {
        tile(base + static_cast<std::ptrdiff_t>(t) * stride, ts);
      }
    }
  };
  switch (pass.radix_log2) {
    case 1:
      sweep(radix2_tile);
      break;
    case 2:
      sweep(radix4_tile);
      break;
    case 3:
      sweep(radix8_tile);
      break;
    default:
      // The blocker never emits these, but a hand-built schedule may.
      sweep(table[static_cast<std::size_t>(pass.radix_log2)]);
      break;
  }
}

void run_block(const ScheduleRound& round, double* x, std::ptrdiff_t stride,
               const std::array<CodeletFn, kMaxUnrolled + 1>& table) {
  for (const ScheduleRound& inner : round.inner) {
    const std::uint64_t sub = std::uint64_t{1} << inner.block_log2;
    const std::uint64_t count =
        (std::uint64_t{1} << round.block_log2) >> inner.block_log2;
    for (std::uint64_t b = 0; b < count; ++b) {
      run_block(inner, x + static_cast<std::ptrdiff_t>(b * sub) * stride,
                stride, table);
    }
  }
  for (const SchedulePass& pass : round.passes) {
    run_pass(pass, x, stride, round.block_log2, table);
  }
}

}  // namespace

void execute_schedule(const Schedule& schedule, double* x, std::ptrdiff_t stride,
                      const std::array<CodeletFn, kMaxUnrolled + 1>& table) {
  const std::uint64_t n = std::uint64_t{1} << schedule.log2_size;
  for (const ScheduleRound& round : schedule.rounds) {
    const std::uint64_t block = std::uint64_t{1} << round.block_log2;
    const std::uint64_t count = n >> round.block_log2;
    for (std::uint64_t b = 0; b < count; ++b) {
      run_block(round, x + static_cast<std::ptrdiff_t>(b * block) * stride,
                stride, table);
    }
  }
}

void execute_schedule(const Schedule& schedule, double* x) {
  execute_schedule(schedule, x, 1, codelet_table(CodeletBackend::kGenerated));
}

}  // namespace whtlab::core
