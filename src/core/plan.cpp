#include "core/plan.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/plan_io.hpp"

namespace whtlab::core {

Plan::Plan(const Plan& other)
    : root_(other.root_ ? clone_node(*other.root_) : nullptr) {}

Plan& Plan::operator=(const Plan& other) {
  if (this != &other) {
    root_ = other.root_ ? clone_node(*other.root_) : nullptr;
  }
  return *this;
}

std::unique_ptr<PlanNode> Plan::clone_node(const PlanNode& node) {
  auto out = std::make_unique<PlanNode>();
  out->kind = node.kind;
  out->log2_size = node.log2_size;
  out->children.reserve(node.children.size());
  for (const auto& child : node.children) {
    out->children.push_back(clone_node(*child));
  }
  return out;
}

void Plan::validate_node(const PlanNode& node) {
  switch (node.kind) {
    case NodeKind::kSmall:
      if (node.log2_size < 1 || node.log2_size > kMaxUnrolled) {
        throw std::invalid_argument("small[k] requires 1 <= k <= " +
                                    std::to_string(kMaxUnrolled) + ", got " +
                                    std::to_string(node.log2_size));
      }
      if (!node.children.empty()) {
        throw std::invalid_argument("small node must not have children");
      }
      return;
    case NodeKind::kSplit: {
      if (node.children.size() < 2) {
        throw std::invalid_argument("split requires at least 2 children");
      }
      int sum = 0;
      for (const auto& child : node.children) {
        validate_node(*child);
        sum += child->log2_size;
      }
      if (sum != node.log2_size) {
        throw std::invalid_argument("split children sizes sum to " +
                                    std::to_string(sum) + ", expected " +
                                    std::to_string(node.log2_size));
      }
      return;
    }
  }
  throw std::invalid_argument("unknown node kind");
}

Plan Plan::adopt(std::unique_ptr<PlanNode> root) {
  if (!root) throw std::invalid_argument("null plan");
  validate_node(*root);
  Plan plan;
  plan.root_ = std::move(root);
  return plan;
}

Plan Plan::small(int k) {
  auto node = std::make_unique<PlanNode>();
  node->kind = NodeKind::kSmall;
  node->log2_size = k;
  return adopt(std::move(node));
}

Plan Plan::split(std::vector<Plan> children) {
  auto node = std::make_unique<PlanNode>();
  node->kind = NodeKind::kSplit;
  node->log2_size = 0;
  for (auto& child : children) {
    if (!child.valid()) throw std::invalid_argument("invalid child plan");
    node->log2_size += child.root_->log2_size;
    node->children.push_back(std::move(child.root_));
  }
  return adopt(std::move(node));
}

Plan Plan::iterative(int n) {
  if (n < 1) throw std::invalid_argument("iterative: n must be >= 1");
  if (n == 1) return small(1);
  std::vector<Plan> parts;
  parts.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) parts.push_back(small(1));
  return split(std::move(parts));
}

Plan Plan::right_recursive(int n) {
  if (n < 1) throw std::invalid_argument("right_recursive: n must be >= 1");
  if (n == 1) return small(1);
  std::vector<Plan> parts;
  parts.push_back(small(1));
  parts.push_back(right_recursive(n - 1));
  return split(std::move(parts));
}

Plan Plan::left_recursive(int n) {
  if (n < 1) throw std::invalid_argument("left_recursive: n must be >= 1");
  if (n == 1) return small(1);
  std::vector<Plan> parts;
  parts.push_back(left_recursive(n - 1));
  parts.push_back(small(1));
  return split(std::move(parts));
}

Plan Plan::balanced_binary(int n, int max_leaf) {
  if (n < 1) throw std::invalid_argument("balanced_binary: n must be >= 1");
  if (max_leaf < 1 || max_leaf > kMaxUnrolled) {
    throw std::invalid_argument("balanced_binary: bad max_leaf");
  }
  if (n <= max_leaf) return small(n);
  std::vector<Plan> parts;
  parts.push_back(balanced_binary(n / 2, max_leaf));
  parts.push_back(balanced_binary(n - n / 2, max_leaf));
  return split(std::move(parts));
}

Plan Plan::iterative_radix(int n, int k) {
  if (n < 1) throw std::invalid_argument("iterative_radix: n must be >= 1");
  if (k < 1 || k > kMaxUnrolled) {
    throw std::invalid_argument("iterative_radix: bad radix");
  }
  if (n <= k) return small(n);
  std::vector<Plan> parts;
  int remaining = n;
  while (remaining > 0) {
    const int part = std::min(remaining, k);
    // Avoid a trailing small[part] that would leave a 1-element "remainder";
    // the final part absorbs whatever is left (always <= k by construction).
    parts.push_back(small(part));
    remaining -= part;
  }
  if (parts.size() == 1) return std::move(parts.front());
  return split(std::move(parts));
}

namespace {

int count_leaves(const PlanNode& node) {
  if (node.kind == NodeKind::kSmall) return 1;
  int total = 0;
  for (const auto& child : node.children) total += count_leaves(*child);
  return total;
}

int count_nodes(const PlanNode& node) {
  int total = 1;
  for (const auto& child : node.children) total += count_nodes(*child);
  return total;
}

int node_depth(const PlanNode& node) {
  if (node.kind == NodeKind::kSmall) return 1;
  int deepest = 0;
  for (const auto& child : node.children) {
    deepest = std::max(deepest, node_depth(*child));
  }
  return deepest + 1;
}

int max_leaf(const PlanNode& node) {
  if (node.kind == NodeKind::kSmall) return node.log2_size;
  int best = 0;
  for (const auto& child : node.children) {
    best = std::max(best, max_leaf(*child));
  }
  return best;
}

bool nodes_equal(const PlanNode& a, const PlanNode& b) {
  if (a.kind != b.kind || a.log2_size != b.log2_size ||
      a.children.size() != b.children.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.children.size(); ++i) {
    if (!nodes_equal(*a.children[i], *b.children[i])) return false;
  }
  return true;
}

}  // namespace

int Plan::leaf_count() const { return count_leaves(root()); }
int Plan::node_count() const { return count_nodes(root()); }
int Plan::depth() const { return node_depth(root()); }
int Plan::max_leaf_log2() const { return max_leaf(root()); }

bool Plan::operator==(const Plan& other) const {
  if (!valid() || !other.valid()) return valid() == other.valid();
  return nodes_equal(*root_, *other.root_);
}

std::string Plan::to_string() const { return format_plan(*this); }

}  // namespace whtlab::core
