// Plan executor — the WHT package's interpreter.
//
// Executes a plan in place on an array of 2^n doubles by walking the tree
// with the triple loop of Equation 1 (Section 2 of the paper):
//
//   R = N; S = 1;
//   for i = 1..t:
//     R = R / Ni;
//     for j = 0..R-1:
//       for k = 0..S-1:
//         apply child i to x[j*Ni*S + k] with stride S
//     S = S * Ni;
//
// Base cases dispatch to unrolled codelets (core/codelet.hpp).  The executor
// is deliberately free of instrumentation — this is the code path whose
// cycles the experiments measure; the op-counting twin lives in
// core/instrumented.hpp.
//
// Execution contract: these functions are pure interpreters — no hidden
// state, no scratch, nothing written outside the data vector — and
// therefore re-entrant: any number of threads may execute the same Plan
// concurrently on disjoint data.  The api layer's const ExecutorBackend
// contract (api/executor_backend.hpp) rests on this guarantee; keep it
// when extending the interpreter (per-call work belongs in the caller's
// wht::ExecContext, never in statics).
#pragma once

#include <cstddef>

#include "core/codelet.hpp"
#include "core/plan.hpp"

namespace whtlab::core {

/// Executes `plan` in place on x[0 .. 2^n).  `x` must hold plan.size()
/// doubles.  The default backend is the generated straight-line codelets,
/// matching the original package.
void execute(const Plan& plan, double* x,
             CodeletBackend backend = CodeletBackend::kGenerated);

/// Executes a subtree on a strided vector: elements x[0], x[stride], ...
/// Exposed so that the parallel executor and tests can drive subtrees.
void execute_node(const PlanNode& node, double* x, std::ptrdiff_t stride,
                  const std::array<CodeletFn, kMaxUnrolled + 1>& table);

}  // namespace whtlab::core
