#include "core/instrumented.hpp"

namespace whtlab::core {

OpCounts& OpCounts::operator+=(const OpCounts& o) {
  loads += o.loads;
  stores += o.stores;
  flops += o.flops;
  index_ops += o.index_ops;
  loop_outer += o.loop_outer;
  loop_mid += o.loop_mid;
  loop_inner += o.loop_inner;
  calls += o.calls;
  return *this;
}

OpCounts OpCounts::scaled(std::uint64_t times) const {
  OpCounts out;
  out.loads = loads * times;
  out.stores = stores * times;
  out.flops = flops * times;
  out.index_ops = index_ops * times;
  out.loop_outer = loop_outer * times;
  out.loop_mid = loop_mid * times;
  out.loop_inner = loop_inner * times;
  out.calls = calls * times;
  return out;
}

namespace {

/// Op counts for a single invocation of `node`, children folded in by their
/// call multiplicity N/Ni.  O(tree) — this is what makes the "model from the
/// high-level description" claim real: no execution, no loops over N.
OpCounts unit_counts(const PlanNode& node) {
  OpCounts c;
  c.calls = 1;
  if (node.kind == NodeKind::kSmall) {
    const std::uint64_t m = node.size();
    const auto k = static_cast<std::uint64_t>(node.log2_size);
    c.loads = m;
    c.stores = m;
    c.flops = k * m;
    c.index_ops = 2 * m;
    return c;
  }
  const std::uint64_t n = node.size();
  std::uint64_t r = n;
  std::uint64_t s = 1;
  // Children last-to-first, mirroring the executor (see executor.cpp).
  for (std::size_t i = node.children.size(); i-- > 0;) {
    const PlanNode& child = *node.children[i];
    const std::uint64_t ni = child.size();
    r /= ni;
    c.loop_outer += 1;
    c.loop_mid += r;
    c.loop_inner += r * s;
    c.index_ops += r * s;  // one base-address computation per inner iteration
    c += unit_counts(child).scaled(n / ni);
    s *= ni;
  }
  return c;
}

/// In-place butterfly codelet with per-op counting; numerically identical to
/// the production codelets.
void instrumented_codelet(int k, double* x, std::ptrdiff_t stride,
                          OpCounts& c) {
  const int m = 1 << k;
  // Mirror the codelet exactly: load all, k stages in registers, store all.
  double temp[1 << kMaxUnrolled];
  for (int j = 0; j < m; ++j) {
    temp[j] = x[j * stride];
    ++c.loads;
    ++c.index_ops;
  }
  for (int stage = 0; stage < k; ++stage) {
    const int half = 1 << stage;
    for (int base = 0; base < m; base += 2 * half) {
      for (int off = 0; off < half; ++off) {
        const double a = temp[base + off];
        const double b = temp[base + off + half];
        temp[base + off] = a + b;
        temp[base + off + half] = a - b;
        c.flops += 2;
      }
    }
  }
  for (int j = 0; j < m; ++j) {
    x[j * stride] = temp[j];
    ++c.stores;
    ++c.index_ops;
  }
}

void run_instrumented(const PlanNode& node, double* x, std::ptrdiff_t stride,
                      OpCounts& c) {
  ++c.calls;
  if (node.kind == NodeKind::kSmall) {
    instrumented_codelet(node.log2_size, x, stride, c);
    return;
  }
  const std::size_t n = static_cast<std::size_t>(node.size());
  std::size_t r = n;
  std::size_t s = 1;
  // Children last-to-first, mirroring the executor (see executor.cpp).
  for (std::size_t i = node.children.size(); i-- > 0;) {
    const PlanNode& child = *node.children[i];
    const std::size_t ni = static_cast<std::size_t>(child.size());
    r /= ni;
    ++c.loop_outer;
    for (std::size_t j = 0; j < r; ++j) {
      ++c.loop_mid;
      for (std::size_t k = 0; k < s; ++k) {
        ++c.loop_inner;
        ++c.index_ops;
        run_instrumented(child,
                         x + static_cast<std::ptrdiff_t>(j * ni * s + k) * stride,
                         static_cast<std::ptrdiff_t>(s) * stride, c);
      }
    }
    s *= ni;
  }
}

}  // namespace

OpCounts count_ops(const Plan& plan) { return unit_counts(plan.root()); }

OpCounts execute_instrumented(const Plan& plan, double* x) {
  OpCounts c;
  run_instrumented(plan.root(), x, 1, c);
  return c;
}

}  // namespace whtlab::core
