// Plan grammar parsing and printing.
//
// Grammar (whitespace insignificant), matching the original WHT package:
//
//   plan  := small | split
//   small := "small" "[" integer "]"
//   split := "split" "[" plan ("," plan)+ "]"
//
// `parse_plan` throws std::invalid_argument with a position-annotated message
// on malformed input; `format_plan(parse_plan(s)) == canonical form of s` is a
// tested round-trip invariant.
#pragma once

#include <string>

#include "core/plan.hpp"

namespace whtlab::core {

/// Renders a plan in the canonical grammar (no whitespace).
std::string format_plan(const Plan& plan);

/// Parses the grammar above.  Throws std::invalid_argument on error.
Plan parse_plan(const std::string& text);

}  // namespace whtlab::core
