// Instrumented execution: the PAPI-instruction-counter stand-in.
//
// The paper measured retired instructions with PAPI.  whtlab instead counts
// abstract operations of the plan interpreter itself, which is the quantity
// the TCS'06 instruction-count model describes:
//
//   * per codelet call on WHT(2^k): 2^k loads, 2^k stores, k*2^k add/sub
//     flops, and 2*2^k effective-address computations;
//   * per split node invocation: one call, t outer-loop iterations, R mid-
//     and R*S inner-loop iterations, and one base-address computation per
//     inner iteration.
//
// Three consumers, all of which must agree (a tested invariant):
//   * count_ops()            — closed-form structural recursion, O(tree);
//   * execute_instrumented() — actually runs the transform while counting,
//                              O(N log N)-ish, used to validate count_ops;
//   * reference_stream()     — replays the exact memory-access sequence of
//                              the executor into a sink (feeds the cache
//                              simulator without touching data).
#pragma once

#include <cstddef>
#include <cstdint>

#include "core/plan.hpp"

namespace whtlab::core {

/// Raw operation tallies of one plan execution.
struct OpCounts {
  std::uint64_t loads = 0;       ///< data loads (one per element read)
  std::uint64_t stores = 0;      ///< data stores (one per element written)
  std::uint64_t flops = 0;       ///< additions + subtractions
  std::uint64_t index_ops = 0;   ///< effective-address computations
  std::uint64_t loop_outer = 0;  ///< iterations of the factor loop (i)
  std::uint64_t loop_mid = 0;    ///< iterations of the block loop (j)
  std::uint64_t loop_inner = 0;  ///< iterations of the stride loop (k)
  std::uint64_t calls = 0;       ///< node invocations (recursion overhead)

  OpCounts& operator+=(const OpCounts& o);
  /// Tallies for `times` repetitions of these counts.
  OpCounts scaled(std::uint64_t times) const;
  bool operator==(const OpCounts&) const = default;

  /// Total memory accesses (loads + stores).
  std::uint64_t accesses() const { return loads + stores; }
};

/// Weights converting OpCounts into a scalar "instruction count".  Defaults
/// approximate one x86-64 instruction per op with a fixed call overhead; the
/// model's correlation results are insensitive to the exact values (any
/// positive weights give the same plan-space ordering up to ties).
struct InstructionWeights {
  double load = 1.0;
  double store = 1.0;
  double flop = 1.0;
  double index_op = 1.0;
  double loop_outer = 4.0;  ///< loop setup/compare/increment for the i loop
  double loop_mid = 2.0;
  double loop_inner = 2.0;
  double call = 16.0;  ///< call/return + stack frame

  double instructions(const OpCounts& c) const {
    return load * static_cast<double>(c.loads) +
           store * static_cast<double>(c.stores) +
           flop * static_cast<double>(c.flops) +
           index_op * static_cast<double>(c.index_ops) +
           loop_outer * static_cast<double>(c.loop_outer) +
           loop_mid * static_cast<double>(c.loop_mid) +
           loop_inner * static_cast<double>(c.loop_inner) +
           call * static_cast<double>(c.calls);
  }
};

/// Closed-form op counts for one execution of `plan` (no data touched).
OpCounts count_ops(const Plan& plan);

/// Runs the transform on `x` (in place) while tallying every operation.
/// Numerically identical to execute(); counts identical to count_ops().
OpCounts execute_instrumented(const Plan& plan, double* x);

namespace detail {

/// Emits the executor's memory-access sequence for one invocation of `node`
/// on the strided vector starting at element index `base`.
/// Sink signature: void(std::uint64_t element_index, bool is_store).
template <typename Sink>
void stream_node(const PlanNode& node, std::uint64_t base, std::uint64_t stride,
                 Sink& sink) {
  if (node.kind == NodeKind::kSmall) {
    const std::uint64_t m = node.size();
    // Codelets load every element, compute in registers, store every element.
    for (std::uint64_t j = 0; j < m; ++j) sink(base + j * stride, false);
    for (std::uint64_t j = 0; j < m; ++j) sink(base + j * stride, true);
    return;
  }
  const std::uint64_t n = node.size();
  std::uint64_t r = n;
  std::uint64_t s = 1;
  // Children last-to-first, mirroring the executor (see executor.cpp).
  for (std::size_t i = node.children.size(); i-- > 0;) {
    const PlanNode& child = *node.children[i];
    const std::uint64_t ni = child.size();
    r /= ni;
    for (std::uint64_t j = 0; j < r; ++j) {
      for (std::uint64_t k = 0; k < s; ++k) {
        stream_node(child, base + (j * ni * s + k) * stride, s * stride, sink);
      }
    }
    s *= ni;
  }
}

}  // namespace detail

/// Replays the exact load/store sequence of executing `plan` into `sink`.
/// Sink signature: void(std::uint64_t element_index, bool is_store).
template <typename Sink>
void reference_stream(const Plan& plan, Sink& sink) {
  detail::stream_node(plan.root(), 0, 1, sink);
}

}  // namespace whtlab::core
