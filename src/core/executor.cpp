#include "core/executor.hpp"

namespace whtlab::core {

void execute_node(const PlanNode& node, double* x, std::ptrdiff_t stride,
                  const std::array<CodeletFn, kMaxUnrolled + 1>& table) {
  if (node.kind == NodeKind::kSmall) {
    table[static_cast<std::size_t>(node.log2_size)](x, stride);
    return;
  }
  const std::size_t n = static_cast<std::size_t>(node.size());
  std::size_t r = n;
  std::size_t s = 1;
  // Equation 1 is a matrix product, so the rightmost factor applies first:
  // children are processed last-to-first, the last child at unit stride.
  // This orientation is what makes the *right* recursive plan the
  // unit-stride recursion (the paper's cache-friendly canonical algorithm).
  for (std::size_t i = node.children.size(); i-- > 0;) {
    const PlanNode& child = *node.children[i];
    const std::size_t ni = static_cast<std::size_t>(child.size());
    r /= ni;
    for (std::size_t j = 0; j < r; ++j) {
      double* block = x + static_cast<std::ptrdiff_t>(j * ni * s) * stride;
      for (std::size_t k = 0; k < s; ++k) {
        execute_node(child, block + static_cast<std::ptrdiff_t>(k) * stride,
                     static_cast<std::ptrdiff_t>(s) * stride, table);
      }
    }
    s *= ni;
  }
}

void execute(const Plan& plan, double* x, CodeletBackend backend) {
  execute_node(plan.root(), x, 1, codelet_table(backend));
}

}  // namespace whtlab::core
