// Fork-join parallel plan executor (extension beyond the paper).
//
// The paper's measurements are single-core (Opteron 224), but the WHT
// package later grew an OpenMP backend; this is the whtlab equivalent using
// std::thread.  Within one factor i of the root split, the R*S child
// applications are independent (they touch disjoint strided sub-vectors), so
// they are partitioned across threads; factors are separated by a join since
// factor i+1 reads what factor i wrote.
//
// Sub-root nodes execute sequentially — for the transform sizes where
// threading pays off, the root split already exposes ample parallelism.
#pragma once

#include <cstddef>

#include "core/codelet.hpp"
#include "core/plan.hpp"

namespace whtlab::core {

/// Executes `plan` in place using up to `num_threads` threads.
/// num_threads <= 1 degenerates to the sequential executor.
void execute_parallel(const Plan& plan, double* x, int num_threads,
                      CodeletBackend backend = CodeletBackend::kGenerated);

/// Strided variant: operates on the plan.size() elements x[0], x[stride], ...
/// (the entry point the api::Transform strided path uses).
void execute_parallel_strided(const Plan& plan, double* x, std::ptrdiff_t stride,
                              int num_threads,
                              CodeletBackend backend = CodeletBackend::kGenerated);

}  // namespace whtlab::core
