#include "core/verify.hpp"

#include <bit>
#include <cmath>
#include <vector>

#include "core/executor.hpp"
#include "util/aligned_buffer.hpp"
#include "util/rng.hpp"

namespace whtlab::core {

void dense_wht_apply(int n, const double* x, double* y) {
  const std::uint64_t size = std::uint64_t{1} << n;
  for (std::uint64_t i = 0; i < size; ++i) {
    double acc = 0.0;
    for (std::uint64_t j = 0; j < size; ++j) {
      const bool negative = (std::popcount(i & j) & 1) != 0;
      acc += negative ? -x[j] : x[j];
    }
    y[i] = acc;
  }
}

void fast_wht_reference(int n, double* x) {
  const std::uint64_t size = std::uint64_t{1} << n;
  for (std::uint64_t half = 1; half < size; half <<= 1) {
    for (std::uint64_t base = 0; base < size; base += 2 * half) {
      for (std::uint64_t off = 0; off < half; ++off) {
        const double a = x[base + off];
        const double b = x[base + off + half];
        x[base + off] = a + b;
        x[base + off + half] = a - b;
      }
    }
  }
}

double max_abs_diff(const double* a, const double* b, std::uint64_t count) {
  double worst = 0.0;
  for (std::uint64_t i = 0; i < count; ++i) {
    const double d = std::fabs(a[i] - b[i]);
    if (d > worst) worst = d;
  }
  return worst;
}

double verify_plan(const Plan& plan, CodeletBackend backend,
                   std::uint64_t seed) {
  const std::uint64_t size = plan.size();
  util::AlignedBuffer via_plan(size);
  util::AlignedBuffer via_reference(size);
  util::Rng rng(seed);
  for (std::uint64_t i = 0; i < size; ++i) {
    const double v = rng.uniform(-1.0, 1.0);
    via_plan[i] = v;
    via_reference[i] = v;
  }
  execute(plan, via_plan.data(), backend);
  fast_wht_reference(plan.log2_size(), via_reference.data());
  return max_abs_diff(via_plan.data(), via_reference.data(), size);
}

}  // namespace whtlab::core
