#include "core/sequency.hpp"

namespace whtlab::core {

std::uint64_t bit_reverse(std::uint64_t v, int bits) {
  std::uint64_t out = 0;
  for (int i = 0; i < bits; ++i) {
    out = (out << 1) | ((v >> i) & 1ULL);
  }
  return out;
}

std::uint64_t gray_encode(std::uint64_t v) { return v ^ (v >> 1); }

std::uint64_t gray_decode(std::uint64_t g) {
  std::uint64_t v = 0;
  while (g != 0) {
    v ^= g;
    g >>= 1;
  }
  return v;
}

std::uint64_t sequency_to_hadamard(std::uint64_t s, int n) {
  return bit_reverse(gray_encode(s), n);
}

std::uint64_t hadamard_to_sequency(std::uint64_t h, int n) {
  return gray_decode(bit_reverse(h, n));
}

void to_sequency_order(const double* in, double* out, int n) {
  const std::uint64_t size = std::uint64_t{1} << n;
  for (std::uint64_t s = 0; s < size; ++s) {
    out[s] = in[sequency_to_hadamard(s, n)];
  }
}

void from_sequency_order(const double* in, double* out, int n) {
  const std::uint64_t size = std::uint64_t{1} << n;
  for (std::uint64_t s = 0; s < size; ++s) {
    out[sequency_to_hadamard(s, n)] = in[s];
  }
}

}  // namespace whtlab::core
