// Structural plan analytics: the stride profile.
//
// The cache behaviour of a WHT plan is determined by *which strides its
// leaf codelets run at*: a leaf call at stride >= one cache line touches a
// separate line per element, while unit-stride calls stream.  The stride
// profile aggregates, over one execution, how many times each (leaf size,
// stride) pair occurs — computed from the plan in O(tree) via call
// multiplicities, no execution.
//
// A notable (tested) fact: the three canonical all-unit-leaf plans share
// the *same* stride multiset — N/2 calls of small[1] at every stride
// 1, 2, ..., N/2 — so their very different miss counts (paper Figure 3)
// come entirely from the temporal order of those calls, not from which
// strides occur.  That is precisely why the cache-miss analysis needs the
// trace-driven simulator / the AofA'05 model rather than a static stride
// census.  The profile still separates plans with different leaf sizes:
// `strided_work_fraction` drops as unrolled base cases grow, which is one
// mechanism behind the autotuned plans' cache friendliness.
#pragma once

#include <cstdint>
#include <map>
#include <utility>

#include "core/plan.hpp"

namespace whtlab::core {

struct StrideProfile {
  /// (leaf log2-size, stride in elements) -> number of codelet calls.
  std::map<std::pair<int, std::uint64_t>, std::uint64_t> calls;

  /// Total leaf codelet invocations.
  std::uint64_t total_calls() const;

  /// Total element accesses (2 * footprint per call: load + store).
  std::uint64_t total_accesses() const;

  /// Fraction of element accesses made at stride >= `line_elements`
  /// (each such access maps to its own cache line): 0 = fully streaming,
  /// 1 = fully strided.
  double strided_work_fraction(std::uint64_t line_elements = 8) const;

  /// Largest stride at which any leaf runs.
  std::uint64_t max_stride() const;
};

/// Computes the stride profile of one execution of `plan`.
StrideProfile stride_profile(const Plan& plan);

}  // namespace whtlab::core
