#include "core/codelet.hpp"

#include <stdexcept>

#include "core/codelets_gen.hpp"

namespace whtlab::core {

namespace {

const std::array<CodeletFn, kMaxUnrolled + 1> kTemplateTable = {
    nullptr,
    &template_codelet<1>,
    &template_codelet<2>,
    &template_codelet<3>,
    &template_codelet<4>,
    &template_codelet<5>,
    &template_codelet<6>,
    &template_codelet<7>,
    &template_codelet<8>,
};

}  // namespace

const std::array<CodeletFn, kMaxUnrolled + 1>& codelet_table(
    CodeletBackend backend) {
  switch (backend) {
    case CodeletBackend::kTemplate:
      return kTemplateTable;
    case CodeletBackend::kGenerated:
      return generated_codelet_table();
  }
  throw std::invalid_argument("unknown codelet backend");
}

CodeletFn codelet(int k, CodeletBackend backend) {
  if (k < 1 || k > kMaxUnrolled) {
    throw std::out_of_range("codelet size out of range: " + std::to_string(k));
  }
  return codelet_table(backend)[static_cast<std::size_t>(k)];
}

}  // namespace whtlab::core
