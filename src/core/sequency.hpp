// Sequency (Walsh) ordering utilities.
//
// The plan executor computes the transform in natural (Hadamard) order.
// Signal-processing applications usually want *sequency* order, where row i
// of the transform matrix has exactly i sign changes — the Walsh analogue of
// sorting Fourier coefficients by frequency.  Row i of the sequency-ordered
// matrix equals row bit_reverse(gray_encode(i)) of the Hadamard-ordered one;
// equivalently, hadamard index h corresponds to sequency index
// gray_decode(bit_reverse(h)).
//
// Used by the sequency_filter example and tested against the dense
// definition (row sign-change counting) in tests/core/sequency_test.cpp.
#pragma once

#include <cstdint>

namespace whtlab::core {

/// Reverses the low `bits` bits of v.
std::uint64_t bit_reverse(std::uint64_t v, int bits);

/// Binary-reflected Gray code of v.
std::uint64_t gray_encode(std::uint64_t v);

/// Inverse of gray_encode.
std::uint64_t gray_decode(std::uint64_t g);

/// Index into a natural (Hadamard) ordered spectrum of length 2^n holding the
/// coefficient with sequency s.
std::uint64_t sequency_to_hadamard(std::uint64_t s, int n);

/// Sequency of the coefficient at natural (Hadamard) index h.
std::uint64_t hadamard_to_sequency(std::uint64_t h, int n);

/// Permutes a Hadamard-ordered spectrum of length 2^n into sequency order.
/// `out[s] = in[sequency_to_hadamard(s, n)]`; in and out must not alias.
void to_sequency_order(const double* in, double* out, int n);

/// Inverse permutation of to_sequency_order.
void from_sequency_order(const double* in, double* out, int n);

}  // namespace whtlab::core
