// Cache-blocked stage-fused execution schedules.
//
// Every plan in the WHT space retires the same set of butterflies: stage s
// (0 <= s < n) pairs elements at distance 2^s, and a leaf small[k] reached at
// accumulated stride 2^s is exactly stages [s, s+k) restricted to one coset.
// A plan therefore *is* an ordered partition of the stages [0, n) plus a
// traversal order — and any execution that applies the stages in ascending
// order per element computes the bit-identical result, because each stage's
// butterflies are disjoint (a+b, a-b) pairs over values the previous stages
// fully determined.
//
// This module exploits that freedom to lower a recursive core::Plan into a
// flat, iterative, cache-blocked schedule:
//
//   * flatten_plan() reads the leaf intervals off the split tree — the
//     stage partition the plan denotes;
//   * lower_plan() re-blocks those stages against an explicit cache
//     hierarchy (BlockingConfig): contiguous blocks sized to L1/L2 are
//     loaded once and carried through every stage that fits (nested
//     ScheduleRounds), and the stages above the largest block become
//     radix-2^k fused passes — one memory sweep retires k stages, the
//     memory-bound regime's only lever.
//
// The scalar interpreter (execute_schedule) is the parity reference and the
// strided fallback; the vectorized twin lives in simd/fused_executor.hpp.
//
// Execution contract: a Schedule is immutable once lowered and
// execute_schedule is a pure in-place interpreter over it — re-entrant,
// shareable across threads on disjoint data with no locking.  The "fused"
// backend memoizes one Schedule per size and serves it concurrently on
// exactly this guarantee (api/executor_backend.cpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/codelet.hpp"
#include "core/plan.hpp"

namespace whtlab::core {

/// One fused group of consecutive butterfly stages, applied in a single
/// sweep of its enclosing block.  stage == 0 is the *unit pass*: tiles are
/// contiguous runs of 2^radix_log2 doubles (radix up to kMaxUnrolled, run as
/// an unrolled codelet).  stage > 0 is a *strided pass*: tiles are
/// 2^radix_log2 elements at stride 2^stage (radix capped by
/// BlockingConfig::max_radix_log2 so a tile stays in registers).
struct SchedulePass {
  int stage = 0;        ///< first butterfly stage: pairs at distance 2^stage
  int radix_log2 = 1;   ///< stages fused: this pass covers [stage, stage+radix_log2)
};

/// One sweep unit: contiguous blocks of 2^block_log2 doubles.  Per block,
/// the inner rounds run first (sub-blocks of the block, e.g. L1 blocks
/// inside an L2 block), then the block's own passes — so a block is loaded
/// into its cache level once and carried through every stage below
/// block_log2.
struct ScheduleRound {
  int block_log2 = 0;
  std::vector<ScheduleRound> inner;  ///< swept per block before `passes`
  std::vector<SchedulePass> passes;  ///< applied per block, in order
};

/// A lowered, iterative execution schedule for WHT(2^n).  Top-level rounds
/// are swept over the full array in order; together their passes cover each
/// stage of [0, n) exactly once, ascending.
struct Schedule {
  int log2_size = 0;
  std::vector<ScheduleRound> rounds;
};

/// Cache geometry the blocker targets.  Defaults describe a generic x86
/// (16 KiB L1 working block, 1 MiB L2 block); simd::detect_blocking() probes
/// the host and honours WHTLAB_FUSED_L1_LOG2 / WHTLAB_FUSED_L2_LOG2
/// overrides.  All sizes are log2 counts of doubles.
struct BlockingConfig {
  int unit_log2 = kMaxUnrolled;  ///< contiguous base-pass size (codelet ceiling)
  int max_radix_log2 = 3;        ///< widest in-cache strided pass (radix-8)
  int l1_block_log2 = 11;        ///< 2^11 doubles = 16 KiB
  int l2_block_log2 = 17;        ///< 2^17 doubles = 1 MiB
  /// Widest *streaming* pass (stages above the L2 block, where every pass
  /// is a full memory sweep).  Wider than the in-cache cap because trading
  /// register pressure for one fewer DRAM sweep is the right trade out
  /// there: radix-32 keeps 32 vectors live — the whole AVX-512 register
  /// file — and spills on narrower ISAs, but spills are L1-resident while
  /// the sweep it saves is not.
  int stream_radix_log2 = 5;
};

/// The stage partition `plan` denotes: leaf intervals in ascending stage
/// order (the rightmost-child-first traversal of Equation 1).  Radixes are
/// the leaf sizes; stages sum to plan.log2_size().
std::vector<SchedulePass> flatten_plan(const Plan& plan);

/// Lowers `plan` to a cache-blocked schedule.  The stage partition is
/// re-blocked freely against `config` (sound for any WHT plan — see the
/// header comment), so two plans of equal size lower identically: the
/// schedule is a property of the machine, not of the tree shape.
Schedule lower_plan(const Plan& plan, const BlockingConfig& config = {});

/// lower_plan without the tree: schedule for WHT(2^n).
Schedule lower_size(int n, const BlockingConfig& config = {});

/// Number of top-level rounds = full-array memory sweeps the schedule
/// performs (the quantity the blocked cost model prices).
int sweep_count(const Schedule& schedule);

/// Scalar interpreter: executes `schedule` in place on the 2^n elements
/// x[0], x[stride], ...  Bit-identical to core::execute on any plan of the
/// same size.  Unit passes run the `table` codelets; strided passes run the
/// inlined radix-2/4/8 tile kernels (larger radixes fall back to `table`).
void execute_schedule(const Schedule& schedule, double* x, std::ptrdiff_t stride,
                      const std::array<CodeletFn, kMaxUnrolled + 1>& table);

/// Convenience overload with the generated codelets at unit stride.
void execute_schedule(const Schedule& schedule, double* x);

}  // namespace whtlab::core
