#include "core/plan_stats.hpp"

namespace whtlab::core {

namespace {

void walk(const PlanNode& node, std::uint64_t stride, std::uint64_t count,
          StrideProfile& out) {
  if (node.kind == NodeKind::kSmall) {
    out.calls[{node.log2_size, stride}] += count;
    return;
  }
  const std::uint64_t n = node.size();
  std::uint64_t s = 1;
  // Children last-to-first, matching the executor: child i runs at stride
  // s * stride with multiplicity N/Ni per invocation of this node.
  for (std::size_t i = node.children.size(); i-- > 0;) {
    const PlanNode& child = *node.children[i];
    const std::uint64_t ni = child.size();
    walk(child, s * stride, count * (n / ni), out);
    s *= ni;
  }
}

}  // namespace

StrideProfile stride_profile(const Plan& plan) {
  StrideProfile out;
  walk(plan.root(), 1, 1, out);
  return out;
}

std::uint64_t StrideProfile::total_calls() const {
  std::uint64_t total = 0;
  for (const auto& [key, count] : calls) total += count;
  return total;
}

std::uint64_t StrideProfile::total_accesses() const {
  std::uint64_t total = 0;
  for (const auto& [key, count] : calls) {
    total += count * 2 * (std::uint64_t{1} << key.first);
  }
  return total;
}

double StrideProfile::strided_work_fraction(std::uint64_t line_elements) const {
  std::uint64_t strided = 0;
  std::uint64_t total = 0;
  for (const auto& [key, count] : calls) {
    const std::uint64_t accesses = count * 2 * (std::uint64_t{1} << key.first);
    total += accesses;
    if (key.second >= line_elements) strided += accesses;
  }
  return total == 0 ? 0.0
                    : static_cast<double>(strided) / static_cast<double>(total);
}

std::uint64_t StrideProfile::max_stride() const {
  std::uint64_t worst = 0;
  for (const auto& [key, count] : calls) {
    if (key.second > worst) worst = key.second;
  }
  return worst;
}

}  // namespace whtlab::core
