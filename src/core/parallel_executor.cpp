#include "core/parallel_executor.hpp"

#include <algorithm>
#include <thread>
#include <vector>

#include "core/executor.hpp"

namespace whtlab::core {

namespace {

/// Minimum work (child size * number of applications) per factor before
/// spawning threads is worth the fork-join cost.
constexpr std::uint64_t kParallelThreshold = 1 << 12;

}  // namespace

void execute_parallel_strided(const Plan& plan, double* x, std::ptrdiff_t stride,
                              int num_threads, CodeletBackend backend) {
  const auto& table = codelet_table(backend);
  const PlanNode& root = plan.root();
  if (num_threads <= 1 || root.kind == NodeKind::kSmall ||
      root.size() < kParallelThreshold) {
    execute_node(root, x, stride, table);
    return;
  }

  const std::uint64_t n = root.size();
  std::uint64_t r = n;
  std::uint64_t s = 1;
  // Children last-to-first, mirroring the sequential executor.
  for (std::size_t idx = root.children.size(); idx-- > 0;) {
    const PlanNode* child = root.children[idx].get();
    const std::uint64_t ni = child->size();
    r /= ni;
    const std::uint64_t tasks = r * s;  // independent child applications
    const int workers = static_cast<int>(
        std::min<std::uint64_t>(static_cast<std::uint64_t>(num_threads), tasks));
    if (workers <= 1) {
      for (std::uint64_t j = 0; j < r; ++j) {
        for (std::uint64_t k = 0; k < s; ++k) {
          execute_node(*child,
                       x + static_cast<std::ptrdiff_t>(j * ni * s + k) * stride,
                       static_cast<std::ptrdiff_t>(s) * stride, table);
        }
      }
    } else {
      std::vector<std::thread> pool;
      pool.reserve(static_cast<std::size_t>(workers));
      for (int w = 0; w < workers; ++w) {
        const std::uint64_t begin = tasks * static_cast<std::uint64_t>(w) /
                                    static_cast<std::uint64_t>(workers);
        const std::uint64_t end = tasks * static_cast<std::uint64_t>(w + 1) /
                                  static_cast<std::uint64_t>(workers);
        pool.emplace_back([&, begin, end] {
          for (std::uint64_t task = begin; task < end; ++task) {
            const std::uint64_t j = task / s;
            const std::uint64_t k = task % s;
            execute_node(*child,
                         x + static_cast<std::ptrdiff_t>(j * ni * s + k) * stride,
                         static_cast<std::ptrdiff_t>(s) * stride, table);
          }
        });
      }
      for (auto& t : pool) t.join();
    }
    s *= ni;
  }
}

void execute_parallel(const Plan& plan, double* x, int num_threads,
                      CodeletBackend backend) {
  execute_parallel_strided(plan, x, 1, num_threads, backend);
}

}  // namespace whtlab::core
