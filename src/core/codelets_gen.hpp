// Interface to the build-time generated straight-line codelets.
//
// The implementation file (codelets_gen.cpp) is produced by tools/codelet_gen
// during the build — see src/core/CMakeLists.txt — reproducing the original
// WHT package's code-generation step.
#pragma once

#include <array>

#include "core/codelet.hpp"

namespace whtlab::core {

/// Table of generated codelets indexed by k (entry 0 is nullptr).
const std::array<CodeletFn, kMaxUnrolled + 1>& generated_codelet_table();

}  // namespace whtlab::core
