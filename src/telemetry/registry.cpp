#include "telemetry/registry.hpp"

#include <cinttypes>
#include <cstdio>

namespace whtlab::telemetry {

Accumulator& Registry::series(int n, const std::string& backend, bool batch) {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<Accumulator>& cell = series_[{n, backend, batch}];
  if (!cell) {
    cell = std::make_unique<Accumulator>();
    cell->set_decay_window(decay_window_);
  }
  return *cell;  // map nodes are stable; series are never erased
}

void Registry::set_decay_window(std::uint64_t window) {
  const std::lock_guard<std::mutex> lock(mutex_);
  decay_window_ = window;
  for (auto& [key, cell] : series_) cell->set_decay_window(window);
}

Snapshot Registry::snapshot() const {
  Snapshot out;
  const std::lock_guard<std::mutex> lock(mutex_);
  out.reserve(series_.size());
  // std::map iterates in key order — (n, backend, batch) ascending — which
  // is exactly the stable export order to_text() promises.
  for (const auto& [key, cell] : series_) {
    SeriesSnapshot s;
    s.n = std::get<0>(key);
    s.backend = std::get<1>(key);
    s.batch = std::get<2>(key);
    s.stats = cell->snapshot();
    out.push_back(std::move(s));
  }
  return out;
}

std::size_t Registry::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return series_.size();
}

std::string to_text(const Snapshot& snapshot) {
  std::string out;
  out.reserve(snapshot.size() * 360);
  char line[256];
  for (const SeriesSnapshot& s : snapshot) {
    char labels[96];
    std::snprintf(labels, sizeof(labels),
                  "{n=\"%d\",backend=\"%s\",shape=\"%s\"}", s.n,
                  s.backend.c_str(), s.batch ? "batch" : "single");
    std::snprintf(line, sizeof(line), "wht_observations_total%s %" PRIu64 "\n",
                  labels, s.stats.count);
    out += line;
    if (s.stats.count == 0) continue;  // distributions undefined when empty
    std::snprintf(line, sizeof(line), "wht_cycles_per_vector_mean%s %.1f\n",
                  labels, s.stats.mean());
    out += line;
    std::snprintf(line, sizeof(line), "wht_cycles_per_vector_p50%s %.0f\n",
                  labels, s.stats.percentile(0.50));
    out += line;
    std::snprintf(line, sizeof(line), "wht_cycles_per_vector_p99%s %.0f\n",
                  labels, s.stats.percentile(0.99));
    out += line;
    std::snprintf(line, sizeof(line), "wht_cycles_per_vector_min%s %" PRIu64 "\n",
                  labels, s.stats.min);
    out += line;
    std::snprintf(line, sizeof(line), "wht_cycles_per_vector_max%s %" PRIu64 "\n",
                  labels, s.stats.max);
    out += line;
  }
  return out;
}

}  // namespace whtlab::telemetry
