// telemetry::Accumulator — lock-free online running stats for the serving
// path (extension; the paper's lesson that modeled cost drifts from measured
// cost applies at serve time too, so the Engine needs cheap live
// observations to re-anchor its arbiter).
//
// One Accumulator tracks a single series of non-negative integer
// observations (cycles per vector on the Engine's hot path):
//
//   * count / sum / sum-of-squares  -> mean, variance, stddev;
//   * min / max                     -> lifetime extremes (never decayed);
//   * a fixed 64-bucket log2-scaled histogram -> p50/p99/any quantile
//     without allocation (bucket b holds values with bit_width == b, the
//     same power-of-two quantisation bench_ipc uses for its latencies);
//   * epoch-based decay: every `decay_window` records a stripe halves its
//     count/sum/sumsq/buckets, so the running mean and the percentiles are
//     exponentially weighted toward the most recent epoch (this IS the
//     "live EWMA" the Engine re-anchors from — there is no separate EWMA
//     cell to update on the hot path).
//
// Recording is wait-free-ish (a handful of relaxed fetch_adds; min/max
// degrade to a CAS only when they actually change) and the storage is
// striped: each recording thread lands on its own cache-line-padded Cell,
// so concurrent recorders on one series do not bounce a shared line.
// snapshot() merges the stripes into a plain Stats value.  Totals for
// count/sum/min/max/buckets are exact under any interleaving (integer
// fetch_add / monotone CAS), which is what the 8-thread bit-stability test
// asserts; sumsq uses an unsynchronised load-add-store on an atomic double
// (a same-stripe race can drop an addend) and is advisory.
#pragma once

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstdint>
#include <thread>

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#else
#include <chrono>
#endif

namespace whtlab::telemetry {

inline constexpr int kBuckets = 64;
inline constexpr int kStripes = 8;  ///< power of two (stripe index is masked)

/// Unserialized tick source for interval timing on the serving hot path.
/// Same time base as perf::read_cycles (TSC on x86, steady_clock ns
/// elsewhere) but without the fencing — a few ticks of skew is noise at the
/// microsecond scale of a served request, and the fences would double the
/// cost of recording.
inline std::uint64_t now_ticks() {
#if defined(__x86_64__) || defined(_M_X64)
  return __rdtsc();
#else
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
#endif
}

/// Plain-value snapshot of one series (also the merge unit: parallel
/// aggregation is just field-wise addition, Chan-style, since the moments
/// are kept as raw sums).
struct Stats {
  std::uint64_t count = 0;
  std::uint64_t min = ~std::uint64_t{0};  ///< lifetime; ~0 when count == 0
  std::uint64_t max = 0;
  double sum = 0.0;
  double sumsq = 0.0;
  std::uint64_t buckets[kBuckets] = {};

  double mean() const { return count == 0 ? 0.0 : sum / static_cast<double>(count); }

  double variance() const {
    if (count < 2) return 0.0;
    const double m = mean();
    const double v = sumsq / static_cast<double>(count) - m * m;
    return v > 0.0 ? v : 0.0;  // clamp catastrophic cancellation
  }

  double stddev() const { return std::sqrt(variance()); }

  /// Quantile from the log2 histogram: the upper bound (2^b - 1, as a
  /// double) of the bucket holding the q-th ranked observation.  Power-of-
  /// two quantisation — good to within 2x, allocation-free, and monotone in
  /// q (so p50 <= p99 <= max-bucket-bound always holds).  q outside [0, 1]
  /// is clamped; returns 0 for an empty series.
  double percentile(double q) const {
    std::uint64_t total = 0;
    for (const std::uint64_t b : buckets) total += b;
    if (total == 0) return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    const std::uint64_t rank =
        static_cast<std::uint64_t>(q * static_cast<double>(total - 1));
    std::uint64_t seen = 0;
    for (int b = 0; b < kBuckets; ++b) {
      seen += buckets[b];
      if (seen > rank) {
        return b == 0 ? 0.0 : std::ldexp(1.0, b) - 1.0;
      }
    }
    return std::ldexp(1.0, kBuckets);  // unreachable
  }

  void merge(const Stats& other) {
    count += other.count;
    min = std::min(min, other.min);
    max = std::max(max, other.max);
    sum += other.sum;
    sumsq += other.sumsq;
    for (int b = 0; b < kBuckets; ++b) buckets[b] += other.buckets[b];
  }
};

namespace detail {

/// One stripe.  Padded to its own cache lines so stripes never share.
struct alignas(64) Cell {
  std::atomic<std::uint64_t> count{0};
  std::atomic<std::uint64_t> sum{0};
  std::atomic<double> sumsq{0.0};
  std::atomic<std::uint64_t> min{~std::uint64_t{0}};
  std::atomic<std::uint64_t> max{0};
  std::atomic<std::uint64_t> buckets[kBuckets] = {};

  /// `decay_mask` is the power-of-two decay window minus one (so the epoch
  /// check is a mask, not a division), or 0 for never-decay.
  void record(std::uint64_t value, std::uint64_t decay_mask) {
    const std::uint64_t c = count.fetch_add(1, std::memory_order_relaxed) + 1;
    sum.fetch_add(value, std::memory_order_relaxed);
    // Advisory moment: plain load-add-store on the atomic double — a racing
    // recorder on the same stripe can drop an addend, which variance()
    // (monitoring-grade) tolerates; the exact fields below never lose.
    const double sq = static_cast<double>(value) * static_cast<double>(value);
    sumsq.store(sumsq.load(std::memory_order_relaxed) + sq,
                std::memory_order_relaxed);
    buckets[bucket_of(value)].fetch_add(1, std::memory_order_relaxed);
    // Load-then-CAS: after warm-up min/max almost never move, so the common
    // case is two relaxed loads and no RMW at all.
    std::uint64_t m = min.load(std::memory_order_relaxed);
    while (value < m &&
           !min.compare_exchange_weak(m, value, std::memory_order_relaxed)) {
    }
    std::uint64_t x = max.load(std::memory_order_relaxed);
    while (value > x &&
           !max.compare_exchange_weak(x, value, std::memory_order_relaxed)) {
    }
    // Exactly one recorder observes each crossing of the window boundary,
    // so at most one decay runs per epoch even under contention.
    if (decay_mask != 0 && (c & decay_mask) == 0) decay();
  }

  /// Halves the aging fields (count/sum/sumsq/buckets) by subtraction, so
  /// concurrent increments are never lost; min/max are lifetime extremes
  /// and stay.  A snapshot racing a decay can see mixed epochs — the mean
  /// is barely perturbed (numerator and denominator halve together) and
  /// the stats are monitoring-grade, not ledger-grade.
  void decay() {
    const std::uint64_t c = count.load(std::memory_order_relaxed);
    count.fetch_sub(c / 2, std::memory_order_relaxed);
    const std::uint64_t s = sum.load(std::memory_order_relaxed);
    sum.fetch_sub(s / 2, std::memory_order_relaxed);
    double q = sumsq.load(std::memory_order_relaxed);
    while (!sumsq.compare_exchange_weak(q, q * 0.5,
                                        std::memory_order_relaxed)) {
    }
    for (auto& b : buckets) {
      const std::uint64_t v = b.load(std::memory_order_relaxed);
      b.fetch_sub(v / 2, std::memory_order_relaxed);
    }
  }

  void reset() {
    count.store(0, std::memory_order_relaxed);
    sum.store(0, std::memory_order_relaxed);
    sumsq.store(0.0, std::memory_order_relaxed);
    min.store(~std::uint64_t{0}, std::memory_order_relaxed);
    max.store(0, std::memory_order_relaxed);
    for (auto& b : buckets) b.store(0, std::memory_order_relaxed);
  }

  void load_into(Stats& out) const {
    Stats part;
    part.count = count.load(std::memory_order_relaxed);
    part.min = min.load(std::memory_order_relaxed);
    part.max = max.load(std::memory_order_relaxed);
    part.sum = static_cast<double>(sum.load(std::memory_order_relaxed));
    part.sumsq = sumsq.load(std::memory_order_relaxed);
    for (int b = 0; b < kBuckets; ++b) {
      part.buckets[b] = buckets[b].load(std::memory_order_relaxed);
    }
    out.merge(part);
  }

  static int bucket_of(std::uint64_t value) {
    return std::min(static_cast<int>(std::bit_width(value)), kBuckets - 1);
  }
};

/// Small dense thread index for striping (hashing std::thread::id gives no
/// distribution guarantee; a counter round-robins threads across stripes,
/// so up to kStripes recorders never collide).
inline unsigned stripe_index() {
  static std::atomic<unsigned> next{0};
  thread_local const unsigned index =
      next.fetch_add(1, std::memory_order_relaxed);
  return index & (kStripes - 1);
}

}  // namespace detail

class Accumulator {
 public:
  Accumulator() = default;
  Accumulator(const Accumulator&) = delete;
  Accumulator& operator=(const Accumulator&) = delete;

  /// Records between halvings, per stripe; 0 (default) never decays.
  /// Rounded up to a power of two (minimum 2) so the hot-path epoch check
  /// is a mask instead of a division.
  void set_decay_window(std::uint64_t window) {
    const std::uint64_t mask =
        window == 0 ? 0 : std::bit_ceil(std::max<std::uint64_t>(window, 2)) - 1;
    decay_mask_.store(mask, std::memory_order_relaxed);
  }

  void record(std::uint64_t value) {
    cells_[detail::stripe_index()].record(
        value, decay_mask_.load(std::memory_order_relaxed));
  }

  Stats snapshot() const {
    Stats out;
    for (const auto& cell : cells_) cell.load_into(out);
    return out;
  }

  /// Cheap observation count (stripe sum; no histogram walk).
  std::uint64_t count() const {
    std::uint64_t total = 0;
    for (const auto& cell : cells_) {
      total += cell.count.load(std::memory_order_relaxed);
    }
    return total;
  }

  /// Cheap decayed running mean — the live EWMA the arbiter blends with its
  /// first-touch anchor.  Returns 0 for an empty series.
  double mean() const {
    std::uint64_t total = 0;
    std::uint64_t sum = 0;
    for (const auto& cell : cells_) {
      total += cell.count.load(std::memory_order_relaxed);
      sum += cell.sum.load(std::memory_order_relaxed);
    }
    return total == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(total);
  }

  double percentile(double q) const { return snapshot().percentile(q); }

  void decay() {
    for (auto& cell : cells_) cell.decay();
  }

  /// Clears the series to a fresh epoch (used when the Engine demotes a
  /// backend: the probation probe re-prices from the anchor, not from the
  /// degraded history).  Racing recorders may land one observation across
  /// the reset; monitoring-grade.
  void reset() {
    for (auto& cell : cells_) cell.reset();
  }

 private:
  detail::Cell cells_[kStripes];
  std::atomic<std::uint64_t> decay_mask_{0};  ///< pow2 window - 1; 0 = never
};

}  // namespace whtlab::telemetry
