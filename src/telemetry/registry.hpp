// telemetry::Registry — the per-(n, backend, shape) accumulator table the
// Engine records into and the daemon exports from.
//
// Keyed exactly like the Engine's transform cache — (n, backend) — plus a
// single/batch shape bit, because the two serve paths have different
// per-vector cost structure (a batched vector amortizes pass overhead and
// rides the interleaved kernels) and folding them into one series would
// blur both.  Series are created on first touch and never erased, so the
// `Accumulator*` returned by series() is stable for the Registry's lifetime
// and can be cached next to the Engine's Entry — the hot recording path
// never takes the registry mutex.
//
// snapshot() returns plain values; to_text() renders them one line per
// metric in the Prometheus exposition idiom (`name{labels} value`), sorted
// by (n, backend, shape) so successive scrapes diff cleanly.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>
#include <vector>

#include "telemetry/accumulator.hpp"

namespace whtlab::telemetry {

/// One exported series: its key plus a merged point-in-time Stats value.
struct SeriesSnapshot {
  int n = 0;
  std::string backend;
  bool batch = false;  ///< false: single-vector path, true: batched path
  Stats stats;
};

using Snapshot = std::vector<SeriesSnapshot>;

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The accumulator for (n, backend, shape); created on first touch.  The
  /// returned reference is stable for the Registry's lifetime — cache the
  /// pointer and record without locking.
  Accumulator& series(int n, const std::string& backend, bool batch);

  /// Decay window applied to every existing and future series (records per
  /// stripe between halvings; 0 = never decay).
  void set_decay_window(std::uint64_t window);

  /// Point-in-time copy of every series, sorted by (n, backend, shape).
  Snapshot snapshot() const;

  std::size_t size() const;

 private:
  using Key = std::tuple<int, std::string, bool>;

  mutable std::mutex mutex_;  ///< guards the map structure, not recording
  std::map<Key, std::unique_ptr<Accumulator>> series_;
  std::uint64_t decay_window_ = 0;
};

/// Prometheus-style text exposition of a snapshot: for every series,
///   wht_observations_total{n="10",backend="simd",shape="single"} 81
///   wht_cycles_per_vector_mean{...} 3021.5
///   wht_cycles_per_vector_p50{...} 4095
///   wht_cycles_per_vector_p99{...} 8191
///   wht_cycles_per_vector_min{...} 2480
///   wht_cycles_per_vector_max{...} 19881
/// Observations count record() calls (requests on the single path, batch
/// dispatches on the batch path); the value distribution is cycles (ticks)
/// per served vector.  Stable order, one line per metric, newline-terminated.
std::string to_text(const Snapshot& snapshot);

}  // namespace whtlab::telemetry
