// wht::ExecContext — per-call mutable execution state, owned by the caller.
//
// The serving redesign makes every ExecutorBackend immutable after
// construction: run()/run_many() are const and re-entrant, so one backend —
// and therefore one wht::Transform — can serve any number of threads at
// once.  Everything a call mutates besides the data vector itself lives
// here instead:
//
//   * scratch()      backend work buffers (the SIMD batch-interleave
//                    staging area, gather/scatter assembly, ...);
//   * staging()      caller-side buffers with a distinct lifetime (the
//                    Transform copy conveniences, the Engine's request
//                    coalescer) — kept separate from scratch() so a caller
//                    staging data can still invoke a scratch-using backend;
//   * op counts      the "instrumented" backend's tallies for the run.
//
// A context is NOT thread-safe; give each call chain its own.  ContextPool
// does that for callers who don't want to manage contexts: a checkout/
// return freelist whose size is bounded by peak concurrency (never by how
// many threads have ever existed — a thread-per-request server reuses the
// same few contexts forever), plus a small per-thread tally slot so the
// instrumented backend's counts stay readable per thread after the context
// goes back to the pool.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/instrumented.hpp"
#include "util/scratch_arena.hpp"

namespace whtlab::api {

class ExecContext {
 public:
  ExecContext() = default;
  ExecContext(ExecContext&&) noexcept = default;
  ExecContext& operator=(ExecContext&&) noexcept = default;
  ExecContext(const ExecContext&) = delete;
  ExecContext& operator=(const ExecContext&) = delete;

  /// Backend work area: an aligned buffer of at least `count` doubles,
  /// contents unspecified, valid until the next scratch() call on this
  /// context.  Reused across calls (no steady-state allocation).
  double* scratch(std::size_t count) { return scratch_.acquire(count); }

  /// Caller work area with the same contract but a separate lifetime:
  /// staging() results survive backend scratch() use within one call.
  double* staging(std::size_t count) { return staging_.acquire(count); }

  /// The arenas themselves, for layers that thread scratch down call chains
  /// (simd::execute_many takes a ScratchArena* for its interleave buffer).
  util::ScratchArena& scratch_arena() { return scratch_; }
  util::ScratchArena& staging_arena() { return staging_; }

  /// Op tallies recorded by the last instrumenting run on this context
  /// since clear_op_counts(); nullptr when none ran.
  const core::OpCounts* last_op_counts() const {
    return has_counts_ ? &counts_ : nullptr;
  }
  void set_op_counts(const core::OpCounts& counts) {
    counts_ = counts;
    has_counts_ = true;
  }
  void clear_op_counts() { has_counts_ = false; }

 private:
  util::ScratchArena scratch_;
  util::ScratchArena staging_;
  core::OpCounts counts_{};
  bool has_counts_ = false;
};

/// Checkout/return cache of ExecContexts for callers that don't pass their
/// own: acquire() leases a context for one call (creating one only when
/// every existing context is leased out), the lease's destructor returns
/// it.  Contexts — and their grown arenas — are therefore bounded by peak
/// concurrent calls and reused across any number of threads.  tallies()
/// keeps the last instrumented-run op counts per *thread* (a few dozen
/// bytes each), so Transform::last_op_counts keeps its per-thread meaning
/// after the context itself has moved on.
class ContextPool {
 public:
  ContextPool() = default;
  ContextPool(const ContextPool&) = delete;
  ContextPool& operator=(const ContextPool&) = delete;

  class Lease {
   public:
    explicit Lease(const ContextPool& pool) : pool_(pool), ctx_(pool.take()) {}
    ~Lease() { pool_.give_back(std::move(ctx_)); }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    ExecContext& context() { return *ctx_; }

   private:
    const ContextPool& pool_;
    std::unique_ptr<ExecContext> ctx_;
  };

  Lease acquire() const { return Lease(*this); }

  /// Publishes `counts` as the calling thread's latest instrumented
  /// tallies (Transform copies them out of the lease before returning it).
  void record_tallies(const core::OpCounts& counts) const;

  /// The calling thread's latest recorded tallies, or nullptr.  The
  /// pointer stays valid until this thread's next pooled execute — or, on
  /// servers churning through >1024 instrumented-serving threads, until the
  /// bounded per-thread cache resets (exec_context.cpp); copy the counts
  /// out rather than holding the pointer across other threads' serving.
  const core::OpCounts* tallies() const;

  /// Contexts created so far = peak concurrent leases (observability).
  std::size_t size() const;

 private:
  std::unique_ptr<ExecContext> take() const;
  void give_back(std::unique_ptr<ExecContext> ctx) const;

  mutable std::mutex mutex_;
  mutable std::vector<std::unique_ptr<ExecContext>> free_;
  mutable std::size_t created_ = 0;
  mutable std::map<std::thread::id, core::OpCounts> tallies_;
};

}  // namespace whtlab::api
