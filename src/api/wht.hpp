// The wht:: façade in one include.
//
//   #include "api/wht.hpp"
//   auto t = wht::Planner().strategy(wht::Strategy::kMeasure).threads(4).plan(n);
//   t.execute(x);
//
// `wht` is a namespace alias for whtlab::api; the fine-grained headers
// (planner.hpp, transform.hpp, executor_backend.hpp) remain available for
// include-what-you-use builds.
#pragma once

#include "api/engine.hpp"            // IWYU pragma: export
#include "api/exec_context.hpp"      // IWYU pragma: export
#include "api/executor_backend.hpp"  // IWYU pragma: export
#include "api/planner.hpp"           // IWYU pragma: export
#include "api/transform.hpp"         // IWYU pragma: export
