// wht::Planner — the FFTW-style planning façade.
//
// One fluent builder maps planning strategies onto the repo's search/ and
// model/ modules and hands back a ready-to-run Transform:
//
//   auto t = wht::Planner()
//                .strategy(wht::Strategy::kMeasure)
//                .threads(4)
//                .plan(16);
//   t.execute(x);
//
// Strategy -> machinery:
//   kEstimate    search::dp_search over model::CombinedModel — no execution,
//                the paper's measurement-free autotuning suggestion
//   kMeasure     search::dp_search over perf-measured cycles — the WHT
//                package autotuner (Figure 1's "best")
//   kExhaustive  search::exhaustive_search over measured cycles — ground
//                truth, guarded to small n
//   kSampled     search::model_pruned_search — random candidates ranked by
//                the combined model, best fraction measured (Section 4)
//   kAnneal      search::anneal_search over the combined model — local
//                search by subtree mutation, measurement-free like kEstimate
//                but not bound by DP's optimal-substructure assumption
//   kFixed       the caller's plan verbatim (grammar string or core::Plan)
//
// The model-driven strategies (kEstimate, kAnneal) price the backend that
// will execute the plan: with backend("simd") the instruction term uses the
// SIMD cost model at the runtime-dispatched vector width
// (model/simd_cost.hpp) instead of scalar counts.  The measuring strategies
// get this for free — candidates are timed through the chosen backend.
//
// Execution is delegated to an ExecutorBackend resolved by name from the
// BackendRegistry; threads(>1) defaults the backend to "parallel".
#pragma once

#include <cstdint>
#include <string>

#include "api/executor_backend.hpp"
#include "api/transform.hpp"
#include "core/plan.hpp"
#include "perf/measure.hpp"
#include "search/local_search.hpp"

namespace whtlab::api {

class Planner {
 public:
  Planner() = default;

  /// Planning strategy; default kEstimate (cheap and measurement-free).
  Planner& strategy(Strategy s);

  /// Executor backend by registry name ("generated", "template",
  /// "instrumented", "parallel", or anything registered later).  Unset:
  /// "generated", or "parallel" when threads() > 1.
  Planner& backend(std::string name);

  /// Worker threads for the parallel backend.  Values > 1 switch the
  /// default backend to "parallel".
  Planner& threads(int count);

  /// Codelet flavour used by the sequential/parallel backends.
  Planner& codelets(core::CodeletBackend backend);

  /// Largest unrolled leaf the searches may use (1..core::kMaxUnrolled).
  Planner& max_leaf(int k);

  /// Cap on split arity explored by the DP strategies; 0 = all compositions,
  /// -1 (default) = auto (binary/ternary, the WHT package's practice).
  Planner& max_parts(int parts);

  /// Random candidates drawn by kSampled (default 200).
  Planner& samples(int count);

  /// Fraction of kSampled candidates measured after model ranking
  /// (default 0.1; 1.0 measures everything = no pruning).
  Planner& keep_fraction(double fraction);

  /// RNG seed for kSampled and kAnneal (default 1).
  Planner& seed(std::uint64_t seed);

  /// Annealing schedule for kAnneal (iterations, temperature, cooling).
  /// AnnealOptions::max_leaf is overridden by Planner::max_leaf().
  Planner& anneal_options(const search::AnnealOptions& options);

  /// Measured-cost annealing for kAnneal (default off): live measured
  /// cycles through the chosen backend become the Metropolis acceptance
  /// metric while the model cost demotes to a proposal filter — proposals
  /// the model prices beyond AnnealOptions::accept_filter_slack x the
  /// current plan go unmeasured.  Closes the model-vs-measured gap at the
  /// cost of one measurement per surviving proposal; pair with
  /// wisdom_file() so the price is paid once per machine.
  Planner& anneal_measured(bool enabled);

  /// Measurement protocol for the measuring strategies.
  Planner& measure_options(const perf::MeasureOptions& options);

  /// Pins the plan (switches strategy to kFixed).
  Planner& fixed(core::Plan plan);

  /// Pins the plan from its grammar string, e.g. "split[small[4],small[4]]".
  Planner& fixed(const std::string& grammar);

  /// Wisdom plan cache (api/wisdom.hpp): before searching, plan(n) consults
  /// `path` for a plan recorded under (cpu level, n, strategy, backend) and
  /// uses it verbatim on a hit (planning().from_wisdom reports this); on a
  /// miss the strategy runs and the winner is appended to the file — so
  /// kMeasure / kAnneal cost is paid once per machine.  Lookups and inserts
  /// go through the process-wide WisdomRegistry (in-memory, merge-on-save,
  /// atomic file replacement), so concurrent planners sharing a file do not
  /// lose each other's winners.  Empty (the default) disables the cache;
  /// kFixed never consults it.
  Planner& wisdom_file(std::string path);

  /// One-shot on-host cost-model calibration (default off).  When enabled
  /// together with wisdom_file(), plan(n) ensures the backend's own cost
  /// model is calibrated to this host before any model-driven search: a fit
  /// stored under the wisdom property "calibration/<cpu>/<backend>" is
  /// applied directly; otherwise the backend measures its probe plans once
  /// (ExecutorBackend::run_cost_calibration) and the fit is persisted for
  /// every later process.  Backends without a calibratable model ("simd",
  /// "generated", ...) are unaffected.  The "fused" backend fits its sweep
  /// weights this way (model::calibrate_blocked_weights).
  Planner& calibrate(bool enabled);

  /// Plans WHT(2^n) and returns the executable Transform.  Throws
  /// std::invalid_argument on bad arguments (n out of range, unknown
  /// backend, kFixed size mismatch, kExhaustive size too large).
  Transform plan(int n) const;

  /// kFixed convenience: plans for the pinned plan's own size.
  Transform plan() const;

 private:
  core::Plan search_plan(int n, ExecutorBackend& backend, PlanningInfo& info) const;
  void ensure_calibrated(ExecutorBackend& backend, PlanningInfo& info) const;

  Strategy strategy_ = Strategy::kEstimate;
  std::string backend_;  ///< empty = auto
  int threads_ = 1;
  core::CodeletBackend codelets_ = core::CodeletBackend::kGenerated;
  int max_leaf_ = core::kMaxUnrolled;
  int max_parts_ = -1;  ///< -1 = auto
  int samples_ = 200;
  double keep_fraction_ = 0.1;
  std::uint64_t seed_ = 1;
  search::AnnealOptions anneal_{};
  bool anneal_measured_ = false;
  perf::MeasureOptions measure_{};
  core::Plan fixed_;
  std::string wisdom_file_;  ///< empty = no wisdom cache
  bool calibrate_ = false;
};

}  // namespace whtlab::api
