// wht::Transform — a planned WHT ready to execute (the FFTW plan analogue).
//
// A Transform owns everything needed to apply WHT(2^n) repeatedly: the
// chosen core::Plan and the ExecutorBackend that runs it.  Obtain one from
// wht::Planner (planner.hpp); execute it as often as you like:
//
//   auto t = wht::Planner().strategy(wht::Strategy::kMeasure).plan(16);
//   t.execute(x);                       // in place, 2^16 doubles
//   t.execute(x, stride);               // strided in place
//   t.execute_many(batch, 32);          // 32 contiguous vectors
//   auto y = t.apply(input);            // copying convenience
//
// Transforms are move-only (they own a backend instance) and cheap to move.
// Execution is const and re-entrant: plan and backend are immutable after
// planning, and all per-call state lives in a wht::ExecContext — either one
// the caller passes explicitly, or one leased per call from the Transform's
// internal pool (bounded by peak concurrency, warm arenas reused).  Share
// one Transform across any number of threads with no external locking;
// plan once, serve everywhere (planning is the expensive step, and
// wht::Engine builds the process-wide serving layer on exactly this
// property — see api/engine.hpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "api/exec_context.hpp"
#include "api/executor_backend.hpp"
#include "core/plan.hpp"
#include "perf/measure.hpp"

namespace whtlab::api {

/// How the Planner chooses a plan (see planner.hpp for the mapping onto the
/// search/ and model/ modules).
enum class Strategy {
  kEstimate,    ///< cost-model DP — no measurement, instant
  kMeasure,     ///< DP over measured runtime — the WHT package autotuner
  kExhaustive,  ///< measure every plan in the space (small sizes only)
  kSampled,     ///< random sample, model-pruned, best survivors measured
  kAnneal,      ///< simulated annealing over the cost model (local search)
  kFixed,       ///< caller-supplied plan, no search
};

/// Human-readable strategy name ("estimate", "measure", ...).
const char* to_string(Strategy strategy);

/// Inverse of to_string: parses "estimate" / "measure" / "exhaustive" /
/// "sampled" / "anneal" / "fixed".  Throws std::invalid_argument listing the
/// valid names on anything else (the shared CLI-driver parser — see
/// bench/bench_plan_time.cpp, bench/bench_serve.cpp).
Strategy strategy_from_string(const std::string& name);

/// What planning did, kept on the Transform for reporting.
struct PlanningInfo {
  Strategy strategy = Strategy::kFixed;
  std::uint64_t evaluations = 0;  ///< cost-function / measurement invocations
  double cost = 0.0;              ///< winning plan's cost (model units or cycles)
  bool from_wisdom = false;       ///< plan came from the wisdom cache, no search ran
  std::uint64_t cache_hits = 0;   ///< CostCache lookups served without re-pricing
  bool calibrated = false;        ///< backend cost model ran host-calibrated

  /// The DP strategies' winners-by-size table (index m = best plan of size
  /// 2^m and its cost; entries below min size are empty / 0).  The old
  /// examples/autotune output, re-exposed; empty for non-DP strategies.
  std::vector<core::Plan> best_by_size;
  std::vector<double> cost_by_size;
};

class Transform {
 public:
  Transform() = default;  ///< empty; valid() is false, execute() throws

  Transform(Transform&&) noexcept = default;
  Transform& operator=(Transform&&) noexcept = default;
  Transform(const Transform&) = delete;
  Transform& operator=(const Transform&) = delete;

  bool valid() const { return backend_ != nullptr; }

  /// The plan this transform executes (round-trips through core::plan_io).
  const core::Plan& plan() const { return plan_; }
  int log2_size() const { return plan_.log2_size(); }
  std::uint64_t size() const { return plan_.size(); }

  const std::string& backend_name() const { return backend_name_; }
  const PlanningInfo& planning() const { return info_; }

  /// The owned backend (for serve-time pricing: cost_model(),
  /// batch_factor(), vector_width()).  Valid only while valid().
  const ExecutorBackend& backend() const { return *backend_; }

  /// In-place transform of x[0 .. size()).  Const and re-entrant: any number
  /// of threads may execute one Transform concurrently (on distinct data);
  /// each call transparently leases an ExecContext from the internal pool.
  void execute(double* x) const;

  /// In-place transform of the size() elements x[0], x[stride], ...
  void execute(double* x, std::ptrdiff_t stride) const;

  /// Batched transform: `count` vectors, vector v starting at x + v*dist
  /// (dist in elements; defaults to size(), i.e. contiguous packing).
  /// Delegates to the backend's batch path: "simd" interleaves vectors into
  /// SIMD lanes, "parallel"/"simd"/"fused" fan vectors out across threads;
  /// others run vectors one by one.
  void execute_many(double* x, std::size_t count) const;
  void execute_many(double* x, std::size_t count, std::ptrdiff_t dist) const;

  /// Explicit-context variants: the caller owns per-call state (scratch, op
  /// tallies) instead of the per-thread pool — the serving-loop shape, and
  /// the only way to read op counts from a context the caller controls.
  void execute(double* x, std::ptrdiff_t stride, ExecContext& ctx) const;
  void execute_many(double* x, std::size_t count, std::ptrdiff_t dist,
                    ExecContext& ctx) const;

  /// Out-of-place: out[0 .. size()) = WHT(in[0 .. size())).  `in` and `out`
  /// may alias exactly (degenerates to execute) but must not partially
  /// overlap.
  void execute_copy(const double* in, double* out) const;

  /// Copying convenience; stages through the calling thread's context
  /// scratch.  in.size() must equal size().
  std::vector<double> apply(const std::vector<double>& in) const;

  /// Op tallies of the most recent pooled execute *on the calling thread*
  /// (instrumented backend only; nullptr otherwise — including after
  /// explicit-context executes, whose tallies live on the caller's
  /// context).
  const core::OpCounts* last_op_counts() const;

  /// Measures this transform with the perf protocol (warmup, batched reps,
  /// master-copy restore; see perf/measure.hpp) — but driven through the
  /// owned backend, so "parallel" measures the parallel code path.
  /// MeasureOptions::backend is ignored.
  perf::MeasureResult measure(const perf::MeasureOptions& options = {}) const;

 private:
  friend class Planner;

  Transform(core::Plan plan, std::unique_ptr<ExecutorBackend> backend,
            PlanningInfo info);

  void ensure_valid() const;
  void publish_tallies(const ExecContext& ctx) const;

  core::Plan plan_;
  std::unique_ptr<ExecutorBackend> backend_;
  std::string backend_name_;
  std::unique_ptr<ContextPool> contexts_;  ///< leased ExecContext cache
  PlanningInfo info_;
};

}  // namespace whtlab::api
