#include "api/transform.hpp"

#include <cstring>
#include <stdexcept>
#include <utility>

namespace whtlab::api {

const char* to_string(Strategy strategy) {
  switch (strategy) {
    case Strategy::kEstimate:
      return "estimate";
    case Strategy::kMeasure:
      return "measure";
    case Strategy::kExhaustive:
      return "exhaustive";
    case Strategy::kSampled:
      return "sampled";
    case Strategy::kAnneal:
      return "anneal";
    case Strategy::kFixed:
      return "fixed";
  }
  return "unknown";
}

Strategy strategy_from_string(const std::string& name) {
  for (const Strategy strategy :
       {Strategy::kEstimate, Strategy::kMeasure, Strategy::kExhaustive,
        Strategy::kSampled, Strategy::kAnneal, Strategy::kFixed}) {
    if (name == to_string(strategy)) return strategy;
  }
  throw std::invalid_argument(
      "unknown strategy '" + name +
      "' (valid: estimate, measure, exhaustive, sampled, anneal, fixed)");
}

Transform::Transform(core::Plan plan, std::unique_ptr<ExecutorBackend> backend,
                     PlanningInfo info)
    : plan_(std::move(plan)),
      backend_(std::move(backend)),
      backend_name_(backend_->name()),
      contexts_(std::make_unique<ContextPool>()),
      info_(std::move(info)) {}

void Transform::ensure_valid() const {
  if (!valid()) throw std::logic_error("wht::Transform: not planned");
}

void Transform::execute(double* x) const { execute(x, 1); }

void Transform::execute(double* x, std::ptrdiff_t stride) const {
  ensure_valid();
  ContextPool::Lease lease = contexts_->acquire();
  execute(x, stride, lease.context());
  publish_tallies(lease.context());
}

void Transform::execute(double* x, std::ptrdiff_t stride,
                        ExecContext& ctx) const {
  ensure_valid();
  if (stride == 0) throw std::invalid_argument("Transform: stride must be nonzero");
  backend_->run(plan_, x, stride, ctx);
}

void Transform::execute_many(double* x, std::size_t count) const {
  execute_many(x, count, static_cast<std::ptrdiff_t>(size()));
}

void Transform::execute_many(double* x, std::size_t count,
                             std::ptrdiff_t dist) const {
  ensure_valid();
  ContextPool::Lease lease = contexts_->acquire();
  execute_many(x, count, dist, lease.context());
  publish_tallies(lease.context());
}

void Transform::execute_many(double* x, std::size_t count, std::ptrdiff_t dist,
                             ExecContext& ctx) const {
  ensure_valid();
  const auto span = static_cast<std::ptrdiff_t>(size());
  if (dist > -span && dist < span) {
    throw std::invalid_argument(
        "Transform: |dist| must be >= size() so batch vectors do not overlap");
  }
  backend_->run_many(plan_, x, count, dist, ctx);
}

void Transform::execute_copy(const double* in, double* out) const {
  ensure_valid();
  if (out != in) std::memcpy(out, in, size() * sizeof(double));
  ContextPool::Lease lease = contexts_->acquire();
  backend_->run(plan_, out, 1, lease.context());
  publish_tallies(lease.context());
}

std::vector<double> Transform::apply(const std::vector<double>& in) const {
  ensure_valid();
  if (in.size() != size()) {
    throw std::invalid_argument("Transform: input length " +
                                std::to_string(in.size()) + " != transform size " +
                                std::to_string(size()));
  }
  // Stage through the leased context's caller-side arena (aligned, reused
  // across calls) so the backend's own scratch use cannot alias it.
  ContextPool::Lease lease = contexts_->acquire();
  ExecContext& ctx = lease.context();
  double* stage = ctx.staging(size());
  std::memcpy(stage, in.data(), size() * sizeof(double));
  backend_->run(plan_, stage, 1, ctx);
  std::vector<double> out(stage, stage + size());
  publish_tallies(ctx);
  return out;
}

void Transform::publish_tallies(const ExecContext& ctx) const {
  // Only instrumenting backends write tallies; copy them to the calling
  // thread's slot before the context returns to the pool.
  if (const core::OpCounts* counts = ctx.last_op_counts()) {
    contexts_->record_tallies(*counts);
  }
}

const core::OpCounts* Transform::last_op_counts() const {
  ensure_valid();
  return contexts_->tallies();
}

perf::MeasureResult Transform::measure(const perf::MeasureOptions& options) const {
  ensure_valid();
  return measure_with_backend(*backend_, plan_, options);
}

}  // namespace whtlab::api
