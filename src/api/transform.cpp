#include "api/transform.hpp"

#include <cstring>
#include <stdexcept>
#include <utility>

namespace whtlab::api {

const char* to_string(Strategy strategy) {
  switch (strategy) {
    case Strategy::kEstimate:
      return "estimate";
    case Strategy::kMeasure:
      return "measure";
    case Strategy::kExhaustive:
      return "exhaustive";
    case Strategy::kSampled:
      return "sampled";
    case Strategy::kAnneal:
      return "anneal";
    case Strategy::kFixed:
      return "fixed";
  }
  return "unknown";
}

Transform::Transform(core::Plan plan, std::unique_ptr<ExecutorBackend> backend,
                     PlanningInfo info)
    : plan_(std::move(plan)),
      backend_(std::move(backend)),
      backend_name_(backend_->name()),
      scratch_(plan_.size()),
      info_(std::move(info)) {}

void Transform::ensure_valid() const {
  if (!valid()) throw std::logic_error("wht::Transform: not planned");
}

void Transform::execute(double* x) { execute(x, 1); }

void Transform::execute(double* x, std::ptrdiff_t stride) {
  ensure_valid();
  if (stride == 0) throw std::invalid_argument("Transform: stride must be nonzero");
  backend_->run(plan_, x, stride);
}

void Transform::execute_many(double* x, std::size_t count) {
  execute_many(x, count, static_cast<std::ptrdiff_t>(size()));
}

void Transform::execute_many(double* x, std::size_t count, std::ptrdiff_t dist) {
  ensure_valid();
  const auto span = static_cast<std::ptrdiff_t>(size());
  if (dist > -span && dist < span) {
    throw std::invalid_argument(
        "Transform: |dist| must be >= size() so batch vectors do not overlap");
  }
  backend_->run_many(plan_, x, count, dist);
}

void Transform::execute_copy(const double* in, double* out) {
  ensure_valid();
  if (out != in) std::memcpy(out, in, size() * sizeof(double));
  backend_->run(plan_, out, 1);
}

std::vector<double> Transform::apply(const std::vector<double>& in) {
  ensure_valid();
  if (in.size() != size()) {
    throw std::invalid_argument("Transform: input length " +
                                std::to_string(in.size()) + " != transform size " +
                                std::to_string(size()));
  }
  std::memcpy(scratch_.data(), in.data(), size() * sizeof(double));
  backend_->run(plan_, scratch_.data(), 1);
  return std::vector<double>(scratch_.begin(), scratch_.end());
}

const core::OpCounts* Transform::last_op_counts() const {
  ensure_valid();
  return backend_->last_op_counts();
}

perf::MeasureResult Transform::measure(const perf::MeasureOptions& options) {
  ensure_valid();
  return measure_with_backend(*backend_, plan_, options);
}

}  // namespace whtlab::api
