#include "api/executor_backend.hpp"

#include <algorithm>
#include <map>
#include <mutex>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/executor.hpp"
#include "core/parallel_executor.hpp"
#include "core/schedule.hpp"
#include "model/blocked_cost.hpp"
#include "model/simd_cost.hpp"
#include "simd/fused_executor.hpp"
#include "simd/simd_executor.hpp"
#include "util/parallel_chunks.hpp"

namespace whtlab::api {

namespace {

/// Across-vector fan-out pricing shared by the threaded batch backends: a
/// batch of `count` splits over min(threads, count) workers.
double fanout_factor(std::size_t count, int threads) {
  const std::size_t workers =
      std::max<std::size_t>(1, std::min<std::size_t>(
                                   count, static_cast<std::size_t>(
                                              std::max(threads, 1))));
  return 1.0 / static_cast<double>(workers);
}

/// Sequential interpreter over a fixed codelet table.
class SequentialBackend final : public ExecutorBackend {
 public:
  SequentialBackend(std::string name, core::CodeletBackend codelets)
      : name_(std::move(name)), codelets_(codelets) {}

  const std::string& name() const override { return name_; }

  void run(const core::Plan& plan, double* x, std::ptrdiff_t stride,
           ExecContext& /*ctx*/) const override {
    core::execute_node(plan.root(), x, stride, core::codelet_table(codelets_));
  }

 private:
  std::string name_;
  core::CodeletBackend codelets_;
};

/// Op-counting interpreter; numerically identical to the sequential one.
/// Tallies go to the caller's context, so concurrent runs never race.
class InstrumentedBackend final : public ExecutorBackend {
 public:
  const std::string& name() const override { return name_; }

  void run(const core::Plan& plan, double* x, std::ptrdiff_t stride,
           ExecContext& ctx) const override {
    if (stride == 1) {
      ctx.set_op_counts(core::execute_instrumented(plan, x));
    } else {
      // The instrumented interpreter is unit-stride only; op counts are
      // stride-independent, so count closed-form and run the plain path.
      core::execute_node(plan.root(), x, stride,
                         core::codelet_table(core::CodeletBackend::kGenerated));
      ctx.set_op_counts(core::count_ops(plan));
    }
  }

 private:
  std::string name_ = "instrumented";
};

/// Fork-join executor over the root split.
class ParallelBackend final : public ExecutorBackend {
 public:
  ParallelBackend(int threads, core::CodeletBackend codelets)
      : threads_(threads), codelets_(codelets) {}

  const std::string& name() const override { return name_; }

  void run(const core::Plan& plan, double* x, std::ptrdiff_t stride,
           ExecContext& /*ctx*/) const override {
    core::execute_parallel_strided(plan, x, stride, threads_, codelets_);
  }

  /// Batches parallelize across vectors, not within one transform: each
  /// worker runs whole transforms sequentially (no per-factor join points),
  /// the ROADMAP's batch-parallel execute_many.
  void run_many(const core::Plan& plan, double* x, std::size_t count,
                std::ptrdiff_t dist, ExecContext& /*ctx*/) const override {
    const auto& table = core::codelet_table(codelets_);
    util::parallel_chunks(
        count, threads_, [&plan, &table, x, dist](std::uint64_t begin,
                                                  std::uint64_t end) {
          for (std::uint64_t v = begin; v < end; ++v) {
            core::execute_node(plan.root(),
                               x + static_cast<std::ptrdiff_t>(v) * dist, 1,
                               table);
          }
        });
  }

  double batch_factor(const core::Plan& /*plan*/, std::size_t count,
                      int threads) const override {
    return fanout_factor(count, std::min(threads, threads_));
  }

 private:
  std::string name_ = "parallel";
  int threads_;
  core::CodeletBackend codelets_;
};

/// Vectorized tree walk with runtime CPUID dispatch; batches run
/// interleaved in SIMD lanes (simd/simd_executor.hpp).
class SimdBackend final : public ExecutorBackend {
 public:
  explicit SimdBackend(int threads) : threads_(threads) {}

  const std::string& name() const override { return name_; }

  void run(const core::Plan& plan, double* x, std::ptrdiff_t stride,
           ExecContext& /*ctx*/) const override {
    simd::execute(plan, x, stride);
  }

  void run_many(const core::Plan& plan, double* x, std::size_t count,
                std::ptrdiff_t dist, ExecContext& ctx) const override {
    simd::execute_many(plan, x, count, dist, threads_, &ctx.scratch_arena());
  }

  int vector_width() const override {
    return simd::vector_width(simd::active_level());
  }

  /// Thread fan-out, times the interleave amortization when this shape runs
  /// batch-interleaved: W transforms in lockstep retire ~1/W of the scalar
  /// walk's instruction stream each, while the per-vector vectorized walk
  /// pays its scalar prefixes — model::interleave_amortization prices the
  /// ratio.  This is what lets the Engine's arbiter route tiny-n batches
  /// here while big single vectors go to "fused".  Interleaved batches fan
  /// threads over the W-vector *groups* (execute_many's actual unit), not
  /// over vectors — count/W groups cap the parallelism.
  double batch_factor(const core::Plan& plan, std::size_t count,
                      int threads) const override {
    if (simd::batch_interleaves(plan, count)) {
      const std::size_t groups =
          std::max<std::size_t>(count / static_cast<std::size_t>(vector_width()), 1);
      return fanout_factor(groups, std::min(threads, threads_)) *
             model::interleave_amortization(plan, vector_width());
    }
    return fanout_factor(count, std::min(threads, threads_));
  }

 private:
  std::string name_ = "simd";
  int threads_;
};

/// Cache-blocked stage-fused engine: plans lower to a flat blocked schedule
/// (a property of the size and the probed cache geometry, not of the tree
/// shape), executed by the fused SIMD kernels with scalar/strided fallback.
class FusedBackend final : public ExecutorBackend {
 public:
  explicit FusedBackend(int threads)
      : threads_(threads), blocking_(simd::detect_blocking()) {}

  const std::string& name() const override { return name_; }

  void run(const core::Plan& plan, double* x, std::ptrdiff_t stride,
           ExecContext& /*ctx*/) const override {
    simd::execute_fused(schedule_for(plan), x, stride);
  }

  void run_many(const core::Plan& plan, double* x, std::size_t count,
                std::ptrdiff_t dist, ExecContext& /*ctx*/) const override {
    simd::execute_fused_many(schedule_for(plan), x, count, dist, threads_);
  }

  int vector_width() const override {
    return simd::vector_width(simd::active_level());
  }

  double batch_factor(const core::Plan& /*plan*/, std::size_t count,
                      int threads) const override {
    return fanout_factor(count, std::min(threads, threads_));
  }

  std::function<double(const core::Plan&)> cost_model() const override {
    const model::BlockedCostConfig config = cost_config();
    return [config](const core::Plan& plan) {
      return model::blocked_cost(plan, config);
    };
  }

  bool apply_cost_calibration(const std::string& serialized) override {
    const auto parsed = model::BlockedCalibration::parse(serialized);
    if (!parsed) return false;
    calibration_ = *parsed;
    return true;
  }

  std::optional<std::string> run_cost_calibration(
      const std::function<double(const core::Plan&)>& measure) override {
    // Probe sizes straddling the blocking geometry so each regime of the
    // model (L1-resident, L2-resident, streaming) contributes fit rows.
    const int l1 = blocking_.l1_block_log2;
    const int l2 = blocking_.l2_block_log2;
    std::vector<int> sizes;
    for (int n : {l1 - 1, l1 + 1, l2 - 1, l2 + 1, l2 + 2}) {
      n = std::max(4, std::min(n, 22));
      if (sizes.empty() || sizes.back() != n) sizes.push_back(n);
    }
    while (sizes.size() < 4) sizes.push_back(sizes.back() + 1);
    model::BlockedCostConfig base;
    base.blocking = blocking_;
    base.vector_width = vector_width();
    calibration_ = model::calibrate_blocked_weights(sizes, measure, base);
    return calibration_->serialize();
  }

 private:
  model::BlockedCostConfig cost_config() const {
    model::BlockedCostConfig config;
    config.blocking = blocking_;
    config.vector_width = vector_width();
    if (calibration_) calibration_->apply(config);
    return config;
  }

  /// Schedules depend only on (size, blocking) — immutable derived state,
  /// memoized under a lock so concurrent first-touch runs lower once.  The
  /// returned reference stays valid after the lock drops: map nodes are
  /// stable, entries are never erased or rewritten.
  const core::Schedule& schedule_for(const core::Plan& plan) const {
    const int n = plan.log2_size();
    const std::lock_guard<std::mutex> lock(schedule_mutex_);
    auto it = schedules_.find(n);
    if (it == schedules_.end()) {
      it = schedules_.emplace(n, core::lower_plan(plan, blocking_)).first;
    }
    return it->second;
  }

  std::string name_ = "fused";
  int threads_;
  core::BlockingConfig blocking_;
  std::optional<model::BlockedCalibration> calibration_;
  mutable std::mutex schedule_mutex_;
  mutable std::map<int, core::Schedule> schedules_;
};

}  // namespace

struct BackendRegistry::Impl {
  mutable std::mutex mutex;
  std::map<std::string, Factory> factories;
};

BackendRegistry::BackendRegistry() : impl_(std::make_shared<Impl>()) {
  impl_->factories["generated"] = [](const BackendOptions&) {
    return std::make_unique<SequentialBackend>("generated",
                                               core::CodeletBackend::kGenerated);
  };
  impl_->factories["template"] = [](const BackendOptions&) {
    return std::make_unique<SequentialBackend>("template",
                                               core::CodeletBackend::kTemplate);
  };
  impl_->factories["instrumented"] = [](const BackendOptions&) {
    return std::make_unique<InstrumentedBackend>();
  };
  impl_->factories["parallel"] = [](const BackendOptions& options) {
    return std::make_unique<ParallelBackend>(std::max(options.threads, 1),
                                             options.codelets);
  };
  impl_->factories["simd"] = [](const BackendOptions& options) {
    return std::make_unique<SimdBackend>(std::max(options.threads, 1));
  };
  impl_->factories["fused"] = [](const BackendOptions& options) {
    return std::make_unique<FusedBackend>(std::max(options.threads, 1));
  };
}

BackendRegistry& BackendRegistry::global() {
  static BackendRegistry registry;
  return registry;
}

void BackendRegistry::register_factory(const std::string& name, Factory factory) {
  if (name.empty()) throw std::invalid_argument("backend name must be non-empty");
  if (!factory) throw std::invalid_argument("backend factory must be callable");
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  if (!impl_->factories.emplace(name, std::move(factory)).second) {
    throw std::invalid_argument("backend '" + name + "' is already registered");
  }
}

std::unique_ptr<ExecutorBackend> BackendRegistry::create(
    const std::string& name, const BackendOptions& options) const {
  Factory factory;
  {
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    const auto it = impl_->factories.find(name);
    if (it != impl_->factories.end()) factory = it->second;
  }
  if (!factory) {
    std::string known;
    for (const auto& n : names()) {
      if (!known.empty()) known += ", ";
      known += n;
    }
    throw std::invalid_argument("unknown executor backend '" + name +
                                "' (registered: " + known + ")");
  }
  auto backend = factory(options);
  if (!backend) {
    throw std::runtime_error("backend factory for '" + name + "' returned null");
  }
  return backend;
}

bool BackendRegistry::contains(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->factories.count(name) != 0;
}

std::vector<std::string> BackendRegistry::names() const {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  std::vector<std::string> out;
  out.reserve(impl_->factories.size());
  for (const auto& [name, factory] : impl_->factories) out.push_back(name);
  return out;  // std::map iterates sorted
}

perf::MeasureResult measure_with_backend(const ExecutorBackend& backend,
                                         const core::Plan& plan,
                                         const perf::MeasureOptions& options) {
  // The protocol (warmup, probe-sized batches, master-copy restore) lives
  // once, in perf::measure_run; this merely plugs the backend in as the
  // engine so e.g. "parallel" and "simd" are timed on their own code paths.
  ExecContext ctx;
  return perf::measure_run(
      [&backend, &plan, &ctx](double* x) { backend.run(plan, x, 1, ctx); },
      plan.size(), options);
}

}  // namespace whtlab::api
