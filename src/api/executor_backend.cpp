#include "api/executor_backend.hpp"

#include <algorithm>
#include <cstring>
#include <map>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "core/executor.hpp"
#include "core/parallel_executor.hpp"
#include "perf/cycle_timer.hpp"
#include "util/aligned_buffer.hpp"
#include "util/rng.hpp"

namespace whtlab::api {

namespace {

/// Sequential interpreter over a fixed codelet table.
class SequentialBackend final : public ExecutorBackend {
 public:
  SequentialBackend(std::string name, core::CodeletBackend codelets)
      : name_(std::move(name)), codelets_(codelets) {}

  const std::string& name() const override { return name_; }

  void run(const core::Plan& plan, double* x, std::ptrdiff_t stride) override {
    core::execute_node(plan.root(), x, stride, core::codelet_table(codelets_));
  }

 private:
  std::string name_;
  core::CodeletBackend codelets_;
};

/// Op-counting interpreter; numerically identical to the sequential one.
class InstrumentedBackend final : public ExecutorBackend {
 public:
  const std::string& name() const override { return name_; }

  void run(const core::Plan& plan, double* x, std::ptrdiff_t stride) override {
    if (stride == 1) {
      counts_ = core::execute_instrumented(plan, x);
    } else {
      // The instrumented interpreter is unit-stride only; op counts are
      // stride-independent, so count closed-form and run the plain path.
      core::execute_node(plan.root(), x, stride,
                         core::codelet_table(core::CodeletBackend::kGenerated));
      counts_ = core::count_ops(plan);
    }
  }

  const core::OpCounts* last_op_counts() const override { return &counts_; }

 private:
  std::string name_ = "instrumented";
  core::OpCounts counts_{};
};

/// Fork-join executor over the root split.
class ParallelBackend final : public ExecutorBackend {
 public:
  ParallelBackend(int threads, core::CodeletBackend codelets)
      : threads_(threads), codelets_(codelets) {}

  const std::string& name() const override { return name_; }

  void run(const core::Plan& plan, double* x, std::ptrdiff_t stride) override {
    core::execute_parallel_strided(plan, x, stride, threads_, codelets_);
  }

 private:
  std::string name_ = "parallel";
  int threads_;
  core::CodeletBackend codelets_;
};

}  // namespace

struct BackendRegistry::Impl {
  mutable std::mutex mutex;
  std::map<std::string, Factory> factories;
};

BackendRegistry::BackendRegistry() : impl_(std::make_shared<Impl>()) {
  impl_->factories["generated"] = [](const BackendOptions&) {
    return std::make_unique<SequentialBackend>("generated",
                                               core::CodeletBackend::kGenerated);
  };
  impl_->factories["template"] = [](const BackendOptions&) {
    return std::make_unique<SequentialBackend>("template",
                                               core::CodeletBackend::kTemplate);
  };
  impl_->factories["instrumented"] = [](const BackendOptions&) {
    return std::make_unique<InstrumentedBackend>();
  };
  impl_->factories["parallel"] = [](const BackendOptions& options) {
    return std::make_unique<ParallelBackend>(std::max(options.threads, 1),
                                             options.codelets);
  };
}

BackendRegistry& BackendRegistry::global() {
  static BackendRegistry registry;
  return registry;
}

void BackendRegistry::register_factory(const std::string& name, Factory factory) {
  if (name.empty()) throw std::invalid_argument("backend name must be non-empty");
  if (!factory) throw std::invalid_argument("backend factory must be callable");
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  if (!impl_->factories.emplace(name, std::move(factory)).second) {
    throw std::invalid_argument("backend '" + name + "' is already registered");
  }
}

std::unique_ptr<ExecutorBackend> BackendRegistry::create(
    const std::string& name, const BackendOptions& options) const {
  Factory factory;
  {
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    const auto it = impl_->factories.find(name);
    if (it != impl_->factories.end()) factory = it->second;
  }
  if (!factory) {
    std::string known;
    for (const auto& n : names()) {
      if (!known.empty()) known += ", ";
      known += n;
    }
    throw std::invalid_argument("unknown executor backend '" + name +
                                "' (registered: " + known + ")");
  }
  auto backend = factory(options);
  if (!backend) {
    throw std::runtime_error("backend factory for '" + name + "' returned null");
  }
  return backend;
}

bool BackendRegistry::contains(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->factories.count(name) != 0;
}

std::vector<std::string> BackendRegistry::names() const {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  std::vector<std::string> out;
  out.reserve(impl_->factories.size());
  for (const auto& [name, factory] : impl_->factories) out.push_back(name);
  return out;  // std::map iterates sorted
}

perf::MeasureResult measure_with_backend(ExecutorBackend& backend,
                                         const core::Plan& plan,
                                         const perf::MeasureOptions& options) {
  if (options.repetitions < 1) {
    throw std::invalid_argument("measure_with_backend: repetitions must be >= 1");
  }
  if (options.warmup < 0) {
    throw std::invalid_argument("measure_with_backend: warmup must be >= 0");
  }
  const std::uint64_t n = plan.size();
  util::AlignedBuffer master(n);
  util::AlignedBuffer work(n);
  {
    util::Rng rng(options.seed);
    for (auto& v : master) v = rng.uniform(-1.0, 1.0);
  }

  // Probe once to size the timed batch (same ~50 us target as measure_plan).
  int inner = options.inner_loop;
  if (inner <= 0) {
    std::memcpy(work.data(), master.data(), n * sizeof(double));
    const std::uint64_t begin = perf::read_cycles();
    backend.run(plan, work.data(), 1);
    const std::uint64_t end = perf::read_cycles();
    const double run_ns = perf::cycles_to_ns(end - begin);
    constexpr double target_ns = 50'000.0;
    inner = run_ns >= target_ns
                ? 1
                : static_cast<int>(std::min(target_ns / std::max(run_ns, 1.0),
                                            65536.0)) +
                      1;
  }

  for (int i = 0; i < options.warmup; ++i) {
    std::memcpy(work.data(), master.data(), n * sizeof(double));
    backend.run(plan, work.data(), 1);
  }

  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(options.repetitions));
  for (int rep = 0; rep < options.repetitions; ++rep) {
    std::memcpy(work.data(), master.data(), n * sizeof(double));
    const std::uint64_t begin = perf::read_cycles();
    for (int i = 0; i < inner; ++i) backend.run(plan, work.data(), 1);
    const std::uint64_t end = perf::read_cycles();
    samples.push_back(static_cast<double>(end - begin) /
                      static_cast<double>(inner));
  }

  std::sort(samples.begin(), samples.end());
  perf::MeasureResult result;
  result.inner_loop = inner;
  result.min_cycles = samples.front();
  result.median_cycles = samples[samples.size() / 2];
  double total = 0.0;
  for (double s : samples) total += s;
  result.mean_cycles = total / static_cast<double>(samples.size());
  return result;
}

}  // namespace whtlab::api
