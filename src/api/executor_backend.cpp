#include "api/executor_backend.hpp"

#include <algorithm>
#include <map>
#include <mutex>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/executor.hpp"
#include "core/parallel_executor.hpp"
#include "core/schedule.hpp"
#include "model/blocked_cost.hpp"
#include "simd/fused_executor.hpp"
#include "simd/simd_executor.hpp"
#include "util/parallel_chunks.hpp"

namespace whtlab::api {

namespace {

/// Sequential interpreter over a fixed codelet table.
class SequentialBackend final : public ExecutorBackend {
 public:
  SequentialBackend(std::string name, core::CodeletBackend codelets)
      : name_(std::move(name)), codelets_(codelets) {}

  const std::string& name() const override { return name_; }

  void run(const core::Plan& plan, double* x, std::ptrdiff_t stride) override {
    core::execute_node(plan.root(), x, stride, core::codelet_table(codelets_));
  }

 private:
  std::string name_;
  core::CodeletBackend codelets_;
};

/// Op-counting interpreter; numerically identical to the sequential one.
class InstrumentedBackend final : public ExecutorBackend {
 public:
  const std::string& name() const override { return name_; }

  void run(const core::Plan& plan, double* x, std::ptrdiff_t stride) override {
    if (stride == 1) {
      counts_ = core::execute_instrumented(plan, x);
    } else {
      // The instrumented interpreter is unit-stride only; op counts are
      // stride-independent, so count closed-form and run the plain path.
      core::execute_node(plan.root(), x, stride,
                         core::codelet_table(core::CodeletBackend::kGenerated));
      counts_ = core::count_ops(plan);
    }
  }

  const core::OpCounts* last_op_counts() const override { return &counts_; }

 private:
  std::string name_ = "instrumented";
  core::OpCounts counts_{};
};

/// Fork-join executor over the root split.
class ParallelBackend final : public ExecutorBackend {
 public:
  ParallelBackend(int threads, core::CodeletBackend codelets)
      : threads_(threads), codelets_(codelets) {}

  const std::string& name() const override { return name_; }

  void run(const core::Plan& plan, double* x, std::ptrdiff_t stride) override {
    core::execute_parallel_strided(plan, x, stride, threads_, codelets_);
  }

  /// Batches parallelize across vectors, not within one transform: each
  /// worker runs whole transforms sequentially (no per-factor join points),
  /// the ROADMAP's batch-parallel execute_many.
  void run_many(const core::Plan& plan, double* x, std::size_t count,
                std::ptrdiff_t dist) override {
    const auto& table = core::codelet_table(codelets_);
    util::parallel_chunks(
        count, threads_, [&plan, &table, x, dist](std::uint64_t begin,
                                                  std::uint64_t end) {
          for (std::uint64_t v = begin; v < end; ++v) {
            core::execute_node(plan.root(),
                               x + static_cast<std::ptrdiff_t>(v) * dist, 1,
                               table);
          }
        });
  }

 private:
  std::string name_ = "parallel";
  int threads_;
  core::CodeletBackend codelets_;
};

/// Vectorized tree walk with runtime CPUID dispatch; batches run
/// interleaved in SIMD lanes (simd/simd_executor.hpp).
class SimdBackend final : public ExecutorBackend {
 public:
  explicit SimdBackend(int threads) : threads_(threads) {}

  const std::string& name() const override { return name_; }

  void run(const core::Plan& plan, double* x, std::ptrdiff_t stride) override {
    simd::execute(plan, x, stride);
  }

  void run_many(const core::Plan& plan, double* x, std::size_t count,
                std::ptrdiff_t dist) override {
    simd::execute_many(plan, x, count, dist, threads_);
  }

  int vector_width() const override {
    return simd::vector_width(simd::active_level());
  }

 private:
  std::string name_ = "simd";
  int threads_;
};

/// Cache-blocked stage-fused engine: plans lower to a flat blocked schedule
/// (a property of the size and the probed cache geometry, not of the tree
/// shape), executed by the fused SIMD kernels with scalar/strided fallback.
class FusedBackend final : public ExecutorBackend {
 public:
  explicit FusedBackend(int threads)
      : threads_(threads), blocking_(simd::detect_blocking()) {}

  const std::string& name() const override { return name_; }

  void run(const core::Plan& plan, double* x, std::ptrdiff_t stride) override {
    simd::execute_fused(schedule_for(plan), x, stride);
  }

  void run_many(const core::Plan& plan, double* x, std::size_t count,
                std::ptrdiff_t dist) override {
    simd::execute_fused_many(schedule_for(plan), x, count, dist, threads_);
  }

  int vector_width() const override {
    return simd::vector_width(simd::active_level());
  }

  std::function<double(const core::Plan&)> cost_model() const override {
    const model::BlockedCostConfig config = cost_config();
    return [config](const core::Plan& plan) {
      return model::blocked_cost(plan, config);
    };
  }

  bool apply_cost_calibration(const std::string& serialized) override {
    const auto parsed = model::BlockedCalibration::parse(serialized);
    if (!parsed) return false;
    calibration_ = *parsed;
    return true;
  }

  std::optional<std::string> run_cost_calibration(
      const std::function<double(const core::Plan&)>& measure) override {
    // Probe sizes straddling the blocking geometry so each regime of the
    // model (L1-resident, L2-resident, streaming) contributes fit rows.
    const int l1 = blocking_.l1_block_log2;
    const int l2 = blocking_.l2_block_log2;
    std::vector<int> sizes;
    for (int n : {l1 - 1, l1 + 1, l2 - 1, l2 + 1, l2 + 2}) {
      n = std::max(4, std::min(n, 22));
      if (sizes.empty() || sizes.back() != n) sizes.push_back(n);
    }
    while (sizes.size() < 4) sizes.push_back(sizes.back() + 1);
    model::BlockedCostConfig base;
    base.blocking = blocking_;
    base.vector_width = vector_width();
    calibration_ = model::calibrate_blocked_weights(sizes, measure, base);
    return calibration_->serialize();
  }

 private:
  model::BlockedCostConfig cost_config() const {
    model::BlockedCostConfig config;
    config.blocking = blocking_;
    config.vector_width = vector_width();
    if (calibration_) calibration_->apply(config);
    return config;
  }

  /// Schedules depend only on (size, blocking); memoized so repeated runs
  /// and batches re-lower nothing.  Backend instances are documented as not
  /// thread-safe, so no locking around the cache.
  const core::Schedule& schedule_for(const core::Plan& plan) {
    const int n = plan.log2_size();
    auto it = schedules_.find(n);
    if (it == schedules_.end()) {
      it = schedules_.emplace(n, core::lower_plan(plan, blocking_)).first;
    }
    return it->second;
  }

  std::string name_ = "fused";
  int threads_;
  core::BlockingConfig blocking_;
  std::optional<model::BlockedCalibration> calibration_;
  std::map<int, core::Schedule> schedules_;
};

}  // namespace

struct BackendRegistry::Impl {
  mutable std::mutex mutex;
  std::map<std::string, Factory> factories;
};

BackendRegistry::BackendRegistry() : impl_(std::make_shared<Impl>()) {
  impl_->factories["generated"] = [](const BackendOptions&) {
    return std::make_unique<SequentialBackend>("generated",
                                               core::CodeletBackend::kGenerated);
  };
  impl_->factories["template"] = [](const BackendOptions&) {
    return std::make_unique<SequentialBackend>("template",
                                               core::CodeletBackend::kTemplate);
  };
  impl_->factories["instrumented"] = [](const BackendOptions&) {
    return std::make_unique<InstrumentedBackend>();
  };
  impl_->factories["parallel"] = [](const BackendOptions& options) {
    return std::make_unique<ParallelBackend>(std::max(options.threads, 1),
                                             options.codelets);
  };
  impl_->factories["simd"] = [](const BackendOptions& options) {
    return std::make_unique<SimdBackend>(std::max(options.threads, 1));
  };
  impl_->factories["fused"] = [](const BackendOptions& options) {
    return std::make_unique<FusedBackend>(std::max(options.threads, 1));
  };
}

BackendRegistry& BackendRegistry::global() {
  static BackendRegistry registry;
  return registry;
}

void BackendRegistry::register_factory(const std::string& name, Factory factory) {
  if (name.empty()) throw std::invalid_argument("backend name must be non-empty");
  if (!factory) throw std::invalid_argument("backend factory must be callable");
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  if (!impl_->factories.emplace(name, std::move(factory)).second) {
    throw std::invalid_argument("backend '" + name + "' is already registered");
  }
}

std::unique_ptr<ExecutorBackend> BackendRegistry::create(
    const std::string& name, const BackendOptions& options) const {
  Factory factory;
  {
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    const auto it = impl_->factories.find(name);
    if (it != impl_->factories.end()) factory = it->second;
  }
  if (!factory) {
    std::string known;
    for (const auto& n : names()) {
      if (!known.empty()) known += ", ";
      known += n;
    }
    throw std::invalid_argument("unknown executor backend '" + name +
                                "' (registered: " + known + ")");
  }
  auto backend = factory(options);
  if (!backend) {
    throw std::runtime_error("backend factory for '" + name + "' returned null");
  }
  return backend;
}

bool BackendRegistry::contains(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->factories.count(name) != 0;
}

std::vector<std::string> BackendRegistry::names() const {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  std::vector<std::string> out;
  out.reserve(impl_->factories.size());
  for (const auto& [name, factory] : impl_->factories) out.push_back(name);
  return out;  // std::map iterates sorted
}

perf::MeasureResult measure_with_backend(ExecutorBackend& backend,
                                         const core::Plan& plan,
                                         const perf::MeasureOptions& options) {
  // The protocol (warmup, probe-sized batches, master-copy restore) lives
  // once, in perf::measure_run; this merely plugs the backend in as the
  // engine so e.g. "parallel" and "simd" are timed on their own code paths.
  return perf::measure_run(
      [&backend, &plan](double* x) { backend.run(plan, x, 1); }, plan.size(),
      options);
}

}  // namespace whtlab::api
