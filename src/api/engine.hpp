// wht::Engine — the process-wide concurrent serving façade.
//
// A Transform is immutable and re-entrant (transform.hpp), so the natural
// serving architecture is: plan once per (size, backend), share the plans
// among every serving thread, and decide *which* backend answers each
// request from the request's shape.  Engine packages exactly that:
//
//   wht::Engine engine;
//   engine.execute(16, x);             // single vector, arbitrated backend
//   engine.execute_many(10, xs, 64);   // batch, arbitrated batch path
//   auto done = engine.submit(10, y);  // async; concurrent same-size
//   done.get();                        //   submits coalesce into one batch
//
//   * Shared plan cache — one immutable Transform per (n, backend), planned
//     on first touch through the wht::Planner (wisdom-backed when
//     EngineOptions::wisdom_file is set: a tuned plan is paid for once per
//     machine, then every Engine in every process reuses it).
//   * Serve-time backend arbitration — each registered candidate backend is
//     priced for the request shape (single vector vs batch, size, thread
//     budget) from its own cost_model() (host-calibrated where the backend
//     supports it) or the CombinedModel at its vector width, anchored to
//     measured cycles by default so cross-backend units are comparable, and
//     scaled by ExecutorBackend::batch_factor for the batch shape.  The
//     measure-or-model autotuning idea, applied across backends at serve
//     time: "fused" wins big single vectors (memory passes), "simd" wins
//     tiny-n batches (interleave), per the models — not per a hardcode.
//   * Coalescing batcher — submit() queues the request and returns a
//     future; a dispatcher thread merges every same-size request that
//     arrives within a short window (or until max_batch) into ONE
//     run_many call on the arbitrated batch backend.  Under concurrent
//     load, independent callers transparently form batches big enough for
//     the interleaved/fan-out paths to pay off.
//
// All public methods are thread-safe; one Engine is meant to be shared by
// an entire process (construct it once, serve from everywhere).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "api/exec_context.hpp"
#include "api/transform.hpp"
#include "perf/measure.hpp"
#include "telemetry/registry.hpp"

namespace whtlab::api {

struct EngineOptions {
  /// Candidate backends the arbiter chooses among.  Every name must exist in
  /// the BackendRegistry (checked at Engine construction).  Empty = the
  /// serving built-ins: "generated", "simd", "fused", plus "parallel" when
  /// threads > 1.
  std::vector<std::string> backends;

  /// Planning strategy for first-touch plans (kEstimate: model-driven,
  /// instant — the serving default; pair with wisdom_file to amortize
  /// anything costlier).
  Strategy strategy = Strategy::kEstimate;

  /// Per-request worker-thread budget handed to the backends (batch fan-out)
  /// and to the arbiter's batch pricing.  Serving throughput scales with
  /// *caller* threads on the shared transforms regardless; keep this 1
  /// unless individual requests are latency-critical.
  int threads = 1;

  /// Largest unrolled leaf for planning (Planner::max_leaf).
  int max_leaf = core::kMaxUnrolled;

  /// Wisdom file consulted/updated by first-touch planning ("" = none).
  std::string wisdom_file;

  /// Host-calibrate backend cost models during first-touch planning
  /// (requires wisdom_file; see Planner::calibrate).
  bool calibrate = false;

  /// Anchor each (n, backend) model cost to measured cycles (one short
  /// measurement at first touch) so arbitration compares cycles with
  /// cycles.  Off = raw model units (only meaningful when every candidate's
  /// model shares units — e.g. custom backends in tests).
  bool measure_costs = true;

  /// Protocol for the anchor measurements (kept deliberately cheap).
  perf::MeasureOptions measure{/*warmup=*/1, /*repetitions=*/3};

  /// Coalescer: a forming batch dispatches at this many requests ...
  std::size_t max_batch = 32;

  /// ... or this long after its first request arrived, whichever is first.
  long batch_window_us = 200;

  /// Backend circuit breaker: after this many consecutive serving-time
  /// failures (an exception out of the backend, or a non-finite output
  /// caught by the verify hook) a backend is quarantined — the arbiter
  /// stops routing to it and the failed request is transparently re-run on
  /// the `generated` reference backend from a pristine input snapshot.
  /// 0 disables the breaker entirely (the library default: no snapshot
  /// copies, no behavior change); the whtd daemon arms it.
  int quarantine_strikes = 0;

  /// How long a quarantined backend sits out before the arbiter re-probes
  /// it with live traffic.  A successful probe clears the quarantine; a
  /// failed one re-trips it for another probation period.
  std::uint64_t probation_ms = 2000;

  /// Verify hook: scan every served output for non-finite values and treat
  /// a corrupt result from a finite input as a backend failure (feeds the
  /// circuit breaker).  Only meaningful with quarantine_strikes > 0 — the
  /// snapshot that makes the fallback re-run possible is what makes
  /// detection actionable.
  bool verify_finite = false;

  /// Online telemetry: every served request records its observed
  /// cycles-per-vector into a per-(n, backend, single/batch) accumulator
  /// table (telemetry/registry.hpp), exported via telemetry_snapshot().
  /// Recording is a handful of relaxed atomic ops per request; the
  /// WHTLAB_TELEMETRY=0 environment knob (applied at construction) turns it
  /// off, which also disables re-anchoring and drift demotion below.
  bool telemetry = true;

  /// Records per stripe between histogram halvings — the EWMA horizon of
  /// the live series (accumulator.hpp).  0 = never decay (lifetime stats).
  std::uint64_t telemetry_decay_window = 4096;

  /// Live re-anchoring: once a series holds at least this many
  /// observations, the arbiter prices that (shape, backend) from a blend of
  /// the live decayed mean and the first-touch anchor instead of the anchor
  /// alone — the paper's measure-don't-model lesson applied continuously at
  /// serve time.  0 (default) never re-anchors: arbitration is exactly the
  /// pre-telemetry behavior.  Only meaningful with measure_costs (anchors
  /// must be in cycles for the blend to be unit-consistent).
  std::uint64_t reanchor_min_samples = 0;

  /// Weight of the live mean in the re-anchored price (0 = anchor only,
  /// 1 = live only).
  double reanchor_blend = 0.5;

  /// Drift circuit breaker: demote a backend whose live single-vector p99
  /// exceeds this factor times its first-touch anchor (frequency scaling,
  /// cache pressure, co-tenancy...), using the quarantine/probation
  /// machinery — the arbiter stops routing to it for probation_ms, then
  /// lets live traffic re-probe it against a reset series.  0 (default)
  /// never demotes.  Like re-anchoring, requires telemetry + measure_costs;
  /// checked once the series holds reanchor_min_samples observations (which
  /// must be > 0 for the check to arm).
  double drift_demote_factor = 0.0;
};

class Engine {
 public:
  explicit Engine(EngineOptions options = {});
  ~Engine();  ///< drains the submit queue, joins the dispatcher

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// What the arbiter decided for one request shape (also the introspection
  /// hook: candidates lists every backend's priced cost for the shape).
  struct Decision {
    std::string backend;  ///< the winner
    double cost = 0.0;    ///< its predicted cost for the whole request
    struct Candidate {
      std::string backend;
      double cost = 0.0;
    };
    std::vector<Candidate> candidates;  ///< every priced candidate, sorted by cost
  };

  /// Prices every candidate backend for a request of `count` vectors of
  /// 2^n doubles and returns the ranking.  First touch of an (n, backend)
  /// pair plans (and, by default, anchor-measures) it; later calls are one
  /// short map lookup plus arithmetic on the cached per-unit costs — no
  /// re-planning, no re-measurement.  A candidate whose first-touch build
  /// throws is skipped for this decision and retried on the next;
  /// arbitrate itself throws only when every candidate fails.
  Decision arbitrate(int n, std::size_t count = 1);

  /// The shared immutable Transform for (n, backend); planned on first
  /// touch, cached for the Engine's lifetime.  The shared_ptr keeps it
  /// alive independently of the Engine — hold it to skip even the cache
  /// lookup on a hot serve path.
  std::shared_ptr<const Transform> transform(int n, const std::string& backend);

  /// Rebuilds the shared Transform cache for every (n, backend) shape the
  /// configured wisdom file records for this host's SIMD level and this
  /// Engine's candidate backends — so a freshly (re)started daemon pays its
  /// first-touch planning stalls *before* taking traffic instead of on the
  /// first unlucky request (`whtd --prewarm`).  Returns the number of
  /// Transforms built; shapes whose build throws are skipped (they will
  /// retry on first touch, exactly as without prewarming).  No wisdom file
  /// configured, or none readable, prewarms nothing.
  std::size_t prewarm();

  /// Durability barrier for the configured wisdom file: re-merges the
  /// process's cached wisdom over the on-disk state and saves atomically.
  /// Inserts already persist eagerly, so this is a best-effort lifecycle
  /// hook — a draining daemon calls it before exiting so the successor's
  /// prewarm provably sees every winner this Engine recorded.  No wisdom
  /// file configured = no-op; never throws.
  void flush_wisdom();

  /// Serves one in-place transform of x[0 .. 2^n) on the arbitrated
  /// backend, synchronously on the calling thread.
  void execute(int n, double* x);

  /// Serves `count` vectors (vector v at x + v*dist; dist defaults to 2^n)
  /// in one arbitrated run_many call.
  void execute_many(int n, double* x, std::size_t count);
  void execute_many(int n, double* x, std::size_t count, std::ptrdiff_t dist);

  /// External-submitter hooks: the caller owns the per-call context instead
  /// of the Transform's internal pool — the shape for serving layers that
  /// drive the Engine from their own threads with their own arenas (the
  /// whtd daemon executes straight on shared-memory staging this way).
  void execute(int n, double* x, ExecContext& ctx);
  void execute_many(int n, double* x, std::size_t count, std::ptrdiff_t dist,
                    ExecContext& ctx);

  /// Queues one in-place transform of x[0 .. 2^n) and returns immediately;
  /// the future resolves when it ran.  Concurrent submits of the same n
  /// coalesce into one arbitrated run_many (the dispatcher stages them
  /// contiguously, runs the batch, scatters results back).  Planning or
  /// execution errors surface through the future.
  std::future<void> submit(int n, double* x);

  /// Serving counters (monotonic since construction).
  struct Stats {
    std::uint64_t vectors = 0;       ///< transforms served, all paths
    std::uint64_t singles = 0;       ///< synchronous execute() requests
    std::uint64_t submitted = 0;     ///< submit() requests
    std::uint64_t batches = 0;       ///< run_many dispatches (any path)
    std::uint64_t coalesced = 0;     ///< submits served in a merged batch (>= 2)
    std::uint64_t failures = 0;      ///< serving-time backend failures absorbed
    std::uint64_t fallbacks = 0;     ///< requests re-run on the reference backend
    std::map<std::string, std::uint64_t> per_backend;  ///< vectors per winner
    /// Circuit-breaker state: quarantine trips per backend since
    /// construction, and the backends sitting in quarantine right now.
    std::map<std::string, std::uint64_t> quarantine_trips;
    std::vector<std::string> quarantined;
  };
  Stats stats() const;

  /// Point-in-time copy of the whole telemetry table — every
  /// (n, backend, single/batch) series observed since construction, sorted.
  /// Empty when options().telemetry is off.  telemetry::to_text renders it
  /// in the Prometheus exposition format.
  telemetry::Snapshot telemetry_snapshot() const;

  const EngineOptions& options() const { return options_; }
  /// The arbiter's candidate pool (options().backends after defaulting).
  const std::vector<std::string>& candidates() const { return candidates_; }

 private:
  struct Entry {
    /// Lock-free ready flag: once true, transform/unit_cost are immutable
    /// and readable without the build mutex (release/acquire pairing).
    /// Build failures cache nothing — the next touch retries, so one
    /// transient error (ENOSPC during a wisdom write, an OOM during an
    /// anchor measurement) never poisons a size for the Engine's lifetime.
    std::atomic<bool> ready{false};
    std::mutex build_mutex;
    std::shared_ptr<const Transform> transform;
    double unit_cost = 0.0;  ///< per-vector serve cost (cycles or model units)
    /// Live telemetry series for this (n, backend), resolved once at build
    /// so the hot recording path never touches the registry lock (series
    /// addresses are stable for the Engine's lifetime).  Null when
    /// telemetry is off.
    telemetry::Accumulator* telem_single = nullptr;
    telemetry::Accumulator* telem_batch = nullptr;
  };

  struct Pending {
    int n = 0;
    double* x = nullptr;
    std::promise<void> promise;
  };

  /// The map cell for (n, backend) — one short map-lock, no building.
  Entry& slot(int n, const std::string& backend);
  /// The built entry; builds under the entry's own mutex on first touch
  /// (throwing what planning threw, caching nothing on failure) and is a
  /// single atomic load afterwards.
  Entry& entry(int n, const std::string& backend);
  Entry& ensure_built(Entry& e, int n, const std::string& backend);
  void build_entry(Entry& e, int n, const std::string& backend);

  /// arbitrate() plus the winning entry — the serve paths use this so the
  /// request is priced and routed with ONE pass over the cells (no second
  /// locked map lookup on the hot path).
  struct Choice {
    Decision decision;
    Entry* winner = nullptr;
  };
  Choice choose(int n, std::size_t count);

  /// Circuit-breaker bookkeeping per candidate backend.  Entries are
  /// created in the constructor and never erased; all fields are guarded by
  /// health_mutex_.
  struct Health {
    int strikes = 0;          ///< consecutive serving-time failures
    bool quarantined = false;
    std::uint64_t until_ns = 0;  ///< monotonic re-probe time
    std::uint64_t trips = 0;     ///< times quarantine engaged
  };

  /// True while `backend` is quarantined and its probation has not elapsed
  /// (after probation the arbiter lets live traffic re-probe it).
  bool quarantine_blocked(const std::string& backend);
  void on_backend_failure(const std::string& backend);
  void on_backend_success(const std::string& backend);
  /// True when *any* breaker can engage — consecutive-failure quarantine or
  /// telemetry drift demotion — so success/probe bookkeeping runs.
  bool health_armed() const {
    return options_.quarantine_strikes > 0 ||
           options_.drift_demote_factor > 0.0;
  }
  /// Drift check on the recording path: once the single-vector series holds
  /// enough samples, a live p99 beyond drift_demote_factor x the anchor
  /// quarantines the backend for one probation and resets the series (the
  /// re-probe prices from the anchor, not the degraded history).
  void maybe_demote_for_drift(const std::string& backend, Entry& e);

  /// Runs the chosen transform; with the breaker armed, absorbs a backend
  /// failure (exception, injected fault, or non-finite output from a finite
  /// input when verify_finite) by striking the backend, restoring the input
  /// from a snapshot, and re-running on the reference backend.  Updates
  /// choice.decision.backend to the backend that actually served.
  void run_guarded(Choice& choice, int n, double* x, std::size_t count,
                   std::ptrdiff_t dist, ExecContext* ctx);

  void record(const std::string& backend, std::uint64_t vectors,
              bool batch, bool from_submit);

  void dispatcher_main();
  void serve_group(std::vector<Pending> group);
  void ensure_dispatcher();

  EngineOptions options_;
  std::vector<std::string> candidates_;
  telemetry::Registry telemetry_;

  std::mutex entries_mutex_;  ///< guards the map structure, not the builds
  std::map<std::pair<int, std::string>, std::unique_ptr<Entry>> entries_;

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<Pending> queue_;
  bool stop_ = false;
  bool dispatcher_started_ = false;
  std::thread dispatcher_;
  ExecContext dispatcher_ctx_;  ///< staging + scratch for coalesced batches

  mutable std::mutex health_mutex_;
  std::map<std::string, Health> health_;

  mutable std::mutex stats_mutex_;
  Stats stats_;
};

/// One-line human-readable rendering of a stats snapshot — the export used
/// by `whtd --stats`, the serve example, and log lines.
std::string to_string(const Engine::Stats& stats);

}  // namespace whtlab::api
