// Plan-cache "wisdom" — the FFTW wisdom analogue.
//
// kMeasure / kAnneal / kExhaustive pay a real search cost per (machine,
// size); a Wisdom file persists their winners so that cost is paid once per
// machine.  Entries are keyed by everything that changes the answer:
//
//   (cpu level, n, strategy, backend)  ->  plan
//
// where the cpu level is the runtime-dispatched SIMD level (a plan tuned on
// an AVX-512 host is not evidence about a scalar one).  Plans round-trip
// through the core::plan_io grammar, so a wisdom file is a human-readable
// tab-separated text file:
//
//   # whtlab wisdom v1
//   avx512<TAB>16<TAB>measure<TAB>simd<TAB>split[small[4],...]
//
// Besides plans, a file can carry free-form *properties* — host-calibrated
// model parameters and the like — as `@prop<TAB>key<TAB>value` lines (the
// blocked model's sweep-weight calibration persists this way; see
// model/blocked_cost.hpp).
//
// Hook it up with Planner::wisdom_file(path): lookups hit before any
// search; misses run the strategy and append the winner.
//
// Key granularity: the tuple above is what changes the answer *shape*;
// finer planner knobs (samples, seed, measure options, thread count) tune
// the same search and are deliberately not part of the key — a winner
// recorded under one is a valid (if possibly stale) plan under another.
// The one hard constraint, max_leaf, is enforced at lookup time by the
// Planner: a cached plan using larger leaves than the current cap is
// treated as a miss and re-searched.
//
// Concurrency: save() always writes a temp file in the same directory and
// renames it over the target, so readers never observe a torn file.  The
// WisdomRegistry below is the process-wide in-memory layer the Planner
// uses: one cached Wisdom per path (reloaded when the file changes
// underneath), and inserts that re-merge the on-disk state under a process
// lock before the atomic rename — concurrent planners in one process can
// no longer lose each other's winners.  Across processes, save_merged()
// wraps the read-merge-rename in an advisory flock on `path`.lock, so
// concurrent tuning processes sharing one wisdom file (the registry's
// flush path) never drop each other's entries either.
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include "core/plan.hpp"

namespace whtlab::api {

class Wisdom {
 public:
  struct Key {
    std::string cpu;       ///< simd::to_string(active level)
    int n = 0;             ///< transform size log2
    std::string strategy;  ///< to_string(Strategy)
    std::string backend;   ///< registry name

    bool operator<(const Key& other) const {
      return std::tie(cpu, n, strategy, backend) <
             std::tie(other.cpu, other.n, other.strategy, other.backend);
    }
  };

  Wisdom() = default;

  /// Parses a wisdom file.  A missing file yields empty wisdom (first run);
  /// a malformed line throws std::invalid_argument with the line number —
  /// silently dropping tuned plans would hide corruption.
  static Wisdom load(const std::string& path);

  /// Writes all entries (sorted, stable) atomically: to a temp file beside
  /// `path`, renamed over it.  Throws std::runtime_error when the file
  /// cannot be written.  Overwrite semantics: the previous file content is
  /// replaced whole (use save_merged for the lose-nothing path).
  void save(const std::string& path) const;

  /// Cross-process-safe save: under an advisory file lock (`path`.lock,
  /// flock) the current on-disk state is re-read, this wisdom is merged
  /// over it (this wins collisions), and the union is written atomically.
  /// Concurrent *processes* interleaving save_merged never drop each
  /// other's entries — the read-merge-rename is one critical section.
  /// The lock file is reclaimed on release (unlink-while-holding +
  /// revalidate-after-acquire, see wisdom.cpp), so no `*.lock` litter
  /// outlives the save.  Returns the merged state (what the file now
  /// holds).
  Wisdom save_merged(const std::string& path) const;

  /// The cached plan for `key`, or nullptr.
  const core::Plan* lookup(const Key& key) const;

  /// Inserts or replaces the entry for `key`.
  void insert(const Key& key, core::Plan plan);

  /// Free-form properties (`@prop` lines): calibration results and other
  /// per-host facts that ride along with the plans.
  std::optional<std::string> property(const std::string& key) const;
  void set_property(const std::string& key, std::string value);

  /// Merges `other` into this wisdom; entries and properties from `other`
  /// win on key collisions (newest writer has the freshest measurement).
  void merge_from(const Wisdom& other);

  /// Every recorded key, sorted (the map order) — the enumeration hook for
  /// consumers that want to act on recorded shapes rather than look one up
  /// (Engine::prewarm rebuilds Transforms for them at daemon startup).
  std::vector<Key> keys() const;

  std::size_t size() const { return entries_.size(); }

 private:
  std::map<Key, core::Plan> entries_;
  std::map<std::string, std::string> properties_;
};

/// Process-wide in-memory wisdom layer, one cached Wisdom per file path.
/// All access is serialized by an internal mutex; lookups return copies so
/// no reference outlives the lock.
class WisdomRegistry {
 public:
  static WisdomRegistry& global();

  /// The plan recorded for (path, key), if any.  Loads the file on first
  /// touch and transparently reloads it when its mtime/size changes
  /// (another process — or a test — rewrote it).
  std::optional<core::Plan> lookup(const std::string& path,
                                   const Wisdom::Key& key);

  /// Records a winner: re-reads the current on-disk state, merges every
  /// in-memory entry for `path` over it, and saves atomically — all under
  /// the registry lock, so in-process writers cannot drop each other's
  /// entries.
  void insert(const std::string& path, const Wisdom::Key& key,
              core::Plan plan);

  /// Property access with the same load/merge/save discipline.
  std::optional<std::string> property(const std::string& path,
                                      const std::string& key);
  void set_property(const std::string& path, const std::string& key,
                    std::string value);

  /// Best-effort durability barrier: re-merges the cached in-memory state
  /// for `path` over the current on-disk file and saves atomically (no-op
  /// when nothing is cached).  Every insert already persists eagerly, so
  /// this exists for lifecycle edges — a draining daemon calls it so a
  /// winner recorded just before a planned restart provably survives into
  /// the successor's prewarm, even if a concurrent writer raced the
  /// original save.
  void flush(const std::string& path);

  /// Drops the cached state for `path` (testing hook; the next touch
  /// reloads from disk).
  void invalidate(const std::string& path);

 private:
  WisdomRegistry() = default;
  struct Impl;
  Impl& impl();
};

}  // namespace whtlab::api
