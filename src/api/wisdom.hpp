// Plan-cache "wisdom" — the FFTW wisdom analogue.
//
// kMeasure / kAnneal / kExhaustive pay a real search cost per (machine,
// size); a Wisdom file persists their winners so that cost is paid once per
// machine.  Entries are keyed by everything that changes the answer:
//
//   (cpu level, n, strategy, backend)  ->  plan
//
// where the cpu level is the runtime-dispatched SIMD level (a plan tuned on
// an AVX-512 host is not evidence about a scalar one).  Plans round-trip
// through the core::plan_io grammar, so a wisdom file is a human-readable
// tab-separated text file:
//
//   # whtlab wisdom v1
//   avx512<TAB>16<TAB>measure<TAB>simd<TAB>split[small[4],...]
//
// Hook it up with Planner::wisdom_file(path): lookups hit before any
// search; misses run the strategy and append the winner.
//
// Key granularity: the tuple above is what changes the answer *shape*;
// finer planner knobs (samples, seed, measure options, thread count) tune
// the same search and are deliberately not part of the key — a winner
// recorded under one is a valid (if possibly stale) plan under another.
// The one hard constraint, max_leaf, is enforced at lookup time by the
// Planner: a cached plan using larger leaves than the current cap is
// treated as a miss and re-searched.  Writers are last-wins, whole-file
// rewrite; concurrent tuning processes should use separate files.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <tuple>

#include "core/plan.hpp"

namespace whtlab::api {

class Wisdom {
 public:
  struct Key {
    std::string cpu;       ///< simd::to_string(active level)
    int n = 0;             ///< transform size log2
    std::string strategy;  ///< to_string(Strategy)
    std::string backend;   ///< registry name

    bool operator<(const Key& other) const {
      return std::tie(cpu, n, strategy, backend) <
             std::tie(other.cpu, other.n, other.strategy, other.backend);
    }
  };

  Wisdom() = default;

  /// Parses a wisdom file.  A missing file yields empty wisdom (first run);
  /// a malformed line throws std::invalid_argument with the line number —
  /// silently dropping tuned plans would hide corruption.
  static Wisdom load(const std::string& path);

  /// Writes all entries (sorted, stable) to `path`.  Throws
  /// std::runtime_error when the file cannot be written.
  void save(const std::string& path) const;

  /// The cached plan for `key`, or nullptr.
  const core::Plan* lookup(const Key& key) const;

  /// Inserts or replaces the entry for `key`.
  void insert(const Key& key, core::Plan plan);

  std::size_t size() const { return entries_.size(); }

 private:
  std::map<Key, core::Plan> entries_;
};

}  // namespace whtlab::api
