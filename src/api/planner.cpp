#include "api/planner.hpp"

#include <stdexcept>
#include <utility>

#include "api/wisdom.hpp"
#include "core/plan_io.hpp"
#include "model/combined_model.hpp"
#include "simd/cpu_features.hpp"
#include "search/dp_search.hpp"
#include "search/exhaustive.hpp"
#include "search/local_search.hpp"
#include "search/pruned_search.hpp"
#include "util/rng.hpp"

namespace whtlab::api {

namespace {

/// Beyond this the full space is too large to measure exhaustively
/// (a(10) is already ~10^6 plans; see search/exhaustive.hpp).
constexpr int kMaxExhaustive = 8;

/// Largest transform the planner will build: 2^26 doubles = 512 MiB.
constexpr int kMaxLog2Size = 26;

/// Model-driven pricing for the backend the Transform will own: a backend
/// supplying its own cost_model() (e.g. "fused", which prices memory
/// passes of the lowered schedule) is taken at its word; otherwise the
/// CombinedModel prices the tree walk, with vectorized backends ("simd"
/// and any custom backend overriding vector_width()) priced at their
/// vector width and everything else at scalar counts.  `cache` memoizes
/// the CombinedModel's per-subtree miss recursion across the search; it
/// must outlive the returned callable.
std::function<double(const core::Plan&)> model_for(
    const ExecutorBackend& backend, model::CostCache* cache) {
  if (auto own = backend.cost_model()) return own;
  model::CombinedModel model;
  model.vector_width = backend.vector_width();
  model.cost_cache = cache;
  return [model](const core::Plan& candidate) { return model(candidate); };
}

}  // namespace

Planner& Planner::strategy(Strategy s) {
  strategy_ = s;
  return *this;
}

Planner& Planner::backend(std::string name) {
  backend_ = std::move(name);
  return *this;
}

Planner& Planner::threads(int count) {
  if (count < 1) throw std::invalid_argument("Planner: threads must be >= 1");
  threads_ = count;
  return *this;
}

Planner& Planner::codelets(core::CodeletBackend backend) {
  codelets_ = backend;
  return *this;
}

Planner& Planner::max_leaf(int k) {
  if (k < 1 || k > core::kMaxUnrolled) {
    throw std::invalid_argument("Planner: max_leaf out of [1, " +
                                std::to_string(core::kMaxUnrolled) + "]");
  }
  max_leaf_ = k;
  return *this;
}

Planner& Planner::max_parts(int parts) {
  if (parts < -1) throw std::invalid_argument("Planner: bad max_parts");
  max_parts_ = parts;
  return *this;
}

Planner& Planner::samples(int count) {
  if (count < 1) throw std::invalid_argument("Planner: samples must be >= 1");
  samples_ = count;
  return *this;
}

Planner& Planner::keep_fraction(double fraction) {
  if (!(fraction > 0.0) || fraction > 1.0) {
    throw std::invalid_argument("Planner: keep_fraction must be in (0, 1]");
  }
  keep_fraction_ = fraction;
  return *this;
}

Planner& Planner::seed(std::uint64_t seed) {
  seed_ = seed;
  return *this;
}

Planner& Planner::anneal_options(const search::AnnealOptions& options) {
  if (options.iterations < 1) {
    throw std::invalid_argument("Planner: anneal iterations must be >= 1");
  }
  anneal_ = options;
  return *this;
}

Planner& Planner::anneal_measured(bool enabled) {
  anneal_measured_ = enabled;
  return *this;
}

Planner& Planner::measure_options(const perf::MeasureOptions& options) {
  measure_ = options;
  return *this;
}

Planner& Planner::fixed(core::Plan plan) {
  if (!plan.valid()) throw std::invalid_argument("Planner: fixed plan is empty");
  fixed_ = std::move(plan);
  strategy_ = Strategy::kFixed;
  return *this;
}

Planner& Planner::fixed(const std::string& grammar) {
  return fixed(core::parse_plan(grammar));
}

Planner& Planner::wisdom_file(std::string path) {
  wisdom_file_ = std::move(path);
  return *this;
}

Planner& Planner::calibrate(bool enabled) {
  calibrate_ = enabled;
  return *this;
}

void Planner::ensure_calibrated(ExecutorBackend& backend,
                                PlanningInfo& info) const {
  if (!calibrate_ || wisdom_file_.empty()) return;
  WisdomRegistry& registry = WisdomRegistry::global();
  const std::string property = "calibration/" +
                               std::string(simd::to_string(simd::active_level())) +
                               "/" + backend.name();
  if (const auto stored = registry.property(wisdom_file_, property)) {
    if (backend.apply_cost_calibration(*stored)) {
      info.calibrated = true;
      return;
    }
    // Unparseable stored fit (truncated file, older format): fall through
    // and re-measure — the fresh fit overwrites the bad property instead of
    // disabling calibration for every future process.
  }
  const perf::MeasureOptions& measure = measure_;
  const auto measured = [&measure, &backend](const core::Plan& probe) {
    return measure_with_backend(backend, probe, measure).cycles();
  };
  const auto fit = backend.run_cost_calibration(measured);
  if (!fit) return;  // backend has nothing to calibrate
  registry.set_property(wisdom_file_, property, *fit);
  info.calibrated = true;
}

core::Plan Planner::search_plan(int n, ExecutorBackend& backend,
                                PlanningInfo& info) const {
  // Candidates are timed through the backend the Transform will own, so a
  // plan autotuned with threads(8) is the winner under fork-join execution,
  // not under the sequential interpreter.
  const perf::MeasureOptions& measure = measure_;
  const auto measured_cost = [&measure, &backend](const core::Plan& candidate) {
    return measure_with_backend(backend, candidate, measure).cycles();
  };

  // One memo per search: the model-driven strategies price overlapping
  // candidates (DP composes winners, anneal revisits neighbourhoods), and
  // the cache lets both the searches (whole candidates) and the combined
  // model (subtrees per stride class) skip repeated work.
  model::CostCache cost_cache;
  const auto record_cache = [&cost_cache, &info]() {
    const auto& stats = cost_cache.stats();
    info.cache_hits = stats.plan_hits + stats.subtree_hits;
  };

  switch (strategy_) {
    case Strategy::kEstimate: {
      search::DpOptions options;
      options.max_leaf = max_leaf_;
      options.max_parts = max_parts_ < 0 ? 4 : max_parts_;
      options.cost_cache = &cost_cache;
      auto result =
          search::dp_search(n, model_for(backend, &cost_cache), options);
      info.evaluations = result.evaluations;
      info.cost = result.cost;
      info.best_by_size = std::move(result.best_by_size);
      info.cost_by_size = std::move(result.cost_by_size);
      record_cache();
      return result.plan;
    }
    case Strategy::kMeasure: {
      search::DpOptions options;
      options.max_leaf = max_leaf_;
      // Ternary splits while candidates are cheap to time, binary beyond
      // (the WHT package's practice; deeper splits remain reachable through
      // recursion).
      options.max_parts = max_parts_ < 0 ? (n <= 12 ? 3 : 2) : max_parts_;
      auto result = search::dp_search(n, measured_cost, options);
      info.evaluations = result.evaluations;
      info.cost = result.cost;
      info.best_by_size = std::move(result.best_by_size);
      info.cost_by_size = std::move(result.cost_by_size);
      return result.plan;
    }
    case Strategy::kExhaustive: {
      if (n > kMaxExhaustive) {
        throw std::invalid_argument(
            "Planner: exhaustive strategy is practical only for n <= " +
            std::to_string(kMaxExhaustive) + ", got n = " + std::to_string(n) +
            " (use kMeasure or kSampled)");
      }
      const auto result = search::exhaustive_search(n, measured_cost, max_leaf_);
      info.evaluations = result.evaluated;
      info.cost = result.best_cost;
      return result.best;
    }
    case Strategy::kSampled: {
      search::PrunedSearchOptions options;
      options.candidates = samples_;
      options.keep_fraction = keep_fraction_;
      options.max_leaf = max_leaf_;
      options.measure_fn = measured_cost;
      options.cost_cache = &cost_cache;
      model::CombinedModel model;
      model.cost_cache = &cost_cache;
      util::Rng rng(seed_);
      const auto result = search::model_pruned_search(
          n, [&model](const core::Plan& candidate) { return model(candidate); },
          rng, options);
      info.evaluations = result.measured;
      info.cost = result.best_cycles;
      record_cache();
      return result.best_plan;
    }
    case Strategy::kAnneal: {
      search::AnnealOptions options = anneal_;
      options.max_leaf = max_leaf_;
      options.cost_cache = &cost_cache;
      if (anneal_measured_) {
        // Measured acceptance (the PR 4 follow-on): the model still prices
        // every proposal — as the filter — but live cycles through this
        // backend decide what the walk keeps.
        options.accept_cost = measured_cost;
      }
      util::Rng rng(seed_);
      const auto result = search::anneal_search(
          n, model_for(backend, &cost_cache), rng, options);
      info.evaluations = result.evaluations + result.measured;
      info.cost = result.best_cost;
      record_cache();
      return result.best;
    }
    case Strategy::kFixed: {
      if (!fixed_.valid()) {
        throw std::invalid_argument(
            "Planner: kFixed strategy needs a plan — call fixed() first");
      }
      if (fixed_.log2_size() != n) {
        throw std::invalid_argument(
            "Planner: fixed plan computes WHT(2^" +
            std::to_string(fixed_.log2_size()) + "), but plan(" +
            std::to_string(n) + ") was requested");
      }
      info.evaluations = 0;
      info.cost = 0.0;
      return fixed_;
    }
  }
  throw std::logic_error("Planner: unknown strategy");
}

Transform Planner::plan(int n) const {
  if (n < 1 || n > kMaxLog2Size) {
    throw std::invalid_argument("Planner: n out of [1, " +
                                std::to_string(kMaxLog2Size) + "], got " +
                                std::to_string(n));
  }

  BackendOptions options;
  options.threads = threads_;
  options.codelets = codelets_;
  const std::string name =
      !backend_.empty() ? backend_ : (threads_ > 1 ? "parallel" : "generated");
  auto backend = BackendRegistry::global().create(name, options);

  PlanningInfo info;
  info.strategy = strategy_;

  // Wisdom short-circuit: a recorded winner for this exact (cpu, n,
  // strategy, backend) tuple replaces the search; a miss runs the strategy
  // and persists the winner so the next process skips it.  All file access
  // goes through the process-wide registry (in-memory cache, merge-on-save,
  // atomic replacement — see api/wisdom.hpp).
  if (!wisdom_file_.empty() && strategy_ != Strategy::kFixed) {
    WisdomRegistry& registry = WisdomRegistry::global();
    const Wisdom::Key key{simd::to_string(simd::active_level()), n,
                          to_string(strategy_), name};
    const auto hit = registry.lookup(wisdom_file_, key);
    // The key does not carry every planner knob (see wisdom.hpp), but the
    // leaf cap is a hard constraint, not a preference: a cached winner
    // using larger codelets than this planner allows is a miss, and the
    // re-search overwrites it.
    if (hit && hit->max_leaf_log2() <= max_leaf_) {
      info.from_wisdom = true;
      return Transform(*hit, std::move(backend), info);
    }
    ensure_calibrated(*backend, info);
    core::Plan chosen = search_plan(n, *backend, info);
    registry.insert(wisdom_file_, key, chosen);
    return Transform(std::move(chosen), std::move(backend), info);
  }

  core::Plan chosen = search_plan(n, *backend, info);

  return Transform(std::move(chosen), std::move(backend), info);
}

Transform Planner::plan() const {
  if (strategy_ != Strategy::kFixed || !fixed_.valid()) {
    throw std::invalid_argument(
        "Planner: plan() without a size requires a fixed() plan");
  }
  return plan(fixed_.log2_size());
}

}  // namespace whtlab::api
