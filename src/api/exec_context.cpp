#include "api/exec_context.hpp"

#include <utility>

namespace whtlab::api {

std::unique_ptr<ExecContext> ContextPool::take() const {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!free_.empty()) {
      std::unique_ptr<ExecContext> ctx = std::move(free_.back());
      free_.pop_back();
      return ctx;
    }
    ++created_;
  }
  return std::make_unique<ExecContext>();
}

void ContextPool::give_back(std::unique_ptr<ExecContext> ctx) const {
  if (!ctx) return;
  // A returned context must not leak one call's tallies into the next
  // lease's thread; arenas stay warm on purpose (that is the pool's point).
  ctx->clear_op_counts();
  const std::lock_guard<std::mutex> lock(mutex_);
  free_.push_back(std::move(ctx));
}

void ContextPool::record_tallies(const core::OpCounts& counts) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  // Bound the diagnostic cache on thread-churning servers: once this many
  // distinct threads have recorded tallies, start over rather than grow a
  // node per thread forever.  Instrumented serving at that scale is not a
  // real workload — the counts are a measurement channel — so the reset
  // (which invalidates previously returned tallies() pointers, see the
  // header contract) is the right trade against an unbounded map.
  constexpr std::size_t kMaxTallyThreads = 1024;
  const std::thread::id self = std::this_thread::get_id();
  if (tallies_.size() >= kMaxTallyThreads && tallies_.count(self) == 0) {
    tallies_.clear();
  }
  tallies_[self] = counts;
}

const core::OpCounts* ContextPool::tallies() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = tallies_.find(std::this_thread::get_id());
  // Map nodes are stable and only this thread rewrites this slot, so the
  // pointer stays meaningful after the lock drops.
  return it == tallies_.end() ? nullptr : &it->second;
}

std::size_t ContextPool::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return created_;
}

}  // namespace whtlab::api
