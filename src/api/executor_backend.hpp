// Pluggable execution backends for the wht::Transform façade.
//
// The repo grew three hand-wired ways to run a plan — core::execute (plain
// interpreter over either codelet table), core::execute_parallel (fork-join
// over the root split), and core::execute_instrumented (op-counting twin).
// ExecutorBackend puts them behind one polymorphic interface so a Transform
// can own "how to run" as a value, and BackendRegistry makes the set
// open-ended: future SIMD / GPU / sharded backends register under a string
// key and become reachable from the Planner without touching callers.
//
// Built-in keys (always registered):
//   "generated"     sequential interpreter, build-time generated codelets
//   "template"      sequential interpreter, compile-time template codelets
//   "instrumented"  op-counting interpreter; tallies retrievable per run
//   "parallel"      fork-join executor honouring BackendOptions::threads
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/codelet.hpp"
#include "core/instrumented.hpp"
#include "core/plan.hpp"
#include "perf/measure.hpp"

namespace whtlab::api {

/// Knobs a factory may honour when instantiating a backend.
struct BackendOptions {
  int threads = 1;  ///< worker threads ("parallel"; ignored elsewhere)
  core::CodeletBackend codelets = core::CodeletBackend::kGenerated;
};

/// One way of running a plan.  Implementations may keep per-run state (the
/// instrumented backend records op tallies), so run() is non-const; a backend
/// instance is not safe for concurrent use from multiple threads.
class ExecutorBackend {
 public:
  virtual ~ExecutorBackend() = default;

  /// Registry key this instance was created under.
  virtual const std::string& name() const = 0;

  /// Transforms the plan.size() elements x[0], x[stride], ... in place.
  virtual void run(const core::Plan& plan, double* x, std::ptrdiff_t stride) = 0;

  /// Op tallies of the most recent run(); nullptr for backends that do not
  /// instrument (all built-ins except "instrumented").
  virtual const core::OpCounts* last_op_counts() const { return nullptr; }
};

/// String-keyed factory table.  The global() registry is pre-populated with
/// the built-in backends; registration is explicit (no static-initializer
/// self-registration, which a static library would silently drop).
class BackendRegistry {
 public:
  using Factory =
      std::function<std::unique_ptr<ExecutorBackend>(const BackendOptions&)>;

  /// Process-wide registry holding the built-ins.  Thread-safe.
  static BackendRegistry& global();

  /// Registers `factory` under `name`.  Throws std::invalid_argument if the
  /// name is already taken (built-ins cannot be shadowed).
  void register_factory(const std::string& name, Factory factory);

  /// Instantiates the backend registered under `name`.  Throws
  /// std::invalid_argument listing the known names when `name` is unknown.
  std::unique_ptr<ExecutorBackend> create(const std::string& name,
                                          const BackendOptions& options = {}) const;

  bool contains(const std::string& name) const;

  /// Registered names, sorted.
  std::vector<std::string> names() const;

 private:
  BackendRegistry();  ///< registers the built-ins

  struct Impl;
  std::shared_ptr<Impl> impl_;
};

/// Runs the perf measurement protocol (warmup, batched repetitions,
/// master-copy restore; see perf/measure.hpp) with `backend` as the
/// execution engine, so e.g. "parallel" is timed on its parallel code path.
/// MeasureOptions::backend is ignored; repetitions must be >= 1.  Used by
/// Transform::measure and by the Planner's measuring strategies (candidates
/// are timed on the backend the planned Transform will actually use).
perf::MeasureResult measure_with_backend(ExecutorBackend& backend,
                                         const core::Plan& plan,
                                         const perf::MeasureOptions& options = {});

}  // namespace whtlab::api

/// Terse spelling used throughout examples and docs: wht::Planner, ...
namespace wht = whtlab::api;
