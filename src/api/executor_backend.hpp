// Pluggable execution backends for the wht::Transform façade.
//
// The repo grew three hand-wired ways to run a plan — core::execute (plain
// interpreter over either codelet table), core::execute_parallel (fork-join
// over the root split), and core::execute_instrumented (op-counting twin).
// ExecutorBackend puts them behind one polymorphic interface so a Transform
// can own "how to run" as a value, and BackendRegistry makes the set
// open-ended: future SIMD / GPU / sharded backends register under a string
// key and become reachable from the Planner without touching callers.
//
// Execution contract (the concurrent-serving redesign): a backend is an
// immutable recipe.  run()/run_many() are const and re-entrant — one
// instance may execute any number of plans from any number of threads at
// once — and every per-call mutable need (scratch buffers, op tallies) goes
// through the caller-supplied wht::ExecContext.  Backends may memoize
// derived immutable state (the "fused" backend's lowered schedules) behind
// their own internal synchronization; they must not keep per-call state in
// members.  The only non-const operations are the setup-time calibration
// hooks, which callers run before sharing an instance.
//
// Built-in keys (always registered):
//   "generated"     sequential interpreter, build-time generated codelets
//   "template"      sequential interpreter, compile-time template codelets
//   "instrumented"  op-counting interpreter; tallies land in the ExecContext
//   "parallel"      fork-join executor honouring BackendOptions::threads
//   "simd"          vectorized tree walk + batch-interleaved run_many with
//                   runtime CPUID dispatch (AVX-512F / AVX2 / scalar; see
//                   simd/simd_executor.hpp); threads fan out batch chunks
//   "fused"         cache-blocked stage-fused schedule engine: plans lower
//                   to flat blocked passes (core/schedule.hpp) run by the
//                   fused SIMD kernels (simd/fused_executor.hpp) — the
//                   memory-bound big-n engine; threads fan out batch chunks
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "api/exec_context.hpp"
#include "core/codelet.hpp"
#include "core/instrumented.hpp"
#include "core/plan.hpp"
#include "perf/measure.hpp"

namespace whtlab::api {

/// Knobs a factory may honour when instantiating a backend.
struct BackendOptions {
  int threads = 1;  ///< worker threads ("parallel", "simd", "fused" batches)
  core::CodeletBackend codelets = core::CodeletBackend::kGenerated;
};

/// One way of running a plan.  Instances are immutable after construction
/// (and after the optional setup-time calibration): run() and run_many() are
/// const, re-entrant, and safe to invoke concurrently — per-call mutable
/// state lives in the ExecContext the caller passes in.
class ExecutorBackend {
 public:
  virtual ~ExecutorBackend() = default;

  /// Registry key this instance was created under.
  virtual const std::string& name() const = 0;

  /// Transforms the plan.size() elements x[0], x[stride], ... in place.
  /// `ctx` supplies scratch and receives per-run outputs (op tallies);
  /// callers serving from multiple threads pass one context per thread.
  virtual void run(const core::Plan& plan, double* x, std::ptrdiff_t stride,
                   ExecContext& ctx) const = 0;

  /// Batched transform: `count` vectors, vector v at x + v*dist.  The
  /// default runs them one by one; backends with a faster batch shape
  /// override it ("simd" interleaves vectors into SIMD lanes, "parallel",
  /// "simd" and "fused" fan vectors out across threads).  Callers guarantee
  /// |dist| >= size.
  virtual void run_many(const core::Plan& plan, double* x, std::size_t count,
                        std::ptrdiff_t dist, ExecContext& ctx) const {
    for (std::size_t v = 0; v < count; ++v) {
      run(plan, x + static_cast<std::ptrdiff_t>(v) * dist, 1, ctx);
    }
  }

  /// Context-free conveniences for one-shot callers (each call uses a fresh
  /// context, so instrumented tallies are discarded and scratch is not
  /// reused — serving loops should hold a context instead).
  void run(const core::Plan& plan, double* x, std::ptrdiff_t stride = 1) const {
    ExecContext ctx;
    run(plan, x, stride, ctx);
  }
  void run_many(const core::Plan& plan, double* x, std::size_t count,
                std::ptrdiff_t dist) const {
    ExecContext ctx;
    run_many(plan, x, count, dist, ctx);
  }

  /// Doubles retired per arithmetic instruction on this backend's hot path
  /// (1 for scalar backends).  The Planner's model-driven strategies feed
  /// this into CombinedModel::vector_width so candidates are priced for the
  /// backend that will run them — custom vectorized backends get correct
  /// pricing by overriding this, not by being named "simd".
  virtual int vector_width() const { return 1; }

  /// Optional full replacement for the Planner's model-driven pricing: a
  /// callable mapping a candidate plan to this backend's model cost, or an
  /// empty function (the default) to use the CombinedModel at
  /// vector_width().  Backends whose execution does not follow the tree
  /// walk override this — "fused" prices lowered schedules (memory passes,
  /// not just butterflies; model/blocked_cost.hpp).
  virtual std::function<double(const core::Plan&)> cost_model() const {
    return {};
  }

  /// Serve-shape pricing hook for the Engine's cross-backend arbiter
  /// (api/engine.hpp): the predicted per-vector cost ratio of one
  /// run_many(plan, count) over `count` independent run() calls with
  /// `threads` workers available.  1.0 (the default) means batching buys
  /// nothing; "parallel"/"simd"/"fused" return 1/workers for their
  /// across-vector fan-out, and "simd" additionally prices the W-fold
  /// overhead amortization of its batch-interleaved regime.
  virtual double batch_factor(const core::Plan& plan, std::size_t count,
                              int threads) const {
    (void)plan;
    (void)count;
    (void)threads;
    return 1.0;
  }

  /// Host calibration of the backend's own cost model (backends without one
  /// return false / nullopt and are skipped).  run_cost_calibration measures
  /// probe plans through `measure` (cycles), fits the model's parameters,
  /// applies them to this instance, and returns the fit in a serialized form
  /// suitable for a wisdom property; apply_cost_calibration restores such a
  /// fit without measuring (the next process's fast path).  The Planner
  /// drives both when calibrate() is enabled — see api/planner.hpp.  These
  /// are the contract's only mutating operations: setup-time, before the
  /// instance is shared, never concurrent with run().
  virtual bool apply_cost_calibration(const std::string& /*serialized*/) {
    return false;
  }
  virtual std::optional<std::string> run_cost_calibration(
      const std::function<double(const core::Plan&)>& /*measure*/) {
    return std::nullopt;
  }
};

/// String-keyed factory table.  The global() registry is pre-populated with
/// the built-in backends; registration is explicit (no static-initializer
/// self-registration, which a static library would silently drop).
class BackendRegistry {
 public:
  using Factory =
      std::function<std::unique_ptr<ExecutorBackend>(const BackendOptions&)>;

  /// Process-wide registry holding the built-ins.  Thread-safe.
  static BackendRegistry& global();

  /// Registers `factory` under `name`.  Throws std::invalid_argument if the
  /// name is already taken (built-ins cannot be shadowed).
  void register_factory(const std::string& name, Factory factory);

  /// Instantiates the backend registered under `name`.  Throws
  /// std::invalid_argument listing the known names when `name` is unknown.
  std::unique_ptr<ExecutorBackend> create(const std::string& name,
                                          const BackendOptions& options = {}) const;

  bool contains(const std::string& name) const;

  /// Registered names, sorted.
  std::vector<std::string> names() const;

 private:
  BackendRegistry();  ///< registers the built-ins

  struct Impl;
  std::shared_ptr<Impl> impl_;
};

/// Runs the perf measurement protocol (warmup, batched repetitions,
/// master-copy restore; see perf/measure.hpp) with `backend` as the
/// execution engine, so e.g. "parallel" is timed on its parallel code path.
/// MeasureOptions::backend is ignored; repetitions must be >= 1.  Used by
/// Transform::measure and by the Planner's measuring strategies (candidates
/// are timed on the backend the planned Transform will actually use).  One
/// context serves the whole protocol, so scratch warms up with the plan.
perf::MeasureResult measure_with_backend(const ExecutorBackend& backend,
                                         const core::Plan& plan,
                                         const perf::MeasureOptions& options = {});

}  // namespace whtlab::api

/// Terse spelling used throughout examples and docs: wht::Planner, ...
namespace wht = whtlab::api;
