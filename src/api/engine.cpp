#include "api/engine.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <ctime>
#include <limits>
#include <set>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "api/planner.hpp"
#include "api/wisdom.hpp"
#include "model/combined_model.hpp"
#include "simd/cpu_features.hpp"
#include "util/env.hpp"
#include "util/fault.hpp"

namespace whtlab::api {

namespace {

namespace fault = util::fault;

/// The quarantine fallback: the reference backend every other execution
/// path is parity-tested against, always present in the registry.
constexpr const char* kFallbackBackend = "generated";

std::uint64_t engine_monotonic_ns() {
  struct timespec ts {};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ULL +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

bool all_finite(const double* x, std::size_t count, std::uint64_t size,
                std::ptrdiff_t dist) {
  for (std::size_t v = 0; v < count; ++v) {
    const double* vec = x + static_cast<std::ptrdiff_t>(v) * dist;
    for (std::uint64_t i = 0; i < size; ++i) {
      if (!std::isfinite(vec[i])) return false;
    }
  }
  return true;
}

/// Per-vector model cost for arbitration: the backend's own model when it
/// has one ("fused" prices memory passes), the CombinedModel at its vector
/// width otherwise — the same pricing rule the Planner applies, minus the
/// search-scoped memo (entries are priced once and cached).
double model_unit_cost(const ExecutorBackend& backend, const core::Plan& plan) {
  if (auto own = backend.cost_model()) return own(plan);
  model::CombinedModel model;
  model.vector_width = backend.vector_width();
  return model(plan);
}

}  // namespace

Engine::Engine(EngineOptions options) : options_(std::move(options)) {
  if (options_.threads < 1) {
    throw std::invalid_argument("wht::Engine: threads must be >= 1");
  }
  if (options_.max_batch < 1) {
    throw std::invalid_argument("wht::Engine: max_batch must be >= 1");
  }
  if (options_.batch_window_us < 0) {
    throw std::invalid_argument("wht::Engine: batch_window_us must be >= 0");
  }
  if (options_.quarantine_strikes < 0) {
    throw std::invalid_argument("wht::Engine: quarantine_strikes must be >= 0");
  }
  if (options_.quarantine_strikes > 0 && options_.probation_ms < 1) {
    throw std::invalid_argument("wht::Engine: probation_ms must be >= 1");
  }
  if (options_.reanchor_blend < 0.0 || options_.reanchor_blend > 1.0) {
    throw std::invalid_argument(
        "wht::Engine: reanchor_blend must be in [0, 1]");
  }
  if (options_.drift_demote_factor < 0.0) {
    throw std::invalid_argument(
        "wht::Engine: drift_demote_factor must be >= 0");
  }
  if (options_.drift_demote_factor > 0.0 && options_.probation_ms < 1) {
    throw std::invalid_argument(
        "wht::Engine: drift demotion needs probation_ms >= 1");
  }
  // WHTLAB_TELEMETRY=0 reproduces pre-telemetry behavior exactly: no
  // recording, no re-anchoring, no drift demotion.
  if (util::env_int("WHTLAB_TELEMETRY", options_.telemetry ? 1 : 0) == 0) {
    options_.telemetry = false;
  }
  if (!options_.telemetry) {
    options_.reanchor_min_samples = 0;
    options_.drift_demote_factor = 0.0;
  }
  telemetry_.set_decay_window(options_.telemetry_decay_window);
  candidates_ = options_.backends;
  if (candidates_.empty()) {
    candidates_ = {"generated", "simd", "fused"};
    if (options_.threads > 1) candidates_.push_back("parallel");
  }
  auto& registry = BackendRegistry::global();
  for (const auto& name : candidates_) {
    if (!registry.contains(name)) {
      throw std::invalid_argument("wht::Engine: unknown candidate backend '" +
                                  name + "'");
    }
    health_[name];  // breaker cells exist up front; never erased
  }
  if (options_.quarantine_strikes > 0 &&
      !registry.contains(kFallbackBackend)) {
    throw std::invalid_argument(
        "wht::Engine: quarantine needs the reference backend '" +
        std::string(kFallbackBackend) + "' in the registry");
  }
}

Engine::~Engine() {
  {
    const std::lock_guard<std::mutex> lock(queue_mutex_);
    stop_ = true;
  }
  queue_cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
  // A dispatcher that never started cannot have left queued work behind
  // (submit() starts it before enqueueing); promises die with the deque.
}

Engine::Entry& Engine::slot(int n, const std::string& backend) {
  const std::lock_guard<std::mutex> lock(entries_mutex_);
  std::unique_ptr<Entry>& cell = entries_[{n, backend}];
  if (!cell) cell = std::make_unique<Entry>();
  return *cell;  // map nodes are stable; cells are never erased
}

Engine::Entry& Engine::ensure_built(Entry& e, int n,
                                    const std::string& backend) {
  if (!e.ready.load(std::memory_order_acquire)) {
    const std::lock_guard<std::mutex> lock(e.build_mutex);
    if (!e.ready.load(std::memory_order_relaxed)) {
      build_entry(e, n, backend);  // a throw caches nothing: next touch retries
      e.ready.store(true, std::memory_order_release);
    }
  }
  return e;
}

Engine::Entry& Engine::entry(int n, const std::string& backend) {
  return ensure_built(slot(n, backend), n, backend);
}

void Engine::build_entry(Entry& e, int n, const std::string& backend) {
  Planner planner;
  planner.strategy(options_.strategy)
      .backend(backend)
      .threads(options_.threads)
      .max_leaf(options_.max_leaf);
  if (!options_.wisdom_file.empty()) {
    planner.wisdom_file(options_.wisdom_file);
    planner.calibrate(options_.calibrate);
  }
  auto transform = std::make_shared<Transform>(planner.plan(n));
  if (options_.measure_costs) {
    // Anchor to cycles so "fused" model units and CombinedModel units are
    // comparable across backends: one short measurement per (n, backend),
    // paid at first touch, cached for the Engine's lifetime.
    e.unit_cost =
        measure_with_backend(transform->backend(), transform->plan(),
                             options_.measure)
            .cycles();
  } else {
    e.unit_cost = model_unit_cost(transform->backend(), transform->plan());
  }
  if (options_.telemetry) {
    e.telem_single = &telemetry_.series(n, backend, /*batch=*/false);
    e.telem_batch = &telemetry_.series(n, backend, /*batch=*/true);
  }
  e.transform = std::move(transform);
}

std::shared_ptr<const Transform> Engine::transform(int n,
                                                   const std::string& backend) {
  return entry(n, backend).transform;
}

std::size_t Engine::prewarm() {
  if (options_.wisdom_file.empty()) return 0;
  Wisdom wisdom;
  try {
    wisdom = Wisdom::load(options_.wisdom_file);
  } catch (const std::exception&) {
    return 0;  // unreadable/corrupt wisdom: prewarm is best-effort
  }
  const std::string cpu = simd::to_string(simd::active_level());
  // Dedup to (n, backend): wisdom may record several strategies for one
  // shape, but the Engine caches exactly one Transform per pair.
  std::set<std::pair<int, std::string>> shapes;
  for (const Wisdom::Key& key : wisdom.keys()) {
    if (key.cpu != cpu) continue;  // tuned for another host/SIMD level
    if (key.n < 1 || key.n > 30) continue;
    if (std::find(candidates_.begin(), candidates_.end(), key.backend) ==
        candidates_.end()) {
      continue;
    }
    shapes.emplace(key.n, key.backend);
  }
  std::size_t built = 0;
  for (const auto& [n, backend] : shapes) {
    try {
      if (transform(n, backend) != nullptr) ++built;
    } catch (const std::exception&) {
      // A shape that cannot build now will retry on first touch; prewarm
      // must not keep the daemon from serving everything else.
    }
  }
  return built;
}

void Engine::flush_wisdom() {
  if (options_.wisdom_file.empty()) return;
  WisdomRegistry::global().flush(options_.wisdom_file);
}

Engine::Choice Engine::choose(int n, std::size_t count) {
  if (count < 1) {
    throw std::invalid_argument("wht::Engine: request count must be >= 1");
  }
  // One pass under the map lock for every cell, then per-entry fast paths
  // (a single acquire-load once built).
  std::vector<Entry*> cells;
  cells.reserve(candidates_.size());
  {
    const std::lock_guard<std::mutex> lock(entries_mutex_);
    for (const auto& name : candidates_) {
      std::unique_ptr<Entry>& cell = entries_[{n, name}];
      if (!cell) cell = std::make_unique<Entry>();
      cells.push_back(cell.get());
    }
  }
  Choice choice;
  choice.decision.cost = std::numeric_limits<double>::infinity();
  std::exception_ptr first_error;
  // Two passes at most: first honouring quarantine, then — only if the
  // breaker has sidelined every single candidate — ignoring it, because a
  // degraded answer beats refusing to serve.
  for (const bool honour_quarantine : {true, false}) {
    for (std::size_t i = 0; i < candidates_.size(); ++i) {
      const std::string& name = candidates_[i];
      if (honour_quarantine && quarantine_blocked(name)) continue;
      try {
        Entry& e = ensure_built(*cells[i], n, name);
        // Per-vector price for this shape: the first-touch anchor (scaled
        // by batch_factor for the batch path), re-anchored toward the live
        // decayed mean of the *same shape's* series once it holds enough
        // samples — so a backend whose measured-at-first-touch cost has
        // drifted is repriced from what it actually costs now.
        double per_vector = e.unit_cost;
        if (count > 1) {
          per_vector *= e.transform->backend().batch_factor(
              e.transform->plan(), count, options_.threads);
        }
        if (options_.reanchor_min_samples > 0) {
          telemetry::Accumulator* live =
              count > 1 ? e.telem_batch : e.telem_single;
          if (live != nullptr &&
              live->count() >= options_.reanchor_min_samples) {
            const double mean = live->mean();
            if (mean > 0.0) {
              per_vector = options_.reanchor_blend * mean +
                           (1.0 - options_.reanchor_blend) * per_vector;
            }
          }
        }
        const double cost = per_vector * static_cast<double>(count);
        choice.decision.candidates.push_back({name, cost});
        if (cost < choice.decision.cost) {
          choice.decision.cost = cost;
          choice.decision.backend = name;
          choice.winner = &e;
        }
      } catch (...) {
        // A broken candidate must not take the whole size down while others
        // can serve; it is absent from this ranking and retried next touch.
        if (!first_error) first_error = std::current_exception();
      }
    }
    if (!choice.decision.candidates.empty()) break;
  }
  if (choice.decision.candidates.empty()) {
    if (first_error) std::rethrow_exception(first_error);
    throw std::logic_error("wht::Engine: no candidate backends");
  }
  std::sort(choice.decision.candidates.begin(), choice.decision.candidates.end(),
            [](const Decision::Candidate& a, const Decision::Candidate& b) {
              return a.cost < b.cost;
            });
  return choice;
}

Engine::Decision Engine::arbitrate(int n, std::size_t count) {
  return choose(n, count).decision;
}

bool Engine::quarantine_blocked(const std::string& backend) {
  if (!health_armed()) return false;
  const std::lock_guard<std::mutex> lock(health_mutex_);
  const auto it = health_.find(backend);
  if (it == health_.end() || !it->second.quarantined) return false;
  // Probation elapsed: the backend stays marked quarantined but the arbiter
  // lets this request through as a live-traffic probe.  Success clears the
  // breaker; failure re-trips it immediately (the trip left strikes at the
  // threshold, so one probe failure is enough — no fresh streak required).
  return engine_monotonic_ns() < it->second.until_ns;
}

void Engine::on_backend_failure(const std::string& backend) {
  const std::lock_guard<std::mutex> lock(health_mutex_);
  Health& h = health_[backend];
  h.strikes += 1;
  if (h.strikes >= options_.quarantine_strikes) {
    h.quarantined = true;
    h.until_ns = engine_monotonic_ns() + options_.probation_ms * 1000000ULL;
    h.trips += 1;
  }
}

void Engine::on_backend_success(const std::string& backend) {
  const std::lock_guard<std::mutex> lock(health_mutex_);
  Health& h = health_[backend];
  h.strikes = 0;
  h.quarantined = false;
}

void Engine::maybe_demote_for_drift(const std::string& backend, Entry& e) {
  // The comparison needs both sides in cycles: a measured anchor and enough
  // live samples for the p99 to mean something.
  if (!options_.measure_costs || options_.reanchor_min_samples == 0) return;
  if (e.telem_single == nullptr || e.unit_cost <= 0.0) return;
  if (e.telem_single->count() < options_.reanchor_min_samples) return;
  const double p99 = e.telem_single->percentile(0.99);
  if (p99 <= options_.drift_demote_factor * e.unit_cost) return;
  {
    const std::lock_guard<std::mutex> lock(health_mutex_);
    Health& h = health_[backend];
    if (h.quarantined) return;  // already demoted; probation owns re-entry
    h.quarantined = true;
    h.until_ns = engine_monotonic_ns() + options_.probation_ms * 1000000ULL;
    h.trips += 1;
  }
  // Fresh epoch for the series: the post-probation probe is judged on new
  // observations, not on the degraded history that tripped this demotion.
  e.telem_single->reset();
}

void Engine::run_guarded(Choice& choice, int n, double* x, std::size_t count,
                         std::ptrdiff_t dist, ExecContext* ctx) {
  const std::uint64_t size = std::uint64_t{1} << n;
  const std::string backend = choice.decision.backend;
  const bool resilient =
      options_.quarantine_strikes > 0 && backend != kFallbackBackend;
  // Execution is in place, so a failed or corrupt run has already destroyed
  // the caller's input by the time the failure is visible.  The snapshot
  // is a local buffer on purpose: ctx staging may hold this very batch
  // (serve_group), and ScratchArena::acquire may relocate on growth.
  std::vector<double> snapshot;
  if (resilient) {
    snapshot.resize(size * count);
    for (std::size_t v = 0; v < count; ++v) {
      std::memcpy(snapshot.data() + v * size,
                  x + static_cast<std::ptrdiff_t>(v) * dist,
                  size * sizeof(double));
    }
  }
  const auto run = [&](const Transform& t) {
    if (count == 1) {
      if (ctx != nullptr) {
        t.execute(x, 1, *ctx);
      } else {
        t.execute(x);
      }
    } else if (ctx != nullptr) {
      t.execute_many(x, count, dist, *ctx);
    } else {
      t.execute_many(x, count, dist);
    }
  };
  telemetry::Accumulator* telem =
      options_.telemetry
          ? (count > 1 ? choice.winner->telem_batch
                       : choice.winner->telem_single)
          : nullptr;
  std::uint64_t elapsed = 0;
  bool timed = false;
  bool failed = false;
  try {
    if (fault::enabled() && fault::point("engine.exec." + backend)) {
      throw std::runtime_error("engine: backend '" + backend +
                               "' failed [fault injected]");
    }
    const std::uint64_t begin = telem ? telemetry::now_ticks() : 0;
    run(*choice.winner->transform);
    if (telem) {
      elapsed = telemetry::now_ticks() - begin;
      timed = true;
    }
    if (fault::enabled() && fault::point("engine.corrupt." + backend)) {
      x[0] = std::numeric_limits<double>::quiet_NaN();
    }
    if (resilient && options_.verify_finite &&
        !all_finite(x, count, size, dist) &&
        all_finite(snapshot.data(), count, size,
                   static_cast<std::ptrdiff_t>(size))) {
      // Finite input, non-finite output: the backend corrupted the result.
      // (Non-finite *input* legitimately yields non-finite output and is
      // the caller's business, hence the snapshot check.)
      failed = true;
    }
  } catch (...) {
    if (!resilient) throw;
    failed = true;
  }
  if (!failed) {
    // Success bookkeeping first: if this request was a post-probation
    // probe, it clears the quarantine *before* the drift check below can
    // legitimately re-trip it on fresh evidence.
    if (health_armed() && backend != kFallbackBackend) {
      on_backend_success(backend);
    }
    if (telem != nullptr && timed) {
      telem->record(elapsed / count);
      if (count == 1 && options_.drift_demote_factor > 0.0) {
        maybe_demote_for_drift(backend, *choice.winner);
      }
    }
    return;
  }
  on_backend_failure(backend);
  for (std::size_t v = 0; v < count; ++v) {
    std::memcpy(x + static_cast<std::ptrdiff_t>(v) * dist,
                snapshot.data() + v * size, size * sizeof(double));
  }
  // The reference backend's own failures propagate: there is nothing left
  // to fall back to, and masking them would hide real breakage.
  run(*entry(n, kFallbackBackend).transform);
  {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.failures += 1;
    stats_.fallbacks += count;
  }
  choice.decision.backend = kFallbackBackend;
}

void Engine::record(const std::string& backend, std::uint64_t vectors,
                    bool batch, bool from_submit) {
  const std::lock_guard<std::mutex> lock(stats_mutex_);
  stats_.vectors += vectors;
  if (batch) {
    stats_.batches += 1;
    if (from_submit && vectors >= 2) stats_.coalesced += vectors;
  } else if (!from_submit) {
    stats_.singles += 1;
  }
  stats_.per_backend[backend] += vectors;
}

void Engine::execute(int n, double* x) {
  Choice choice = choose(n, 1);
  run_guarded(choice, n, x, 1,
              static_cast<std::ptrdiff_t>(std::uint64_t{1} << n), nullptr);
  record(choice.decision.backend, 1, false, false);
}

void Engine::execute_many(int n, double* x, std::size_t count) {
  execute_many(n, x, count, static_cast<std::ptrdiff_t>(std::uint64_t{1} << n));
}

void Engine::execute_many(int n, double* x, std::size_t count,
                          std::ptrdiff_t dist) {
  if (count == 0) return;
  Choice choice = choose(n, count);
  run_guarded(choice, n, x, count, dist, nullptr);
  record(choice.decision.backend, count, count > 1, false);
}

void Engine::execute(int n, double* x, ExecContext& ctx) {
  Choice choice = choose(n, 1);
  run_guarded(choice, n, x, 1,
              static_cast<std::ptrdiff_t>(std::uint64_t{1} << n), &ctx);
  record(choice.decision.backend, 1, false, false);
}

void Engine::execute_many(int n, double* x, std::size_t count,
                          std::ptrdiff_t dist, ExecContext& ctx) {
  if (count == 0) return;
  Choice choice = choose(n, count);
  run_guarded(choice, n, x, count, dist, &ctx);
  record(choice.decision.backend, count, count > 1, false);
}

void Engine::ensure_dispatcher() {
  // Called with queue_mutex_ held.
  if (dispatcher_started_) return;
  dispatcher_started_ = true;
  dispatcher_ = std::thread([this] { dispatcher_main(); });
}

std::future<void> Engine::submit(int n, double* x) {
  if (n < 1) throw std::invalid_argument("wht::Engine: n must be >= 1");
  Pending pending;
  pending.n = n;
  pending.x = x;
  std::future<void> future = pending.promise.get_future();
  {
    const std::lock_guard<std::mutex> lock(queue_mutex_);
    if (stop_) {
      throw std::logic_error("wht::Engine: submit after shutdown");
    }
    ensure_dispatcher();
    queue_.push_back(std::move(pending));
  }
  {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.submitted += 1;
  }
  queue_cv_.notify_all();
  return future;
}

void Engine::dispatcher_main() {
  std::unique_lock<std::mutex> lock(queue_mutex_);
  for (;;) {
    queue_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stop_) return;  // drained: exit only with an empty queue
      continue;
    }
    // Coalescing window: serve the oldest request's size, merging every
    // same-size request that is queued now or arrives before the window
    // closes (or the batch fills), into one dispatch.
    const int n = queue_.front().n;
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::microseconds(options_.batch_window_us);
    auto same_n = [this, n] {
      std::size_t matching = 0;
      for (const Pending& p : queue_) matching += (p.n == n);
      return matching;
    };
    while (!stop_ && same_n() < options_.max_batch &&
           queue_cv_.wait_until(lock, deadline) != std::cv_status::timeout) {
    }
    std::vector<Pending> group;
    group.reserve(std::min<std::size_t>(options_.max_batch, queue_.size()));
    for (auto it = queue_.begin();
         it != queue_.end() && group.size() < options_.max_batch;) {
      if (it->n == n) {
        group.push_back(std::move(*it));
        it = queue_.erase(it);
      } else {
        ++it;
      }
    }
    lock.unlock();
    serve_group(std::move(group));
    lock.lock();
  }
}

namespace {

/// Ceiling on a coalesced batch's contiguous staging (16 MiB of doubles).
/// Coalescing pays two memcpys per vector to unlock the batch paths, which
/// wins exactly where per-transform overhead dominates — tiny transforms.
/// Above this the copies (and the grow-only arena they would pin for the
/// Engine's lifetime) outweigh any batch gain, so the group serves
/// per-vector in place instead.
constexpr std::uint64_t kMaxStagedDoubles = std::uint64_t{1} << 21;

}  // namespace

void Engine::serve_group(std::vector<Pending> group) {
  const int n = group.front().n;
  const std::size_t count = group.size();
  const std::uint64_t size = std::uint64_t{1} << n;
  const bool staged = count > 1 && size * count <= kMaxStagedDoubles;
  try {
    // Price the shape that will actually run: a group too large to stage
    // serves as independent single-vector requests.
    const Choice choice = choose(n, staged ? count : 1);
    if (!staged) {
      for (Pending& p : group) {
        // Per-vector copy: run_guarded may reroute ONE vector to the
        // fallback without disturbing the winner the rest still use.
        Choice per = choice;
        run_guarded(per, n, p.x, 1, static_cast<std::ptrdiff_t>(size),
                    &dispatcher_ctx_);
        record(per.decision.backend, 1, false, true);
      }
    } else {
      // Stage the scattered request buffers contiguously, run ONE batched
      // call on the arbitrated backend, scatter the results back.  The
      // staging arena belongs to the dispatcher thread and is reused across
      // batches, so steady-state serving allocates nothing.
      double* stage = dispatcher_ctx_.staging(size * count);
      for (std::size_t v = 0; v < count; ++v) {
        std::memcpy(stage + v * size, group[v].x, size * sizeof(double));
      }
      Choice batch = choice;
      run_guarded(batch, n, stage, count, static_cast<std::ptrdiff_t>(size),
                  &dispatcher_ctx_);
      for (std::size_t v = 0; v < count; ++v) {
        std::memcpy(group[v].x, stage + v * size, size * sizeof(double));
      }
      record(batch.decision.backend, count, staged, true);
    }
    for (Pending& p : group) p.promise.set_value();
  } catch (...) {
    const std::exception_ptr error = std::current_exception();
    for (Pending& p : group) p.promise.set_exception(error);
  }
}

telemetry::Snapshot Engine::telemetry_snapshot() const {
  return telemetry_.snapshot();
}

Engine::Stats Engine::stats() const {
  Stats snapshot;
  {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    snapshot = stats_;
  }
  const std::lock_guard<std::mutex> lock(health_mutex_);
  for (const auto& [name, h] : health_) {
    if (h.trips > 0) snapshot.quarantine_trips[name] = h.trips;
    if (h.quarantined) snapshot.quarantined.push_back(name);
  }
  return snapshot;
}

std::string to_string(const Engine::Stats& stats) {
  std::ostringstream out;
  out << "vectors=" << stats.vectors << " singles=" << stats.singles
      << " submitted=" << stats.submitted << " batches=" << stats.batches
      << " coalesced=" << stats.coalesced;
  if (stats.failures > 0 || stats.fallbacks > 0) {
    out << " failures=" << stats.failures << " fallbacks=" << stats.fallbacks;
  }
  for (const auto& [backend, vectors] : stats.per_backend) {
    out << ' ' << backend << '=' << vectors;
  }
  for (const auto& [backend, trips] : stats.quarantine_trips) {
    out << " trips." << backend << '=' << trips;
  }
  if (!stats.quarantined.empty()) {
    out << " quarantined=";
    for (std::size_t i = 0; i < stats.quarantined.size(); ++i) {
      out << (i == 0 ? "" : ",") << stats.quarantined[i];
    }
  }
  return out.str();
}

}  // namespace whtlab::api
