#include "api/wisdom.hpp"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "core/plan_io.hpp"
#include "util/fault.hpp"

namespace whtlab::api {

namespace {

constexpr char kHeader[] = "# whtlab wisdom v1";
constexpr char kPropertyTag[] = "@prop";

/// (mtime, size) fingerprint for change detection; (0, 0) = no file.
/// Nanosecond mtime where the platform provides it, so back-to-back
/// rewrites within one second are still noticed.
std::pair<long long, long long> file_fingerprint(const std::string& path) {
  struct stat st {};
  if (::stat(path.c_str(), &st) != 0) return {0, 0};
  long long mtime = static_cast<long long>(st.st_mtime) * 1000000000LL;
#if defined(__linux__)
  mtime += st.st_mtim.tv_nsec;
#endif
  return {mtime, static_cast<long long>(st.st_size)};
}

/// RAII advisory lock on `path`.lock (flock, exclusive).  flock blocks a
/// second acquisition even within one process (locks attach to open file
/// descriptions), so this also serializes threads that bypass the registry
/// mutex — but the registry keeps its own mutex: flock alone would let two
/// threads sharing the registry's in-memory state interleave.  Errors
/// throw: silently proceeding unlocked would reintroduce the lost-update
/// race this exists to close.
///
/// The lock file is reclaimed on release, so `*.lock` never outlives the
/// critical section.  Naive unlink is racy — a holder that unlinks after
/// unlocking can delete a *recreated* file a new holder just locked, after
/// which two processes hold "the" lock on different inodes.  The safe
/// protocol:
///   * Release unlinks WHILE STILL HOLDING the exclusive lock, then
///     unlocks.  Nobody else can be a validated holder at unlink time.
///   * Acquire revalidates after flock returns: if the path no longer
///     names the locked inode (fstat vs stat — the file was reclaimed, and
///     possibly recreated, while we slept in flock), the lock we won is on
///     an orphaned inode; drop it and retry on the fresh path.
class FileLock {
 public:
  explicit FileLock(const std::string& path) : lock_path_(path + ".lock") {
    for (;;) {
      fd_ = ::open(lock_path_.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0666);
      if (fd_ < 0) {
        throw std::runtime_error("wisdom: cannot open lock file " + lock_path_);
      }
      int rc;
      do {
        rc = ::flock(fd_, LOCK_EX);
      } while (rc != 0 && errno == EINTR);
      if (rc != 0) {
        ::close(fd_);
        throw std::runtime_error("wisdom: cannot lock " + lock_path_);
      }
      struct stat held{}, named{};
      if (::fstat(fd_, &held) == 0 && ::stat(lock_path_.c_str(), &named) == 0 &&
          held.st_ino == named.st_ino && held.st_dev == named.st_dev) {
        return;  // we hold the lock on the inode the path names
      }
      // The previous holder reclaimed (and someone may have recreated) the
      // lock file while we waited: our inode is orphaned.  Retry fresh.
      ::flock(fd_, LOCK_UN);
      ::close(fd_);
    }
  }

  FileLock(const FileLock&) = delete;
  FileLock& operator=(const FileLock&) = delete;

  ~FileLock() {
    ::unlink(lock_path_.c_str());  // before unlock — see class comment
    ::flock(fd_, LOCK_UN);
    ::close(fd_);
  }

 private:
  std::string lock_path_;
  int fd_ = -1;
};

}  // namespace

Wisdom Wisdom::load(const std::string& path) {
  Wisdom wisdom;
  std::ifstream in(path);
  if (!in) return wisdom;  // no file yet: empty wisdom, not an error

  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    if (line.rfind(kPropertyTag, 0) == 0) {
      std::string tag, key, value;
      if (!std::getline(fields, tag, '\t') ||
          !std::getline(fields, key, '\t') || key.empty()) {
        throw std::invalid_argument("wisdom: malformed property at line " +
                                    std::to_string(lineno) + " in " + path);
      }
      // The value may legitimately be empty ("@prop\tkey\t"); getline then
      // fails on the exhausted stream, which is not corruption.
      std::getline(fields, value);
      wisdom.properties_[std::move(key)] = std::move(value);
      continue;
    }
    Key key;
    std::string n_text, grammar;
    if (!std::getline(fields, key.cpu, '\t') ||
        !std::getline(fields, n_text, '\t') ||
        !std::getline(fields, key.strategy, '\t') ||
        !std::getline(fields, key.backend, '\t') ||
        !std::getline(fields, grammar)) {
      throw std::invalid_argument("wisdom: malformed line " +
                                  std::to_string(lineno) + " in " + path);
    }
    try {
      key.n = std::stoi(n_text);
      core::Plan plan = core::parse_plan(grammar);
      if (plan.log2_size() != key.n) {
        throw std::invalid_argument(
            "plan computes WHT(2^" + std::to_string(plan.log2_size()) +
            ") but the entry claims n = " + std::to_string(key.n));
      }
      // Last entry wins, matching insert()'s replace semantics — appending
      // a re-tuned line to a wisdom file supersedes the older one.
      wisdom.entries_[std::move(key)] = std::move(plan);
    } catch (const std::exception& error) {
      throw std::invalid_argument("wisdom: bad entry at line " +
                                  std::to_string(lineno) + " in " + path +
                                  ": " + error.what());
    }
  }
  return wisdom;
}

void Wisdom::save(const std::string& path) const {
  // Write-then-rename: readers (and crash recovery) only ever see either
  // the old complete file or the new complete file, never a prefix.  The
  // temp name carries the pid so concurrent processes saving the same path
  // cannot interleave writes inside one temp file.
  if (util::fault::enabled() && util::fault::point("wisdom.save")) {
    throw std::runtime_error("wisdom: cannot write " + path +
                             " [fault injected]");
  }
  const std::string temp = path + ".tmp." + std::to_string(::getpid());
  {
    std::ofstream out(temp, std::ios::trunc);
    if (!out) throw std::runtime_error("wisdom: cannot write " + temp);
    out << kHeader << "\n";
    for (const auto& [key, value] : properties_) {
      out << kPropertyTag << '\t' << key << '\t' << value << "\n";
    }
    for (const auto& [key, plan] : entries_) {
      out << key.cpu << '\t' << key.n << '\t' << key.strategy << '\t'
          << key.backend << '\t' << core::format_plan(plan) << "\n";
    }
    if (!out) throw std::runtime_error("wisdom: write failed for " + temp);
  }
  if (std::rename(temp.c_str(), path.c_str()) != 0) {
    std::remove(temp.c_str());
    throw std::runtime_error("wisdom: cannot rename " + temp + " to " + path);
  }
}

Wisdom Wisdom::save_merged(const std::string& path) const {
  // The whole read-merge-rename is one flock critical section: a concurrent
  // process's save_merged either completes before our load or starts after
  // our rename, so no writer's entries are lost.  Plain save() inside the
  // section keeps the atomic temp-file-and-rename (readers that do not take
  // the lock still never observe a torn file).
  const FileLock lock(path);
  Wisdom merged = Wisdom::load(path);
  merged.merge_from(*this);
  merged.save(path);
  return merged;
}

const core::Plan* Wisdom::lookup(const Key& key) const {
  const auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : &it->second;
}

void Wisdom::insert(const Key& key, core::Plan plan) {
  entries_[key] = std::move(plan);
}

std::optional<std::string> Wisdom::property(const std::string& key) const {
  const auto it = properties_.find(key);
  if (it == properties_.end()) return std::nullopt;
  return it->second;
}

void Wisdom::set_property(const std::string& key, std::string value) {
  properties_[key] = std::move(value);
}

void Wisdom::merge_from(const Wisdom& other) {
  for (const auto& [key, plan] : other.entries_) entries_[key] = plan;
  for (const auto& [key, value] : other.properties_) properties_[key] = value;
}

std::vector<Wisdom::Key> Wisdom::keys() const {
  std::vector<Key> out;
  out.reserve(entries_.size());
  for (const auto& [key, plan] : entries_) out.push_back(key);
  return out;
}

// --- process-wide registry --------------------------------------------------

struct WisdomRegistry::Impl {
  std::mutex mutex;
  struct CachedFile {
    Wisdom wisdom;
    std::pair<long long, long long> fingerprint{0, 0};
  };
  std::map<std::string, CachedFile> files;

  /// Under the lock: the cached state for `path`, reloaded if the file on
  /// disk changed since it was last read.
  CachedFile& fresh(const std::string& path) {
    CachedFile& cached = files[path];
    const auto fp = file_fingerprint(path);
    if (fp != cached.fingerprint) {
      cached.wisdom = Wisdom::load(path);
      cached.fingerprint = fp;
    }
    return cached;
  }

  /// Under the registry lock: merge `cached` over the current on-disk state
  /// and persist atomically.  save_merged re-reads the file under an
  /// advisory flock, so a winner flushed between our load and our save is
  /// kept, not clobbered — whether the other writer is a thread in this
  /// process or another process entirely.
  void flush(const std::string& path, CachedFile& cached) {
    cached.wisdom = cached.wisdom.save_merged(path);
    cached.fingerprint = file_fingerprint(path);
  }
};

WisdomRegistry::Impl& WisdomRegistry::impl() {
  static Impl instance;
  return instance;
}

WisdomRegistry& WisdomRegistry::global() {
  static WisdomRegistry registry;
  return registry;
}

std::optional<core::Plan> WisdomRegistry::lookup(const std::string& path,
                                                 const Wisdom::Key& key) {
  Impl& state = impl();
  const std::lock_guard<std::mutex> lock(state.mutex);
  const core::Plan* hit = state.fresh(path).wisdom.lookup(key);
  if (hit == nullptr) return std::nullopt;
  return *hit;
}

void WisdomRegistry::insert(const std::string& path, const Wisdom::Key& key,
                            core::Plan plan) {
  Impl& state = impl();
  const std::lock_guard<std::mutex> lock(state.mutex);
  Impl::CachedFile& cached = state.fresh(path);
  cached.wisdom.insert(key, std::move(plan));
  state.flush(path, cached);
}

std::optional<std::string> WisdomRegistry::property(const std::string& path,
                                                    const std::string& key) {
  Impl& state = impl();
  const std::lock_guard<std::mutex> lock(state.mutex);
  return state.fresh(path).wisdom.property(key);
}

void WisdomRegistry::set_property(const std::string& path,
                                  const std::string& key, std::string value) {
  Impl& state = impl();
  const std::lock_guard<std::mutex> lock(state.mutex);
  Impl::CachedFile& cached = state.fresh(path);
  cached.wisdom.set_property(key, std::move(value));
  state.flush(path, cached);
}

void WisdomRegistry::flush(const std::string& path) {
  Impl& state = impl();
  const std::lock_guard<std::mutex> lock(state.mutex);
  const auto it = state.files.find(path);
  if (it == state.files.end()) return;  // never touched: nothing to merge
  try {
    state.flush(path, it->second);
  } catch (const std::exception&) {
    // Best effort by contract: a full disk at drain time must not turn a
    // graceful shutdown into a crash.
  }
}

void WisdomRegistry::invalidate(const std::string& path) {
  Impl& state = impl();
  const std::lock_guard<std::mutex> lock(state.mutex);
  state.files.erase(path);
}

}  // namespace whtlab::api
