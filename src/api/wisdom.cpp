#include "api/wisdom.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "core/plan_io.hpp"

namespace whtlab::api {

namespace {

constexpr char kHeader[] = "# whtlab wisdom v1";

}  // namespace

Wisdom Wisdom::load(const std::string& path) {
  Wisdom wisdom;
  std::ifstream in(path);
  if (!in) return wisdom;  // no file yet: empty wisdom, not an error

  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    Key key;
    std::string n_text, grammar;
    if (!std::getline(fields, key.cpu, '\t') ||
        !std::getline(fields, n_text, '\t') ||
        !std::getline(fields, key.strategy, '\t') ||
        !std::getline(fields, key.backend, '\t') ||
        !std::getline(fields, grammar)) {
      throw std::invalid_argument("wisdom: malformed line " +
                                  std::to_string(lineno) + " in " + path);
    }
    try {
      key.n = std::stoi(n_text);
      core::Plan plan = core::parse_plan(grammar);
      if (plan.log2_size() != key.n) {
        throw std::invalid_argument(
            "plan computes WHT(2^" + std::to_string(plan.log2_size()) +
            ") but the entry claims n = " + std::to_string(key.n));
      }
      // Last entry wins, matching insert()'s replace semantics — appending
      // a re-tuned line to a wisdom file supersedes the older one.
      wisdom.entries_[std::move(key)] = std::move(plan);
    } catch (const std::exception& error) {
      throw std::invalid_argument("wisdom: bad entry at line " +
                                  std::to_string(lineno) + " in " + path +
                                  ": " + error.what());
    }
  }
  return wisdom;
}

void Wisdom::save(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("wisdom: cannot write " + path);
  out << kHeader << "\n";
  for (const auto& [key, plan] : entries_) {
    out << key.cpu << '\t' << key.n << '\t' << key.strategy << '\t'
        << key.backend << '\t' << core::format_plan(plan) << "\n";
  }
  if (!out) throw std::runtime_error("wisdom: write failed for " + path);
}

const core::Plan* Wisdom::lookup(const Key& key) const {
  const auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : &it->second;
}

void Wisdom::insert(const Key& key, core::Plan plan) {
  entries_[key] = std::move(plan);
}

}  // namespace whtlab::api
