// autotune — find a fast WHT plan for this machine, the WHT-package way.
//
// Uses the wht::Planner façade with Strategy::kMeasure (dynamic programming
// over measured runtime) and compares the winner against the canonical
// algorithms, reproducing the "best" line of the paper's Figure 1 for one
// size.  Strategy::kEstimate would pick a plan without a single measurement
// (the paper's concluding suggestion) — try swapping it in.
//
// Run:  ./autotune [n]           (default n = 16)
#include <cstdio>
#include <cstdlib>

#include "api/wht.hpp"
#include "core/verify.hpp"

int main(int argc, char** argv) {
  using namespace whtlab;

  const int n = argc > 1 ? std::atoi(argv[1]) : 16;
  if (n < 1 || n > 24) {
    std::fprintf(stderr, "n out of range (1..24): %d\n", n);
    return 1;
  }

  std::printf("autotuning WHT(2^%d) by dynamic programming over measured runtime...\n", n);
  perf::MeasureOptions measure;
  measure.repetitions = 5;
  auto best = wht::Planner()
                  .strategy(wht::Strategy::kMeasure)
                  .measure_options(measure)
                  .plan(n);

  std::printf("evaluated %llu candidate plans (strategy '%s')\n",
              static_cast<unsigned long long>(best.planning().evaluations),
              wht::to_string(best.planning().strategy));
  std::printf("best plan: %s\n", best.plan().to_string().c_str());
  std::printf("verification error: %.3g\n\n", core::verify_plan(best.plan()));

  // The DP's winners-by-size table: every sub-size's best plan was found on
  // the way to n (and is what larger splits were assembled from).
  std::printf("%-4s %14s  %s\n", "m", "cost (cycles)", "best plan of size 2^m");
  const auto& planning = best.planning();
  for (std::size_t m = 1; m < planning.best_by_size.size(); ++m) {
    if (!planning.best_by_size[m].valid()) continue;
    std::printf("%-4zu %14.0f  %s\n", m, planning.cost_by_size[m],
                planning.best_by_size[m].to_string().c_str());
  }
  std::printf("\n");

  perf::MeasureOptions final_measure;
  final_measure.repetitions = 9;
  const auto canonical = [&](core::Plan plan) {
    return wht::Planner().fixed(std::move(plan)).plan();
  };
  auto iterative = canonical(core::Plan::iterative(n));
  auto right = canonical(core::Plan::right_recursive(n));
  auto left = canonical(core::Plan::left_recursive(n));

  const double best_cycles = best.measure(final_measure).cycles();
  const double iter_cycles = iterative.measure(final_measure).cycles();
  const double right_cycles = right.measure(final_measure).cycles();
  const double left_cycles = left.measure(final_measure).cycles();

  // The same winning plan on the vectorized backend (runtime CPU dispatch;
  // identical output, fewer cycles).
  auto simd = wht::Planner().fixed(best.plan()).backend("simd").plan();
  const double simd_cycles = simd.measure(final_measure).cycles();

  std::printf("%-16s %14s %10s\n", "plan", "median cycles", "vs best");
  std::printf("%-16s %14.0f %9.2fx\n", "best (DP)", best_cycles, 1.0);
  std::printf("%-16s %14.0f %9.2fx\n", "best on simd", simd_cycles,
              simd_cycles / best_cycles);
  std::printf("%-16s %14.0f %9.2fx\n", "iterative", iter_cycles,
              iter_cycles / best_cycles);
  std::printf("%-16s %14.0f %9.2fx\n", "right recursive", right_cycles,
              right_cycles / best_cycles);
  std::printf("%-16s %14.0f %9.2fx\n", "left recursive", left_cycles,
              left_cycles / best_cycles);
  return 0;
}
