// autotune — find a fast WHT plan for this machine, the WHT-package way.
//
// Runs the dynamic-programming search with measured runtime as cost and
// compares the winner against the canonical algorithms, reproducing the
// "best" line of the paper's Figure 1 for one size.
//
// Run:  ./autotune [n]           (default n = 16)
#include <cstdio>
#include <cstdlib>

#include "core/verify.hpp"
#include "perf/measure.hpp"
#include "search/dp_search.hpp"

int main(int argc, char** argv) {
  using namespace whtlab;

  const int n = argc > 1 ? std::atoi(argv[1]) : 16;
  if (n < 1 || n > 24) {
    std::fprintf(stderr, "n out of range (1..24): %d\n", n);
    return 1;
  }

  std::printf("autotuning WHT(2^%d) by dynamic programming over measured runtime...\n", n);
  perf::MeasureOptions measure;
  measure.repetitions = 5;
  search::DpOptions options;
  options.max_parts = n <= 12 ? 3 : 2;
  const auto result = search::dp_search(
      n,
      [&measure](const core::Plan& plan) {
        return perf::measure_plan(plan, measure).cycles();
      },
      options);

  std::printf("evaluated %llu candidate plans\n",
              static_cast<unsigned long long>(result.evaluations));
  std::printf("best plan: %s\n", result.plan.to_string().c_str());
  std::printf("verification error: %.3g\n\n", core::verify_plan(result.plan));

  perf::MeasureOptions final_measure;
  final_measure.repetitions = 9;
  const double best = perf::measure_plan(result.plan, final_measure).cycles();
  const double iter =
      perf::measure_plan(core::Plan::iterative(n), final_measure).cycles();
  const double right =
      perf::measure_plan(core::Plan::right_recursive(n), final_measure).cycles();
  const double left =
      perf::measure_plan(core::Plan::left_recursive(n), final_measure).cycles();

  std::printf("%-16s %14s %10s\n", "plan", "median cycles", "vs best");
  std::printf("%-16s %14.0f %9.2fx\n", "best (DP)", best, 1.0);
  std::printf("%-16s %14.0f %9.2fx\n", "iterative", iter, iter / best);
  std::printf("%-16s %14.0f %9.2fx\n", "right recursive", right, right / best);
  std::printf("%-16s %14.0f %9.2fx\n", "left recursive", left, left / best);

  // Per-size table: the DP's intermediate winners (useful for seeing where
  // base-case sizes stop growing and splits begin).
  std::printf("\nDP winners by size:\n");
  for (int m = 1; m <= n; ++m) {
    std::printf("  n=%2d  %10.0f cycles  %s\n", m,
                result.cost_by_size[static_cast<std::size_t>(m)],
                result.best_by_size[static_cast<std::size_t>(m)].to_string().c_str());
  }
  return 0;
}
