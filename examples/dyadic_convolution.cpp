// dyadic_convolution — fast XOR-convolution via the WHT.
//
// The WHT diagonalizes dyadic (XOR-indexed) convolution the way the DFT
// diagonalizes circular convolution:
//
//   (x *_xor y)[k] = sum_i x[i] * y[i ^ k]
//                  = (1/N) * WHT( WHT(x) .* WHT(y) )[k]
//
// Used in spectral hashing, Walsh spectral analysis of Boolean functions,
// and as the "butterfly trick" behind fast dyadic filters.  The example
// computes a convolution both ways and cross-checks, then compares runtime
// of the O(N^2) definition vs the O(N log N) transform route.
//
// Run:  ./dyadic_convolution [n]        (default n = 12)
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "api/wht.hpp"
#include "util/aligned_buffer.hpp"
#include "util/rng.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point begin) {
  return std::chrono::duration<double>(Clock::now() - begin).count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace whtlab;

  const int n = argc > 1 ? std::atoi(argv[1]) : 12;
  if (n < 2 || n > 22) {
    std::fprintf(stderr, "usage: %s [n 2..22]\n", argv[0]);
    return 1;
  }
  const std::uint64_t size = std::uint64_t{1} << n;

  std::vector<double> x(size);
  std::vector<double> y(size);
  util::Rng rng(7);
  for (auto& v : x) v = rng.uniform(-1.0, 1.0);
  for (auto& v : y) v = rng.uniform(-1.0, 1.0);

  // Direct O(N^2) definition (skip for very large N; verify a slice).
  const bool full_check = n <= 13;
  const std::uint64_t check_count = full_check ? size : 256;
  std::vector<double> direct(check_count);
  const auto direct_begin = Clock::now();
  for (std::uint64_t k = 0; k < check_count; ++k) {
    double acc = 0.0;
    for (std::uint64_t i = 0; i < size; ++i) acc += x[i] * y[i ^ k];
    direct[k] = acc;
  }
  const double direct_time =
      seconds_since(direct_begin) * (full_check ? 1.0 : static_cast<double>(size) / check_count);

  // Transform route: conv = WHT(WHT(x) .* WHT(y)) / N.  Plan once through
  // the façade (model-tuned, no measurement) and batch the two forward
  // transforms with execute_many.
  auto transform = wht::Planner().strategy(wht::Strategy::kEstimate).plan(n);
  util::AlignedBuffer batch(2 * size);  // fx = batch[0..N), fy = batch[N..2N)
  double* fx = batch.data();
  double* fy = batch.data() + size;
  for (std::uint64_t i = 0; i < size; ++i) {
    fx[i] = x[i];
    fy[i] = y[i];
  }
  const auto fast_begin = Clock::now();
  transform.execute_many(batch.data(), 2);
  for (std::uint64_t i = 0; i < size; ++i) fx[i] *= fy[i];
  transform.execute(fx);
  const double scale = 1.0 / static_cast<double>(size);
  for (std::uint64_t i = 0; i < size; ++i) fx[i] *= scale;
  const double fast_time = seconds_since(fast_begin);

  double worst = 0.0;
  for (std::uint64_t k = 0; k < check_count; ++k) {
    worst = std::max(worst, std::fabs(fx[k] - direct[k]));
  }
  std::printf("N = %llu\n", static_cast<unsigned long long>(size));
  std::printf("max |direct - fast| over %llu checked entries: %.3g\n",
              static_cast<unsigned long long>(check_count), worst);
  std::printf("direct O(N^2): %s%.4f s\n", full_check ? "" : "~(extrapolated) ",
              direct_time);
  std::printf("via WHT      : %.4f s  (%.0fx faster)\n", fast_time,
              direct_time / fast_time);
  return worst < 1e-6 * static_cast<double>(size) ? 0 : 1;
}
