// Concurrent serving with wht::Engine.
//
// One process-wide Engine, many client threads, three request shapes:
// big single vectors, tiny-n batches, and async submits that coalesce.
// The Engine plans each (size, backend) once, shares the immutable
// Transforms across every thread, and routes each request to the backend
// its cost model says is cheapest *for that shape* — watch the decisions
// it prints.
//
//   ./serve [clients] [requests-per-client]
#include <cstdio>
#include <cstdlib>
#include <future>
#include <thread>
#include <vector>

#include "api/wht.hpp"
#include "util/rng.hpp"

namespace {

using whtlab::util::random_vector;

void print_decision(const char* label, const wht::Engine::Decision& decision) {
  std::printf("%-28s -> %-10s (", label, decision.backend.c_str());
  for (std::size_t i = 0; i < decision.candidates.size(); ++i) {
    std::printf("%s%s=%.3g", i ? ", " : "",
                decision.candidates[i].backend.c_str(),
                decision.candidates[i].cost);
  }
  std::printf(")\n");
}

}  // namespace

int main(int argc, char** argv) {
  const int clients = argc > 1 ? std::atoi(argv[1]) : 4;
  const int requests = argc > 2 ? std::atoi(argv[2]) : 16;

  wht::Engine engine;  // defaults: kEstimate plans, measured cost anchors

  // The arbiter prices every candidate per request shape.
  print_decision("single vector, n = 18", engine.arbitrate(18, 1));
  print_decision("batch of 32, n = 6", engine.arbitrate(6, 32));

  // Serve a mixed load from `clients` threads — one shared Engine, no locks.
  std::vector<std::thread> pool;
  for (int c = 0; c < clients; ++c) {
    pool.emplace_back([&engine, requests, c]() {
      auto big = random_vector(std::size_t{1} << 18, 1 + c);
      auto tiny = random_vector((std::size_t{1} << 6) * 32, 100 + c);
      auto async = random_vector(std::size_t{1} << 10, 200 + c);
      for (int r = 0; r < requests; ++r) {
        engine.execute(18, big.data());            // arbitrated single
        engine.execute_many(6, tiny.data(), 32);   // arbitrated batch
        engine.submit(10, async.data()).get();     // coalesces under load
      }
    });
  }
  for (auto& thread : pool) thread.join();

  const auto stats = engine.stats();
  std::printf("served %llu vectors (%llu batched dispatches, "
              "%llu submits coalesced)\n",
              (unsigned long long)stats.vectors,
              (unsigned long long)stats.batches,
              (unsigned long long)stats.coalesced);
  for (const auto& [backend, vectors] : stats.per_backend) {
    std::printf("  %-10s %llu vectors\n", backend.c_str(),
                (unsigned long long)vectors);
  }
  return 0;
}
