// Concurrent serving with wht::Engine.
//
// One process-wide Engine, many client threads, three request shapes:
// big single vectors, tiny-n batches, and async submits that coalesce.
// The Engine plans each (size, backend) once, shares the immutable
// Transforms across every thread, and routes each request to the backend
// its cost model says is cheapest *for that shape* — watch the decisions
// it prints.
//
//   ./serve --clients 8 --requests 32 --single-n 20 --batch-n 6
#include <cstdio>
#include <thread>
#include <vector>

#include "api/wht.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

namespace {

using whtlab::util::random_vector;

void print_decision(const char* label, const wht::Engine::Decision& decision) {
  std::printf("%-28s -> %-10s (", label, decision.backend.c_str());
  for (std::size_t i = 0; i < decision.candidates.size(); ++i) {
    std::printf("%s%s=%.3g", i ? ", " : "",
                decision.candidates[i].backend.c_str(),
                decision.candidates[i].cost);
  }
  std::printf(")\n");
}

}  // namespace

int main(int argc, char** argv) {
  whtlab::util::Cli cli;
  cli.add_flag("clients", "serving threads sharing the Engine", "4");
  cli.add_flag("requests", "rounds per client (each: single+batch+submit)",
               "16");
  cli.add_flag("single-n", "single-vector request size (log2)", "18");
  cli.add_flag("batch-n", "batched request size (log2)", "6");
  cli.add_flag("batch", "vectors per batched request", "32");
  cli.add_flag("submit-n", "async submit() request size (log2)", "10");
  cli.add_flag("wisdom", "wisdom file for first-touch plans", "");
  if (!cli.parse(argc, argv)) return 2;

  const int clients = static_cast<int>(cli.get_int("clients", 4));
  const int requests = static_cast<int>(cli.get_int("requests", 16));
  const int single_n = static_cast<int>(cli.get_int("single-n", 18));
  const int batch_n = static_cast<int>(cli.get_int("batch-n", 6));
  const auto batch = static_cast<std::size_t>(cli.get_int("batch", 32));
  const int submit_n = static_cast<int>(cli.get_int("submit-n", 10));

  wht::EngineOptions options;  // defaults: kEstimate plans, measured anchors
  options.wisdom_file = cli.get("wisdom");
  wht::Engine engine(options);

  // The arbiter prices every candidate per request shape.
  char label[64];
  std::snprintf(label, sizeof(label), "single vector, n = %d", single_n);
  print_decision(label, engine.arbitrate(single_n, 1));
  std::snprintf(label, sizeof(label), "batch of %zu, n = %d", batch, batch_n);
  print_decision(label, engine.arbitrate(batch_n, batch));

  // Serve a mixed load from `clients` threads — one shared Engine, no locks.
  std::vector<std::thread> pool;
  for (int c = 0; c < clients; ++c) {
    pool.emplace_back([&engine, requests, c, single_n, batch_n, batch,
                       submit_n]() {
      auto big = random_vector(std::size_t{1} << single_n, 1 + c);
      auto tiny = random_vector((std::size_t{1} << batch_n) * batch, 100 + c);
      auto async = random_vector(std::size_t{1} << submit_n, 200 + c);
      for (int r = 0; r < requests; ++r) {
        engine.execute(single_n, big.data());           // arbitrated single
        engine.execute_many(batch_n, tiny.data(), batch);  // arbitrated batch
        engine.submit(submit_n, async.data()).get();    // coalesces under load
      }
    });
  }
  for (auto& thread : pool) thread.join();

  const auto stats = engine.stats();
  std::printf("engine: %s\n", whtlab::api::to_string(stats).c_str());
  std::printf("served %llu vectors (%llu batched dispatches, "
              "%llu submits coalesced)\n",
              (unsigned long long)stats.vectors,
              (unsigned long long)stats.batches,
              (unsigned long long)stats.coalesced);
  return 0;
}
