// quickstart — the 5-minute tour of the whtlab public API.
//
//   1. plan a transform through the wht::Planner façade (here: a fixed plan
//      from the grammar; see autotune.cpp for the self-tuning strategies),
//   2. execute it in place on a vector,
//   3. verify against the dense definition,
//   4. ask the performance models what they think of the plan.
//
// Run:  ./quickstart [plan-string]
// e.g.  ./quickstart 'split[small[4],small[4]]'
#include <cstdio>

#include "api/wht.hpp"
#include "cachesim/trace_runner.hpp"
#include "core/verify.hpp"
#include "model/cache_model.hpp"
#include "model/instruction_model.hpp"
#include "util/aligned_buffer.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace whtlab;

  // 1. A plan is a divide-and-conquer recipe for WHT(2^n).  The Planner
  //    façade turns one into an executable Transform; strategy kFixed takes
  //    the plan verbatim, the search strategies (kEstimate, kMeasure, ...)
  //    find one for you.
  const std::string text =
      argc > 1 ? argv[1] : "split[small[2],split[small[3],small[3]]]";
  wht::Transform transform;
  try {
    transform = wht::Planner().fixed(text).plan();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bad plan '%s': %s\n", text.c_str(), e.what());
    return 1;
  }
  const core::Plan& plan = transform.plan();
  std::printf("plan        : %s\n", plan.to_string().c_str());
  std::printf("transform   : WHT(2^%d) = WHT(%llu), backend '%s'\n",
              transform.log2_size(),
              static_cast<unsigned long long>(transform.size()),
              transform.backend_name().c_str());
  std::printf("tree        : %d nodes, %d leaves, depth %d\n",
              plan.node_count(), plan.leaf_count(), plan.depth());

  // 2. Execute in place on a random vector.
  util::AlignedBuffer x(transform.size());
  util::Rng rng(42);
  for (auto& v : x) v = rng.uniform(-1.0, 1.0);
  const double x0 = x[0];
  transform.execute(x.data());
  std::printf("x[0] before : %+.6f   after: %+.6f\n", x0, x[0]);

  // 3. Every plan computes the same transform; check against the reference.
  const double err = core::verify_plan(plan);
  std::printf("max |error| vs reference: %.3g\n", err);

  // 4. The models are computed from the plan description alone — no
  //    execution needed (the paper's central point).
  std::printf("instruction model       : %.6g abstract instructions\n",
              model::instruction_count(plan));
  std::printf("cache model (64KB DM)   : %llu misses\n",
              static_cast<unsigned long long>(model::direct_mapped_misses(
                  plan, model::CacheModelConfig::opteron_l1())));
  const auto sim =
      cachesim::simulate_plan(plan, cachesim::CacheConfig::opteron_l1());
  std::printf("cache simulator (2-way) : %llu misses / %llu accesses\n",
              static_cast<unsigned long long>(sim.l1_misses),
              static_cast<unsigned long long>(sim.accesses));

  // ...and real measured time, for comparison (driven through the backend
  // the Transform owns).
  const auto measured = transform.measure();
  std::printf("measured median cycles  : %.0f (inner loop %d)\n",
              measured.cycles(), measured.inner_loop);
  return 0;
}
