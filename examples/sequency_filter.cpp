// sequency_filter — WHT-domain signal denoising, a classic DSP use of the
// transform (the application domain the paper's introduction motivates).
//
// A piecewise-constant signal is sparse in the Walsh (sequency) basis.  We
// add noise, take the WHT with an autotuned-style plan, keep only the
// largest sequency coefficients, invert (WHT is its own inverse up to 1/N),
// and report the SNR improvement.
//
// Run:  ./sequency_filter [n] [keep_fraction]     (default n = 12, 0.03)
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "api/wht.hpp"
#include "core/sequency.hpp"
#include "util/aligned_buffer.hpp"
#include "util/rng.hpp"

namespace {

double snr_db(const std::vector<double>& clean, const double* noisy) {
  double signal = 0.0;
  double noise = 0.0;
  for (std::size_t i = 0; i < clean.size(); ++i) {
    signal += clean[i] * clean[i];
    const double d = noisy[i] - clean[i];
    noise += d * d;
  }
  return 10.0 * std::log10(signal / noise);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace whtlab;

  const int n = argc > 1 ? std::atoi(argv[1]) : 12;
  const double keep = argc > 2 ? std::atof(argv[2]) : 0.03;
  if (n < 4 || n > 22 || keep <= 0.0 || keep > 1.0) {
    std::fprintf(stderr, "usage: %s [n 4..22] [keep_fraction (0,1]]\n", argv[0]);
    return 1;
  }
  const std::uint64_t size = std::uint64_t{1} << n;

  // Piecewise-constant "square wave-ish" signal: sparse in the Walsh basis.
  std::vector<double> clean(size);
  util::Rng rng(99);
  const int segments = 8;
  std::vector<double> level(segments);
  for (auto& v : level) v = rng.uniform(-2.0, 2.0);
  for (std::uint64_t t = 0; t < size; ++t) {
    clean[t] = level[static_cast<std::size_t>(t * segments / size)];
  }

  // Add white noise.
  util::AlignedBuffer noisy(size);
  for (std::uint64_t t = 0; t < size; ++t) {
    noisy[t] = clean[t] + rng.uniform(-0.8, 0.8);
  }
  std::printf("input SNR : %6.2f dB\n", snr_db(clean, noisy.data()));

  // Forward WHT, planned once by the model-based autotuner (kEstimate picks
  // without measuring; it typically lands on a balanced big-leaf plan).
  auto transform = wht::Planner().strategy(wht::Strategy::kEstimate).plan(n);
  transform.execute(noisy.data());

  // Reorder to sequency, keep the strongest `keep` fraction, zero the rest.
  std::vector<double> spectrum(size);
  core::to_sequency_order(noisy.data(), spectrum.data(), n);
  std::vector<double> magnitude(size);
  for (std::uint64_t i = 0; i < size; ++i) magnitude[i] = std::fabs(spectrum[i]);
  std::vector<double> sorted = magnitude;
  std::sort(sorted.begin(), sorted.end());
  const double threshold =
      sorted[static_cast<std::size_t>(static_cast<double>(size) * (1.0 - keep))];
  std::uint64_t kept = 0;
  for (std::uint64_t i = 0; i < size; ++i) {
    if (magnitude[i] < threshold) {
      spectrum[i] = 0.0;
    } else {
      ++kept;
    }
  }
  std::printf("kept %llu of %llu sequency coefficients (%.1f%%)\n",
              static_cast<unsigned long long>(kept),
              static_cast<unsigned long long>(size),
              100.0 * static_cast<double>(kept) / static_cast<double>(size));

  // Back to Hadamard order, inverse transform (WHT/N), compare.
  core::from_sequency_order(spectrum.data(), noisy.data(), n);
  transform.execute(noisy.data());
  const double scale = 1.0 / static_cast<double>(size);
  for (std::uint64_t i = 0; i < size; ++i) noisy[i] *= scale;

  std::printf("output SNR: %6.2f dB\n", snr_db(clean, noisy.data()));
  return 0;
}
