// model_pruning — the paper's workflow end to end.
//
// 1. Sample random WHT algorithms (recursive split uniform).
// 2. Compute the instruction-count and cache-miss models from the plan
//    descriptions alone (no execution).
// 3. Measure real runtimes; report the model-runtime correlations.
// 4. Run a model-pruned search through the façade (Strategy::kSampled:
//    measure only the best decile by model) and compare against measuring
//    every candidate (keep_fraction = 1.0, same seed, so the candidate set
//    is identical) — the measurement budget saved is the paper's payoff.
//
// Run:  ./model_pruning [n] [candidates]        (default n = 13, 150)
#include <cstdio>
#include <cstdlib>

#include "api/wht.hpp"
#include "perf/events.hpp"
#include "search/sampler.hpp"
#include "stats/correlation.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace whtlab;

  const int n = argc > 1 ? std::atoi(argv[1]) : 13;
  const int candidates = argc > 2 ? std::atoi(argv[2]) : 150;
  if (n < 4 || n > 20 || candidates < 10) {
    std::fprintf(stderr, "usage: %s [n 4..20] [candidates >= 10]\n", argv[0]);
    return 1;
  }

  std::printf("== step 1-3: sample %d plans of size 2^%d, model + measure ==\n",
              candidates, n);
  util::Rng rng(2007);
  search::RecursiveSplitSampler sampler(core::kMaxUnrolled);
  perf::EventConfig events;
  events.measure.repetitions = 5;
  std::vector<double> cycles;
  std::vector<double> instructions;
  std::vector<double> misses;
  for (int i = 0; i < candidates; ++i) {
    const core::Plan plan = sampler.sample(n, rng);
    const auto counts = perf::collect_events(plan, events);
    cycles.push_back(counts.cycles);
    instructions.push_back(counts.instructions);
    misses.push_back(static_cast<double>(counts.l1_misses));
  }
  std::printf("rho(instructions, cycles) = %.3f\n",
              stats::pearson(instructions, cycles));
  std::printf("rho(misses, cycles)       = %.3f\n",
              stats::pearson(misses, cycles));

  std::printf("\n== step 4: model-pruned search vs measuring everything ==\n");
  perf::MeasureOptions measure;
  measure.repetitions = 5;
  wht::Planner planner;
  planner.strategy(wht::Strategy::kSampled)
      .samples(candidates)
      .seed(2007)
      .measure_options(measure);

  auto pruned = planner.keep_fraction(0.10).plan(n);
  auto full = planner.keep_fraction(1.0).plan(n);

  const auto measured = pruned.planning().evaluations;
  const auto total = full.planning().evaluations;
  std::printf("measured %llu plans, pruned %llu (%.0f%% of measurements saved)\n",
              static_cast<unsigned long long>(measured),
              static_cast<unsigned long long>(total - measured),
              100.0 * static_cast<double>(total - measured) /
                  static_cast<double>(total));
  std::printf("best plan found   : %s\n", pruned.plan().to_string().c_str());
  std::printf("its cycles        : %.0f\n", pruned.planning().cost);
  std::printf("full-search cycles: %.0f  (pruned search is %.2fx off optimal)\n",
              full.planning().cost,
              pruned.planning().cost / full.planning().cost);
  return 0;
}
