// ipc_client — the two-call zero-copy happy path against a running whtd.
//
//   whtd &                            # terminal 1: the daemon
//   ./ipc_client                      # terminal 2: stage + transform
//
// The client maps the daemon's shm segment, stages vectors straight into
// its slot's arena (no copy crosses the process boundary), and blocks on
// the response ring:
//
//   auto client = whtlab::ipc::Client::connect({.endpoint = "whtlab"});
//   double* x = client.stage(n);           // 1: shm pointer — write here
//   auto status = client.transform(n, x);  // 2: result is in x
//
// --verify computes the same transforms in-process and requires bit-exact
// agreement — the CI smoke job runs several of these concurrently against
// one daemon.  Exit: 0 ok, 1 mismatch/error, 3 daemon unreachable.
//
// --reconnect opts into the client's fault-tolerant mode (the chaos smoke
// job pairs it with a SIGKILL-restarted `whtd --supervise`): requests ride
// out daemon crashes via auto-reconnect + replay, typed non-OK statuses are
// counted but tolerated, a bit-exactness failure is always fatal, and the
// run succeeds iff at least one request completed verified.
//
// --strict tightens that to the zero-downtime contract (the rolling-upgrade
// smoke job pairs it with a SIGHUP-cycled `whtd --supervise`): EVERY
// request must complete kOk — a planned restart that costs even one typed
// failure fails the run.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "api/wht.hpp"
#include "ipc/client.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace whtlab;

  util::Cli cli;
  cli.add_flag("endpoint", "daemon endpoint to connect to", "whtlab");
  cli.add_flag("n", "transform size (log2)", "10");
  cli.add_flag("count", "vectors per request", "1");
  cli.add_flag("requests", "round trips to serve", "8");
  cli.add_flag("seed", "rng seed for the staged inputs", "1");
  cli.add_flag("wait-ms", "wait this long for the daemon to come up", "2000");
  cli.add_flag("pace-ms", "sleep between requests (spread a chaos run)", "0");
  cli.add_flag("deadline-ms",
               "per-request execution deadline (0 = none; a daemon with "
               "shedding armed answers kTimeout past it)", "0");
  cli.add_bool("verify", "check results bit-exact against in-process plans");
  cli.add_bool("reconnect", "auto-reconnect and replay across daemon restarts");
  cli.add_bool("strict",
               "zero failed requests allowed (rolling-restart contract)");
  if (!cli.parse(argc, argv)) return 2;

  const std::string endpoint = cli.get("endpoint");
  const int n = static_cast<int>(cli.get_int("n", 10));
  const auto count = static_cast<std::size_t>(cli.get_int("count", 1));
  const int requests = static_cast<int>(cli.get_int("requests", 8));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const auto pace_ms = cli.get_int("pace-ms", 0);
  const bool verify = cli.has("verify");
  const bool reconnect = cli.has("reconnect");
  const bool strict = cli.has("strict");
  const std::size_t doubles = count << n;

  if (!ipc::Client::wait_for_daemon(
          endpoint, static_cast<std::uint64_t>(cli.get_int("wait-ms", 2000)))) {
    std::fprintf(stderr, "ipc_client: no daemon at endpoint '%s'\n",
                 endpoint.c_str());
    return 3;
  }

  try {
    ipc::Client::Options copts;
    copts.endpoint = endpoint;
    copts.reconnect = reconnect;
    copts.request_deadline_ms =
        static_cast<std::uint64_t>(cli.get_int("deadline-ms", 0));
    auto client = ipc::Client::connect(copts);
    std::printf("connected: slot %d, arena %zu doubles\n", client.slot_index(),
                client.arena_capacity());

    // The in-process reference the daemon must agree with bit for bit (all
    // backends compute the bit-identical butterfly; see ROADMAP).
    wht::Transform reference;
    if (verify) reference = wht::Planner().plan(n);

    int ok = 0;
    int failed = 0;
    for (int r = 0; r < requests; ++r) {
      if (pace_ms > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(pace_ms));
      }
      double* x = nullptr;
      try {
        x = client.stage(n, count);                // call 1: stage in shm
      } catch (const ipc::Error& e) {
        // In reconnect mode a typed staging failure during an outage is an
        // answer, not a crash; without it, it ends the run as before.
        if (!reconnect) throw;
        std::fprintf(stderr, "ipc_client: request %d stage failed: %s\n", r,
                     ipc::to_string(e.status()));
        ++failed;
        continue;
      }
      const auto input = util::random_vector(
          doubles, seed + static_cast<std::uint64_t>(r));
      std::memcpy(x, input.data(), doubles * sizeof(double));

      const ipc::Status status = client.transform(n, x, count);  // call 2
      if (status != ipc::Status::kOk) {
        std::fprintf(stderr, "ipc_client: request %d failed: %s\n", r,
                     ipc::to_string(status));
        if (!reconnect) return 1;
        ++failed;
        continue;
      }

      if (verify) {
        std::vector<double> expected = input;
        for (std::size_t v = 0; v < count; ++v) {
          reference.execute(expected.data() + (v << n));
        }
        if (std::memcmp(x, expected.data(), doubles * sizeof(double)) != 0) {
          std::fprintf(stderr,
                       "ipc_client: request %d NOT bit-exact vs in-process\n",
                       r);
          return 1;  // corruption is fatal in every mode
        }
      }
      ++ok;
    }

    if (strict && failed > 0) {
      std::fprintf(stderr,
                   "ipc_client: strict mode — %d typed failure(s), zero "
                   "allowed\n",
                   failed);
      return 1;
    }
    if (reconnect && ok == 0) {
      std::fprintf(stderr,
                   "ipc_client: every request failed (%d typed failures)\n",
                   failed);
      return 1;
    }
    const auto stats = client.stats();
    std::printf("%d/%d requests ok (%zu vectors each)%s, %llu reconnects\n",
                ok, requests, count, verify ? ", all bit-exact" : "",
                static_cast<unsigned long long>(client.reconnects()));
    std::printf("daemon: requests=%llu vectors=%llu throttled=%llu "
                "reclaimed=%llu\n",
                (unsigned long long)stats.requests,
                (unsigned long long)stats.vectors,
                (unsigned long long)stats.throttled,
                (unsigned long long)stats.reclaimed);
  } catch (const ipc::Error& e) {
    std::fprintf(stderr, "ipc_client: %s\n", e.what());
    return e.status() == ipc::Status::kDaemonGone ? 3 : 1;
  }
  return 0;
}
