#include "stats/linear_solve.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace whtlab::stats {
namespace {

TEST(SolveLinear, TwoByTwo) {
  // 2x + y = 5; x - y = 1  ->  x = 2, y = 1.
  const auto x = solve_linear({2, 1, 1, -1}, {5, 1});
  ASSERT_EQ(x.size(), 2u);
  EXPECT_NEAR(x[0], 2.0, 1e-12);
  EXPECT_NEAR(x[1], 1.0, 1e-12);
}

TEST(SolveLinear, RequiresPivoting) {
  // Leading zero forces a row swap.
  const auto x = solve_linear({0, 1, 1, 0}, {3, 7});
  EXPECT_NEAR(x[0], 7.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(SolveLinear, Identity) {
  const auto x = solve_linear({1, 0, 0, 0, 1, 0, 0, 0, 1}, {4, 5, 6});
  EXPECT_NEAR(x[0], 4.0, 1e-12);
  EXPECT_NEAR(x[1], 5.0, 1e-12);
  EXPECT_NEAR(x[2], 6.0, 1e-12);
}

TEST(SolveLinear, RandomSystemRoundTrips) {
  util::Rng rng(1);
  const std::size_t n = 6;
  std::vector<double> a(n * n);
  std::vector<double> truth(n);
  for (auto& v : a) v = rng.uniform(-1, 1);
  for (auto& v : truth) v = rng.uniform(-5, 5);
  std::vector<double> b(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) b[i] += a[i * n + j] * truth[j];
  }
  const auto x = solve_linear(a, b);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], truth[i], 1e-9);
}

TEST(SolveLinear, SingularThrows) {
  EXPECT_THROW(solve_linear({1, 2, 2, 4}, {1, 2}), std::domain_error);
  EXPECT_THROW(solve_linear({1, 2, 3}, {1, 2}), std::invalid_argument);
}

TEST(LeastSquares, ExactFitRecovered) {
  // y = 3*f0 - 2*f1, no noise.
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  util::Rng rng(2);
  for (int i = 0; i < 50; ++i) {
    const double f0 = rng.uniform(0, 10);
    const double f1 = rng.uniform(0, 10);
    x.push_back({f0, f1});
    y.push_back(3 * f0 - 2 * f1);
  }
  const auto w = least_squares(x, y);
  EXPECT_NEAR(w[0], 3.0, 1e-5);
  EXPECT_NEAR(w[1], -2.0, 1e-5);
}

TEST(LeastSquares, NoisyFitApproximates) {
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  util::Rng rng(3);
  for (int i = 0; i < 20000; ++i) {
    const double f0 = rng.uniform(0, 1);
    x.push_back({f0, 1.0});
    y.push_back(5 * f0 + 2 + rng.uniform(-0.1, 0.1));
  }
  const auto w = least_squares(x, y);
  EXPECT_NEAR(w[0], 5.0, 0.02);
  EXPECT_NEAR(w[1], 2.0, 0.02);
}

TEST(LeastSquares, RidgeHandlesCollinearFeatures) {
  // Second feature is a copy of the first: plain normal equations are
  // singular; ridge must keep this solvable with w0 + w1 ~ true weight.
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  util::Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    const double f = rng.uniform(1, 2);
    x.push_back({f, f});
    y.push_back(4 * f);
  }
  const auto w = least_squares(x, y, 1e-6);
  EXPECT_NEAR(w[0] + w[1], 4.0, 1e-3);
}

TEST(LeastSquares, Validation) {
  EXPECT_THROW(least_squares({}, {}), std::invalid_argument);
  EXPECT_THROW(least_squares({{1, 2}}, {1.0}), std::invalid_argument);  // under-determined
  EXPECT_THROW(least_squares({{1}, {2}}, {1.0}), std::invalid_argument);  // size mismatch
}

}  // namespace
}  // namespace whtlab::stats
