#include "stats/histogram.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace whtlab::stats {
namespace {

TEST(Histogram, FiftyBinsMatchPaperSetup) {
  util::Rng rng(1);
  std::vector<double> xs;
  for (int i = 0; i < 10000; ++i) xs.push_back(rng.uniform(0, 1));
  const Histogram h(xs, 50);
  EXPECT_EQ(h.bins(), 50);
  EXPECT_EQ(h.total(), 10000u);
}

TEST(Histogram, CountsLandInCorrectBins) {
  const std::vector<double> xs{0.0, 0.1, 0.95, 1.0};
  const Histogram h(xs, 10);
  EXPECT_EQ(h.count(0), 1u);  // 0.0
  EXPECT_EQ(h.count(1), 1u);  // 0.1
  EXPECT_EQ(h.count(9), 2u);  // 0.95 and the inclusive max 1.0
}

TEST(Histogram, TopEdgeInclusive) {
  const std::vector<double> xs{0, 1, 2, 3, 4, 5};
  const Histogram h(xs, 5);
  EXPECT_EQ(h.count(4), 2u);  // 4 and 5
  EXPECT_EQ(h.total(), 6u);
}

TEST(Histogram, EdgesArithmetic) {
  const std::vector<double> xs{0.0, 10.0};
  const Histogram h(xs, 4);
  EXPECT_DOUBLE_EQ(h.bin_low(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_high(0), 2.5);
  EXPECT_DOUBLE_EQ(h.bin_center(2), 6.25);
  EXPECT_DOUBLE_EQ(h.bin_high(3), 10.0);
}

TEST(Histogram, DegenerateConstantSample) {
  const std::vector<double> xs{7, 7, 7};
  const Histogram h(xs, 5);
  // Constant data collapses to one zero-width bin [7, 7] holding everything.
  EXPECT_EQ(h.bins(), 1);
  EXPECT_EQ(h.count(0), 3u);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_DOUBLE_EQ(h.bin_low(0), 7.0);
  EXPECT_DOUBLE_EQ(h.bin_high(0), 7.0);
  EXPECT_EQ(h.mode_bin(), 0);
}

TEST(Histogram, DegenerateEmptySample) {
  // No data is a defined single empty bin, not a throw — callers binning
  // measured samples (possibly empty) need no guard.
  const Histogram h({}, 10);
  EXPECT_EQ(h.bins(), 1);
  EXPECT_EQ(h.count(0), 0u);
  EXPECT_EQ(h.total(), 0u);
  EXPECT_DOUBLE_EQ(h.bin_low(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_high(0), 0.0);
  EXPECT_FALSE(h.render(10).empty());  // renders one empty bar, no crash
}

TEST(Histogram, ModeBinOfSkewedData) {
  std::vector<double> xs;
  for (int i = 0; i < 90; ++i) xs.push_back(1.0);
  for (int i = 0; i < 10; ++i) xs.push_back(9.0);
  xs.push_back(0.0);
  xs.push_back(10.0);
  const Histogram h(xs, 10);
  EXPECT_EQ(h.mode_bin(), 1);  // the cluster at 1.0
}

TEST(Histogram, RenderContainsBars) {
  const std::vector<double> xs{0, 0, 0, 1};
  const Histogram h(xs, 2);
  const std::string out = h.render(10);
  EXPECT_NE(out.find("##########"), std::string::npos);
  EXPECT_NE(out.find('|'), std::string::npos);
}

TEST(Histogram, Validation) {
  EXPECT_THROW(Histogram({1.0}, 0), std::invalid_argument);
  EXPECT_THROW(Histogram({}, 0), std::invalid_argument);  // bad bins wins
}

}  // namespace
}  // namespace whtlab::stats
