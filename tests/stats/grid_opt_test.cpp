#include "stats/grid_opt.hpp"

#include <gtest/gtest.h>

#include "stats/correlation.hpp"
#include "util/rng.hpp"

namespace whtlab::stats {
namespace {

TEST(Grid, DimensionsMatchStep) {
  const std::vector<double> i{1, 2, 3, 4};
  const std::vector<double> m{4, 3, 2, 1};
  const std::vector<double> c{1, 2, 3, 4};
  const auto grid = correlation_grid(i, m, c, 0.25);
  EXPECT_EQ(grid.alphas.size(), 5u);  // 0, .25, .5, .75, 1
  EXPECT_EQ(grid.rho.size(), 5u);
  EXPECT_EQ(grid.rho[0].size(), 5u);
}

TEST(Grid, RecoversInstructionOnlyOptimum) {
  // cycles correlate with instructions, misses are noise: best beta ~ 0.
  util::Rng rng(1);
  std::vector<double> instr;
  std::vector<double> misses;
  std::vector<double> cycles;
  for (int k = 0; k < 3000; ++k) {
    const double i = rng.uniform(0, 100);
    instr.push_back(i);
    misses.push_back(rng.uniform(0, 100));
    cycles.push_back(i + rng.uniform(0, 5));
  }
  const auto grid = correlation_grid(instr, misses, cycles);
  EXPECT_EQ(grid.best_beta, 0.0);
  EXPECT_GT(grid.best_alpha, 0.0);
  EXPECT_GT(grid.best_rho, 0.99);
}

TEST(Grid, RecoversMixtureRatio) {
  // cycles = I + 0.05*M exactly: any (alpha, beta) with beta/alpha = 0.05
  // gives rho = 1; the grid's best must hit rho ~ 1 at such a point.
  util::Rng rng(2);
  std::vector<double> instr;
  std::vector<double> misses;
  std::vector<double> cycles;
  for (int k = 0; k < 2000; ++k) {
    const double i = rng.uniform(0, 100);
    const double m = rng.uniform(0, 1000);
    instr.push_back(i);
    misses.push_back(m);
    cycles.push_back(i + 0.05 * m);
  }
  const auto grid = correlation_grid(instr, misses, cycles);
  EXPECT_NEAR(grid.best_rho, 1.0, 1e-9);
  EXPECT_NEAR(grid.best_beta / grid.best_alpha, 0.05, 1e-9);
}

TEST(Grid, RhoDependsOnlyOnRatio) {
  util::Rng rng(3);
  std::vector<double> instr;
  std::vector<double> misses;
  std::vector<double> cycles;
  for (int k = 0; k < 500; ++k) {
    instr.push_back(rng.uniform(0, 10));
    misses.push_back(rng.uniform(0, 10));
    cycles.push_back(instr.back() + 0.5 * misses.back() + rng.uniform(0, 1));
  }
  const auto grid = correlation_grid(instr, misses, cycles, 0.25);
  // (0.25, 0.5) and (0.5, 1.0) share the ratio 2 -> identical rho.
  EXPECT_NEAR(grid.rho[1][2], grid.rho[2][4], 1e-12);
}

TEST(Grid, OriginIsDegenerateZero) {
  const std::vector<double> i{1, 2, 3};
  const std::vector<double> m{3, 2, 1};
  const std::vector<double> c{1, 2, 3};
  const auto grid = correlation_grid(i, m, c, 0.5);
  EXPECT_EQ(grid.rho[0][0], 0.0);
}

TEST(Grid, CombinedBeatsEitherAloneWhenBothMatter) {
  // The paper's Figure 9 situation: cycles = I + 0.05*M + noise, I and M
  // dependent but not collinear.
  util::Rng rng(4);
  std::vector<double> instr;
  std::vector<double> misses;
  std::vector<double> cycles;
  for (int k = 0; k < 4000; ++k) {
    const double i = rng.uniform(50, 150);
    const double m = 5.0 * i + rng.uniform(0, 2000);  // correlated w/ spread
    instr.push_back(i);
    misses.push_back(m);
    cycles.push_back(i + 0.05 * m + rng.uniform(0, 5));
  }
  const auto grid = correlation_grid(instr, misses, cycles);
  const double rho_i = pearson(instr, cycles);
  const double rho_m = pearson(misses, cycles);
  EXPECT_GT(grid.best_rho, rho_i);
  EXPECT_GT(grid.best_rho, rho_m);
  EXPECT_GT(grid.best_alpha, 0.0);
  EXPECT_GT(grid.best_beta, 0.0);
}

TEST(Grid, Validation) {
  const std::vector<double> a{1, 2};
  EXPECT_THROW(correlation_grid(a, a, {1.0}, 0.5), std::invalid_argument);
  EXPECT_THROW(correlation_grid(a, a, a, 0.0), std::invalid_argument);
  EXPECT_THROW(correlation_grid(a, a, a, 2.0), std::invalid_argument);
}

}  // namespace
}  // namespace whtlab::stats
