#include "stats/pruning.hpp"

#include <gtest/gtest.h>

#include "stats/descriptive.hpp"
#include "util/rng.hpp"

namespace whtlab::stats {
namespace {

TEST(Pruning, CurveApproachesOneMinusP) {
  // Correlated model/runtime population; the paper's limit statement: as the
  // threshold approaches the max model value, the curve tends to 1 - p.
  util::Rng rng(1);
  std::vector<double> model;
  std::vector<double> runtime;
  for (int i = 0; i < 5000; ++i) {
    const double m = rng.uniform(0, 100);
    model.push_back(m);
    runtime.push_back(m + rng.uniform(0, 20));
  }
  for (double p : {0.01, 0.05, 0.10}) {
    const auto curve = pruning_curve(model, runtime, p);
    EXPECT_NEAR(curve.outside_fraction.back(), 1.0 - p, 0.002) << p;
  }
}

TEST(Pruning, PerfectModelCurveStartsAtZero) {
  // With runtime == model, plans below the p-quantile threshold are exactly
  // the top performers: the curve is 0 until the cutoff then rises.
  std::vector<double> model;
  for (int i = 0; i < 1000; ++i) model.push_back(static_cast<double>(i));
  const auto curve = pruning_curve(model, model, 0.05);
  EXPECT_DOUBLE_EQ(curve.outside_fraction.front(), 0.0);
  // At a threshold just below the cutoff everything kept is top-5%.
  int below = 0;
  for (std::size_t i = 0; i < curve.thresholds.size(); ++i) {
    if (curve.thresholds[i] <= curve.runtime_cutoff) {
      EXPECT_DOUBLE_EQ(curve.outside_fraction[i], 0.0);
      ++below;
    }
  }
  EXPECT_GT(below, 2);
}

TEST(Pruning, AntiCorrelatedModelIsUseless) {
  // Model inversely related to runtime: keeping small model values keeps the
  // WORST plans, so the curve starts near 1.
  std::vector<double> model;
  std::vector<double> runtime;
  for (int i = 0; i < 1000; ++i) {
    model.push_back(static_cast<double>(i));
    runtime.push_back(static_cast<double>(1000 - i));
  }
  const auto curve = pruning_curve(model, runtime, 0.05);
  EXPECT_GT(curve.outside_fraction.front(), 0.95);
}

TEST(Pruning, CutoffIsTheQuantile) {
  std::vector<double> runtime;
  for (int i = 0; i < 100; ++i) runtime.push_back(static_cast<double>(i));
  std::vector<double> model = runtime;
  const auto curve = pruning_curve(model, runtime, 0.10);
  EXPECT_DOUBLE_EQ(curve.runtime_cutoff, quantile(runtime, 0.10));
}

TEST(Pruning, ThresholdGridSpansModelRange) {
  std::vector<double> model{5, 10, 20, 40};
  std::vector<double> runtime{1, 2, 3, 4};
  const auto curve = pruning_curve(model, runtime, 0.25, 11);
  ASSERT_EQ(curve.thresholds.size(), 11u);
  EXPECT_DOUBLE_EQ(curve.thresholds.front(), 5.0);
  EXPECT_DOUBLE_EQ(curve.thresholds.back(), 40.0);
}

TEST(Pruning, MinSafeThresholdPerfectModel) {
  std::vector<double> values;
  for (int i = 0; i < 100; ++i) values.push_back(static_cast<double>(i));
  // Top-5% by runtime are values 0..5; the smallest model value among them is 0.
  EXPECT_DOUBLE_EQ(min_safe_threshold(values, values, 0.05), 0.0);
}

TEST(Pruning, MinSafeThresholdShuffledModel) {
  const std::vector<double> runtime{10, 20, 30, 40};
  const std::vector<double> model{7, 1, 9, 2};
  // 0.25-quantile of runtime = 17.5; only runtime 10 qualifies -> model 7.
  EXPECT_DOUBLE_EQ(min_safe_threshold(model, runtime, 0.25), 7.0);
}

TEST(Pruning, Validation) {
  const std::vector<double> xs{1, 2, 3};
  EXPECT_THROW(pruning_curve(xs, {1, 2}, 0.05), std::invalid_argument);
  EXPECT_THROW(pruning_curve(xs, xs, 0.0), std::invalid_argument);
  EXPECT_THROW(pruning_curve(xs, xs, 1.0), std::invalid_argument);
  EXPECT_THROW(pruning_curve(xs, xs, 0.05, 1), std::invalid_argument);
}

}  // namespace
}  // namespace whtlab::stats
