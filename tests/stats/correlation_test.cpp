#include "stats/correlation.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace whtlab::stats {
namespace {

TEST(Correlation, PerfectPositiveAndNegative) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  const std::vector<double> up{2, 4, 6, 8, 10};
  const std::vector<double> down{5, 4, 3, 2, 1};
  EXPECT_NEAR(pearson(xs, up), 1.0, 1e-12);
  EXPECT_NEAR(pearson(xs, down), -1.0, 1e-12);
}

TEST(Correlation, ShiftAndScaleInvariance) {
  const std::vector<double> xs{1, 5, 2, 8, 3};
  const std::vector<double> ys{2, 1, 4, 3, 5};
  std::vector<double> scaled;
  for (double x : xs) scaled.push_back(100.0 + 7.0 * x);
  EXPECT_NEAR(pearson(scaled, ys), pearson(xs, ys), 1e-12);
}

TEST(Correlation, IndependentSamplesNearZero) {
  util::Rng rng(1);
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 50000; ++i) {
    xs.push_back(rng.uniform(0, 1));
    ys.push_back(rng.uniform(0, 1));
  }
  EXPECT_NEAR(pearson(xs, ys), 0.0, 0.02);
  EXPECT_NEAR(spearman(xs, ys), 0.0, 0.02);
}

TEST(Correlation, KnownHandValue) {
  const std::vector<double> xs{1, 2, 3};
  const std::vector<double> ys{1, 2, 4};
  // cov = 1, sd_x = sqrt(2/3), sd_y = sqrt(14/9); rho = 1/sqrt(28/27).
  EXPECT_NEAR(pearson(xs, ys), 1.0 / std::sqrt(28.0 / 27.0), 1e-12);
}

TEST(Correlation, DegenerateInputGivesZero) {
  const std::vector<double> flat{3, 3, 3, 3};
  const std::vector<double> ys{1, 2, 3, 4};
  EXPECT_EQ(pearson(flat, ys), 0.0);
}

TEST(Correlation, SizeValidation) {
  const std::vector<double> a{1, 2};
  const std::vector<double> b{1};
  EXPECT_THROW(pearson(a, b), std::invalid_argument);
  EXPECT_THROW(pearson({1.0}, {1.0}), std::invalid_argument);
}

TEST(Correlation, CovarianceMatchesVarianceOnSelf) {
  const std::vector<double> xs{1, 4, 2, 8};
  EXPECT_NEAR(covariance(xs, xs), 7.1875, 1e-12);
}

TEST(Ranks, TiesGetAverageRank) {
  const std::vector<double> xs{10, 20, 20, 30};
  EXPECT_EQ(ranks(xs), (std::vector<double>{1.0, 2.5, 2.5, 4.0}));
}

TEST(Ranks, AllEqual) {
  const std::vector<double> xs{5, 5, 5};
  EXPECT_EQ(ranks(xs), (std::vector<double>{2.0, 2.0, 2.0}));
}

TEST(Spearman, InvariantUnderMonotoneTransform) {
  util::Rng rng(2);
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(0.1, 10);
    xs.push_back(x);
    ys.push_back(x + rng.uniform(0, 1));  // monotone-ish relation with noise
  }
  std::vector<double> exp_xs;
  for (double x : xs) exp_xs.push_back(std::exp(x));
  EXPECT_NEAR(spearman(exp_xs, ys), spearman(xs, ys), 1e-12);
}

TEST(Spearman, PerfectMonotoneNonlinearIsOne) {
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 1; i <= 20; ++i) {
    xs.push_back(i);
    ys.push_back(std::log(i));  // nonlinear but strictly increasing
  }
  EXPECT_NEAR(spearman(xs, ys), 1.0, 1e-12);
  EXPECT_LT(pearson(xs, ys), 1.0);
}

}  // namespace
}  // namespace whtlab::stats
