#include "stats/descriptive.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace whtlab::stats {
namespace {

TEST(Descriptive, MeanVarianceKnownValues) {
  const std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(mean(xs), 5.0);
  EXPECT_DOUBLE_EQ(variance(xs), 4.0);
  EXPECT_DOUBLE_EQ(stddev(xs), 2.0);
  EXPECT_DOUBLE_EQ(min_value(xs), 2.0);
  EXPECT_DOUBLE_EQ(max_value(xs), 9.0);
}

TEST(Descriptive, EmptySampleThrows) {
  const std::vector<double> empty;
  EXPECT_THROW(mean(empty), std::invalid_argument);
  EXPECT_THROW(variance(empty), std::invalid_argument);
  EXPECT_THROW(quantile(empty, 0.5), std::invalid_argument);
}

TEST(Descriptive, SingleValue) {
  const std::vector<double> one{3.0};
  EXPECT_DOUBLE_EQ(mean(one), 3.0);
  EXPECT_DOUBLE_EQ(variance(one), 0.0);
  EXPECT_DOUBLE_EQ(median(one), 3.0);
}

TEST(Descriptive, QuantileType7Interpolation) {
  const std::vector<double> xs{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 1.75);  // numpy type-7 value
  EXPECT_THROW(quantile(xs, -0.1), std::invalid_argument);
  EXPECT_THROW(quantile(xs, 1.1), std::invalid_argument);
}

TEST(Descriptive, QuantileUnsortedInput) {
  const std::vector<double> xs{9, 1, 5, 3, 7};
  EXPECT_DOUBLE_EQ(median(xs), 5.0);
}

TEST(Descriptive, QuartilesAndIqr) {
  const std::vector<double> xs{1, 2, 3, 4, 5, 6, 7, 8, 9};
  const Quartiles q = quartiles(xs);
  EXPECT_DOUBLE_EQ(q.q1, 3.0);
  EXPECT_DOUBLE_EQ(q.q2, 5.0);
  EXPECT_DOUBLE_EQ(q.q3, 7.0);
  EXPECT_DOUBLE_EQ(q.iqr(), 4.0);
}

TEST(Descriptive, OuterFencesMatchPaperDefinition) {
  // Paper: valid data within Q1 - 3*IQR < X < Q3 + 3*IQR.
  const std::vector<double> xs{1, 2, 3, 4, 5, 6, 7, 8, 9};
  const Fences f = outer_fences(xs);
  EXPECT_DOUBLE_EQ(f.lower, 3.0 - 12.0);
  EXPECT_DOUBLE_EQ(f.upper, 7.0 + 12.0);
}

TEST(Descriptive, FenceFilterRemovesExtremeOutlier) {
  std::vector<double> xs;
  for (int i = 0; i < 100; ++i) xs.push_back(static_cast<double>(i % 10));
  xs.push_back(1e6);  // extreme outlier
  const auto kept = inside_fences(xs);
  EXPECT_EQ(kept.size(), 100u);
  for (std::size_t idx : kept) EXPECT_LT(xs[idx], 1e5);
}

TEST(Descriptive, FenceFilterKeepsCleanData) {
  util::Rng rng(1);
  std::vector<double> xs;
  for (int i = 0; i < 1000; ++i) xs.push_back(rng.uniform(0, 1));
  EXPECT_EQ(inside_fences(xs).size(), xs.size());
}

TEST(Descriptive, SelectPicksByIndex) {
  const std::vector<double> xs{10, 20, 30, 40};
  EXPECT_EQ(select(xs, {3, 0}), (std::vector<double>{40, 10}));
  EXPECT_THROW(select(xs, {4}), std::out_of_range);
}

TEST(Descriptive, SkewnessSigns) {
  const std::vector<double> symmetric{-2, -1, 0, 1, 2};
  EXPECT_NEAR(skewness(symmetric), 0.0, 1e-12);
  const std::vector<double> right_tailed{1, 1, 1, 1, 10};
  EXPECT_GT(skewness(right_tailed), 1.0);
  const std::vector<double> left_tailed{-10, 1, 1, 1, 1};
  EXPECT_LT(skewness(left_tailed), -1.0);
}

TEST(Descriptive, KurtosisOfUniformIsNegative) {
  // Continuous uniform has excess kurtosis -1.2.
  util::Rng rng(2);
  std::vector<double> xs;
  for (int i = 0; i < 200000; ++i) xs.push_back(rng.uniform(0, 1));
  EXPECT_NEAR(excess_kurtosis(xs), -1.2, 0.05);
}

TEST(Descriptive, GaussianMomentsViaCltSum) {
  // Sum of 12 uniforms (Irwin-Hall): mean 6, var 1, skew 0, and excess
  // kurtosis exactly -1.2/12 = -0.1 (fourth cumulants add).
  util::Rng rng(3);
  std::vector<double> xs;
  for (int i = 0; i < 100000; ++i) {
    double s = 0.0;
    for (int j = 0; j < 12; ++j) s += rng.uniform(0, 1);
    xs.push_back(s);
  }
  EXPECT_NEAR(mean(xs), 6.0, 0.02);
  EXPECT_NEAR(variance(xs), 1.0, 0.02);
  EXPECT_NEAR(skewness(xs), 0.0, 0.03);
  EXPECT_NEAR(excess_kurtosis(xs), -0.1, 0.05);
}

}  // namespace
}  // namespace whtlab::stats
