#include "stats/regression.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace whtlab::stats {
namespace {

TEST(Regression, ExactLineIsRecovered) {
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 50; ++i) {
    xs.push_back(static_cast<double>(i));
    ys.push_back(3.0 * i - 7.0);
  }
  const auto fit = linear_regression(xs, ys);
  EXPECT_NEAR(fit.slope, 3.0, 1e-12);
  EXPECT_NEAR(fit.intercept, -7.0, 1e-10);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(Regression, NoisyLineApproximately) {
  util::Rng rng(1);
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.uniform(0, 10);
    xs.push_back(x);
    ys.push_back(2.0 * x + 1.0 + rng.uniform(-0.5, 0.5));
  }
  const auto fit = linear_regression(xs, ys);
  EXPECT_NEAR(fit.slope, 2.0, 0.01);
  EXPECT_NEAR(fit.intercept, 1.0, 0.05);
  EXPECT_GT(fit.r_squared, 0.99);
}

TEST(Regression, ConstantXGivesMeanIntercept) {
  const std::vector<double> xs{5, 5, 5};
  const std::vector<double> ys{1, 2, 3};
  const auto fit = linear_regression(xs, ys);
  EXPECT_DOUBLE_EQ(fit.slope, 0.0);
  EXPECT_DOUBLE_EQ(fit.intercept, 2.0);
}

TEST(Regression, Validation) {
  EXPECT_THROW(linear_regression({1.0}, {1.0}), std::invalid_argument);
  EXPECT_THROW(linear_regression({1, 2}, {1, 2, 3}), std::invalid_argument);
}

TEST(JarqueBera, SmallForGaussianLike) {
  util::Rng rng(2);
  std::vector<double> xs;
  for (int i = 0; i < 5000; ++i) {
    double s = 0.0;
    for (int j = 0; j < 12; ++j) s += rng.uniform(0, 1);
    xs.push_back(s);
  }
  EXPECT_LT(jarque_bera(xs), 15.0);
}

TEST(JarqueBera, LargeForSkewedSample) {
  util::Rng rng(3);
  std::vector<double> xs;
  for (int i = 0; i < 5000; ++i) {
    const double u = rng.uniform(0, 1);
    xs.push_back(u * u * u);  // heavily right-skewed
  }
  EXPECT_GT(jarque_bera(xs), 100.0);
}

}  // namespace
}  // namespace whtlab::stats
