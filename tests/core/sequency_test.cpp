#include "core/sequency.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <vector>

#include "core/executor.hpp"
#include "core/plan.hpp"

namespace whtlab::core {
namespace {

TEST(Sequency, BitReverseSmallCases) {
  EXPECT_EQ(bit_reverse(0b001, 3), 0b100u);
  EXPECT_EQ(bit_reverse(0b110, 3), 0b011u);
  EXPECT_EQ(bit_reverse(0b1011, 4), 0b1101u);
  EXPECT_EQ(bit_reverse(0, 5), 0u);
}

TEST(Sequency, BitReverseIsInvolution) {
  for (int bits : {1, 3, 6, 10}) {
    for (std::uint64_t v = 0; v < (std::uint64_t{1} << bits); ++v) {
      EXPECT_EQ(bit_reverse(bit_reverse(v, bits), bits), v);
    }
  }
}

TEST(Sequency, GrayCodeRoundTrip) {
  for (std::uint64_t v = 0; v < 4096; ++v) {
    EXPECT_EQ(gray_decode(gray_encode(v)), v);
  }
}

TEST(Sequency, GrayCodeAdjacentDifferByOneBit) {
  for (std::uint64_t v = 0; v + 1 < 4096; ++v) {
    const std::uint64_t diff = gray_encode(v) ^ gray_encode(v + 1);
    EXPECT_EQ(std::popcount(diff), 1) << v;
  }
}

TEST(Sequency, MappingIsAPermutation) {
  const int n = 8;
  const std::uint64_t size = std::uint64_t{1} << n;
  std::vector<bool> seen(size, false);
  for (std::uint64_t s = 0; s < size; ++s) {
    const std::uint64_t h = sequency_to_hadamard(s, n);
    ASSERT_LT(h, size);
    EXPECT_FALSE(seen[h]);
    seen[h] = true;
    EXPECT_EQ(hadamard_to_sequency(h, n), s);
  }
}

// Number of sign changes in row `row` of the dense Hadamard-ordered matrix.
int row_sign_changes(std::uint64_t row, int n) {
  const std::uint64_t size = std::uint64_t{1} << n;
  int changes = 0;
  int prev = 0;
  for (std::uint64_t col = 0; col < size; ++col) {
    const int sign = (std::popcount(row & col) & 1) ? -1 : 1;
    if (col > 0 && sign != prev) ++changes;
    prev = sign;
  }
  return changes;
}

TEST(Sequency, OrderedRowsHaveIncreasingSignChanges) {
  // The defining property: sequency-ordered row s has exactly s sign changes.
  const int n = 6;
  const std::uint64_t size = std::uint64_t{1} << n;
  for (std::uint64_t s = 0; s < size; ++s) {
    EXPECT_EQ(row_sign_changes(sequency_to_hadamard(s, n), n),
              static_cast<int>(s))
        << s;
  }
}

TEST(Sequency, PermutationRoundTripsData) {
  const int n = 7;
  const std::uint64_t size = std::uint64_t{1} << n;
  std::vector<double> data(size);
  for (std::uint64_t i = 0; i < size; ++i) data[i] = static_cast<double>(i);
  std::vector<double> ordered(size);
  std::vector<double> back(size);
  to_sequency_order(data.data(), ordered.data(), n);
  from_sequency_order(ordered.data(), back.data(), n);
  EXPECT_EQ(back, data);
}

TEST(Sequency, SingleSequencyToneConcentrates) {
  // Build a +/-1 Walsh function of sequency s; its sequency-ordered spectrum
  // must be N at position s and 0 elsewhere.
  const int n = 6;
  const std::uint64_t size = std::uint64_t{1} << n;
  const std::uint64_t s = 11;
  const std::uint64_t h = sequency_to_hadamard(s, n);
  std::vector<double> signal(size);
  for (std::uint64_t t = 0; t < size; ++t) {
    signal[t] = (std::popcount(h & t) & 1) ? -1.0 : 1.0;
  }
  execute(Plan::balanced_binary(n, 3), signal.data());
  std::vector<double> spectrum(size);
  to_sequency_order(signal.data(), spectrum.data(), n);
  for (std::uint64_t i = 0; i < size; ++i) {
    EXPECT_NEAR(spectrum[i], i == s ? static_cast<double>(size) : 0.0, 1e-9);
  }
}

}  // namespace
}  // namespace whtlab::core
