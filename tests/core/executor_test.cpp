// Executor correctness across the whole plan family.
//
// Key property: EVERY plan of size 2^n computes the same transform.  We test
// canonical plans against both references, every enumerated plan for small
// n, random plans for larger n, and algebraic invariants (linearity,
// involution, Parseval).
#include "core/executor.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/plan_io.hpp"
#include "core/verify.hpp"
#include "search/enumerate.hpp"
#include "search/sampler.hpp"
#include "util/aligned_buffer.hpp"
#include "util/rng.hpp"

namespace whtlab::core {
namespace {

TEST(Executor, LeafPlanMatchesDense) {
  for (int k = 1; k <= kMaxUnrolled; ++k) {
    EXPECT_LT(verify_plan(Plan::small(k)), 1e-11) << k;
  }
}

TEST(Executor, CanonicalPlansMatchReference) {
  for (int n = 1; n <= 14; ++n) {
    EXPECT_LT(verify_plan(Plan::iterative(n)), 1e-9) << "iterative " << n;
    EXPECT_LT(verify_plan(Plan::right_recursive(n)), 1e-9) << "right " << n;
    EXPECT_LT(verify_plan(Plan::left_recursive(n)), 1e-9) << "left " << n;
    EXPECT_LT(verify_plan(Plan::balanced_binary(n, 4)), 1e-9) << "bal " << n;
  }
}

TEST(Executor, FastReferenceMatchesDense) {
  // The two references are independent; cross-check them.
  for (int n = 1; n <= 10; ++n) {
    const std::uint64_t size = std::uint64_t{1} << n;
    std::vector<double> x(size);
    std::vector<double> dense(size);
    util::Rng rng(n);
    for (auto& v : x) v = rng.uniform(-1, 1);
    dense_wht_apply(n, x.data(), dense.data());
    fast_wht_reference(n, x.data());
    EXPECT_LT(max_abs_diff(x.data(), dense.data(), size), 1e-10) << n;
  }
}

class ExhaustivePlanTest : public ::testing::TestWithParam<int> {};

TEST_P(ExhaustivePlanTest, EveryPlanComputesTheSameTransform) {
  const int n = GetParam();
  const auto plans = search::enumerate_plans(n, /*max_leaf=*/4);
  ASSERT_FALSE(plans.empty());
  for (const auto& plan : plans) {
    EXPECT_LT(verify_plan(plan), 1e-10) << plan.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(SizesOneToSix, ExhaustivePlanTest,
                         ::testing::Range(1, 7));

TEST(Executor, RandomPlansMediumSizes) {
  util::Rng rng(2024);
  search::RecursiveSplitSampler sampler(kMaxUnrolled);
  for (int n : {8, 10, 12, 13}) {
    for (int trial = 0; trial < 8; ++trial) {
      const Plan plan = sampler.sample(n, rng);
      EXPECT_LT(verify_plan(plan), 1e-8)
          << "n=" << n << " plan=" << plan.to_string();
    }
  }
}

TEST(Executor, BothBackendsBitIdenticalOnRandomPlans) {
  util::Rng rng(7);
  search::RecursiveSplitSampler sampler(kMaxUnrolled);
  for (int trial = 0; trial < 5; ++trial) {
    const Plan plan = sampler.sample(10, rng);
    const std::uint64_t size = plan.size();
    util::AlignedBuffer a(size);
    util::AlignedBuffer b(size);
    util::Rng fill(trial);
    for (std::uint64_t i = 0; i < size; ++i) a[i] = b[i] = fill.uniform(-1, 1);
    execute(plan, a.data(), CodeletBackend::kTemplate);
    execute(plan, b.data(), CodeletBackend::kGenerated);
    for (std::uint64_t i = 0; i < size; ++i) EXPECT_EQ(a[i], b[i]);
  }
}

TEST(Executor, Linearity) {
  // WHT(a*x + b*y) = a*WHT(x) + b*WHT(y).
  const Plan plan = parse_plan("split[small[2],split[small[1],small[2]],small[1]]");
  const std::uint64_t size = plan.size();
  util::Rng rng(5);
  std::vector<double> x(size);
  std::vector<double> y(size);
  std::vector<double> combo(size);
  const double a = 2.5;
  const double b = -1.25;
  for (std::uint64_t i = 0; i < size; ++i) {
    x[i] = rng.uniform(-1, 1);
    y[i] = rng.uniform(-1, 1);
    combo[i] = a * x[i] + b * y[i];
  }
  execute(plan, x.data());
  execute(plan, y.data());
  execute(plan, combo.data());
  for (std::uint64_t i = 0; i < size; ++i) {
    EXPECT_NEAR(combo[i], a * x[i] + b * y[i], 1e-10);
  }
}

TEST(Executor, InvolutionScaledByN) {
  for (int n : {4, 7, 9}) {
    const Plan plan = Plan::balanced_binary(n, 3);
    const std::uint64_t size = plan.size();
    std::vector<double> x(size);
    std::vector<double> original(size);
    util::Rng rng(n);
    for (std::uint64_t i = 0; i < size; ++i) original[i] = x[i] = rng.uniform(-1, 1);
    execute(plan, x.data());
    execute(plan, x.data());
    for (std::uint64_t i = 0; i < size; ++i) {
      EXPECT_NEAR(x[i], static_cast<double>(size) * original[i], 1e-7 * size);
    }
  }
}

TEST(Executor, ParsevalScaling) {
  // ||WHT x||^2 = N * ||x||^2 (rows are orthogonal with norm sqrt(N)).
  const Plan plan = Plan::iterative(10);
  const std::uint64_t size = plan.size();
  std::vector<double> x(size);
  util::Rng rng(31);
  double norm_in = 0.0;
  for (auto& v : x) {
    v = rng.uniform(-1, 1);
    norm_in += v * v;
  }
  execute(plan, x.data());
  double norm_out = 0.0;
  for (double v : x) norm_out += v * v;
  EXPECT_NEAR(norm_out, static_cast<double>(size) * norm_in, 1e-6 * norm_out);
}

TEST(Executor, ImpulseGivesConstantRow) {
  // WHT * e_0 = all-ones.
  const Plan plan = Plan::right_recursive(8);
  const std::uint64_t size = plan.size();
  std::vector<double> x(size, 0.0);
  x[0] = 1.0;
  execute(plan, x.data());
  for (double v : x) EXPECT_EQ(v, 1.0);
}

TEST(Executor, ConstantInputConcentratesAtZero) {
  // WHT * ones = N * e_0.
  const Plan plan = Plan::left_recursive(8);
  const std::uint64_t size = plan.size();
  std::vector<double> x(size, 1.0);
  execute(plan, x.data());
  EXPECT_EQ(x[0], static_cast<double>(size));
  for (std::uint64_t i = 1; i < size; ++i) EXPECT_EQ(x[i], 0.0);
}

TEST(Executor, MixedLeafSizePlan) {
  const Plan plan = parse_plan("split[small[4],small[3],small[2],small[1]]");
  EXPECT_EQ(plan.log2_size(), 10);
  EXPECT_LT(verify_plan(plan), 1e-9);
}

TEST(Executor, DeepNestedPlan) {
  const Plan plan = parse_plan(
      "split[split[small[1],split[small[1],small[1]]],"
      "split[split[small[1],small[1]],small[1]],small[2]]");
  EXPECT_EQ(plan.log2_size(), 8);
  EXPECT_LT(verify_plan(plan), 1e-9);
}

}  // namespace
}  // namespace whtlab::core
