#include "core/plan_io.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/plan.hpp"

namespace whtlab::core {
namespace {

TEST(PlanIo, FormatsLeaf) {
  EXPECT_EQ(format_plan(Plan::small(4)), "small[4]");
}

TEST(PlanIo, FormatsNestedSplit) {
  std::vector<Plan> inner;
  inner.push_back(Plan::small(1));
  inner.push_back(Plan::small(2));
  std::vector<Plan> outer;
  outer.push_back(Plan::split(std::move(inner)));
  outer.push_back(Plan::small(3));
  EXPECT_EQ(format_plan(Plan::split(std::move(outer))),
            "split[split[small[1],small[2]],small[3]]");
}

TEST(PlanIo, ParsesLeaf) {
  const Plan p = parse_plan("small[5]");
  EXPECT_EQ(p.log2_size(), 5);
  EXPECT_EQ(p.leaf_count(), 1);
}

TEST(PlanIo, ParsesSplit) {
  const Plan p = parse_plan("split[small[1],small[2],small[3]]");
  EXPECT_EQ(p.log2_size(), 6);
  EXPECT_EQ(p.leaf_count(), 3);
}

TEST(PlanIo, ParseIgnoresWhitespace) {
  const Plan p = parse_plan("  split[ small[1] ,\n  small[2] ]  ");
  EXPECT_EQ(p.to_string(), "split[small[1],small[2]]");
}

TEST(PlanIo, RoundTripCanonicalPlans) {
  for (int n = 1; n <= 16; ++n) {
    for (const Plan& p : {Plan::iterative(n), Plan::right_recursive(n),
                          Plan::left_recursive(n), Plan::balanced_binary(n, 4)}) {
      const std::string text = p.to_string();
      EXPECT_EQ(parse_plan(text), p) << text;
      EXPECT_EQ(parse_plan(text).to_string(), text);
    }
  }
}

TEST(PlanIo, RejectsGarbage) {
  EXPECT_THROW(parse_plan(""), std::invalid_argument);
  EXPECT_THROW(parse_plan("smal[1]"), std::invalid_argument);
  EXPECT_THROW(parse_plan("small[0]"), std::invalid_argument);
  EXPECT_THROW(parse_plan("small[9]"), std::invalid_argument);   // > kMaxUnrolled
  EXPECT_THROW(parse_plan("small[x]"), std::invalid_argument);
  EXPECT_THROW(parse_plan("small[1"), std::invalid_argument);
  EXPECT_THROW(parse_plan("split[small[1]]"), std::invalid_argument);  // 1 child
  EXPECT_THROW(parse_plan("split[]"), std::invalid_argument);
  EXPECT_THROW(parse_plan("split[small[1],small[2]] junk"), std::invalid_argument);
  EXPECT_THROW(parse_plan("split[small[1],,small[2]]"), std::invalid_argument);
}

TEST(PlanIo, RejectsHugeInteger) {
  EXPECT_THROW(parse_plan("small[99999999]"), std::invalid_argument);
}

TEST(PlanIo, ErrorMentionsPosition) {
  try {
    parse_plan("split[small[1],oops]");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("position"), std::string::npos);
  }
}

}  // namespace
}  // namespace whtlab::core
