// Plan-lowering unit tests: the flattened stage partition reads the leaf
// intervals off the tree, the blocker's rounds cover every stage exactly
// once under its caps, and the scalar schedule interpreter is bit-identical
// to the recursive executor (the property that makes re-blocking sound).
#include "core/schedule.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/executor.hpp"
#include "core/plan.hpp"
#include "core/plan_io.hpp"
#include "util/aligned_buffer.hpp"
#include "util/rng.hpp"

namespace whtlab::core {
namespace {

TEST(FlattenPlan, LeafIntervalsAscendRightmostFirst) {
  // split[small[3], split[small[2], small[4]], small[1]] of size 10:
  // rightmost leaf covers the lowest stages.
  const Plan plan = parse_plan(
      "split[small[3],split[small[2],small[4]],small[1]]");
  const std::vector<SchedulePass> flat = flatten_plan(plan);
  ASSERT_EQ(flat.size(), 4u);
  EXPECT_EQ(flat[0].stage, 0);
  EXPECT_EQ(flat[0].radix_log2, 1);  // the trailing small[1]
  EXPECT_EQ(flat[1].stage, 1);
  EXPECT_EQ(flat[1].radix_log2, 4);  // small[4] inside the nested split
  EXPECT_EQ(flat[2].stage, 5);
  EXPECT_EQ(flat[2].radix_log2, 2);  // small[2]
  EXPECT_EQ(flat[3].stage, 7);
  EXPECT_EQ(flat[3].radix_log2, 3);  // leading small[3]
}

TEST(FlattenPlan, PartitionCoversAllStages) {
  for (int n = 1; n <= 16; ++n) {
    for (const Plan& plan :
         {Plan::iterative(n), Plan::right_recursive(n),
          Plan::balanced_binary(n, 4)}) {
      int stage = 0;
      for (const SchedulePass& pass : flatten_plan(plan)) {
        EXPECT_EQ(pass.stage, stage) << plan.to_string();
        stage += pass.radix_log2;
      }
      EXPECT_EQ(stage, n) << plan.to_string();
    }
  }
}

/// Collects (stage, radix) coverage of a round tree, depth first in
/// execution order (inner rounds before own passes).
void collect_passes(const ScheduleRound& round, int max_block_log2,
                    std::vector<SchedulePass>& out) {
  EXPECT_LE(round.block_log2, max_block_log2);
  for (const ScheduleRound& inner : round.inner) {
    collect_passes(inner, round.block_log2, out);
  }
  for (const SchedulePass& pass : round.passes) {
    EXPECT_LE(pass.stage + pass.radix_log2, round.block_log2)
        << "pass tiles must fit the sweeping block";
    out.push_back(pass);
  }
}

TEST(LowerSize, RoundsPartitionStagesUnderCaps) {
  const BlockingConfig config{};  // unit 8, radix 3/5, blocks 2^11 / 2^17
  for (int n = 1; n <= 26; ++n) {
    const Schedule schedule = lower_size(n, config);
    EXPECT_EQ(schedule.log2_size, n);
    std::vector<SchedulePass> passes;
    for (const ScheduleRound& round : schedule.rounds) {
      collect_passes(round, n, passes);
    }
    const int c1 =
        std::clamp(config.l2_block_log2,
                   std::clamp(config.l1_block_log2,
                              std::min(n, config.unit_log2), n),
                   n);
    int stage = 0;
    for (const SchedulePass& pass : passes) {
      EXPECT_EQ(pass.stage, stage) << "n=" << n;
      EXPECT_GE(pass.radix_log2, 1);
      if (pass.stage == 0) {
        EXPECT_LE(pass.radix_log2, config.unit_log2);
      } else if (pass.stage >= c1) {
        EXPECT_LE(pass.radix_log2, config.stream_radix_log2)
            << "streaming pass above the L2 block";
      } else {
        EXPECT_LE(pass.radix_log2, config.max_radix_log2);
      }
      stage += pass.radix_log2;
    }
    EXPECT_EQ(stage, n) << "stages covered exactly once, ascending";
  }
}

TEST(LowerSize, SweepCountsMatchTheBlockingStory) {
  BlockingConfig config;
  config.l1_block_log2 = 11;
  config.l2_block_log2 = 17;
  // In-L2 sizes: one nested DRAM sweep regardless of n.
  EXPECT_EQ(sweep_count(lower_size(8, config)), 1);
  EXPECT_EQ(sweep_count(lower_size(17, config)), 1);
  // Above L2: one extra sweep per fused streaming group of the top stages
  // (up to radix-32 per sweep).
  EXPECT_EQ(sweep_count(lower_size(18, config)), 2);   // [17,18) -> 1 pass
  EXPECT_EQ(sweep_count(lower_size(20, config)), 2);   // [17,20) -> radix-8
  EXPECT_EQ(sweep_count(lower_size(22, config)), 2);   // [17,22) -> radix-32
  EXPECT_EQ(sweep_count(lower_size(24, config)), 3);   // [17,24) -> 16+8
}

TEST(LowerSize, RejectsBadArguments) {
  EXPECT_THROW(lower_size(0, {}), std::invalid_argument);
  BlockingConfig bad_unit;
  bad_unit.unit_log2 = kMaxUnrolled + 1;
  EXPECT_THROW(lower_size(4, bad_unit), std::invalid_argument);
  BlockingConfig bad_radix;
  bad_radix.max_radix_log2 = 0;
  EXPECT_THROW(lower_size(4, bad_radix), std::invalid_argument);
  // Radixes beyond the codelet table / lockstep leaf ceiling must be
  // rejected, not executed (they would index out of bounds downstream).
  BlockingConfig wide_radix;
  wide_radix.max_radix_log2 = kMaxUnrolled + 1;
  EXPECT_THROW(lower_size(4, wide_radix), std::invalid_argument);
  BlockingConfig wide_stream;
  wide_stream.stream_radix_log2 = kMaxUnrolled + 1;
  EXPECT_THROW(lower_size(4, wide_stream), std::invalid_argument);
}

TEST(ExecuteSchedule, RejectsMalformedHandBuiltSchedules) {
  // execute_schedule is public and accepts hand-built schedules; geometry
  // that would index past the codelet table or read outside a block must
  // throw, not corrupt memory.
  util::AlignedBuffer x(std::uint64_t{1} << 6);
  x.fill(1.0);
  Schedule oversized_radix;
  oversized_radix.log2_size = 6;
  oversized_radix.rounds.push_back(
      {6, {}, {{0, 1}, {1, kMaxUnrolled + 1}}});
  EXPECT_THROW(execute_schedule(oversized_radix, x.data()),
               std::invalid_argument);
  Schedule overflowing_tile;
  overflowing_tile.log2_size = 6;
  overflowing_tile.rounds.push_back({4, {}, {{0, 2}, {3, 3}}});  // 3+3 > 4
  EXPECT_THROW(execute_schedule(overflowing_tile, x.data()),
               std::invalid_argument);
}

TEST(LowerPlan, SizeDecidesTheSchedule) {
  // Two different trees of one size lower to the identical schedule: the
  // machine, not the tree shape, decides the blocked execution order.
  const Schedule a = lower_plan(Plan::iterative(12));
  const Schedule b = lower_plan(Plan::balanced_binary(12, 4));
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  std::vector<SchedulePass> pa, pb;
  for (const ScheduleRound& r : a.rounds) collect_passes(r, 12, pa);
  for (const ScheduleRound& r : b.rounds) collect_passes(r, 12, pb);
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pa[i].stage, pb[i].stage);
    EXPECT_EQ(pa[i].radix_log2, pb[i].radix_log2);
  }
}

TEST(ExecuteSchedule, BitIdenticalToRecursiveExecutorAcrossConfigs) {
  // Sweep block geometries that exercise every blocker shape: single round,
  // nested L1-in-L2, top strided passes of radix 1..3, tiny unit passes.
  std::vector<BlockingConfig> configs;
  configs.push_back({});                      // defaults
  configs.push_back({4, 3, 6, 9});            // small unit, nested, top passes
  configs.push_back({8, 1, 10, 12});          // radix-2 strided passes only
  configs.push_back({2, 2, 2, 4});            // degenerate tiny blocks
  for (int n = 1; n <= 14; ++n) {
    const Plan plan = Plan::balanced_binary(n, 4);
    for (const BlockingConfig& config : configs) {
      const Schedule schedule = lower_size(n, config);
      util::AlignedBuffer x(plan.size());
      util::AlignedBuffer reference(plan.size());
      util::Rng rng(static_cast<std::uint64_t>(n) * 37 + 1);
      for (std::uint64_t i = 0; i < plan.size(); ++i) {
        x[i] = reference[i] = rng.uniform(-1, 1);
      }
      execute_schedule(schedule, x.data());
      execute(plan, reference.data());
      for (std::uint64_t i = 0; i < plan.size(); ++i) {
        ASSERT_EQ(x[i], reference[i])
            << "n=" << n << " unit=" << config.unit_log2
            << " l1=" << config.l1_block_log2
            << " l2=" << config.l2_block_log2 << " i=" << i;
      }
    }
  }
}

TEST(ExecuteSchedule, StridedMatchesDenseAndKeepsGapsIntact) {
  for (int n : {4, 8, 11}) {
    for (const std::ptrdiff_t stride : {2, 5}) {
      const Schedule schedule = lower_size(n, {4, 2, 6, 8});
      const std::uint64_t size = std::uint64_t{1} << n;
      util::AlignedBuffer strided(size * static_cast<std::uint64_t>(stride));
      util::AlignedBuffer dense(size);
      util::Rng rng(static_cast<std::uint64_t>(n) * 19 + 5);
      strided.fill(-7.0);
      for (std::uint64_t i = 0; i < size; ++i) {
        const double v = rng.uniform(-1, 1);
        strided[i * static_cast<std::uint64_t>(stride)] = v;
        dense[i] = v;
      }
      execute_schedule(schedule, strided.data(), stride,
                       codelet_table(CodeletBackend::kGenerated));
      execute_schedule(schedule, dense.data());
      for (std::uint64_t i = 0; i < size; ++i) {
        ASSERT_EQ(strided[i * static_cast<std::uint64_t>(stride)], dense[i]);
        for (std::ptrdiff_t off = 1; off < stride && i + 1 < size; ++off) {
          ASSERT_EQ(strided[i * static_cast<std::uint64_t>(stride) +
                            static_cast<std::uint64_t>(off)],
                    -7.0);
        }
      }
    }
  }
}

}  // namespace
}  // namespace whtlab::core
