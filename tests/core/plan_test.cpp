#include "core/plan.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace whtlab::core {
namespace {

TEST(Plan, SmallFactoryBuildsLeaf) {
  const Plan p = Plan::small(3);
  EXPECT_TRUE(p.valid());
  EXPECT_EQ(p.log2_size(), 3);
  EXPECT_EQ(p.size(), 8u);
  EXPECT_EQ(p.leaf_count(), 1);
  EXPECT_EQ(p.node_count(), 1);
  EXPECT_EQ(p.depth(), 1);
  EXPECT_EQ(p.max_leaf_log2(), 3);
}

TEST(Plan, EmptyPlanAccessorsThrow) {
  const Plan empty;
  EXPECT_FALSE(empty.valid());
  EXPECT_THROW(empty.root(), std::logic_error);
  EXPECT_THROW(empty.log2_size(), std::logic_error);
  EXPECT_THROW(empty.size(), std::logic_error);
  EXPECT_THROW(empty.leaf_count(), std::logic_error);
  EXPECT_THROW(empty.node_count(), std::logic_error);
  EXPECT_THROW(empty.depth(), std::logic_error);
  EXPECT_THROW(empty.max_leaf_log2(), std::logic_error);
}

TEST(Plan, MovedFromPlanThrowsInsteadOfCrashing) {
  Plan p = Plan::small(2);
  const Plan q = std::move(p);
  EXPECT_FALSE(p.valid());  // NOLINT(bugprone-use-after-move): contract test
  EXPECT_THROW(p.log2_size(), std::logic_error);
  EXPECT_EQ(q.log2_size(), 2);
}

TEST(Plan, SmallRejectsOutOfRange) {
  EXPECT_THROW(Plan::small(0), std::invalid_argument);
  EXPECT_THROW(Plan::small(-2), std::invalid_argument);
  EXPECT_THROW(Plan::small(kMaxUnrolled + 1), std::invalid_argument);
}

TEST(Plan, SmallAcceptsFullRange) {
  for (int k = 1; k <= kMaxUnrolled; ++k) {
    EXPECT_EQ(Plan::small(k).size(), std::uint64_t{1} << k);
  }
}

TEST(Plan, SplitSumsChildSizes) {
  std::vector<Plan> children;
  children.push_back(Plan::small(2));
  children.push_back(Plan::small(3));
  children.push_back(Plan::small(1));
  const Plan p = Plan::split(std::move(children));
  EXPECT_EQ(p.log2_size(), 6);
  EXPECT_EQ(p.leaf_count(), 3);
  EXPECT_EQ(p.node_count(), 4);
  EXPECT_EQ(p.depth(), 2);
  EXPECT_EQ(p.max_leaf_log2(), 3);
}

TEST(Plan, SplitRequiresTwoChildren) {
  std::vector<Plan> one;
  one.push_back(Plan::small(2));
  EXPECT_THROW(Plan::split(std::move(one)), std::invalid_argument);
}

TEST(Plan, SplitRejectsInvalidChild) {
  std::vector<Plan> children;
  children.push_back(Plan::small(1));
  children.push_back(Plan{});  // default = invalid
  EXPECT_THROW(Plan::split(std::move(children)), std::invalid_argument);
}

TEST(Plan, IterativeShape) {
  const Plan p = Plan::iterative(5);
  EXPECT_EQ(p.log2_size(), 5);
  EXPECT_EQ(p.leaf_count(), 5);
  EXPECT_EQ(p.depth(), 2);
  EXPECT_EQ(p.max_leaf_log2(), 1);
  EXPECT_EQ(p.to_string(), "split[small[1],small[1],small[1],small[1],small[1]]");
}

TEST(Plan, IterativeBaseCase) {
  EXPECT_EQ(Plan::iterative(1).to_string(), "small[1]");
}

TEST(Plan, RightRecursiveShape) {
  const Plan p = Plan::right_recursive(4);
  EXPECT_EQ(p.to_string(), "split[small[1],split[small[1],split[small[1],small[1]]]]");
  EXPECT_EQ(p.depth(), 4);
  EXPECT_EQ(p.leaf_count(), 4);
}

TEST(Plan, LeftRecursiveShape) {
  const Plan p = Plan::left_recursive(4);
  EXPECT_EQ(p.to_string(), "split[split[split[small[1],small[1]],small[1]],small[1]]");
  EXPECT_EQ(p.depth(), 4);
}

TEST(Plan, RecursiveBaseCases) {
  EXPECT_EQ(Plan::right_recursive(1).to_string(), "small[1]");
  EXPECT_EQ(Plan::left_recursive(1).to_string(), "small[1]");
  EXPECT_EQ(Plan::right_recursive(2).to_string(), "split[small[1],small[1]]");
}

TEST(Plan, BalancedBinaryRespectsMaxLeaf) {
  const Plan p = Plan::balanced_binary(10, 3);
  EXPECT_EQ(p.log2_size(), 10);
  EXPECT_LE(p.max_leaf_log2(), 3);
  // 10 -> 5+5 -> (2+3)+(2+3): all leaves <= 3.
  EXPECT_EQ(p.to_string(),
            "split[split[small[2],small[3]],split[small[2],small[3]]]");
}

TEST(Plan, BalancedBinaryLeafWhenFits) {
  EXPECT_EQ(Plan::balanced_binary(3, 4).to_string(), "small[3]");
}

TEST(Plan, IterativeRadixSplitsEvenly) {
  const Plan p = Plan::iterative_radix(9, 3);
  EXPECT_EQ(p.to_string(), "split[small[3],small[3],small[3]]");
}

TEST(Plan, IterativeRadixAbsorbsRemainder) {
  const Plan p = Plan::iterative_radix(8, 3);
  EXPECT_EQ(p.to_string(), "split[small[3],small[3],small[2]]");
}

TEST(Plan, IterativeRadixDegeneratesToLeaf) {
  EXPECT_EQ(Plan::iterative_radix(3, 4).to_string(), "small[3]");
}

TEST(Plan, EqualityIsStructural) {
  EXPECT_EQ(Plan::iterative(4), Plan::iterative(4));
  EXPECT_NE(Plan::iterative(4), Plan::right_recursive(4));
  EXPECT_NE(Plan::right_recursive(4), Plan::left_recursive(4));
  EXPECT_EQ(Plan::small(2), Plan::small(2));
  EXPECT_NE(Plan::small(2), Plan::small(3));
}

TEST(Plan, CopyIsDeep) {
  Plan a = Plan::right_recursive(5);
  Plan b = a;
  EXPECT_EQ(a, b);
  b = Plan::iterative(5);
  EXPECT_NE(a, b);
  EXPECT_EQ(a, Plan::right_recursive(5));  // a unaffected
}

TEST(Plan, MoveLeavesSourceInvalid) {
  Plan a = Plan::small(2);
  Plan b = std::move(a);
  EXPECT_TRUE(b.valid());
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move): intentional
}

TEST(Plan, CanonicalPlansScaleToTwenty) {
  // Sizes used in Figure 1 sweeps.
  for (int n = 1; n <= 20; ++n) {
    EXPECT_EQ(Plan::iterative(n).log2_size(), n);
    EXPECT_EQ(Plan::right_recursive(n).log2_size(), n);
    EXPECT_EQ(Plan::left_recursive(n).log2_size(), n);
    EXPECT_EQ(Plan::right_recursive(n).leaf_count(), n);
  }
}

}  // namespace
}  // namespace whtlab::core
