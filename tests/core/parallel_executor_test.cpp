#include "core/parallel_executor.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/executor.hpp"
#include "core/verify.hpp"
#include "search/sampler.hpp"
#include "util/aligned_buffer.hpp"
#include "util/rng.hpp"

namespace whtlab::core {
namespace {

class ParallelExecutorTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ParallelExecutorTest, MatchesSequentialBitExactly) {
  const auto [n, threads] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(n * 100 + threads));
  search::RecursiveSplitSampler sampler(kMaxUnrolled);
  const Plan plan = sampler.sample(n, rng);
  const std::uint64_t size = plan.size();
  util::AlignedBuffer seq(size);
  util::AlignedBuffer par(size);
  util::Rng fill(1);
  for (std::uint64_t i = 0; i < size; ++i) seq[i] = par[i] = fill.uniform(-1, 1);
  execute(plan, seq.data());
  execute_parallel(plan, par.data(), threads);
  for (std::uint64_t i = 0; i < size; ++i) EXPECT_EQ(seq[i], par[i]);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndThreadCounts, ParallelExecutorTest,
    ::testing::Combine(::testing::Values(6, 10, 13, 15),
                       ::testing::Values(1, 2, 4, 7)),
    [](const auto& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_t" +
             std::to_string(std::get<1>(info.param));
    });

TEST(ParallelExecutor, SmallPlanFallsBackToSequential) {
  const Plan plan = Plan::small(4);
  std::vector<double> x(plan.size());
  util::Rng rng(3);
  for (auto& v : x) v = rng.uniform(-1, 1);
  execute_parallel(plan, x.data(), 8);
  // Compare against reference.
  std::vector<double> expected(plan.size());
  util::Rng rng2(3);
  for (auto& v : expected) v = rng2.uniform(-1, 1);
  fast_wht_reference(4, expected.data());
  EXPECT_LT(max_abs_diff(x.data(), expected.data(), plan.size()), 1e-12);
}

TEST(ParallelExecutor, CorrectOnCanonicalPlans) {
  for (const Plan& plan :
       {Plan::iterative(14), Plan::right_recursive(14), Plan::balanced_binary(14, 6)}) {
    util::AlignedBuffer seq(plan.size());
    util::AlignedBuffer par(plan.size());
    util::Rng fill(9);
    for (std::uint64_t i = 0; i < plan.size(); ++i) {
      seq[i] = par[i] = fill.uniform(-1, 1);
    }
    execute(plan, seq.data());
    execute_parallel(plan, par.data(), 4);
    for (std::uint64_t i = 0; i < plan.size(); ++i) EXPECT_EQ(seq[i], par[i]);
  }
}

}  // namespace
}  // namespace whtlab::core
