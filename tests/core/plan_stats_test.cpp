#include "core/plan_stats.hpp"

#include <gtest/gtest.h>

#include "cachesim/trace_runner.hpp"
#include "core/instrumented.hpp"
#include "search/sampler.hpp"
#include "util/rng.hpp"

namespace whtlab::core {
namespace {

TEST(StrideProfile, LeafPlanIsOneUnitStrideCall) {
  const auto profile = stride_profile(Plan::small(5));
  ASSERT_EQ(profile.calls.size(), 1u);
  EXPECT_EQ((profile.calls.at({5, 1})), 1u);
  EXPECT_EQ(profile.total_calls(), 1u);
  EXPECT_EQ(profile.total_accesses(), 64u);  // 2 * 32
  EXPECT_EQ(profile.max_stride(), 1u);
}

TEST(StrideProfile, IterativePlanStrides) {
  // iterative(n): factor i (applied last-to-first) runs small[1] N/2 times
  // at strides 1, 2, 4, ..., N/2.
  const int n = 6;
  const auto profile = stride_profile(Plan::iterative(n));
  const std::uint64_t size = std::uint64_t{1} << n;
  ASSERT_EQ(profile.calls.size(), static_cast<std::size_t>(n));
  for (int level = 0; level < n; ++level) {
    const std::uint64_t stride = std::uint64_t{1} << level;
    EXPECT_EQ((profile.calls.at({1, stride})), size / 2) << level;
  }
  EXPECT_EQ(profile.max_stride(), size / 2);
}

TEST(StrideProfile, CanonicalUnitLeafPlansShareTheStrideMultiset) {
  // All three canonical plans perform N/2 small[1] calls at every stride
  // 1, 2, ..., N/2 — identical static profiles.  Their wildly different
  // miss counts (Figure 3) are therefore a purely *temporal* phenomenon,
  // which is why miss analysis needs the trace simulator, not a static
  // stride census.
  const int n = 12;
  const auto iter = stride_profile(Plan::iterative(n));
  const auto right = stride_profile(Plan::right_recursive(n));
  const auto left = stride_profile(Plan::left_recursive(n));
  EXPECT_EQ(iter.calls, right.calls);
  EXPECT_EQ(iter.calls, left.calls);
  // ...and yet the simulator separates them by orders of magnitude at
  // out-of-cache sizes (checked in cachesim tests).
}

TEST(StrideProfile, LargerBaseCasesReduceStridedWork) {
  // Unrolled base cases absorb low-stride levels into streaming codelet
  // calls: split[small[8],small[8]] does half its accesses at unit stride,
  // while the radix-2 iterative plan does 13/16 of its accesses at
  // stride >= 8.
  const int n = 16;
  const auto radix8 = stride_profile(Plan::iterative_radix(n, 8));
  const auto radix1 = stride_profile(Plan::iterative(n));
  EXPECT_DOUBLE_EQ(radix8.strided_work_fraction(8), 0.5);
  EXPECT_DOUBLE_EQ(radix1.strided_work_fraction(8), 13.0 / 16.0);
  EXPECT_LT(radix8.strided_work_fraction(8), radix1.strided_work_fraction(8));
  // NOTE deliberately not asserted: fewer strided accesses does not imply
  // fewer simulated misses — the radix-8 plan's stride-256 codelet calls
  // concentrate into few cache sets (conflict misses), which only the
  // trace simulator sees.  The profile is a structural lens, not a miss
  // model; the miss model lives in model/cache_model.hpp.
}

TEST(StrideProfile, AccessTotalsMatchOpCounts) {
  util::Rng rng(5);
  search::RecursiveSplitSampler sampler(kMaxUnrolled);
  for (int n : {6, 10, 14}) {
    const Plan plan = sampler.sample(n, rng);
    const auto profile = stride_profile(plan);
    const auto ops = count_ops(plan);
    EXPECT_EQ(profile.total_accesses(), ops.accesses()) << plan.to_string();
    // Leaf calls == calls minus split invocations; cross-check via flops:
    // every call of small[k] does k*2^k flops.
    std::uint64_t flops = 0;
    for (const auto& [key, count] : profile.calls) {
      flops += count * static_cast<std::uint64_t>(key.first)
               * (std::uint64_t{1} << key.first);
    }
    EXPECT_EQ(flops, ops.flops);
  }
}

TEST(StrideProfile, StridesArePowersOfTwoWithinBounds) {
  util::Rng rng(6);
  search::RecursiveSplitSampler sampler(kMaxUnrolled);
  const Plan plan = sampler.sample(12, rng);
  const auto profile = stride_profile(plan);
  for (const auto& [key, count] : profile.calls) {
    const auto [k, stride] = key;
    EXPECT_GE(k, 1);
    EXPECT_LE(k, kMaxUnrolled);
    EXPECT_EQ(stride & (stride - 1), 0u);  // power of two
    // A leaf of size 2^k at stride s touches indices < 2^k * s <= N.
    EXPECT_LE((std::uint64_t{1} << k) * stride, plan.size());
    EXPECT_GT(count, 0u);
  }
}

TEST(StrideProfile, FullyUnrolledPlanIsPureStreaming) {
  const auto profile = stride_profile(Plan::small(8));
  EXPECT_DOUBLE_EQ(profile.strided_work_fraction(8), 0.0);
}

}  // namespace
}  // namespace whtlab::core
