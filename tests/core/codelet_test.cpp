// Codelet correctness: both backends vs the dense O(N^2) definition, at
// unit and non-unit strides, plus algebraic properties of the 2-point case.
#include "core/codelet.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/verify.hpp"
#include "util/rng.hpp"

namespace whtlab::core {
namespace {

class CodeletParamTest
    : public ::testing::TestWithParam<std::tuple<int, CodeletBackend>> {};

TEST_P(CodeletParamTest, MatchesDenseDefinitionAtUnitStride) {
  const auto [k, backend] = GetParam();
  const std::uint64_t m = std::uint64_t{1} << k;
  std::vector<double> x(m);
  std::vector<double> expected(m);
  util::Rng rng(77 + static_cast<std::uint64_t>(k));
  for (auto& v : x) v = rng.uniform(-1.0, 1.0);
  dense_wht_apply(k, x.data(), expected.data());
  codelet(k, backend)(x.data(), 1);
  EXPECT_LT(max_abs_diff(x.data(), expected.data(), m), 1e-12);
}

TEST_P(CodeletParamTest, MatchesDenseDefinitionAtStrideSeven) {
  // Stride 7 (non-power-of-two) catches any indexing confusion between
  // logical and physical layout.
  const auto [k, backend] = GetParam();
  const std::uint64_t m = std::uint64_t{1} << k;
  const std::ptrdiff_t stride = 7;
  std::vector<double> buffer(m * 7, -99.0);
  std::vector<double> logical(m);
  std::vector<double> expected(m);
  util::Rng rng(99 + static_cast<std::uint64_t>(k));
  for (std::uint64_t j = 0; j < m; ++j) {
    logical[j] = rng.uniform(-2.0, 2.0);
    buffer[j * 7] = logical[j];
  }
  dense_wht_apply(k, logical.data(), expected.data());
  codelet(k, backend)(buffer.data(), stride);
  for (std::uint64_t j = 0; j < m; ++j) {
    EXPECT_NEAR(buffer[j * 7], expected[j], 1e-12);
  }
  // Gaps untouched.
  for (std::uint64_t i = 0; i < buffer.size(); ++i) {
    if (i % 7 != 0) {
      EXPECT_EQ(buffer[i], -99.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSizesBothBackends, CodeletParamTest,
    ::testing::Combine(::testing::Range(1, kMaxUnrolled + 1),
                       ::testing::Values(CodeletBackend::kTemplate,
                                         CodeletBackend::kGenerated)),
    [](const auto& info) {
      return "k" + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) == CodeletBackend::kTemplate
                  ? "_template"
                  : "_generated");
    });

TEST(Codelet, BackendsAgreeBitExactly) {
  // Same operation order => identical rounding; results must be bit-equal.
  for (int k = 1; k <= kMaxUnrolled; ++k) {
    const std::uint64_t m = std::uint64_t{1} << k;
    std::vector<double> a(m);
    std::vector<double> b(m);
    util::Rng rng(k);
    for (std::uint64_t j = 0; j < m; ++j) a[j] = b[j] = rng.uniform(-1, 1);
    codelet(k, CodeletBackend::kTemplate)(a.data(), 1);
    codelet(k, CodeletBackend::kGenerated)(b.data(), 1);
    for (std::uint64_t j = 0; j < m; ++j) EXPECT_EQ(a[j], b[j]) << k;
  }
}

TEST(Codelet, TwoPointIsButterfly) {
  double x[2] = {3.0, 5.0};
  codelet(1, CodeletBackend::kGenerated)(x, 1);
  EXPECT_EQ(x[0], 8.0);
  EXPECT_EQ(x[1], -2.0);
}

TEST(Codelet, InvolutionScaledByN) {
  // WHT * WHT = N * I.
  for (int k = 1; k <= 6; ++k) {
    const std::uint64_t m = std::uint64_t{1} << k;
    std::vector<double> x(m);
    std::vector<double> original(m);
    util::Rng rng(k * 13);
    for (std::uint64_t j = 0; j < m; ++j) original[j] = x[j] = rng.uniform(-1, 1);
    codelet(k, CodeletBackend::kGenerated)(x.data(), 1);
    codelet(k, CodeletBackend::kGenerated)(x.data(), 1);
    for (std::uint64_t j = 0; j < m; ++j) {
      EXPECT_NEAR(x[j], static_cast<double>(m) * original[j], 1e-9);
    }
  }
}

TEST(Codelet, LookupRejectsBadSize) {
  EXPECT_THROW(codelet(0, CodeletBackend::kTemplate), std::out_of_range);
  EXPECT_THROW(codelet(kMaxUnrolled + 1, CodeletBackend::kGenerated),
               std::out_of_range);
}

TEST(Codelet, TablesFullyPopulated) {
  for (auto backend : {CodeletBackend::kTemplate, CodeletBackend::kGenerated}) {
    const auto& table = codelet_table(backend);
    EXPECT_EQ(table[0], nullptr);
    for (int k = 1; k <= kMaxUnrolled; ++k) {
      EXPECT_NE(table[static_cast<std::size_t>(k)], nullptr) << k;
    }
  }
}

}  // namespace
}  // namespace whtlab::core
