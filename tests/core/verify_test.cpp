// Tests for the verification utilities themselves, plus parser fuzzing with
// randomly generated plans (round-trip must hold for every sampled plan).
#include "core/verify.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <vector>

#include "core/plan_io.hpp"
#include "search/sampler.hpp"
#include "util/rng.hpp"

namespace whtlab::core {
namespace {

TEST(DenseWht, TwoPointMatrix) {
  const double x[2] = {1.0, 2.0};
  double y[2];
  dense_wht_apply(1, x, y);
  EXPECT_EQ(y[0], 3.0);
  EXPECT_EQ(y[1], -1.0);
}

TEST(DenseWht, RowsAreWalshFunctions) {
  // Row i, column j of the Hadamard matrix is (-1)^popcount(i & j); check a
  // handful of entries via unit vectors.
  const int n = 5;
  const std::uint64_t size = 1u << n;
  std::vector<double> e(size, 0.0);
  std::vector<double> row(size);
  e[13] = 1.0;  // column 13
  dense_wht_apply(n, e.data(), row.data());
  for (std::uint64_t i = 0; i < size; ++i) {
    const double expected = (std::popcount(i & 13u) & 1) ? -1.0 : 1.0;
    EXPECT_EQ(row[i], expected) << i;
  }
}

TEST(DenseWht, MatrixIsSymmetric) {
  const int n = 4;
  const std::uint64_t size = 1u << n;
  // Compare WHT*e_i with the i-th coordinate pattern of WHT*e_j.
  std::vector<double> ei(size, 0.0);
  std::vector<double> ej(size, 0.0);
  std::vector<double> coli(size);
  std::vector<double> colj(size);
  ei[3] = 1.0;
  ej[11] = 1.0;
  dense_wht_apply(n, ei.data(), coli.data());
  dense_wht_apply(n, ej.data(), colj.data());
  EXPECT_EQ(coli[11], colj[3]);
}

TEST(MaxAbsDiff, PicksTheWorstEntry) {
  const double a[4] = {1, 2, 3, 4};
  const double b[4] = {1, 2.5, 3, 3.0};
  EXPECT_DOUBLE_EQ(max_abs_diff(a, b, 4), 1.0);
  EXPECT_DOUBLE_EQ(max_abs_diff(a, a, 4), 0.0);
  EXPECT_DOUBLE_EQ(max_abs_diff(a, b, 0), 0.0);
}

TEST(VerifyPlan, DetectsNothingOnCorrectPlans) {
  EXPECT_LT(verify_plan(Plan::small(4)), 1e-12);
  EXPECT_LT(verify_plan(Plan::iterative(10)), 1e-9);
}

TEST(VerifyPlan, DifferentSeedsStillPass) {
  const Plan plan = Plan::balanced_binary(9, 3);
  for (std::uint64_t seed : {1ULL, 99ULL, 424242ULL}) {
    EXPECT_LT(verify_plan(plan, CodeletBackend::kGenerated, seed), 1e-9);
  }
}

TEST(ParserFuzz, RandomPlansRoundTrip) {
  util::Rng rng(31337);
  search::RecursiveSplitSampler sampler(kMaxUnrolled);
  for (int n : {1, 3, 6, 10, 14, 20}) {
    for (int trial = 0; trial < 25; ++trial) {
      const Plan plan = sampler.sample(n, rng);
      const std::string text = plan.to_string();
      const Plan reparsed = parse_plan(text);
      EXPECT_EQ(reparsed, plan) << text;
      EXPECT_EQ(reparsed.to_string(), text);
    }
  }
}

TEST(ParserFuzz, MutatedTextNeverCrashes) {
  // Randomly corrupt valid plan strings; the parser must either accept a
  // valid plan or throw invalid_argument — never crash or accept garbage
  // silently.
  util::Rng rng(777);
  search::RecursiveSplitSampler sampler(kMaxUnrolled);
  const char alphabet[] = "smallpit[],0123456789 ";
  int accepted = 0;
  int rejected = 0;
  for (int trial = 0; trial < 500; ++trial) {
    std::string text = sampler.sample(8, rng).to_string();
    const std::size_t pos = rng.below(text.size());
    text[pos] = alphabet[rng.below(sizeof(alphabet) - 1)];
    try {
      const Plan plan = parse_plan(text);
      // If accepted, it must be internally consistent.
      EXPECT_EQ(plan.to_string().size() > 0, true);
      EXPECT_GE(plan.log2_size(), 1);
      ++accepted;
    } catch (const std::invalid_argument&) {
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 0);
  EXPECT_EQ(accepted + rejected, 500);
}

}  // namespace
}  // namespace whtlab::core
